(* gc_cli: command-line driver for the oneDNN Graph Compiler reproduction.

     gc_cli run  mha1 --batch 4 --dtype f32        compile + execute + verify
     gc_cli run  mlp1 --trace out.json             ... emitting a JSON profile
     gc_cli dump mlp1 --stage fused                print an IR stage
     gc_cli sim  mlp1 --batch 128 --dtype int8     simulate the three settings
     gc_cli matmul -m 512 -n 1024 -k 479           single-op compiler vs primitive
     gc_cli validate-trace out.json                parse + summarize a trace *)

open Cmdliner
open Core

let machine = Machine.xeon_8358

(* ------------------------------------------------------------------ *)
(* shared arguments *)

type workload = Mlp1 | Mlp2 | Mha1 | Mha2 | Mha3 | Mha4

let workload_conv =
  let parse = function
    | "mlp1" -> Ok Mlp1
    | "mlp2" -> Ok Mlp2
    | "mha1" -> Ok Mha1
    | "mha2" -> Ok Mha2
    | "mha3" -> Ok Mha3
    | "mha4" -> Ok Mha4
    | s -> Error (`Msg (Printf.sprintf "unknown workload %S (mlp1|mlp2|mha1..mha4)" s))
  in
  let print fmt w =
    Format.pp_print_string fmt
      (match w with
      | Mlp1 -> "mlp1" | Mlp2 -> "mlp2" | Mha1 -> "mha1"
      | Mha2 -> "mha2" | Mha3 -> "mha3" | Mha4 -> "mha4")
  in
  Arg.conv (parse, print)

let workload_arg =
  Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")

let batch_arg =
  Arg.(value & opt int 32 & info [ "b"; "batch" ] ~docv:"N" ~doc:"Batch size.")

let dtype_arg =
  let dc = Arg.enum [ ("f32", `F32); ("int8", `Int8) ] in
  Arg.(value & opt dc `F32 & info [ "dtype" ] ~doc:"Data type (f32 or int8).")

let setting_arg =
  let sc =
    Arg.enum
      [ ("full", `Full); ("no-coarse", `No_coarse); ("baseline", `Baseline) ]
  in
  Arg.(value & opt sc `Full & info [ "setting" ]
         ~doc:"Optimization setting: full, no-coarse, or baseline (oneDNN primitives).")

let build workload batch dtype =
  let mlp (spec : Gc_workloads.Table1.mlp_spec) =
    match dtype with
    | `F32 -> Gc_workloads.Mlp.build_f32 ~batch ~hidden:spec.hidden ()
    | `Int8 -> Gc_workloads.Mlp.build_int8 ~batch ~hidden:spec.hidden ()
  in
  let mha (spec : Gc_workloads.Table1.mha_spec) =
    let f =
      match dtype with
      | `F32 -> Gc_workloads.Mha.build_f32
      | `Int8 -> Gc_workloads.Mha.build_int8
    in
    let b =
      f ~batch ~seq:spec.seq_len ~hidden:spec.hidden_size ~heads:spec.heads ()
    in
    { Gc_workloads.Mlp.graph = b.Gc_workloads.Mha.graph; data = b.data }
  in
  match workload with
  | Mlp1 -> mlp Gc_workloads.Table1.mlp_1
  | Mlp2 -> mlp Gc_workloads.Table1.mlp_2
  | Mha1 -> mha Gc_workloads.Table1.mha_1
  | Mha2 -> mha Gc_workloads.Table1.mha_2
  | Mha3 -> mha Gc_workloads.Table1.mha_3
  | Mha4 -> mha Gc_workloads.Table1.mha_4

let graph_config setting =
  match setting with
  | `Full -> Pipeline.default ~machine ()
  | `No_coarse -> { (Pipeline.default ~machine ()) with coarse_fusion = false }
  | `Baseline -> Pipeline.onednn_primitives ~machine ()

let config setting = { (default_config ~machine ()) with graph = graph_config setting }

(* ------------------------------------------------------------------ *)
(* tracing *)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a JSON profile (per-pass timings, IR statistics, \
                 runtime counters, perfsim estimates) to $(docv).")

let workload_name = function
  | Mlp1 -> "mlp1" | Mlp2 -> "mlp2" | Mha1 -> "mha1"
  | Mha2 -> "mha2" | Mha3 -> "mha3" | Mha4 -> "mha4"

let setting_name = function
  | `Full -> "full" | `No_coarse -> "no-coarse" | `Baseline -> "baseline"

let new_trace workload batch dtype =
  let t = Observe.Trace.create () in
  Observe.Trace.set_meta t "workload" (Observe.Json.String (workload_name workload));
  Observe.Trace.set_meta t "batch" (Observe.Json.Int batch);
  Observe.Trace.set_meta t "dtype"
    (Observe.Json.String (match dtype with `F32 -> "f32" | `Int8 -> "int8"));
  Observe.Trace.set_meta t "machine" (Observe.Json.String machine.Machine.name);
  t

let finish_trace trace file =
  Format.printf "@.%a" Observe.Trace.pp_report trace;
  match Observe.Trace.write_file trace file with
  | () -> Format.printf "trace written to %s@." file
  | exception Sys_error msg ->
      Format.eprintf "error: cannot write trace: %s@." msg;
      exit 1

(* ------------------------------------------------------------------ *)
(* run *)

let cmd_run =
  let run workload batch dtype setting trace_file =
    let built = build workload batch dtype in
    let trace =
      Option.map
        (fun _ ->
          let t = new_trace workload batch dtype in
          Observe.Trace.set_meta t "setting"
            (Observe.Json.String (setting_name setting));
          t)
        trace_file
    in
    Format.printf "compiling (%d ops)...@." (Graph.op_count built.graph);
    let compiled = compile ~config:(config setting) ?trace built.graph in
    Format.printf "executing...@.";
    if trace <> None then begin
      Observe.Counters.reset ();
      Observe.Counters.enable ()
    end;
    let w0 = Unix.gettimeofday () in
    let t0 = Sys.time () in
    let out = execute compiled built.data in
    let t1 = Sys.time () in
    let w1 = Unix.gettimeofday () in
    (match trace with
    | None -> ()
    | Some tr ->
        Observe.Counters.disable ();
        Observe.Trace.add_section tr "counters"
          (Observe.Counters.snapshot_to_json (Observe.Counters.snapshot ()));
        (* a second, warm execution (init/prepack cached) for wallclock *)
        let s0 = Unix.gettimeofday () in
        ignore (execute compiled built.data);
        let s1 = Unix.gettimeofday () in
        Observe.Trace.add_section tr "wallclock"
          (Observe.Json.Obj
             [
               ("first_run_ms", Observe.Json.Float ((w1 -. w0) *. 1000.));
               ("steady_run_ms", Observe.Json.Float ((s1 -. s0) *. 1000.));
             ]);
        Observe.Trace.add_section tr "perfsim"
          (Gc_perfsim.Sim.json_of_report
             (Gc_perfsim.Sim.cost_module ~machine
                ~api_per_call:(setting = `Baseline)
                (tir_module compiled))));
    Format.printf "verifying against the reference evaluator...@.";
    let expect = reference built.graph built.data in
    let diff = Tensor.max_abs_diff (List.hd out) (List.hd expect) in
    Format.printf "output %a in %.1f ms (cpu), max |diff| vs reference = %g@."
      Shape.pp (Tensor.shape (List.hd out))
      ((t1 -. t0) *. 1000.) diff;
    (match (trace, trace_file) with
    | Some tr, Some file -> finish_trace tr file
    | _ -> ());
    if diff > 1. then exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile, execute and verify a Table 1 workload.")
    Term.(const run $ workload_arg $ batch_arg $ dtype_arg $ setting_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* dump *)

let cmd_dump =
  let stage_arg =
    let sc =
      Arg.enum
        [ ("graph", `G); ("fused", `F); ("tir", `T); ("init", `I); ("dot", `D) ]
    in
    Arg.(value & opt sc `F & info [ "stage" ]
           ~doc:"IR stage to print: graph, fused, tir, init, or dot (graphviz).")
  in
  let run workload batch dtype setting stage =
    let built = build workload batch dtype in
    match stage with
    | `G -> Format.printf "%s@." (Graph.to_string built.graph)
    | `D -> print_string (Graph.to_dot built.graph)
    | `F ->
        let compiled = compile ~config:(config setting) built.graph in
        Format.printf "%a@." Fused_op.pp_graph (fused_graph compiled)
    | `T ->
        let compiled = compile ~config:(config setting) built.graph in
        Format.printf "%s@." (Printer.module_to_string (tir_module compiled))
    | `I -> (
        let compiled = compile ~config:(config setting) built.graph in
        match (fused_graph compiled).init with
        | Some init -> Format.printf "%s@." (Graph.to_string init)
        | None -> Format.printf "(no init graph)@.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print an IR stage of a compiled workload.")
    Term.(const run $ workload_arg $ batch_arg $ dtype_arg $ setting_arg $ stage_arg)

(* ------------------------------------------------------------------ *)
(* sim *)

let cmd_sim =
  let run workload batch dtype trace_file =
    let built = build workload batch dtype in
    let trace = Option.map (fun _ -> new_trace workload batch dtype) trace_file in
    Format.printf "%-12s %12s %s@." "setting" "cycles" "breakdown";
    let results =
      List.map
        (fun (name, setting, api) ->
          (* trace the pass pipeline of the "full" setting only: one set of
             pass events per trace keeps the schema flat *)
          let trace = if setting = `Full then trace else None in
          let compiled = compile ~config:(config setting) ?trace built.graph in
          let r =
            Gc_perfsim.Sim.cost_module ~machine ~api_per_call:api
              (tir_module compiled)
          in
          Format.printf "%-12s %12.3e %a@." name r.cycles Gc_perfsim.Sim.pp_report r;
          (name, r))
        [ ("baseline", `Baseline, true); ("no-coarse", `No_coarse, false);
          ("full", `Full, false) ]
    in
    let get k = (List.assoc k results).Gc_perfsim.Sim.cycles in
    Format.printf "@.speedup over primitives: full %.2fx, without coarse-grain %.2fx@."
      (get "baseline" /. get "full")
      (get "baseline" /. get "no-coarse");
    match (trace, trace_file) with
    | Some tr, Some file ->
        Observe.Trace.add_section tr "perfsim"
          (Observe.Json.Obj
             (List.map
                (fun (name, r) -> (name, Gc_perfsim.Sim.json_of_report r))
                results));
        finish_trace tr file
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Simulate the three evaluation settings on the modelled Xeon 8358.")
    Term.(const run $ workload_arg $ batch_arg $ dtype_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* matmul *)

let cmd_matmul =
  let int_arg name doc = Arg.(required & opt (some int) None & info [ name ] ~doc) in
  let run m n k dtype =
    let dt = match dtype with `F32 -> `F32 | `Int8 -> `Int8 in
    let built = Gc_workloads.Mlp.build_single_matmul ~dtype:dt ~m ~n ~k () in
    let compiled = compile ~config:(config `Full) built.graph in
    let dtm : Dtype.t = match dtype with `F32 -> F32 | `Int8 -> U8 in
    let gc, prim = Gc_baseline.Baseline.figure7_costs ~machine ~dtype:dtm ~m ~n ~k () in
    let p = Heuristic.choose ~machine ~dtype:dtm ~m ~n ~k () in
    Format.printf "heuristic: %s@." (Params.to_string p);
    Format.printf "compiler (simulated): %.3e cycles@." gc;
    Format.printf "primitive (simulated): %.3e cycles (ratio %.2fx)@." prim (prim /. gc);
    (* verify numerics too; int8 outputs may flip by one quantization step *)
    let out = execute compiled built.data in
    let expect = reference built.graph built.data in
    Format.printf "max |diff| vs reference: %g%s@."
      (Tensor.max_abs_diff (List.hd out) (List.hd expect))
      (match dtype with `Int8 -> " (quantization steps)" | `F32 -> "")
  in
  Cmd.v
    (Cmd.info "matmul" ~doc:"Individual matmul: compiler vs primitive (Figure 7 probe).")
    Term.(const run $ int_arg "m" "Rows." $ int_arg "n" "Columns." $ int_arg "k" "Reduction." $ dtype_arg)

(* ------------------------------------------------------------------ *)
(* health *)

let cmd_health =
  let demo_arg =
    Arg.(value & flag
         & info [ "demo" ]
             ~doc:"Exercise a tiny two-model registry (load, serve, hot-swap, \
                   park) before snapshotting, so every section is populated.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the JSON to $(docv) instead of stdout.")
  in
  let health_json ~models () =
    let c = Compile_cache.stats () in
    let open Observe.Json in
    Obj
      [
        ("schema", String "gc-health/1");
        ("health", Gc_supervise.health_to_json (Gc_supervise.health ()));
        ( "counters",
          Observe.Counters.snapshot_to_json (Observe.Counters.snapshot ()) );
        ("labels", Observe.Labels.to_json ());
        ( "cache",
          Obj
            [
              ("hits", Int c.hits);
              ("misses", Int c.misses);
              ("entries", Int c.entries);
              ("evictions", Int c.evictions);
              ("resident_bytes", Int c.resident_bytes);
              ("pinned", Int c.pinned);
              ( "max_bytes",
                match Compile_cache.max_bytes () with
                | Some b -> Int b
                | None -> Null );
            ] );
        ( "memgov",
          Obj
            [
              ( "budget_bytes",
                match Gc_tensor.Memgov.limit () with
                | Some b -> Int b
                | None -> Null );
              ("used_bytes", Int (Gc_tensor.Memgov.used ()));
              ("peak_bytes", Int (Gc_tensor.Memgov.peak ()));
              ("rejections", Int (Gc_tensor.Memgov.rejections ()));
              ("fill_fraction", Float (Gc_tensor.Memgov.fill_fraction ()));
            ] );
        ( "events",
          Obj
            [
              ("recorded", Int (Observe.Events.recorded ()));
              ( "dump_path",
                match Observe.Events.dump_path () with
                | Some p -> String p
                | None -> Null );
            ] );
        ("models", models);
      ]
  in
  let run demo out =
    let models =
      if not demo then Observe.Json.Null
      else begin
        (* a small two-tenant registry: load, serve, weights-swap, park —
           enough traffic that every counter family is non-zero *)
        let reg = Gc_registry.create () in
        let a = Gc_workloads.Mlp.build_f32 ~batch:4 ~hidden:[ 16; 8 ] () in
        let b =
          Gc_workloads.Mlp.build_f32 ~seed:7 ~batch:4 ~hidden:[ 8; 4 ] ()
        in
        let ok_or_die name = function
          | Ok () -> ()
          | Error e ->
              Format.eprintf "demo: %s: %s@." name (Errors.to_string e);
              exit 1
        in
        ok_or_die "load alpha" (Gc_registry.load reg ~name:"alpha" a.graph);
        ok_or_die "load beta"
          (Gc_registry.load ~weight:2. reg ~name:"beta" b.graph);
        for _ = 1 to 3 do
          ignore (Gc_registry.call reg "alpha" a.data);
          ignore (Gc_registry.call reg "beta" b.data)
        done;
        ok_or_die "hot_swap alpha"
          (Gc_registry.hot_swap reg ~name:"alpha" a.graph);
        ignore (Gc_registry.park reg "beta");
        let j = Gc_registry.to_json reg in
        Gc_registry.shutdown reg;
        j
      end
    in
    let s = Observe.Json.to_string (health_json ~models ()) in
    match out with
    | None -> print_endline s
    | Some file ->
        let oc = open_out file in
        output_string oc s;
        output_char oc '\n';
        close_out oc;
        Format.printf "health written to %s@." file
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:"Print the process health snapshot as gc-health/1 JSON: \
             supervision components, observability counters, per-model \
             label families, compile-cache residency, memory-budget \
             ledger and the event-ring cursor.")
    Term.(const run $ demo_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* validate-trace *)

let cmd_validate_trace =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let fail msg =
    Format.eprintf "invalid trace: %s@." msg;
    exit 1
  in
  let run file =
    let ic = open_in file in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match Observe.Json.of_string s with
    | Error e -> fail e
    | Ok j when Observe.Json.member "schema" j
                = Some (Observe.Json.String "gc-health/1") ->
        (* the health snapshot schema (gc_cli health) *)
        let obj k =
          match Observe.Json.member k j with
          | Some (Observe.Json.Obj _) -> ()
          | _ -> fail (Printf.sprintf "health without object %S" k)
        in
        List.iter obj [ "health"; "counters"; "labels"; "cache"; "memgov"; "events" ];
        let level =
          match Observe.Json.member "health" j with
          | Some h -> (
              match Observe.Json.member "level" h with
              | Some (Observe.Json.String s) -> s
              | _ -> fail "health.level missing")
          | None -> assert false
        in
        let models =
          match Observe.Json.member "models" j with
          | Some (Observe.Json.Obj kvs) -> List.length kvs
          | _ -> 0
        in
        Format.printf "valid gc-health/1: level %s, %d model(s)@." level models
    | Ok j -> (
        (match Observe.Json.member "schema" j with
        | Some (Observe.Json.String "gc-trace/1") -> ()
        | _ ->
            fail
              "missing or unknown \"schema\" (want \"gc-trace/1\" or \
               \"gc-health/1\")");
        let bench_sections =
          match j with
          | Observe.Json.Obj kvs ->
              List.length
                (List.filter
                   (fun (k, _) -> String.length k > 6 && String.sub k 0 6 = "bench:")
                   kvs)
          | _ -> 0
        in
        match Observe.Json.member "passes" j with
        | Some (Observe.Json.List passes) ->
            if passes = [] && bench_sections = 0 then
              fail "empty \"passes\" array and no bench sections";
            let total = ref 0. in
            List.iter
              (fun p ->
                let str k =
                  match Observe.Json.member k p with
                  | Some (Observe.Json.String s) -> s
                  | _ -> fail (Printf.sprintf "pass without string %S" k)
                in
                let num k =
                  match Observe.Json.member k p with
                  | Some (Observe.Json.Float f) -> f
                  | Some (Observe.Json.Int i) -> float_of_int i
                  | _ -> fail (Printf.sprintf "pass without number %S" k)
                in
                let obj k =
                  match Observe.Json.member k p with
                  | Some (Observe.Json.Obj _) -> ()
                  | _ -> fail (Printf.sprintf "pass without object %S" k)
                in
                ignore (str "stage");
                ignore (str "name");
                total := !total +. num "elapsed_ms";
                obj "before";
                obj "after")
              passes;
            Format.printf "valid gc-trace/1: %d passes, %.3f ms total%s%s%s@."
              (List.length passes) !total
              (match Observe.Json.member "counters" j with
              | Some _ -> ", counters present"
              | None -> "")
              (match Observe.Json.member "perfsim" j with
              | Some _ -> ", perfsim present"
              | None -> "")
              (if bench_sections > 0 then
                 Printf.sprintf ", %d bench sections" bench_sections
               else "")
        | _ -> fail "missing \"passes\" array")
  in
  Cmd.v
    (Cmd.info "validate-trace"
       ~doc:"Parse a trace JSON emitted by --trace and check its schema.")
    Term.(const run $ file_arg)

let () =
  let doc = "oneDNN Graph Compiler reproduction driver" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "gc_cli" ~doc)
          [ cmd_run; cmd_dump; cmd_sim; cmd_matmul; cmd_health;
            cmd_validate_trace ]))
