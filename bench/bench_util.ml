(* Shared helpers for the benchmark harness: the three evaluation settings
   (baseline / no-coarse / full, Figure 8's bars), simulator invocation,
   wall-clock measurement via Bechamel, and table formatting. *)

open Core

let machine = Machine.xeon_8358

type setting = Baseline | No_coarse | Full

let setting_name = function
  | Baseline -> "oneDNN primitives (baseline)"
  | No_coarse -> "graph compiler w/o coarse-grain"
  | Full -> "graph compiler"

let graph_config = function
  | Baseline -> Pipeline.onednn_primitives ~machine ()
  | No_coarse -> { (Pipeline.default ~machine ()) with coarse_fusion = false }
  | Full -> Pipeline.default ~machine ()

let config ?pool setting =
  { (default_config ~machine ()) with graph = graph_config setting; pool }

(* ------------------------------------------------------------------ *)
(* Optional trace sink (main.exe --trace FILE): benchmark targets record
   per-workload profiles pairing perfsim estimates with wallclock and
   runtime-counter data. *)

let trace_sink : Observe.Trace.t option ref = ref None

let record_bench name json =
  match !trace_sink with
  | None -> ()
  | Some t -> Observe.Trace.add_section t ("bench:" ^ name) json

(* compile under a setting and return the simulated cycles for one
   execution (init/prepack excluded — it is cached, as in the paper) *)
let simulate setting graph =
  let compiled = compile ~config:(config setting) graph in
  let api_per_call = setting = Baseline in
  (Gc_perfsim.Sim.cost_module ~machine ~api_per_call (tir_module compiled)).cycles

let simulate3 graph =
  let b = simulate Baseline graph in
  let nc = simulate No_coarse graph in
  let f = simulate Full graph in
  (b, nc, f)

let geomean = function
  | [] -> nan
  | xs ->
      exp (List.fold_left (fun a x -> a +. log x) 0. xs /. float_of_int (List.length xs))

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let hr () = print_endline (String.make 78 '-')

let header title =
  print_newline ();
  hr ();
  Printf.printf "%s\n" title;
  hr ()

(* ------------------------------------------------------------------ *)
(* Wall-clock measurement via Bechamel *)

let wallclock_ns ?(quota = 0.5) (fns : (string * (unit -> unit)) list) :
    (string * float) list =
  let open Bechamel in
  let tests =
    List.map (fun (name, fn) -> Test.make ~name (Staged.stage fn)) fns
  in
  let grouped = Test.make_grouped ~name:"wc" ~fmt:"%s/%s" tests in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  List.map
    (fun (name, _) ->
      let key = "wc/" ^ name in
      let est =
        match Hashtbl.find_opt results key with
        | Some r -> (
            match Analyze.OLS.estimates r with
            | Some (e :: _) -> e
            | _ -> nan)
        | None -> nan
      in
      (name, est))
    fns
