(* Steady-state serving benchmark, emitting BENCH_serving.json — the
   measured proof for the serving fast path (compile-once/execute-many:
   arena planning, reusable execution environments, binding plans, the
   compilation cache):

     dune exec bench/serving.exe                        # full run
     dune exec bench/serving.exe -- --tiny              # CI smoke (seconds)
     dune exec bench/serving.exe -- --out FILE          # choose output path
     dune exec bench/serving.exe -- --validate FILE     # parse + schema-check

   Sections (per workload: fused MLP and MHA, f32):
   - single client: iters/s, p50/p99 latency and minor-heap words per
     iteration of a steady-state execute loop, compiled both with
     [fastpath:false] (the pre-PR allocate-per-call engine, kept in-tree
     as the measurable baseline) and [fastpath:true], plus the arena hit
     rate of the fast engine.
   - multi client: N domains hammering ONE shared compiled partition
     (per-client sequential pools, [~reuse_outputs:true]), aggregate
     throughput fast vs slow.
   - compile cache: cold compile wallclock vs a [compile_cached] hit on an
     independently built isomorphic graph. *)

open Gc_workloads

let quota = ref 0.4
let lat_samples = ref 2000
let alloc_iters = ref 200
let clients = ref 4

(* best-of-3 quota-bounded repetition, as in micro.ml *)
let rate_of f =
  f ();
  let best = ref 0. in
  for _rep = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    let elapsed = ref 0. in
    while !elapsed < !quota do
      f ();
      incr iters;
      elapsed := Unix.gettimeofday () -. t0
    done;
    let r = float_of_int !iters /. !elapsed in
    if r > !best then best := r
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Workloads: compiled on a sequential pool so every allocation of an
   execute lands on the measuring domain (and so N serving clients never
   contend on a shared pool). *)

type workload = { wname : string; graph : Core.Graph.t; data : (Core.Logical_tensor.t * Core.Tensor.t) list }

let build_workloads mode =
  match mode with
  | `Full ->
      [
        (let b = Mlp.build_f32 ~batch:32 ~hidden:[ 13; 512; 256; 128 ] () in
         { wname = "mlp_f32"; graph = b.Mlp.graph; data = b.Mlp.data });
        (let b = Mha.build_f32 ~batch:2 ~seq:64 ~hidden:256 ~heads:4 () in
         { wname = "mha_f32"; graph = b.Mha.graph; data = b.Mha.data });
      ]
  | `Tiny ->
      [
        (let b = Mlp.build_f32 ~batch:4 ~hidden:[ 13; 32; 16 ] () in
         { wname = "mlp_f32"; graph = b.Mlp.graph; data = b.Mlp.data });
        (let b = Mha.build_f32 ~batch:1 ~seq:8 ~hidden:32 ~heads:2 () in
         { wname = "mha_f32"; graph = b.Mha.graph; data = b.Mha.data });
      ]

let config ~fastpath () =
  {
    (Core.default_config ~machine:Bench_util.machine ()) with
    Core.pool = Some (Gc_runtime.Parallel.create 1);
    fastpath;
  }

(* ------------------------------------------------------------------ *)
(* Single-client steady state *)

type steady = {
  iters_per_s : float;
  p50_us : float;
  p99_us : float;
  minor_words_per_iter : float;
  counters : Core.Observe.Counters.snapshot;
  counted_iters : int;
}

let steady_state compiled data =
  let exec () = ignore (Core.execute ~reuse_outputs:true compiled data) in
  for _ = 1 to 3 do exec () done;
  let iters_per_s = rate_of exec in
  let n = !lat_samples in
  let lat = Array.make n 0. in
  for i = 0 to n - 1 do
    let t0 = Unix.gettimeofday () in
    exec ();
    lat.(i) <- Unix.gettimeofday () -. t0
  done;
  Array.sort compare lat;
  let pct q = lat.(min (n - 1) (int_of_float (q *. float_of_int n))) *. 1e6 in
  let k = !alloc_iters in
  let m0 = Gc.minor_words () in
  for _ = 1 to k do exec () done;
  let minor_words_per_iter = (Gc.minor_words () -. m0) /. float_of_int k in
  let (), counters =
    Core.Observe.Counters.with_counters (fun () -> for _ = 1 to k do exec () done)
  in
  {
    iters_per_s;
    p50_us = pct 0.50;
    p99_us = pct 0.99;
    minor_words_per_iter;
    counters;
    counted_iters = k;
  }

let steady_json s ~fast =
  let open Core.Observe.Json in
  let c = s.counters in
  let base =
    [
      ("iters_per_s", Float s.iters_per_s);
      ("p50_us", Float s.p50_us);
      ("p99_us", Float s.p99_us);
      ("minor_words_per_iter", Float s.minor_words_per_iter);
    ]
  in
  if not fast then Obj base
  else
    let per_iter x = float_of_int x /. float_of_int s.counted_iters in
    (* byte-weighted: arena misses surface as engine temporary
       allocations ([bytes_allocated]); after warmup every Alloc hits *)
    let hit_rate =
      let saved = float_of_int c.Core.Observe.Counters.arena_bytes_saved in
      let missed = float_of_int c.Core.Observe.Counters.bytes_allocated in
      if saved +. missed = 0. then 0. else saved /. (saved +. missed)
    in
    Obj
      (base
      @ [
          ("arena_hits_per_iter", Float (per_iter c.Core.Observe.Counters.arena_hits));
          ("arena_bytes_saved_per_iter", Float (per_iter c.arena_bytes_saved));
          ("arena_hit_rate", Float hit_rate);
          ("envs_reused_per_iter", Float (per_iter c.envs_reused));
        ])

let workload_section w =
  let slow_t = Core.compile ~config:(config ~fastpath:false ()) w.graph in
  let fast_t = Core.compile ~config:(config ~fastpath:true ()) w.graph in
  let slow = steady_state slow_t w.data in
  let fast = steady_state fast_t w.data in
  let reduction =
    if slow.minor_words_per_iter <= 0. then 0.
    else
      (slow.minor_words_per_iter -. fast.minor_words_per_iter)
      /. slow.minor_words_per_iter *. 100.
  in
  let speedup = fast.iters_per_s /. slow.iters_per_s in
  Printf.printf
    "  %-8s slow %8.1f it/s (p99 %7.1f us, %8.0f minor w/it)\n\
    \           fast %8.1f it/s (p99 %7.1f us, %8.0f minor w/it)  %5.1f%% fewer minor words, %.2fx\n%!"
    w.wname slow.iters_per_s slow.p99_us slow.minor_words_per_iter
    fast.iters_per_s fast.p99_us fast.minor_words_per_iter reduction speedup;
  let open Core.Observe.Json in
  ( w.wname,
    Obj
      [
        ("slow", steady_json slow ~fast:false);
        ("fast", steady_json fast ~fast:true);
        ("minor_words_reduction_pct", Float reduction);
        ("throughput_speedup", Float speedup);
      ] )

(* ------------------------------------------------------------------ *)
(* Multi-client: N domains, ONE shared compiled partition *)

let multi_client_throughput compiled data =
  (* serve the init + warm every domain-local cache before timing *)
  ignore (Core.execute compiled data);
  let n = !clients in
  let stop = Atomic.make false in
  let counts = Array.make n 0 in
  let t0 = Unix.gettimeofday () in
  let doms =
    Array.init n (fun i ->
        Domain.spawn (fun () ->
            let c = ref 0 in
            while not (Atomic.get stop) do
              ignore (Core.execute ~reuse_outputs:true compiled data);
              incr c
            done;
            counts.(i) <- !c))
  in
  Unix.sleepf (2. *. !quota);
  Atomic.set stop true;
  Array.iter Domain.join doms;
  let elapsed = Unix.gettimeofday () -. t0 in
  float_of_int (Array.fold_left ( + ) 0 counts) /. elapsed

let multi_client_section w =
  let slow_t = Core.compile ~config:(config ~fastpath:false ()) w.graph in
  let fast_t = Core.compile ~config:(config ~fastpath:true ()) w.graph in
  let slow = multi_client_throughput slow_t w.data in
  let fast = multi_client_throughput fast_t w.data in
  Printf.printf "  %-8s %d clients: slow %8.1f it/s   fast %8.1f it/s   %.2fx\n%!"
    w.wname !clients slow fast (fast /. slow);
  let open Core.Observe.Json in
  Obj
    [
      ("workload", String w.wname);
      ("clients", Int !clients);
      ("slow_iters_per_s", Float slow);
      ("fast_iters_per_s", Float fast);
      ("speedup", Float (fast /. slow));
    ]

(* ------------------------------------------------------------------ *)
(* Compilation cache: cold compiles vs keyed hits *)

let cache_section mode =
  Core.Compile_cache.clear ();
  let build () =
    match mode with
    | `Full -> (Mlp.build_f32 ~batch:32 ~hidden:[ 13; 512; 256; 128 ] ()).Mlp.graph
    | `Tiny -> (Mlp.build_f32 ~batch:4 ~hidden:[ 13; 32; 16 ] ()).Mlp.graph
  in
  let cfg = config ~fastpath:true () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* cold: a fresh graph each time would hit after the first insert, so
     time the uncached [compile] (what every serving process pays without
     the cache), best of 3 *)
  let cold_s =
    let best = ref infinity in
    for _ = 1 to 3 do
      let _, s = time (fun () -> ignore (Core.compile ~config:cfg (build ()))) in
      if s < !best then best := s
    done;
    !best
  in
  let seed = Core.compile_cached ~config:cfg (build ()) in
  (* hits: independently built, structurally identical graphs *)
  let hit_graph = build () in
  let t1 = Core.compile_cached ~config:cfg hit_graph in
  assert (Core.tir_module t1 == Core.tir_module seed);
  let hits = 50 in
  let hit_s =
    let graphs = Array.init hits (fun _ -> build ()) in
    let t0 = Unix.gettimeofday () in
    Array.iter (fun g -> ignore (Core.compile_cached ~config:cfg g)) graphs;
    (Unix.gettimeofday () -. t0) /. float_of_int hits
  in
  let stats = Core.Compile_cache.stats () in
  let speedup = cold_s /. hit_s in
  Printf.printf
    "  cold compile %8.3f ms   cache hit %8.3f us   %.0fx   (hits %d, misses %d)\n%!"
    (cold_s *. 1e3) (hit_s *. 1e6) speedup stats.Core.Compile_cache.hits
    stats.Core.Compile_cache.misses;
  let open Core.Observe.Json in
  Obj
    [
      ("cold_ms", Float (cold_s *. 1e3));
      ("hit_us", Float (hit_s *. 1e6));
      ("speedup", Float speedup);
      ("hits", Int stats.Core.Compile_cache.hits);
      ("misses", Int stats.Core.Compile_cache.misses);
    ]

(* ------------------------------------------------------------------ *)
(* Error path: what the resilience layer costs.  Three numbers on the
   MLP workload:
   - clean-path overhead of [execute_checked] over raw [execute]
     (binding validation + the result boundary; pinned < 2% by the
     validator on full runs),
   - rejected-input latency: a wrong-shape binding bounced by
     validation before any engine state is touched,
   - degraded-mode throughput when every kernel output is NaN-poisoned
     and the sanitize -> retry -> reference-interpreter ladder runs. *)

let latency_us f =
  f ();
  let n = max 100 (!lat_samples / 4) in
  let lat = Array.make n 0. in
  for i = 0 to n - 1 do
    let t0 = Unix.gettimeofday () in
    f ();
    lat.(i) <- Unix.gettimeofday () -. t0
  done;
  Array.sort compare lat;
  let pct q = lat.(min (n - 1) (int_of_float (q *. float_of_int n))) *. 1e6 in
  (pct 0.50, pct 0.99)

let error_path_section w =
  let compiled = Core.compile ~config:(config ~fastpath:true ()) w.graph in
  let options = Core.default_exec_options () in
  let raw () = ignore (Core.execute ~reuse_outputs:true compiled w.data) in
  let checked () =
    match Core.execute_checked ~options ~reuse_outputs:true compiled w.data with
    | Ok _ -> ()
    | Error e -> failwith (Core.Errors.to_string e)
  in
  let raw_rate = rate_of raw in
  let checked_rate = rate_of checked in
  let overhead_pct = (raw_rate -. checked_rate) /. raw_rate *. 100. in
  (* rejected input: first binding replaced by a wrong-shape tensor;
     validation bounces it before touching arena/env state *)
  let x_lt, _ = List.hd w.data in
  let bad = Core.Tensor.random Core.Dtype.F32 (Core.Shape.of_list [ 3; 5 ]) in
  let bad_bindings = (x_lt, bad) :: List.tl w.data in
  let reject () =
    match Core.execute_checked ~options compiled bad_bindings with
    | Error (Core.Errors.Invalid_input _) -> ()
    | Ok _ -> failwith "bad-shape binding accepted"
    | Error e -> failwith (Core.Errors.to_string e)
  in
  let reject_p50, reject_p99 = latency_us reject in
  (* fallback: poison every kernel output, sanitizer promotes it to a
     Runtime_fault, retry fails the same way, reference interpreter
     serves the result *)
  Gc_faultinject.configure ~seed:7 "kernel_nan:1";
  let degraded_opts = { options with Core.sanitize_outputs = true } in
  let fallback () =
    match
      Core.execute_checked ~options:degraded_opts ~reuse_outputs:true compiled
        w.data
    with
    | Ok _ -> ()
    | Error e -> failwith (Core.Errors.to_string e)
  in
  let fallback_rate = rate_of fallback in
  Gc_faultinject.clear ();
  let fallback_slowdown = checked_rate /. fallback_rate in
  Printf.printf
    "  %-8s checked %8.1f it/s vs raw %8.1f it/s  (%+.2f%% overhead)\n\
    \           reject p50 %7.1f us  p99 %7.1f us\n\
    \           fallback-to-interp %8.1f it/s  (%.1fx slower than clean)\n%!"
    w.wname checked_rate raw_rate overhead_pct reject_p50 reject_p99
    fallback_rate fallback_slowdown;
  let open Core.Observe.Json in
  Obj
    [
      ("workload", String w.wname);
      ("raw_iters_per_s", Float raw_rate);
      ("checked_iters_per_s", Float checked_rate);
      ("checked_overhead_pct", Float overhead_pct);
      ("reject_p50_us", Float reject_p50);
      ("reject_p99_us", Float reject_p99);
      ("fallback_iters_per_s", Float fallback_rate);
      ("fallback_slowdown_x", Float fallback_slowdown);
    ]

(* ------------------------------------------------------------------ *)
(* Overload: a bounded Gc_serve server under more closed-loop clients
   than worker slots. Every request carries an SLO deadline of 2x the
   uncontended p99, so the admission ladder (EWMA feasibility, effective
   queue depth, shed-before-dispatch) must absorb the excess as typed
   Overloaded rejections while the p99 of ACCEPTED requests stays inside
   the SLO — the 2x pin, enforced by --validate on full-mode documents. *)

let overload_clients = ref 8
let overload_iters = ref 60

let overload_section w =
  let module Serve = Gc_serve in
  let queue_depth = 4 and workers = 2 in
  let scfg =
    {
      (Serve.default_config ()) with
      Serve.queue_depth;
      workers;
      default_deadline_ms = None;
      max_retries = 1;
    }
  in
  let server = Serve.create ~config:scfg () in
  let h =
    match
      Serve.compile_and_register ~config:(config ~fastpath:true ()) server
        w.graph
    with
    | Ok h -> h
    | Error e -> failwith (Core.Errors.to_string e)
  in
  let call ?deadline_ms () = Serve.call ?deadline_ms server h w.data in
  let must f = match f () with
    | Ok _ -> ()
    | Error e -> failwith (Core.Errors.to_string e)
  in
  must (fun () -> call ());
  let pct a q =
    let m = Array.length a in
    a.(min (m - 1) (int_of_float (q *. float_of_int m))) *. 1e6
  in
  (* uncontended: one closed-loop client, no deadline pressure *)
  let n = max 100 (!lat_samples / 4) in
  let lat = Array.make n 0. in
  for i = 0 to n - 1 do
    let t0 = Unix.gettimeofday () in
    must (fun () -> call ());
    lat.(i) <- Unix.gettimeofday () -. t0
  done;
  Array.sort compare lat;
  let unc_p50 = pct lat 0.50 and unc_p99 = pct lat 0.99 in
  let base = Serve.stats server in
  (* overload: closed-loop clients >> workers, every request under the
     2x-p99 SLO; clients record the latency of their accepted requests *)
  let deadline_ms = max 1 (int_of_float (ceil (2. *. unc_p99 /. 1000.))) in
  let clients_n = !overload_clients and iters = !overload_iters in
  let acc_mu = Mutex.create () in
  let accepted = ref [] in
  let client _ =
    for _ = 1 to iters do
      let t0 = Unix.gettimeofday () in
      match call ~deadline_ms () with
      | Ok _ ->
          let dt = Unix.gettimeofday () -. t0 in
          Mutex.lock acc_mu;
          accepted := dt :: !accepted;
          Mutex.unlock acc_mu
      | Error
          ( Core.Errors.Overloaded _ | Core.Errors.Timeout _
          | Core.Errors.Runtime_fault _ | Core.Errors.Resource_exhausted _ )
        ->
          ()
      | Error e -> failwith (Core.Errors.to_string e)
    done
  in
  let threads = List.init clients_n (fun c -> Thread.create client c) in
  List.iter Thread.join threads;
  let s = Serve.stats server in
  Serve.shutdown server;
  let submitted = s.Serve.submitted - base.Serve.submitted in
  let ok = s.Serve.ok - base.Serve.ok in
  let shed = s.Serve.overloaded - base.Serve.overloaded in
  let timeouts = s.Serve.timeouts - base.Serve.timeouts in
  let faults = s.Serve.faults - base.Serve.faults in
  let shed_rate =
    if submitted = 0 then 0. else float_of_int shed /. float_of_int submitted
  in
  let acc = Array.of_list !accepted in
  Array.sort compare acc;
  let acc_p50 = if Array.length acc = 0 then 0. else pct acc 0.50 in
  let acc_p99 = if Array.length acc = 0 then 0. else pct acc 0.99 in
  let p99_ratio = if unc_p99 = 0. then 0. else acc_p99 /. unc_p99 in
  Printf.printf
    "  %-8s uncontended p50 %7.1f us  p99 %7.1f us  (SLO deadline %d ms)\n\
    \           %d clients x %d: %d submitted, %d ok, %d shed (%.0f%%), %d \
     timeout, %d fault\n\
    \           accepted p50 %7.1f us  p99 %7.1f us  =  %.2fx uncontended p99\n\
     %!"
    w.wname unc_p50 unc_p99 deadline_ms clients_n iters submitted ok shed
    (shed_rate *. 100.) timeouts faults acc_p50 acc_p99 p99_ratio;
  let open Core.Observe.Json in
  Obj
    [
      ("workload", String w.wname);
      ("clients", Int clients_n);
      ("iters_per_client", Int iters);
      ("queue_depth", Int queue_depth);
      ("workers", Int workers);
      ("deadline_ms", Int deadline_ms);
      ("submitted", Int submitted);
      ("accepted", Int ok);
      ("shed", Int shed);
      ("timeouts", Int timeouts);
      ("faults", Int faults);
      ("shed_rate", Float shed_rate);
      ("uncontended_p50_us", Float unc_p50);
      ("uncontended_p99_us", Float unc_p99);
      ("accepted_p50_us", Float acc_p50);
      ("accepted_p99_us", Float acc_p99);
      ("p99_ratio", Float p99_ratio);
    ]

(* ------------------------------------------------------------------ *)
(* Whole-model serving: the BERT block stack and DLRM, f32 and int8,
   each registered on its own bounded Gc_serve server. Reported per
   model: single-client accepted latency and throughput, plus the shed
   rate under a closed-loop burst of more clients than workers. A warm
   call is checked against the reference interpreter so the numbers can
   never describe a miscompiled model. *)

let model_workloads mode =
  match mode with
  | `Full ->
      [
        (let b = Bert.build_f32 ~layers:2 ~batch:2 ~seq:32 ~hidden:64 ~heads:4 () in
         ("bert_f32", b.Bert.graph, b.Bert.data));
        (let b = Bert.build_int8 ~layers:2 ~batch:2 ~seq:32 ~hidden:64 ~heads:4 () in
         ("bert_int8", b.Bert.graph, b.Bert.data));
        (let d =
           Dlrm.build_f32 ~batch:16 ~dense_dim:13 ~bottom:[ 64; 32 ] ~tables:4
             ~vocab:100 ~emb_dim:32 ~top:[ 64; 1 ] ()
         in
         ("dlrm_f32", d.Dlrm.graph, d.Dlrm.data));
        (let d =
           Dlrm.build_int8 ~batch:16 ~dense_dim:13 ~bottom:[ 64; 32 ] ~tables:4
             ~vocab:100 ~emb_dim:32 ~top:[ 64; 1 ] ()
         in
         ("dlrm_int8", d.Dlrm.graph, d.Dlrm.data));
      ]
  | `Tiny ->
      [
        (let b = Bert.build_f32 ~layers:1 ~batch:1 ~seq:8 ~hidden:16 ~heads:2 () in
         ("bert_f32", b.Bert.graph, b.Bert.data));
        (let b = Bert.build_int8 ~layers:1 ~batch:1 ~seq:8 ~hidden:16 ~heads:2 () in
         ("bert_int8", b.Bert.graph, b.Bert.data));
        (let d =
           Dlrm.build_f32 ~batch:4 ~dense_dim:4 ~bottom:[ 8; 8 ] ~tables:2
             ~vocab:20 ~emb_dim:8 ~top:[ 8; 1 ] ()
         in
         ("dlrm_f32", d.Dlrm.graph, d.Dlrm.data));
        (let d =
           Dlrm.build_int8 ~batch:4 ~dense_dim:4 ~bottom:[ 8; 8 ] ~tables:2
             ~vocab:20 ~emb_dim:8 ~top:[ 8; 1 ] ()
         in
         ("dlrm_int8", d.Dlrm.graph, d.Dlrm.data));
      ]

let model_section (name, graph, data) =
  let module Serve = Gc_serve in
  let queue_depth = 4 and workers = 2 in
  let scfg =
    {
      (Serve.default_config ()) with
      Serve.queue_depth;
      workers;
      default_deadline_ms = None;
      max_retries = 1;
    }
  in
  let server = Serve.create ~config:scfg () in
  let h =
    match
      Serve.compile_and_register ~config:(config ~fastpath:true ()) server graph
    with
    | Ok h -> h
    | Error e -> failwith (Core.Errors.to_string e)
  in
  let call ?deadline_ms () = Serve.call ?deadline_ms server h data in
  (* warm-up doubles as a correctness guard (int8 pinned tolerances are
     tighter in the test suites; this only rejects a miscompile) *)
  (match call () with
  | Ok outs ->
      let expect = Core.reference graph data in
      List.iter2
        (fun got e ->
          if not (Core.Tensor.allclose ~rtol:2e-2 ~atol:2e-2 got e) then
            failwith (name ^ ": served output diverged from reference"))
        outs expect
  | Error e -> failwith (Core.Errors.to_string e));
  (* single-client accepted latency *)
  let n = max 50 (!lat_samples / 8) in
  let lat = Array.make n 0. in
  for i = 0 to n - 1 do
    let t0 = Unix.gettimeofday () in
    (match call () with
    | Ok _ -> ()
    | Error e -> failwith (Core.Errors.to_string e));
    lat.(i) <- Unix.gettimeofday () -. t0
  done;
  let total_s = Array.fold_left ( +. ) 0. lat in
  let iters_per_s = float_of_int n /. total_s in
  Array.sort compare lat;
  let pct q = lat.(min (n - 1) (int_of_float (q *. float_of_int n))) *. 1e6 in
  let p50 = pct 0.50 and p99 = pct 0.99 in
  (* burst: closed-loop clients >> workers under a 2x-p99 deadline *)
  let base = Serve.stats server in
  let deadline_ms = max 1 (int_of_float (ceil (2. *. p99 /. 1000.))) in
  let client _ =
    for _ = 1 to !overload_iters do
      match call ~deadline_ms () with
      | Ok _ -> ()
      | Error
          ( Core.Errors.Overloaded _ | Core.Errors.Timeout _
          | Core.Errors.Runtime_fault _ | Core.Errors.Resource_exhausted _ ) ->
          ()
      | Error e -> failwith (Core.Errors.to_string e)
    done
  in
  let threads = List.init !overload_clients (fun c -> Thread.create client c) in
  List.iter Thread.join threads;
  let s = Serve.stats server in
  Serve.shutdown server;
  let submitted = s.Serve.submitted - base.Serve.submitted in
  let ok = s.Serve.ok - base.Serve.ok in
  let shed = s.Serve.overloaded - base.Serve.overloaded in
  let shed_rate =
    if submitted = 0 then 0. else float_of_int shed /. float_of_int submitted
  in
  Printf.printf
    "  %-10s %8.1f it/s  p50 %8.1f us  p99 %8.1f us   burst: %d submitted, %d \
     ok, %d shed (%.0f%%)\n\
     %!"
    name iters_per_s p50 p99 submitted ok shed (shed_rate *. 100.);
  let open Core.Observe.Json in
  ( name,
    Obj
      [
        ("iters_per_s", Float iters_per_s);
        ("p50_us", Float p50);
        ("p99_us", Float p99);
        ("queue_depth", Int queue_depth);
        ("workers", Int workers);
        ("burst_submitted", Int submitted);
        ("burst_accepted", Int ok);
        ("burst_shed", Int shed);
        ("shed_rate", Float shed_rate);
      ] )

let models_section mode = List.map model_section (model_workloads mode)

(* ------------------------------------------------------------------ *)
(* Batching: shape-polymorphic bucketed specialization and request
   coalescing. Two measurements:

   - bucket hit rate: varying-batch traffic (1..32) through one
     [compile_poly] MLP. The bucket ladder folds every batch onto a
     handful of specializations, so after the first round nearly every
     request is served by an already-compiled bucket — the hit rate is
     pinned >= 0.9 by --validate on full runs.
   - coalescing on vs off: 8 closed-loop clients of batch-1 requests on
     one poly handle, one worker, no deadlines (equal — zero — shed rate
     on both sides). On: compatible requests gathered into one batched
     execution per window. The throughput ratio is pinned >= 1.5x on
     full runs, and gather-window deadline violations are pinned to
     zero. *)

module Dim = Gc_graph_ir.Dim

let batching_clients = ref 8

let poly_mlp_built mode =
  let hidden =
    match mode with `Full -> [ 13; 512; 256; 128 ] | `Tiny -> [ 13; 32; 16 ]
  in
  Mlp.build_f32 ~batch:4 ~batch_dim:(Dim.Sym "b") ~hidden ()

(* Bindings at actual batch [n]: fresh activations, the built graph's own
   physically-shared weights (a coalescing requirement). *)
let poly_bindings (b : Mlp.built) ~seed n =
  List.map
    (fun ((lt : Core.Logical_tensor.t), v) ->
      if Dim.has_sym lt.dims then
        ( lt,
          Core.Tensor.random ~seed Core.Dtype.F32
            (Core.Shape.of_list [ n; Core.Shape.dim lt.shape 1 ]) )
      else (lt, v))
    b.Mlp.data

let bucket_subsection mode =
  let b = poly_mlp_built mode in
  let p = Core.compile_poly ~config:(config ~fastpath:true ()) b.Mlp.graph in
  let batches = [ 1; 2; 3; 4; 5; 6; 7; 8; 12; 16; 20; 24; 28; 32 ] in
  let rounds = match mode with `Full -> 10 | `Tiny -> 5 in
  let reqs = List.map (fun n -> poly_bindings b ~seed:(40 + n) n) batches in
  let c0 = Core.Observe.Counters.snapshot () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    List.iter
      (fun bs ->
        (* raw executes raise under an armed fault registry (the chaos CI
           variant); a faulted iteration still probed the bucket cache *)
        try ignore (Core.execute_poly p bs) with Gc_errors.Error _ -> ())
      reqs
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let c1 = Core.Observe.Counters.snapshot () in
  let compiles = c1.bucket_compiles - c0.bucket_compiles in
  let hits = c1.bucket_cache_hits - c0.bucket_cache_hits in
  let waste = c1.pad_waste_rows - c0.pad_waste_rows in
  let executes = rounds * List.length batches in
  let hit_rate =
    if hits + compiles = 0 then 0.
    else float_of_int hits /. float_of_int (hits + compiles)
  in
  Printf.printf
    "  buckets: %d executes over %d batch sizes -> %d specializations, hit \
     rate %.3f, %d padded rows (%.1f it/s)\n\
     %!"
    executes (List.length batches) compiles hit_rate waste
    (float_of_int executes /. elapsed);
  let open Core.Observe.Json in
  Obj
    [
      ("executes", Int executes);
      ("distinct_batches", Int (List.length batches));
      ("bucket_compiles", Int compiles);
      ("bucket_cache_hits", Int hits);
      ("hit_rate", Float hit_rate);
      ("pad_waste_rows", Int waste);
      ("iters_per_s", Float (float_of_int executes /. elapsed));
    ]

(* Closed-loop batch-1 clients against one poly handle; returns
   (tickets_ok_per_s, shed_rate, server stats delta). *)
let coalesce_run ~window_ms ~workers b p =
  let module Serve = Gc_serve in
  let scfg =
    {
      (Serve.default_config ()) with
      Serve.queue_depth = 32;
      workers;
      default_deadline_ms = None;
      max_retries = 1;
      coalesce_window_ms = window_ms;
      max_coalesce = 8;
    }
  in
  let server = Serve.create ~config:scfg () in
  let h = Serve.register_poly server p in
  let reqs =
    List.init !batching_clients (fun c -> poly_bindings b ~seed:(100 + c) 1)
  in
  (match Serve.call server h (List.hd reqs) with
  | Ok _
  | Error
      ( Core.Errors.Overloaded _ | Core.Errors.Timeout _
      | Core.Errors.Runtime_fault _ | Core.Errors.Resource_exhausted _ ) ->
      ()
  | Error e -> failwith (Core.Errors.to_string e));
  let base = Serve.stats server in
  let stop = Atomic.make false in
  let client bs =
    while not (Atomic.get stop) do
      match Serve.call server h bs with
      | Ok _ -> ()
      | Error
          ( Core.Errors.Overloaded _ | Core.Errors.Timeout _
          | Core.Errors.Runtime_fault _ | Core.Errors.Resource_exhausted _ ) ->
          ()
      | Error e -> failwith (Core.Errors.to_string e)
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.map (fun bs -> Thread.create client bs) reqs in
  Unix.sleepf (2. *. !quota);
  Atomic.set stop true;
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let s = Serve.stats server in
  Serve.shutdown server;
  let ok = s.Serve.ok - base.Serve.ok in
  let submitted = s.Serve.submitted - base.Serve.submitted in
  let shed = s.Serve.overloaded - base.Serve.overloaded in
  let shed_rate =
    if submitted = 0 then 0. else float_of_int shed /. float_of_int submitted
  in
  ( float_of_int ok /. elapsed,
    shed_rate,
    s.Serve.coalesced_batches - base.Serve.coalesced_batches,
    s.Serve.coalesced_tickets - base.Serve.coalesced_tickets )

let coalesce_subsection mode =
  let b = poly_mlp_built mode in
  let p = Core.compile_poly ~config:(config ~fastpath:true ()) b.Mlp.graph in
  let v0 = (Core.Observe.Counters.snapshot ()).window_deadline_violations in
  (* one worker on both sides: the off/on delta is then purely the gather
     window (the workers share one compute pool anyway, so a second
     worker barely moves the off-rate) *)
  let workers = 1 in
  let off_rate, off_shed, _, _ = coalesce_run ~window_ms:0. ~workers b p in
  let on_rate, on_shed, batches, tickets =
    coalesce_run ~window_ms:2. ~workers b p
  in
  let v1 = (Core.Observe.Counters.snapshot ()).window_deadline_violations in
  let speedup = if off_rate = 0. then 0. else on_rate /. off_rate in
  let avg_tickets =
    if batches = 0 then 0. else float_of_int tickets /. float_of_int batches
  in
  Printf.printf
    "  coalesce: %d clients batch-1  off %8.1f tickets/s  on %8.1f tickets/s \
     (%.2fx)\n\
    \            %d batches avg %.1f tickets/batch, shed %.0f%%/%.0f%%, %d \
     window violations\n\
     %!"
    !batching_clients off_rate on_rate speedup batches avg_tickets
    (off_shed *. 100.) (on_shed *. 100.) (v1 - v0);
  let open Core.Observe.Json in
  Obj
    [
      ("clients", Int !batching_clients);
      ("workers", Int workers);
      ("off_tickets_per_s", Float off_rate);
      ("on_tickets_per_s", Float on_rate);
      ("speedup", Float speedup);
      ("off_shed_rate", Float off_shed);
      ("on_shed_rate", Float on_shed);
      ("coalesced_batches", Int batches);
      ("coalesced_tickets", Int tickets);
      ("avg_tickets_per_batch", Float avg_tickets);
      ("window_deadline_violations", Int (v1 - v0));
    ]

let batching_section mode =
  let open Core.Observe.Json in
  let bk = bucket_subsection mode in
  let co = coalesce_subsection mode in
  Obj [ ("buckets", bk); ("coalesce", co) ]

(* ------------------------------------------------------------------ *)
(* Measured autotuning (PR 8): sync-tune headline GEMM shapes into a
   temporary tuning DB, then reload the DB in a fresh policy state and
   recompile isomorphic graphs to prove persistence (db_hits > 0) and
   that a DB-hit compile stays within noise of a plain compile.

   Per shape the tuner's own measurements are reported: [static_ms] is
   the static heuristic's choice measured under the same harness,
   [tuned_ms] the winning candidate — tuned <= static holds by
   construction (the static config is always in the measured set), which
   is exactly the "never worse on a headline shape" pin. The mispredicted
   shapes (m = 6 skinny rows; 31x61x33 ragged) are where the static
   model's tile leaves measurable room — full runs pin a >= 1.01x win on
   at least one of them. *)

module Autotune = Gc_tuning.Autotune
module Tune_db = Gc_tuning.Tune_db

(* GEMM views of the BENCH_micro shapes (m, n, k = batch * kb): the
   headline shape first, then the mispredicted ones. *)
let tune_shapes mode =
  match mode with
  | `Full ->
      [
        ("f32_64x64x64_bs4", 64, 64, 256);
        ("f32_6x64x64_bs4", 6, 64, 256);
        ("f32_31x61x33_bs3", 31, 61, 99);
      ]
  | `Tiny -> [ ("f32_16x16x16_bs2", 16, 16, 32); ("f32_7x9x5_bs2", 7, 9, 10) ]

let tuning_section mode =
  let open Core.Observe.Json in
  let cfg = config ~fastpath:true () in
  let db = Filename.temp_file "gc_tune_bench" ".json" in
  Sys.remove db (* start from an absent DB: the cold-miss path *);
  let budget = match mode with `Full -> 150 | `Tiny -> 40 in
  let build (_, m, n, k) =
    (* one matmul layer (k -> n features, m rows) + bias + relu: the same
       post-op chain the serving workloads carry *)
    let b = Mlp.build_f32 ~batch:m ~hidden:[ k; n ] () in
    b.Mlp.graph
  in
  let shapes = tune_shapes mode in
  (* phase 1: cold compiles under GC_TUNE=sync measure-tune every shape *)
  Autotune.reset ();
  Autotune.set_db_path (Some db);
  Autotune.set_budget_ms (Some budget);
  Autotune.set_mode Autotune.Sync;
  let (), cold =
    Core.Observe.Counters.with_counters (fun () ->
        List.iter (fun s -> ignore (Core.compile ~config:cfg (build s))) shapes)
  in
  let entries = Autotune.entries () in
  let per_shape =
    List.map
      (fun (name, m, n, k) ->
        match
          List.find_opt
            (fun e ->
              e.Tune_db.e_m = m && e.Tune_db.e_n = n && e.Tune_db.e_k = k)
            entries
        with
        | None ->
            Printf.eprintf "tuning: no DB entry recorded for %s\n" name;
            exit 1
        | Some e ->
            let speedup =
              if e.Tune_db.e_expected_ms > 0. then
                e.Tune_db.e_static_ms /. e.Tune_db.e_expected_ms
              else 1.
            in
            Printf.printf
              "  %-20s tuned %.4f ms  static %.4f ms  (%.2fx)  tile \
               %dx%dx%d bs%d grid %dx%dx%d\n\
               %!"
              name e.Tune_db.e_expected_ms e.Tune_db.e_static_ms speedup
              e.Tune_db.e_mb e.Tune_db.e_nb e.Tune_db.e_kb e.Tune_db.e_bs
              e.Tune_db.e_mpn e.Tune_db.e_npn e.Tune_db.e_kpn;
            ( name,
              Obj
                [
                  ("m", Int m);
                  ("n", Int n);
                  ("k", Int k);
                  ("tuned_ms", Float e.Tune_db.e_expected_ms);
                  ("static_ms", Float e.Tune_db.e_static_ms);
                  ("speedup", Float speedup);
                  ("tile_m", Int e.Tune_db.e_mb);
                  ("tile_n", Int e.Tune_db.e_nb);
                  ("tile_k", Int e.Tune_db.e_kb);
                  ("tile_bs", Int e.Tune_db.e_bs);
                  ( "grid",
                    String
                      (Printf.sprintf "%dx%dx%d" e.Tune_db.e_mpn
                         e.Tune_db.e_npn e.Tune_db.e_kpn) );
                ] ))
      shapes
  in
  let best_speedup =
    List.fold_left
      (fun acc (_, j) ->
        match member "speedup" j with Some (Float s) -> max acc s | _ -> acc)
      1. per_shape
  in
  (* phase 2: fresh policy state, isomorphic graphs — every tuned shape
     must now be served from the reloaded on-disk DB *)
  Autotune.reset ();
  Autotune.set_mode Autotune.Consult;
  let (), warm =
    Core.Observe.Counters.with_counters (fun () ->
        List.iter (fun s -> ignore (Core.compile ~config:cfg (build s))) shapes)
  in
  (* phase 3: compile wallclock, plain (tuning off) vs DB-hit — the
     consultation (fingerprint + hash lookup + re-validation) must stay
     within noise of the static compile *)
  let g = build (List.hd shapes) in
  Autotune.set_mode Autotune.Off;
  let plain_rate = rate_of (fun () -> ignore (Core.compile ~config:cfg g)) in
  Autotune.set_mode Autotune.Consult;
  let hit_rate = rate_of (fun () -> ignore (Core.compile ~config:cfg g)) in
  let overhead_ratio = if hit_rate > 0. then plain_rate /. hit_rate else 1. in
  Printf.printf
    "  tunes %d (%d ms measuring)   reload hits %d/%d   DB-hit compile \
     %.3fx plain\n\
     %!"
    cold.Core.Observe.Counters.tunes_run
    cold.Core.Observe.Counters.tune_time_ms
    warm.Core.Observe.Counters.tune_db_hits
    (List.length shapes) overhead_ratio;
  (* restore the ambient (env-derived) policy and drop the temp DB *)
  Autotune.set_mode Autotune.Off;
  Autotune.set_db_path None;
  Autotune.set_budget_ms None;
  Autotune.reset ();
  (try Sys.remove db with Sys_error _ -> ());
  Obj
    [
      ("budget_ms", Int budget);
      ("shapes", Obj per_shape);
      ("best_speedup", Float best_speedup);
      ("tunes_run", Int cold.Core.Observe.Counters.tunes_run);
      ("tune_time_ms", Int cold.Core.Observe.Counters.tune_time_ms);
      ("cold_misses", Int cold.Core.Observe.Counters.tune_db_misses);
      ("db_hits", Int warm.Core.Observe.Counters.tune_db_hits);
      ("hit_compile_overhead_ratio", Float overhead_ratio);
    ]

(* ------------------------------------------------------------------ *)
(* Self-healing (supervision): measured recovery. Phase 1 runs a
   closed-loop burst against an undisturbed server, then the same burst
   with worker-death faults armed (every ticket must still resolve in a
   typed outcome, nothing double-resolved), then again after the
   supervisor respawned the slots — the recovered throughput is pinned
   >= 0.9x the undisturbed baseline by --validate on full runs. Phase 2
   measures a parallel pool's speedup over sequential, poisons it with a
   never-draining straggler, lets supervision reincarnate the worker
   complement, and re-measures — the post-reincarnation speedup is
   pinned >= 0.9x the pre-fault speedup. *)

let health_burst_per = ref 40

let health_section mode w =
  let module Serve = Gc_serve in
  let module Supervise = Gc_supervise in
  let module Fault = Gc_faultinject in
  let module Parallel = Gc_runtime.Parallel in
  let queue_depth = 8 and workers = 2 and burst_clients = 2 in
  (* a generous restart budget: the bench injects many deaths on purpose
     and measures respawn mechanics, not budget exhaustion *)
  let pol =
    {
      (Supervise.default_policy ()) with
      Supervise.restart_budget = 1000;
      backoff_base_ms = 0.5;
      backoff_cap_ms = 2.;
    }
  in
  let scfg =
    {
      (Serve.default_config ()) with
      Serve.queue_depth;
      workers;
      default_deadline_ms = None;
      max_retries = 1;
      supervision = pol;
    }
  in
  let server = Serve.create ~config:scfg () in
  let h =
    match
      Serve.compile_and_register ~config:(config ~fastpath:true ()) server
        w.graph
    with
    | Ok h -> h
    | Error e -> failwith (Core.Errors.to_string e)
  in
  (match Serve.call server h w.data with
  | Ok _ -> ()
  | Error e -> failwith (Core.Errors.to_string e));
  (* closed-loop burst: [burst_clients] threads, [per] calls each; every
     call must resolve (typed outcomes all count — the point is that no
     ticket is ever lost), and the wall-clock gives requests/s *)
  let burst () =
    let per = !health_burst_per in
    let resolved = Atomic.make 0 in
    let t0 = Unix.gettimeofday () in
    let client _ =
      for _ = 1 to per do
        (match Serve.call server h w.data with
        | Ok _
        | Error
            ( Core.Errors.Overloaded _ | Core.Errors.Timeout _
            | Core.Errors.Runtime_fault _ | Core.Errors.Resource_exhausted _ )
          ->
            ()
        | Error e -> failwith (Core.Errors.to_string e));
        Atomic.incr resolved
      done
    in
    let threads = List.init burst_clients (fun c -> Thread.create client c) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let submitted = burst_clients * per in
    let rps = if wall > 0. then float_of_int submitted /. wall else 0. in
    (submitted, Atomic.get resolved, rps)
  in
  (* best-of-2, as rate_of does for the steady-state sections: one burst
     of this closed-loop shape is ~10% noisy on a busy host, which is the
     same order as the 0.9x recovery pin *)
  let best_burst () =
    let _, _, a = burst () in
    let _, _, b = burst () in
    Float.max a b
  in
  let dr0 = Serve.double_resolve_count () in
  let s0 = Core.Observe.Counters.snapshot () in
  let baseline_rps = best_burst () in
  (* the same burst under injected worker deaths *)
  Fault.configure ~seed:7 "worker_death:10";
  let sub_f, res_f, disturbed_rps = burst () in
  let deaths = Fault.fire_count Fault.site_worker_death in
  Fault.clear ();
  (* recovery: time until every slot is live and the tier reports healthy *)
  let t_heal = Unix.gettimeofday () in
  let deadline = t_heal +. 10. in
  while
    ((Serve.stats server).Serve.workers_live < workers
    || (Serve.tier_health server).Supervise.ch_level <> Supervise.Healthy)
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.001
  done;
  let recovery_ms = (Unix.gettimeofday () -. t_heal) *. 1000. in
  let recovered_rps = best_burst () in
  let s1 = Core.Observe.Counters.snapshot () in
  let restarts =
    s1.Core.Observe.Counters.workers_restarted
    - s0.Core.Observe.Counters.workers_restarted
  in
  let double_resolves = Serve.double_resolve_count () - dr0 in
  let recovery_ratio =
    if baseline_rps > 0. then recovered_rps /. baseline_rps else 0.
  in
  let final_health =
    Supervise.level_to_string (Serve.tier_health server).Supervise.ch_level
  in
  Serve.shutdown server;
  Printf.printf
    "  %-8s baseline %7.1f req/s  disturbed %7.1f  recovered %7.1f \
     (%.2fx baseline)\n\
    \           %d injected deaths, %d respawns, %d/%d tickets resolved, %d \
     double-resolves, healed in %.1f ms\n\
     %!"
    w.wname baseline_rps disturbed_rps recovered_rps recovery_ratio deaths
    restarts res_f sub_f double_resolves recovery_ms;
  (* phase 2: pool reincarnation must restore the parallel speedup *)
  let n = match mode with `Full -> 400_000 | `Tiny -> 60_000 in
  let reps = match mode with `Full -> 5 | `Tiny -> 2 in
  let pool_n = 4 in
  let seq = Parallel.create 1 in
  let pool = Parallel.create pool_n in
  let time_work p =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      Parallel.parallel_for p ~lo:0 ~hi:n (fun lo hi ->
          let s = ref 0. in
          for i = lo to hi - 1 do
            s := !s +. sin (float_of_int i *. 1e-3)
          done;
          ignore (Sys.opaque_identity !s))
    done;
    Unix.gettimeofday () -. t0
  in
  ignore (time_work pool);
  let t_seq = time_work seq in
  let speedup_pre = t_seq /. Float.max 1e-9 (time_work pool) in
  (* poison: a straggler that never drains on its own. Non-submitter
     claimants park on the gate; the submitter dawdles through its own
     claims so worker domains win some. *)
  let gate = Atomic.make false in
  let submitter = Domain.self () in
  (match
     Core.Guard.with_deadline ~timeout_ms:40 ~site:"bench-health" (fun () ->
         Parallel.run pool
           (Array.init pool_n (fun _ () ->
                if Domain.self () = submitter then Thread.delay 0.005
                else
                  while not (Atomic.get gate) do
                    Thread.yield ()
                  done)))
   with
  | () -> failwith "health: straggler deadline did not trip"
  | exception Core.Errors.Error (Core.Errors.Timeout _) -> ());
  if not (Parallel.is_poisoned pool) then
    failwith "health: pool not poisoned after abandoned barrier";
  let sp0 = Core.Observe.Counters.snapshot () in
  let pol2 = { (Supervise.default_policy ()) with Supervise.grace_ms = 10. } in
  let reg = Supervise.supervise_pool ~policy:pol2 ~name:"bench-pool" pool in
  let t_reinc = Unix.gettimeofday () in
  let deadline = t_reinc +. 10. in
  while Parallel.is_poisoned pool && Unix.gettimeofday () < deadline do
    Thread.delay 0.001
  done;
  let reincarnation_ms = (Unix.gettimeofday () -. t_reinc) *. 1000. in
  Supervise.unregister reg;
  Atomic.set gate true;
  if Parallel.is_poisoned pool then
    failwith "health: supervision did not reincarnate the poisoned pool";
  let sp1 = Core.Observe.Counters.snapshot () in
  let reincarnations =
    sp1.Core.Observe.Counters.pools_reincarnated
    - sp0.Core.Observe.Counters.pools_reincarnated
  in
  let speedup_post = t_seq /. Float.max 1e-9 (time_work pool) in
  let speedup_ratio =
    if speedup_pre > 0. then speedup_post /. speedup_pre else 0.
  in
  Parallel.shutdown pool;
  Parallel.shutdown seq;
  Printf.printf
    "  pool     speedup %5.2fx pre-fault, %5.2fx after reincarnation \
     (%.2fx, %d reincarnation(s), healed in %.1f ms)\n\
     %!"
    speedup_pre speedup_post speedup_ratio reincarnations reincarnation_ms;
  let open Core.Observe.Json in
  Obj
    [
      ("workload", String w.wname);
      ("workers", Int workers);
      ("queue_depth", Int queue_depth);
      ("baseline_rps", Float baseline_rps);
      ("disturbed_rps", Float disturbed_rps);
      ("recovered_rps", Float recovered_rps);
      ("recovery_ratio", Float recovery_ratio);
      ("recovery_ms", Float recovery_ms);
      ("deaths_injected", Int deaths);
      ("workers_restarted", Int restarts);
      ("tickets_submitted", Int sub_f);
      ("tickets_resolved", Int res_f);
      ("tickets_lost", Int (sub_f - res_f));
      ("double_resolves", Int double_resolves);
      ("final_health", String final_health);
      ( "pool",
        Obj
          [
            ("workers", Int pool_n);
            ("speedup_pre", Float speedup_pre);
            ("speedup_post", Float speedup_post);
            ("speedup_ratio", Float speedup_ratio);
            ("reincarnations", Int reincarnations);
            ("reincarnation_ms", Float reincarnation_ms);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Multi-model serving: one registry, four model/precision tenants.

   Phase 1 (noisy neighbor): zipf-weighted closed-loop traffic over all
   four tenants, measured undisturbed and again with worker_death +
   stuck_worker armed AGAINST the hot model only. The fault-isolation
   pin (full runs): every cold tenant keeps >= 0.9x its baseline
   throughput; in every mode no ticket is lost or double-resolved.

   Phase 2 (budget): the memory budget and the compile-cache byte bound
   are sized for roughly two resident models, then a zipf request mix
   touches all four. The mix must complete through LRU parking + lazy
   recompile — evictions and reloads both happen, and Resource_exhausted
   never escapes to a client.

   Phase 3 (quota): a hot flood plus a cold trickle against the
   weighted-fair admission quota — the cold tenant's shed rate must stay
   below the hot tenant's once the hot tenant exceeds its share. *)

let mm_burst_s = ref 0.8 (* chaos-phase burst window per run *)
let mm_zipf_rounds = ref 64 (* budget-phase calls *)
let mm_flood = ref 150 (* quota-phase hot submissions *)
let mm_trickle = ref 24 (* quota-phase cold submissions *)

(* The hot tenant (head of the list) is the fast model, so the chaos
   window carries enough hot-scoped probes to fire the armed faults
   deterministically. Model scale is deliberately modest: this section
   measures tenancy mechanics (isolation, residency, quotas), not model
   throughput — the models section covers full-size serving. *)
let multimodel_workloads mode =
  match mode with
  | `Full ->
      [
        (let d =
           Dlrm.build_f32 ~batch:16 ~dense_dim:13 ~bottom:[ 64; 32 ] ~tables:4
             ~vocab:100 ~emb_dim:32 ~top:[ 64; 1 ] ()
         in
         ("dlrm_f32", d.Dlrm.graph, d.Dlrm.data));
        (let b = Bert.build_f32 ~layers:1 ~batch:2 ~seq:16 ~hidden:32 ~heads:2 () in
         ("bert_f32", b.Bert.graph, b.Bert.data));
        (let b = Mlp.build_int8 ~batch:16 ~hidden:[ 13; 128; 64 ] () in
         ("mlp_int8", b.Mlp.graph, b.Mlp.data));
        (let c =
           Conv.build_f32 ~batch:2 ~height:8 ~width:8 ~channels:8 ~kh:3 ~kw:3
             ~out_channels:16 ~strides:(1, 1) ~pads:(1, 1, 1, 1)
             ~dilations:(1, 1) ()
         in
         ("conv_f32", c.Conv.graph, c.Conv.data));
      ]
  | `Tiny ->
      [
        (let d =
           Dlrm.build_f32 ~batch:4 ~dense_dim:4 ~bottom:[ 8; 8 ] ~tables:2
             ~vocab:20 ~emb_dim:8 ~top:[ 8; 1 ] ()
         in
         ("dlrm_f32", d.Dlrm.graph, d.Dlrm.data));
        (let b = Bert.build_f32 ~layers:1 ~batch:1 ~seq:8 ~hidden:16 ~heads:2 () in
         ("bert_f32", b.Bert.graph, b.Bert.data));
        (let b = Mlp.build_int8 ~batch:4 ~hidden:[ 13; 16; 8 ] () in
         ("mlp_int8", b.Mlp.graph, b.Mlp.data));
        (let c =
           Conv.build_f32 ~batch:1 ~height:4 ~width:4 ~channels:4 ~kh:3 ~kw:3
             ~out_channels:8 ~strides:(1, 1) ~pads:(1, 1, 1, 1)
             ~dilations:(1, 1) ()
         in
         ("conv_f32", c.Conv.graph, c.Conv.data));
      ]

let multimodel_section mode =
  let module Serve = Gc_serve in
  let module Registry = Gc_registry in
  let module Supervise = Gc_supervise in
  let module Fault = Gc_faultinject in
  let module Memgov = Gc_tensor.Memgov in
  let workloads = multimodel_workloads mode in
  let ccfg = config ~fastpath:true () in
  let typed_ok = function
    | Ok _ -> true
    | Error
        ( Core.Errors.Overloaded _ | Core.Errors.Timeout _
        | Core.Errors.Runtime_fault _ | Core.Errors.Resource_exhausted _
        | Core.Errors.Invalid_input _ ) ->
        true
    | Error e -> failwith (Core.Errors.to_string e)
  in
  (* ---------- phase 1: noisy neighbor ---------- *)
  (* enough workers that one dead/stuck slot is a quarter of capacity,
     and aggressive supersession so the tier heals inside the burst —
     cold tenants keep their throughput because recovery is fast, not
     because faults are rare *)
  let workers = 4 and queue_depth = 16 in
  let pol =
    {
      (Supervise.default_policy ()) with
      Supervise.restart_budget = 1000;
      backoff_base_ms = 0.5;
      backoff_cap_ms = 2.;
      stale_ms = 25.;
    }
  in
  let scfg =
    {
      (Serve.default_config ()) with
      Serve.queue_depth;
      workers;
      default_deadline_ms = None;
      max_retries = 1;
      supervision = pol;
    }
  in
  let reg = Registry.create ~config:scfg () in
  let server = Registry.server reg in
  List.iter
    (fun (name, graph, _) ->
      match Registry.load ~config:ccfg reg ~name graph with
      | Ok () -> ()
      | Error e -> failwith (Core.Errors.to_string e))
    workloads;
  List.iter
    (fun (name, _, data) ->
      match Registry.call reg name data with
      | Ok _ -> ()
      | Error e -> failwith (name ^ ": " ^ Core.Errors.to_string e))
    workloads;
  let hot_name, _, _ = List.hd workloads in
  (* every tenant runs closed-loop for the SAME wall window, so a
     transient capacity dip (a stuck slot mid-supersession) is amortized
     identically into every tenant's rate instead of landing entirely on
     whichever short burst overlapped it. Every call must RESOLVE (typed
     errors count — the pin is that nothing hangs or vanishes). *)
  let burst () =
    let n = List.length workloads in
    let rps = Array.make n 0. and calls = Array.make n 0 in
    let resolved = Atomic.make 0 and submitted = Atomic.make 0 in
    let client rank (name, _, data) =
      let t0 = Unix.gettimeofday () in
      let stop = t0 +. !mm_burst_s in
      let count = ref 0 in
      while Unix.gettimeofday () < stop do
        Atomic.incr submitted;
        (match Registry.call reg name data with
        | outcome -> if typed_ok outcome then Atomic.incr resolved);
        incr count
      done;
      calls.(rank) <- !count;
      rps.(rank) <- float_of_int !count /. (Unix.gettimeofday () -. t0)
    in
    let threads =
      List.mapi (fun rank w -> Thread.create (fun () -> client rank w) ()) workloads
    in
    List.iter Thread.join threads;
    (rps, calls, Atomic.get submitted, Atomic.get resolved)
  in
  let dr0 = Serve.double_resolve_count () in
  let rps_a, _, _, _ = burst () in
  let rps_b, _, _, _ = burst () in
  let baseline = Array.map2 Float.max rps_a rps_b in
  Fault.configure ~seed:11 ~slow_ms:10
    (Printf.sprintf "worker_death:25@%s,stuck_worker:40@%s" hot_name hot_name);
  (* best-of-2 under chaos too: the baseline is a max of two windows, so a
     single chaos window would eat measurement noise twice — once as noise,
     once as the max-vs-sample bias. Faults stay armed across both windows
     and the ticket accounting sums them, so the zero-lost pin still covers
     every submitted request. *)
  let chaos_a, calls_a, sub_a, res_a = burst () in
  let chaos_b, calls_b, sub_b, res_b = burst () in
  let chaos = Array.map2 Float.max chaos_a chaos_b in
  let chaos_calls = Array.map2 ( + ) calls_a calls_b in
  let chaos_sub = sub_a + sub_b and chaos_res = res_a + res_b in
  let deaths = Fault.fire_count Fault.site_worker_death in
  let stucks = Fault.fire_count Fault.site_stuck_worker in
  Fault.clear ();
  (* heal before the next phase *)
  let deadline = Unix.gettimeofday () +. 10. in
  while
    ((Serve.stats server).Serve.workers_live < workers
    || (Serve.tier_health server).Supervise.ch_level <> Supervise.Healthy)
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.001
  done;
  let double_resolves = Serve.double_resolve_count () - dr0 in
  let tenant_json =
    List.mapi
      (fun rank (name, _, _) ->
        let ratio =
          if baseline.(rank) > 0. then chaos.(rank) /. baseline.(rank) else 0.
        in
        let role = if name = hot_name then "hot" else "cold" in
        Printf.printf
          "  %-9s %-4s baseline %7.1f req/s  under hot-scoped chaos %7.1f \
           (%.2fx)\n\
           %!"
          name role baseline.(rank) chaos.(rank) ratio;
        let open Core.Observe.Json in
        ( name,
          Obj
            [
              ("role", String role);
              ("baseline_rps", Float baseline.(rank));
              ("chaos_rps", Float chaos.(rank));
              ("chaos_ratio", Float ratio);
              ("calls", Int chaos_calls.(rank));
            ] ))
      workloads
  in
  Printf.printf
    "  chaos: %d deaths + %d stuck workers injected at %s, %d/%d tickets \
     resolved, %d double-resolves\n\
     %!"
    deaths stucks hot_name chaos_res chaos_sub double_resolves;
  Registry.shutdown reg;
  (* ---------- phase 2: budget-bounded residency ---------- *)
  Core.Compile_cache.clear ();
  Gc.full_major ();
  (* size from the compiler's own residency estimate: the cache byte
     bound holds the two largest tenants, and the memory budget gets
     runtime slack on top (arena + output allocations are real charges
     against the same ledger) *)
  let est =
    List.map
      (fun (name, graph, _) ->
        (name, Core.estimated_bytes (Core.compile ~config:ccfg graph)))
      workloads
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) est in
  (* exactly the two largest tenants: with four loaded the cache is over
     this bound by the other two, so the registry MUST park — no margin,
     or a dominant tenant (bert is most of the bytes) would leave the
     bound above the whole working set and the phase would never evict *)
  let cache_cap =
    match sorted with
    | (_, a) :: (_, b) :: _ -> a + b
    | _ -> failwith "multimodel: need >= 2 workloads"
  in
  let total_est = List.fold_left (fun acc (_, b) -> acc + b) 0 est in
  Gc.full_major ();
  let budget = Memgov.used () + (3 * cache_cap) + total_est + (1 lsl 22) in
  Core.Compile_cache.set_max_bytes (Some cache_cap);
  Memgov.set_limit (Some budget);
  let scfg2 =
    {
      (Serve.default_config ()) with
      Serve.queue_depth = 8;
      workers = 1;
      default_deadline_ms = None;
      max_retries = 1;
      supervision = pol;
    }
  in
  let reg = Registry.create ~config:scfg2 () in
  let c0 = Core.Compile_cache.stats () in
  let n0 = Core.Observe.Counters.snapshot () in
  List.iter
    (fun (name, graph, _) ->
      match Registry.load ~config:ccfg reg ~name graph with
      | Ok () -> ()
      | Error e -> failwith ("budget load " ^ name ^ ": " ^ Core.Errors.to_string e))
    workloads;
  (* zipf-distributed request mix (s = 1): deterministic seeded draws *)
  let st = Random.State.make [| 42 |] in
  let wl = Array.of_list workloads in
  let nw = Array.length wl in
  let zipf_w = Array.init nw (fun i -> 1. /. float_of_int (i + 1)) in
  let zipf_total = Array.fold_left ( +. ) 0. zipf_w in
  let draw () =
    let x = Random.State.float st zipf_total in
    let rec pick i acc =
      if i >= nw - 1 then i
      else if acc +. zipf_w.(i) > x then i
      else pick (i + 1) (acc +. zipf_w.(i))
    in
    pick 0 0.
  in
  let re_escapes = ref 0 and served = ref 0 in
  for _ = 1 to !mm_zipf_rounds do
    let name, _, data = wl.(draw ()) in
    match Registry.call ~deadline_ms:30_000 reg name data with
    | Ok _ -> incr served
    | Error (Core.Errors.Resource_exhausted _) -> incr re_escapes
    | Error e -> failwith ("budget mix " ^ name ^ ": " ^ Core.Errors.to_string e)
  done;
  let c1 = Core.Compile_cache.stats () in
  let n1 = Core.Observe.Counters.snapshot () in
  let evictions = c1.Core.Compile_cache.evictions - c0.Core.Compile_cache.evictions in
  let parked =
    n1.Core.Observe.Counters.models_parked - n0.Core.Observe.Counters.models_parked
  in
  let reloads =
    n1.Core.Observe.Counters.models_reloaded
    - n0.Core.Observe.Counters.models_reloaded
  in
  Printf.printf
    "  budget: cache cap %d B (2 largest of %d B total), %d/%d served, %d \
     evictions, %d parks, %d lazy reloads, %d Resource_exhausted escapes\n\
     %!"
    cache_cap total_est !served !mm_zipf_rounds evictions parked reloads
    !re_escapes;
  Registry.shutdown reg;
  Memgov.set_limit None;
  Core.Compile_cache.set_max_bytes None;
  Core.Compile_cache.clear ();
  Gc.full_major ();
  (* ---------- phase 3: admission quota ---------- *)
  let hot_w = List.nth workloads 2 (* mlp_int8: cheap, floods fast *) in
  let cold_w = List.nth workloads 3 (* conv_f32 *) in
  let scfg3 =
    {
      (Serve.default_config ()) with
      Serve.queue_depth = 8;
      workers = 1;
      default_deadline_ms = None;
      max_retries = 1;
      supervision = pol;
    }
  in
  let reg = Registry.create ~config:scfg3 () in
  let load_q (name, graph, _) =
    match Registry.load ~config:ccfg reg ~name graph with
    | Ok () -> ()
    | Error e -> failwith ("quota load " ^ name ^ ": " ^ Core.Errors.to_string e)
  in
  load_q hot_w;
  load_q cold_w;
  let hot_name3, _, hot_data = hot_w in
  let cold_name3, _, cold_data = cold_w in
  (match Registry.call reg hot_name3 hot_data with
  | Ok _ -> ()
  | Error e -> failwith (Core.Errors.to_string e));
  (match Registry.call reg cold_name3 cold_data with
  | Ok _ -> ()
  | Error e -> failwith (Core.Errors.to_string e));
  (* hot floods open-loop (submit without awaiting — queued depth grows
     past its weighted share); cold trickles closed-loop (one request
     outstanding — always inside its share), so any cold shedding is the
     quota failing at its one job *)
  let hot_tickets = Queue.create () in
  let hot_t =
    Thread.create
      (fun () ->
        for _ = 1 to !mm_flood do
          match Registry.submit reg hot_name3 hot_data with
          | Ok tk -> Queue.push tk hot_tickets
          | Error e -> failwith (Core.Errors.to_string e)
        done)
      ()
  in
  let cold_t =
    Thread.create
      (fun () ->
        for _ = 1 to !mm_trickle do
          if not (typed_ok (Registry.call reg cold_name3 cold_data)) then
            failwith "quota: cold call failed untyped"
        done)
      ()
  in
  Thread.join hot_t;
  Thread.join cold_t;
  Queue.iter (fun tk -> ignore (Serve.await tk)) hot_tickets;
  let info name =
    match Registry.model_info reg name with
    | Some i -> i.Registry.mi_serve
    | None -> failwith ("quota: no model_info for " ^ name)
  in
  let hs_hot = info hot_name3 and hs_cold = info cold_name3 in
  let shed_rate (hs : Serve.handle_stats) =
    if hs.Serve.hs_submitted = 0 then 0.
    else float_of_int hs.Serve.hs_shed /. float_of_int hs.Serve.hs_submitted
  in
  let hot_rate = shed_rate hs_hot and cold_rate = shed_rate hs_cold in
  Printf.printf
    "  quota: hot %s %d submitted %d shed (%d over-quota, %.0f%%)   cold %s \
     %d submitted %d shed (%.0f%%)\n\
     %!"
    hot_name3 hs_hot.Serve.hs_submitted hs_hot.Serve.hs_shed
    hs_hot.Serve.hs_quota_shed (hot_rate *. 100.) cold_name3
    hs_cold.Serve.hs_submitted hs_cold.Serve.hs_shed (cold_rate *. 100.);
  Registry.shutdown reg;
  Core.Compile_cache.clear ();
  let open Core.Observe.Json in
  Obj
    [
      ("workers", Int workers);
      ("queue_depth", Int queue_depth);
      ("hot_model", String hot_name);
      ("tenants", Obj tenant_json);
      ("deaths_injected", Int deaths);
      ("stuck_injected", Int stucks);
      ("tickets_submitted", Int chaos_sub);
      ("tickets_resolved", Int chaos_res);
      ("tickets_lost", Int (chaos_sub - chaos_res));
      ("double_resolves", Int double_resolves);
      ( "budget",
        Obj
          [
            ("cache_cap_bytes", Int cache_cap);
            ("total_estimated_bytes", Int total_est);
            ("memgov_budget_bytes", Int budget);
            ("requests", Int !mm_zipf_rounds);
            ("served", Int !served);
            ("evictions", Int evictions);
            ("parks", Int parked);
            ("reloads", Int reloads);
            ("resource_exhausted_escapes", Int !re_escapes);
          ] );
      ( "quota",
        Obj
          [
            ("hot_model", String hot_name3);
            ("cold_model", String cold_name3);
            ("hot_submitted", Int hs_hot.Serve.hs_submitted);
            ("hot_shed", Int hs_hot.Serve.hs_shed);
            ("hot_quota_shed", Int hs_hot.Serve.hs_quota_shed);
            ("hot_shed_rate", Float hot_rate);
            ("cold_submitted", Int hs_cold.Serve.hs_submitted);
            ("cold_shed", Int hs_cold.Serve.hs_shed);
            ("cold_shed_rate", Float cold_rate);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Schema validation (used by CI to keep the harness from rotting) *)

let validate file =
  let ic = open_in file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Core.Observe.Json.of_string s with
  | Error e ->
      Printf.eprintf "%s: JSON parse error: %s\n" file e;
      exit 1
  | Ok j -> (
      let open Core.Observe.Json in
      let fail msg =
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
      in
      (match member "schema" j with
      | Some (String "gc-bench-serving/1") -> ()
      | _ -> fail "missing or wrong \"schema\" (want gc-bench-serving/1)");
      let full =
        match member "mode" j with Some (String "full") -> true | _ -> false
      in
      let check_overload () =
        let ov =
          match member "overload" j with
          | Some ov -> ov
          | None -> fail "missing \"overload\" section"
        in
        (match member "shed_rate" ov with
        | Some (Float r) when r >= 0. && r <= 1. -> ()
        | _ -> fail "overload: missing shed_rate (or outside [0,1])");
        (match member "uncontended_p99_us" ov with
        | Some (Float p) when p > 0. -> ()
        | _ -> fail "overload: missing uncontended_p99_us");
        (match member "accepted_p99_us" ov with
        | Some (Float p) when p >= 0. -> ()
        | _ -> fail "overload: missing accepted_p99_us");
        match (member "p99_ratio" ov, member "accepted" ov) with
        | Some (Float r), Some (Int acc) ->
            (* the overload pin: under saturation, requests the admission
               ladder ACCEPTS must still be served within 2x the
               uncontended p99 — shedding is supposed to protect the SLO
               of everything it lets through. Tiny CI runs are too noisy
               (per-request work is microseconds), so only full-mode
               documents are gated. *)
            if full && acc > 0 && r > 2.0 then
              fail
                (Printf.sprintf
                   "overload: accepted p99 is %.2fx the uncontended p99, \
                    breaching the 2x SLO pin"
                   r)
        | _ -> fail "overload: missing p99_ratio or accepted"
      in
      let check_models () =
        let ms =
          match member "models" j with
          | Some ms -> ms
          | None -> fail "missing \"models\" section"
        in
        List.iter
          (fun name ->
            let mj =
              match member name ms with
              | Some mj -> mj
              | None -> fail ("missing models." ^ name)
            in
            (match member "p99_us" mj with
            | Some (Float p) when p > 0. -> ()
            | _ -> fail (name ^ ": missing p99_us (or not > 0)"));
            (* the models pin: a shed rate outside [0,1] means the
               burst accounting lost requests *)
            match member "shed_rate" mj with
            | Some (Float r) when r >= 0. && r <= 1. -> ()
            | _ -> fail (name ^ ": missing shed_rate (or outside [0,1])"))
          [ "bert_f32"; "bert_int8"; "dlrm_f32"; "dlrm_int8" ]
      in
      let check_batching () =
        let bt =
          match member "batching" j with
          | Some bt -> bt
          | None -> fail "missing \"batching\" section"
        in
        let bk =
          match member "buckets" bt with
          | Some bk -> bk
          | None -> fail "batching: missing buckets"
        in
        (match member "hit_rate" bk with
        | Some (Float r) when r >= 0. && r <= 1. ->
            (* the specialization pin: on full runs, varying-batch traffic
               over the bucket ladder must be served >= 90% from already-
               compiled buckets — otherwise the ladder is fragmenting into
               per-size compiles and the cache is pure overhead. Tiny CI
               runs do fewer rounds, so only presence is checked there. *)
            if full && r < 0.9 then
              fail
                (Printf.sprintf
                   "batching: bucket hit rate %.3f below the 0.9 pin" r)
        | _ -> fail "batching: missing buckets.hit_rate (or outside [0,1])");
        (match member "bucket_compiles" bk with
        | Some (Int n) when n > 0 -> ()
        | _ -> fail "batching: missing buckets.bucket_compiles (or not > 0)");
        let co =
          match member "coalesce" bt with
          | Some co -> co
          | None -> fail "batching: missing coalesce"
        in
        (match
           (member "speedup" co, member "off_shed_rate" co,
            member "on_shed_rate" co)
         with
        | Some (Float sp), Some (Float off), Some (Float on) ->
            (* the coalescing pin: with the gather window on, the same
               multi-client batch-1 traffic must move >= 1.5x the tickets
               per second it does with the window off, at equal (zero)
               shed rate — the speedup must come from batching work, not
               from shedding it. Full runs only; tiny runs are dominated
               by the window itself. *)
            if full then begin
              if off > 0.01 || on > 0.01 then
                fail
                  (Printf.sprintf
                     "batching: shed rates %.3f/%.3f not equal-and-zero — \
                      the coalesce comparison is not apples-to-apples"
                     off on);
              if sp < 1.5 then
                fail
                  (Printf.sprintf
                     "batching: coalescing speedup %.2fx below the 1.5x pin"
                     sp)
            end
        | _ -> fail "batching: missing coalesce.speedup or shed rates");
        (match member "coalesced_batches" co with
        | Some (Int n) ->
            if full && n <= 0 then
              fail "batching: coalescing on but zero coalesced batches"
        | _ -> fail "batching: missing coalesce.coalesced_batches");
        match member "window_deadline_violations" co with
        | Some (Int 0) -> ()
        | Some (Int n) ->
            (* hard pin in every mode: gathering must never cause a
               deadline miss *)
            fail
              (Printf.sprintf
                 "batching: %d gather-window deadline violations (pin: 0)" n)
        | _ -> fail "batching: missing coalesce.window_deadline_violations"
      in
      let check_tuning () =
        let tn =
          match member "tuning" j with
          | Some tn -> tn
          | None -> fail "missing \"tuning\" section"
        in
        let shapes =
          match member "shapes" tn with
          | Some (Obj ((_ :: _) as shapes)) -> shapes
          | _ -> fail "tuning: missing or empty shapes"
        in
        List.iter
          (fun (name, sj) ->
            match member "speedup" sj with
            | Some (Float sp) ->
                (* the never-worse pin, every mode: the static config is
                   always in the measured candidate set, so the recorded
                   winner can only tie or beat it. A speedup below 1 means
                   the tuner stored something it did not measure best. The
                   epsilon absorbs float round-trips through JSON. *)
                if sp < 0.999 then
                  fail
                    (Printf.sprintf
                       "tuning: %s tuned slower than static (%.3fx) — \
                        breaches the never-worse pin"
                       name sp)
            | _ -> fail ("tuning: " ^ name ^ " missing speedup"))
          shapes;
        (match member "best_speedup" tn with
        | Some (Float sp) ->
            (* the measured-win pin: on full runs at least one mispredicted
               shape must improve >= 1.01x over the static model —
               otherwise the whole measuring apparatus is dead weight.
               Tiny runs use microsecond problems (pure noise), so only
               presence is checked there. *)
            if full && sp < 1.01 then
              fail
                (Printf.sprintf
                   "tuning: best speedup %.3fx below the 1.01x \
                    measured-win pin"
                   sp)
        | _ -> fail "tuning: missing best_speedup");
        (match member "db_hits" tn with
        | Some (Int h) ->
            (* persistence pin, every mode: after a policy reset the
               reloaded on-disk DB must serve the recompiles *)
            if h <= 0 then
              fail "tuning: zero db_hits after reload — persistence broken"
        | _ -> fail "tuning: missing db_hits");
        (match member "tunes_run" tn with
        | Some (Int n) when n > 0 -> ()
        | _ -> fail "tuning: missing tunes_run (or zero)");
        match member "hit_compile_overhead_ratio" tn with
        | Some (Float r) ->
            (* the compile-overhead pin (full runs): consulting the DB on
               a hit must cost < 5% of a plain compile *)
            if full && r > 1.05 then
              fail
                (Printf.sprintf
                   "tuning: DB-hit compile is %.3fx a plain compile \
                    (pin: 1.05)"
                   r)
        | _ -> fail "tuning: missing hit_compile_overhead_ratio"
      in
      let check_health () =
        let hl =
          match member "health" j with
          | Some hl -> hl
          | None -> fail "missing \"health\" section"
        in
        (match member "tickets_lost" hl with
        | Some (Int 0) -> ()
        | Some (Int n) ->
            (* hard pin in every mode: supervision may cost latency, never
               a ticket — every submitted request resolves exactly once *)
            fail (Printf.sprintf "health: %d lost tickets (pin: 0)" n)
        | _ -> fail "health: missing tickets_lost");
        (match member "double_resolves" hl with
        | Some (Int 0) -> ()
        | Some (Int n) ->
            fail (Printf.sprintf "health: %d double resolutions (pin: 0)" n)
        | _ -> fail "health: missing double_resolves");
        (match member "deaths_injected" hl with
        | Some (Int n) when n > 0 -> ()
        | _ ->
            fail "health: zero injected deaths — the scenario never fired");
        (match member "workers_restarted" hl with
        | Some (Int n) when n > 0 -> ()
        | _ -> fail "health: missing workers_restarted (or zero)");
        (match member "final_health" hl with
        | Some (String "healthy") -> ()
        | Some (String s) ->
            fail
              (Printf.sprintf
                 "health: tier finished \"%s\", not \"healthy\"" s)
        | _ -> fail "health: missing final_health");
        (match member "recovery_ratio" hl with
        | Some (Float r) ->
            (* the recovery pin: once the supervisor has respawned the
               killed slots, throughput must be back within 10% of the
               undisturbed baseline. Tiny CI runs are noise-dominated
               (microsecond bursts), so only full-mode documents gate. *)
            if full && r < 0.9 then
              fail
                (Printf.sprintf
                   "health: recovered throughput %.2fx baseline, below the \
                    0.9x pin"
                   r)
        | _ -> fail "health: missing recovery_ratio");
        match Option.bind (member "pool" hl) (member "speedup_ratio") with
        | Some (Float r) ->
            (* the reincarnation pin: the reborn pool must restore >= 90%
               of the pre-fault parallel speedup (full runs only — tiny
               problem sizes are noise) *)
            if full && r < 0.9 then
              fail
                (Printf.sprintf
                   "health: post-reincarnation speedup %.2fx pre-fault, \
                    below the 0.9x pin"
                   r)
        | _ -> fail "health: missing pool.speedup_ratio"
      in
      let check_multimodel () =
        let mm =
          match member "multimodel" j with
          | Some mm -> mm
          | None -> fail "missing \"multimodel\" section"
        in
        (match member "tickets_lost" mm with
        | Some (Int 0) -> ()
        | Some (Int n) ->
            (* hard pin in every mode: hot-scoped chaos may slow the hot
               tenant, never lose anyone's ticket *)
            fail (Printf.sprintf "multimodel: %d lost tickets (pin: 0)" n)
        | _ -> fail "multimodel: missing tickets_lost");
        (match member "double_resolves" mm with
        | Some (Int 0) -> ()
        | Some (Int n) ->
            fail (Printf.sprintf "multimodel: %d double resolutions (pin: 0)" n)
        | _ -> fail "multimodel: missing double_resolves");
        (match member "deaths_injected" mm with
        | Some (Int n) when n > 0 -> ()
        | _ ->
            fail
              "multimodel: zero injected deaths — the chaos scenario never \
               fired");
        (match member "tenants" mm with
        | Some (Obj tenants) ->
            if List.length tenants < 4 then
              fail "multimodel: fewer than 4 tenants";
            List.iter
              (fun (name, tj) ->
                match (member "role" tj, member "chaos_ratio" tj) with
                | Some (String "cold"), Some (Float r) ->
                    (* the fault-isolation pin: faults armed against the
                       hot tenant's traffic must leave every cold
                       tenant's throughput within 10% of its undisturbed
                       baseline. Tiny runs are noise-dominated
                       (microsecond bursts), so only full-mode documents
                       gate. *)
                    if full && r < 0.9 then
                      fail
                        (Printf.sprintf
                           "multimodel: cold tenant %s at %.2fx baseline \
                            under hot-scoped chaos, below the 0.9x \
                            isolation pin"
                           name r)
                | Some (String "hot"), _ -> ()
                | _ -> fail ("multimodel: tenant " ^ name ^ " missing role/chaos_ratio"))
              tenants
        | _ -> fail "multimodel: missing tenants");
        let bj =
          match member "budget" mm with
          | Some bj -> bj
          | None -> fail "multimodel: missing budget"
        in
        (match member "resource_exhausted_escapes" bj with
        | Some (Int 0) -> ()
        | Some (Int n) ->
            (* hard pin in every mode: budget pressure is absorbed by
               eviction + lazy recompile, never surfaced to a client
               whose deadline still holds *)
            fail
              (Printf.sprintf
                 "multimodel: %d Resource_exhausted escaped to clients \
                  (pin: 0)"
                 n)
        | _ -> fail "multimodel: missing budget.resource_exhausted_escapes");
        (match member "evictions" bj with
        | Some (Int n) when n > 0 -> ()
        | _ ->
            fail
              "multimodel: zero cache evictions — the budget never actually \
               bound residency");
        (match member "reloads" bj with
        | Some (Int n) when n > 0 -> ()
        | _ ->
            fail
              "multimodel: zero lazy reloads — no evicted model was ever \
               re-admitted");
        let qj =
          match member "quota" mm with
          | Some qj -> qj
          | None -> fail "multimodel: missing quota"
        in
        (match member "hot_quota_shed" qj with
        | Some (Int n) when n > 0 -> ()
        | _ ->
            fail
              "multimodel: hot tenant never exceeded its quota — the \
               scenario never exercised weighted-fair shedding");
        match (member "hot_shed_rate" qj, member "cold_shed_rate" qj) with
        | Some (Float hot), Some (Float cold) ->
            (* the fairness pin: while the hot tenant floods past its
               share, the cold tenant's shed rate must stay strictly
               below the hot tenant's (every mode — the scenario is
               closed-loop and deterministic in shape) *)
            if cold >= hot then
              fail
                (Printf.sprintf
                   "multimodel: cold shed rate %.3f not below hot %.3f — \
                    the quota is not protecting light tenants"
                   cold hot)
        | _ -> fail "multimodel: missing quota shed rates"
      in
      (match member "sections" j with
      | Some (String "overload") ->
          check_overload ();
          Printf.printf "%s: valid gc-bench-serving/1 document (overload only)\n"
            file;
          exit 0
      | Some (String "models") ->
          check_models ();
          Printf.printf "%s: valid gc-bench-serving/1 document (models only)\n"
            file;
          exit 0
      | Some (String "batching") ->
          check_batching ();
          Printf.printf "%s: valid gc-bench-serving/1 document (batching only)\n"
            file;
          exit 0
      | Some (String "tuning") ->
          check_tuning ();
          Printf.printf "%s: valid gc-bench-serving/1 document (tuning only)\n"
            file;
          exit 0
      | Some (String "health") ->
          check_health ();
          Printf.printf "%s: valid gc-bench-serving/1 document (health only)\n"
            file;
          exit 0
      | Some (String "multimodel") ->
          check_multimodel ();
          Printf.printf
            "%s: valid gc-bench-serving/1 document (multimodel only)\n" file;
          exit 0
      | _ -> ());
      check_overload ();
      check_models ();
      check_batching ();
      check_tuning ();
      check_health ();
      check_multimodel ();
      (match member "workloads" j with
      | Some (Obj (_ :: _)) -> ()
      | _ -> fail "missing or empty \"workloads\" section");
      List.iter
        (fun w ->
          let wj =
            match Option.bind (member "workloads" j) (member w) with
            | Some wj -> wj
            | None -> fail ("missing workloads." ^ w)
          in
          (match Option.bind (member "fast" wj) (member "minor_words_per_iter") with
          | Some (Float _) -> ()
          | _ -> fail (w ^ ": missing fast.minor_words_per_iter"));
          (match member "minor_words_reduction_pct" wj with
          | Some (Float _) -> ()
          | _ -> fail (w ^ ": missing minor_words_reduction_pct"));
          match member "throughput_speedup" wj with
          | Some (Float sp) ->
              (* the fast-path floor: the fast engine must never fall more
                 than noise below the slow path. mha_f32 once sat at 0.92x
                 — arena reuse zero-filled large attention intermediates
                 with a scalar loop where [Buffer.create]'s fresh
                 allocation memsets — so the floor keeps that class of
                 regression from landing silently again. Full runs only;
                 tiny runs are noise-dominated. *)
              if full && sp < 0.85 then
                fail
                  (Printf.sprintf
                     "%s: throughput_speedup %.2f below the 0.85 fast-path \
                      floor"
                     w sp)
          | _ -> fail (w ^ ": missing throughput_speedup"))
        [ "mlp_f32"; "mha_f32" ];
      (match Option.bind (member "multi_client" j) (member "speedup") with
      | Some (Float _) -> ()
      | _ -> fail "missing multi_client.speedup");
      (match Option.bind (member "compile_cache" j) (member "speedup") with
      | Some (Float sp) when sp > 0. -> ()
      | _ -> fail "missing compile_cache.speedup");
      let ep =
        match member "error_path" j with
        | Some ep -> ep
        | None -> fail "missing \"error_path\" section"
      in
      (match member "reject_p50_us" ep with
      | Some (Float r) when r >= 0. -> ()
      | _ -> fail "error_path: missing reject_p50_us");
      (match member "fallback_slowdown_x" ep with
      | Some (Float f) when f > 0. -> ()
      | _ -> fail "error_path: missing fallback_slowdown_x");
      (match member "checked_overhead_pct" ep with
      | Some (Float pct) ->
          (* the resilience pin: on full runs the checked clean path must
             stay within 2% of raw execute (tiny CI runs are too noisy —
             per-iteration work is microseconds — so only presence is
             checked there) *)
          if full && pct >= 2.0 then
            fail
              (Printf.sprintf
                 "error_path: checked_overhead_pct %.2f%% breaches the 2%% \
                  clean-path pin"
                 pct)
      | _ -> fail "error_path: missing checked_overhead_pct");
      Printf.printf "%s: valid gc-bench-serving/1 document\n" file)

(* ------------------------------------------------------------------ *)

let () =
  let mode = ref `Full in
  let out = ref "BENCH_serving.json" in
  let section = ref None in
  let rec parse = function
    | [] -> ()
    | "--tiny" :: rest ->
        mode := `Tiny;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | "--section" :: name :: rest ->
        (if
           name <> "overload" && name <> "models" && name <> "batching"
           && name <> "tuning" && name <> "health" && name <> "multimodel"
         then begin
           Printf.eprintf
             "unknown --section %s (only: overload, models, batching, \
              tuning, health, multimodel)\n"
             name;
           exit 2
         end);
        section := Some name;
        parse rest
    | "--validate" :: file :: _ ->
        validate file;
        exit 0
    | arg :: _ ->
        Printf.eprintf
          "usage: serving.exe [--tiny] [--section \
           overload|models|batching|tuning|health] [--out FILE] [--validate \
           FILE] (got %s)\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !mode with
  | `Tiny ->
      quota := 0.05;
      lat_samples := 200;
      alloc_iters := 50;
      clients := 2;
      overload_clients := 4;
      overload_iters := 15;
      batching_clients := 4;
      health_burst_per := 12;
      mm_burst_s := 0.12;
      mm_zipf_rounds := 28;
      mm_flood := 60;
      mm_trickle := 10
  | `Full -> ());
  let workloads = build_workloads !mode in
  let open Core.Observe.Json in
  let mode_s = match !mode with `Full -> "full" | `Tiny -> "tiny" in
  let doc =
    match !section with
    | Some "overload" ->
        Bench_util.header "Overload (admission control under saturation)";
        let ov = overload_section (List.hd workloads) in
        Obj
          [
            ("schema", String "gc-bench-serving/1");
            ("mode", String mode_s);
            ("sections", String "overload");
            ("overload", ov);
          ]
    | Some "models" ->
        Bench_util.header "Whole models through Gc_serve (f32 and int8)";
        let ms = models_section !mode in
        Obj
          [
            ("schema", String "gc-bench-serving/1");
            ("mode", String mode_s);
            ("sections", String "models");
            ("models", Obj ms);
          ]
    | Some "batching" ->
        Bench_util.header "Batching (bucketed specialization + coalescing)";
        let bt = batching_section !mode in
        Obj
          [
            ("schema", String "gc-bench-serving/1");
            ("mode", String mode_s);
            ("sections", String "batching");
            ("batching", bt);
          ]
    | Some "tuning" ->
        Bench_util.header "Measured autotuning (tuned vs static schedules)";
        let tn = tuning_section !mode in
        Obj
          [
            ("schema", String "gc-bench-serving/1");
            ("mode", String mode_s);
            ("sections", String "tuning");
            ("tuning", tn);
          ]
    | Some "health" ->
        Bench_util.header "Self-healing (supervised recovery from faults)";
        let hl = health_section !mode (List.hd workloads) in
        Obj
          [
            ("schema", String "gc-bench-serving/1");
            ("mode", String mode_s);
            ("sections", String "health");
            ("health", hl);
          ]
    | Some "multimodel" ->
        Bench_util.header
          "Multi-model serving (fault isolation, budget residency, quotas)";
        let mm = multimodel_section !mode in
        Obj
          [
            ("schema", String "gc-bench-serving/1");
            ("mode", String mode_s);
            ("sections", String "multimodel");
            ("multimodel", mm);
          ]
    | _ ->
        Bench_util.header "Single-client steady state (fast vs pre-PR slow path)";
        let wl = List.map workload_section workloads in
        Bench_util.header "Multi-client throughput (shared compiled partition)";
        let mc = multi_client_section (List.hd workloads) in
        Bench_util.header "Compilation cache";
        let cache = cache_section !mode in
        Bench_util.header "Error path (checked overhead, rejects, fallback)";
        let err = error_path_section (List.hd workloads) in
        Bench_util.header "Overload (admission control under saturation)";
        let ov = overload_section (List.hd workloads) in
        Bench_util.header "Whole models through Gc_serve (f32 and int8)";
        let ms = models_section !mode in
        Bench_util.header "Batching (bucketed specialization + coalescing)";
        let bt = batching_section !mode in
        Bench_util.header "Measured autotuning (tuned vs static schedules)";
        let tn = tuning_section !mode in
        Bench_util.header "Self-healing (supervised recovery from faults)";
        let hl = health_section !mode (List.hd workloads) in
        Bench_util.header
          "Multi-model serving (fault isolation, budget residency, quotas)";
        let mm = multimodel_section !mode in
        Obj
          [
            ("schema", String "gc-bench-serving/1");
            ("mode", String mode_s);
            ("workloads", Obj wl);
            ("multi_client", mc);
            ("compile_cache", cache);
            ("error_path", err);
            ("overload", ov);
            ("models", Obj ms);
            ("batching", bt);
            ("tuning", tn);
            ("health", hl);
            ("multimodel", mm);
          ]
  in
  let oc = open_out !out in
  output_string oc (to_string ~indent:2 doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" !out
