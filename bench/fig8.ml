(* Figure 8: MLP and MHA subgraph performance — baseline (oneDNN
   primitives with post-op fusion), the graph compiler with coarse-grain
   fusion disabled, and the full graph compiler. Each test is named with
   workload category, batch size and data type, like the paper. *)

open Bench_util

type row = {
  test : string;
  base : float;
  no_coarse : float;
  full : float;
}

let speedups r = (r.base /. r.full, r.base /. r.no_coarse)

(* when main.exe runs with --trace, each figure's rows are recorded as a
   bench section of the trace document *)
let record_rows name rows =
  let open Core.Observe.Json in
  record_bench name
    (List
       (List.map
          (fun r ->
            Obj
              [
                ("test", String r.test);
                ("baseline_cycles", Float r.base);
                ("no_coarse_cycles", Float r.no_coarse);
                ("full_cycles", Float r.full);
              ])
          rows))

let print_rows title rows =
  header title;
  Printf.printf "%-22s %12s %12s %12s %9s %11s\n" "test" "baseline"
    "no-coarse" "full" "speedup" "(no-coarse)";
  List.iter
    (fun r ->
      let s, snc = speedups r in
      Printf.printf "%-22s %12.3e %12.3e %12.3e %8.2fx %10.2fx\n" r.test r.base
        r.no_coarse r.full s snc)
    rows;
  hr ()

let summarize label rows paper =
  let s = List.map (fun r -> fst (speedups r)) rows in
  let snc = List.map (fun r -> snd (speedups r)) rows in
  Printf.printf "%-24s avg speedup %.2fx (w/o coarse %.2fx)   paper: %s\n" label
    (mean s) (mean snc) paper

let mlp_rows (spec : Gc_workloads.Table1.mlp_spec) dtype =
  List.map
    (fun batch ->
      let built =
        match dtype with
        | `F32 -> Gc_workloads.Mlp.build_f32 ~batch ~hidden:spec.hidden ()
        | `Int8 -> Gc_workloads.Mlp.build_int8 ~batch ~hidden:spec.hidden ()
      in
      let base, no_coarse, full = simulate3 built.graph in
      let dt = match dtype with `F32 -> "fp32" | `Int8 -> "int8" in
      { test = Printf.sprintf "%s_%d_%s" spec.mlp_name batch dt; base; no_coarse; full })
    spec.mlp_batches

let mha_rows (spec : Gc_workloads.Table1.mha_spec) dtype =
  List.map
    (fun batch ->
      let built =
        match dtype with
        | `F32 ->
            Gc_workloads.Mha.build_f32 ~batch ~seq:spec.seq_len
              ~hidden:spec.hidden_size ~heads:spec.heads ()
        | `Int8 ->
            Gc_workloads.Mha.build_int8 ~batch ~seq:spec.seq_len
              ~hidden:spec.hidden_size ~heads:spec.heads ()
      in
      let base, no_coarse, full = simulate3 built.graph in
      let dt = match dtype with `F32 -> "fp32" | `Int8 -> "int8" in
      { test = Printf.sprintf "%s_%d_%s" spec.mha_name batch dt; base; no_coarse; full })
    spec.mha_batches

let run_mlp () =
  let all = ref [] in
  List.iter
    (fun dtype ->
      let dt = match dtype with `F32 -> "FP32" | `Int8 -> "Int8" in
      List.iter
        (fun spec ->
          let rows = mlp_rows spec dtype in
          all := ((spec : Gc_workloads.Table1.mlp_spec).mlp_name, dtype, rows) :: !all;
          print_rows
            (Printf.sprintf "Figure 8 (MLP, %s): %s" dt spec.mlp_name)
            rows)
        Gc_workloads.Table1.all_mlp)
    [ `F32; `Int8 ];
  header "Figure 8 (MLP) summary vs paper";
  List.iter
    (fun (name, dtype, rows) ->
      let dt = match dtype with `F32 -> "fp32" | `Int8 -> "int8" in
      let paper =
        match (name, dtype) with
        | "MLP_1", `Int8 -> "2.72x (coarse-grain contributes 1.95x)"
        | "MLP_1", `F32 -> "1.47x (1.15x coarse, 1.28x rest)"
        | "MLP_2", `Int8 -> "1.10x"
        | "MLP_2", `F32 -> "1.01x"
        | _ -> "-"
      in
      summarize (name ^ " " ^ dt) rows paper)
    (List.rev !all);
  record_rows "fig8-mlp" (List.concat_map (fun (_, _, rows) -> rows) (List.rev !all))

let run_mha () =
  let all = ref [] in
  List.iter
    (fun dtype ->
      let dt = match dtype with `F32 -> "FP32" | `Int8 -> "Int8" in
      List.iter
        (fun spec ->
          let rows = mha_rows spec dtype in
          all := (dtype, rows) :: !all;
          print_rows
            (Printf.sprintf "Figure 8 (MHA, %s): %s" dt
               (spec : Gc_workloads.Table1.mha_spec).mha_name)
            rows)
        Gc_workloads.Table1.all_mha)
    [ `F32; `Int8 ];
  header "Figure 8 (MHA) summary vs paper";
  let rows_of d =
    List.concat_map (fun (dt, rows) -> if dt = d then rows else []) !all
  in
  summarize "MHA all fp32" (rows_of `F32) "1.84x";
  summarize "MHA all int8" (rows_of `Int8) "1.99x";
  summarize "MHA overall (24 tests)" (rows_of `F32 @ rows_of `Int8)
    "1.91x, fine-grain ~1.51x, coarse +27%";
  record_rows "fig8-mha" (rows_of `F32 @ rows_of `Int8)
