(* Figure 7: performance comparison for individual matmul ops.

   Both sides use prepacked/compensated weights and plain input/output
   matrices, as the paper specifies, and both run on the same expert
   microkernel substrate — exactly the paper's situation, where the
   compiler-generated kernel and the primitive are near-parity and the
   differences come from two mechanisms:

   - the compiled partition is a direct call, while a primitive invocation
     pays the library dispatch/validation overhead — the compiler wins on
     small problems;
   - the expert-tuned primitive handles ragged K/N tails with remainder
     kernels, while the compiler's template pads to tile multiples — the
     primitive wins on ragged shapes (k=479, n=1).

   The kernel-proper cost is the simulated cost of the compiled single-op
   partition; the primitive side scales it by the true-work fraction
   (plus a small remainder-kernel penalty) and adds the dispatch cost. *)

open Core
open Bench_util

(* every (k, n) layer shape of the Table 1 MLPs *)
let layer_shapes hidden =
  let rec go = function
    | a :: (b :: _ as rest) -> (a, b) :: go rest
    | _ -> []
  in
  go hidden

let problems =
  List.concat_map
    (fun (spec : Gc_workloads.Table1.mlp_spec) ->
      List.concat_map
        (fun batch ->
          List.map (fun (k, n) -> (batch, n, k)) (layer_shapes spec.hidden))
        spec.mlp_batches)
    Gc_workloads.Table1.all_mlp
  |> List.sort_uniq compare

let costs ~dtype ~m ~n ~k =
  let dt : Dtype.t = match dtype with `F32 -> F32 | `Int8 -> U8 in
  Gc_baseline.Baseline.figure7_costs ~machine ~dtype:dt ~m ~n ~k ()

let run () =
  header "Figure 7: individual matmul op, graph compiler vs oneDNN primitives";
  Printf.printf "%-6s %-6s %-6s %-6s %12s %12s %9s\n" "dtype" "m" "n" "k"
    "compiler" "primitives" "ratio";
  let ratios_by_dtype = Hashtbl.create 4 in
  let ragged = ref [] in
  let non_degenerate = ref [] in
  List.iter
    (fun dt ->
      List.iter
        (fun (m, n, k) ->
          let gc, prim = costs ~dtype:dt ~m ~n ~k in
          let ratio = prim /. gc in
          let key = match dt with `F32 -> "f32" | `Int8 -> "int8" in
          Hashtbl.replace ratios_by_dtype key
            (ratio
            ::
            (match Hashtbl.find_opt ratios_by_dtype key with
            | Some l -> l
            | None -> []));
          if k = 479 then ragged := ratio :: !ragged;
          if n > 1 then non_degenerate := ratio :: !non_degenerate;
          Printf.printf "%-6s %-6d %-6d %-6d %12.3e %12.3e %8.2fx%s\n" key m n
            k gc prim ratio
            (if k = 479 then "  <- ragged K" else ""))
        problems)
    [ `F32; `Int8 ];
  hr ();
  Hashtbl.iter
    (fun key ratios ->
      Printf.printf
        "geomean speedup of compiler over primitives (%s): %.3fx  (paper: ~1.06x avg)\n"
        key (geomean ratios))
    ratios_by_dtype;
  Printf.printf
    "geomean on ragged k=479 shapes: %.3fx  (paper: compiler falls behind on k=479)\n"
    (geomean !ragged);
  Printf.printf
    "geomean excluding the degenerate n=1 column (gemv shapes, where the\n\
     template's N-padding is weakest): %.3fx\n"
    (geomean !non_degenerate);
  let open Observe.Json in
  record_bench "fig7"
    (Obj
       (Hashtbl.fold
          (fun key ratios acc -> (key ^ "_geomean", Float (geomean ratios)) :: acc)
          ratios_by_dtype
          [
            ("ragged_k_geomean", Float (geomean !ragged));
            ("non_degenerate_geomean", Float (geomean !non_degenerate));
          ]))
