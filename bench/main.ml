(* Benchmark harness entry point: regenerates every table and figure of the
   paper's evaluation section.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table1    # Table 1 (workload parameters)
     dune exec bench/main.exe -- fig7      # Figure 7 (individual matmul)
     dune exec bench/main.exe -- fig8-mlp  # Figure 8, MLP subgraphs
     dune exec bench/main.exe -- fig8-mha  # Figure 8, MHA subgraphs
     dune exec bench/main.exe -- ablation  # pass-by-pass ablations
     dune exec bench/main.exe -- wallclock # wall-clock cross-check

   Figures 7/8 are produced by the deterministic performance simulator
   standing in for the paper's Xeon 8358 testbed (see DESIGN.md); the
   wallclock target executes the same three settings for real. *)

let table1 () =
  Bench_util.header "Table 1: workload parameters";
  Format.printf "%a@." Gc_workloads.Table1.pp ()

let usage () =
  prerr_endline
    "usage: main.exe [--trace FILE] [table1|fig7|fig8-mlp|fig8-mha|ablation|wallclock|all]";
  exit 2

let () =
  Format.printf "oneDNN Graph Compiler reproduction — benchmark harness@.";
  Format.printf "machine model: %a@." Core.Machine.pp Bench_util.machine;
  (* --trace FILE: benchmark targets append per-workload profiles to a
     gc-trace JSON document written on exit *)
  let rec split_trace acc = function
    | "--trace" :: file :: rest -> (Some file, List.rev_append acc rest)
    | x :: rest -> split_trace (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let trace_file, args = split_trace [] (List.tl (Array.to_list Sys.argv)) in
  (match trace_file with
  | Some _ ->
      let t = Core.Observe.Trace.create () in
      Core.Observe.Trace.set_meta t "harness" (Core.Observe.Json.String "bench");
      Bench_util.trace_sink := Some t
  | None -> ());
  let targets =
    match args with
    | [] | [ "all" ] ->
        [ "table1"; "fig7"; "fig8-mlp"; "fig8-mha"; "ablation"; "wallclock" ]
    | rest -> rest
  in
  List.iter
    (fun t ->
      match t with
      | "table1" -> table1 ()
      | "fig7" -> Fig7.run ()
      | "fig8-mlp" -> Fig8.run_mlp ()
      | "fig8-mha" -> Fig8.run_mha ()
      | "ablation" -> Ablation.run ()
      | "wallclock" -> Wallclock.run ()
      | _ -> usage ())
    targets;
  match (trace_file, !Bench_util.trace_sink) with
  | Some file, Some t ->
      (* every traced run carries at least this section, so the document
         validates even for targets that record nothing per-workload *)
      Core.Observe.Trace.add_section t "bench:harness"
        (Core.Observe.Json.Obj
           [
             ( "targets",
               Core.Observe.Json.List
                 (List.map (fun s -> Core.Observe.Json.String s) targets) );
             ("machine", Core.Observe.Json.String Bench_util.machine.Core.Machine.name);
           ]);
      Core.Observe.Trace.write_file t file;
      Format.printf "@.bench trace written to %s@." file
  | _ -> ()
