(* Wall-clock cross-check: the same three settings executed for real
   through the closure-compiling engine (Bechamel measurements), compiled
   for the machine this host actually exposes. Absolute times are those of
   an OCaml interpreter-class substrate, not a native JIT — the point is
   that the *relative* ordering of the three settings holds outside the
   simulator too. On a single-core host the parallel-section and barrier
   effects cannot manifest; what remains visible is fusion's reduction of
   memory passes and per-primitive overhead. *)

open Core
open Bench_util

let host_cores = max 1 (Domain.recommended_domain_count () - 1)
let pool = lazy (Gc_runtime.Parallel.create host_cores)
let host_machine = { machine with Machine.cores = host_cores; name = Printf.sprintf "host (%d cores)" host_cores }

let host_config setting =
  let graph =
    match setting with
    | Baseline -> Pipeline.onednn_primitives ~machine:host_machine ()
    | No_coarse ->
        { (Pipeline.default ~machine:host_machine ()) with coarse_fusion = false }
    | Full -> Pipeline.default ~machine:host_machine ()
  in
  { (default_config ~machine:host_machine ()) with graph; pool = Some (Lazy.force pool) }

let bench_graph name graph data =
  let make setting =
    let compiled = compile ~config:(host_config setting) graph in
    (* warm up: run init (weight prepack) once so it is cached *)
    ignore (execute compiled data);
    fun () -> ignore (execute compiled data)
  in
  let fns =
    [
      ("baseline", make Baseline);
      ("no-coarse", make No_coarse);
      ("full", make Full);
    ]
  in
  let results = wallclock_ns ~quota:0.35 fns in
  let get k = List.assoc k results in
  Printf.printf
    "%-22s baseline %9.2fms  no-coarse %9.2fms  full %9.2fms   speedup %.2fx (nc %.2fx)\n%!"
    name
    (get "baseline" /. 1e6)
    (get "no-coarse" /. 1e6)
    (get "full" /. 1e6)
    (get "baseline" /. get "full")
    (get "baseline" /. get "no-coarse");
  (* when main.exe runs with --trace, pair the wallclock numbers with the
     machine-model estimates and one counted execution of the full setting *)
  if !Bench_util.trace_sink <> None then begin
    let compiled = compile ~config:(host_config Full) graph in
    ignore (execute compiled data) (* warm: init/prepack cached *);
    let (), counters =
      Observe.Counters.with_counters (fun () -> ignore (execute compiled data))
    in
    let sim_b, sim_nc, sim_f = simulate3 graph in
    let open Observe.Json in
    record_bench name
      (Obj
         [
           ( "wallclock_ns",
             Obj (List.map (fun (k, v) -> (k, Float v)) results) );
           ( "perfsim_cycles",
             Obj
               [
                 ("baseline", Float sim_b);
                 ("no-coarse", Float sim_nc);
                 ("full", Float sim_f);
               ] );
           ("counters", Observe.Counters.snapshot_to_json counters);
         ])
  end

let run () =
  header "Wall-clock cross-check (closure-compiled engine on this machine)";
  Printf.printf
    "(host exposes %d core(s); relative ordering is the claim, absolute times are not native-comparable)\n"
    host_cores;
  let mlp b dt =
    let built =
      match dt with
      | `F32 -> Gc_workloads.Mlp.build_f32 ~batch:b ~hidden:[ 13; 512; 256; 128 ] ()
      | `Int8 -> Gc_workloads.Mlp.build_int8 ~batch:b ~hidden:[ 13; 512; 256; 128 ] ()
    in
    let dts = match dt with `F32 -> "fp32" | `Int8 -> "int8" in
    bench_graph (Printf.sprintf "MLP_1_%d_%s" b dts) built.graph built.data
  in
  mlp 32 `F32;
  mlp 32 `Int8;
  mlp 128 `F32;
  mlp 128 `Int8;
  let mha b =
    let built = Gc_workloads.Mha.build_f32 ~batch:b ~seq:64 ~hidden:256 ~heads:4 () in
    bench_graph (Printf.sprintf "MHA_small_%d_fp32" b) built.graph built.data
  in
  mha 2;
  mha 4
