(* Microbenchmark harness for the execution hot path, emitting
   BENCH_micro.json so successive PRs accumulate a measured perf
   trajectory (the wallclock analogue of the paper's Figure 7/8
   methodology — single-kernel rates first, then the runtime overheads
   that sit between kernels, then one fused workload end to end):

     dune exec bench/micro.exe                        # full run
     dune exec bench/micro.exe -- --tiny              # CI smoke (seconds)
     dune exec bench/micro.exe -- --out FILE          # choose output path
     dune exec bench/micro.exe -- --validate FILE     # parse + schema-check

   Sections:
   - brgemm: single-thread BRGEMM GFLOP/s over paper-relevant tile shapes,
     for the register-tiled kernel and for the pre-PR scalar kernels
     (kept below as [legacy_f32] / [legacy_int8]), including the
     tiled/legacy speedup, plus the tile/grid parameters the heuristic
     picks for each shape's GEMM view (so the tuning bench can name the
     schedule it is beating).
   - pool: fork-join overhead of one parallel section and the number of
     grains the self-scheduler migrated off the submitting domain.
   - mlp: wallclock of one fused-MLP execution through the full compiler,
     with the env-reuse and steal counters of a counted run. *)

open Gc_tensor
open Bigarray

(* ------------------------------------------------------------------ *)
(* The pre-PR BRGEMM f32 kernel, verbatim: a 1×1-output scalar loop with a
   4-wide unrolled k reduction. Kept here (not in the library) purely as
   the perf baseline the tiled kernel is measured against. *)

let legacy_f32 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off =
  let kb4 = kb - (kb mod 4) in
  for bi = 0 to batch - 1 do
    let ao = Array.unsafe_get a_offs bi in
    let bo = Array.unsafe_get b_offs bi in
    for m = 0 to mb - 1 do
      let arow = ao + (m * kb) in
      let crow = c_off + (m * nb) in
      for n = 0 to nb - 1 do
        let brow = bo + (n * kb) in
        let acc0 = ref 0. and acc1 = ref 0. and acc2 = ref 0. and acc3 = ref 0. in
        let k = ref 0 in
        while !k < kb4 do
          let k0 = !k in
          acc0 := !acc0 +. (Array1.unsafe_get a (arow + k0) *. Array1.unsafe_get b (brow + k0));
          acc1 := !acc1 +. (Array1.unsafe_get a (arow + k0 + 1) *. Array1.unsafe_get b (brow + k0 + 1));
          acc2 := !acc2 +. (Array1.unsafe_get a (arow + k0 + 2) *. Array1.unsafe_get b (brow + k0 + 2));
          acc3 := !acc3 +. (Array1.unsafe_get a (arow + k0 + 3) *. Array1.unsafe_get b (brow + k0 + 3));
          k := k0 + 4
        done;
        while !k < kb do
          acc0 := !acc0 +. (Array1.unsafe_get a (arow + !k) *. Array1.unsafe_get b (brow + !k));
          incr k
        done;
        let ci = crow + n in
        Array1.unsafe_set c ci
          (Array1.unsafe_get c ci +. ((!acc0 +. !acc1) +. (!acc2 +. !acc3)))
      done
    done
  done

(* The scalar u8·s8→s32 loop the tiled int8 kernel replaced, kept as the
   perf baseline so the u8s8s32 rows carry a legacy/speedup column too
   (pre-PR they reported the tiled rate with nothing to compare it to). *)

let legacy_int8 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off =
  for bi = 0 to batch - 1 do
    let ao = Array.unsafe_get a_offs bi in
    let bo = Array.unsafe_get b_offs bi in
    for m = 0 to mb - 1 do
      let arow = ao + (m * kb) in
      let crow = c_off + (m * nb) in
      for n = 0 to nb - 1 do
        let brow = bo + (n * kb) in
        let acc = ref 0 in
        for k = 0 to kb - 1 do
          acc := !acc + (Array1.unsafe_get a (arow + k) * Array1.unsafe_get b (brow + k))
        done;
        let ci = crow + n in
        Array1.unsafe_set c ci
          (Int32.add (Array1.unsafe_get c ci) (Int32.of_int !acc))
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Measurement: quota-bounded repetition, best of 3 (robust against other
   tenants of the machine). [rate_of ~work f] returns work-units/second. *)

let quota = ref 0.4

let rate_of ~work f =
  f ();
  let best = ref 0. in
  for _rep = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    let elapsed = ref 0. in
    while !elapsed < !quota do
      f ();
      incr iters;
      elapsed := Unix.gettimeofday () -. t0
    done;
    let r = work *. float_of_int !iters /. !elapsed in
    if r > !best then best := r
  done;
  !best

let seconds_per_call f = 1. /. rate_of ~work:1. f

(* ------------------------------------------------------------------ *)
(* BRGEMM section *)

type shape = { sname : string; sdtype : string; batch : int; mb : int; nb : int; kb : int }

let full_shapes =
  [
    (* headline: the acceptance shape, batch-reduce over 4 slabs *)
    { sname = "f32_64x64x64_bs4"; sdtype = "f32"; batch = 4; mb = 64; nb = 64; kb = 64 };
    { sname = "f32_64x64x64_bs1"; sdtype = "f32"; batch = 1; mb = 64; nb = 64; kb = 64 };
    { sname = "f32_32x64x32_bs4"; sdtype = "f32"; batch = 4; mb = 32; nb = 64; kb = 32 };
    { sname = "f32_6x64x64_bs4"; sdtype = "f32"; batch = 4; mb = 6; nb = 64; kb = 64 };
    { sname = "f32_31x61x33_bs3"; sdtype = "f32"; batch = 3; mb = 31; nb = 61; kb = 33 };
    { sname = "u8s8s32_64x64x64_bs4"; sdtype = "u8s8s32"; batch = 4; mb = 64; nb = 64; kb = 64 };
  ]

let tiny_shapes =
  [
    { sname = "f32_16x16x16_bs2"; sdtype = "f32"; batch = 2; mb = 16; nb = 16; kb = 16 };
    { sname = "f32_7x9x5_bs2"; sdtype = "f32"; batch = 2; mb = 7; nb = 9; kb = 5 };
    { sname = "u8s8s32_16x16x16_bs2"; sdtype = "u8s8s32"; batch = 2; mb = 16; nb = 16; kb = 16 };
  ]

let headline_name = function
  | `Full -> "f32_64x64x64_bs4"
  | `Tiny -> "f32_16x16x16_bs2"

let bench_shape s =
  let { batch; mb; nb; kb; _ } = s in
  let flops = 2. *. float_of_int (batch * mb * nb * kb) in
  let a_offs = Array.init batch (fun i -> i * mb * kb) in
  let b_offs = Array.init batch (fun i -> i * nb * kb) in
  let gflops rate = rate /. 1e9 in
  match s.sdtype with
  | "f32" ->
      let a = Buffer.create Dtype.F32 (batch * mb * kb) in
      let b = Buffer.create Dtype.F32 (batch * nb * kb) in
      let c = Buffer.create Dtype.F32 (mb * nb) in
      for i = 0 to Buffer.length a - 1 do Buffer.set a i (sin (float_of_int i)) done;
      for i = 0 to Buffer.length b - 1 do Buffer.set b i (cos (float_of_int i)) done;
      let af = Buffer.as_f32 a and bf = Buffer.as_f32 b and cf = Buffer.as_f32 c in
      let tiled =
        gflops
          (rate_of ~work:flops (fun () ->
               Gc_microkernel.Brgemm.f32 ~batch ~mb ~nb ~kb ~a:af ~a_offs ~b:bf
                 ~b_offs ~c:cf ~c_off:0))
      in
      let legacy =
        gflops
          (rate_of ~work:flops (fun () ->
               legacy_f32 ~batch ~mb ~nb ~kb ~a:af ~a_offs ~b:bf ~b_offs ~c:cf
                 ~c_off:0))
      in
      (tiled, Some legacy)
  | "u8s8s32" ->
      let a = Buffer.create Dtype.U8 (batch * mb * kb) in
      let b = Buffer.create Dtype.S8 (batch * nb * kb) in
      let c = Buffer.create Dtype.S32 (mb * nb) in
      for i = 0 to Buffer.length a - 1 do Buffer.set_int a i ((i * 37) mod 256) done;
      for i = 0 to Buffer.length b - 1 do Buffer.set_int b i (((i * 23) mod 255) - 128) done;
      let au = Buffer.as_u8 a and bs = Buffer.as_s8 b and cs = Buffer.as_s32 c in
      let tiled =
        gflops
          (rate_of ~work:flops (fun () ->
               Gc_microkernel.Brgemm.u8s8s32 ~batch ~mb ~nb ~kb ~a:au ~a_offs
                 ~b:bs ~b_offs ~c:cs ~c_off:0))
      in
      let legacy =
        gflops
          (rate_of ~work:flops (fun () ->
               legacy_int8 ~batch ~mb ~nb ~kb ~a:au ~a_offs ~b:bs ~b_offs
                 ~c:cs ~c_off:0))
      in
      (tiled, Some legacy)
  | other -> invalid_arg ("micro: unknown dtype " ^ other)

(* The schedule the static heuristic picks for each shape's GEMM view
   (the batch-reduce seen as one long-k matmul): recorded per shape so
   the BENCH file — and the tuning bench that reads it — can name the
   tile/grid a measured-tuned entry displaces. *)
let chosen_params s =
  let dtype =
    match s.sdtype with "u8s8s32" -> Dtype.U8 | _ -> Dtype.F32
  in
  Gc_lowering.Heuristic.choose ~machine:Bench_util.machine ~dtype ~m:s.mb
    ~n:s.nb ~k:(s.batch * s.kb) ()

let params_fields p =
  let open Core.Observe.Json in
  let open Gc_lowering.Params in
  [
    ("tile_m", Int p.mb);
    ("tile_n", Int p.nb);
    ("tile_k", Int p.kb);
    ("tile_bs", Int p.bs);
    ("grid", String (Printf.sprintf "%dx%dx%d" p.mpn p.npn p.kpn));
  ]

let brgemm_section shapes =
  List.map
    (fun s ->
      let tiled, legacy = bench_shape s in
      let p = chosen_params s in
      let open Core.Observe.Json in
      Printf.printf "  %-24s %8.3f GFLOP/s%s   tile %dx%dx%d grid %dx%dx%d\n%!"
        s.sname tiled
        (match legacy with
        | Some l -> Printf.sprintf "  (legacy %.3f, %.2fx)" l (tiled /. l)
        | None -> "")
        p.Gc_lowering.Params.mb p.Gc_lowering.Params.nb
        p.Gc_lowering.Params.kb p.Gc_lowering.Params.mpn
        p.Gc_lowering.Params.npn p.Gc_lowering.Params.kpn;
      ( s.sname,
        Obj
          ([
             ("dtype", String s.sdtype);
             ("batch", Int s.batch);
             ("mb", Int s.mb);
             ("nb", Int s.nb);
             ("kb", Int s.kb);
             ("tiled_gflops", Float tiled);
           ]
          @ params_fields p
          @
          match legacy with
          | Some l ->
              [ ("legacy_gflops", Float l); ("speedup", Float (tiled /. l)) ]
          | None -> []) ))
    shapes

(* ------------------------------------------------------------------ *)
(* Pool section: fork-join overhead and grain migration *)

let pool_section () =
  let pool = Gc_runtime.Parallel.default () in
  let n = Gc_runtime.Parallel.size pool in
  (* one full parallel section over an empty body: dispatch + barrier *)
  let fork_join_ns =
    seconds_per_call (fun () ->
        Gc_runtime.Parallel.parallel_for pool ~lo:0 ~hi:(n * 4) (fun _ _ -> ()))
    *. 1e9
  in
  (* deliberately uneven grains at grain=1: count how many the
     self-scheduler migrated off the submitting domain *)
  let (), snap =
    Core.Observe.Counters.with_counters (fun () ->
        Gc_runtime.Parallel.parallel_for ~grain:1 pool ~lo:0 ~hi:64
          (fun lo _ ->
            let spin = (lo mod 7) * 500 in
            let s = ref 0 in
            for i = 1 to spin do s := !s + i done;
            ignore (Sys.opaque_identity !s)))
  in
  Printf.printf
    "  workers %d   fork-join %.1f ns/section   stolen %d/64 grains\n%!" n
    fork_join_ns snap.Core.Observe.Counters.tasks_stolen;
  let open Core.Observe.Json in
  Obj
    [
      ("workers", Int n);
      ("fork_join_ns", Float fork_join_ns);
      ("uneven_grains", Int 64);
      ("tasks_stolen", Int snap.Core.Observe.Counters.tasks_stolen);
    ]

(* ------------------------------------------------------------------ *)
(* Fused-MLP wallclock through the full compiler *)

let mlp_section mode =
  let batch, hidden =
    match mode with
    | `Full -> (32, [ 13; 512; 256; 128 ])
    | `Tiny -> (4, [ 13; 32; 16 ])
  in
  let built = Gc_workloads.Mlp.build_f32 ~batch ~hidden () in
  let host_cores = Gc_runtime.Parallel.size (Gc_runtime.Parallel.default ()) in
  let host_machine =
    { Bench_util.machine with Core.Machine.cores = host_cores }
  in
  let config =
    {
      (Core.default_config ~machine:host_machine ()) with
      Core.graph = Core.Pipeline.default ~machine:host_machine ();
      pool = Some (Gc_runtime.Parallel.default ());
    }
  in
  let compiled = Core.compile ~config built.Gc_workloads.Mlp.graph in
  ignore (Core.execute compiled built.Gc_workloads.Mlp.data) (* warm: prepack *);
  let ms =
    seconds_per_call (fun () ->
        ignore (Core.execute compiled built.Gc_workloads.Mlp.data))
    *. 1e3
  in
  let (), snap =
    Core.Observe.Counters.with_counters (fun () ->
        ignore (Core.execute compiled built.Gc_workloads.Mlp.data))
  in
  Printf.printf "  MLP batch=%d hidden=%s: %.3f ms/run   envs reused %d/%d sections stolen %d\n%!"
    batch
    (String.concat "-" (List.map string_of_int hidden))
    ms snap.Core.Observe.Counters.envs_reused
    snap.Core.Observe.Counters.parallel_sections
    snap.Core.Observe.Counters.tasks_stolen;
  let open Core.Observe.Json in
  Obj
    [
      ("batch", Int batch);
      ("hidden", List (List.map (fun h -> Int h) hidden));
      ("wallclock_ms", Float ms);
      ("envs_reused", Int snap.Core.Observe.Counters.envs_reused);
      ("tasks_stolen", Int snap.Core.Observe.Counters.tasks_stolen);
      ("parallel_sections", Int snap.Core.Observe.Counters.parallel_sections);
      ("kernel_invocations", Int snap.Core.Observe.Counters.kernel_invocations);
    ]

(* ------------------------------------------------------------------ *)
(* Schema validation (used by CI to keep the harness from rotting) *)

let validate file =
  let ic = open_in file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Core.Observe.Json.of_string s with
  | Error e ->
      Printf.eprintf "%s: JSON parse error: %s\n" file e;
      exit 1
  | Ok j -> (
      let open Core.Observe.Json in
      let fail msg =
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
      in
      (match member "schema" j with
      | Some (String "gc-bench-micro/1") -> ()
      | _ -> fail "missing or wrong \"schema\" (want gc-bench-micro/1)");
      (match member "brgemm" j with
      | Some (Obj (_ :: _)) -> ()
      | _ -> fail "missing or empty \"brgemm\" section");
      (match Option.bind (member "headline" j) (member "speedup") with
      | Some (Float sp) when sp > 0. -> ()
      | _ -> fail "missing headline.speedup");
      (match Option.bind (member "headline" j) (member "grid") with
      | Some (String _) -> ()
      | _ -> fail "missing headline.grid (chosen tile params)");
      (match Option.bind (member "pool" j) (member "fork_join_ns") with
      | Some (Float _) -> ()
      | _ -> fail "missing pool.fork_join_ns");
      (match Option.bind (member "mlp" j) (member "wallclock_ms") with
      | Some (Float _) -> ()
      | _ -> fail "missing mlp.wallclock_ms");
      Printf.printf "%s: valid gc-bench-micro/1 document\n" file)

(* ------------------------------------------------------------------ *)

let () =
  let mode = ref `Full in
  let out = ref "BENCH_micro.json" in
  let rec parse = function
    | [] -> ()
    | "--tiny" :: rest ->
        mode := `Tiny;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | "--validate" :: file :: _ ->
        validate file;
        exit 0
    | arg :: _ ->
        Printf.eprintf "usage: micro.exe [--tiny] [--out FILE] [--validate FILE] (got %s)\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !mode with `Tiny -> quota := 0.05 | `Full -> ());
  let shapes = match !mode with `Full -> full_shapes | `Tiny -> tiny_shapes in
  Bench_util.header "BRGEMM microkernel (single thread)";
  let brgemm = brgemm_section shapes in
  let headline =
    let open Core.Observe.Json in
    match List.assoc_opt (headline_name !mode) brgemm with
    | Some (Obj fields) ->
        Obj (("shape", String (headline_name !mode)) :: fields)
    | _ -> Null
  in
  Bench_util.header "Parallel pool";
  let pool = pool_section () in
  Bench_util.header "Fused MLP wallclock (full compiler)";
  let mlp = mlp_section !mode in
  let open Core.Observe.Json in
  let doc =
    Obj
      [
        ("schema", String "gc-bench-micro/1");
        ("mode", String (match !mode with `Full -> "full" | `Tiny -> "tiny"));
        ("brgemm", Obj brgemm);
        ("headline", headline);
        ("pool", pool);
        ("mlp", mlp);
      ]
  in
  let oc = open_out !out in
  output_string oc (to_string ~indent:2 doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" !out
