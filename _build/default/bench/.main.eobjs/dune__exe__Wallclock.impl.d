bench/wallclock.ml: Bench_util Core Domain Gc_runtime Gc_workloads Lazy List Machine Pipeline Printf
