bench/fig7.ml: Bench_util Core Dtype Gc_baseline Gc_workloads Hashtbl List Printf
