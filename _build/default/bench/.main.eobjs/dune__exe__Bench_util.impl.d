bench/bench_util.ml: Analyze Bechamel Benchmark Core Gc_perfsim Hashtbl List Machine Measure Pipeline Printf Staged String Test Time Toolkit
