bench/fig8.ml: Bench_util Gc_workloads List Printf
