bench/main.ml: Ablation Array Bench_util Core Fig7 Fig8 Format Gc_workloads List Sys Wallclock
