bench/ablation.ml: Bench_util Core Dtype Fun Fused_op Gc_lowering Gc_perfsim Gc_workloads Heuristic List Logical_tensor Op Params Pipeline Printf Shape Tir_pipeline
