bench/main.mli:
