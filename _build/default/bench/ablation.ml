(* Ablation benches for the design choices DESIGN.md calls out: each Graph
   IR / Tensor IR optimization is disabled in isolation on MLP_1 int8
   (batch 128) and the simulated cost, anchor choices, and buffer-planner
   statistics are reported. *)

open Core
open Bench_util

let built () = Gc_workloads.Mlp.build_int8 ~batch:128 ~hidden:[ 13; 512; 256; 128 ] ()

let variants : (string * (Pipeline.config -> Pipeline.config)) list =
  [
    ("full pipeline", Fun.id);
    ("- coarse-grain fusion", fun c -> { c with coarse_fusion = false });
    ("- fine-grain fusion", fun c -> { c with fine_fusion = false; coarse_fusion = false });
    ("- layout propagation", fun c -> { c with propagate_activations = false });
    ("- const-weight preprocessing", fun c -> { c with const_weights = false });
    ("- low-precision conversion", fun c -> { c with low_precision = false });
    ("everything off", fun _ -> Pipeline.no_opt ~machine ());
  ]

let run () =
  header "Ablation: Graph IR passes on MLP_1 int8, batch 128 (simulated cycles)";
  let b = built () in
  let baseline_cycles = ref nan in
  List.iter
    (fun (name, tweak) ->
      let cfg =
        { (default_config ~machine ()) with graph = tweak (Pipeline.default ~machine ()) }
      in
      let compiled = compile ~config:cfg b.graph in
      let r =
        Gc_perfsim.Sim.cost_module ~machine ~api_per_call:false
          (tir_module compiled)
      in
      if name = "full pipeline" then baseline_cycles := r.cycles;
      Printf.printf "%-32s %12.3e cycles  (%.2fx of full)  sections=%d\n" name
        r.cycles (r.cycles /. !baseline_cycles) r.parallel_sections)
    variants;

  header "Ablation: Tensor IR passes on MLP_1 int8, batch 128";
  let tir_variants : (string * Tir_pipeline.config) list =
    [
      ("full TIR pipeline", Tir_pipeline.default);
      ("- loop merge", { Tir_pipeline.default with merge_loops = false });
      ("- tensor shrink", { Tir_pipeline.default with shrink = false });
      ("- buffer reuse", { Tir_pipeline.default with buffer_reuse = false });
      ("no TIR optimization", Tir_pipeline.none);
    ]
  in
  List.iter
    (fun (name, tir) ->
      let cfg = { (default_config ~machine ()) with tir } in
      let compiled = compile ~config:cfg b.graph in
      let r =
        Gc_perfsim.Sim.cost_module ~machine ~api_per_call:false
          (tir_module compiled)
      in
      let st = tir_stats compiled in
      Printf.printf
        "%-32s %12.3e cycles  loops merged=%d  buffers %dB -> %dB\n" name
        r.cycles st.loops_merged st.buffers.naive_bytes st.buffers.planned_bytes)
    tir_variants;

  header "Memory planner on a deep MLP (6 layers, batch 64, f32)";
  let deep = Gc_workloads.Mlp.build_f32 ~batch:64 ~hidden:[ 64; 128; 128; 128; 128; 128; 64 ] () in
  List.iter
    (fun (name, graph_cfg) ->
      let cfg = { (default_config ~machine ()) with graph = graph_cfg } in
      let compiled = compile ~config:cfg deep.graph in
      let st = tir_stats compiled in
      Printf.printf "%-32s intermediates %6dB in %d buffers -> %6dB in %d arenas\n"
        name st.buffers.naive_bytes st.buffers.buffers_before
        st.buffers.planned_bytes st.buffers.buffers_after)
    [
      ("with coarse-grain fusion", Pipeline.default ~machine ());
      ( "without coarse-grain fusion",
        { (Pipeline.default ~machine ()) with coarse_fusion = false } );
      ("primitives baseline", Pipeline.onednn_primitives ~machine ());
    ];

  header "K-slicing template variant (one sample, deep reduction: m=1 n=16 k=4096)";
  let m, n, k = (1, 16, 4096) in
  let sim_params (params : Params.t) =
    let a_lt = Logical_tensor.create ~name:"A" Dtype.F32 (Shape.of_list [ m; k ]) in
    let b_lt = Logical_tensor.create ~name:"B" Dtype.F32 (Shape.of_list [ k; n ]) in
    let tun =
      Op.create Matmul ~inputs:[ a_lt; b_lt ]
        ~outputs:[ Logical_tensor.create ~name:"C" Dtype.F32 (Shape.of_list [ m; n ]) ]
    in
    let c_lt = Op.output tun in
    let f = Fused_op.create ~tunable:tun ~params ~inputs:[ a_lt; b_lt ] ~outputs:[ c_lt ] () in
    let fg =
      { Fused_op.fused = [ f ]; g_inputs = [ a_lt; b_lt ]; g_outputs = [ c_lt ]; init = None }
    in
    let lowered = Gc_lowering.Lower_graph.lower fg in
    let opt, _ = Tir_pipeline.run lowered.module_ in
    (Gc_perfsim.Sim.cost_module ~machine ~api_per_call:false opt).cycles
  in
  let auto = Heuristic.choose ~machine ~dtype:Dtype.F32 ~m ~n ~k () in
  let flat = { auto with Params.kpn = 1 } in
  Printf.printf "%-34s %s  -> %10.3e cycles\n" "heuristic (auto, k-sliced)"
    (Params.to_string auto) (sim_params auto);
  Printf.printf "%-34s %s  -> %10.3e cycles\n" "forced kpn=1 (no k-slicing)"
    (Params.to_string flat) (sim_params flat);

  header "Anchor cost table for the MLP_1 layer-2 template (Figure 3 instantiated)";
  let p =
    Heuristic.choose ~machine ~dtype:Dtype.U8 ~m:128 ~n:256 ~k:512 ()
  in
  Printf.printf "params: %s\n" (Params.to_string p);
  Printf.printf "%-10s %18s %14s %16s %12s\n" "anchor" "working set (elems)"
    "accesses" "total accesses" "est. cycles";
  List.iter
    (fun a ->
      Printf.printf "A %-8s %18d %14d %16d %12.1f\n"
        (Gc_lowering.Anchor.pre_to_string a)
        (Gc_lowering.Anchor.pre_working_set p A a)
        (Gc_lowering.Anchor.pre_accesses p a)
        (Gc_lowering.Anchor.pre_total p A a)
        (Gc_lowering.Anchor.pre_cost ~machine p A a))
    Gc_lowering.Anchor.all_pre;
  List.iter
    (fun a ->
      Printf.printf "C %-8s %18d %14d %16d %12.1f\n"
        (Gc_lowering.Anchor.post_to_string a)
        (Gc_lowering.Anchor.post_working_set p a)
        (Gc_lowering.Anchor.post_accesses p a)
        (Gc_lowering.Anchor.post_total p a)
        (Gc_lowering.Anchor.post_cost ~machine p a))
    Gc_lowering.Anchor.all_post;
  Printf.printf "chosen: pre A at %s, eltwise post at %s, reductions at %s\n"
    (Gc_lowering.Anchor.pre_to_string (Gc_lowering.Anchor.best_pre ~machine p A))
    (Gc_lowering.Anchor.post_to_string
       (Gc_lowering.Anchor.best_post ~machine p ~reduction:false))
    (Gc_lowering.Anchor.post_to_string
       (Gc_lowering.Anchor.best_post ~machine p ~reduction:true))
