(* Benchmark harness entry point: regenerates every table and figure of the
   paper's evaluation section.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table1    # Table 1 (workload parameters)
     dune exec bench/main.exe -- fig7      # Figure 7 (individual matmul)
     dune exec bench/main.exe -- fig8-mlp  # Figure 8, MLP subgraphs
     dune exec bench/main.exe -- fig8-mha  # Figure 8, MHA subgraphs
     dune exec bench/main.exe -- ablation  # pass-by-pass ablations
     dune exec bench/main.exe -- wallclock # wall-clock cross-check

   Figures 7/8 are produced by the deterministic performance simulator
   standing in for the paper's Xeon 8358 testbed (see DESIGN.md); the
   wallclock target executes the same three settings for real. *)

let table1 () =
  Bench_util.header "Table 1: workload parameters";
  Format.printf "%a@." Gc_workloads.Table1.pp ()

let usage () =
  prerr_endline
    "usage: main.exe [table1|fig7|fig8-mlp|fig8-mha|ablation|wallclock|all]";
  exit 2

let () =
  Format.printf "oneDNN Graph Compiler reproduction — benchmark harness@.";
  Format.printf "machine model: %a@." Core.Machine.pp Bench_util.machine;
  let targets =
    match Array.to_list Sys.argv with
    | [ _ ] | [ _; "all" ] ->
        [ "table1"; "fig7"; "fig8-mlp"; "fig8-mha"; "ablation"; "wallclock" ]
    | _ :: rest -> rest
    | [] -> []
  in
  List.iter
    (fun t ->
      match t with
      | "table1" -> table1 ()
      | "fig7" -> Fig7.run ()
      | "fig8-mlp" -> Fig8.run_mlp ()
      | "fig8-mha" -> Fig8.run_mha ()
      | "ablation" -> Ablation.run ()
      | "wallclock" -> Wallclock.run ()
      | _ -> usage ())
    targets
