examples/mha_attention.ml: Core Format Fused_op Gc_perfsim Gc_workloads Graph List Machine Op Op_kind Pipeline Tensor
