examples/inspect_compilation.ml: Builder Core Dtype Format Fused_op Gc_graph_passes Gc_lowering Gc_perfsim Graph Hashtbl Machine Params Printer Shape Tir_pipeline
