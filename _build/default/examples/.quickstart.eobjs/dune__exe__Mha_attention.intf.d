examples/mha_attention.mli:
