examples/quantized_mlp.ml: Core Dtype Format Fused_op Gc_perfsim Gc_workloads Graph List Logical_tensor Machine Params Shape String Tensor
