examples/quantized_mlp.mli:
