examples/quickstart.mli:
