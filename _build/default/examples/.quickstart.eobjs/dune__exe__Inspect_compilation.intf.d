examples/inspect_compilation.mli:
