examples/quickstart.ml: Builder Core Dtype Format Fused_op Gc_perfsim Graph List Machine Shape Tensor
