(* A guided tour of the compilation pipeline: every IR stage of Figure 1
   printed for a two-layer MLP — the input Graph IR, the graph after each
   optimization pass, the fused-op graph, the Tensor IR before and after
   the Tensor IR optimizations, and the final simulated cost.

     dune exec examples/inspect_compilation.exe *)

open Core
module Passes = Gc_graph_passes

let machine = Machine.xeon_8358

let () =
  let b = Builder.create () in
  let x = Builder.input b ~name:"x" Dtype.F32 (Shape.of_list [ 32; 16 ]) in
  let w1 = Builder.input b ~name:"w1" ~const:true Dtype.F32 (Shape.of_list [ 16; 32 ]) in
  let w2 = Builder.input b ~name:"w2" ~const:true Dtype.F32 (Shape.of_list [ 32; 16 ]) in
  let h = Builder.gelu b (Builder.matmul b x w1) in
  let y = Builder.matmul b h w2 in
  let g = Builder.finalize b ~outputs:[ y ] in

  Format.printf "=== 1. input Graph IR ===@.%s@.@." (Graph.to_string g);

  let g, _ = Graph.clone g in
  let g = Passes.Decompose.run g in
  Format.printf "=== 2. after complex-op decomposition (gelu -> %d basic ops) ===@.%s@.@."
    (Graph.op_count g - 2) (Graph.to_string g);

  let g = Passes.Const_fold.run g in
  let g = Passes.Cse.run g in
  let g = Passes.Dce.run g in
  let g = Passes.Const_prop.mark g in
  let lp = Passes.Layout_prop.run ~machine g in
  Format.printf "=== 3. after layout propagation (weight prepacks inserted) ===@.%s@.@."
    (Graph.to_string lp.graph);
  Hashtbl.iter
    (fun _ p -> Format.printf "  chosen parameters: %s@." (Params.to_string p))
    lp.params;

  let split = Passes.Const_prop.split lp.graph in
  (match split.init with
  | Some init ->
      Format.printf "@.=== 4. constant-weight init graph (runs once) ===@.%s@.@."
        (Graph.to_string init)
  | None -> ());

  let fg =
    Passes.Fusion.run ~machine ~params:lp.params split.main ~init:split.init
  in
  let fg = Passes.Coarse_fusion.run ~machine fg in
  Format.printf "=== 5. fused-op graph ===@.%a@.@." Fused_op.pp_graph fg;

  let lowered = Gc_lowering.Lower_graph.lower fg in
  Format.printf "=== 6. Tensor IR after template lowering (before optimization) ===@.%s@.@."
    (Printer.module_to_string lowered.module_);

  let optimized, stats = Tir_pipeline.run lowered.module_ in
  Format.printf
    "=== 7. Tensor IR after loop merge (%d), simplify, scalarize, shrink, DSE, buffer plan ===@.%s@.@."
    stats.loops_merged
    (Printer.module_to_string optimized);

  let report =
    Gc_perfsim.Sim.cost_module ~machine ~api_per_call:false optimized
  in
  Format.printf "=== 8. simulated cost on %a ===@.%a@." Machine.pp machine
    Gc_perfsim.Sim.pp_report report
