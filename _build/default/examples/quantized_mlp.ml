(* Quantized MLP inference (the DLRM-style workload that motivates the
   paper's low-precision and constant-weight optimizations).

   The input graph is the standard static-quantization pattern: every
   layer is dequantize -> fp32 matmul -> relu -> quantize. The compiler's
   low-precision conversion rewrites each island to an int8 matmul with a
   combined scale and a zero-point compensation term; constant-weight
   preprocessing computes the compensation and the weight prepack once, at
   first execution.

     dune exec examples/quantized_mlp.exe *)

open Core

let () =
  let batch = 32 in
  let hidden = [ 13; 512; 256; 128 ] in
  Format.printf "building MLP_1 (batch %d, layers %s), int8 static quantization@."
    batch
    (String.concat "x" (List.map string_of_int hidden));
  let built = Gc_workloads.Mlp.build_int8 ~batch ~hidden () in

  let compiled = compile built.graph in
  let fg = fused_graph compiled in
  Format.printf "@.fused ops after low-precision conversion + fusion:@.";
  List.iter
    (fun (f : Fused_op.t) ->
      match (f.tunable, f.params) with
      | Some op, Some p ->
          Format.printf "  %s: int8=%b  %s  merge=%s@." f.fname
            (Dtype.equal (List.hd op.inputs).Logical_tensor.dtype Dtype.U8)
            (Params.to_string p)
            (match f.merge_tag with Some t -> "#" ^ string_of_int t | None -> "-")
      | _ -> Format.printf "  %s (fusible group)@." f.fname)
    fg.fused;
  (match fg.init with
  | Some init ->
      Format.printf
        "@.init graph (runs once, cached): %d constant-preprocessing ops@.\
        \  (weight prepacking into blocked layouts + int8 zero-point compensation)@."
        (Graph.op_count init)
  | None -> Format.printf "@.no init graph@.");

  (* run and compare against the reference *)
  let out = execute compiled built.data in
  let expect = reference built.graph built.data in
  let max_diff = Tensor.max_abs_diff (List.hd out) (List.hd expect) in
  Format.printf "@.executed: output %a, max |diff| vs reference = %g@."
    Shape.pp (Tensor.shape (List.hd out)) max_diff;

  (* how much does int8 buy over f32 on the modelled Xeon? *)
  let f32 = Gc_workloads.Mlp.build_f32 ~batch ~hidden () in
  let sim g =
    (Gc_perfsim.Sim.cost_module ~machine:Machine.xeon_8358 ~api_per_call:false
       (tir_module (compile g)))
      .cycles
  in
  let c_int8 = sim built.graph and c_f32 = sim f32.graph in
  Format.printf "simulated cycles: f32 %.3e, int8 %.3e (%.2fx faster)@." c_f32
    c_int8 (c_f32 /. c_int8);
  if max_diff > 0.5 then exit 1
