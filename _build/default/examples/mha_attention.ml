(* Multi-head attention (the BERT workload): softmax fusion and
   coarse-grain fusion in action.

   The scaled-dot-product attention subgraph contains two batch matmuls
   with a softmax between them. A primitives library cannot fuse the
   softmax — it materializes the full attention matrix twice. The graph
   compiler decomposes softmax into basic ops, commits them at the first
   batch matmul's post anchors (the element-wise group at post#1, the
   reduction-led groups at post#3), and then merges the two batch matmuls'
   parallel loops, so each task computes its attention rows and consumes
   them immediately.

     dune exec examples/mha_attention.exe *)

open Core

let () =
  let batch = 2 and seq = 32 and hidden = 128 and heads = 4 in
  Format.printf "MHA: batch=%d seq=%d hidden=%d heads=%d@." batch seq hidden heads;
  let built = Gc_workloads.Mha.build_f32 ~batch ~seq ~hidden ~heads () in
  Format.printf "@.input graph:@.%s@." (Graph.to_string built.graph);

  let compiled = compile built.graph in
  let fg = fused_graph compiled in
  Format.printf "@.fused graph:@.%a@." Fused_op.pp_graph fg;

  (* show that the softmax was decomposed and fused *)
  let fused_reductions =
    List.concat_map
      (fun (f : Fused_op.t) ->
        List.concat_map
          (fun (g : Fused_op.post_group) ->
            List.filter
              (fun (op : Op.t) ->
                match op.kind with Op_kind.Reduce _ -> true | _ -> false)
              g.g_ops)
          f.post_groups)
      fg.fused
  in
  Format.printf "reductions fused into matmul anchors: %d (softmax max+sum)@."
    (List.length fused_reductions);
  let stats = tir_stats compiled in
  Format.printf "coarse-grain loop merges performed: %d@." stats.loops_merged;

  (* execute and validate *)
  let out = execute compiled built.data in
  let expect = reference built.graph built.data in
  let ok = List.for_all2 (Tensor.allclose ~rtol:1e-4 ~atol:1e-5) out expect in
  Format.printf "@.matches reference: %b@." ok;

  (* the three evaluation settings on the modelled Xeon *)
  let graph = built.graph in
  let sim graph_cfg api =
    let cfg = { (default_config ()) with graph = graph_cfg } in
    (Gc_perfsim.Sim.cost_module ~machine:Machine.xeon_8358 ~api_per_call:api
       (tir_module (compile ~config:cfg graph)))
      .cycles
  in
  let base = sim (Pipeline.onednn_primitives ()) true in
  let nc = sim { (Pipeline.default ()) with coarse_fusion = false } false in
  let f = sim (Pipeline.default ()) false in
  Format.printf
    "simulated cycles: primitives %.3e | fine-grain only %.3e (%.2fx) | full %.3e (%.2fx)@."
    base nc (base /. nc) f (base /. f);
  if not ok then exit 1
