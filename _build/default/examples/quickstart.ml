(* Quickstart: build a small DNN computation graph, compile it with the
   graph compiler, execute it, and check the result against the reference
   evaluator.

     dune exec examples/quickstart.exe *)

open Core

let () =
  (* 1. Describe the computation: y = relu(x @ w + bias), a single MLP
     layer. Weights are marked [const]: their buffers are stable across
     executions, so the compiler prepacks them once. *)
  let b = Builder.create () in
  let x = Builder.input b ~name:"x" Dtype.F32 (Shape.of_list [ 64; 128 ]) in
  let w = Builder.input b ~name:"w" ~const:true Dtype.F32 (Shape.of_list [ 128; 256 ]) in
  let bias = Builder.input b ~name:"bias" ~const:true Dtype.F32 (Shape.of_list [ 256 ]) in
  let y = Builder.relu b (Builder.add b (Builder.matmul b x w) bias) in
  let graph = Builder.finalize b ~outputs:[ y ] in
  Format.printf "input graph:@.%s@.@." (Graph.to_string graph);

  (* 2. Compile. The pipeline decomposes complex ops, prepacks the
     weights into the template's blocked layout, fuses the bias-add and
     relu into the matmul's post anchor, and lowers to Tensor IR. *)
  let compiled = compile graph in
  Format.printf "fused graph:@.%a@.@." Fused_op.pp_graph (fused_graph compiled);

  (* 3. Execute: the first call preprocesses the constants (weight
     prepacking) and caches them; later calls reuse the cache. *)
  let x_v = Tensor.random ~seed:1 Dtype.F32 (Shape.of_list [ 64; 128 ]) in
  let w_v = Tensor.random ~seed:2 ~lo:(-0.2) ~hi:0.2 Dtype.F32 (Shape.of_list [ 128; 256 ]) in
  let b_v = Tensor.random ~seed:3 Dtype.F32 (Shape.of_list [ 256 ]) in
  let bindings = [ (x, x_v); (w, w_v); (bias, b_v) ] in
  let outputs = execute compiled bindings in

  (* 4. Validate against the reference evaluator. *)
  let expected = reference graph bindings in
  let ok =
    List.for_all2 (Tensor.allclose ~rtol:1e-4 ~atol:1e-4) outputs expected
  in
  Format.printf "output shape: %a, matches reference: %b@."
    Shape.pp (Tensor.shape (List.hd outputs)) ok;

  (* 5. Ask the performance simulator what this would cost on the paper's
     32-core Xeon model. *)
  let report =
    Gc_perfsim.Sim.cost_module ~machine:Machine.xeon_8358 ~api_per_call:false
      (tir_module compiled)
  in
  Format.printf "simulated on %a:@.  %a@." Machine.pp Machine.xeon_8358
    Gc_perfsim.Sim.pp_report report;
  if not ok then exit 1
