open Gc_microkernel

(** Template anchors (Figure 3): placeholders at each loop level of the
    Tunable OP template where Fusible OPs can be committed, together with
    the tensor-slice working-set sizes and access counts the fusion cost
    model evaluates. *)

type pre =
  | Pre1  (** before the mpi loop: whole per-core A/B panels *)
  | Pre2  (** inside npi: per-task panels *)
  | Pre3  (** inside msi: one m-row of blocks *)
  | Pre4  (** inside ksi: one reduction step's blocks — the default for A *)
  | Pre5  (** inside nsi: innermost, redundant across nsi *)

type post =
  | Post1  (** inside msi, after the ksi reduction: slice [MB, NSN·NB] *)
  | Post2  (** after msi: the whole single-core output [MSBN, NSBN] *)
  | Post3  (** after npi: full rows [MSBN, N] — where n-reductions commit *)

type operand = A | B

val all_pre : pre list
val all_post : post list
val pre_to_string : pre -> string
val post_to_string : post -> string

(** Working-set size in elements of the tensor slice associated with the
    anchor, per core (Figure 3, column 2). *)
val pre_working_set : Params.t -> operand -> pre -> int

val post_working_set : Params.t -> post -> int

(** How many times a fused op at this anchor runs per single-core kernel
    (Figure 3, column 3). *)
val pre_accesses : Params.t -> pre -> int

val post_accesses : Params.t -> post -> int

(** Total element accesses per core (working set × accesses; Figure 3,
    column 4). *)
val pre_total : Params.t -> operand -> pre -> int

val post_total : Params.t -> post -> int

(** Estimated per-element access cost (cycles) for a working set of
    [bytes]: resident cache level decides the latency. *)
val access_cost : machine:Machine.t -> bytes:int -> float

(** Estimated cycles of committing a fusible op for [operand] at a pre
    anchor / at a post anchor: total accesses × per-access cost for the
    anchor's working set. *)
val pre_cost : machine:Machine.t -> Params.t -> operand -> pre -> float

val post_cost : machine:Machine.t -> Params.t -> post -> float

(** Cheapest anchors under the cost model. [reduction:true] restricts post
    anchors to those after the k-reduction with full rows available
    (Post3), matching "post-op fusion must be done after k-dimension
    reduction". *)
val best_pre : machine:Machine.t -> Params.t -> operand -> pre

val best_post : machine:Machine.t -> Params.t -> reduction:bool -> post
