open Gc_graph_ir
open Gc_tensor_ir

type t = {
  module_ : Ir.module_;
  entry_params : (Logical_tensor.t * Ir.tensor) list;
  globals : (Logical_tensor.t * Ir.tensor) list;
}

(* Group consecutive fused ops that share a merge tag: their bodies are
   lowered into one function so the loop-merge pass can fuse their tagged
   parallel nests. *)
let group_fused (fused : Fused_op.t list) =
  let rec go = function
    | [] -> []
    | (f : Fused_op.t) :: rest -> (
        match f.merge_tag with
        | None -> [ f ] :: go rest
        | Some tag ->
            let same, rest' =
              let rec take acc = function
                | (g : Fused_op.t) :: tl when g.merge_tag = Some tag ->
                    take (g :: acc) tl
                | tl -> (List.rev acc, tl)
              in
              take [] rest
            in
            (f :: same) :: go rest')
  in
  go fused

let lower (g : Fused_op.graph) =
  (* ---- classify every fused-op boundary tensor ---- *)
  let is_const (lt : Logical_tensor.t) = Logical_tensor.is_constant lt in
  let graph_ios =
    List.map (fun (lt : Logical_tensor.t) -> lt.id) (g.g_inputs @ g.g_outputs)
  in
  let globals_tbl : (int, Logical_tensor.t * Ir.tensor) Hashtbl.t = Hashtbl.create 16 in
  let global_tensor (lt : Logical_tensor.t) =
    match Hashtbl.find_opt globals_tbl lt.id with
    | Some (_, t) -> t
    | None ->
        let t = Index_map.tir_tensor ~name:("g_" ^ lt.name) ~storage:Ir.Global lt in
        Hashtbl.add globals_tbl lt.id (lt, t);
        t
  in
  (* entry-level tensors for non-const boundary tensors *)
  let entry_tbl : (int, Logical_tensor.t * Ir.tensor) Hashtbl.t = Hashtbl.create 16 in
  let entry_tensor (lt : Logical_tensor.t) =
    match Hashtbl.find_opt entry_tbl lt.id with
    | Some (_, t) -> t
    | None ->
        let storage =
          if List.mem lt.id graph_ios then Ir.Param else Ir.Local
        in
        let t = Index_map.tir_tensor ~storage lt in
        Hashtbl.add entry_tbl lt.id (lt, t);
        t
  in
  let groups = group_fused g.fused in
  (* tensors produced & consumed strictly inside one group become function
     locals of the merged function (the coarse-grain locality win) *)
  let group_of_lt : (int, int) Hashtbl.t = Hashtbl.create 32 in
  List.iteri
    (fun gi group ->
      List.iter
        (fun (f : Fused_op.t) ->
          List.iter
            (fun (lt : Logical_tensor.t) ->
              match Hashtbl.find_opt group_of_lt lt.id with
              | Some gj when gj <> gi -> Hashtbl.replace group_of_lt lt.id (-1)
              | Some _ -> ()
              | None -> Hashtbl.add group_of_lt lt.id gi)
            (f.f_inputs @ f.f_outputs))
        group)
    groups;
  let funcs = ref [] in
  let entry_calls = ref [] in
  List.iteri
    (fun gi group ->
      (* per-group param tensors (shared across members so merged bodies
         agree), plus group-internal locals *)
      let param_tbl : (int, Logical_tensor.t * Ir.tensor) Hashtbl.t = Hashtbl.create 8 in
      let local_tbl : (int, Ir.tensor) Hashtbl.t = Hashtbl.create 8 in
      let multi = List.length group > 1 in
      let boundary = Hashtbl.create 16 in
      List.iter
        (fun (f : Fused_op.t) ->
          List.iter
            (fun (lt : Logical_tensor.t) -> Hashtbl.replace boundary lt.id ())
            (f.f_inputs @ f.f_outputs))
        group;
      let tmap (lt : Logical_tensor.t) =
        if is_const lt then Some (global_tensor lt)
        else if not (Hashtbl.mem boundary lt.id) then None
        else if
          multi
          && (not (List.mem lt.id graph_ios))
          && Hashtbl.find_opt group_of_lt lt.id = Some gi
        then begin
          (* internal to this merge group: function-local *)
          match Hashtbl.find_opt local_tbl lt.id with
          | Some t -> Some t
          | None ->
              let t = Index_map.tir_tensor ~name:(lt.name ^ "_grp") ~storage:Ir.Local lt in
              Hashtbl.add local_tbl lt.id t;
              Some t
        end
        else
          match Hashtbl.find_opt param_tbl lt.id with
          | Some (_, t) -> Some t
          | None ->
              let t = Index_map.tir_tensor ~storage:Ir.Param lt in
              Hashtbl.add param_tbl lt.id (lt, t);
              (* ensure the entry side exists too *)
              ignore (entry_tensor lt);
              Some t
      in
      let lowered =
        List.map
          (fun (f : Fused_op.t) ->
            match f.tunable with
            | Some _ -> Lower_tunable.lower ~tmap f
            | None -> Lower_fusible.lower ~tmap f)
          group
      in
      let fname =
        match group with
        | [ f ] -> f.fname
        | f :: _ -> Printf.sprintf "%s_merged" f.fname
        | [] -> assert false
      in
      (* combined function: union of params (stable order), local allocs,
         concatenated bodies *)
      let params =
        let seen = Hashtbl.create 8 in
        List.concat_map
          (fun (fn : Ir.func) ->
            List.filter
              (function
                | Ir.Ptensor t ->
                    if Hashtbl.mem seen t.tid then false
                    else begin
                      Hashtbl.add seen t.tid ();
                      true
                    end
                | Ir.Pvar _ -> true)
              fn.params)
          lowered
      in
      let local_allocs = Hashtbl.fold (fun _ t acc -> Ir.Alloc t :: acc) local_tbl [] in
      let body = local_allocs @ List.concat_map (fun (fn : Ir.func) -> fn.body) lowered in
      let func = { Ir.fname; params; body } in
      funcs := func :: !funcs;
      (* entry call: address args in the combined param order *)
      let args =
        List.filter_map
          (function
            | Ir.Ptensor t -> (
                (* find the lt this param tensor stands for *)
                let lt =
                  Hashtbl.fold
                    (fun _ (lt, pt) acc ->
                      if Ir.tensor_equal pt t then Some lt else acc)
                    param_tbl None
                in
                match lt with
                | Some lt ->
                    let et = entry_tensor lt in
                    Some (Ir.Addr (et, Array.map (fun _ -> Ir.Int 0) et.dims))
                | None -> None)
            | Ir.Pvar _ -> None)
          params
      in
      entry_calls := Ir.Call (fname, args) :: !entry_calls)
    groups;

  (* ---- entry function ---- *)
  let entry_params =
    List.filter_map
      (fun (lt : Logical_tensor.t) ->
        if is_const lt then None else Some (lt, entry_tensor lt))
      (g.g_inputs @ g.g_outputs)
  in
  let intermediates =
    Hashtbl.fold
      (fun _ (lt, t) acc ->
        match t.Ir.storage with
        | Ir.Local -> (lt, t) :: acc
        | _ -> acc)
      entry_tbl []
  in
  let entry_body =
    List.map (fun (_, t) -> Ir.Alloc t) intermediates @ List.rev !entry_calls
  in
  let entry =
    {
      Ir.fname = "entry";
      params = List.map (fun (_, t) -> Ir.Ptensor t) entry_params;
      body = entry_body;
    }
  in
  let globals = Hashtbl.fold (fun _ (lt, t) acc -> (lt, t) :: acc) globals_tbl [] in
  let module_ =
    {
      Ir.funcs = List.rev (entry :: !funcs);
      entry = "entry";
      init = None;
      globals = List.map snd globals;
    }
  in
  { module_; entry_params; globals }
