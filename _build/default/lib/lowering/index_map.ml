open Gc_tensor
open Gc_tensor_ir

let physical (layout : Layout.t) ~rank (logical : Ir.expr array) =
  if Array.length logical <> rank then invalid_arg "Index_map.physical: rank mismatch";
  match layout with
  | Plain -> logical
  | Blocked bs ->
      let nblocks = List.length bs in
      let bs_arr = Array.of_list bs in
      (* Peel digits innermost-last, mirroring Layout.offset. *)
      let digits = Array.make nblocks (Ir.int 0) in
      let residual = Array.copy logical in
      for i = nblocks - 1 downto 0 do
        let a, s = bs_arr.(i) in
        digits.(i) <- Ir.Binop (Ir.Mod, residual.(a), Ir.int s);
        residual.(a) <- Ir.Binop (Ir.Div, residual.(a), Ir.int s)
      done;
      Array.append residual digits

let tir_tensor ?name ?(storage = Ir.Param) (lt : Gc_graph_ir.Logical_tensor.t) =
  let dims =
    Shape.to_array (Layout.physical_dims lt.layout lt.shape)
    |> Array.map (fun d -> max d 1)
  in
  Ir.fresh_tensor ~name:(Option.value name ~default:lt.name) ~storage lt.dtype dims

let access tmap (lt : Gc_graph_ir.Logical_tensor.t) logical =
  let t = tmap lt in
  (t, physical lt.layout ~rank:(Shape.rank lt.shape) logical)
