open Gc_graph_ir
open Gc_tensor_ir

(** Microkernel-based template lowering of a Tunable fused op (Figure 2/4):
    instantiates the matmul template with the heuristic's parameters,
    inserts the fused pre-ops (packing) and post-op groups at their
    anchors, and emits one Tensor IR function.

    Two template variants are generated from the same skeleton:
    - the 2-D template: parallel mpi × npi core grid over the M/N plane;
    - the batched template (selected when the output has batch dimensions):
      one parallel loop over the flattened batch, each task computing a
      whole single-core matmul — the MHA case, where n-axis reductions
      (softmax) can commit at a post anchor because each task owns full
      rows.

    [tmap] resolves the fused op's external logical tensors to module-level
    Tensor IR tensors ([Some] for function parameters and globals, [None]
    for internal tensors, which get function-local temporaries). *)
val lower :
  tmap:(Logical_tensor.t -> Ir.tensor option) -> Fused_op.t -> Ir.func
