open Gc_tensor
open Gc_graph_ir
open Gc_tensor_ir

type binding = Scalar of Ir.expr | Rowvar of Ir.var

type t = {
  tmap : Logical_tensor.t -> Ir.tensor;
  point : Ir.expr array;
  values : (int, binding) Hashtbl.t;
}

let create ~tmap ~point = { tmap; point; values = Hashtbl.create 16 }
let bind t (lt : Logical_tensor.t) e = Hashtbl.replace t.values lt.id (Scalar e)
let bind_var t (lt : Logical_tensor.t) v = Hashtbl.replace t.values lt.id (Rowvar v)

(* Broadcast-map the chain point into [lt]'s index space: keep the trailing
   rank(lt) coordinates, clamping broadcast (size-1) dimensions to 0. *)
let broadcast_point t (lt : Logical_tensor.t) =
  let rank = Shape.rank lt.shape in
  let pr = Array.length t.point in
  if rank > pr then
    invalid_arg
      (Printf.sprintf "Chain: operand %s has rank %d > point rank %d" lt.name
         rank pr);
  Array.init rank (fun i ->
      if Shape.dim lt.shape i = 1 then Ir.int 0 else t.point.(pr - rank + i))

let value t (lt : Logical_tensor.t) =
  match Hashtbl.find_opt t.values lt.id with
  | Some (Scalar e) -> e
  | Some (Rowvar v) -> Ir.Var v
  | None -> (
      match Logical_tensor.const_value lt with
      | Some v when Tensor.numel v = 1 -> Ir.Float (Tensor.item v)
      | _ ->
          let tensor, idx = Index_map.access t.tmap lt (broadcast_point t lt) in
          Ir.Load (tensor, idx))

let eltwise_expr (kind : Op_kind.t) attrs (args : Ir.expr list) =
  let a () = List.nth args 0 in
  let b () = List.nth args 1 in
  match kind with
  | Add -> Ir.Binop (Add, a (), b ())
  | Sub -> Ir.Binop (Sub, a (), b ())
  | Mul -> Ir.Binop (Mul, a (), b ())
  | Div -> Ir.Binop (Div, a (), b ())
  | Maximum -> Ir.Binop (Max, a (), b ())
  | Minimum -> Ir.Binop (Min, a (), b ())
  | Relu -> Ir.Binop (Max, a (), Ir.Float 0.)
  | Exp -> Ir.Unop (Exp, a ())
  | Tanh -> Ir.Unop (Tanh, a ())
  | Sqrt -> Ir.Unop (Sqrt, a ())
  | Neg -> Ir.Unop (Neg, a ())
  | Abs -> Ir.Unop (Abs, a ())
  | Reciprocal -> Ir.Unop (Rcp, a ())
  | Round -> Ir.Unop (Round, a ())
  | Clip ->
      let lo = Attrs.float_exn attrs "lo" and hi = Attrs.float_exn attrs "hi" in
      Ir.Binop (Max, Ir.Float lo, Ir.Binop (Min, Ir.Float hi, a ()))
  | Bias_add -> Ir.Binop (Add, a (), b ())
  | k ->
      invalid_arg
        (Printf.sprintf "Chain.eltwise_expr: %s is not elementwise"
           (Op_kind.to_string k))

let apply t (op : Op.t) =
  let out = Op.output op in
  let e =
    match op.kind with
    | Add | Sub | Mul | Div | Maximum | Minimum | Relu | Exp | Tanh | Sqrt
    | Neg | Abs | Reciprocal | Round | Clip | Bias_add ->
        eltwise_expr op.kind op.attrs (List.map (value t) op.inputs)
    | Cast -> Ir.Cast (out.dtype, value t (List.hd op.inputs))
    | Reorder | Broadcast ->
        (* layout / shape changes are transparent at a point *)
        value t (List.hd op.inputs)
    | Quantize ->
        let scale = Attrs.float_exn op.attrs "scale" in
        let zp = Attrs.int_exn op.attrs "zp" in
        Ir.Cast
          ( out.dtype,
            Ir.Binop
              ( Add,
                Ir.Unop (Round, Ir.Binop (Div, value t (List.hd op.inputs), Ir.Float scale)),
                Ir.Float (float_of_int zp) ) )
    | Dequantize ->
        let scale = Attrs.float_exn op.attrs "scale" in
        let zp = Attrs.int_exn op.attrs "zp" in
        Ir.Binop
          ( Mul,
            Ir.Binop (Sub, value t (List.hd op.inputs), Ir.Float (float_of_int zp)),
            Ir.Float scale )
    | k ->
        invalid_arg
          (Printf.sprintf "Chain.apply: cannot inline %s (reductions are scheduled by the caller)"
             (Op_kind.to_string k))
  in
  bind t out e;
  e
