open Gc_graph_ir
open Gc_tensor_ir

(** Scalar-chain compilation of fusible op sequences: turns a topological
    run of element-wise ops into one expression per element, the way the
    paper's Figure 6 merges the fused ReLU and reorder into a single loop
    body. Used by post-op anchor lowering and by standalone fusible-group
    lowering. *)

type t

(** [create ~tmap ~point] starts a chain evaluated at the element whose
    logical index in the fused op's output space is [point]. External
    operands are loaded through [tmap] with broadcast index mapping. *)
val create :
  tmap:(Logical_tensor.t -> Ir.tensor) -> point:Ir.expr array -> t

(** Bind a logical tensor to a scalar expression (e.g. the accumulator
    value loaded from C'). *)
val bind : t -> Logical_tensor.t -> Ir.expr -> unit

(** Bind a reduction result to a scalar variable (per-row accumulator). *)
val bind_var : t -> Logical_tensor.t -> Ir.var -> unit

(** The current scalar value of a logical tensor at the chain's point:
    a bound value, an inlined compile-time scalar constant, or a broadcast
    load from the external tensor. *)
val value : t -> Logical_tensor.t -> Ir.expr

(** [apply t op] computes [op]'s output expression from its input values
    and binds it. Supports every Fusible elementwise/movement kind
    (reorders and broadcasts are value-transparent at a point). Raises
    [Invalid_argument] on reductions — the caller schedules those. *)
val apply : t -> Op.t -> Ir.expr

(** [eltwise_expr kind attrs args] is the raw expression for an eltwise op
    applied to argument expressions. *)
val eltwise_expr : Op_kind.t -> Attrs.t -> Ir.expr list -> Ir.expr
