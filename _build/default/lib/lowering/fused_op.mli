open Gc_graph_ir

(** Fused OPs: the unit the Graph IR is transformed into by the fusion
    optimization and that the lowering turns into one Tensor IR function
    each.

    A [`Tunable] fused op is one matmul plus the pre-ops (packing reorders
    committed at pre anchors) and post-op groups (committed at post
    anchors) the fine-grain fusion attached. A [`Fusible] fused op is a
    leftover group of fusible ops with no Tunable anchor to live in,
    lowered as plain loop nests. *)

type post_group = {
  g_anchor : Anchor.post;
  g_ops : Op.t list;  (** in topological order; reductions allowed *)
}

type t = {
  fid : int;
  fname : string;
  tunable : Op.t option;
  pre_a : (Op.t * Anchor.pre) option;
      (** packing/reorder fused on the A input *)
  pre_b : (Op.t * Anchor.pre) option;
  post_groups : post_group list;
  params : Params.t option;  (** template parameters ([Some] iff tunable) *)
  merge_tag : int option;  (** coarse-grain fusion group *)
  f_inputs : Logical_tensor.t list;  (** external inputs, ordered *)
  f_outputs : Logical_tensor.t list;
}

type graph = {
  fused : t list;  (** topological order *)
  g_inputs : Logical_tensor.t list;
  g_outputs : Logical_tensor.t list;
  init : Graph.t option;
      (** the runtime-constant preprocessing subgraph; its outputs are the
          [Runtime_const] tensors consumed by [fused] *)
}

val create :
  ?name:string ->
  ?tunable:Op.t ->
  ?pre_a:Op.t * Anchor.pre ->
  ?pre_b:Op.t * Anchor.pre ->
  ?post_groups:post_group list ->
  ?params:Params.t ->
  ?merge_tag:int ->
  inputs:Logical_tensor.t list ->
  outputs:Logical_tensor.t list ->
  unit ->
  t

(** All internal ops of a fused op, in execution order. *)
val ops : t -> Op.t list

(** The runtime-constant external inputs of the whole fused graph (to be
    materialized as module globals). *)
val runtime_consts : graph -> Logical_tensor.t list

val pp : Format.formatter -> t -> unit
val pp_graph : Format.formatter -> graph -> unit
