open Gc_graph_ir

type post_group = { g_anchor : Anchor.post; g_ops : Op.t list }

type t = {
  fid : int;
  fname : string;
  tunable : Op.t option;
  pre_a : (Op.t * Anchor.pre) option;
  pre_b : (Op.t * Anchor.pre) option;
  post_groups : post_group list;
  params : Params.t option;
  merge_tag : int option;
  f_inputs : Logical_tensor.t list;
  f_outputs : Logical_tensor.t list;
}

type graph = {
  fused : t list;
  g_inputs : Logical_tensor.t list;
  g_outputs : Logical_tensor.t list;
  init : Graph.t option;
}

let counter = Atomic.make 0

let create ?name ?tunable ?pre_a ?pre_b ?(post_groups = []) ?params ?merge_tag
    ~inputs ~outputs () =
  let fid = Atomic.fetch_and_add counter 1 in
  let fname =
    match name with
    | Some n -> n
    | None -> (
        match tunable with
        | Some (op : Op.t) -> Printf.sprintf "fused_%s_%d" (Op_kind.to_string op.kind) fid
        | None -> Printf.sprintf "fused_group_%d" fid)
  in
  {
    fid;
    fname;
    tunable;
    pre_a;
    pre_b;
    post_groups;
    params;
    merge_tag;
    f_inputs = inputs;
    f_outputs = outputs;
  }

let ops t =
  let pres =
    List.filter_map (fun x -> Option.map fst x) [ t.pre_a; t.pre_b ]
  in
  let posts = List.concat_map (fun g -> g.g_ops) t.post_groups in
  pres @ Option.to_list t.tunable @ posts

let runtime_consts (g : graph) =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun f ->
      List.filter
        (fun (lt : Logical_tensor.t) ->
          match lt.property with
          | Runtime_const when not (Hashtbl.mem seen lt.id) ->
              Hashtbl.add seen lt.id ();
              true
          | _ -> false)
        f.f_inputs)
    g.fused

let pp fmt t =
  Format.fprintf fmt "@[<v 2>%s {" t.fname;
  (match t.params with
  | Some p -> Format.fprintf fmt "@,%a" Params.pp p
  | None -> ());
  (match t.merge_tag with
  | Some tag -> Format.fprintf fmt "@,merge#%d" tag
  | None -> ());
  (match t.pre_a with
  | Some (op, a) -> Format.fprintf fmt "@,pre A @%s: %a" (Anchor.pre_to_string a) Op.pp op
  | None -> ());
  (match t.pre_b with
  | Some (op, a) -> Format.fprintf fmt "@,pre B @%s: %a" (Anchor.pre_to_string a) Op.pp op
  | None -> ());
  (match t.tunable with
  | Some op -> Format.fprintf fmt "@,tunable: %a" Op.pp op
  | None -> ());
  List.iter
    (fun g ->
      Format.fprintf fmt "@,post @%s:" (Anchor.post_to_string g.g_anchor);
      List.iter (fun op -> Format.fprintf fmt "@,  %a" Op.pp op) g.g_ops)
    t.post_groups;
  Format.fprintf fmt "@]@,}"

let pp_graph fmt g =
  Format.fprintf fmt "@[<v>fused graph (%d fused ops%s):@,"
    (List.length g.fused)
    (match g.init with
    | Some init -> Printf.sprintf ", init with %d const ops" (Graph.op_count init)
    | None -> "");
  List.iter (fun f -> Format.fprintf fmt "%a@," pp f) g.fused;
  Format.fprintf fmt "@]"
