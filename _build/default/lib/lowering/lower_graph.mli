open Gc_graph_ir
open Gc_tensor_ir

(** Whole-graph lowering: turns a fused graph into a Tensor IR module —
    one function per fused op (or per coarse-grain merge group, whose
    members' loop nests the Tensor IR loop-merge pass then merges), an
    entry function that allocates the inter-fused-op buffers and calls the
    functions in order, and module globals for every runtime/compile-time
    constant. *)

type t = {
  module_ : Ir.module_;
  entry_params : (Logical_tensor.t * Ir.tensor) list;
      (** entry function parameters in call order: graph inputs then graph
          outputs (constants excluded) *)
  globals : (Logical_tensor.t * Ir.tensor) list;
      (** runtime/compile-time constant tensors backing module globals *)
}

val lower : Fused_op.graph -> t
