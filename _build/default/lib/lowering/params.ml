open Gc_tensor

type t = {
  m : int;
  n : int;
  k : int;
  batch : int;
  dtype : Dtype.t;
  mpn : int;
  npn : int;
  kpn : int;
  mb : int;
  nb : int;
  kb : int;
  bs : int;
  loop_order : string;
}

let mblocks t = Shape.ceil_div t.m t.mb
let nblocks t = Shape.ceil_div t.n t.nb
let kblocks t = Shape.ceil_div t.k t.kb
let msn t = Shape.ceil_div (mblocks t) t.mpn
let nsn t = Shape.ceil_div (nblocks t) t.npn
let ksteps t = Shape.ceil_div (kblocks t) t.bs
let ksteps_per_slice t = Shape.ceil_div (ksteps t) t.kpn
let m_pad t = mblocks t * t.mb
let n_pad t = nblocks t * t.nb
let k_pad t = kblocks t * t.kb
let a_layout t = Layout.blocked_2d ~outer_block:t.mb ~inner_block:t.kb
let b_layout t = Layout.blocked_2d_swapped ~outer_block:t.kb ~inner_block:t.nb
let c_layout t = Layout.blocked_2d ~outer_block:t.mb ~inner_block:t.nb

let pp fmt t =
  Format.fprintf fmt
    "params{%dx%dx%d%s %s grid=%dx%d%s tile=[%d,%d,%d] bs=%d order=%s}" t.m
    t.n t.k
    (if t.batch > 1 then Printf.sprintf " batch=%d" t.batch else "")
    (Dtype.to_string t.dtype) t.mpn t.npn
    (if t.kpn > 1 then Printf.sprintf " kslices=%d" t.kpn else "")
    t.mb t.nb t.kb t.bs t.loop_order

let to_string t = Format.asprintf "%a" pp t
