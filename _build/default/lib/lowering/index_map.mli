open Gc_tensor
open Gc_tensor_ir

(** Mapping logical tensor indices to physical Tensor IR indices through a
    memory layout — the expression-level mirror of {!Gc_tensor.Layout.offset}
    (e.g. a blocked C store becomes C[(m/MB), (n/NB), m%MB, n%NB], the
    paper's Figure 6 index arithmetic). *)

(** [physical layout ~rank logical] produces the physical index expressions
    for logical index expressions [logical] (length [rank]). For [Plain]
    this is the identity. *)
val physical : Layout.t -> rank:int -> Ir.expr array -> Ir.expr array

(** [tir_tensor ?name ?storage lt] makes a Tensor IR tensor whose dims are
    the physical dims of the logical tensor under its layout. *)
val tir_tensor :
  ?name:string ->
  ?storage:Ir.storage ->
  Gc_graph_ir.Logical_tensor.t ->
  Ir.tensor

(** [access tmap lt logical] resolves a logical tensor access: the TIR
    tensor from [tmap] and the physical index expressions. *)
val access :
  (Gc_graph_ir.Logical_tensor.t -> Ir.tensor) ->
  Gc_graph_ir.Logical_tensor.t ->
  Ir.expr array ->
  Ir.tensor * Ir.expr array
