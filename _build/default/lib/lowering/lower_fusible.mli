open Gc_graph_ir
open Gc_tensor_ir

(** Lowering of fusible-only fused ops (groups of element-wise / movement /
    reduction ops with no Tunable OP to anchor into): each op becomes a
    mechanical loop nest over its output, adjacent compatible nests are
    tagged mergeable so the Tensor IR loop-merge pass combines them, and
    the tensor-size optimization later shrinks the temporaries — the
    paper's Figure 6 flow for code not covered by a template. *)
val lower :
  tmap:(Logical_tensor.t -> Ir.tensor option) -> Fused_op.t -> Ir.func

(** Fresh merge tag (shared counter with the coarse-grain fusion pass). *)
val fresh_tag : unit -> int
