lib/lowering/fused_op.mli: Anchor Format Gc_graph_ir Graph Logical_tensor Op Params
