lib/lowering/lower_graph.ml: Array Fused_op Gc_graph_ir Gc_tensor_ir Hashtbl Index_map Ir List Logical_tensor Lower_fusible Lower_tunable Printf
