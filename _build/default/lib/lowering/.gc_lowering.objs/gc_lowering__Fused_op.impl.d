lib/lowering/fused_op.ml: Anchor Atomic Format Gc_graph_ir Graph Hashtbl List Logical_tensor Op Op_kind Option Params Printf
