lib/lowering/index_map.mli: Gc_graph_ir Gc_tensor Gc_tensor_ir Ir Layout
