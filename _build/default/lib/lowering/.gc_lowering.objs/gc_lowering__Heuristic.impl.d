lib/lowering/heuristic.ml: Dtype Gc_microkernel Gc_tensor List Machine Params Shape Ukernel_cost
