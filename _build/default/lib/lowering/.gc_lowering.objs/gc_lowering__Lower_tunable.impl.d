lib/lowering/lower_tunable.ml: Array Attrs Chain Dtype Fused_op Gc_graph_ir Gc_tensor Gc_tensor_ir Hashtbl Index_map Ir Layout List Logical_tensor Op Op_kind Option Params Shape
