lib/lowering/anchor.mli: Gc_microkernel Machine Params
