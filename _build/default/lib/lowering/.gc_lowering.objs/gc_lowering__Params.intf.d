lib/lowering/params.mli: Dtype Format Gc_tensor Layout
