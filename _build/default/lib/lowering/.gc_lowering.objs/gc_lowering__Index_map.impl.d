lib/lowering/index_map.ml: Array Gc_graph_ir Gc_tensor Gc_tensor_ir Ir Layout List Option Shape
