lib/lowering/lower_tunable.mli: Fused_op Gc_graph_ir Gc_tensor_ir Ir Logical_tensor
