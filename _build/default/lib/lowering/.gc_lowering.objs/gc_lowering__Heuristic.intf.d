lib/lowering/heuristic.mli: Dtype Gc_microkernel Gc_tensor Machine Params
