lib/lowering/lower_fusible.ml: Array Atomic Attrs Chain Dtype Fused_op Gc_graph_ir Gc_tensor Gc_tensor_ir Hashtbl Index_map Ir List Logical_tensor Op Op_kind Option Printf Shape
