lib/lowering/chain.mli: Attrs Gc_graph_ir Gc_tensor_ir Ir Logical_tensor Op Op_kind
