lib/lowering/chain.ml: Array Attrs Gc_graph_ir Gc_tensor Gc_tensor_ir Hashtbl Index_map Ir List Logical_tensor Op Op_kind Printf Shape Tensor
