lib/lowering/anchor.ml: Dtype Gc_microkernel Gc_tensor List Machine Params
