lib/lowering/params.ml: Dtype Format Gc_tensor Layout Printf Shape
