open Gc_tensor
open Gc_microkernel

type pre = Pre1 | Pre2 | Pre3 | Pre4 | Pre5
type post = Post1 | Post2 | Post3
type operand = A | B

let all_pre = [ Pre1; Pre2; Pre3; Pre4; Pre5 ]
let all_post = [ Post1; Post2; Post3 ]

let pre_to_string = function
  | Pre1 -> "pre#1"
  | Pre2 -> "pre#2"
  | Pre3 -> "pre#3"
  | Pre4 -> "pre#4"
  | Pre5 -> "pre#5"

let post_to_string = function
  | Post1 -> "post#1"
  | Post2 -> "post#2"
  | Post3 -> "post#3"

(* Figure 3, "Tensor slice's working set size per core". NPSN = nblocks
   (all n blocks), KSN = kblocks. *)
let pre_working_set (p : Params.t) operand anchor =
  let msn = Params.msn p
  and nsn = Params.nsn p
  and ksn = Params.kblocks p
  and npsn = Params.nblocks p in
  match (operand, anchor) with
  | A, Pre1 | A, Pre2 -> msn * ksn * p.mb * p.kb
  | A, Pre3 -> ksn * p.mb * p.kb
  | A, (Pre4 | Pre5) -> p.bs * p.mb * p.kb
  | B, Pre1 -> ksn * npsn * p.nb * p.kb
  | B, (Pre2 | Pre3) -> ksn * nsn * p.nb * p.kb
  | B, Pre4 -> p.bs * nsn * p.nb * p.kb
  | B, Pre5 -> p.bs * p.nb * p.kb

let post_working_set (p : Params.t) anchor =
  let msbn = Params.msn p * p.mb and nsbn = Params.nsn p * p.nb in
  match anchor with
  | Post1 -> p.mb * nsbn
  | Post2 -> msbn * nsbn
  | Post3 -> msbn * Params.n_pad p

(* Figure 3, "Access times per core". *)
let pre_accesses (p : Params.t) anchor =
  let msn = Params.msn p and nsn = Params.nsn p in
  let ksteps = Params.ksteps p in
  match anchor with
  | Pre1 | Pre2 -> 1
  | Pre3 -> msn
  | Pre4 -> msn * ksteps
  | Pre5 -> msn * nsn * ksteps

let post_accesses (p : Params.t) anchor =
  match anchor with Post1 -> Params.msn p | Post2 | Post3 -> 1

let pre_total p operand anchor = pre_working_set p operand anchor * pre_accesses p anchor
let post_total p anchor = post_working_set p anchor * post_accesses p anchor

let access_cost ~machine ~bytes =
  let m = machine in
  let line = float_of_int m.Machine.cache_line in
  let per_line =
    if bytes <= m.Machine.l1_size then m.Machine.l1_latency
    else if bytes <= m.Machine.l2_size then m.Machine.l2_latency
    else if bytes <= m.Machine.llc_size / m.Machine.cores then m.Machine.llc_latency
    else m.Machine.dram_latency
  in
  per_line /. line

let elem_bytes (p : Params.t) = Dtype.size_bytes p.dtype

let pre_cost ~machine (p : Params.t) operand anchor =
  let ws_bytes = pre_working_set p operand anchor * elem_bytes p in
  float_of_int (pre_total p operand anchor)
  *. float_of_int (elem_bytes p)
  *. access_cost ~machine ~bytes:ws_bytes

let post_cost ~machine (p : Params.t) anchor =
  (* post-op slices are accumulator-width (4 bytes) before the final store *)
  let ws_bytes = post_working_set p anchor * 4 in
  float_of_int (post_total p anchor) *. 4. *. access_cost ~machine ~bytes:ws_bytes

(* Ties on estimated cost break towards the smaller working set: the
   slice "is more likely located in the cache closer to the CPU core"
   (the paper's #4-over-#1 argument for A). *)
let best_pre ~machine p operand =
  List.fold_left
    (fun best a ->
      let c = pre_cost ~machine p operand a
      and cb = pre_cost ~machine p operand best in
      if
        c < cb
        || (c = cb && pre_working_set p operand a < pre_working_set p operand best)
      then a
      else best)
    Pre1 all_pre

let best_post ~machine p ~reduction =
  if reduction then Post3
  else
    List.fold_left
      (fun best a ->
        let c = post_cost ~machine p a and cb = post_cost ~machine p best in
        if c < cb || (c = cb && post_working_set p a < post_working_set p best)
        then a
        else best)
      Post1 all_post
