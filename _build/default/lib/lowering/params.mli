open Gc_tensor

(** Template instantiation parameters for a Tunable OP — the values the
    expert-tuned heuristic decides (Figure 2's table): the core grid
    [MPN × NPN], the microkernel tile [MB, NB, KB], the reduction batch
    [BS], and the loop order the heuristic assumed. Everything else (MSN,
    NSN, KSN, ...) is derived. *)

type t = {
  m : int;  (** output rows of one matmul task *)
  n : int;
  k : int;
  batch : int;  (** number of independent (batched) matmul tasks; 1 for 2-D *)
  dtype : Dtype.t;  (** operand dtype (f32 / bf16 / u8 / s8) *)
  mpn : int;  (** core-grid rows (parallel tasks along m), 1 for batched *)
  npn : int;  (** core-grid cols *)
  kpn : int;
      (** k-slices (the paper's "k-slicing" template variant): when > 1,
          the reduction axis is split over [kpn] additional parallel
          tasks, each producing a partial C, summed in a second parallel
          phase — extra parallelism for small-m×n problems *)
  mb : int;
  nb : int;
  kb : int;
  bs : int;
  loop_order : string;  (** inner loop order the heuristic assumed, e.g. "msi,ksi,nsi" *)
}

(** Derived quantities (Figure 2's table). Block counts use padded
    (ceiling) arithmetic: dimensions that are not multiples of the tile pad
    up, exactly as the template pads at graph entry/exit. *)

val mblocks : t -> int  (** ⌈m / mb⌉ *)

val nblocks : t -> int
val kblocks : t -> int  (** KSN = ⌈k / kb⌉ *)

val msn : t -> int  (** microkernel rows per single-core kernel: ⌈mblocks / mpn⌉ *)

val nsn : t -> int
val ksteps : t -> int  (** reduction steps per kernel: ⌈KSN / bs⌉ *)

val ksteps_per_slice : t -> int  (** ⌈ksteps / kpn⌉ *)

(** Padded problem sizes. *)
val m_pad : t -> int

val n_pad : t -> int
val k_pad : t -> int

(** Desired blocked layouts for the operands under these parameters. *)
val a_layout : t -> Layout.t  (** A[M/MB, K/KB, MB, KB] *)

val b_layout : t -> Layout.t  (** B[K/KB, N/NB, NB, KB] *)

val c_layout : t -> Layout.t  (** C[M/MB, N/NB, MB, NB] *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
