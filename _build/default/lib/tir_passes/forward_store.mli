open Gc_tensor_ir

(** Store-to-load forwarding: inside one statement list, a store to a local
    tensor followed by loads at the syntactically identical index is
    forwarded through a scalar variable:

    {v
    T1[i] = f(x[i]);          s = f(x[i]);  T1[i] = s;
    T2[i] = g(T1[i]);    →    t = g(s);     T2[i] = t;
    y[i]  = h(T2[i]);         y[i] = h(t);
    v}

    After loop merging fuses an eltwise chain into one loop, this pass (and
    dead-store elimination behind it) turns the chain's full-size
    temporaries into scalars — the paper's "the temporary tensor could be
    replaced by a scalar variable". Bindings are invalidated by any nested
    statement that may write the tensor. *)

val run_func : Ir.func -> Ir.func
val run : Ir.module_ -> Ir.module_
