lib/tir_passes/buffer_schedule.mli: Gc_tensor_ir Ir
