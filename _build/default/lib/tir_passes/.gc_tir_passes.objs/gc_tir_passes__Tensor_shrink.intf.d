lib/tir_passes/tensor_shrink.mli: Gc_tensor_ir Ir
