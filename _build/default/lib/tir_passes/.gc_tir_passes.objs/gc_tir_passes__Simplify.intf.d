lib/tir_passes/simplify.mli: Gc_tensor_ir Ir
