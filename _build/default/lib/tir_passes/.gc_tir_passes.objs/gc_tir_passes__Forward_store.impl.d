lib/tir_passes/forward_store.ml: Array Gc_tensor_ir Hashtbl Ir List Visit
