lib/tir_passes/tir_pipeline.mli: Buffer_schedule Gc_tensor_ir Ir
