lib/tir_passes/buffer_schedule.ml: Dtype Gc_tensor Gc_tensor_ir Ir List Option Printf Visit
