lib/tir_passes/simplify.ml: Array Gc_tensor Gc_tensor_ir Ir List Visit
