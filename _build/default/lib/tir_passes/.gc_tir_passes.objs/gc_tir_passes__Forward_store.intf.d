lib/tir_passes/forward_store.mli: Gc_tensor_ir Ir
