lib/tir_passes/loop_merge.ml: Gc_tensor_ir Ir List Visit
