lib/tir_passes/tir_pipeline.ml: Buffer_schedule Dse Forward_store Gc_tensor_ir Ir Loop_merge Simplify Tensor_shrink
