lib/tir_passes/dse.ml: Gc_tensor_ir Hashtbl Ir List Visit
