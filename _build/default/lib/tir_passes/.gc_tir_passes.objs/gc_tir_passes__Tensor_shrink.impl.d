lib/tir_passes/tensor_shrink.ml: Array Gc_tensor_ir Ir List Visit
