lib/tir_passes/dse.mli: Gc_tensor_ir Ir
