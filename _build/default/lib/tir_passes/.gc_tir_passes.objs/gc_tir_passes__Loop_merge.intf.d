lib/tir_passes/loop_merge.mli: Gc_tensor_ir Ir
