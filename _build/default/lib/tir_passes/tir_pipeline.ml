open Gc_tensor_ir

type config = {
  merge_loops : bool;
  simplify : bool;
  scalarize : bool;
  shrink : bool;
  dse : bool;
  buffer_reuse : bool;
}

type stats = { loops_merged : int; buffers : Buffer_schedule.stats }

let default =
  {
    merge_loops = true;
    simplify = true;
    scalarize = true;
    shrink = true;
    dse = true;
    buffer_reuse = true;
  }

let none =
  {
    merge_loops = false;
    simplify = false;
    scalarize = false;
    shrink = false;
    dse = false;
    buffer_reuse = false;
  }

let run ?(config = default) (m : Ir.module_) =
  let m, loops_merged =
    if config.merge_loops then begin
      let m = Loop_merge.run m in
      (m, Loop_merge.last_merge_count ())
    end
    else (m, 0)
  in
  let m = if config.simplify then Simplify.run m else m in
  let m = if config.scalarize then Forward_store.run m else m in
  let m = if config.shrink then Tensor_shrink.run m else m in
  let m = if config.dse then Dse.run m else m in
  let m, buffers =
    if config.buffer_reuse then Buffer_schedule.run m
    else (m, Buffer_schedule.empty_stats)
  in
  (m, { loops_merged; buffers })
