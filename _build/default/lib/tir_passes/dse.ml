open Gc_tensor_ir
open Ir

let run_func (f : func) =
  (* tensors that are read (loaded or address-taken, e.g. intrinsics) *)
  let read : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  Visit.iter_stmts
    ~expr:(fun e ->
      match e with
      | Load (t, _) | Addr (t, _) -> Hashtbl.replace read t.tid ()
      | _ -> ())
    f.body;
  let is_dead_local (t : tensor) =
    t.storage = Local && not (Hashtbl.mem read t.tid)
  in
  let body =
    Visit.map_stmts
      ~stmt:(fun s ->
        match s with
        | Store (t, _, _) when is_dead_local t -> []
        | Alloc t when is_dead_local t -> []
        | s -> [ s ])
      f.body
  in
  { f with body }

let run (m : module_) = { m with funcs = List.map run_func m.funcs }
