open Gc_tensor_ir

(** Expression and control-flow simplification: integer constant folding,
    algebraic identities (x+0, x·1, x·0, x/1, x%1), decidable selects and
    branches, removal of empty loops, and trip-count-1 loop elimination
    (the loop variable is substituted by its single value) — the NPN=1
    inner loops and mpi·MSN arithmetic collapse away. *)

val expr : Ir.expr -> Ir.expr
val run_func : Ir.func -> Ir.func
val run : Ir.module_ -> Ir.module_
