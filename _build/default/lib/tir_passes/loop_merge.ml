open Gc_tensor_ir
open Ir

let rename_var ~from ~into body =
  Visit.map_stmts
    ~expr:(fun e ->
      match e with Var v when var_equal v from -> Var into | e -> e)
    ~stmt:(fun s ->
      match s with
      | Assign (v, e) when var_equal v from -> [ Assign (into, e) ]
      | For l when var_equal l.v from -> [ For { l with v = into } ]
      | s -> [ s ])
    body

let same_bounds (a : loop) (b : loop) =
  a.lo = b.lo && a.hi = b.hi && a.step = b.step && a.parallel = b.parallel

let merges = ref 0

(* Merge adjacent same-tag loops in one statement list; Allocs between two
   mergeable loops are hoisted before the merged loop. *)
let rec merge_list (stmts : stmt list) =
  match stmts with
  | [] -> []
  | For l1 :: rest when l1.merge_tag <> None -> (
      (* collect hoistable statements (allocations and constant scalar
         initializations) followed by a same-tag loop *)
      let rec peel acc = function
        | Alloc t :: tl -> peel (Alloc t :: acc) tl
        | Assign (v, (Int _ as e)) :: tl -> peel (Assign (v, e) :: acc) tl
        | For l2 :: tl
          when l2.merge_tag = l1.merge_tag && same_bounds l1 l2 ->
            Some (List.rev acc, l2, tl)
        | _ -> None
      in
      match peel [] rest with
      | Some (hoisted, l2, tl) ->
          incr merges;
          let body2 = rename_var ~from:l2.v ~into:l1.v l2.body in
          let merged = For { l1 with body = merge_list (l1.body @ body2) } in
          merge_list (hoisted @ (merged :: tl))
      | None -> For { l1 with body = merge_list l1.body } :: merge_list rest)
  | For l :: rest -> For { l with body = merge_list l.body } :: merge_list rest
  | If (c, t, e) :: rest -> If (c, merge_list t, merge_list e) :: merge_list rest
  | s :: rest -> s :: merge_list rest

let run_func (f : func) = { f with body = merge_list f.body }

let run (m : module_) =
  merges := 0;
  { m with funcs = List.map run_func m.funcs }

let last_merge_count () = !merges
