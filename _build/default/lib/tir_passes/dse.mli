open Gc_tensor_ir

(** Dead store elimination: stores into function-local tensors that are
    never read (no [Load] and no address taken) are removed, along with
    allocations of locals that end up entirely unused — cleans up the
    materialization stores the post#3 scheduler emits defensively. *)

val run_func : Ir.func -> Ir.func
val run : Ir.module_ -> Ir.module_
