open Gc_tensor_ir

(** Tensor size optimization (paper §Tensor IR optimization): reduces the
    footprint of the temporary tensors fusion introduced.

    Two transformations:
    - {b Alloc sinking}: each local tensor's allocation moves to the
      deepest scope containing all its accesses — temporaries used only
      inside a parallel task become task-local;
    - {b invariant-dimension shrinking}: after sinking, any dimension
      whose index expression is the same at every access site and is fixed
      for the tensor's whole lifetime (it only reads loop variables of
      enclosing loops) shrinks to extent 1 — e.g. the full-batch staging
      tensor A'[B, M, N] inside the batch loop becomes A'[1, M, N], the
      paper's "A'[MSN, BS, MB, KB] could be reduced to A'[BS, NB, KB]". *)

val run_func : Ir.func -> Ir.func
val run : Ir.module_ -> Ir.module_

(** Bytes of local temporaries before/after, for reporting. *)
val local_bytes : Ir.func -> int
