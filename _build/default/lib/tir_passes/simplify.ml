open Gc_tensor_ir
open Ir

let rec expr (e : Ir.expr) =
  Visit.map_expr simplify_node e

and simplify_node (e : Ir.expr) =
  match e with
  | Binop (op, Int a, Int b) -> (
      match op with
      | Add -> Int (a + b)
      | Sub -> Int (a - b)
      | Mul -> Int (a * b)
      | Div -> if b <> 0 then Int (a / b) else e
      | Mod -> if b <> 0 then Int (a mod b) else e
      | Min -> Int (min a b)
      | Max -> Int (max a b)
      | And -> Int (if a <> 0 && b <> 0 then 1 else 0)
      | Or -> Int (if a <> 0 || b <> 0 then 1 else 0)
      | Eq -> Int (if a = b then 1 else 0)
      | Ne -> Int (if a <> b then 1 else 0)
      | Lt -> Int (if a < b then 1 else 0)
      | Le -> Int (if a <= b then 1 else 0)
      | Gt -> Int (if a > b then 1 else 0)
      | Ge -> Int (if a >= b then 1 else 0))
  | Binop (Add, x, Int 0) | Binop (Add, Int 0, x) -> x
  | Binop (Sub, x, Int 0) -> x
  | Binop (Mul, x, Int 1) | Binop (Mul, Int 1, x) -> x
  | Binop (Mul, _, Int 0) | Binop (Mul, Int 0, _) -> Int 0
  | Binop (Div, x, Int 1) -> x
  | Binop (Mod, _, Int 1) -> Int 0
  | Binop (And, x, Int 1) | Binop (And, Int 1, x) -> x
  | Binop (And, _, Int 0) | Binop (And, Int 0, _) -> Int 0
  | Binop (Or, _, Int 1) | Binop (Or, Int 1, _) -> Int 1
  | Binop (Or, x, Int 0) | Binop (Or, Int 0, x) -> x
  | Binop (Add, Float a, Float b) -> Float (a +. b)
  | Binop (Mul, Float a, Float b) -> Float (a *. b)
  | Select (Int c, a, b) -> if c <> 0 then a else b
  | Unop (Neg, Int a) -> Int (-a)
  | Cast (dt, Float f) -> Float (Gc_tensor.Dtype.round_to dt f)
  | e -> e

(* substitute a variable with a constant expression *)
let subst_var v value body =
  Visit.map_stmts
    ~expr:(fun e -> match e with Var v' when var_equal v' v -> value | e -> e)
    body

let rec stmts (body : stmt list) : stmt list =
  List.concat_map
    (fun s ->
      match s with
      | Assign (v, e) -> [ Assign (v, expr e) ]
      | Store (t, idx, e) -> [ Store (t, Array.map expr idx, expr e) ]
      | Alloc t -> [ Alloc t ]
      | Barrier -> [ Barrier ]
      | Call (n, args) -> [ Call (n, List.map expr args) ]
      | If (c, th, el) -> (
          match expr c with
          | Int 0 -> stmts el
          | Int _ -> stmts th
          | c -> [ If (c, stmts th, stmts el) ])
      | For l -> (
          let lo = expr l.lo and hi = expr l.hi and step = expr l.step in
          let body = stmts l.body in
          match (lo, hi, step) with
          | Int a, Int b, _ when b <= a -> []
          | Int a, Int b, Int s when s > 0 && a + s >= b ->
              (* single iteration: inline with v = lo *)
              stmts (subst_var l.v (Int a) body)
          | _ -> [ For { l with lo; hi; step; body } ]))
    body

let run_func (f : func) = { f with body = stmts f.body }
let run (m : module_) = { m with funcs = List.map run_func m.funcs }
