open Gc_tensor_ir
open Ir

(* structural key for (tensor, index expressions) *)
let key (t : tensor) idx = (t.tid, idx)

let rec rewrite_expr bindings (e : expr) =
  Visit.map_expr
    (fun e ->
      match e with
      | Load (t, idx) -> (
          match Hashtbl.find_opt bindings (key t idx) with
          | Some v -> Var v
          | None -> e)
      | e -> e)
    e

and forward_list (stmts : stmt list) : stmt list =
  let bindings : (int * expr array, var) Hashtbl.t = Hashtbl.create 16 in
  let invalidate_tensor (t : tensor) =
    Hashtbl.iter
      (fun ((tid, _) as k) _ -> if tid = t.tid then Hashtbl.remove bindings k)
      (Hashtbl.copy bindings)
  in
  List.map
    (fun s ->
      match s with
      | Store (t, idx, e) ->
          let e = rewrite_expr bindings e in
          let idx = Array.map (rewrite_expr bindings) idx in
          if t.storage = Local then begin
            let v = Ir.fresh_var ~name:(t.tname ^ "_s") (Scalar t.tdtype) in
            (* a store at a different index may alias an earlier binding of
               the same tensor: drop them *)
            invalidate_tensor t;
            Hashtbl.replace bindings (key t idx) v;
            (* bundle the scalar definition with the store *)
            If (Int 1, [ Assign (v, e); Store (t, idx, Var v) ], [])
          end
          else Store (t, idx, e)
      | Assign (v, e) -> Assign (v, rewrite_expr bindings e)
      | Call (n, args) ->
          (* intrinsics may write through Addr operands *)
          List.iter
            (fun a -> match a with Addr (t, _) -> invalidate_tensor t | _ -> ())
            args;
          Call (n, List.map (rewrite_expr bindings) args)
      | If (c, th, el) ->
          let c = rewrite_expr bindings c in
          let th' = forward_list th and el' = forward_list el in
          List.iter invalidate_tensor (Visit.tensors_written th);
          List.iter invalidate_tensor (Visit.tensors_written el);
          If (c, th', el')
      | For l ->
          let body' = forward_list l.body in
          List.iter invalidate_tensor (Visit.tensors_written l.body);
          For
            {
              l with
              lo = rewrite_expr bindings l.lo;
              hi = rewrite_expr bindings l.hi;
              step = rewrite_expr bindings l.step;
              body = body';
            }
      | Alloc t ->
          invalidate_tensor t;
          s
      | Barrier -> s)
    stmts

(* flatten the If(1, ...) bundles introduced above *)
let flatten body =
  Visit.map_stmts
    ~stmt:(fun s -> match s with If (Int 1, th, _) -> th | s -> [ s ])
    body

let run_func (f : func) = { f with body = flatten (forward_list f.body) }
let run (m : module_) = { m with funcs = List.map run_func m.funcs }
