open Gc_tensor_ir
open Ir

(* ---- access accounting ---- *)

let accesses_in_stmts (t : tensor) body =
  Visit.fold_stmts
    ~expr:(fun acc e ->
      match e with
      | Load (t', _) | Addr (t', _) when tensor_equal t t' -> acc + 1
      | _ -> acc)
    ~stmt:(fun acc s ->
      match s with Store (t', _, _) when tensor_equal t t' -> acc + 1 | _ -> acc)
    0 body

(* ---- Alloc sinking ---- *)

(* Remove all Allocs of [t] from the tree. *)
let remove_alloc t body =
  Visit.map_stmts
    ~stmt:(fun s ->
      match s with Alloc t' when tensor_equal t t' -> [] | s -> [ s ])
    body

(* Insert [Alloc t] at the head of the deepest statement list that contains
   every access. Returns the rewritten list. *)
let sink_alloc t body =
  let total = accesses_in_stmts t body in
  if total = 0 then body (* never accessed; DSE will not miss it *)
  else begin
    let rec place (stmts : stmt list) : stmt list =
      (* can we descend into a single For/If child that holds all accesses? *)
      (* only descend into parallel loops: that privatizes the temporary
         per task; sinking into sequential loops would just re-allocate it
         every iteration *)
      let candidate =
        List.find_opt
          (fun s ->
            match s with
            | For l -> l.parallel && accesses_in_stmts t [ s ] = total
            | _ -> false)
          stmts
      in
      match candidate with
      | Some (For l) ->
          List.map
            (fun s ->
              match s with
              | For l' when l' == l -> For { l with body = place l.body }
              | s -> s)
            stmts
      | _ -> Alloc t :: stmts
    in
    place body
  end

(* ---- invariant-dimension shrinking ---- *)

(* Loop variables enclosing the Alloc of [t]. *)
let rec enclosing_vars t (stmts : stmt list) (acc : var list) : var list option =
  if List.exists (function Alloc t' -> tensor_equal t t' | _ -> false) stmts
  then Some acc
  else
    List.find_map
      (fun s ->
        match s with
        | For l -> enclosing_vars t l.body (l.v :: acc)
        | If (_, th, el) -> (
            match enclosing_vars t th acc with
            | Some r -> Some r
            | None -> enclosing_vars t el acc)
        | _ -> None)
      stmts

let free_vars e =
  Visit.fold_expr
    (fun acc e -> match e with Var v -> v :: acc | _ -> acc)
    [] e

(* All index expression arrays used to access [t]. *)
let index_sites t body =
  Visit.fold_stmts
    ~expr:(fun acc e ->
      match e with
      | Load (t', idx) | Addr (t', idx) when tensor_equal t t' -> idx :: acc
      | _ -> acc)
    ~stmt:(fun acc s ->
      match s with
      | Store (t', idx, _) when tensor_equal t t' -> idx :: acc
      | _ -> acc)
    [] body

(* A tensor whose address is taken (passed to an intrinsic or a sibling
   function) is accessed beyond the literal index — the index site lies
   about the extent — so it must not be shrunk. *)
let address_taken t body =
  Visit.fold_stmts
    ~expr:(fun acc e ->
      match e with Addr (t', _) when tensor_equal t t' -> true | _ -> acc)
    false body

let shrink_tensor t body =
  if address_taken t body then (t, body)
  else
  match enclosing_vars t body [] with
  | None -> (t, body)
  | Some enclosing ->
      let sites = index_sites t body in
      if sites = [] then (t, body)
      else begin
        let shrinkable d =
          t.dims.(d) > 1
          &&
          match sites with
          | [] -> false
          | first :: rest ->
              let e0 = first.(d) in
              List.for_all (fun site -> site.(d) = e0) rest
              && List.for_all
                   (fun v -> List.exists (var_equal v) enclosing)
                   (free_vars e0)
        in
        let dims' =
          Array.mapi (fun d x -> if shrinkable d then 1 else x) t.dims
        in
        if dims' = t.dims then (t, body)
        else begin
          let t' = { t with tid = t.tid; dims = dims' } in
          (* same tid: engine slots and planner treat it as the same buffer,
             just smaller; rewrite shrunk indices to 0 *)
          let body =
            Visit.map_stmts
              ~expr:(fun e ->
                match e with
                | Load (x, idx) when tensor_equal x t ->
                    Load (t', Array.mapi (fun d i -> if dims'.(d) = 1 && t.dims.(d) > 1 then Int 0 else i) idx)
                | Addr (x, idx) when tensor_equal x t ->
                    Addr (t', Array.mapi (fun d i -> if dims'.(d) = 1 && t.dims.(d) > 1 then Int 0 else i) idx)
                | e -> e)
              ~stmt:(fun s ->
                match s with
                | Store (x, idx, e) when tensor_equal x t ->
                    [ Store (t', Array.mapi (fun d i -> if dims'.(d) = 1 && t.dims.(d) > 1 then Int 0 else i) idx, e) ]
                | Alloc x when tensor_equal x t -> [ Alloc t' ]
                | s -> [ s ])
              body
          in
          (t', body)
        end
      end

let run_func (f : func) =
  let locals =
    List.filter (fun (t : tensor) -> t.storage = Local) (Visit.tensors_used f.body)
  in
  let body =
    List.fold_left
      (fun body t ->
        let body = remove_alloc t body in
        sink_alloc t body)
      f.body locals
  in
  (* re-collect: sinking does not change identity *)
  let body =
    List.fold_left
      (fun body t ->
        let _, body = shrink_tensor t body in
        body)
      body locals
  in
  { f with body }

let run (m : module_) = { m with funcs = List.map run_func m.funcs }

let local_bytes (f : func) =
  List.fold_left
    (fun acc (t : tensor) ->
      match t.storage with Local -> acc + tensor_bytes t | _ -> acc)
    0 (Visit.tensors_used f.body)
