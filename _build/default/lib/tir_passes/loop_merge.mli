open Gc_tensor_ir

(** Mechanical merging of loop nests tagged mergeable by coarse-grain
    fusion: adjacent [For] loops carrying the same merge tag and identical
    bounds become one loop whose body is the concatenation of both bodies
    (the second body's loop variable renamed to the first's). [Alloc]
    statements between two mergeable loops are hoisted in front. One
    barrier and one parallel-section launch disappear per merged pair. *)

val run_func : Ir.func -> Ir.func
val run : Ir.module_ -> Ir.module_

(** Number of loop pairs merged by the last {!run} (for tests/benches). *)
val last_merge_count : unit -> int
