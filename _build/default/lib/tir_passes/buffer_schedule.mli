open Gc_tensor_ir

(** Memory buffer optimization (paper §Tensor IR optimization): flattens
    the function-top local temporaries to one-dimensional memory buffers
    and reuses them across disjoint live ranges.

    Liveness is computed over the top-level statement order (def-use
    chains at the granularity of the fused-op calls in the entry function);
    at each allocation point the planner prefers reusing the
    most-recently-freed compatible buffer — "it chooses the one that was
    used most recently, so likely the data is still in the cache system" —
    and otherwise opens a new arena. Arenas are sized to the largest
    member. *)

type stats = {
  naive_bytes : int;  (** sum of all local temporaries *)
  planned_bytes : int;  (** sum of arena sizes after reuse *)
  buffers_before : int;
  buffers_after : int;
}

val empty_stats : stats

val run_func : Ir.func -> Ir.func * stats
val run : Ir.module_ -> Ir.module_ * stats
