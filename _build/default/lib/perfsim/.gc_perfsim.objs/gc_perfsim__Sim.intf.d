lib/perfsim/sim.mli: Format Gc_microkernel Gc_tensor_ir Ir Machine
