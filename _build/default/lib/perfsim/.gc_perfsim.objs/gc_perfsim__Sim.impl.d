lib/perfsim/sim.ml: Array Dtype Format Gc_microkernel Gc_tensor Gc_tensor_ir Hashtbl Intrinsic Ir List Machine Ukernel_cost
