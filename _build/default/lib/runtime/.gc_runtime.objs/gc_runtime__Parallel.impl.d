lib/runtime/parallel.ml: Array Atomic Condition Domain List Mutex Option
