lib/runtime/parallel.mli:
