lib/runtime/interp.mli: Buffer Gc_tensor Gc_tensor_ir Ir
