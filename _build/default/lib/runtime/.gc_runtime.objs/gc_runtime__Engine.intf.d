lib/runtime/engine.mli: Buffer Gc_tensor Gc_tensor_ir Ir Parallel
