lib/runtime/engine.ml: Array Buffer Check Dtype Float Gc_microkernel Gc_tensor Gc_tensor_ir Hashtbl Intrinsic Ir List Parallel Printf Stdlib
