lib/runtime/interp.ml: Array Buffer Check Dtype Float Gc_tensor Gc_tensor_ir Hashtbl Ir List Printf Stdlib
