open Gc_tensor
open Gc_tensor_ir

(** A straightforward tree-walking interpreter for Tensor IR. Single
    threaded (parallel loops run sequentially) and slow — its purpose is to
    be obviously correct, so the closure-compiling {!Engine} can be
    differentially tested against it. *)

type t

(** [create m] prepares the module (checks it, allocates globals). *)
val create : Ir.module_ -> t

(** [run_func t name params] interprets one function over positional
    buffers. *)
val run_func : t -> string -> Buffer.t array -> unit

val run_entry : t -> Buffer.t array -> unit
val run_init : t -> Buffer.t array -> unit
val global_buffer : t -> Ir.tensor -> Buffer.t
