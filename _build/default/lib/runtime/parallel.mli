(** A fixed pool of OCaml 5 domains used to execute the Tensor IR's
    parallel loops — the runtime substrate standing in for the paper's
    OpenMP-style multi-core kernels. *)

type t

(** [create n] spawns [n-1] worker domains (the caller participates as the
    n-th worker). [n = 1] gives a sequential pool with zero overhead. *)
val create : int -> t

(** Number of workers (including the caller). *)
val size : t -> int

(** [run pool tasks] executes the thunks, distributing them over the pool,
    and returns when all have completed. Exceptions raised by tasks are
    re-raised in the caller (the first one observed). Nested [run] on the
    same pool from inside a task executes inline (sequentially) to avoid
    deadlock. *)
val run : t -> (unit -> unit) array -> unit

(** [parallel_for pool ~lo ~hi f] splits [lo, hi) into contiguous chunks
    (one per worker) and runs [f chunk_lo chunk_hi] on each. *)
val parallel_for : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit

(** Shut the pool down. Further [run]s raise. *)
val shutdown : t -> unit

(** A lazily-created default pool sized to the machine. *)
val default : unit -> t
