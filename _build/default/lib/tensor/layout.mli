(** Memory layouts: plain row-major and the blocked layouts the paper's
    templates rely on (e.g. A[M/MB, K/KB, MB, KB]).

    A blocked layout is described by an ordered list of [(axis, block)]
    pairs. The physical dimension vector is: for each logical axis in
    original order, ⌈dim / (product of its blocks)⌉; then, appended in list
    order, one physical dimension per [(axis, block)] entry. Repeating an
    axis blocks it at two levels (used for VNNI-style B[K/KB, N/NB, KB/4,
    NB, 4] layouts). Logical dimensions that are not multiples of their
    block product are zero-padded in physical memory, exactly like the
    padding the paper fuses into Tunable OP entry/exit. *)

type t =
  | Plain
  | Blocked of (int * int) list  (** [(axis, block size)] in inner order *)

val equal : t -> t -> bool
val compare : t -> t -> int

val is_plain : t -> bool
val is_blocked : t -> bool

(** Blocks applied to [axis], in list order (outermost block first). *)
val blocks_of_axis : t -> int -> int list

(** Physical dimension vector for a logical shape under this layout.
    Raises [Invalid_argument] if a blocked axis is out of range or a block
    size is not positive. *)
val physical_dims : t -> Shape.t -> Shape.t

(** Number of physical elements, including block padding. *)
val physical_numel : t -> Shape.t -> int

(** [offset t shape idx] maps a logical multi-index to the physical linear
    offset. For [Plain] this is the row-major offset. *)
val offset : t -> Shape.t -> int array -> int

(** Standard layouts used by the matmul template (Figure 2/6):
    - [blocked_2d ~outer_block ~inner_block] blocks axis 0 by [outer_block]
      and axis 1 by [inner_block]: X[d0/b0, d1/b1, b0, b1].
    - [blocked_2d_swapped] gives the B-matrix layout X[d0/b0, d1/b1, b1, b0]
      where the inner block dims are swapped (paper's B[K/KB, N/NB, NB, KB]).
    - [vnni ~kb ~nb] gives B[K/KB, N/NB, KB/4, NB, 4] used for int8. *)
val blocked_2d : outer_block:int -> inner_block:int -> t

val blocked_2d_swapped : outer_block:int -> inner_block:int -> t
val vnni : kb:int -> nb:int -> t

(** Apply the same blocking to the last two axes of a higher-rank tensor
    (batch dimensions stay outermost and unblocked): shifts every axis in
    [t]'s block list by [rank - 2]. *)
val batched : rank:int -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
