(** Element data types supported by the tensor substrate.

    Mirrors the data types the oneDNN Graph Compiler handles: [F32] for full
    precision, [Bf16] (simulated by rounding f32 mantissas), the int8 family
    used by low-precision inference ([S8], [U8]) and the wide accumulator
    types ([S32], [S64]). *)

type t =
  | F32   (** 32-bit IEEE float *)
  | Bf16  (** bfloat16, stored widened to f32 with mantissa truncation *)
  | S32   (** 32-bit signed integer (int8 matmul accumulator) *)
  | S8    (** 8-bit signed integer *)
  | U8    (** 8-bit unsigned integer *)
  | S64   (** 64-bit signed integer (zero points, indices) *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** Size of one element in bytes, as laid out by the paper's target ISA
    (bf16 counts as 2 even though we store it widened). *)
val size_bytes : t -> int

val is_float : t -> bool
val is_int : t -> bool

(** Smallest/largest representable value, used for saturation on stores.
    For float types these are [neg_infinity]/[infinity]. *)
val min_value : t -> float
val max_value : t -> float

(** Round a float to the nearest value representable in [t] (saturating for
    integer types, mantissa-truncating for [Bf16], identity for [F32]). *)
val round_to : t -> float -> float

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

(** All dtypes, for exhaustive property tests. *)
val all : t list
