type t = Plain | Blocked of (int * int) list

let equal a b =
  match (a, b) with
  | Plain, Plain -> true
  | Blocked x, Blocked y -> x = y
  | _ -> false

let compare a b = Stdlib.compare a b
let is_plain = function Plain -> true | Blocked _ -> false
let is_blocked t = not (is_plain t)

let blocks_of_axis t axis =
  match t with
  | Plain -> []
  | Blocked bs -> List.filter_map (fun (a, s) -> if a = axis then Some s else None) bs

let check_blocks shape bs =
  List.iter
    (fun (a, s) ->
      if a < 0 || a >= Shape.rank shape then
        invalid_arg "Layout: blocked axis out of range";
      if s <= 0 then invalid_arg "Layout: non-positive block size")
    bs

let physical_dims t shape =
  match t with
  | Plain -> shape
  | Blocked bs ->
      check_blocks shape bs;
      let rank = Shape.rank shape in
      let outer =
        Array.init rank (fun a ->
            let prod = List.fold_left ( * ) 1 (blocks_of_axis t a) in
            Shape.ceil_div (Shape.dim shape a) prod)
      in
      let inner = Array.of_list (List.map snd bs) in
      Shape.of_array (Array.append outer inner)

let physical_numel t shape = Shape.numel (physical_dims t shape)

let offset t shape idx =
  match t with
  | Plain -> Shape.offset shape idx
  | Blocked bs ->
      check_blocks shape bs;
      let rank = Shape.rank shape in
      if Array.length idx <> rank then invalid_arg "Layout.offset: rank mismatch";
      (* Decompose each logical index into an outer digit plus one digit per
         block level, outermost level first. *)
      let phys = physical_dims t shape in
      let nblocks = List.length bs in
      let pidx = Array.make (rank + nblocks) 0 in
      (* residual index per axis; peel inner digits from the last block
         level backwards so we can fill pidx in one pass. *)
      let digits = Array.make nblocks 0 in
      let residual = Array.copy idx in
      (* Walk the block list from the last entry to the first: the last
         entry for an axis is the innermost (fastest-varying) digit. *)
      let bs_arr = Array.of_list bs in
      for i = nblocks - 1 downto 0 do
        let a, s = bs_arr.(i) in
        digits.(i) <- residual.(a) mod s;
        residual.(a) <- residual.(a) / s
      done;
      for a = 0 to rank - 1 do
        pidx.(a) <- residual.(a)
      done;
      for i = 0 to nblocks - 1 do
        pidx.(rank + i) <- digits.(i)
      done;
      Shape.offset phys pidx

let blocked_2d ~outer_block ~inner_block = Blocked [ (0, outer_block); (1, inner_block) ]
let blocked_2d_swapped ~outer_block ~inner_block = Blocked [ (1, inner_block); (0, outer_block) ]
let vnni ~kb ~nb =
  if kb mod 4 <> 0 then invalid_arg "Layout.vnni: kb must be a multiple of 4";
  Blocked [ (0, kb / 4); (1, nb); (0, 4) ]

let batched ~rank t =
  match t with
  | Plain -> Plain
  | Blocked bs -> Blocked (List.map (fun (a, s) -> (a + rank - 2, s)) bs)

let to_string = function
  | Plain -> "plain"
  | Blocked bs ->
      "blocked("
      ^ String.concat ","
          (List.map (fun (a, s) -> Printf.sprintf "ax%d:%d" a s) bs)
      ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)
