lib/tensor/tensor.ml: Array Buffer Dtype Float Format Int64 Layout List Shape
