lib/tensor/reorder.mli: Dtype Layout Shape Tensor
