lib/tensor/buffer.ml: Array1 Bigarray Dtype Float Int32 Int64
