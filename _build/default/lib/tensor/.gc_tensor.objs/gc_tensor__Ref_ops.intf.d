lib/tensor/ref_ops.mli: Dtype Tensor
