lib/tensor/reorder.ml: Array Shape Tensor
