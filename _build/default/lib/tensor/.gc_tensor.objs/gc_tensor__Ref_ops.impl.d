lib/tensor/ref_ops.ml: Array Dtype Float List Option Printf Shape Stdlib Tensor
