lib/tensor/dtype.ml: Float Format Int Int32 Int64
