lib/tensor/buffer.mli: Bigarray Dtype
