lib/tensor/tensor.mli: Buffer Dtype Format Layout Shape
