lib/tensor/layout.ml: Array Format List Printf Shape Stdlib String
