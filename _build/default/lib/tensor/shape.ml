type t = int array

let of_array a =
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Shape.of_array: negative dimension")
    a;
  Array.copy a

let of_list l = of_array (Array.of_list l)
let to_list t = Array.to_list t
let to_array t = Array.copy t
let rank t = Array.length t

let dim t i =
  if i < 0 || i >= Array.length t then invalid_arg "Shape.dim: out of bounds";
  t.(i)

let numel t = Array.fold_left ( * ) 1 t
let equal a b = a = b
let compare a b = Stdlib.compare a b
let scalar = [||]
let is_scalar t = Array.length t = 0

let row_major_strides t =
  let n = Array.length t in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * t.(i + 1)
  done;
  s

let offset t idx =
  let n = Array.length t in
  if Array.length idx <> n then invalid_arg "Shape.offset: rank mismatch";
  let off = ref 0 in
  for i = 0 to n - 1 do
    if idx.(i) < 0 || idx.(i) >= t.(i) then
      invalid_arg
        (Printf.sprintf "Shape.offset: index %d out of range [0,%d) at dim %d"
           idx.(i) t.(i) i);
    off := (!off * t.(i)) + idx.(i)
  done;
  !off

let unoffset t linear =
  let n = Array.length t in
  let idx = Array.make n 0 in
  let rem = ref linear in
  for i = n - 1 downto 0 do
    if t.(i) > 0 then begin
      idx.(i) <- !rem mod t.(i);
      rem := !rem / t.(i)
    end
  done;
  idx

let broadcast a b =
  let ra = Array.length a and rb = Array.length b in
  let r = max ra rb in
  let out = Array.make r 0 in
  let ok = ref true in
  for i = 0 to r - 1 do
    let da = if i < r - ra then 1 else a.(i - (r - ra)) in
    let db = if i < r - rb then 1 else b.(i - (r - rb)) in
    if da = db then out.(i) <- da
    else if da = 1 then out.(i) <- db
    else if db = 1 then out.(i) <- da
    else ok := false
  done;
  if !ok then Some out else None

let broadcast_index ~from idx =
  let rf = Array.length from and ri = Array.length idx in
  Array.init rf (fun i ->
      let j = i + (ri - rf) in
      if j < 0 then 0 else if from.(i) = 1 then 0 else idx.(j))

let iter t f =
  let n = numel t in
  if Array.length t = 0 then (if n > 0 then f [||])
  else
    let idx = Array.make (Array.length t) 0 in
    let rank = Array.length t in
    let rec loop () =
      f (Array.copy idx);
      (* advance odometer *)
      let rec bump i =
        if i < 0 then false
        else begin
          idx.(i) <- idx.(i) + 1;
          if idx.(i) < t.(i) then true
          else begin
            idx.(i) <- 0;
            bump (i - 1)
          end
        end
      in
      if bump (rank - 1) then loop ()
    in
    if n > 0 then loop ()

let concat a b = Array.append a b
let sub t lo hi = Array.sub t lo (hi - lo)
let ceil_div a b = (a + b - 1) / b

let to_string t =
  "[" ^ String.concat "x" (List.map string_of_int (Array.to_list t)) ^ "]"

let pp fmt t = Format.pp_print_string fmt (to_string t)
