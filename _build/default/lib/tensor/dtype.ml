type t = F32 | Bf16 | S32 | S8 | U8 | S64

let equal a b =
  match (a, b) with
  | F32, F32 | Bf16, Bf16 | S32, S32 | S8, S8 | U8, U8 | S64, S64 -> true
  | _ -> false

let rank = function F32 -> 0 | Bf16 -> 1 | S32 -> 2 | S8 -> 3 | U8 -> 4 | S64 -> 5
let compare a b = Int.compare (rank a) (rank b)

let size_bytes = function
  | F32 | S32 -> 4
  | Bf16 -> 2
  | S8 | U8 -> 1
  | S64 -> 8

let is_float = function F32 | Bf16 -> true | S32 | S8 | U8 | S64 -> false
let is_int t = not (is_float t)

let min_value = function
  | F32 | Bf16 -> neg_infinity
  | S32 -> Int32.to_float Int32.min_int
  | S8 -> -128.
  | U8 -> 0.
  | S64 -> Int64.to_float Int64.min_int

let max_value = function
  | F32 | Bf16 -> infinity
  | S32 -> Int32.to_float Int32.max_int
  | S8 -> 127.
  | U8 -> 255.
  | S64 -> Int64.to_float Int64.max_int

(* Truncate an f32 to bf16 precision by zeroing the low 16 mantissa bits,
   with round-to-nearest-even on the dropped bits (matches hardware bf16
   conversion). *)
let round_bf16 x =
  if Float.is_nan x then x
  else begin
    let bits = Int32.bits_of_float x in
    let lsb = Int32.to_int (Int32.shift_right_logical bits 16) land 1 in
    let rounding = Int32.of_int (0x7fff + lsb) in
    let rounded = Int32.add bits rounding in
    let masked = Int32.logand rounded 0xffff0000l in
    Int32.float_of_bits masked
  end

let saturate t x =
  let x = Float.round x in
  let lo = min_value t and hi = max_value t in
  if Float.is_nan x then 0. else Float.max lo (Float.min hi x)

let round_to t x =
  match t with
  | F32 -> x
  | Bf16 -> round_bf16 x
  | S32 | S8 | U8 | S64 -> saturate t x

let to_string = function
  | F32 -> "f32"
  | Bf16 -> "bf16"
  | S32 -> "s32"
  | S8 -> "s8"
  | U8 -> "u8"
  | S64 -> "s64"

let of_string = function
  | "f32" -> Some F32
  | "bf16" -> Some Bf16
  | "s32" -> Some S32
  | "s8" -> Some S8
  | "u8" -> Some U8
  | "s64" -> Some S64
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)
let all = [ F32; Bf16; S32; S8; U8; S64 ]
