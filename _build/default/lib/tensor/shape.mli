(** Tensor shapes: immutable integer dimension vectors with the broadcast
    and indexing arithmetic used throughout the compiler. *)

type t

(** [of_list dims] builds a shape. Raises [Invalid_argument] on a negative
    dimension. Scalars are rank-0 shapes ([of_list []]). *)
val of_list : int list -> t

val of_array : int array -> t
val to_list : t -> int list
val to_array : t -> int array

val rank : t -> int

(** [dim t i] is the size of dimension [i]. Raises [Invalid_argument] when
    [i] is out of bounds. *)
val dim : t -> int -> int

(** Total number of elements (product of dimensions; 1 for scalars). *)
val numel : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val scalar : t
val is_scalar : t -> bool

(** Row-major strides in elements. *)
val row_major_strides : t -> int array

(** [offset t idx] is the row-major linear offset of multi-index [idx].
    Raises [Invalid_argument] on rank mismatch or out-of-range index. *)
val offset : t -> int array -> int

(** [unoffset t linear] inverts {!offset}. *)
val unoffset : t -> int -> int array

(** NumPy-style broadcast of two shapes; [None] when incompatible. Missing
    leading dimensions are treated as 1. *)
val broadcast : t -> t -> t option

(** [broadcast_index ~from idx] maps an index in the broadcast shape back to
    an index into [from] (dimensions of size 1 clamp to 0). *)
val broadcast_index : from:t -> int array -> int array

(** [iter t f] calls [f] on every multi-index of [t] in row-major order. *)
val iter : t -> (int array -> unit) -> unit

(** [concat a b] appends dimensions. *)
val concat : t -> t -> t

(** [sub t lo hi] is the shape of dimensions [lo..hi-1]. *)
val sub : t -> int -> int -> t

(** [ceil_div a b] = ⌈a/b⌉, used pervasively by blocking arithmetic. *)
val ceil_div : int -> int -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
