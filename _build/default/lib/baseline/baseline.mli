open Gc_tensor
open Gc_microkernel

(** The oneDNN-primitives baseline the paper evaluates against.

    It shares the compiler's expert substrate — the same batch-reduce GEMM
    microkernel, the same parameter heuristic, the same domain pool — but
    optimizes at primitive scope only, exactly like a primitives library:

    - weight prepacking, compensation and caching (runtime constants);
    - post-op attributes: eltwise chains and binary operands fuse into a
      primitive, but reductions (softmax) cannot;
    - every primitive is a separate API call and a separate parallel
      section; activations pass between primitives in plain layout.

    [config] is the preset; {!Matmul_primitive} is a small oneDNN-style
    primitive API used by the Figure 7 benchmarks and the examples. *)

val config : ?machine:Machine.t -> unit -> Core.config

(** Analytic cost of one expert-tuned primitive invocation (Figure 7's
    comparator): same model as the compiler's template heuristic, except
    the hand-written kernel handles ragged K tails without padding (the
    compiler pads K up to KB·BS multiples), and each invocation pays the
    framework API-call overhead. *)
val primitive_matmul_cost :
  machine:Machine.t -> dtype:Dtype.t -> ?batch:int -> m:int -> n:int -> k:int -> unit -> float

(** Figure 7's comparison for one problem: [(compiler, primitive)] cycles,
    both derived from the same simulated kernel — the compiler pays K/N
    padding, the primitive pays per-invocation dispatch but handles
    ragged tails with remainder code. *)
val figure7_costs :
  machine:Machine.t -> dtype:Dtype.t -> m:int -> n:int -> k:int -> unit -> float * float

module Matmul_primitive : sig
  (** A matmul primitive with post-op attributes, oneDNN style: created
      once (compiling its kernel and prepacking the weight on first
      execution), then executed many times. *)

  type post_op =
    | Relu
    | Bias of Tensor.t  (** [n]-vector added to every row *)
    | Binary_add of Tensor.t  (** broadcastable second operand *)

  type t

  (** [create ?machine ~dtype ~m ~n ~k ~post_ops ()]. [dtype] is the input
      operand type; int8 inputs produce s32 accumulators scaled back per
      the usual convention (f32 output). *)
  val create :
    ?machine:Machine.t ->
    dtype:Dtype.t ->
    m:int ->
    n:int ->
    k:int ->
    ?post_ops:post_op list ->
    unit ->
    t

  (** [execute t ~src ~weights] runs the primitive. The weight tensor is
      prepacked and cached on first use (re-bound if a different tensor is
      passed later). *)
  val execute : t -> src:Tensor.t -> weights:Tensor.t -> Tensor.t
end
