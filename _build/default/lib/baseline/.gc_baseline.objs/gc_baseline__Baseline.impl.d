lib/baseline/baseline.ml: Core Dtype Gc_graph_passes Gc_lowering Gc_microkernel Gc_perfsim Gc_tensor Gc_tir_passes Gc_workloads Heuristic List Machine Params Shape Tensor
