lib/baseline/baseline.mli: Core Dtype Gc_microkernel Gc_tensor Machine Tensor
