lib/workloads/mha.ml: Array Builder Dtype Gc_graph_ir Gc_tensor Graph Logical_tensor Shape Stdlib Tensor
