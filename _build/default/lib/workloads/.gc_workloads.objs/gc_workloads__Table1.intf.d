lib/workloads/table1.mli: Format
