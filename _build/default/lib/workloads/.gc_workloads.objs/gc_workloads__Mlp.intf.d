lib/workloads/mlp.mli: Gc_graph_ir Gc_tensor Graph Logical_tensor Tensor
