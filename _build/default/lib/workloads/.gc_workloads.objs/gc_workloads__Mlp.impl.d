lib/workloads/mlp.ml: Builder Dtype Gc_graph_ir Gc_tensor Graph List Logical_tensor Printf Shape Tensor
