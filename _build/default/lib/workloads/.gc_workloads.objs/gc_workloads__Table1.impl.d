lib/workloads/table1.ml: Format List String
