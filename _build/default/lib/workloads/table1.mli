(** Table 1 of the paper: the evaluation workload parameters. MLP weight
    sizes come from the MLPerf DLRM model; MHA sequence lengths and hidden
    sizes from the BERT models. *)

type mlp_spec = {
  mlp_name : string;
  hidden : int list;  (** layer widths, e.g. 13×512×256×128 *)
  mlp_batches : int list;
}

type mha_spec = {
  mha_name : string;
  seq_len : int;
  hidden_size : int;
  heads : int;
  mha_batches : int list;
}

val mlp_1 : mlp_spec
val mlp_2 : mlp_spec
val mha_1 : mha_spec
val mha_2 : mha_spec
val mha_3 : mha_spec
val mha_4 : mha_spec
val all_mlp : mlp_spec list
val all_mha : mha_spec list

(** Render the table (used by [bench/main.exe table1]). *)
val pp : Format.formatter -> unit -> unit
