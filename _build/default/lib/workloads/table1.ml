type mlp_spec = { mlp_name : string; hidden : int list; mlp_batches : int list }

type mha_spec = {
  mha_name : string;
  seq_len : int;
  hidden_size : int;
  heads : int;
  mha_batches : int list;
}

let mlp_batches = [ 32; 64; 128; 256; 512 ]
let mha_batches = [ 32; 64; 128 ]

let mlp_1 = { mlp_name = "MLP_1"; hidden = [ 13; 512; 256; 128 ]; mlp_batches }

let mlp_2 =
  { mlp_name = "MLP_2"; hidden = [ 479; 1024; 1024; 512; 256; 1 ]; mlp_batches }

let mha_1 =
  { mha_name = "MHA_1"; seq_len = 128; hidden_size = 768; heads = 8; mha_batches }

let mha_2 =
  { mha_name = "MHA_2"; seq_len = 128; hidden_size = 768; heads = 12; mha_batches }

let mha_3 =
  { mha_name = "MHA_3"; seq_len = 384; hidden_size = 1024; heads = 8; mha_batches }

let mha_4 =
  { mha_name = "MHA_4"; seq_len = 512; hidden_size = 1024; heads = 16; mha_batches }

let all_mlp = [ mlp_1; mlp_2 ]
let all_mha = [ mha_1; mha_2; mha_3; mha_4 ]

let pp fmt () =
  Format.fprintf fmt
    "@[<v>Table 1. Workload parameters@,\
     %-10s %-11s %-22s %-16s %-25s %s@," "Workload" "data type" "batch sizes"
    "sequence length" "hidden size" "heads";
  List.iter
    (fun m ->
      Format.fprintf fmt "%-10s %-11s %-22s %-16s %-25s %s@," m.mlp_name
        "Int8, FP32"
        (String.concat "," (List.map string_of_int m.mlp_batches))
        "N/A"
        (String.concat "x" (List.map string_of_int m.hidden))
        "N/A")
    all_mlp;
  List.iter
    (fun m ->
      Format.fprintf fmt "%-10s %-11s %-22s %-16d %-25d %d@," m.mha_name
        "Int8, FP32"
        (String.concat "," (List.map string_of_int m.mha_batches))
        m.seq_len m.hidden_size m.heads)
    all_mha;
  Format.fprintf fmt "@]"
