lib/graph_ir/op.mli: Attrs Format Logical_tensor Op_kind
