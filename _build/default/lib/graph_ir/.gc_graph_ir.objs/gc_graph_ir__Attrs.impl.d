lib/graph_ir/attrs.ml: Format List Map Printf String
