lib/graph_ir/infer.mli: Attrs Dtype Gc_tensor Logical_tensor Op Op_kind Shape
