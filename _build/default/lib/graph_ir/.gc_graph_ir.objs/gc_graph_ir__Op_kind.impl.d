lib/graph_ir/op_kind.ml: Format
