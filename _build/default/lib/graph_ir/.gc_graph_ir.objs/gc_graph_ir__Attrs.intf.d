lib/graph_ir/attrs.mli: Format
