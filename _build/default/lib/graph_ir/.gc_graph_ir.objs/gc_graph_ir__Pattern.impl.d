lib/graph_ir/pattern.ml: Graph List Logical_tensor Op Op_kind
