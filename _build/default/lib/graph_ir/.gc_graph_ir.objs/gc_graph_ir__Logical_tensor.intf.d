lib/graph_ir/logical_tensor.mli: Dtype Format Gc_tensor Layout Shape Tensor
