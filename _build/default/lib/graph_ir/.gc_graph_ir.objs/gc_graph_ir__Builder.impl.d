lib/graph_ir/builder.ml: Attrs Dtype Gc_tensor Graph Infer List Logical_tensor Op Op_kind Printf Shape Tensor
