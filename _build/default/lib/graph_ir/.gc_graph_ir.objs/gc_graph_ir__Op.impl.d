lib/graph_ir/op.ml: Atomic Attrs Format List Logical_tensor Op_kind Option Printf
