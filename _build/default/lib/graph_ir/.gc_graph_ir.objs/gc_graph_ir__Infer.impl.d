lib/graph_ir/infer.ml: Array Attrs Dtype Format Fun Gc_tensor List Logical_tensor Op Op_kind Option Result Shape
