lib/graph_ir/builder.mli: Attrs Dtype Gc_tensor Graph Layout Logical_tensor Op_kind Shape Tensor
