lib/graph_ir/reference.ml: Array Attrs Dtype Fun Gc_tensor Graph Hashtbl List Logical_tensor Op Op_kind Option Printf Ref_ops Reorder Shape Stdlib Tensor
