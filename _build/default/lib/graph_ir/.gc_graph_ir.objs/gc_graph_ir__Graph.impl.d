lib/graph_ir/graph.ml: Format Gc_tensor Hashtbl Infer List Logical_tensor Op Op_kind Printf Stdlib String
