lib/graph_ir/pattern.mli: Graph Logical_tensor Op Op_kind
