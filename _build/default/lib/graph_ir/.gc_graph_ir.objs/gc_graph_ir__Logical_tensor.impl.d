lib/graph_ir/logical_tensor.ml: Atomic Dtype Format Gc_tensor Int Layout Option Printf Shape Tensor
