lib/graph_ir/reference.mli: Gc_tensor Graph Logical_tensor Op Tensor
