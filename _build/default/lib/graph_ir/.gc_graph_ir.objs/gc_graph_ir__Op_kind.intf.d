lib/graph_ir/op_kind.mli: Format
