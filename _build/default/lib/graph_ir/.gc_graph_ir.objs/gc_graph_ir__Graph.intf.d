lib/graph_ir/graph.mli: Format Hashtbl Logical_tensor Op
