type t = {
  id : int;
  name : string;
  kind : Op_kind.t;
  attrs : Attrs.t;
  inputs : Logical_tensor.t list;
  outputs : Logical_tensor.t list;
}

let counter = Atomic.make 0

let create ?name ?(attrs = Attrs.empty) kind ~inputs ~outputs =
  (match Op_kind.arity kind with
  | Some n when List.length inputs <> n ->
      invalid_arg
        (Printf.sprintf "Op.create: %s expects %d inputs, got %d"
           (Op_kind.to_string kind) n (List.length inputs))
  | _ -> ());
  if outputs = [] then invalid_arg "Op.create: op must have an output";
  let id = Atomic.fetch_and_add counter 1 in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s_%d" (Op_kind.to_string kind) id
  in
  { id; name; kind; attrs; inputs; outputs }

let with_ ?kind ?attrs ?inputs ?outputs t =
  {
    t with
    kind = Option.value kind ~default:t.kind;
    attrs = Option.value attrs ~default:t.attrs;
    inputs = Option.value inputs ~default:t.inputs;
    outputs = Option.value outputs ~default:t.outputs;
  }

let output t =
  match t.outputs with
  | [ o ] -> o
  | _ -> invalid_arg (Printf.sprintf "Op.output: %s has %d outputs" t.name (List.length t.outputs))

let category t = Op_kind.category t.kind
let equal a b = a.id = b.id

let pp fmt t =
  Format.fprintf fmt "%a = %s" (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") Logical_tensor.pp) t.outputs (Op_kind.to_string t.kind);
  if not (Attrs.is_empty t.attrs) then Format.fprintf fmt "%a" Attrs.pp t.attrs;
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") Logical_tensor.pp)
    t.inputs
