(** Graph IR operations: kind + category + attributes + logical tensor
    inputs/outputs. Ops are immutable; rewriting passes build new ops. *)

type t = {
  id : int;
  name : string;
  kind : Op_kind.t;
  attrs : Attrs.t;
  inputs : Logical_tensor.t list;
  outputs : Logical_tensor.t list;
}

(** [create ?name ?attrs kind ~inputs ~outputs] makes an op with a unique
    id. Raises [Invalid_argument] when the input count contradicts the
    kind's arity. *)
val create :
  ?name:string ->
  ?attrs:Attrs.t ->
  Op_kind.t ->
  inputs:Logical_tensor.t list ->
  outputs:Logical_tensor.t list ->
  t

(** New op with substituted fields (fresh id kept — [with_] preserves id so
    use/def bookkeeping built on ids stays valid). *)
val with_ :
  ?kind:Op_kind.t ->
  ?attrs:Attrs.t ->
  ?inputs:Logical_tensor.t list ->
  ?outputs:Logical_tensor.t list ->
  t ->
  t

val output : t -> Logical_tensor.t
(** The single output; raises when the op has several. *)

val category : t -> Op_kind.category
val equal : t -> t -> bool  (** by id *)

val pp : Format.formatter -> t -> unit
