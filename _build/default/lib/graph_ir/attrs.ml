module M = Map.Make (String)

type value =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Ints of int list
  | Floats of float list

type t = value M.t

let empty = M.empty
let is_empty = M.is_empty
let set t k v = M.add k v t
let find t k = M.find_opt k t
let mem t k = M.mem k t
let bindings t = M.bindings t
let of_list l = List.fold_left (fun acc (k, v) -> M.add k v acc) M.empty l
let get_int t k = match find t k with Some (Int i) -> Some i | _ -> None
let get_float t k = match find t k with Some (Float f) -> Some f | _ -> None
let get_bool t k = match find t k with Some (Bool b) -> Some b | _ -> None
let get_str t k = match find t k with Some (Str s) -> Some s | _ -> None
let get_ints t k = match find t k with Some (Ints l) -> Some l | _ -> None
let get_floats t k = match find t k with Some (Floats l) -> Some l | _ -> None

let missing k = invalid_arg (Printf.sprintf "Attrs: missing/ill-typed attribute %S" k)
let int_exn t k = match get_int t k with Some i -> i | None -> missing k
let float_exn t k = match get_float t k with Some f -> f | None -> missing k
let bool_exn t k = match get_bool t k with Some b -> b | None -> missing k
let ints_exn t k = match get_ints t k with Some l -> l | None -> missing k
let equal a b = M.equal ( = ) a b

let pp_value fmt = function
  | Int i -> Format.fprintf fmt "%d" i
  | Float f -> Format.fprintf fmt "%g" f
  | Bool b -> Format.fprintf fmt "%b" b
  | Str s -> Format.fprintf fmt "%S" s
  | Ints l ->
      Format.fprintf fmt "[%s]" (String.concat ";" (List.map string_of_int l))
  | Floats l ->
      Format.fprintf fmt "[%s]"
        (String.concat ";" (List.map (Printf.sprintf "%g") l))

let pp fmt t =
  Format.fprintf fmt "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s=%a" k pp_value v)
    (bindings t);
  Format.fprintf fmt "}"
