open Gc_tensor

type property = Variable | Runtime_const | Compile_const of Tensor.t

type t = {
  id : int;
  name : string;
  dtype : Dtype.t;
  shape : Shape.t;
  mutable layout : Layout.t;
  mutable property : property;
}

let counter = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add counter 1

let create ?name ?(layout = Layout.Plain) ?(property = Variable) dtype shape =
  let id = fresh_id () in
  let name = match name with Some n -> n | None -> Printf.sprintf "t%d" id in
  { id; name; dtype; shape; layout; property }

let const ?name tensor =
  create ?name
    ~layout:(Tensor.layout tensor)
    ~property:(Compile_const tensor) (Tensor.dtype tensor) (Tensor.shape tensor)

let like ?name ?dtype ?shape ?layout t =
  create
    ~name:(match name with Some n -> n | None -> t.name)
    ~layout:(Option.value layout ~default:t.layout)
    (Option.value dtype ~default:t.dtype)
    (Option.value shape ~default:t.shape)

let is_constant t =
  match t.property with Runtime_const | Compile_const _ -> true | Variable -> false

let is_compile_const t =
  match t.property with Compile_const _ -> true | _ -> false

let const_value t =
  match t.property with Compile_const v -> Some v | _ -> None

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let pp fmt t =
  let prop =
    match t.property with
    | Variable -> ""
    | Runtime_const -> " const@runtime"
    | Compile_const _ -> " const"
  in
  Format.fprintf fmt "%%%s:%a%a%s%s" t.name Dtype.pp t.dtype Shape.pp t.shape
    (if Layout.is_plain t.layout then "" else ":" ^ Layout.to_string t.layout)
    prop
