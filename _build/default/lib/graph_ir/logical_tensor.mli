open Gc_tensor

(** Logical tensors: the metadata edges of the Graph IR — dtype, shape,
    memory layout and constness. A logical tensor does not own data unless
    it is a compile-time constant.

    The [property] field implements the paper's constant classification:
    - [Variable]: ordinary runtime data;
    - [Runtime_const]: the buffer is constant from the first execution on
      (e.g. weights); the constant-weight-preprocessing pass marks these
      and moves their producers into the init function;
    - [Compile_const]: the value is known at compile time (attributes,
      folded scales/zero-points) and carries its tensor. *)

type property =
  | Variable
  | Runtime_const
  | Compile_const of Tensor.t

type t = {
  id : int;
  name : string;
  dtype : Dtype.t;
  shape : Shape.t;
  mutable layout : Layout.t;
  mutable property : property;
}

(** [create ?name ?layout ?property dtype shape] makes a fresh logical
    tensor with a unique id. *)
val create :
  ?name:string -> ?layout:Layout.t -> ?property:property -> Dtype.t -> Shape.t -> t

(** A compile-time constant wrapping [tensor]. *)
val const : ?name:string -> Tensor.t -> t

(** Fresh tensor with the same metadata (new id). *)
val like : ?name:string -> ?dtype:Dtype.t -> ?shape:Shape.t -> ?layout:Layout.t -> t -> t

val is_constant : t -> bool  (** runtime or compile-time constant *)

val is_compile_const : t -> bool
val const_value : t -> Tensor.t option
val equal : t -> t -> bool  (** by id *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
