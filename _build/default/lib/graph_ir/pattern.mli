(** A small combinator library for matching subgraph patterns, used by the
    rewriting passes (e.g. low-precision conversion matches
    dequantize → matmul → quantize chains). *)

type match_result = {
  ops : Op.t list;  (** matched ops, in pattern order *)
  bindings : (string * Logical_tensor.t) list;  (** named tensor captures *)
}

type t

(** Match an op by kind predicate; optionally capture its output tensor
    under [bind]. *)
val op : ?bind:string -> (Op_kind.t -> bool) -> t

val kind : ?bind:string -> Op_kind.t -> t

(** [consumed_by p q]: match [p], then require its (single) consumer to
    match [q]; the chain extends through single-use edges only. *)
val consumed_by : t -> t -> t

(** [p |> q] is [consumed_by p q]. *)
val ( --> ) : t -> t -> t

(** All matches of the pattern in the graph (anchored at every op;
    overlapping matches are all reported). *)
val find_all : Graph.t -> t -> match_result list

(** First match, if any. *)
val find : Graph.t -> t -> match_result option

val binding : match_result -> string -> Logical_tensor.t option
