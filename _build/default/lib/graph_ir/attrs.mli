(** Operation attributes: a small typed key-value map (the Graph IR "OP has
    kind, category, attributes" of the paper). *)

type value =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Ints of int list
  | Floats of float list

type t

val empty : t
val is_empty : t -> bool
val set : t -> string -> value -> t
val find : t -> string -> value option
val mem : t -> string -> bool
val bindings : t -> (string * value) list
val of_list : (string * value) list -> t

(** Typed getters; [None] when absent or wrong type. *)
val get_int : t -> string -> int option

val get_float : t -> string -> float option
val get_bool : t -> string -> bool option
val get_str : t -> string -> string option
val get_ints : t -> string -> int list option
val get_floats : t -> string -> float list option

(** Exception-raising getters for attributes an op kind requires. *)
val int_exn : t -> string -> int

val float_exn : t -> string -> float
val bool_exn : t -> string -> bool
val ints_exn : t -> string -> int list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
