type match_result = {
  ops : Op.t list;
  bindings : (string * Logical_tensor.t) list;
}

type t =
  | Node of { pred : Op_kind.t -> bool; bind : string option }
  | Chain of t * t

let op ?bind pred = Node { pred; bind }
let kind ?bind k = op ?bind (Op_kind.equal k)
let consumed_by a b = Chain (a, b)
let ( --> ) = consumed_by

(* Match [pat] anchored at [anchor]; returns ops in order and bindings, and
   the tail op whose consumer continues the chain. *)
let rec match_at g (anchor : Op.t) pat : match_result option =
  match pat with
  | Node { pred; bind } ->
      if pred anchor.kind then
        let bindings =
          match (bind, anchor.outputs) with
          | Some name, out :: _ -> [ (name, out) ]
          | _ -> []
        in
        Some { ops = [ anchor ]; bindings }
      else None
  | Chain (a, b) -> (
      match match_at g anchor a with
      | None -> None
      | Some ra -> (
          let last = List.nth ra.ops (List.length ra.ops - 1) in
          match last.outputs with
          | [ out ] -> (
              match Graph.consumers g out with
              | [ next ] when not (Graph.is_output g out) -> (
                  match match_at g next b with
                  | None -> None
                  | Some rb ->
                      Some
                        {
                          ops = ra.ops @ rb.ops;
                          bindings = ra.bindings @ rb.bindings;
                        })
              | _ -> None)
          | _ -> None))

let find_all g pat =
  List.filter_map (fun anchor -> match_at g anchor pat) g.Graph.ops

let find g pat =
  List.find_map (fun anchor -> match_at g anchor pat) g.Graph.ops

let binding r name = List.assoc_opt name r.bindings
