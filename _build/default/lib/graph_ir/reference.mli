open Gc_tensor

(** Reference evaluation of a Graph IR graph over concrete tensors — the
    semantic ground truth the compiled code is tested against, and the
    executor used for compile-time constant folding and host-side
    runtime-constant preprocessing. Slow by design. *)

type env = (int * Tensor.t) list
(** logical-tensor id ↦ value *)

(** [eval_op op ~inputs] computes an op's outputs from input values (in
    op-input order). Raises [Invalid_argument] on unsupported ops (none of
    the built-in kinds are unsupported) or missing attributes. *)
val eval_op : Op.t -> inputs:Tensor.t list -> Tensor.t list

(** [run g bindings] evaluates the whole graph. [bindings] supplies values
    for graph inputs (by logical tensor); compile-time constants supply
    themselves. Returns the graph outputs in declaration order. Raises when
    an input binding is missing or has the wrong shape/dtype. *)
val run : Graph.t -> (Logical_tensor.t * Tensor.t) list -> Tensor.t list

(** [eval_tensors g bindings] is {!run} but returns the full environment,
    so intermediate tensors can be inspected (used by the constant-weight
    init step to extract runtime-constant values). *)
val eval_tensors : Graph.t -> (Logical_tensor.t * Tensor.t) list -> env
