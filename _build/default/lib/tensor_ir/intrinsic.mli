(** The intrinsic functions Tensor IR can call — each "is carefully
    hand-tuned and fulfills a subtask of a DNN OP with data in the fastest
    cache on a single CPU core".

    Signatures (all operands are expressions; addresses are [Ir.Addr]):
    - [brgemm(batch, mb, nb, kb, &A, a_stride, &B, b_stride, &C)]:
      C[mb,nb] += Σ_{i<batch} A_i[mb,kb] · B_i[nb,kb]ᵀ where A_i starts
      [i·a_stride] elements after [&A] (the template's A_addr[0..BS-1]
      pointer array has constant stride in every instantiation);
    - [zero(&T, count)]: zero-fill [count] elements;
    - [copy(&Dst, &Src, count)]: contiguous element copy (with dtype
      conversion when buffers differ). *)

type t = { name : string; arity : int }

val brgemm : t
val zero : t
val copy : t
val all : t list
val lookup : string -> t option
