(** C-like pretty printer for Tensor IR (the style of the paper's
    Figure 6). *)

val pp_ty : Format.formatter -> Ir.ty -> unit
val pp_expr : Format.formatter -> Ir.expr -> unit
val pp_stmt : Format.formatter -> Ir.stmt -> unit
val pp_func : Format.formatter -> Ir.func -> unit
val pp_module : Format.formatter -> Ir.module_ -> unit
val expr_to_string : Ir.expr -> string
val func_to_string : Ir.func -> string
val module_to_string : Ir.module_ -> string
