(** Generic traversals and rewriters over Tensor IR, shared by every
    Tensor IR pass. *)

(** [map_expr f e] rebuilds [e] bottom-up, applying [f] to every node
    (children first). *)
val map_expr : (Ir.expr -> Ir.expr) -> Ir.expr -> Ir.expr

(** [map_stmt ~expr ~stmt body] rewrites a statement list bottom-up:
    [expr] on every expression, then [stmt] on each rebuilt statement —
    [stmt] may expand one statement to several (return a list). *)
val map_stmts :
  ?expr:(Ir.expr -> Ir.expr) ->
  ?stmt:(Ir.stmt -> Ir.stmt list) ->
  Ir.stmt list ->
  Ir.stmt list

(** [fold_expr f acc e] folds over every expression node, top-down. *)
val fold_expr : ('a -> Ir.expr -> 'a) -> 'a -> Ir.expr -> 'a

(** [fold_stmts ~expr ~stmt acc body]: folds top-down over every statement
    and (optionally) every expression it contains. *)
val fold_stmts :
  ?expr:('a -> Ir.expr -> 'a) ->
  ?stmt:('a -> Ir.stmt -> 'a) ->
  'a ->
  Ir.stmt list ->
  'a

(** [iter_stmts ~expr ~stmt body]. *)
val iter_stmts :
  ?expr:(Ir.expr -> unit) -> ?stmt:(Ir.stmt -> unit) -> Ir.stmt list -> unit

(** All tensors referenced in a statement list (loads, stores, addrs,
    allocs), deduplicated by id, in first-appearance order. *)
val tensors_used : Ir.stmt list -> Ir.tensor list

(** Tensors written (stored to, or passed by [Addr] to an intrinsic call —
    conservatively counted as written). *)
val tensors_written : Ir.stmt list -> Ir.tensor list

(** Substitute tensors by id: every access to a key tensor is rewritten to
    the value tensor with the index array transformed by the supplied
    function. *)
val subst_tensor :
  Ir.tensor ->
  by:Ir.tensor ->
  index:(Ir.expr array -> Ir.expr array) ->
  Ir.stmt list ->
  Ir.stmt list
