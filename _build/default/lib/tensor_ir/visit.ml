open Ir

let rec map_expr f e =
  let e' =
    match e with
    | Int _ | Float _ | Var _ -> e
    | Load (t, idx) -> Load (t, Array.map (map_expr f) idx)
    | Addr (t, idx) -> Addr (t, Array.map (map_expr f) idx)
    | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
    | Unop (op, a) -> Unop (op, map_expr f a)
    | Cast (dt, a) -> Cast (dt, map_expr f a)
    | Select (c, a, b) -> Select (map_expr f c, map_expr f a, map_expr f b)
  in
  f e'

let rec map_stmts ?(expr = Fun.id) ?(stmt = fun s -> [ s ]) body =
  List.concat_map
    (fun s ->
      let s' =
        match s with
        | Assign (v, e) -> Assign (v, map_expr expr e)
        | Store (t, idx, e) ->
            Store (t, Array.map (map_expr expr) idx, map_expr expr e)
        | Alloc t -> Alloc t
        | For l ->
            For
              {
                l with
                lo = map_expr expr l.lo;
                hi = map_expr expr l.hi;
                step = map_expr expr l.step;
                body = map_stmts ~expr ~stmt l.body;
              }
        | If (c, t, e) ->
            If (map_expr expr c, map_stmts ~expr ~stmt t, map_stmts ~expr ~stmt e)
        | Call (name, args) -> Call (name, List.map (map_expr expr) args)
        | Barrier -> Barrier
      in
      stmt s')
    body

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int _ | Float _ | Var _ -> acc
  | Load (_, idx) | Addr (_, idx) -> Array.fold_left (fold_expr f) acc idx
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Unop (_, a) | Cast (_, a) -> fold_expr f acc a
  | Select (c, a, b) -> fold_expr f (fold_expr f (fold_expr f acc c) a) b

let rec fold_stmts ?(expr = fun acc _ -> acc) ?(stmt = fun acc _ -> acc) acc body =
  List.fold_left
    (fun acc s ->
      let acc = stmt acc s in
      match s with
      | Assign (_, e) -> fold_expr expr acc e
      | Store (_, idx, e) ->
          fold_expr expr (Array.fold_left (fold_expr expr) acc idx) e
      | Alloc _ | Barrier -> acc
      | For l ->
          let acc = fold_expr expr acc l.lo in
          let acc = fold_expr expr acc l.hi in
          let acc = fold_expr expr acc l.step in
          fold_stmts ~expr ~stmt acc l.body
      | If (c, t, e) ->
          let acc = fold_expr expr acc c in
          fold_stmts ~expr ~stmt (fold_stmts ~expr ~stmt acc t) e
      | Call (_, args) -> List.fold_left (fold_expr expr) acc args)
    acc body

let iter_stmts ?expr ?stmt body =
  let expr = Option.map (fun f acc e -> f e; acc) expr in
  let stmt = Option.map (fun f acc s -> f s; acc) stmt in
  fold_stmts ?expr ?stmt () body

let add_unique seen lst (t : tensor) =
  if Hashtbl.mem seen t.tid then lst
  else begin
    Hashtbl.add seen t.tid ();
    t :: lst
  end

let tensors_used body =
  let seen = Hashtbl.create 32 in
  let acc =
    fold_stmts
      ~expr:(fun acc e ->
        match e with Load (t, _) | Addr (t, _) -> add_unique seen acc t | _ -> acc)
      ~stmt:(fun acc s ->
        match s with
        | Store (t, _, _) | Alloc t -> add_unique seen acc t
        | _ -> acc)
      [] body
  in
  List.rev acc

let tensors_written body =
  let seen = Hashtbl.create 32 in
  let acc =
    fold_stmts
      ~stmt:(fun acc s ->
        match s with
        | Store (t, _, _) -> add_unique seen acc t
        | Call (_, args) ->
            List.fold_left
              (fun acc a ->
                match a with Addr (t, _) -> add_unique seen acc t | _ -> acc)
              acc args
        | _ -> acc)
      [] body
  in
  List.rev acc

let subst_tensor old ~by ~index body =
  map_stmts
    ~expr:(fun e ->
      match e with
      | Load (t, idx) when tensor_equal t old -> Load (by, index idx)
      | Addr (t, idx) when tensor_equal t old -> Addr (by, index idx)
      | e -> e)
    ~stmt:(fun s ->
      match s with
      | Store (t, idx, e) when tensor_equal t old -> [ Store (by, index idx, e) ]
      | Alloc t when tensor_equal t old ->
          (match by.storage with Local -> [ Alloc by ] | _ -> [])
      | s -> [ s ])
    body
