open Ir

let pp_ty fmt = function
  | Index -> Format.pp_print_string fmt "index"
  | Scalar dt -> Gc_tensor.Dtype.pp fmt dt
  | Boolean -> Format.pp_print_string fmt "bool"

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"
  | And -> "&&"
  | Or -> "||"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let unop_str = function
  | Neg -> "-"
  | Not -> "!"
  | Exp -> "exp"
  | Tanh -> "tanh"
  | Sqrt -> "sqrt"
  | Abs -> "abs"
  | Round -> "round"
  | Rcp -> "rcp"

let rec pp_expr fmt = function
  | Int i -> Format.fprintf fmt "%d" i
  | Float f -> Format.fprintf fmt "%g" f
  | Var v -> Format.pp_print_string fmt v.vname
  | Load (t, idx) -> Format.fprintf fmt "%s[%a]" t.tname pp_indices idx
  | Addr (t, idx) -> Format.fprintf fmt "&%s[%a]" t.tname pp_indices idx
  | Binop (((Min | Max) as op), a, b) ->
      Format.fprintf fmt "%s(%a, %a)" (binop_str op) pp_expr a pp_expr b
  | Binop (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Unop (((Exp | Tanh | Sqrt | Abs | Round | Rcp) as op), a) ->
      Format.fprintf fmt "%s(%a)" (unop_str op) pp_expr a
  | Unop (op, a) -> Format.fprintf fmt "%s%a" (unop_str op) pp_expr a
  | Cast (dt, a) -> Format.fprintf fmt "(%a)%a" Gc_tensor.Dtype.pp dt pp_expr a
  | Select (c, a, b) ->
      Format.fprintf fmt "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

and pp_indices fmt idx =
  Array.iteri
    (fun i e ->
      if i > 0 then Format.fprintf fmt ", ";
      pp_expr fmt e)
    idx

let pp_dims fmt dims =
  Array.iter (fun d -> Format.fprintf fmt "[%d]" d) dims

let rec pp_stmt fmt = function
  | Assign (v, e) -> Format.fprintf fmt "@[<h>%s = %a;@]" v.vname pp_expr e
  | Store (t, idx, e) ->
      Format.fprintf fmt "@[<h>%s[%a] = %a;@]" t.tname pp_indices idx pp_expr e
  | Alloc t ->
      Format.fprintf fmt "@[<h>%s %s%a;  // %d bytes@]"
        (Gc_tensor.Dtype.to_string t.tdtype)
        t.tname pp_dims t.dims (tensor_bytes t)
  | For l ->
      let kw = if l.parallel then "parallel_for" else "for" in
      let tag =
        match l.merge_tag with
        | Some tg -> Printf.sprintf "  // mergeable #%d" tg
        | None -> ""
      in
      Format.fprintf fmt "@[<v 2>%s (%s = %a; %s < %a; %s += %a) {%s@,%a@]@,}" kw
        l.v.vname pp_expr l.lo l.v.vname pp_expr l.hi l.v.vname pp_expr l.step
        tag pp_body l.body
  | If (c, t, []) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_body t
  | If (c, t, e) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,} else {@;<0 2>@[<v>%a@]@,}"
        pp_expr c pp_body t pp_body e
  | Call (name, args) ->
      Format.fprintf fmt "@[<h>%s(%a);@]" name
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.fprintf f ", ")
           pp_expr)
        args
  | Barrier -> Format.pp_print_string fmt "barrier();"

and pp_body fmt body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt body

let pp_param fmt = function
  | Ptensor t ->
      Format.fprintf fmt "%s %s%a"
        (Gc_tensor.Dtype.to_string t.tdtype)
        t.tname pp_dims t.dims
  | Pvar v -> Format.fprintf fmt "%a %s" pp_ty v.vty v.vname

let pp_func fmt f =
  Format.fprintf fmt "@[<v 2>func %s(%a) {@,%a@]@,}" f.fname
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_param)
    f.params pp_body f.body

let pp_module fmt m =
  Format.fprintf fmt "@[<v>module {  // entry=%s%s@," m.entry
    (match m.init with Some i -> Printf.sprintf " init=%s" i | None -> "");
  List.iter
    (fun t ->
      Format.fprintf fmt "global %s %s%a;@,"
        (Gc_tensor.Dtype.to_string t.tdtype)
        t.tname pp_dims t.dims)
    m.globals;
  Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "@,@,") pp_func fmt
    m.funcs;
  Format.fprintf fmt "@]@,}"

let expr_to_string e = Format.asprintf "%a" pp_expr e
let func_to_string f = Format.asprintf "%a" pp_func f
let module_to_string m = Format.asprintf "%a" pp_module m
