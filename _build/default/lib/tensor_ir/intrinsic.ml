type t = { name : string; arity : int }

let brgemm = { name = "brgemm"; arity = 9 }
let zero = { name = "zero"; arity = 2 }
let copy = { name = "copy"; arity = 3 }
let all = [ brgemm; zero; copy ]
let lookup name = List.find_opt (fun t -> String.equal t.name name) all
