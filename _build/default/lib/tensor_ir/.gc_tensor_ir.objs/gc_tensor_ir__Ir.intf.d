lib/tensor_ir/ir.mli: Dtype Gc_tensor
