lib/tensor_ir/check.ml: Array Format Hashtbl Intrinsic Ir List String
