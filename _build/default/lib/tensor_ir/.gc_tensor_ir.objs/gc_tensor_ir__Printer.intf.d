lib/tensor_ir/printer.mli: Format Ir
