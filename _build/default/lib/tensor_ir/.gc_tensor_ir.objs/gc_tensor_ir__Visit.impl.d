lib/tensor_ir/visit.ml: Array Fun Hashtbl Ir List Option
