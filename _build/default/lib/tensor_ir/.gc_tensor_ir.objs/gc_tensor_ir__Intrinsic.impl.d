lib/tensor_ir/intrinsic.ml: List String
