lib/tensor_ir/check.mli: Ir
