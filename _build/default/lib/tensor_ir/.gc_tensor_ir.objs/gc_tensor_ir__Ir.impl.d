lib/tensor_ir/ir.ml: Array Atomic Dtype Gc_tensor List Printf Stdlib String
