lib/tensor_ir/printer.ml: Array Format Gc_tensor Ir List Printf
