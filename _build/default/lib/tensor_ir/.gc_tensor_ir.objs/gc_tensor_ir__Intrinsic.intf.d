lib/tensor_ir/intrinsic.mli:
