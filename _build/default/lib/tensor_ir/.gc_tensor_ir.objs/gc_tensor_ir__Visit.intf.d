lib/tensor_ir/visit.mli: Ir
