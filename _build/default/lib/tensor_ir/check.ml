open Ir

let err fmt = Format.kasprintf (fun s -> Error s) fmt

exception Fail of string

let failf fmt = Format.kasprintf (fun s -> raise (Fail s)) fmt

let check_func ~known_funcs (f : func) =
  let vars : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let tensors : (int, tensor) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (function
      | Pvar v -> Hashtbl.replace vars v.vid ()
      | Ptensor t -> Hashtbl.replace tensors t.tid t)
    f.params;
  let check_tensor_access (t : tensor) idx =
    if not (Hashtbl.mem tensors t.tid) && t.storage <> Global then
      failf "%s: tensor %s accessed before Alloc" f.fname t.tname;
    if Array.length idx <> Array.length t.dims then
      failf "%s: tensor %s has rank %d, accessed with %d indices" f.fname
        t.tname (Array.length t.dims) (Array.length idx)
  in
  let rec check_expr e =
    match e with
    | Int _ | Float _ -> ()
    | Var v ->
        if not (Hashtbl.mem vars v.vid) then
          failf "%s: variable %s used before assignment" f.fname v.vname
    | Load (t, idx) | Addr (t, idx) ->
        check_tensor_access t idx;
        Array.iter check_expr idx
    | Binop (_, a, b) ->
        check_expr a;
        check_expr b
    | Unop (_, a) | Cast (_, a) -> check_expr a
    | Select (c, a, b) ->
        check_expr c;
        check_expr a;
        check_expr b
  in
  let rec check_stmt s =
    match s with
    | Assign (v, e) ->
        check_expr e;
        Hashtbl.replace vars v.vid ()
    | Store (t, idx, e) ->
        check_tensor_access t idx;
        Array.iter check_expr idx;
        check_expr e
    | Alloc t ->
        if t.storage <> Local then
          failf "%s: Alloc of non-local tensor %s" f.fname t.tname;
        Hashtbl.replace tensors t.tid t
    | For l ->
        check_expr l.lo;
        check_expr l.hi;
        check_expr l.step;
        Hashtbl.replace vars l.v.vid ();
        List.iter check_stmt l.body
    | If (c, t, e) ->
        check_expr c;
        List.iter check_stmt t;
        List.iter check_stmt e
    | Call (name, args) -> (
        List.iter check_expr args;
        match Intrinsic.lookup name with
        | Some intr ->
            if List.length args <> intr.arity then
              failf "%s: intrinsic %s expects %d args, got %d" f.fname name
                intr.arity (List.length args)
        | None -> (
            match List.assoc_opt name known_funcs with
            | Some arity ->
                if List.length args <> arity then
                  failf "%s: call %s expects %d args, got %d" f.fname name
                    arity (List.length args)
            | None -> failf "%s: call to unknown function %s" f.fname name))
    | Barrier -> ()
  in
  match List.iter check_stmt f.body with
  | () -> Ok ()
  | exception Fail msg -> Error msg

let check_module (m : module_) =
  let known_funcs = List.map (fun f -> (f.fname, List.length f.params)) m.funcs in
  (* globals are visible everywhere *)
  let m_funcs_with_globals =
    List.map
      (fun f ->
        {
          f with
          params =
            f.params @ List.map (fun g -> Ptensor g) m.globals;
        })
      m.funcs
  in
  let entry_ok =
    if List.exists (fun f -> String.equal f.fname m.entry) m.funcs then Ok ()
    else err "module entry %S not found" m.entry
  in
  let init_ok =
    match m.init with
    | None -> Ok ()
    | Some i ->
        if List.exists (fun f -> String.equal f.fname i) m.funcs then Ok ()
        else err "module init %S not found" i
  in
  List.fold_left
    (fun acc f -> match acc with Error _ -> acc | Ok () -> check_func ~known_funcs f)
    (match (entry_ok, init_ok) with
    | Error e, _ | _, Error e -> Error e
    | Ok (), Ok () -> Ok ())
    m_funcs_with_globals
