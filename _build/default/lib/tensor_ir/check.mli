(** Structural well-formedness checking for Tensor IR modules: variables
    assigned before use, tensor access ranks matching declared dims, locals
    allocated before access, and calls resolving to a known intrinsic or a
    module function with matching arity. *)

val check_func : known_funcs:(string * int) list -> Ir.func -> (unit, string) result

val check_module : Ir.module_ -> (unit, string) result
