open Gc_tensor

type ty = Index | Scalar of Dtype.t | Boolean
type var = { vid : int; vname : string; vty : ty }
type storage = Param | Local | Global

type tensor = {
  tid : int;
  tname : string;
  tdtype : Dtype.t;
  dims : int array;
  storage : storage;
}

type binop =
  | Add | Sub | Mul | Div | Mod
  | Min | Max
  | And | Or
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Not | Exp | Tanh | Sqrt | Abs | Round | Rcp

type expr =
  | Int of int
  | Float of float
  | Var of var
  | Load of tensor * expr array
  | Addr of tensor * expr array
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cast of Dtype.t * expr
  | Select of expr * expr * expr

type stmt =
  | Assign of var * expr
  | Store of tensor * expr array * expr
  | Alloc of tensor
  | For of loop
  | If of expr * stmt list * stmt list
  | Call of string * expr list
  | Barrier

and loop = {
  v : var;
  lo : expr;
  hi : expr;
  step : expr;
  body : stmt list;
  parallel : bool;
  merge_tag : int option;
}

type param = Ptensor of tensor | Pvar of var
type func = { fname : string; params : param list; body : stmt list }

type module_ = {
  funcs : func list;
  entry : string;
  init : string option;
  globals : tensor list;
}

let var_counter = Atomic.make 0
let tensor_counter = Atomic.make 0

let fresh_var ?name vty =
  let vid = Atomic.fetch_and_add var_counter 1 in
  let vname = match name with Some n -> n | None -> Printf.sprintf "v%d" vid in
  { vid; vname; vty }

let fresh_tensor ?name ?(storage = Local) tdtype dims =
  let tid = Atomic.fetch_and_add tensor_counter 1 in
  let tname = match name with Some n -> n | None -> Printf.sprintf "T%d" tid in
  Array.iter (fun d -> if d <= 0 then invalid_arg "Ir.fresh_tensor: dims must be positive") dims;
  { tid; tname; tdtype; dims; storage }

let var_equal a b = Stdlib.( = ) a.vid b.vid
let tensor_equal a b = Stdlib.( = ) a.tid b.tid
let tensor_numel t = Array.fold_left Stdlib.( * ) 1 t.dims
let tensor_bytes t = tensor_numel t * Dtype.size_bytes t.tdtype

let int i = Int i
let flt f = Float f
let v x = Var x

module Infix = struct
  let ( + ) a b = Binop (Add, a, b)
  let ( - ) a b = Binop (Sub, a, b)
  let ( * ) a b = Binop (Mul, a, b)
  let ( / ) a b = Binop (Div, a, b)
  let ( % ) a b = Binop (Mod, a, b)
  let ( < ) a b = Binop (Lt, a, b)
  let ( >= ) a b = Binop (Ge, a, b)
  let ( = ) a b = Binop (Eq, a, b)
end

let linear_index dims idx =
  let n = Array.length dims in
  if Array.length idx <> n then invalid_arg "Ir.linear_index: rank mismatch";
  if n = 0 then Int 0
  else begin
    let acc = ref idx.(0) in
    for i = 1 to n - 1 do
      acc := Binop (Add, Binop (Mul, !acc, Int dims.(i)), idx.(i))
    done;
    !acc
  end

let find_func m name = List.find_opt (fun f -> String.equal f.fname name) m.funcs

let func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Ir.func_exn: no function %S" name)
