open Gc_tensor

(** Tensor IR: the compiler's lowest intermediate representation. "Just
    like the C program, Tensor IR supports function, statement, expression,
    and intrinsic functions" — statements build on expressions, which
    operate on constants, variables (scalars: loop indices, addresses,
    offsets) and tensors (multi-dimensional arrays backed by a buffer).

    Tensors keep their dimensions until the buffer-flattening pass rewrites
    them to one-dimensional arrays; the tensor-size-optimization pass
    shrinks temporary tensors by rewriting [dims] and the indices of every
    access. *)

(** Scalar value types. [Index] is the integer type of loop variables and
    offsets. *)
type ty = Index | Scalar of Dtype.t | Boolean

type var = { vid : int; vname : string; vty : ty }

(** Storage class of a Tensor IR tensor. *)
type storage =
  | Param  (** function parameter, caller-owned *)
  | Local  (** temporary, allocated by the buffer planner *)
  | Global  (** module-level (runtime-constant cache) *)

type tensor = {
  tid : int;
  tname : string;
  tdtype : Dtype.t;
  dims : int array;  (** static dimensions — shapes are static in this domain *)
  storage : storage;
}

type binop =
  | Add | Sub | Mul | Div | Mod
  | Min | Max
  | And | Or
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Not | Exp | Tanh | Sqrt | Abs | Round | Rcp

type expr =
  | Int of int
  | Float of float
  | Var of var
  | Load of tensor * expr array
  | Addr of tensor * expr array  (** element address; intrinsic operand *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cast of Dtype.t * expr  (** value conversion with dtype rounding/saturation *)
  | Select of expr * expr * expr

type stmt =
  | Assign of var * expr  (** first assignment declares the variable *)
  | Store of tensor * expr array * expr
  | Alloc of tensor  (** declare a Local tensor *)
  | For of loop
  | If of expr * stmt list * stmt list
  | Call of string * expr list  (** intrinsic call (microkernel, memset) *)
  | Barrier  (** synchronization point between parallel sections *)

and loop = {
  v : var;
  lo : expr;
  hi : expr;
  step : expr;
  body : stmt list;
  parallel : bool;
  merge_tag : int option;
      (** coarse-grain fusion: loops sharing a tag are mechanically merged
          by the Tensor IR loop-merge pass *)
}

type param = Ptensor of tensor | Pvar of var

type func = { fname : string; params : param list; body : stmt list }

type module_ = {
  funcs : func list;
  entry : string;  (** entry function: a sequence of calls to fused-op funcs *)
  init : string option;  (** one-time runtime-constant preprocessing function *)
  globals : tensor list;  (** runtime-constant cache tensors *)
}

(** {1 Constructors} *)

val fresh_var : ?name:string -> ty -> var
val fresh_tensor : ?name:string -> ?storage:storage -> Dtype.t -> int array -> tensor

(** {1 Helpers} *)

val var_equal : var -> var -> bool
val tensor_equal : tensor -> tensor -> bool
val tensor_numel : tensor -> int
val tensor_bytes : tensor -> int

val int : int -> expr
val flt : float -> expr
val v : var -> expr

(** Expression-building operators, meant to be opened locally by lowering
    code ([let open Ir.Infix in ...]) — they shadow integer arithmetic. *)
module Infix : sig
  val ( + ) : expr -> expr -> expr
  val ( - ) : expr -> expr -> expr
  val ( * ) : expr -> expr -> expr
  val ( / ) : expr -> expr -> expr
  val ( % ) : expr -> expr -> expr
  val ( < ) : expr -> expr -> expr
  val ( >= ) : expr -> expr -> expr
  val ( = ) : expr -> expr -> expr
end

(** Row-major linear index of [idx] into [dims] as an expression. *)
val linear_index : int array -> expr array -> expr

val find_func : module_ -> string -> func option
val func_exn : module_ -> string -> func
