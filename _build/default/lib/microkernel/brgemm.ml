open Gc_tensor
open Bigarray

(* The inner loops are written as expert-tuned OCaml: monomorphic Bigarray
   accesses, unsafe indexing, k-runs contiguous for both operands, and a
   4-wide unrolled reduction to expose instruction-level parallelism. This
   module is the repo's stand-in for LIBXSMM-style JIT kernels. *)

let f32 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off =
  let kb4 = kb - (kb mod 4) in
  for bi = 0 to batch - 1 do
    let ao = Array.unsafe_get a_offs bi in
    let bo = Array.unsafe_get b_offs bi in
    for m = 0 to mb - 1 do
      let arow = ao + (m * kb) in
      let crow = c_off + (m * nb) in
      for n = 0 to nb - 1 do
        let brow = bo + (n * kb) in
        let acc0 = ref 0. and acc1 = ref 0. and acc2 = ref 0. and acc3 = ref 0. in
        let k = ref 0 in
        while !k < kb4 do
          let k0 = !k in
          acc0 := !acc0 +. (Array1.unsafe_get a (arow + k0) *. Array1.unsafe_get b (brow + k0));
          acc1 := !acc1 +. (Array1.unsafe_get a (arow + k0 + 1) *. Array1.unsafe_get b (brow + k0 + 1));
          acc2 := !acc2 +. (Array1.unsafe_get a (arow + k0 + 2) *. Array1.unsafe_get b (brow + k0 + 2));
          acc3 := !acc3 +. (Array1.unsafe_get a (arow + k0 + 3) *. Array1.unsafe_get b (brow + k0 + 3));
          k := k0 + 4
        done;
        while !k < kb do
          acc0 := !acc0 +. (Array1.unsafe_get a (arow + !k) *. Array1.unsafe_get b (brow + !k));
          incr k
        done;
        let ci = crow + n in
        Array1.unsafe_set c ci
          (Array1.unsafe_get c ci +. ((!acc0 +. !acc1) +. (!acc2 +. !acc3)))
      done
    done
  done

let int8_core ~get_a ~batch ~mb ~nb ~kb ~a_offs ~b ~b_offs ~(c : Buffer.s32_arr)
    ~c_off =
  let kb4 = kb - (kb mod 4) in
  for bi = 0 to batch - 1 do
    let ao = Array.unsafe_get a_offs bi in
    let bo = Array.unsafe_get b_offs bi in
    for m = 0 to mb - 1 do
      let arow = ao + (m * kb) in
      let crow = c_off + (m * nb) in
      for n = 0 to nb - 1 do
        let brow = bo + (n * kb) in
        let acc = ref 0 in
        let k = ref 0 in
        while !k < kb4 do
          let k0 = !k in
          acc :=
            !acc
            + (get_a (arow + k0) * Array1.unsafe_get b (brow + k0))
            + (get_a (arow + k0 + 1) * Array1.unsafe_get b (brow + k0 + 1))
            + (get_a (arow + k0 + 2) * Array1.unsafe_get b (brow + k0 + 2))
            + (get_a (arow + k0 + 3) * Array1.unsafe_get b (brow + k0 + 3));
          k := k0 + 4
        done;
        while !k < kb do
          acc := !acc + (get_a (arow + !k) * Array1.unsafe_get b (brow + !k));
          incr k
        done;
        let ci = crow + n in
        Array1.unsafe_set c ci
          (Int32.add (Array1.unsafe_get c ci) (Int32.of_int !acc))
      done
    done
  done

let u8s8s32 ~batch ~mb ~nb ~kb ~(a : Buffer.u8_arr) ~a_offs ~b ~b_offs ~c ~c_off =
  int8_core ~get_a:(fun i -> Array1.unsafe_get a i) ~batch ~mb ~nb ~kb ~a_offs
    ~b ~b_offs ~c ~c_off

let s8s8s32 ~batch ~mb ~nb ~kb ~(a : Buffer.s8_arr) ~a_offs ~b ~b_offs ~c ~c_off =
  int8_core ~get_a:(fun i -> Array1.unsafe_get a i) ~batch ~mb ~nb ~kb ~a_offs
    ~b ~b_offs ~c ~c_off

let dispatch ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off =
  match ((a : Buffer.t), (b : Buffer.t), (c : Buffer.t)) with
  | (F32 a | Bf16 a), (F32 b | Bf16 b), (F32 c | Bf16 c) ->
      f32 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off
  | U8 a, S8 b, S32 c -> u8s8s32 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off
  | S8 a, S8 b, S32 c -> s8s8s32 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off
  | _ ->
      invalid_arg
        (Printf.sprintf "Brgemm.dispatch: unsupported dtype combination %s x %s -> %s"
           (Dtype.to_string (Buffer.dtype a))
           (Dtype.to_string (Buffer.dtype b))
           (Dtype.to_string (Buffer.dtype c)))
