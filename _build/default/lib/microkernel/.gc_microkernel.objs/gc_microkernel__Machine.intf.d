lib/microkernel/machine.mli: Dtype Format Gc_tensor
