lib/microkernel/ukernel_cost.mli: Dtype Gc_tensor Machine
