lib/microkernel/brgemm.mli: Buffer Gc_tensor
