lib/microkernel/ukernel_cost.ml: Dtype Float Gc_tensor Machine Shape
