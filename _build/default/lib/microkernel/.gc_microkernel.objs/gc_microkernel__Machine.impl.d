lib/microkernel/machine.ml: Dtype Format Gc_tensor
