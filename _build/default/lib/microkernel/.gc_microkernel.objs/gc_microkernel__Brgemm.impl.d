lib/microkernel/brgemm.ml: Array Array1 Bigarray Buffer Dtype Gc_tensor Int32 Printf
