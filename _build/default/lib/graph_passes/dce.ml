open Gc_graph_ir

let run (g : Graph.t) =
  let live : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun (lt : Logical_tensor.t) -> Hashtbl.replace live lt.id ()) g.outputs;
  (* walk backwards over a topological order *)
  let sorted =
    match Graph.topo_sort g with Ok g -> g.ops | Error e -> invalid_arg e
  in
  let kept =
    List.fold_left
      (fun kept (op : Op.t) ->
        let needed =
          List.exists (fun (o : Logical_tensor.t) -> Hashtbl.mem live o.id) op.outputs
        in
        if needed then begin
          List.iter (fun (i : Logical_tensor.t) -> Hashtbl.replace live i.id ()) op.inputs;
          op :: kept
        end
        else kept)
      [] (List.rev sorted)
  in
  Graph.create ~inputs:g.inputs ~outputs:g.outputs kept
