open Gc_tensor
open Gc_graph_ir

let scalar ?name c = Logical_tensor.const ?name (Tensor.scalar Dtype.F32 c)

(* Build a basic op with an inferred fresh output. *)
let mk ?(attrs = Attrs.empty) kind inputs =
  let shape =
    match Infer.infer_shape kind attrs inputs with
    | Ok s -> s
    | Error e -> invalid_arg ("Decompose: " ^ e)
  in
  let dtype =
    match Infer.infer_dtype kind inputs with
    | Some d -> d
    | None -> (List.hd inputs).Logical_tensor.dtype
  in
  Op.create ~attrs kind ~inputs ~outputs:[ Logical_tensor.create dtype shape ]

(* Same, but producing the given (original) output tensor. *)
let mk_to ?(attrs = Attrs.empty) kind inputs out =
  Op.create ~attrs kind ~inputs ~outputs:[ out ]

let out1 (op : Op.t) = Op.output op

let decompose_op (op : Op.t) : Op.t list =
  let out = Op.output op in
  match (op.kind, op.inputs) with
  | Gelu, [ x ] ->
      (* 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³))) *)
      let c = Stdlib.sqrt (2. /. Float.pi) in
      let x2 = mk Mul [ x; x ] in
      let x3 = mk Mul [ out1 x2; x ] in
      let t3 = mk Mul [ out1 x3; scalar 0.044715 ] in
      let t4 = mk Add [ x; out1 t3 ] in
      let t5 = mk Mul [ out1 t4; scalar c ] in
      let t6 = mk Tanh [ out1 t5 ] in
      let t7 = mk Add [ out1 t6; scalar 1. ] in
      let t8 = mk Mul [ x; out1 t7 ] in
      let t9 = mk_to Mul [ out1 t8; scalar 0.5 ] out in
      [ x2; x3; t3; t4; t5; t6; t7; t8; t9 ]
  | Sigmoid, [ x ] ->
      let n = mk Neg [ x ] in
      let e = mk Exp [ out1 n ] in
      let d = mk Add [ out1 e; scalar 1. ] in
      let r = mk_to Reciprocal [ out1 d ] out in
      [ n; e; d; r ]
  | Softmax, [ x ] ->
      let rank = Shape.rank x.shape in
      let axis =
        let a = Attrs.int_exn op.attrs "axis" in
        if a < 0 then a + rank else a
      in
      let rattrs =
        Attrs.of_list [ ("axis", Attrs.Int axis); ("keepdims", Attrs.Bool true) ]
      in
      let rmax = mk ~attrs:rattrs (Reduce Max) [ x ] in
      let sub = mk Sub [ x; out1 rmax ] in
      let e = mk Exp [ out1 sub ] in
      let rsum = mk ~attrs:rattrs (Reduce Sum) [ out1 e ] in
      let div = mk_to Div [ out1 e; out1 rsum ] out in
      [ rmax; sub; e; rsum; div ]
  | Batchnorm_inference, [ x; gamma; beta; mean; variance ] ->
      (* x·s + (beta − mean·s) with s = gamma / sqrt(var + eps); the scale
         and shift chains are constant for inference and fold away *)
      let eps = Attrs.float_exn op.attrs "epsilon" in
      let veps = mk Add [ variance; scalar eps ] in
      let std = mk Sqrt [ out1 veps ] in
      let s = mk Div [ gamma; out1 std ] in
      let xs = mk Mul [ x; out1 s ] in
      let ms = mk Mul [ mean; out1 s ] in
      let shift = mk Sub [ beta; out1 ms ] in
      let y = mk_to Add [ out1 xs; out1 shift ] out in
      [ veps; std; s; xs; ms; shift; y ]
  | Layernorm, [ x; gamma; beta ] ->
      (* mean/variance over the last axis, then normalize + scale/shift *)
      let eps = Attrs.float_exn op.attrs "epsilon" in
      let axis = Shape.rank x.shape - 1 in
      let rattrs =
        Attrs.of_list [ ("axis", Attrs.Int axis); ("keepdims", Attrs.Bool true) ]
      in
      let mean = mk ~attrs:rattrs (Reduce Mean) [ x ] in
      let xc = mk Sub [ x; out1 mean ] in
      let sq = mk Mul [ out1 xc; out1 xc ] in
      let var = mk ~attrs:rattrs (Reduce Mean) [ out1 sq ] in
      let veps = mk Add [ out1 var; scalar eps ] in
      let std = mk Sqrt [ out1 veps ] in
      let rstd = mk Reciprocal [ out1 std ] in
      let norm = mk Mul [ out1 xc; out1 rstd ] in
      let scaled = mk Mul [ out1 norm; gamma ] in
      let y = mk_to Add [ out1 scaled; beta ] out in
      [ mean; xc; sq; var; veps; std; rstd; norm; scaled; y ]
  | Bias_add, [ x; bias ] -> [ mk_to Add [ x; bias ] out ]
  | Quantize, [ x ] ->
      let scale_v = Attrs.float_exn op.attrs "scale" in
      let zp = Attrs.int_exn op.attrs "zp" in
      let d = mk Div [ x; scalar scale_v ] in
      let r = mk Round [ out1 d ] in
      let z =
        if zp = 0 then r else mk Add [ out1 r; scalar (float_of_int zp) ]
      in
      let cattrs =
        Attrs.of_list
          [
            ("lo", Attrs.Float (Dtype.min_value out.dtype));
            ("hi", Attrs.Float (Dtype.max_value out.dtype));
          ]
      in
      let c = mk ~attrs:cattrs Clip [ out1 z ] in
      let cast = mk_to Cast [ out1 c ] out in
      [ d; r ] @ (if zp = 0 then [] else [ z ]) @ [ c; cast ]
  | Dequantize, [ x ] ->
      let scale_v = Attrs.float_exn op.attrs "scale" in
      let zp = Attrs.int_exn op.attrs "zp" in
      let f = mk_to Cast [ x ] (Logical_tensor.create Dtype.F32 x.shape) in
      let zs =
        if zp = 0 then f else mk Sub [ out1 f; scalar (float_of_int zp) ]
      in
      let m = mk_to Mul [ out1 zs; scalar scale_v ] out in
      [ f ] @ (if zp = 0 then [] else [ zs ]) @ [ m ]
  | k, _ ->
      invalid_arg
        (Printf.sprintf "Decompose.decompose_op: %s is not a complex op"
           (Op_kind.to_string k))

let run ?(keep_softmax = false) (g : Graph.t) =
  (* [keep_softmax] models a primitives library that ships a tuned softmax
     kernel: last-axis softmax ops are kept whole (lowered as one
     primitive) instead of being decomposed into fusible basic ops. *)
  let keep (op : Op.t) =
    keep_softmax
    && op.kind = Op_kind.Softmax
    &&
    let input = List.hd op.inputs in
    let rank = Shape.rank input.shape in
    let axis = Attrs.int_exn op.attrs "axis" in
    (if axis < 0 then axis + rank else axis) = rank - 1
  in
  let rec fixpoint g =
    let complex =
      List.filter
        (fun (op : Op.t) -> Op_kind.is_complex op.kind && not (keep op))
        g.Graph.ops
    in
    match complex with
    | [] -> g
    | _ ->
        let g' =
          List.fold_left
            (fun g (op : Op.t) ->
              Graph.replace_ops g ~remove:[ op ] ~add:(decompose_op op))
            g complex
        in
        fixpoint g'
  in
  fixpoint g
