open Gc_graph_ir

(** Complex-op decomposition: rewrites every Complex OP (gelu, sigmoid,
    softmax, batchnorm, bias_add, quantize, dequantize) into basic Tunable
    and Fusible OPs, so the rest of the Graph IR optimization module only
    handles basic operations. The rewritten graph computes exactly the same
    function (the decomposed forms are the definitions the reference
    evaluator uses, with gelu decomposed to its tanh approximation). *)

(** [keep_softmax:true] keeps last-axis softmax ops whole (the primitives
    baseline ships a tuned softmax kernel, so its graph executor calls it
    as one primitive instead of five basic-op passes). *)
val run : ?keep_softmax:bool -> Graph.t -> Graph.t

(** Decompose a single complex op into basic ops (exposed for tests).
    The returned ops produce the op's original output tensors. *)
val decompose_op : Op.t -> Op.t list
