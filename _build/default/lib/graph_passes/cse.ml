open Gc_graph_ir

let key (op : Op.t) =
  ( Op_kind.to_string op.kind,
    Attrs.bindings op.attrs,
    List.map (fun (lt : Logical_tensor.t) -> lt.id) op.inputs )

let run (g : Graph.t) =
  let g = match Graph.topo_sort g with Ok g -> g | Error e -> invalid_arg e in
  let seen : (string * (string * Attrs.value) list * int list, Op.t) Hashtbl.t =
    Hashtbl.create 32
  in
  (* map from eliminated tensor id to the surviving tensor *)
  let replace : (int, Logical_tensor.t) Hashtbl.t = Hashtbl.create 16 in
  let subst (lt : Logical_tensor.t) =
    match Hashtbl.find_opt replace lt.id with Some lt' -> lt' | None -> lt
  in
  let kept =
    List.filter_map
      (fun (op : Op.t) ->
        let op = Op.with_ ~inputs:(List.map subst op.inputs) op in
        let k = key op in
        match Hashtbl.find_opt seen k with
        | Some prior ->
            List.iter2
              (fun (dup : Logical_tensor.t) survivor ->
                Hashtbl.replace replace dup.id survivor)
              op.outputs prior.outputs;
            None
        | None ->
            Hashtbl.add seen k op;
            Some op)
      g.ops
  in
  let outputs = List.map subst g.outputs in
  Graph.create ~inputs:g.inputs ~outputs kept
