open Gc_microkernel
open Gc_lowering

(** Coarse-grain fusion: merges neighbouring Fused OPs into one parallel
    loop nest. Two consecutive fused ops are tagged mergeable when the
    consumer reads the producer's output and each parallel task owns all
    the rows it consumes:

    - batched templates with equal batch counts (the MHA pair), or
    - 2-D templates with identical m, an aligned core grid (same MPN,
      NPN = 1) and the same MB row blocking.

    When grids don't align naturally, the pass re-tunes both ops towards a
    common (MPN, 1) grid and keeps the alignment if the modelled cost grows
    by at most [retune_tolerance] — the paper's "the heuristic tries to
    choose the outermost loop blocking factor best aligned with core
    numbers". Tagged loop nests are merged mechanically by the Tensor IR
    loop-merge pass. *)
val run :
  ?retune_tolerance:float ->
  machine:Machine.t ->
  Fused_op.graph ->
  Fused_op.graph
