open Gc_graph_ir

(** Constant-weight preprocessing (paper §Graph IR Optimization): the
    runtime-constant property is propagated from constant logical tensors
    (weights, folded quantization parameters, compensation terms, inserted
    weight-prepacking reorders) through every op whose inputs are all
    constant; the constant subgraph is then split into an init graph that
    the compiled partition executes once, on first execution, caching the
    results. *)

type split = {
  main : Graph.t;  (** the graph that runs on every execution *)
  init : Graph.t option;  (** runs once; produces the runtime constants *)
}

(** Propagate [Runtime_const] through the graph (mutates logical tensor
    properties; returns the same graph for pipelining). *)
val mark : Graph.t -> Graph.t

(** Split marked constant producers into the init graph. The init graph's
    outputs are exactly the runtime-constant tensors the main graph
    consumes. *)
val split : Graph.t -> split
