open Gc_graph_ir

type split = { main : Graph.t; init : Graph.t option }

let mark (g : Graph.t) =
  let sorted =
    match Graph.topo_sort g with Ok g -> g | Error e -> invalid_arg e
  in
  List.iter
    (fun (op : Op.t) ->
      if List.for_all Logical_tensor.is_constant op.inputs then
        List.iter
          (fun (o : Logical_tensor.t) ->
            match o.property with
            | Variable -> o.property <- Runtime_const
            | Runtime_const | Compile_const _ -> ())
          op.outputs)
    sorted.ops;
  sorted

let split (g : Graph.t) =
  let g = mark g in
  let is_const_op (op : Op.t) =
    List.for_all Logical_tensor.is_constant op.outputs
  in
  let init_ops, main_ops = List.partition is_const_op g.ops in
  if init_ops = [] then { main = g; init = None }
  else begin
    (* runtime constants the main graph (or the graph outputs) consume *)
    let needed : (int, Logical_tensor.t) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (op : Op.t) ->
        List.iter
          (fun (i : Logical_tensor.t) ->
            if i.property = Runtime_const then Hashtbl.replace needed i.id i)
          op.inputs)
      main_ops;
    List.iter
      (fun (o : Logical_tensor.t) ->
        if o.property = Runtime_const then Hashtbl.replace needed o.id o)
      g.outputs;
    let init_outputs = Hashtbl.fold (fun _ lt acc -> lt :: acc) needed [] in
    let const_inputs, var_inputs =
      List.partition Logical_tensor.is_constant g.inputs
    in
    let init = Graph.create ~inputs:const_inputs ~outputs:init_outputs init_ops in
    let main = Graph.create ~inputs:var_inputs ~outputs:g.outputs main_ops in
    { main; init = Some init }
  end
