lib/graph_passes/layout_prop.ml: Attrs Gc_graph_ir Gc_lowering Gc_tensor Graph Hashtbl Heuristic Layout List Logical_tensor Op Op_kind Option Params Shape
