lib/graph_passes/cse.ml: Attrs Gc_graph_ir Graph Hashtbl List Logical_tensor Op Op_kind
