lib/graph_passes/fusion.mli: Fused_op Gc_graph_ir Gc_lowering Gc_microkernel Graph Hashtbl Machine Params
