lib/graph_passes/coarse_fusion.mli: Fused_op Gc_lowering Gc_microkernel Machine
