lib/graph_passes/pipeline.ml: Coarse_fusion Const_fold Const_prop Cse Dce Decompose Fusion Gc_graph_ir Gc_microkernel Graph Hashtbl Layout_prop List Logical_tensor Low_precision Machine
