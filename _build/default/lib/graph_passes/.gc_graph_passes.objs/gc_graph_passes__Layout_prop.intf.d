lib/graph_passes/layout_prop.mli: Gc_graph_ir Gc_lowering Gc_microkernel Graph Hashtbl Machine Op Params
