lib/graph_passes/const_prop.mli: Gc_graph_ir Graph
