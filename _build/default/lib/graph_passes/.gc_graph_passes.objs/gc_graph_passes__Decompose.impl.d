lib/graph_passes/decompose.ml: Attrs Dtype Float Gc_graph_ir Gc_tensor Graph Infer List Logical_tensor Op Op_kind Printf Shape Stdlib Tensor
