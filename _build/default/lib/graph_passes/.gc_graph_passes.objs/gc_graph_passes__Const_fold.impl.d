lib/graph_passes/const_fold.ml: Gc_graph_ir Graph List Logical_tensor Op Reference
