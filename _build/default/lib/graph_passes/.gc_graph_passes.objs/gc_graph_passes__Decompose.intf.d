lib/graph_passes/decompose.mli: Gc_graph_ir Graph Op
