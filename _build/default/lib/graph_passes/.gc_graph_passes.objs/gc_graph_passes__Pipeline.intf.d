lib/graph_passes/pipeline.mli: Fused_op Fusion Gc_graph_ir Gc_lowering Gc_microkernel Graph Machine
