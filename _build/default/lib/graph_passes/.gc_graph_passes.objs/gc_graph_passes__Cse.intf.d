lib/graph_passes/cse.mli: Gc_graph_ir Graph
