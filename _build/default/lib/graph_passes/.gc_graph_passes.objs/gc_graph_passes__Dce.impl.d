lib/graph_passes/dce.ml: Gc_graph_ir Graph Hashtbl List Logical_tensor Op
