lib/graph_passes/low_precision.ml: Attrs Dce Dtype Gc_graph_ir Gc_tensor Graph Infer List Logical_tensor Op Op_kind Option Shape Tensor
