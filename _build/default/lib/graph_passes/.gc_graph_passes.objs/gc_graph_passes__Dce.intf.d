lib/graph_passes/dce.mli: Gc_graph_ir Graph
