lib/graph_passes/coarse_fusion.ml: Fused_op Gc_graph_ir Gc_lowering Gc_microkernel Gc_tensor Heuristic List Logical_tensor Lower_fusible Machine Params
