lib/graph_passes/const_prop.ml: Gc_graph_ir Graph Hashtbl List Logical_tensor Op
