lib/graph_passes/const_fold.mli: Gc_graph_ir Graph
