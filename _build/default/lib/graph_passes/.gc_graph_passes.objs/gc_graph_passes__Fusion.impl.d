lib/graph_passes/fusion.ml: Anchor Attrs Dtype Fused_op Gc_graph_ir Gc_lowering Gc_tensor Graph Hashtbl Layout_prop List Logical_tensor Op Op_kind Params Shape
