lib/graph_passes/low_precision.mli: Gc_graph_ir Graph
