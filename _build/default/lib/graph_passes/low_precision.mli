open Gc_graph_ir

(** Low-precision conversion (paper §Graph IR Optimization): rewrites
    [dequantize → fp32 matmul → (quantize)] islands into an int8 matmul
    with a combined output scale and — for asymmetric activations over
    constant weights — a zero-point compensation term
    [a_z · colsum(B) · b_s], which is constant and is later moved into the
    init function by constant-weight preprocessing:

    C = (A ×_int8 B) · (a_s·b_s) − a_s·b_s·a_z · colsum(B)

    Matmuls whose asymmetric zero point would require a compensation over
    a non-constant B, or whose weight dequantize has a non-zero zero
    point, are left in fp32. *)
val run : Graph.t -> Graph.t
