open Gc_microkernel
open Gc_graph_ir
open Gc_lowering

(* f2 consumes one of f1's outputs? *)
let consumes (f1 : Fused_op.t) (f2 : Fused_op.t) =
  List.exists
    (fun (o : Logical_tensor.t) ->
      List.exists (Logical_tensor.equal o) f2.f_inputs)
    f1.f_outputs

let mergeable_batched (p1 : Params.t) (p2 : Params.t) =
  p1.batch > 1 && p1.batch = p2.batch

let attempt ?kb_fixed ~machine ~mpn (p : Params.t) mb =
  try
    Some
      (Heuristic.choose ~machine ~dtype:p.dtype ~batch:p.batch
         ~force_grid:(mpn, 1) ~mb_fixed:mb ?kb_fixed ~m:p.m ~n:p.n ~k:p.k ())
  with Invalid_argument _ -> None

(* Joint re-tuning of a chain of 2-D fused matmuls that feed one another:
   find the common row blocking (MB) and core grid (MPN, 1) minimizing the
   chain's total modelled cost — "when the heuristic chooses the
   parameters for each Tunable op, it tries to choose the outermost loop
   blocking factor best aligned with core numbers". The merge is accepted
   when the total cost grows by at most [tolerance] plus the barriers the
   merge eliminates; each task then owns the same output rows in every
   member, which makes the mechanical loop merge sound. *)
let joint_retune ~machine ~tolerance (ps : Params.t list) =
  let cores = machine.Machine.cores in
  let m = (List.hd ps).Params.m in
  let candidates =
    List.filter_map
      (fun mb ->
        let mpn = max 1 (min cores (Gc_tensor.Shape.ceil_div m mb)) in
        (* tune the chain front to back, aligning each member's KB to its
           producer's NB so the merged chain reads blocked activations
           directly, with a free-KB fallback *)
        let rec tune prev acc = function
          | [] -> Some (List.rev acc)
          | p :: rest -> (
              let aligned =
                match prev with
                | Some (prev_p : Params.t) ->
                    attempt ~machine ~mpn ~kb_fixed:prev_p.Params.nb p mb
                | None -> None
              in
              let choice =
                match aligned with Some _ -> aligned | None -> attempt ~machine ~mpn p mb
              in
              match choice with
              | Some p' -> tune (Some p') (p' :: acc) rest
              | None -> None)
        in
        match tune None [] ps with
        | Some tuned ->
            let total =
              List.fold_left (fun acc p -> acc +. Heuristic.cost ~machine p) 0. tuned
            in
            Some (total, tuned)
        | None -> None)
      [ 1; 2; 4; 6; 8; 12; 16; 32 ]
  in
  match candidates with
  | [] -> None
  | _ ->
      let total_after, tuned =
        List.fold_left
          (fun (bt, bp) (t, p) -> if t < bt then (t, p) else (bt, bp))
          (List.hd candidates) (List.tl candidates)
      in
      let total_before =
        List.fold_left (fun acc p -> acc +. Heuristic.cost ~machine p) 0. ps
      in
      let saved_barriers =
        float_of_int (List.length ps - 1) *. machine.Machine.barrier_cycles
      in
      if total_after <= (tolerance *. total_before) +. saved_barriers then
        Some tuned
      else None

(* Maximal runs of consecutive fused ops where each consumes its
   predecessor, all are tunable, and their templates are compatible
   (either all batched with equal batch, or all 2-D with equal m). *)
let chains (fused : Fused_op.t list) =
  let compatible (f1 : Fused_op.t) (f2 : Fused_op.t) =
    match (f1.params, f2.params, f1.tunable, f2.tunable) with
    | Some p1, Some p2, Some _, Some _ when consumes f1 f2 ->
        if mergeable_batched p1 p2 then true
        else p1.batch = 1 && p2.batch = 1 && p1.m = p2.m
    | _ -> false
  in
  let rec go = function
    | [] -> []
    | f :: rest ->
        let rec take prev acc = function
          | g :: tl when compatible prev g -> take g (g :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        let run, rest' = take f [ f ] rest in
        run :: go rest'
  in
  go fused

let run ?(retune_tolerance = 1.2) ~machine (g : Fused_op.graph) =
  let fused =
    List.concat_map
      (fun chain ->
        match chain with
        | [] | [ _ ] -> chain
        | (first : Fused_op.t) :: _ -> (
            let ps = List.filter_map (fun (f : Fused_op.t) -> f.params) chain in
            let batched =
              match first.params with Some p -> p.batch > 1 | None -> false
            in
            if batched then begin
              (* per-batch task ownership is already complete: tag as is *)
              let tag = Lower_fusible.fresh_tag () in
              List.map (fun f -> { f with Fused_op.merge_tag = Some tag }) chain
            end
            else
              (* already aligned? *)
              let aligned =
                List.for_all
                  (fun (p : Params.t) ->
                    p.npn = 1
                    && p.mpn = (List.hd ps).mpn
                    && p.mb = (List.hd ps).mb)
                  ps
              in
              if aligned then begin
                let tag = Lower_fusible.fresh_tag () in
                List.map (fun f -> { f with Fused_op.merge_tag = Some tag }) chain
              end
              else
                match joint_retune ~machine ~tolerance:retune_tolerance ps with
                | Some tuned ->
                    let tag = Lower_fusible.fresh_tag () in
                    let chain' =
                      List.map2
                        (fun f p ->
                          { f with Fused_op.merge_tag = Some tag; params = Some p })
                        chain tuned
                    in
    (* re-publish the connecting activations and the prepacked
                       constant weights in the re-tuned blocked layouts
                       (the init-graph reorders follow the logical
                       tensors' layouts) *)
                    List.iter
                      (fun (f : Fused_op.t) ->
                        match (f.params, f.tunable) with
                        | Some p, Some tun -> (
                            match tun.inputs with
                            | [ _; b ]
                              when Logical_tensor.is_constant b
                                   && Gc_tensor.Layout.is_blocked b.layout ->
                                b.layout <- Params.b_layout p
                            | _ -> ())
                        | _ -> ())
                      chain';
                    let rec relayout = function
                      | (f1 : Fused_op.t) :: ((f2 : Fused_op.t) :: _ as rest) ->
                          (match f1.params with
                          | Some p1 ->
                              List.iter
                                (fun (o : Logical_tensor.t) ->
                                  if
                                    Gc_tensor.Layout.is_blocked o.layout
                                    && List.exists (Logical_tensor.equal o)
                                         f2.f_inputs
                                  then o.layout <- Params.c_layout p1)
                                f1.f_outputs
                          | None -> ());
                          relayout rest
                      | _ -> ()
                    in
                    relayout chain';
                    chain'
                | None -> chain))
      (chains g.fused)
  in
  { g with fused }
