open Gc_graph_ir

(** Common subexpression elimination: ops with the same kind, attributes
    and inputs are merged — consumers of the duplicate's outputs are
    rewired to the first occurrence. *)
val run : Graph.t -> Graph.t
