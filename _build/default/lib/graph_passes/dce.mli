open Gc_graph_ir

(** Dead code elimination: removes ops whose outputs do not (transitively)
    reach any graph output. *)
val run : Graph.t -> Graph.t
