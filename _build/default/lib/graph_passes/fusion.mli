open Gc_microkernel
open Gc_graph_ir
open Gc_lowering

(** Fine-grain fusion: grows a sequence of post-ops behind every Tunable OP
    (paper §Graph IR Optimization). The heuristic grows the single-consumer
    chain of Fusible OPs behind each matmul, bounded by an op-count limit,
    at most one reorder, at most two reductions (softmax), and a cap on the
    extra memory the fused binary operands touch. The chain is split at the
    first reduction: the leading element-wise group commits at the anchor
    {!Anchor.best_post} picks (post#1), the reduction-led group at post#3 —
    n-axis reductions are only fused when each core owns complete rows
    (batched template, or a 2-D grid with NPN = 1). Reorder producers of
    the matmul operands are fused as pre-ops at their best anchors.

    Ops not reachable from any Tunable OP's anchors are grouped into
    fusible-only fused ops. *)

type limits = {
  max_post_ops : int;  (** default 16 *)
  max_reorders : int;  (** default 1 *)
  max_reductions : int;  (** default 2 — softmax needs max+sum *)
  max_extra_bytes : int;  (** extra operand memory a post chain may touch *)
}

val default_limits : limits

(** [run ~machine ~params main ~init] builds the fused graph. [params]
    carries layout propagation's choices; missing entries are chosen here.
    [fine:false] disables post/pre-op growth (every op becomes its own
    fused op) — the ablation baseline. *)
val run :
  ?fine:bool ->
  ?limits:limits ->
  machine:Machine.t ->
  params:(int, Params.t) Hashtbl.t ->
  Graph.t ->
  init:Graph.t option ->
  Fused_op.graph
