open Gc_graph_ir

(** Compile-time constant folding: ops whose inputs are all compile-time
    constants are evaluated with the reference evaluator; their outputs
    become compile-time constants and the ops are removed. (Runtime
    constants — weights whose buffers arrive at execution time — are
    handled by {!Const_prop}, not here.) *)
val run : Graph.t -> Graph.t
