open Gc_graph_ir

let run (g : Graph.t) =
  let g = match Graph.topo_sort g with Ok g -> g | Error e -> invalid_arg e in
  let foldable (op : Op.t) =
    List.for_all Logical_tensor.is_compile_const op.inputs
  in
  let removed =
    List.filter
      (fun (op : Op.t) ->
        if foldable op then begin
          let inputs = List.filter_map Logical_tensor.const_value op.inputs in
          let outputs = Reference.eval_op op ~inputs in
          List.iter2
            (fun (o : Logical_tensor.t) v ->
              o.property <- Logical_tensor.Compile_const v)
            op.outputs outputs;
          true
        end
        else false)
      g.ops
  in
  if removed = [] then g else Graph.replace_ops g ~remove:removed ~add:[]
