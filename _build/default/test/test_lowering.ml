(* Tests for the lowering layer: heuristic, anchors, and end-to-end
   template correctness (lower a fused op, execute it on the engine, and
   compare against the reference evaluator). *)

open Gc_tensor
open Gc_microkernel
open Gc_graph_ir
open Gc_lowering
open Gc_runtime

let sh = Shape.of_list
let machine = Machine.xeon_8358
let pool = Parallel.create 2

(* ------------------------------------------------------------------ *)
(* Params *)

let test_params_derived () =
  let p =
    {
      Params.m = 128; n = 256; k = 512; batch = 1; dtype = Dtype.F32;
      mpn = 4; npn = 2; kpn = 1; mb = 16; nb = 32; kb = 64; bs = 2;
      loop_order = "msi,ksi,nsi";
    }
  in
  Alcotest.(check int) "mblocks" 8 (Params.mblocks p);
  Alcotest.(check int) "nblocks" 8 (Params.nblocks p);
  Alcotest.(check int) "kblocks" 8 (Params.kblocks p);
  Alcotest.(check int) "msn" 2 (Params.msn p);
  Alcotest.(check int) "nsn" 4 (Params.nsn p);
  Alcotest.(check int) "ksteps" 4 (Params.ksteps p);
  Alcotest.(check int) "m_pad" 128 (Params.m_pad p)

let test_params_padding () =
  let p =
    {
      Params.m = 13; n = 479; k = 100; batch = 1; dtype = Dtype.F32;
      mpn = 1; npn = 1; kpn = 1; mb = 16; nb = 64; kb = 64; bs = 1;
      loop_order = "msi,ksi,nsi";
    }
  in
  Alcotest.(check int) "m_pad" 16 (Params.m_pad p);
  Alcotest.(check int) "n_pad" (8 * 64) (Params.n_pad p);
  Alcotest.(check int) "k_pad" 128 (Params.k_pad p)

(* ------------------------------------------------------------------ *)
(* Heuristic *)

let test_heuristic_basic () =
  let p = Heuristic.choose ~machine ~dtype:Dtype.F32 ~m:512 ~n:512 ~k:512 () in
  Alcotest.(check bool) "grid uses cores" true (p.mpn * p.npn <= machine.cores);
  Alcotest.(check bool) "tile valid" true
    (Ukernel_cost.valid ~machine ~dtype:Dtype.F32 ~mb:p.mb ~nb:p.nb ~kb:p.kb ~bs:p.bs);
  Alcotest.(check string) "loop order reported" "msi,ksi,nsi" p.loop_order

let test_heuristic_batched () =
  let p = Heuristic.choose ~machine ~dtype:Dtype.F32 ~batch:256 ~m:128 ~n:128 ~k:64 () in
  Alcotest.(check int) "mpn=1" 1 p.mpn;
  Alcotest.(check int) "npn=1" 1 p.npn;
  Alcotest.(check int) "batch recorded" 256 p.batch

let test_heuristic_small_problem () =
  (* tiny problem must not blow up or choose absurd grids *)
  let p = Heuristic.choose ~machine ~dtype:Dtype.F32 ~m:4 ~n:8 ~k:4 () in
  Alcotest.(check bool) "sensible grid" true (p.mpn >= 1 && p.npn >= 1)

let test_heuristic_force () =
  let p =
    Heuristic.choose ~machine ~dtype:Dtype.F32 ~force_grid:(2, 2)
      ~force_tile:(8, 32, 32, 1) ~m:256 ~n:256 ~k:256 ()
  in
  Alcotest.(check int) "forced mpn" 2 p.mpn;
  Alcotest.(check int) "forced mb" 8 p.mb

let test_heuristic_cost_padding_penalty () =
  (* k=479 pays for padding: cost(479) should be close to cost(512), i.e.
     clearly more than 479/512 of it *)
  let c479 =
    Heuristic.cost ~machine
      (Heuristic.choose ~machine ~dtype:Dtype.S8 ~m:512 ~n:1024 ~k:479 ())
  in
  let c512 =
    Heuristic.cost ~machine
      (Heuristic.choose ~machine ~dtype:Dtype.S8 ~m:512 ~n:1024 ~k:512 ())
  in
  Alcotest.(check bool) "padding penalty" true (c479 > 0.9 *. c512 *. 479. /. 512.)

let test_heuristic_int8_cheaper () =
  let f32 = Heuristic.cost ~machine (Heuristic.choose ~machine ~dtype:Dtype.F32 ~m:512 ~n:512 ~k:512 ()) in
  let i8 = Heuristic.cost ~machine (Heuristic.choose ~machine ~dtype:Dtype.U8 ~m:512 ~n:512 ~k:512 ()) in
  Alcotest.(check bool) "int8 cheaper" true (i8 < f32)

(* ------------------------------------------------------------------ *)
(* Anchors (Figure 3 formulas) *)

let fig3_params =
  {
    Params.m = 256; n = 512; k = 256; batch = 1; dtype = Dtype.F32;
    mpn = 4; npn = 4; kpn = 1; mb = 16; nb = 32; kb = 32; bs = 2;
    loop_order = "msi,ksi,nsi";
  }

let test_anchor_working_sets () =
  let p = fig3_params in
  let msn = Params.msn p and nsn = Params.nsn p and ksn = Params.kblocks p in
  (* pre#1 A: MSN*KSN*MB*KB *)
  Alcotest.(check int) "pre1 A" (msn * ksn * p.mb * p.kb)
    (Anchor.pre_working_set p A Pre1);
  (* pre#4 A: BS*MB*KB *)
  Alcotest.(check int) "pre4 A" (p.bs * p.mb * p.kb) (Anchor.pre_working_set p A Pre4);
  (* pre#5 B: BS*NB*KB (nsi fixes one n block) *)
  Alcotest.(check int) "pre5 B" (p.bs * p.nb * p.kb) (Anchor.pre_working_set p B Pre5);
  (* post#1: MB * NSBN *)
  Alcotest.(check int) "post1" (p.mb * (nsn * p.nb)) (Anchor.post_working_set p Post1);
  (* post#3: MSBN * N *)
  Alcotest.(check int) "post3" (msn * p.mb * Params.n_pad p) (Anchor.post_working_set p Post3)

let test_anchor_access_counts () =
  let p = fig3_params in
  let msn = Params.msn p and nsn = Params.nsn p in
  let ksteps = Params.ksteps p in
  Alcotest.(check int) "pre1 once" 1 (Anchor.pre_accesses p Pre1);
  Alcotest.(check int) "pre3 msn" msn (Anchor.pre_accesses p Pre3);
  Alcotest.(check int) "pre4" (msn * ksteps) (Anchor.pre_accesses p Pre4);
  Alcotest.(check int) "pre5" (msn * nsn * ksteps) (Anchor.pre_accesses p Pre5);
  Alcotest.(check int) "post1 msn" msn (Anchor.post_accesses p Post1);
  Alcotest.(check int) "post2 once" 1 (Anchor.post_accesses p Post2)

let test_anchor_a_total_4_vs_5 () =
  (* Figure 3: A's total accesses at anchor#5 are NSN x those at anchor#4 *)
  let p = fig3_params in
  Alcotest.(check int) "A total ratio"
    (Params.nsn p * Anchor.pre_total p A Pre4)
    (Anchor.pre_total p A Pre5)

let test_anchor_post1_cheapest_eltwise () =
  let a = Anchor.best_post ~machine fig3_params ~reduction:false in
  Alcotest.(check string) "post1 wins" "post#1" (Anchor.post_to_string a)

let test_anchor_reduction_forces_post3 () =
  let a = Anchor.best_post ~machine fig3_params ~reduction:true in
  Alcotest.(check string) "post3" "post#3" (Anchor.post_to_string a)

(* ------------------------------------------------------------------ *)
(* End-to-end template lowering *)

let run_fused_graph (fg : Fused_op.graph) bindings =
  let lowered = Lower_graph.lower fg in
  let engine = Engine.create ~pool lowered.module_ in
  (* fill globals from constant values *)
  List.iter
    (fun ((lt : Logical_tensor.t), (g : Gc_tensor_ir.Ir.tensor)) ->
      let value =
        match lt.property with
        | Compile_const v -> v
        | _ -> (
            match List.assoc_opt lt.id (List.map (fun ((l : Logical_tensor.t), v) -> (l.id, v)) bindings) with
            | Some v -> v
            | None -> Alcotest.failf "no value for global %s" lt.name)
      in
      Gc_tensor.Buffer.blit ~src:(Tensor.buffer value) ~dst:(Engine.global_buffer engine g))
    lowered.globals;
  (* entry buffers: inputs from bindings, outputs fresh *)
  let outs = ref [] in
  let bufs =
    List.map
      (fun ((lt : Logical_tensor.t), _) ->
        match List.assoc_opt lt.id (List.map (fun ((l : Logical_tensor.t), v) -> (l.id, v)) bindings) with
        | Some v -> Tensor.buffer v
        | None ->
            let t = Tensor.create ~layout:lt.layout lt.dtype lt.shape in
            outs := (lt.id, t) :: !outs;
            Tensor.buffer t)
      lowered.entry_params
  in
  Engine.run_entry engine (Array.of_list bufs);
  !outs

let mk_tunable_fused ?pre_a ?post_groups ~params tun ~inputs ~outputs =
  Fused_op.create ?pre_a ?post_groups ~tunable:tun ~params ~inputs ~outputs ()

let test_template_matmul_f32 () =
  (* odd sizes exercise padding and guards *)
  List.iter
    (fun (m, n, k) ->
      let a_lt = Logical_tensor.create ~name:"A" Dtype.F32 (sh [ m; k ]) in
      let b_lt = Logical_tensor.create ~name:"B" Dtype.F32 (sh [ k; n ]) in
      let tun = Op.create Matmul ~inputs:[ a_lt; b_lt ]
          ~outputs:[ Logical_tensor.create ~name:"C" Dtype.F32 (sh [ m; n ]) ] in
      let c_lt = Op.output tun in
      let params = Heuristic.choose ~machine:Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k () in
      let f = mk_tunable_fused ~params tun ~inputs:[ a_lt; b_lt ] ~outputs:[ c_lt ] in
      let fg = { Fused_op.fused = [ f ]; g_inputs = [ a_lt; b_lt ]; g_outputs = [ c_lt ]; init = None } in
      let a = Tensor.random ~seed:1 Dtype.F32 (sh [ m; k ]) in
      let b = Tensor.random ~seed:2 Dtype.F32 (sh [ k; n ]) in
      let outs = run_fused_graph fg [ (a_lt, a); (b_lt, b) ] in
      let got = List.assoc c_lt.id outs in
      let expect = Ref_ops.matmul a b in
      if not (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 got expect) then
        Alcotest.failf "matmul %dx%dx%d mismatch: max diff %g" m n k
          (Tensor.max_abs_diff got expect))
    [ (4, 4, 4); (16, 16, 16); (13, 17, 29); (33, 65, 100); (64, 64, 64) ]

let test_template_matmul_int8 () =
  let m = 24 and n = 40 and k = 33 in
  let a_lt = Logical_tensor.create ~name:"A" Dtype.U8 (sh [ m; k ]) in
  let b_lt = Logical_tensor.create ~name:"B" Dtype.S8 (sh [ k; n ]) in
  let tun = Op.create Matmul ~inputs:[ a_lt; b_lt ]
      ~outputs:[ Logical_tensor.create ~name:"C" Dtype.S32 (sh [ m; n ]) ] in
  let c_lt = Op.output tun in
  let params = Heuristic.choose ~machine:Machine.test_machine ~dtype:Dtype.U8 ~m ~n ~k () in
  let f = mk_tunable_fused ~params tun ~inputs:[ a_lt; b_lt ] ~outputs:[ c_lt ] in
  let fg = { Fused_op.fused = [ f ]; g_inputs = [ a_lt; b_lt ]; g_outputs = [ c_lt ]; init = None } in
  let a = Tensor.random ~seed:3 ~lo:0. ~hi:50. Dtype.U8 (sh [ m; k ]) in
  let b = Tensor.random ~seed:4 ~lo:(-50.) ~hi:50. Dtype.S8 (sh [ k; n ]) in
  let outs = run_fused_graph fg [ (a_lt, a); (b_lt, b) ] in
  let got = List.assoc c_lt.id outs in
  let expect = Ref_ops.matmul a b in
  Alcotest.(check bool) "exact int8" true (Tensor.equal got expect)

let test_template_matmul_relu_post_op () =
  let m = 20 and n = 30 and k = 15 in
  let a_lt = Logical_tensor.create ~name:"A" Dtype.F32 (sh [ m; k ]) in
  let b_lt = Logical_tensor.create ~name:"B" Dtype.F32 (sh [ k; n ]) in
  let tun = Op.create Matmul ~inputs:[ a_lt; b_lt ]
      ~outputs:[ Logical_tensor.create ~name:"C0" Dtype.F32 (sh [ m; n ]) ] in
  let c0 = Op.output tun in
  let relu = Op.create Relu ~inputs:[ c0 ]
      ~outputs:[ Logical_tensor.create ~name:"C" Dtype.F32 (sh [ m; n ]) ] in
  let c = Op.output relu in
  let params = Heuristic.choose ~machine:Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k () in
  let f =
    mk_tunable_fused ~params
      ~post_groups:[ { Fused_op.g_anchor = Post1; g_ops = [ relu ] } ]
      tun ~inputs:[ a_lt; b_lt ] ~outputs:[ c ]
  in
  let fg = { Fused_op.fused = [ f ]; g_inputs = [ a_lt; b_lt ]; g_outputs = [ c ]; init = None } in
  let a = Tensor.random ~seed:5 Dtype.F32 (sh [ m; k ]) in
  let b = Tensor.random ~seed:6 Dtype.F32 (sh [ k; n ]) in
  let outs = run_fused_graph fg [ (a_lt, a); (b_lt, b) ] in
  let got = List.assoc c.id outs in
  let expect = Ref_ops.relu (Ref_ops.matmul a b) in
  Alcotest.(check bool) "matmul+relu" true (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 got expect)

let test_template_matmul_bias_post_op () =
  (* binary post-op with broadcast operand *)
  let m = 16 and n = 24 and k = 8 in
  let a_lt = Logical_tensor.create ~name:"A" Dtype.F32 (sh [ m; k ]) in
  let b_lt = Logical_tensor.create ~name:"B" Dtype.F32 (sh [ k; n ]) in
  let bias_lt = Logical_tensor.create ~name:"bias" Dtype.F32 (sh [ n ]) in
  let tun = Op.create Matmul ~inputs:[ a_lt; b_lt ]
      ~outputs:[ Logical_tensor.create Dtype.F32 (sh [ m; n ]) ] in
  let c0 = Op.output tun in
  let addb = Op.create Add ~inputs:[ c0; bias_lt ]
      ~outputs:[ Logical_tensor.create ~name:"C" Dtype.F32 (sh [ m; n ]) ] in
  let c = Op.output addb in
  let params = Heuristic.choose ~machine:Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k () in
  let f =
    mk_tunable_fused ~params
      ~post_groups:[ { Fused_op.g_anchor = Post1; g_ops = [ addb ] } ]
      tun ~inputs:[ a_lt; b_lt; bias_lt ] ~outputs:[ c ]
  in
  let fg = { Fused_op.fused = [ f ]; g_inputs = [ a_lt; b_lt; bias_lt ]; g_outputs = [ c ]; init = None } in
  let a = Tensor.random ~seed:7 Dtype.F32 (sh [ m; k ]) in
  let b = Tensor.random ~seed:8 Dtype.F32 (sh [ k; n ]) in
  let bias = Tensor.random ~seed:9 Dtype.F32 (sh [ n ]) in
  let outs = run_fused_graph fg [ (a_lt, a); (b_lt, b); (bias_lt, bias) ] in
  let got = List.assoc c.id outs in
  let expect = Ref_ops.add (Ref_ops.matmul a b) bias in
  Alcotest.(check bool) "matmul+bias" true (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 got expect)

let test_template_blocked_weight_direct () =
  (* B prepacked in the template's blocked layout and marked runtime
     constant: the template reads it directly (no packing loops) *)
  let m = 32 and n = 32 and k = 32 in
  let params = Heuristic.choose ~machine:Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k () in
  let b_layout = Params.b_layout params in
  let a_lt = Logical_tensor.create ~name:"A" Dtype.F32 (sh [ m; k ]) in
  let b_lt =
    Logical_tensor.create ~name:"B" ~layout:b_layout
      ~property:Logical_tensor.Runtime_const Dtype.F32 (sh [ k; n ])
  in
  let tun = Op.create Matmul ~inputs:[ a_lt; b_lt ]
      ~outputs:[ Logical_tensor.create ~name:"C" Dtype.F32 (sh [ m; n ]) ] in
  let c_lt = Op.output tun in
  let f = mk_tunable_fused ~params tun ~inputs:[ a_lt; b_lt ] ~outputs:[ c_lt ] in
  let fg = { Fused_op.fused = [ f ]; g_inputs = [ a_lt ]; g_outputs = [ c_lt ]; init = None } in
  let a = Tensor.random ~seed:10 Dtype.F32 (sh [ m; k ]) in
  let b_plain = Tensor.random ~seed:11 Dtype.F32 (sh [ k; n ]) in
  let b_packed = Reorder.to_layout b_plain b_layout in
  let outs = run_fused_graph fg [ (a_lt, a); (b_lt, b_packed) ] in
  let got = List.assoc c_lt.id outs in
  let expect = Ref_ops.matmul a b_plain in
  Alcotest.(check bool) "prepacked B" true (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 got expect)

let test_template_batched_matmul () =
  let b = 3 and m = 8 and n = 12 and k = 10 in
  let a_lt = Logical_tensor.create ~name:"A" Dtype.F32 (sh [ b; m; k ]) in
  let b_lt = Logical_tensor.create ~name:"B" Dtype.F32 (sh [ b; k; n ]) in
  let tun = Op.create Matmul ~inputs:[ a_lt; b_lt ]
      ~outputs:[ Logical_tensor.create ~name:"C" Dtype.F32 (sh [ b; m; n ]) ] in
  let c_lt = Op.output tun in
  let params = Heuristic.choose ~machine:Machine.test_machine ~dtype:Dtype.F32 ~batch:b ~m ~n ~k () in
  let f = mk_tunable_fused ~params tun ~inputs:[ a_lt; b_lt ] ~outputs:[ c_lt ] in
  let fg = { Fused_op.fused = [ f ]; g_inputs = [ a_lt; b_lt ]; g_outputs = [ c_lt ]; init = None } in
  let a = Tensor.random ~seed:12 Dtype.F32 (sh [ b; m; k ]) in
  let bt = Tensor.random ~seed:13 Dtype.F32 (sh [ b; k; n ]) in
  let outs = run_fused_graph fg [ (a_lt, a); (b_lt, bt) ] in
  let got = List.assoc c_lt.id outs in
  let expect = Ref_ops.matmul a bt in
  Alcotest.(check bool) "batched" true (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 got expect)

let test_template_batched_transpose_b () =
  (* the QK^T case: B is [batch, n, k] with transpose_b *)
  let b = 2 and m = 6 and n = 9 and k = 7 in
  let a_lt = Logical_tensor.create ~name:"Q" Dtype.F32 (sh [ b; m; k ]) in
  let b_lt = Logical_tensor.create ~name:"K" Dtype.F32 (sh [ b; n; k ]) in
  let attrs = Attrs.of_list [ ("transpose_b", Attrs.Bool true) ] in
  let tun = Op.create Matmul ~attrs ~inputs:[ a_lt; b_lt ]
      ~outputs:[ Logical_tensor.create ~name:"S" Dtype.F32 (sh [ b; m; n ]) ] in
  let c_lt = Op.output tun in
  let params = Heuristic.choose ~machine:Machine.test_machine ~dtype:Dtype.F32 ~batch:b ~m ~n ~k () in
  let f = mk_tunable_fused ~params tun ~inputs:[ a_lt; b_lt ] ~outputs:[ c_lt ] in
  let fg = { Fused_op.fused = [ f ]; g_inputs = [ a_lt; b_lt ]; g_outputs = [ c_lt ]; init = None } in
  let q = Tensor.random ~seed:14 Dtype.F32 (sh [ b; m; k ]) in
  let kt = Tensor.random ~seed:15 Dtype.F32 (sh [ b; n; k ]) in
  let outs = run_fused_graph fg [ (a_lt, q); (b_lt, kt) ] in
  let got = List.assoc c_lt.id outs in
  let expect = Ref_ops.matmul q (Reorder.transpose kt [| 0; 2; 1 |]) in
  Alcotest.(check bool) "transpose_b" true (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 got expect)

let test_template_batched_softmax_fusion () =
  (* the MHA headline: batch matmul with a decomposed softmax fused as
     post-op groups (reduce_max; sub; exp; reduce_sum; div) at post#3 *)
  let b = 2 and m = 6 and n = 8 and k = 5 in
  let a_lt = Logical_tensor.create ~name:"A" Dtype.F32 (sh [ b; m; k ]) in
  let b_lt = Logical_tensor.create ~name:"B" Dtype.F32 (sh [ b; k; n ]) in
  let tun = Op.create Matmul ~inputs:[ a_lt; b_lt ]
      ~outputs:[ Logical_tensor.create ~name:"S" Dtype.F32 (sh [ b; m; n ]) ] in
  let s = Op.output tun in
  let rattrs = Attrs.of_list [ ("axis", Attrs.Int 2); ("keepdims", Attrs.Bool true) ] in
  let rmax = Op.create (Reduce Max) ~attrs:rattrs ~inputs:[ s ]
      ~outputs:[ Logical_tensor.create ~name:"rmax" Dtype.F32 (sh [ b; m; 1 ]) ] in
  let subd = Op.create Sub ~inputs:[ s; Op.output rmax ]
      ~outputs:[ Logical_tensor.create Dtype.F32 (sh [ b; m; n ]) ] in
  let expd = Op.create Exp ~inputs:[ Op.output subd ]
      ~outputs:[ Logical_tensor.create Dtype.F32 (sh [ b; m; n ]) ] in
  let rsum = Op.create (Reduce Sum) ~attrs:rattrs ~inputs:[ Op.output expd ]
      ~outputs:[ Logical_tensor.create ~name:"rsum" Dtype.F32 (sh [ b; m; 1 ]) ] in
  let divd = Op.create Div ~inputs:[ Op.output expd; Op.output rsum ]
      ~outputs:[ Logical_tensor.create ~name:"P" Dtype.F32 (sh [ b; m; n ]) ] in
  let p_out = Op.output divd in
  let params = Heuristic.choose ~machine:Machine.test_machine ~dtype:Dtype.F32 ~batch:b ~m ~n ~k () in
  let f =
    mk_tunable_fused ~params
      ~post_groups:
        [ { Fused_op.g_anchor = Post3; g_ops = [ rmax; subd; expd; rsum; divd ] } ]
      tun ~inputs:[ a_lt; b_lt ] ~outputs:[ p_out ]
  in
  let fg = { Fused_op.fused = [ f ]; g_inputs = [ a_lt; b_lt ]; g_outputs = [ p_out ]; init = None } in
  let a = Tensor.random ~seed:16 Dtype.F32 (sh [ b; m; k ]) in
  let bt = Tensor.random ~seed:17 Dtype.F32 (sh [ b; k; n ]) in
  let outs = run_fused_graph fg [ (a_lt, a); (b_lt, bt) ] in
  let got = List.assoc p_out.id outs in
  let expect = Ref_ops.softmax ~axis:2 (Ref_ops.matmul a bt) in
  if not (Tensor.allclose ~rtol:1e-4 ~atol:1e-5 got expect) then
    Alcotest.failf "softmax fusion mismatch: max diff %g" (Tensor.max_abs_diff got expect)

let test_fusible_group_lowering () =
  (* a standalone eltwise chain with a reduction, no tunable op *)
  let x_lt = Logical_tensor.create ~name:"x" Dtype.F32 (sh [ 4; 6 ]) in
  let r = Op.create Relu ~inputs:[ x_lt ]
      ~outputs:[ Logical_tensor.create Dtype.F32 (sh [ 4; 6 ]) ] in
  let e = Op.create Exp ~inputs:[ Op.output r ]
      ~outputs:[ Logical_tensor.create Dtype.F32 (sh [ 4; 6 ]) ] in
  let red = Op.create (Reduce Sum)
      ~attrs:(Attrs.of_list [ ("axis", Attrs.Int 1); ("keepdims", Attrs.Bool false) ])
      ~inputs:[ Op.output e ]
      ~outputs:[ Logical_tensor.create ~name:"y" Dtype.F32 (sh [ 4 ]) ] in
  let y = Op.output red in
  let f =
    Fused_op.create
      ~post_groups:[ { Fused_op.g_anchor = Post3; g_ops = [ r; e; red ] } ]
      ~inputs:[ x_lt ] ~outputs:[ y ] ()
  in
  let fg = { Fused_op.fused = [ f ]; g_inputs = [ x_lt ]; g_outputs = [ y ]; init = None } in
  let x = Tensor.random ~seed:18 Dtype.F32 (sh [ 4; 6 ]) in
  let outs = run_fused_graph fg [ (x_lt, x) ] in
  let got = List.assoc y.id outs in
  let expect = Ref_ops.reduce Sum ~axis:1 ~keepdims:false (Ref_ops.exp (Ref_ops.relu x)) in
  Alcotest.(check bool) "fusible group" true (Tensor.allclose ~rtol:1e-5 ~atol:1e-6 got expect)

let test_two_fused_ops_pipeline () =
  (* entry function chains two fused matmuls through an intermediate *)
  let m = 16 and k1 = 12 and k2 = 20 and n = 8 in
  let a_lt = Logical_tensor.create ~name:"A" Dtype.F32 (sh [ m; k1 ]) in
  let w1_lt = Logical_tensor.create ~name:"W1" Dtype.F32 (sh [ k1; k2 ]) in
  let w2_lt = Logical_tensor.create ~name:"W2" Dtype.F32 (sh [ k2; n ]) in
  let mm1 = Op.create Matmul ~inputs:[ a_lt; w1_lt ]
      ~outputs:[ Logical_tensor.create ~name:"H" Dtype.F32 (sh [ m; k2 ]) ] in
  let h = Op.output mm1 in
  let mm2 = Op.create Matmul ~inputs:[ h; w2_lt ]
      ~outputs:[ Logical_tensor.create ~name:"C" Dtype.F32 (sh [ m; n ]) ] in
  let c = Op.output mm2 in
  let params1 = Heuristic.choose ~machine:Machine.test_machine ~dtype:Dtype.F32 ~m ~n:k2 ~k:k1 () in
  let params2 = Heuristic.choose ~machine:Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k:k2 () in
  let f1 = mk_tunable_fused ~params:params1 mm1 ~inputs:[ a_lt; w1_lt ] ~outputs:[ h ] in
  let f2 = mk_tunable_fused ~params:params2 mm2 ~inputs:[ h; w2_lt ] ~outputs:[ c ] in
  let fg = { Fused_op.fused = [ f1; f2 ]; g_inputs = [ a_lt; w1_lt; w2_lt ]; g_outputs = [ c ]; init = None } in
  let a = Tensor.random ~seed:19 Dtype.F32 (sh [ m; k1 ]) in
  let w1 = Tensor.random ~seed:20 Dtype.F32 (sh [ k1; k2 ]) in
  let w2 = Tensor.random ~seed:21 Dtype.F32 (sh [ k2; n ]) in
  let outs = run_fused_graph fg [ (a_lt, a); (w1_lt, w1); (w2_lt, w2) ] in
  let got = List.assoc c.id outs in
  let expect = Ref_ops.matmul (Ref_ops.matmul a w1) w2 in
  Alcotest.(check bool) "pipeline" true (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 got expect)

let test_template_ksliced () =
  (* the k-slicing variant: skinny m x n with deep k; force kpn > 1 and
     compare against the reference, with and without a post-op chain *)
  List.iter
    (fun (m, n, k, relu) ->
      let a_lt = Logical_tensor.create ~name:"A" Dtype.F32 (sh [ m; k ]) in
      let b_lt = Logical_tensor.create ~name:"B" Dtype.F32 (sh [ k; n ]) in
      let tun = Op.create Matmul ~inputs:[ a_lt; b_lt ]
          ~outputs:[ Logical_tensor.create Dtype.F32 (sh [ m; n ]) ] in
      let c0 = Op.output tun in
      let last, post_groups =
        if relu then begin
          let r = Op.create Relu ~inputs:[ c0 ]
              ~outputs:[ Logical_tensor.create ~name:"C" Dtype.F32 (sh [ m; n ]) ] in
          (Op.output r, [ { Fused_op.g_anchor = Post1; g_ops = [ r ] } ])
        end
        else (c0, [])
      in
      let base = Heuristic.choose ~machine:Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k () in
      let params = { base with Params.kpn = 4; mpn = 1; npn = 1 } in
      let f = Fused_op.create ~tunable:tun ~post_groups ~params
          ~inputs:[ a_lt; b_lt ] ~outputs:[ last ] () in
      let fg = { Fused_op.fused = [ f ]; g_inputs = [ a_lt; b_lt ]; g_outputs = [ last ]; init = None } in
      let a = Tensor.random ~seed:41 Dtype.F32 (sh [ m; k ]) in
      let b = Tensor.random ~seed:42 Dtype.F32 (sh [ k; n ]) in
      let outs = run_fused_graph fg [ (a_lt, a); (b_lt, b) ] in
      let got = List.assoc last.id outs in
      let expect = Ref_ops.matmul a b in
      let expect = if relu then Ref_ops.relu expect else expect in
      if not (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 got expect) then
        Alcotest.failf "ksliced %dx%dx%d relu=%b: max diff %g" m n k relu
          (Tensor.max_abs_diff got expect))
    [ (4, 8, 128, false); (4, 8, 128, true); (7, 5, 100, true); (16, 16, 64, false) ]

let test_heuristic_picks_kslicing_for_skinny () =
  (* one sample, deep reduction, 32 cores: the m/n grid cannot occupy the
     machine, so the heuristic should slice k *)
  let p = Heuristic.choose ~machine ~dtype:Dtype.F32 ~m:1 ~n:16 ~k:4096 () in
  Alcotest.(check bool) "kpn > 1" true (p.kpn > 1)

let prop_template_matches_reference =
  QCheck.Test.make ~name:"template matmul matches reference on random sizes"
    ~count:15
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 40) (int_range 1 40) (int_range 1 40)))
    (fun (m, n, k) ->
      let a_lt = Logical_tensor.create ~name:"A" Dtype.F32 (sh [ m; k ]) in
      let b_lt = Logical_tensor.create ~name:"B" Dtype.F32 (sh [ k; n ]) in
      let tun = Op.create Matmul ~inputs:[ a_lt; b_lt ]
          ~outputs:[ Logical_tensor.create ~name:"C" Dtype.F32 (sh [ m; n ]) ] in
      let c_lt = Op.output tun in
      let params = Heuristic.choose ~machine:Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k () in
      let f = mk_tunable_fused ~params tun ~inputs:[ a_lt; b_lt ] ~outputs:[ c_lt ] in
      let fg = { Fused_op.fused = [ f ]; g_inputs = [ a_lt; b_lt ]; g_outputs = [ c_lt ]; init = None } in
      let a = Tensor.random ~seed:(m + n) Dtype.F32 (sh [ m; k ]) in
      let b = Tensor.random ~seed:(n + k) Dtype.F32 (sh [ k; n ]) in
      let outs = run_fused_graph fg [ (a_lt, a); (b_lt, b) ] in
      let got = List.assoc c_lt.id outs in
      Tensor.allclose ~rtol:1e-4 ~atol:1e-4 got (Ref_ops.matmul a b))

let () =
  Alcotest.run "gc_lowering"
    [
      ( "params",
        [
          Alcotest.test_case "derived" `Quick test_params_derived;
          Alcotest.test_case "padding" `Quick test_params_padding;
        ] );
      ( "heuristic",
        [
          Alcotest.test_case "basic" `Quick test_heuristic_basic;
          Alcotest.test_case "batched" `Quick test_heuristic_batched;
          Alcotest.test_case "small problem" `Quick test_heuristic_small_problem;
          Alcotest.test_case "force" `Quick test_heuristic_force;
          Alcotest.test_case "padding penalty" `Quick test_heuristic_cost_padding_penalty;
          Alcotest.test_case "int8 cheaper" `Quick test_heuristic_int8_cheaper;
        ] );
      ( "anchors",
        [
          Alcotest.test_case "working sets" `Quick test_anchor_working_sets;
          Alcotest.test_case "access counts" `Quick test_anchor_access_counts;
          Alcotest.test_case "A total #4 vs #5" `Quick test_anchor_a_total_4_vs_5;
          Alcotest.test_case "post1 cheapest" `Quick test_anchor_post1_cheapest_eltwise;
          Alcotest.test_case "reduction forces post3" `Quick test_anchor_reduction_forces_post3;
        ] );
      ( "template",
        [
          Alcotest.test_case "matmul f32 sizes" `Quick test_template_matmul_f32;
          Alcotest.test_case "matmul int8 exact" `Quick test_template_matmul_int8;
          Alcotest.test_case "matmul+relu" `Quick test_template_matmul_relu_post_op;
          Alcotest.test_case "matmul+bias" `Quick test_template_matmul_bias_post_op;
          Alcotest.test_case "prepacked B direct" `Quick test_template_blocked_weight_direct;
          Alcotest.test_case "batched" `Quick test_template_batched_matmul;
          Alcotest.test_case "transpose_b" `Quick test_template_batched_transpose_b;
          Alcotest.test_case "softmax post fusion" `Quick test_template_batched_softmax_fusion;
          Alcotest.test_case "fusible group" `Quick test_fusible_group_lowering;
          Alcotest.test_case "two fused ops" `Quick test_two_fused_ops_pipeline;
          Alcotest.test_case "k-sliced template" `Quick test_template_ksliced;
          Alcotest.test_case "heuristic k-slices skinny" `Quick test_heuristic_picks_kslicing_for_skinny;
          QCheck_alcotest.to_alcotest prop_template_matches_reference;
        ] );
    ]
