(* Tests for the Table 1 workload builders and the oneDNN-primitives-style
   baseline API. *)

open Gc_tensor
open Gc_graph_ir

let sh = Shape.of_list

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let test_table1_specs () =
  let open Gc_workloads.Table1 in
  Alcotest.(check (list int)) "mlp1 widths" [ 13; 512; 256; 128 ] mlp_1.hidden;
  Alcotest.(check (list int)) "mlp2 widths" [ 479; 1024; 1024; 512; 256; 1 ] mlp_2.hidden;
  Alcotest.(check int) "mha3 seq" 384 mha_3.seq_len;
  Alcotest.(check int) "mha4 heads" 16 mha_4.heads;
  Alcotest.(check int) "2 mlp specs" 2 (List.length all_mlp);
  Alcotest.(check int) "4 mha specs" 4 (List.length all_mha);
  (* 24 MHA tests as the paper says: 4 specs x 3 batches x 2 dtypes *)
  let n_tests =
    2 * List.fold_left (fun a (s : mha_spec) -> a + List.length s.mha_batches) 0 all_mha
  in
  Alcotest.(check int) "24 MHA tests" 24 n_tests

(* ------------------------------------------------------------------ *)
(* MLP builder *)

let test_mlp_f32_structure () =
  let built = Gc_workloads.Mlp.build_f32 ~batch:8 ~hidden:[ 13; 32; 16 ] () in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  (* 2 matmuls + 1 relu (no relu after last layer) *)
  Alcotest.(check int) "op count" 3 (Graph.op_count built.graph);
  (* weights marked const *)
  let consts = List.filter Logical_tensor.is_constant built.graph.inputs in
  Alcotest.(check int) "two const weights" 2 (List.length consts);
  (* data covers every input *)
  Alcotest.(check int) "bindings" (List.length built.graph.inputs)
    (List.length built.data)

let test_mlp_int8_structure () =
  let built = Gc_workloads.Mlp.build_int8 ~batch:8 ~hidden:[ 13; 32; 16 ] () in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  (* contains quantize/dequantize complex ops before compilation *)
  Alcotest.(check bool) "has dequantize" true
    (List.exists (fun (op : Op.t) -> op.kind = Op_kind.Dequantize) built.graph.ops);
  (* input is u8, weights s8 *)
  let x = List.hd built.graph.inputs in
  Alcotest.(check bool) "u8 input" true (Dtype.equal x.dtype Dtype.U8)

let test_mlp_deterministic_data () =
  let b1 = Gc_workloads.Mlp.build_f32 ~seed:9 ~batch:4 ~hidden:[ 8; 4 ] () in
  let b2 = Gc_workloads.Mlp.build_f32 ~seed:9 ~batch:4 ~hidden:[ 8; 4 ] () in
  List.iter2
    (fun (_, v1) (_, v2) ->
      Alcotest.(check bool) "same data" true (Tensor.equal v1 v2))
    b1.data b2.data

let test_mlp_rejects_single_layer () =
  Alcotest.(check bool) "raises" true
    (try ignore (Gc_workloads.Mlp.build_f32 ~batch:4 ~hidden:[ 8 ] ()); false
     with Invalid_argument _ -> true)

let test_single_matmul_builder () =
  let built = Gc_workloads.Mlp.build_single_matmul ~relu:true ~dtype:`F32 ~m:4 ~n:6 ~k:5 () in
  match Reference.run built.graph built.data with
  | [ out ] ->
      Alcotest.(check bool) "shape" true (Shape.equal (Tensor.shape out) (sh [ 4; 6 ]));
      Tensor.iter out (fun _ v -> Alcotest.(check bool) "relu applied" true (v >= 0.))
  | _ -> Alcotest.fail "one output"

(* ------------------------------------------------------------------ *)
(* MHA builder *)

let test_mha_f32_structure () =
  let built = Gc_workloads.Mha.build_f32 ~batch:2 ~seq:8 ~hidden:32 ~heads:4 () in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  (* ops: matmul, div, add, softmax, matmul *)
  Alcotest.(check int) "op count" 5 (Graph.op_count built.graph);
  Alcotest.(check bool) "has softmax" true
    (List.exists (fun (op : Op.t) -> op.kind = Op_kind.Softmax) built.graph.ops)

let test_mha_semantics_is_attention () =
  (* with a zero mask and uniform V rows, output rows equal V's value *)
  let batch = 1 and seq = 4 and hidden = 8 and heads = 2 in
  let built = Gc_workloads.Mha.build_f32 ~batch ~seq ~hidden ~heads () in
  let d = hidden / heads in
  let qkv = sh [ batch; heads; seq; d ] in
  (* rebind V to all-ones and mask to zero *)
  let data =
    List.map
      (fun ((lt : Logical_tensor.t), v) ->
        if lt.name = "V" then (lt, Tensor.init Dtype.F32 qkv (fun _ -> 1.))
        else if lt.name = "mask" then
          (lt, Tensor.create Dtype.F32 (Tensor.shape v))
        else (lt, v))
      built.data
  in
  match Reference.run built.graph data with
  | [ out ] ->
      (* softmax rows are a convex combination; V rows all ones -> ones *)
      Tensor.iter out (fun _ v ->
          Alcotest.(check bool) "convex comb of ones" true (Float.abs (v -. 1.) < 1e-5))
  | _ -> Alcotest.fail "one output"

let test_mha_rejects_indivisible_heads () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Gc_workloads.Mha.build_f32 ~batch:1 ~seq:4 ~hidden:30 ~heads:4 ());
       false
     with Invalid_argument _ -> true)

let test_mha_int8_symmetric () =
  let built = Gc_workloads.Mha.build_int8 ~batch:1 ~seq:8 ~hidden:16 ~heads:2 () in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  (* all dequantize ops use zero point 0 (symmetric) *)
  List.iter
    (fun (op : Op.t) ->
      if op.kind = Op_kind.Dequantize then
        Alcotest.(check int) "zp 0" 0 (Gc_graph_ir.Attrs.int_exn op.attrs "zp"))
    built.graph.ops

(* ------------------------------------------------------------------ *)
(* Baseline primitive API *)

let test_matmul_primitive_matches_reference () =
  let m = 8 and n = 12 and k = 10 in
  let prim =
    Gc_baseline.Baseline.Matmul_primitive.create
      ~machine:Core.Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k
      ~post_ops:[ Relu ] ()
  in
  let src = Tensor.random ~seed:1 Dtype.F32 (sh [ m; k ]) in
  let weights = Tensor.random ~seed:2 Dtype.F32 (sh [ k; n ]) in
  let out = Gc_baseline.Baseline.Matmul_primitive.execute prim ~src ~weights in
  let expect = Ref_ops.relu (Ref_ops.matmul src weights) in
  Alcotest.(check bool) "matches" true (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 out expect)

let test_matmul_primitive_weight_cache () =
  let m = 4 and n = 4 and k = 4 in
  let prim =
    Gc_baseline.Baseline.Matmul_primitive.create
      ~machine:Core.Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k ()
  in
  let src = Tensor.random ~seed:3 Dtype.F32 (sh [ m; k ]) in
  let w1 = Tensor.random ~seed:4 Dtype.F32 (sh [ k; n ]) in
  let o1 = Gc_baseline.Baseline.Matmul_primitive.execute prim ~src ~weights:w1 in
  (* same weights tensor: cached prepack reused *)
  let o1' = Gc_baseline.Baseline.Matmul_primitive.execute prim ~src ~weights:w1 in
  Alcotest.(check bool) "stable" true (Tensor.equal o1 o1');
  (* new weights: cache invalidated, result changes *)
  let w2 = Tensor.random ~seed:5 Dtype.F32 (sh [ k; n ]) in
  let o2 = Gc_baseline.Baseline.Matmul_primitive.execute prim ~src ~weights:w2 in
  Alcotest.(check bool) "recomputed" false (Tensor.equal o1 o2);
  let expect = Ref_ops.matmul src w2 in
  Alcotest.(check bool) "correct after rebind" true
    (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 o2 expect)

let test_matmul_primitive_binary_post_op () =
  let m = 4 and n = 6 and k = 3 in
  let operand = Tensor.random ~seed:6 Dtype.F32 (sh [ m; n ]) in
  let prim =
    Gc_baseline.Baseline.Matmul_primitive.create
      ~machine:Core.Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k
      ~post_ops:[ Binary_add operand ] ()
  in
  let src = Tensor.random ~seed:7 Dtype.F32 (sh [ m; k ]) in
  let weights = Tensor.random ~seed:8 Dtype.F32 (sh [ k; n ]) in
  let out = Gc_baseline.Baseline.Matmul_primitive.execute prim ~src ~weights in
  let expect = Ref_ops.add (Ref_ops.matmul src weights) operand in
  Alcotest.(check bool) "binary post-op" true
    (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 out expect)

let () =
  Alcotest.run "gc_workloads"
    [
      ("table1", [ Alcotest.test_case "specs" `Quick test_table1_specs ]);
      ( "mlp",
        [
          Alcotest.test_case "f32 structure" `Quick test_mlp_f32_structure;
          Alcotest.test_case "int8 structure" `Quick test_mlp_int8_structure;
          Alcotest.test_case "deterministic" `Quick test_mlp_deterministic_data;
          Alcotest.test_case "rejects 1 layer" `Quick test_mlp_rejects_single_layer;
          Alcotest.test_case "single matmul" `Quick test_single_matmul_builder;
        ] );
      ( "mha",
        [
          Alcotest.test_case "f32 structure" `Quick test_mha_f32_structure;
          Alcotest.test_case "attention semantics" `Quick test_mha_semantics_is_attention;
          Alcotest.test_case "indivisible heads" `Quick test_mha_rejects_indivisible_heads;
          Alcotest.test_case "int8 symmetric" `Quick test_mha_int8_symmetric;
        ] );
      ( "baseline primitive",
        [
          Alcotest.test_case "matches reference" `Quick test_matmul_primitive_matches_reference;
          Alcotest.test_case "weight cache" `Quick test_matmul_primitive_weight_cache;
          Alcotest.test_case "binary post-op" `Quick test_matmul_primitive_binary_post_op;
        ] );
    ]
