(* Tests for the Tensor IR layer: IR construction helpers, the C-like
   printer, the well-formedness checker, visitors, and intrinsics. *)

open Gc_tensor
open Gc_tensor_ir
open Ir

let simple_loop n body_of =
  let i = fresh_var ~name:"i" Index in
  For
    {
      v = i; lo = Int 0; hi = Int n; step = Int 1;
      body = body_of i; parallel = false; merge_tag = None;
    }

(* ------------------------------------------------------------------ *)
(* IR basics *)

let test_tensor_numel_bytes () =
  let t = fresh_tensor Dtype.F32 [| 2; 3; 4 |] in
  Alcotest.(check int) "numel" 24 (tensor_numel t);
  Alcotest.(check int) "bytes" 96 (tensor_bytes t);
  let t8 = fresh_tensor Dtype.S8 [| 10 |] in
  Alcotest.(check int) "s8 bytes" 10 (tensor_bytes t8)

let test_fresh_tensor_rejects_bad_dims () =
  Alcotest.(check bool) "zero dim" true
    (try ignore (fresh_tensor Dtype.F32 [| 2; 0 |]); false
     with Invalid_argument _ -> true)

let test_linear_index () =
  let e = linear_index [| 3; 4; 5 |] [| Int 2; Int 1; Int 3 |] in
  (* evaluate by structural fold *)
  let rec eval = function
    | Int i -> i
    | Binop (Add, a, b) -> eval a + eval b
    | Binop (Mul, a, b) -> eval a * eval b
    | _ -> failwith "unexpected"
  in
  Alcotest.(check int) "linear" ((2 * 20) + (1 * 5) + 3) (eval e)

let test_infix_builders () =
  let open Ir.Infix in
  match Ir.int 1 + Ir.int 2 with
  | Binop (Add, Int 1, Int 2) -> ()
  | _ -> Alcotest.fail "infix add"

(* ------------------------------------------------------------------ *)
(* Printer *)

let test_printer_c_like () =
  let t = fresh_tensor ~name:"A" ~storage:Param Dtype.F32 [| 4; 4 |] in
  let f =
    {
      fname = "f";
      params = [ Ptensor t ];
      body =
        [
          simple_loop 4 (fun i ->
              [ Store (t, [| Ir.v i; Int 0 |], Binop (Mul, Ir.v i, Int 2)) ]);
        ];
    }
  in
  let s = Printer.func_to_string f in
  List.iter
    (fun frag ->
      if not (String.length s >= String.length frag) then Alcotest.fail "short";
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("contains " ^ frag) true (contains s frag))
    [ "func f"; "for (i"; "A["; "* 2" ]

let test_printer_parallel_and_tags () =
  let i = fresh_var ~name:"p" Index in
  let s =
    Format.asprintf "%a" Printer.pp_stmt
      (For
         {
           v = i; lo = Int 0; hi = Int 8; step = Int 1; body = [ Barrier ];
           parallel = true; merge_tag = Some 7;
         })
  in
  Alcotest.(check bool) "parallel_for" true
    (String.length s > 0 && String.sub s 0 12 = "parallel_for");
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "tag shown" true (contains s "mergeable #7")

(* ------------------------------------------------------------------ *)
(* Checker *)

let test_check_accepts_valid () =
  let t = fresh_tensor ~name:"T" ~storage:Param Dtype.F32 [| 8 |] in
  let f =
    {
      fname = "ok";
      params = [ Ptensor t ];
      body = [ simple_loop 8 (fun i -> [ Store (t, [| Ir.v i |], Float 1.) ]) ];
    }
  in
  Alcotest.(check bool) "ok" true (Result.is_ok (Check.check_func ~known_funcs:[] f))

let test_check_unbound_var () =
  let t = fresh_tensor ~storage:Param Dtype.F32 [| 8 |] in
  let ghost = fresh_var Index in
  let f =
    { fname = "bad"; params = [ Ptensor t ];
      body = [ Store (t, [| Ir.v ghost |], Float 0.) ] }
  in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Check.check_func ~known_funcs:[] f))

let test_check_rank_mismatch () =
  let t = fresh_tensor ~storage:Param Dtype.F32 [| 2; 2 |] in
  let f =
    { fname = "bad"; params = [ Ptensor t ]; body = [ Store (t, [| Int 0 |], Float 0.) ] }
  in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Check.check_func ~known_funcs:[] f))

let test_check_local_needs_alloc () =
  let t = fresh_tensor ~storage:Local Dtype.F32 [| 2 |] in
  let f =
    { fname = "bad"; params = []; body = [ Store (t, [| Int 0 |], Float 0.) ] }
  in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Check.check_func ~known_funcs:[] f));
  let ok = { f with body = Alloc t :: f.body } in
  Alcotest.(check bool) "alloc fixes" true
    (Result.is_ok (Check.check_func ~known_funcs:[] ok))

let test_check_intrinsic_arity () =
  let t = fresh_tensor ~storage:Param Dtype.F32 [| 4 |] in
  let bad =
    { fname = "bad"; params = [ Ptensor t ];
      body = [ Call ("zero", [ Addr (t, [| Int 0 |]) ]) ] }
  in
  Alcotest.(check bool) "bad arity" true
    (Result.is_error (Check.check_func ~known_funcs:[] bad));
  let ok =
    { bad with body = [ Call ("zero", [ Addr (t, [| Int 0 |]); Int 4 ]) ] }
  in
  Alcotest.(check bool) "ok arity" true (Result.is_ok (Check.check_func ~known_funcs:[] ok))

let test_check_unknown_call () =
  let f = { fname = "bad"; params = []; body = [ Call ("mystery", []) ] } in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Check.check_func ~known_funcs:[] f));
  Alcotest.(check bool) "known sibling ok" true
    (Result.is_ok (Check.check_func ~known_funcs:[ ("mystery", 0) ] f))

let test_check_module_entry () =
  let m = { funcs = []; entry = "nope"; init = None; globals = [] } in
  Alcotest.(check bool) "missing entry" true (Result.is_error (Check.check_module m))

(* ------------------------------------------------------------------ *)
(* Visitors *)

let test_visit_map_expr () =
  let e = Binop (Add, Int 1, Binop (Mul, Int 2, Int 3)) in
  (* replace every Int with Int 0 *)
  let e' = Visit.map_expr (fun e -> match e with Int _ -> Int 0 | e -> e) e in
  match e' with
  | Binop (Add, Int 0, Binop (Mul, Int 0, Int 0)) -> ()
  | _ -> Alcotest.fail "rewrite failed"

let test_visit_tensors_used_and_written () =
  let a = fresh_tensor ~name:"a" ~storage:Param Dtype.F32 [| 4 |] in
  let b = fresh_tensor ~name:"b" ~storage:Param Dtype.F32 [| 4 |] in
  let c = fresh_tensor ~name:"c" ~storage:Local Dtype.F32 [| 4 |] in
  let body =
    [
      Alloc c;
      simple_loop 4 (fun i ->
          [ Store (c, [| Ir.v i |], Load (a, [| Ir.v i |])) ]);
      Call ("copy", [ Addr (b, [| Int 0 |]); Addr (c, [| Int 0 |]); Int 4 ]);
    ]
  in
  let used = Visit.tensors_used body in
  Alcotest.(check int) "three used" 3 (List.length used);
  let written = Visit.tensors_written body in
  (* c stored; b and c address-taken in the call *)
  Alcotest.(check bool) "c written" true (List.exists (tensor_equal c) written);
  Alcotest.(check bool) "b written (addr)" true (List.exists (tensor_equal b) written);
  Alcotest.(check bool) "a not written" false
    (List.exists (tensor_equal a) (Visit.tensors_written [ List.nth body 1 ]))

let test_visit_subst_tensor () =
  let a = fresh_tensor ~name:"a" ~storage:Local Dtype.F32 [| 4 |] in
  let b = fresh_tensor ~name:"b" ~storage:Local Dtype.F32 [| 2; 2 |] in
  let body =
    [ Alloc a; simple_loop 4 (fun i -> [ Store (a, [| Ir.v i |], Float 0.) ]) ]
  in
  let body' =
    Visit.subst_tensor a ~by:b
      ~index:(fun idx -> [| Binop (Div, idx.(0), Int 2); Binop (Mod, idx.(0), Int 2) |])
      body
  in
  let used = Visit.tensors_used body' in
  Alcotest.(check bool) "a gone" false (List.exists (tensor_equal a) used);
  Alcotest.(check bool) "b present" true (List.exists (tensor_equal b) used)

let test_intrinsics_registry () =
  Alcotest.(check int) "brgemm arity" 9 Intrinsic.brgemm.arity;
  Alcotest.(check bool) "lookup" true (Intrinsic.lookup "copy" <> None);
  Alcotest.(check bool) "unknown" true (Intrinsic.lookup "nope" = None)

let () =
  Alcotest.run "gc_tensor_ir"
    [
      ( "ir",
        [
          Alcotest.test_case "numel/bytes" `Quick test_tensor_numel_bytes;
          Alcotest.test_case "bad dims" `Quick test_fresh_tensor_rejects_bad_dims;
          Alcotest.test_case "linear index" `Quick test_linear_index;
          Alcotest.test_case "infix" `Quick test_infix_builders;
        ] );
      ( "printer",
        [
          Alcotest.test_case "c-like" `Quick test_printer_c_like;
          Alcotest.test_case "parallel + tags" `Quick test_printer_parallel_and_tags;
        ] );
      ( "check",
        [
          Alcotest.test_case "accepts valid" `Quick test_check_accepts_valid;
          Alcotest.test_case "unbound var" `Quick test_check_unbound_var;
          Alcotest.test_case "rank mismatch" `Quick test_check_rank_mismatch;
          Alcotest.test_case "local needs alloc" `Quick test_check_local_needs_alloc;
          Alcotest.test_case "intrinsic arity" `Quick test_check_intrinsic_arity;
          Alcotest.test_case "unknown call" `Quick test_check_unknown_call;
          Alcotest.test_case "module entry" `Quick test_check_module_entry;
        ] );
      ( "visit",
        [
          Alcotest.test_case "map_expr" `Quick test_visit_map_expr;
          Alcotest.test_case "tensors used/written" `Quick test_visit_tensors_used_and_written;
          Alcotest.test_case "subst tensor" `Quick test_visit_subst_tensor;
          Alcotest.test_case "intrinsics" `Quick test_intrinsics_registry;
        ] );
    ]
