(* Unit tests for the Graph IR optimization passes. Each pass is tested
   both structurally (what it rewrites) and semantically (the rewritten
   graph computes the same function, checked with the reference
   evaluator). *)

open Gc_tensor
open Gc_graph_ir
open Gc_graph_passes

let sh = Shape.of_list
let machine = Gc_microkernel.Machine.xeon_8358

let semantics_preserved ?(rtol = 1e-4) ?(atol = 1e-5) g g' bindings =
  let r = Reference.run g bindings and r' = Reference.run g' bindings in
  List.for_all2 (Tensor.allclose ~rtol ~atol) r r'

(* ------------------------------------------------------------------ *)
(* Decompose *)

let test_decompose_removes_complex () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 4; 6 ]) in
  let y = Builder.softmax b ~axis:1 (Builder.gelu b (Builder.sigmoid b x)) in
  let g = Builder.finalize b ~outputs:[ y ] in
  let g' = Decompose.run g in
  Alcotest.(check bool) "no complex left" true
    (List.for_all (fun (op : Op.t) -> not (Op_kind.is_complex op.kind)) g'.ops);
  let xv = Tensor.random ~seed:1 Dtype.F32 (sh [ 4; 6 ]) in
  Alcotest.(check bool) "semantics" true (semantics_preserved g g' [ (x, xv) ])

let test_decompose_quantize_exact () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 16 ]) in
  let y = Builder.quantize b ~scale:0.1 ~zp:5 Dtype.U8 x in
  let g = Builder.finalize b ~outputs:[ y ] in
  let g' = Decompose.run g in
  let xv = Tensor.random ~seed:2 ~lo:(-2.) ~hi:20. Dtype.F32 (sh [ 16 ]) in
  let r = Reference.run g [ (x, xv) ] and r' = Reference.run g' [ (x, xv) ] in
  Alcotest.(check bool) "bit exact" true (Tensor.equal (List.hd r) (List.hd r'))

let test_decompose_keep_softmax () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 4; 6 ]) in
  let y = Builder.softmax b ~axis:1 x in
  let g = Builder.finalize b ~outputs:[ y ] in
  let kept = Decompose.run ~keep_softmax:true g in
  Alcotest.(check int) "softmax kept whole" 1 (Graph.op_count kept);
  (* non-last-axis softmax is decomposed even when kept is requested *)
  let b2 = Builder.create () in
  let x2 = Builder.input b2 Dtype.F32 (sh [ 4; 6 ]) in
  let y2 = Builder.softmax b2 ~axis:0 x2 in
  let g2 = Builder.finalize b2 ~outputs:[ y2 ] in
  let kept2 = Decompose.run ~keep_softmax:true g2 in
  Alcotest.(check bool) "axis 0 decomposed" true (Graph.op_count kept2 > 1)

let test_decompose_batchnorm_semantics () =
  let b = Builder.create () in
  let c = 4 in
  let x = Builder.input b Dtype.F32 (sh [ 3; c ]) in
  let mk seed = Builder.const b (Tensor.random ~seed ~lo:0.5 ~hi:2. Dtype.F32 (sh [ c ])) in
  let y =
    Builder.batchnorm_inference b ~epsilon:1e-5 ~x ~gamma:(mk 1) ~beta:(mk 2)
      ~mean:(mk 3) ~variance:(mk 4)
  in
  let g = Builder.finalize b ~outputs:[ y ] in
  let g' = Decompose.run g in
  let xv = Tensor.random ~seed:5 Dtype.F32 (sh [ 3; c ]) in
  Alcotest.(check bool) "semantics" true (semantics_preserved g g' [ (x, xv) ])

let test_decompose_layernorm_semantics () =
  let b = Builder.create () in
  let c = 6 in
  let x = Builder.input b Dtype.F32 (sh [ 4; c ]) in
  let gamma = Builder.const b (Tensor.random ~seed:1 ~lo:0.5 ~hi:1.5 Dtype.F32 (sh [ c ])) in
  let beta = Builder.const b (Tensor.random ~seed:2 Dtype.F32 (sh [ c ])) in
  let y = Builder.layernorm b ~epsilon:1e-5 ~x ~gamma ~beta in
  let g = Builder.finalize b ~outputs:[ y ] in
  let g' = Decompose.run g in
  Alcotest.(check bool) "decomposed" true (Graph.op_count g' > 5);
  let xv = Tensor.random ~seed:3 ~lo:(-2.) ~hi:2. Dtype.F32 (sh [ 4; c ]) in
  Alcotest.(check bool) "semantics" true (semantics_preserved g g' [ (x, xv) ])

let test_fusion_reduction_escape_trimmed () =
  (* a reduction whose result is also consumed outside the chain must not
     be fused (the post#3 scheduler cannot export per-row accumulators) *)
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 4; 8 ]) in
  let w = Builder.input b ~const:true Dtype.F32 (sh [ 8; 8 ]) in
  let h = Builder.matmul b x w in
  let r = Builder.reduce b Max ~axis:1 ~keepdims:true h in
  let inside = Builder.sub b h r in
  (* r escapes: it is also a graph output *)
  let g = Builder.finalize b ~outputs:[ inside; r ] in
  let fg =
    Fusion.run ~machine ~params:(Hashtbl.create 4) (Const_prop.mark g) ~init:None
  in
  let tunable = List.find (fun (f : Gc_lowering.Fused_op.t) -> f.tunable <> None) fg.fused in
  let fused_reduce =
    List.exists
      (fun (gp : Gc_lowering.Fused_op.post_group) ->
        List.exists
          (fun (op : Op.t) -> match op.kind with Reduce _ -> true | _ -> false)
          gp.g_ops)
      tunable.post_groups
  in
  Alcotest.(check bool) "escaped reduction not fused" false fused_reduce;
  (* and the graph still computes correctly end to end *)
  let xv = Tensor.random ~seed:4 Dtype.F32 (sh [ 4; 8 ]) in
  let wv = Tensor.random ~seed:5 Dtype.F32 (sh [ 8; 8 ]) in
  let compiled = Core.compile g in
  let got = Core.execute compiled [ (x, xv); (w, wv) ] in
  let expect = Reference.run g [ (x, xv); (w, wv) ] in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "matches" true (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 a b))
    got expect

(* ------------------------------------------------------------------ *)
(* Const fold / CSE / DCE *)

let test_const_fold () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 2 ]) in
  let c1 = Builder.scalar_const b 3. in
  let c2 = Builder.scalar_const b 4. in
  let s = Builder.add b c1 c2 in
  (* s is compile-time computable *)
  let y = Builder.mul b x s in
  let g = Builder.finalize b ~outputs:[ y ] in
  let g' = Const_fold.run g in
  Alcotest.(check int) "one op left" 1 (Graph.op_count g');
  let xv = Tensor.of_float_list Dtype.F32 (sh [ 2 ]) [ 1.; 2. ] in
  match Reference.run g' [ (x, xv) ] with
  | [ out ] ->
      Alcotest.(check (list (float 0.))) "x*7" [ 7.; 14. ]
        (Array.to_list (Tensor.to_float_array out))
  | _ -> Alcotest.fail "one output"

let test_cse_merges_duplicates () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 4 ]) in
  let r1 = Builder.relu b x in
  let r2 = Builder.relu b x in
  let y = Builder.add b r1 r2 in
  let g = Builder.finalize b ~outputs:[ y ] in
  let g' = Cse.run g in
  Alcotest.(check int) "relu deduped" 2 (Graph.op_count g');
  let xv = Tensor.random ~seed:6 Dtype.F32 (sh [ 4 ]) in
  Alcotest.(check bool) "semantics" true (semantics_preserved g g' [ (x, xv) ])

let test_cse_respects_attrs () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 4 ]) in
  let c1 = Builder.clip b ~lo:0. ~hi:1. x in
  let c2 = Builder.clip b ~lo:0. ~hi:2. x in
  let y = Builder.add b c1 c2 in
  let g = Builder.finalize b ~outputs:[ y ] in
  let g' = Cse.run g in
  Alcotest.(check int) "different attrs kept" 3 (Graph.op_count g')

let test_dce_removes_dead () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 4 ]) in
  let y = Builder.relu b x in
  let _dead = Builder.exp b (Builder.tanh b x) in
  let g = Builder.finalize b ~outputs:[ y ] in
  let g' = Dce.run g in
  Alcotest.(check int) "only live op" 1 (Graph.op_count g')

(* ------------------------------------------------------------------ *)
(* Low precision *)

let int8_island ?(zp = 7) () =
  let b = Builder.create () in
  let xq = Builder.input b Dtype.U8 (sh [ 4; 8 ]) in
  let wq = Builder.input b ~const:true Dtype.S8 (sh [ 8; 5 ]) in
  let xf = Builder.dequantize b ~scale:0.1 ~zp xq in
  let wf = Builder.dequantize b ~scale:0.05 ~zp:0 wq in
  let y = Builder.matmul b xf wf in
  let g = Builder.finalize b ~outputs:[ y ] in
  (g, xq, wq)

let test_low_precision_rewrites () =
  let g, xq, wq = int8_island () in
  let g' = Low_precision.run g in
  (* the fp32 matmul is gone; an int8 matmul exists *)
  let int8_mm =
    List.find_opt
      (fun (op : Op.t) ->
        op.kind = Op_kind.Matmul
        && Dtype.equal (List.hd op.inputs).Logical_tensor.dtype Dtype.U8)
      g'.ops
  in
  Alcotest.(check bool) "int8 matmul" true (int8_mm <> None);
  (* the compensation reduce over the weight exists (zp <> 0) *)
  Alcotest.(check bool) "compensation" true
    (List.exists
       (fun (op : Op.t) -> match op.kind with Reduce _ -> true | _ -> false)
       g'.ops);
  let xv = Tensor.random ~seed:7 ~lo:0. ~hi:60. Dtype.U8 (sh [ 4; 8 ]) in
  let wv = Tensor.random ~seed:8 ~lo:(-50.) ~hi:50. Dtype.S8 (sh [ 8; 5 ]) in
  Alcotest.(check bool) "semantics" true
    (semantics_preserved ~rtol:1e-4 ~atol:1e-4 g g' [ (xq, xv); (wq, wv) ])

let test_low_precision_symmetric_no_compensation () =
  let g, _, _ = int8_island ~zp:0 () in
  let g' = Low_precision.run g in
  Alcotest.(check bool) "no reduce needed" false
    (List.exists
       (fun (op : Op.t) -> match op.kind with Reduce _ -> true | _ -> false)
       g'.ops)

let test_low_precision_skips_nonzero_weight_zp () =
  let b = Builder.create () in
  let xq = Builder.input b Dtype.U8 (sh [ 2; 4 ]) in
  let wq = Builder.input b ~const:true Dtype.S8 (sh [ 4; 3 ]) in
  let xf = Builder.dequantize b ~scale:0.1 ~zp:3 xq in
  let wf = Builder.dequantize b ~scale:0.05 ~zp:2 wq in
  (* weight zp <> 0: not convertible *)
  let y = Builder.matmul b xf wf in
  let g = Builder.finalize b ~outputs:[ y ] in
  let g' = Low_precision.run g in
  Alcotest.(check bool) "fp32 matmul kept" true
    (List.exists
       (fun (op : Op.t) ->
         op.kind = Op_kind.Matmul
         && Dtype.equal (List.hd op.inputs).Logical_tensor.dtype Dtype.F32)
       g'.ops)

(* ------------------------------------------------------------------ *)
(* Const prop / split *)

let test_const_prop_marks_and_splits () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 2; 3 ]) in
  let w = Builder.input b ~const:true Dtype.F32 (sh [ 3; 3 ]) in
  (* a constant chain: w2 = relu(w) is runtime-computable once *)
  let w2 = Builder.relu b w in
  let y = Builder.matmul b x w2 in
  let g = Builder.finalize b ~outputs:[ y ] in
  let split = Const_prop.split g in
  (match split.init with
  | Some init ->
      Alcotest.(check int) "relu in init" 1 (Graph.op_count init);
      Alcotest.(check int) "matmul in main" 1 (Graph.op_count split.main)
  | None -> Alcotest.fail "expected init graph");
  Alcotest.(check bool) "w2 marked const" true
    (Logical_tensor.is_constant w2)

let test_const_prop_no_consts_no_init () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 2 ]) in
  let y = Builder.relu b x in
  let g = Builder.finalize b ~outputs:[ y ] in
  let split = Const_prop.split g in
  Alcotest.(check bool) "no init" true (split.init = None)

(* ------------------------------------------------------------------ *)
(* Layout propagation *)

let two_layer_mlp () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 64; 32 ]) in
  let w1 = Builder.input b ~const:true Dtype.F32 (sh [ 32; 64 ]) in
  let w2 = Builder.input b ~const:true Dtype.F32 (sh [ 64; 16 ]) in
  let h = Builder.matmul b x w1 in
  let y = Builder.matmul b h w2 in
  (Builder.finalize b ~outputs:[ y ], x, w1, w2, h, y)

let test_layout_prop_prepacks_weights () =
  let g, _, _, _, _, _ = two_layer_mlp () in
  let g = Const_prop.mark g in
  let r = Layout_prop.run ~machine g in
  (* reorder ops were inserted for both weights *)
  let reorders =
    List.filter (fun (op : Op.t) -> op.kind = Op_kind.Reorder) r.graph.ops
  in
  Alcotest.(check int) "two prepacks" 2 (List.length reorders);
  List.iter
    (fun (op : Op.t) ->
      Alcotest.(check bool) "prepack is runtime const" true
        (Logical_tensor.is_constant (Op.output op)))
    reorders

let test_layout_prop_blocks_intermediate () =
  let g, _, _, _, h, y = two_layer_mlp () in
  let g = Const_prop.mark g in
  let _ = Layout_prop.run ~machine g in
  Alcotest.(check bool) "intermediate blocked" true (Layout.is_blocked h.layout);
  Alcotest.(check bool) "graph output stays plain" true (Layout.is_plain y.layout)

let test_layout_prop_activations_off () =
  let g, _, _, _, h, _ = two_layer_mlp () in
  let g = Const_prop.mark g in
  let _ = Layout_prop.run ~propagate_activations:false ~machine g in
  Alcotest.(check bool) "intermediate stays plain" true (Layout.is_plain h.layout)

let test_layout_prop_records_params () =
  let g, _, _, _, _, _ = two_layer_mlp () in
  let r = Layout_prop.run ~machine g in
  Alcotest.(check int) "params for both matmuls" 2 (Hashtbl.length r.params)

(* ------------------------------------------------------------------ *)
(* Fusion *)

let fused_of g =
  let g = Const_prop.mark g in
  let params = Hashtbl.create 8 in
  Fusion.run ~machine ~params g ~init:None

let test_fusion_matmul_relu_chain () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 8; 8 ]) in
  let w = Builder.input b ~const:true Dtype.F32 (sh [ 8; 8 ]) in
  let y = Builder.relu b (Builder.matmul b x w) in
  let g = Builder.finalize b ~outputs:[ y ] in
  let fg = fused_of g in
  Alcotest.(check int) "one fused op" 1 (List.length fg.fused);
  let f = List.hd fg.fused in
  Alcotest.(check bool) "has tunable" true (f.tunable <> None);
  Alcotest.(check int) "one post group" 1 (List.length f.post_groups)

let test_fusion_stops_at_multiuse () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 8; 8 ]) in
  let w = Builder.input b ~const:true Dtype.F32 (sh [ 8; 8 ]) in
  let h = Builder.matmul b x w in
  (* h used twice: relu cannot be grown past it because h itself is
     multi-consumer *)
  let y1 = Builder.relu b h in
  let y2 = Builder.exp b h in
  let g = Builder.finalize b ~outputs:[ Builder.add b y1 y2 ] in
  let fg = fused_of g in
  let f = List.find (fun (f : Gc_lowering.Fused_op.t) -> f.tunable <> None) fg.fused in
  Alcotest.(check bool) "matmul fused alone or with closed region" true
    (List.length fg.fused >= 2);
  ignore f

let test_fusion_reduction_limits () =
  (* a graph with 3 reductions in a row exceeds max_reductions=2 *)
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 2; 4; 8 ]) in
  let w = Builder.input b Dtype.F32 (sh [ 2; 8; 8 ]) in
  let h = Builder.matmul b x w in
  let s = Builder.softmax b ~axis:2 h in
  let r3 = Builder.reduce b Max ~axis:2 ~keepdims:true s in
  let g = Builder.finalize b ~outputs:[ r3 ] in
  let g = Decompose.run g in
  let fg = fused_of g in
  let tunable = List.find (fun (f : Gc_lowering.Fused_op.t) -> f.tunable <> None) fg.fused in
  let n_red =
    List.length
      (List.filter
         (fun (op : Op.t) -> match op.kind with Reduce _ -> true | _ -> false)
         (List.concat_map (fun (gp : Gc_lowering.Fused_op.post_group) -> gp.g_ops) tunable.post_groups))
  in
  Alcotest.(check bool) "at most 2 reductions fused" true (n_red <= 2)

let test_fusion_fine_off_isolates_ops () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 8; 8 ]) in
  let w = Builder.input b ~const:true Dtype.F32 (sh [ 8; 8 ]) in
  let y = Builder.relu b (Builder.matmul b x w) in
  let g = Builder.finalize b ~outputs:[ y ] in
  let g = Const_prop.mark g in
  let fg = Fusion.run ~fine:false ~machine ~params:(Hashtbl.create 4) g ~init:None in
  Alcotest.(check int) "two fused ops" 2 (List.length fg.fused)

(* ------------------------------------------------------------------ *)
(* Coarse fusion *)

let test_coarse_tags_batched_pair () =
  let built = Gc_workloads.Mha.build_f32 ~batch:2 ~seq:8 ~hidden:32 ~heads:2 () in
  let fg = Pipeline.run (Pipeline.default ~machine ()) built.graph in
  let tagged = List.filter (fun (f : Gc_lowering.Fused_op.t) -> f.merge_tag <> None) fg.fused in
  Alcotest.(check bool) "two tagged" true (List.length tagged >= 2);
  match tagged with
  | a :: b :: _ -> Alcotest.(check bool) "same tag" true (a.merge_tag = b.merge_tag)
  | _ -> ()

let test_coarse_respects_ownership () =
  (* 2-D merge requires equal m; build two matmuls with different m via a
     transpose in between: no merge must happen *)
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 16; 8 ]) in
  let w1 = Builder.input b ~const:true Dtype.F32 (sh [ 8; 24 ]) in
  let w2 = Builder.input b ~const:true Dtype.F32 (sh [ 16; 8 ]) in
  let h = Builder.matmul b x w1 in
  let ht = Builder.transpose b ~perm:[ 1; 0 ] h in
  let y = Builder.matmul b ht w2 in
  let g = Builder.finalize b ~outputs:[ y ] in
  let fg = Pipeline.run (Pipeline.default ~machine ()) g in
  let tunables = List.filter (fun (f : Gc_lowering.Fused_op.t) -> f.tunable <> None) fg.fused in
  let tags = List.filter_map (fun (f : Gc_lowering.Fused_op.t) -> f.merge_tag) tunables in
  Alcotest.(check bool) "no shared tag across different m" true
    (match tags with a :: b :: _ -> a <> b | _ -> true)

(* ------------------------------------------------------------------ *)
(* Pipeline presets *)

let test_pipeline_presets_differ () =
  let built = Gc_workloads.Mha.build_f32 ~batch:2 ~seq:8 ~hidden:32 ~heads:2 () in
  let full = Pipeline.run (Pipeline.default ~machine ()) built.graph in
  let base = Pipeline.run (Pipeline.onednn_primitives ~machine ()) built.graph in
  (* the baseline cannot fuse softmax: its fused-op count is larger *)
  Alcotest.(check bool) "baseline has more partitions" true
    (List.length base.fused > List.length full.fused)

let () =
  Alcotest.run "gc_graph_passes"
    [
      ( "decompose",
        [
          Alcotest.test_case "removes complex" `Quick test_decompose_removes_complex;
          Alcotest.test_case "quantize exact" `Quick test_decompose_quantize_exact;
          Alcotest.test_case "keep softmax" `Quick test_decompose_keep_softmax;
          Alcotest.test_case "batchnorm" `Quick test_decompose_batchnorm_semantics;
          Alcotest.test_case "layernorm" `Quick test_decompose_layernorm_semantics;
        ] );
      ( "fold/cse/dce",
        [
          Alcotest.test_case "const fold" `Quick test_const_fold;
          Alcotest.test_case "cse merges" `Quick test_cse_merges_duplicates;
          Alcotest.test_case "cse respects attrs" `Quick test_cse_respects_attrs;
          Alcotest.test_case "dce" `Quick test_dce_removes_dead;
        ] );
      ( "low_precision",
        [
          Alcotest.test_case "rewrites" `Quick test_low_precision_rewrites;
          Alcotest.test_case "symmetric" `Quick test_low_precision_symmetric_no_compensation;
          Alcotest.test_case "weight zp guard" `Quick test_low_precision_skips_nonzero_weight_zp;
        ] );
      ( "const_prop",
        [
          Alcotest.test_case "marks and splits" `Quick test_const_prop_marks_and_splits;
          Alcotest.test_case "no consts no init" `Quick test_const_prop_no_consts_no_init;
        ] );
      ( "layout_prop",
        [
          Alcotest.test_case "prepacks weights" `Quick test_layout_prop_prepacks_weights;
          Alcotest.test_case "blocks intermediate" `Quick test_layout_prop_blocks_intermediate;
          Alcotest.test_case "activations off" `Quick test_layout_prop_activations_off;
          Alcotest.test_case "records params" `Quick test_layout_prop_records_params;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "matmul+relu chain" `Quick test_fusion_matmul_relu_chain;
          Alcotest.test_case "stops at multiuse" `Quick test_fusion_stops_at_multiuse;
          Alcotest.test_case "reduction limits" `Quick test_fusion_reduction_limits;
          Alcotest.test_case "fine off" `Quick test_fusion_fine_off_isolates_ops;
          Alcotest.test_case "reduction escape trimmed" `Quick test_fusion_reduction_escape_trimmed;
        ] );
      ( "coarse_fusion",
        [
          Alcotest.test_case "tags batched pair" `Quick test_coarse_tags_batched_pair;
          Alcotest.test_case "respects ownership" `Quick test_coarse_respects_ownership;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "presets differ" `Quick test_pipeline_presets_differ ] );
    ]
