test/test_perfsim.ml: Alcotest Core Dtype Float Gc_baseline Gc_perfsim Gc_workloads Heuristic Machine Pipeline Sim
