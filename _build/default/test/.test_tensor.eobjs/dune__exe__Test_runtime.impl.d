test/test_runtime.ml: Alcotest Array Buffer Dtype Engine Fun Gc_runtime Gc_tensor Gc_tensor_ir Interp Ir List Parallel Printf
