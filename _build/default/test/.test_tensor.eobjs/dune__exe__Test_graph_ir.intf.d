test/test_graph_ir.mli:
