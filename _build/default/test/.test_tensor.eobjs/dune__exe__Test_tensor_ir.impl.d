test/test_tensor_ir.ml: Alcotest Array Check Dtype Format Gc_tensor Gc_tensor_ir Intrinsic Ir List Printer Result String Visit
