test/test_graph_passes.mli:
