test/test_tir_passes.mli:
