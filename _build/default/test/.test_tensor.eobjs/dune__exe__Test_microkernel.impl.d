test/test_microkernel.ml: Alcotest Array Brgemm Buffer Dtype Float Gc_microkernel Gc_tensor List Machine Printf QCheck QCheck_alcotest Ref_ops Shape Tensor Ukernel_cost
