test/test_tensor_ir.mli:
