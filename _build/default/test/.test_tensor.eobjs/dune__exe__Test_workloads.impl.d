test/test_workloads.ml: Alcotest Core Dtype Float Gc_baseline Gc_graph_ir Gc_tensor Gc_workloads Graph List Logical_tensor Op Op_kind Ref_ops Reference Result Shape Tensor
