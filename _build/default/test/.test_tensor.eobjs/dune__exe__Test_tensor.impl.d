test/test_tensor.ml: Alcotest Array Buffer Dtype Float Gc_tensor Hashtbl Layout List Printf QCheck QCheck_alcotest Ref_ops Reorder Shape Stdlib Tensor
