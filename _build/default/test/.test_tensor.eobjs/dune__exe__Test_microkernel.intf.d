test/test_microkernel.mli:
