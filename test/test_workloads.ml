(* Tests for the Table 1 workload builders and the oneDNN-primitives-style
   baseline API. *)

open Gc_tensor
open Gc_graph_ir

let sh = Shape.of_list

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let test_table1_specs () =
  let open Gc_workloads.Table1 in
  Alcotest.(check (list int)) "mlp1 widths" [ 13; 512; 256; 128 ] mlp_1.hidden;
  Alcotest.(check (list int)) "mlp2 widths" [ 479; 1024; 1024; 512; 256; 1 ] mlp_2.hidden;
  Alcotest.(check int) "mha3 seq" 384 mha_3.seq_len;
  Alcotest.(check int) "mha4 heads" 16 mha_4.heads;
  Alcotest.(check int) "2 mlp specs" 2 (List.length all_mlp);
  Alcotest.(check int) "4 mha specs" 4 (List.length all_mha);
  (* 24 MHA tests as the paper says: 4 specs x 3 batches x 2 dtypes *)
  let n_tests =
    2 * List.fold_left (fun a (s : mha_spec) -> a + List.length s.mha_batches) 0 all_mha
  in
  Alcotest.(check int) "24 MHA tests" 24 n_tests

(* ------------------------------------------------------------------ *)
(* MLP builder *)

let test_mlp_f32_structure () =
  let built = Gc_workloads.Mlp.build_f32 ~batch:8 ~hidden:[ 13; 32; 16 ] () in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  (* 2 matmuls + 1 relu (no relu after last layer) *)
  Alcotest.(check int) "op count" 3 (Graph.op_count built.graph);
  (* weights marked const *)
  let consts = List.filter Logical_tensor.is_constant built.graph.inputs in
  Alcotest.(check int) "two const weights" 2 (List.length consts);
  (* data covers every input *)
  Alcotest.(check int) "bindings" (List.length built.graph.inputs)
    (List.length built.data)

let test_mlp_int8_structure () =
  let built = Gc_workloads.Mlp.build_int8 ~batch:8 ~hidden:[ 13; 32; 16 ] () in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  (* contains quantize/dequantize complex ops before compilation *)
  Alcotest.(check bool) "has dequantize" true
    (List.exists (fun (op : Op.t) -> op.kind = Op_kind.Dequantize) built.graph.ops);
  (* input is u8, weights s8 *)
  let x = List.hd built.graph.inputs in
  Alcotest.(check bool) "u8 input" true (Dtype.equal x.dtype Dtype.U8)

let test_mlp_deterministic_data () =
  let b1 = Gc_workloads.Mlp.build_f32 ~seed:9 ~batch:4 ~hidden:[ 8; 4 ] () in
  let b2 = Gc_workloads.Mlp.build_f32 ~seed:9 ~batch:4 ~hidden:[ 8; 4 ] () in
  List.iter2
    (fun (_, v1) (_, v2) ->
      Alcotest.(check bool) "same data" true (Tensor.equal v1 v2))
    b1.data b2.data

let test_mlp_rejects_single_layer () =
  Alcotest.(check bool) "raises" true
    (try ignore (Gc_workloads.Mlp.build_f32 ~batch:4 ~hidden:[ 8 ] ()); false
     with Invalid_argument _ -> true)

let test_single_matmul_builder () =
  let built = Gc_workloads.Mlp.build_single_matmul ~relu:true ~dtype:`F32 ~m:4 ~n:6 ~k:5 () in
  match Reference.run built.graph built.data with
  | [ out ] ->
      Alcotest.(check bool) "shape" true (Shape.equal (Tensor.shape out) (sh [ 4; 6 ]));
      Tensor.iter out (fun _ v -> Alcotest.(check bool) "relu applied" true (v >= 0.))
  | _ -> Alcotest.fail "one output"

(* ------------------------------------------------------------------ *)
(* MHA builder *)

let test_mha_f32_structure () =
  let built = Gc_workloads.Mha.build_f32 ~batch:2 ~seq:8 ~hidden:32 ~heads:4 () in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  (* ops: matmul, div, add, softmax, matmul *)
  Alcotest.(check int) "op count" 5 (Graph.op_count built.graph);
  Alcotest.(check bool) "has softmax" true
    (List.exists (fun (op : Op.t) -> op.kind = Op_kind.Softmax) built.graph.ops)

let test_mha_semantics_is_attention () =
  (* with a zero mask and uniform V rows, output rows equal V's value *)
  let batch = 1 and seq = 4 and hidden = 8 and heads = 2 in
  let built = Gc_workloads.Mha.build_f32 ~batch ~seq ~hidden ~heads () in
  let d = hidden / heads in
  let qkv = sh [ batch; heads; seq; d ] in
  (* rebind V to all-ones and mask to zero *)
  let data =
    List.map
      (fun ((lt : Logical_tensor.t), v) ->
        if lt.name = "V" then (lt, Tensor.init Dtype.F32 qkv (fun _ -> 1.))
        else if lt.name = "mask" then
          (lt, Tensor.create Dtype.F32 (Tensor.shape v))
        else (lt, v))
      built.data
  in
  match Reference.run built.graph data with
  | [ out ] ->
      (* softmax rows are a convex combination; V rows all ones -> ones *)
      Tensor.iter out (fun _ v ->
          Alcotest.(check bool) "convex comb of ones" true (Float.abs (v -. 1.) < 1e-5))
  | _ -> Alcotest.fail "one output"

let test_mha_rejects_indivisible_heads () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Gc_workloads.Mha.build_f32 ~batch:1 ~seq:4 ~hidden:30 ~heads:4 ());
       false
     with Invalid_argument _ -> true)

let test_mha_int8_symmetric () =
  let built = Gc_workloads.Mha.build_int8 ~batch:1 ~seq:8 ~hidden:16 ~heads:2 () in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  (* all dequantize ops use zero point 0 (symmetric) *)
  List.iter
    (fun (op : Op.t) ->
      if op.kind = Op_kind.Dequantize then
        Alcotest.(check int) "zp 0" 0 (Gc_graph_ir.Attrs.int_exn op.attrs "zp"))
    built.graph.ops

(* ------------------------------------------------------------------ *)
(* Conv2d workload *)

let test_conv_f32_structure () =
  let built =
    Gc_workloads.Conv.build_f32 ~batch:2 ~height:8 ~width:8 ~channels:3 ~kh:3
      ~kw:3 ~out_channels:8 ~strides:(1, 1) ~pads:(1, 1, 1, 1)
      ~dilations:(1, 1) ()
  in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  Alcotest.(check int) "conv + relu" 2 (Graph.op_count built.graph);
  Alcotest.(check bool) "has conv2d" true
    (List.exists (fun (op : Op.t) -> op.kind = Op_kind.Conv2d) built.graph.ops);
  (* same-pad stride 1: output keeps the spatial extent *)
  let out = List.hd built.graph.outputs in
  Alcotest.(check bool) "output NHWC shape" true
    (Shape.equal out.shape (sh [ 2; 8; 8; 8 ]))

let test_conv_int8_symmetric () =
  let built =
    Gc_workloads.Conv.build_int8 ~batch:1 ~height:6 ~width:6 ~channels:4 ~kh:3
      ~kw:3 ~out_channels:8 ~strides:(1, 1) ~pads:(1, 1, 1, 1)
      ~dilations:(1, 1) ()
  in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  List.iter
    (fun (op : Op.t) ->
      if op.kind = Op_kind.Dequantize then
        Alcotest.(check int) "zp 0" 0 (Gc_graph_ir.Attrs.int_exn op.attrs "zp"))
    built.graph.ops;
  List.iter
    (fun (lt : Logical_tensor.t) ->
      Alcotest.(check bool) "s8 inputs" true (Dtype.equal lt.dtype Dtype.S8))
    built.graph.inputs

(* Run a built workload through the engine (verifier forced on) and the
   reference evaluator; assert every output within [tol]. *)
let golden ~what ~tol graph data =
  Gc_graph_passes.Verify.set_enabled (Some true);
  Fun.protect
    ~finally:(fun () -> Gc_graph_passes.Verify.set_enabled None)
    (fun () ->
      let t = Core.compile graph in
      let got = Core.execute t data in
      let want = Core.reference graph data in
      Alcotest.(check int) (what ^ ": outputs") (List.length want)
        (List.length got);
      List.iteri
        (fun i (g, w) ->
          let d = Tensor.max_abs_diff g w in
          if d >= tol then
            Alcotest.failf "%s: output %d max|diff| %.3e >= %.0e" what i d tol)
        (List.combine got want))

let test_conv_golden_f32 () =
  let built =
    Gc_workloads.Conv.build_f32 ~batch:2 ~height:9 ~width:7 ~channels:5 ~kh:3
      ~kw:2 ~out_channels:7 ~strides:(2, 2) ~pads:(1, 0, 2, 1)
      ~dilations:(1, 1) ()
  in
  golden ~what:"conv f32" ~tol:1e-5 built.graph built.data

let test_conv_golden_int8 () =
  let built =
    Gc_workloads.Conv.build_int8 ~batch:2 ~height:8 ~width:8 ~channels:6 ~kh:3
      ~kw:3 ~out_channels:9 ~strides:(1, 1) ~pads:(1, 1, 1, 1)
      ~dilations:(1, 1) ()
  in
  golden ~what:"conv int8" ~tol:1e-3 built.graph built.data

(* ------------------------------------------------------------------ *)
(* BERT block stack *)

let bert_args = (2, 2, 16, 32, 4) (* layers, batch, seq, hidden, heads *)

let build_bert ~quantized =
  let layers, batch, seq, hidden, heads = bert_args in
  if quantized then
    Gc_workloads.Bert.build_int8 ~layers ~batch ~seq ~hidden ~heads ()
  else Gc_workloads.Bert.build_f32 ~layers ~batch ~seq ~hidden ~heads ()

let test_bert_structure () =
  let built = build_bert ~quantized:false in
  let layers, _, _, _, _ = bert_args in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  let count k =
    List.length
      (List.filter (fun (op : Op.t) -> op.kind = k) built.graph.ops)
  in
  Alcotest.(check int) "layernorms" (2 * layers) (count Op_kind.Layernorm);
  Alcotest.(check int) "softmaxes" layers (count Op_kind.Softmax);
  (* head split for q/k/v plus the fold: four reshapes per layer *)
  Alcotest.(check int) "reshapes" (4 * layers) (count Op_kind.Reshape);
  Alcotest.(check int) "gelus" layers (count Op_kind.Gelu);
  Alcotest.(check int) "bindings" (List.length built.graph.inputs)
    (List.length built.data)

let test_bert_int8_symmetric () =
  let built = build_bert ~quantized:true in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  Alcotest.(check bool) "has quantize" true
    (List.exists (fun (op : Op.t) -> op.kind = Op_kind.Quantize) built.graph.ops);
  List.iter
    (fun (op : Op.t) ->
      if op.kind = Op_kind.Dequantize || op.kind = Op_kind.Quantize then
        Alcotest.(check int) "zp 0" 0 (Gc_graph_ir.Attrs.int_exn op.attrs "zp"))
    built.graph.ops

(* Golden tolerances pinned by measurement (methodology in
   EXPERIMENTS.md): f32 engine-vs-reference 1e-4 (observed 9.5e-7 at this
   size — layernorm/softmax/gelu keep accumulation-order noise at a few
   ulp); int8 1e-2 (requantization boundary flips). *)
let test_bert_golden_f32 () =
  let built = build_bert ~quantized:false in
  golden ~what:"bert f32" ~tol:1e-4 built.graph built.data

let test_bert_golden_int8 () =
  let built = build_bert ~quantized:true in
  golden ~what:"bert int8" ~tol:1e-2 built.graph built.data

let test_bert_deterministic () =
  let b1 = build_bert ~quantized:false and b2 = build_bert ~quantized:false in
  List.iter2
    (fun (_, v1) (_, v2) ->
      Alcotest.(check bool) "same data" true (Tensor.equal v1 v2))
    b1.data b2.data

(* ------------------------------------------------------------------ *)
(* DLRM *)

let build_dlrm ~quantized =
  let build =
    if quantized then Gc_workloads.Dlrm.build_int8 else Gc_workloads.Dlrm.build_f32
  in
  build ~batch:8 ~dense_dim:13 ~bottom:[ 32; 16 ] ~tables:3 ~vocab:50
    ~emb_dim:16 ~top:[ 32; 1 ] ()

let test_dlrm_structure () =
  let built = build_dlrm ~quantized:false in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify built.graph));
  let count k =
    List.length
      (List.filter (fun (op : Op.t) -> op.kind = k) built.graph.ops)
  in
  Alcotest.(check int) "one gather per table" 3 (count Op_kind.Gather);
  Alcotest.(check int) "sigmoid head" 1 (count Op_kind.Sigmoid);
  (* index inputs are s32 and stay inside the tables *)
  List.iter
    (fun ((lt : Logical_tensor.t), v) ->
      if Dtype.equal lt.dtype Dtype.S32 then
        Tensor.iter v (fun _ x ->
            Alcotest.(check bool) "index in [0,vocab)" true
              (x >= 0. && x < 50.)))
    built.data

(* f32 observed exactly 0.0 at this size (relu/sigmoid towers reassociate
   nothing the brgemm hasn't already rounded); int8 pinned at 2e-2 from a
   6.5e-3 observation — see EXPERIMENTS.md. *)
let test_dlrm_golden_f32 () =
  let built = build_dlrm ~quantized:false in
  golden ~what:"dlrm f32" ~tol:1e-4 built.graph built.data

let test_dlrm_golden_int8 () =
  let built = build_dlrm ~quantized:true in
  golden ~what:"dlrm int8" ~tol:2e-2 built.graph built.data

(* ------------------------------------------------------------------ *)
(* Baseline primitive API *)

let test_matmul_primitive_matches_reference () =
  let m = 8 and n = 12 and k = 10 in
  let prim =
    Gc_baseline.Baseline.Matmul_primitive.create
      ~machine:Core.Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k
      ~post_ops:[ Relu ] ()
  in
  let src = Tensor.random ~seed:1 Dtype.F32 (sh [ m; k ]) in
  let weights = Tensor.random ~seed:2 Dtype.F32 (sh [ k; n ]) in
  let out = Gc_baseline.Baseline.Matmul_primitive.execute prim ~src ~weights in
  let expect = Ref_ops.relu (Ref_ops.matmul src weights) in
  Alcotest.(check bool) "matches" true (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 out expect)

let test_matmul_primitive_weight_cache () =
  let m = 4 and n = 4 and k = 4 in
  let prim =
    Gc_baseline.Baseline.Matmul_primitive.create
      ~machine:Core.Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k ()
  in
  let src = Tensor.random ~seed:3 Dtype.F32 (sh [ m; k ]) in
  let w1 = Tensor.random ~seed:4 Dtype.F32 (sh [ k; n ]) in
  let o1 = Gc_baseline.Baseline.Matmul_primitive.execute prim ~src ~weights:w1 in
  (* same weights tensor: cached prepack reused *)
  let o1' = Gc_baseline.Baseline.Matmul_primitive.execute prim ~src ~weights:w1 in
  Alcotest.(check bool) "stable" true (Tensor.equal o1 o1');
  (* new weights: cache invalidated, result changes *)
  let w2 = Tensor.random ~seed:5 Dtype.F32 (sh [ k; n ]) in
  let o2 = Gc_baseline.Baseline.Matmul_primitive.execute prim ~src ~weights:w2 in
  Alcotest.(check bool) "recomputed" false (Tensor.equal o1 o2);
  let expect = Ref_ops.matmul src w2 in
  Alcotest.(check bool) "correct after rebind" true
    (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 o2 expect)

let test_matmul_primitive_binary_post_op () =
  let m = 4 and n = 6 and k = 3 in
  let operand = Tensor.random ~seed:6 Dtype.F32 (sh [ m; n ]) in
  let prim =
    Gc_baseline.Baseline.Matmul_primitive.create
      ~machine:Core.Machine.test_machine ~dtype:Dtype.F32 ~m ~n ~k
      ~post_ops:[ Binary_add operand ] ()
  in
  let src = Tensor.random ~seed:7 Dtype.F32 (sh [ m; k ]) in
  let weights = Tensor.random ~seed:8 Dtype.F32 (sh [ k; n ]) in
  let out = Gc_baseline.Baseline.Matmul_primitive.execute prim ~src ~weights in
  let expect = Ref_ops.add (Ref_ops.matmul src weights) operand in
  Alcotest.(check bool) "binary post-op" true
    (Tensor.allclose ~rtol:1e-4 ~atol:1e-4 out expect)

let () =
  Alcotest.run "gc_workloads"
    [
      ("table1", [ Alcotest.test_case "specs" `Quick test_table1_specs ]);
      ( "mlp",
        [
          Alcotest.test_case "f32 structure" `Quick test_mlp_f32_structure;
          Alcotest.test_case "int8 structure" `Quick test_mlp_int8_structure;
          Alcotest.test_case "deterministic" `Quick test_mlp_deterministic_data;
          Alcotest.test_case "rejects 1 layer" `Quick test_mlp_rejects_single_layer;
          Alcotest.test_case "single matmul" `Quick test_single_matmul_builder;
        ] );
      ( "mha",
        [
          Alcotest.test_case "f32 structure" `Quick test_mha_f32_structure;
          Alcotest.test_case "attention semantics" `Quick test_mha_semantics_is_attention;
          Alcotest.test_case "indivisible heads" `Quick test_mha_rejects_indivisible_heads;
          Alcotest.test_case "int8 symmetric" `Quick test_mha_int8_symmetric;
        ] );
      ( "conv",
        [
          Alcotest.test_case "f32 structure" `Quick test_conv_f32_structure;
          Alcotest.test_case "int8 symmetric" `Quick test_conv_int8_symmetric;
          Alcotest.test_case "golden f32" `Quick test_conv_golden_f32;
          Alcotest.test_case "golden int8" `Quick test_conv_golden_int8;
        ] );
      ( "bert",
        [
          Alcotest.test_case "structure" `Quick test_bert_structure;
          Alcotest.test_case "int8 symmetric" `Quick test_bert_int8_symmetric;
          Alcotest.test_case "deterministic" `Quick test_bert_deterministic;
          Alcotest.test_case "golden f32" `Quick test_bert_golden_f32;
          Alcotest.test_case "golden int8" `Quick test_bert_golden_int8;
        ] );
      ( "dlrm",
        [
          Alcotest.test_case "structure" `Quick test_dlrm_structure;
          Alcotest.test_case "golden f32" `Quick test_dlrm_golden_f32;
          Alcotest.test_case "golden int8" `Quick test_dlrm_golden_int8;
        ] );
      ( "baseline primitive",
        [
          Alcotest.test_case "matches reference" `Quick test_matmul_primitive_matches_reference;
          Alcotest.test_case "weight cache" `Quick test_matmul_primitive_weight_cache;
          Alcotest.test_case "binary post-op" `Quick test_matmul_primitive_binary_post_op;
        ] );
    ]
