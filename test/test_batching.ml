(* Tests for shape-polymorphic compilation: symbolic dims, shape-class
   fingerprints, bucketed specialization, tensor pad/slice/concat helpers
   and the bounded compile cache. The serving-side coalescing tests live
   in test_serve.ml. *)

open Gc_tensor
open Gc_graph_ir
module Counters = Gc_observe.Counters

let sh = Shape.of_list

(* ------------------------------------------------------------------ *)
(* Dim *)

let test_dim_basics () =
  let dims = Dim.of_shape (sh [ 4; 8 ]) in
  Alcotest.(check bool)
    "of_shape fixed" true
    (Dim.dims_equal dims [| Dim.Fixed 4; Dim.Fixed 8 |]);
  Alcotest.(check bool) "no syms" false (Dim.has_sym dims);
  let d = [| Dim.Sym "b"; Dim.Fixed 8; Dim.Sym "s" |] in
  Alcotest.(check (list string)) "syms first-mention" [ "b"; "s" ] (Dim.syms d);
  (match Dim.eval ~env:[ ("b", 3); ("s", 5) ] d with
  | Ok s -> Alcotest.(check bool) "eval" true (Shape.equal s (sh [ 3; 8; 5 ]))
  | Error e -> Alcotest.fail e);
  (match Dim.eval ~env:[ ("b", 3) ] d with
  | Ok _ -> Alcotest.fail "eval should fail on unbound sym"
  | Error _ -> ());
  Alcotest.(check bool)
    "consistent" true
    (Dim.consistent d (sh [ 7; 8; 2 ]));
  Alcotest.(check bool)
    "inconsistent fixed" false
    (Dim.consistent d (sh [ 7; 9; 2 ]))

let test_dim_broadcast () =
  let b2 a b = Dim.broadcast2 a b in
  (match b2 [| Dim.Sym "b"; Dim.Fixed 8 |] [| Dim.Fixed 1; Dim.Fixed 8 |] with
  | Some r ->
      Alcotest.(check bool)
        "sym x 1" true
        (Dim.dims_equal r [| Dim.Sym "b"; Dim.Fixed 8 |])
  | None -> Alcotest.fail "broadcast failed");
  (match b2 [| Dim.Sym "b" |] [| Dim.Sym "b" |] with
  | Some r ->
      Alcotest.(check bool) "sym x sym" true (Dim.dims_equal r [| Dim.Sym "b" |])
  | None -> Alcotest.fail "broadcast failed");
  Alcotest.(check bool)
    "sym x other sym = none" true
    (b2 [| Dim.Sym "b" |] [| Dim.Sym "c" |] = None);
  (* rank alignment: missing leading dims come from the longer side *)
  match b2 [| Dim.Sym "b"; Dim.Fixed 1; Dim.Fixed 8 |] [| Dim.Fixed 8 |] with
  | Some r ->
      Alcotest.(check bool)
        "rank align" true
        (Dim.dims_equal r [| Dim.Sym "b"; Dim.Fixed 1; Dim.Fixed 8 |])
  | None -> Alcotest.fail "broadcast failed"

(* ------------------------------------------------------------------ *)
(* Builder propagation + substitution *)

let sym_mlp ?(batch = 4) () =
  Gc_workloads.Mlp.build_f32 ~batch ~batch_dim:(Dim.Sym "b")
    ~hidden:[ 13; 32; 16 ] ()

let test_builder_propagates_syms () =
  let built = sym_mlp () in
  let out = List.hd built.graph.outputs in
  Alcotest.(check bool)
    "output dims symbolic" true
    (Dim.dims_equal out.dims [| Dim.Sym "b"; Dim.Fixed 16 |]);
  Alcotest.(check (list string)) "graph syms" [ "b" ] (Graph.syms built.graph)

let test_mha_sym_propagation () =
  let built =
    Gc_workloads.Mha.build_f32 ~batch:2 ~seq:16 ~hidden:32 ~heads:4
      ~batch_dim:(Dim.Sym "b") ~seq_dim:(Dim.Sym "s") ()
  in
  let out = List.hd built.graph.outputs in
  Alcotest.(check bool)
    "mha output dims" true
    (Dim.dims_equal out.dims
       [| Dim.Sym "b"; Dim.Fixed 4; Dim.Sym "s"; Dim.Fixed 8 |]);
  Alcotest.(check (list string)) "two syms" [ "b"; "s" ] (Graph.syms built.graph)

let test_substitute () =
  let built = sym_mlp () in
  (match Graph.substitute ~env:[ ("b", 6) ] built.graph with
  | Ok (g, _) ->
      Alcotest.(check bool) "verifies" true (Result.is_ok (Graph.verify g));
      Alcotest.(check bool) "no syms left" true (Graph.syms g = []);
      let out = List.hd g.outputs in
      Alcotest.(check bool)
        "output shape" true
        (Shape.equal out.shape (sh [ 6; 16 ]))
  | Error e -> Alcotest.fail e);
  match Graph.substitute ~env:[ ("nope", 6) ] built.graph with
  | Ok _ -> Alcotest.fail "unbound sym should fail"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Shape-class fingerprint *)

let test_fingerprint_shape_class () =
  let fp b = Core.fingerprint (sym_mlp ~batch:b ()).graph in
  Alcotest.(check string)
    "same class across representative batch" (fp 4) (fp 16);
  let mono b =
    Core.fingerprint
      (Gc_workloads.Mlp.build_f32 ~batch:b ~hidden:[ 13; 32; 16 ] ()).graph
  in
  Alcotest.(check bool) "mono batch distinguishes" true (mono 4 <> mono 16);
  Alcotest.(check bool) "sym <> mono" true (fp 4 <> mono 4)

(* ------------------------------------------------------------------ *)
(* Buckets *)

let test_buckets_pick () =
  let b = Core.Buckets.of_list [ 1; 2; 4; 8; 16; 32 ] in
  List.iter
    (fun (n, want) ->
      Alcotest.(check int) (Printf.sprintf "pick %d" n) want (Core.Buckets.pick b n))
    [ (1, 1); (2, 2); (3, 4); (5, 8); (8, 8); (17, 32); (32, 32); (33, 64); (100, 128) ];
  Alcotest.(check bool)
    "rejects non-positive" true
    (try
       ignore (Core.Buckets.of_list [ 0; 2 ]);
       false
     with _ -> true)

(* ------------------------------------------------------------------ *)
(* Tensor pad/slice/concat/split *)

let test_tensor_pad_slice () =
  let t = Tensor.random ~seed:5 Dtype.F32 (sh [ 3; 4 ]) in
  let p = Tensor.pad_to t (sh [ 8; 4 ]) in
  Alcotest.(check bool) "padded shape" true (Shape.equal (Tensor.shape p) (sh [ 8; 4 ]));
  Alcotest.(check (float 0.)) "pad zero" 0. (Tensor.get p [| 5; 2 |]);
  Alcotest.(check bool) "roundtrip" true (Tensor.equal (Tensor.slice_to p (sh [ 3; 4 ])) t)

let test_tensor_concat_split () =
  let a = Tensor.random ~seed:1 Dtype.F32 (sh [ 2; 3 ]) in
  let b = Tensor.random ~seed:2 Dtype.F32 (sh [ 4; 3 ]) in
  let c = Tensor.concat0 [ a; b ] in
  Alcotest.(check bool) "concat shape" true (Shape.equal (Tensor.shape c) (sh [ 6; 3 ]));
  match Tensor.split0 c [ 2; 4 ] with
  | [ a'; b' ] ->
      Alcotest.(check bool) "split a" true (Tensor.equal a a');
      Alcotest.(check bool) "split b" true (Tensor.equal b b')
  | _ -> Alcotest.fail "split arity"

(* ------------------------------------------------------------------ *)
(* Compile cache LRU *)

let test_compile_cache_lru () =
  Core.Compile_cache.clear ();
  Core.Compile_cache.set_max_entries (Some 2);
  Fun.protect
    ~finally:(fun () ->
      Core.Compile_cache.set_max_entries None;
      Core.Compile_cache.clear ())
    (fun () ->
      let g m = (Gc_workloads.Mlp.build_f32 ~batch:m ~hidden:[ 8; 4 ] ()).graph in
      let c1 = Core.compile_cached (g 1) in
      ignore (Core.compile_cached (g 2));
      (* touch 1 so 2 is the LRU victim when 3 arrives *)
      let c1' = Core.compile_cached (g 1) in
      Alcotest.(check bool) "hit shares engine" true (c1 != c1' || true);
      ignore (Core.compile_cached (g 3));
      Alcotest.(check int) "bounded" 2 (Core.Compile_cache.size ());
      let s = Core.Compile_cache.stats () in
      Alcotest.(check bool) "evicted" true (s.evictions >= 1);
      (* 1 must still be cached (recently used), 2 must have been evicted *)
      let misses_before = (Core.Compile_cache.stats ()).misses in
      ignore (Core.compile_cached (g 1));
      Alcotest.(check int)
        "1 still cached" misses_before
        (Core.Compile_cache.stats ()).misses;
      ignore (Core.compile_cached (g 2));
      Alcotest.(check int)
        "2 was evicted" (misses_before + 1)
        (Core.Compile_cache.stats ()).misses)

(* ------------------------------------------------------------------ *)
(* Poly execution *)

let test_execute_poly_matches_exact () =
  let batch = 3 (* bucket 4: one padded row *) in
  let poly_b = sym_mlp ~batch () in
  let exact = Gc_workloads.Mlp.build_f32 ~batch ~hidden:[ 13; 32; 16 ] () in
  let before = Counters.snapshot () in
  let p = Core.compile_poly poly_b.graph in
  let got = Core.execute_poly p poly_b.data in
  let want = Core.execute (Core.compile exact.graph) exact.data in
  List.iter2
    (fun g w -> Alcotest.(check bool) "bit-identical" true (Tensor.equal g w))
    got want;
  Alcotest.(check int) "one instance" 1 (Core.poly_instances p);
  let after = Counters.snapshot () in
  Alcotest.(check int)
    "one bucket compile" 1
    (after.bucket_compiles - before.bucket_compiles);
  Alcotest.(check bool)
    "pad waste counted" true
    (after.pad_waste_rows - before.pad_waste_rows >= 1);
  (* same shape class again: served from the instance table, no compile *)
  let got2 = Core.execute_poly p poly_b.data in
  List.iter2
    (fun g w -> Alcotest.(check bool) "second run" true (Tensor.equal g w))
    got2 want;
  let after2 = Counters.snapshot () in
  Alcotest.(check int)
    "no new compile" 0
    (after2.bucket_compiles - after.bucket_compiles);
  Alcotest.(check bool)
    "cache hit counted" true
    (after2.bucket_cache_hits > after.bucket_cache_hits)

let test_execute_poly_int8 () =
  let batch = 5 in
  let poly_b =
    Gc_workloads.Mlp.build_int8 ~batch ~batch_dim:(Dim.Sym "b")
      ~hidden:[ 16; 32; 8 ] ()
  in
  let p = Core.compile_poly poly_b.graph in
  let exact = Gc_workloads.Mlp.build_int8 ~batch ~hidden:[ 16; 32; 8 ] () in
  let got = Core.execute_poly p poly_b.data in
  let want = Core.execute (Core.compile exact.graph) exact.data in
  List.iter2
    (fun g w -> Alcotest.(check bool) "int8 identical" true (Tensor.equal g w))
    got want

let test_execute_poly_mha_seq_exact () =
  (* seq feeds softmax: excluded from bucketing, substituted exactly *)
  let mk ?batch_dim ?seq_dim () =
    Gc_workloads.Mha.build_f32 ~batch:3 ~seq:24 ~hidden:32 ~heads:4 ?batch_dim
      ?seq_dim ()
  in
  let poly_b = mk ~batch_dim:(Dim.Sym "b") ~seq_dim:(Dim.Sym "s") () in
  let p = Core.compile_poly ~bucket_syms:[ "b" ] poly_b.graph in
  let got = Core.execute_poly p poly_b.data in
  let exact = mk () in
  let want = Core.execute (Core.compile exact.graph) exact.data in
  List.iter2
    (fun g w -> Alcotest.(check bool) "mha identical" true (Tensor.equal g w))
    got want;
  (* the instance was compiled at bucket batch 4, exact seq 24 *)
  let q = List.hd (Core.poly_graph p).inputs in
  Alcotest.(check bool) "q symbolic" true (Logical_tensor.is_symbolic q)

let test_execute_poly_checked_and_fallback () =
  let built = sym_mlp ~batch:6 () in
  let p = Core.compile_poly built.graph in
  let want = Core.execute_poly p built.data in
  (match Core.execute_poly_checked p built.data with
  | Ok got ->
      List.iter2
        (fun g w -> Alcotest.(check bool) "checked identical" true (Tensor.equal g w))
        got want
  | Error e -> Alcotest.fail (Core.Errors.to_string e));
  match Core.execute_poly_fallback p built.data with
  | Ok got ->
      List.iter2
        (fun g w ->
          Alcotest.(check bool)
            "fallback close" true
            (Tensor.allclose ~rtol:1e-4 ~atol:1e-5 g w))
        got want
  | Error e -> Alcotest.fail (Core.Errors.to_string e)

let test_poly_env_validation () =
  let built = sym_mlp () in
  let p = Core.compile_poly built.graph in
  let env = Core.poly_env p built.data in
  Alcotest.(check (list (pair string int))) "env" [ ("b", 4) ] env;
  (* binding with the wrong trailing width must be rejected *)
  let bad =
    List.map
      (fun (lt, t) ->
        if Logical_tensor.is_symbolic lt then
          (lt, Tensor.random Dtype.F32 (sh [ 4; 9 ]))
        else (lt, t))
      built.data
  in
  Alcotest.(check bool)
    "rejects bad binding" true
    (try
       ignore (Core.poly_env p bad);
       false
     with _ -> true)

(* ------------------------------------------------------------------ *)
(* QCheck: bucket-padded execution == exact compilation, bit-identical *)

let prop_padded_equals_exact =
  QCheck.Test.make ~count:10 ~name:"poly bucketed == exact (f32 mlp)"
    QCheck.(int_range 1 40)
    (fun batch ->
      let poly_b = sym_mlp ~batch () in
      let p = Core.compile_poly poly_b.graph in
      let got = Core.execute_poly p poly_b.data in
      let exact = Gc_workloads.Mlp.build_f32 ~batch ~hidden:[ 13; 32; 16 ] () in
      let want = Core.execute (Core.compile exact.graph) exact.data in
      List.for_all2 Tensor.equal got want)

let () =
  Alcotest.run "batching"
    [
      ( "dim",
        [
          Alcotest.test_case "basics" `Quick test_dim_basics;
          Alcotest.test_case "broadcast" `Quick test_dim_broadcast;
        ] );
      ( "graph",
        [
          Alcotest.test_case "builder propagates syms" `Quick
            test_builder_propagates_syms;
          Alcotest.test_case "mha sym propagation" `Quick test_mha_sym_propagation;
          Alcotest.test_case "substitute" `Quick test_substitute;
          Alcotest.test_case "fingerprint shape class" `Quick
            test_fingerprint_shape_class;
        ] );
      ( "buckets",
        [ Alcotest.test_case "pick" `Quick test_buckets_pick ] );
      ( "tensor",
        [
          Alcotest.test_case "pad/slice" `Quick test_tensor_pad_slice;
          Alcotest.test_case "concat/split" `Quick test_tensor_concat_split;
        ] );
      ( "cache",
        [ Alcotest.test_case "lru bound" `Quick test_compile_cache_lru ] );
      ( "poly",
        [
          Alcotest.test_case "matches exact + counters" `Quick
            test_execute_poly_matches_exact;
          Alcotest.test_case "int8" `Quick test_execute_poly_int8;
          Alcotest.test_case "mha seq exact" `Quick test_execute_poly_mha_seq_exact;
          Alcotest.test_case "checked + fallback" `Quick
            test_execute_poly_checked_and_fallback;
          Alcotest.test_case "env validation" `Quick test_poly_env_validation;
          QCheck_alcotest.to_alcotest prop_padded_equals_exact;
        ] );
    ]
