(* Registry suite: model lifecycle (load / hot-swap / retire), the two
   hot-swap paths (weights-swap on identical fingerprint vs structural
   compile-then-rebind), budget-aware residency (pinned entries survive
   cache pressure; parking + lazy reload round-trips), per-model quota
   shedding, and the churn acceptance test: one tenant served
   continuously while another is loaded / swapped / retired under armed
   model-scoped faults — zero lost tickets, zero double-resolves, and no
   fault class leaking into the undisturbed tenant's outcomes. *)

open Gc_workloads
module Registry = Gc_registry
module Serve = Gc_serve
module Cache = Core.Compile_cache
module Memgov = Gc_tensor.Memgov
module Fault = Gc_faultinject
module Counters = Gc_observe.Counters
module Parallel = Gc_runtime.Parallel

let seq_pool = Parallel.create 1

let compile_config () =
  { (Core.default_config ()) with Core.pool = Some seq_pool }

let serve_config ?(queue_depth = 8) ?(workers = 2) ?(max_retries = 1) () =
  {
    (Serve.default_config ()) with
    Serve.queue_depth;
    workers;
    max_retries;
    default_deadline_ms = None;
    backoff_base_ms = 0.5;
    backoff_cap_ms = 2.;
  }

let mlp ?(seed = 7) ?(batch = 4) ?(hidden = [ 6; 5 ]) () =
  Mlp.build_f32 ~seed ~batch ~hidden ()

let with_registry ?config f =
  (* each test starts from an empty cache so pin/byte assertions are
     about this test's models only *)
  Cache.clear ();
  let reg = Registry.create ?config () in
  Fun.protect
    ~finally:(fun () ->
      Registry.shutdown ~drain_deadline_ms:2000 reg;
      Cache.set_max_bytes None;
      Memgov.set_limit None;
      Cache.clear ())
    (fun () -> f reg)

let load_ok reg ~name (b : Mlp.built) =
  match Registry.load ~config:(compile_config ()) reg ~name b.Mlp.graph with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load %s: %s" name (Core.Errors.to_string e)

let call_ok reg name (b : Mlp.built) =
  match Registry.call reg name b.Mlp.data with
  | Ok outs -> outs
  | Error e -> Alcotest.failf "call %s: %s" name (Core.Errors.to_string e)

let info reg name =
  match Registry.model_info reg name with
  | Some i -> i
  | None -> Alcotest.failf "no model_info for %s" name

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let test_load_call_retire () =
  let b = mlp () in
  with_registry ~config:(serve_config ()) (fun reg ->
      load_ok reg ~name:"m" b;
      Alcotest.(check (option int)) "version" (Some 1) (Registry.version reg "m");
      let outs = call_ok reg "m" b in
      let expect = Core.reference b.Mlp.graph b.Mlp.data in
      List.iter2
        (fun got e ->
          Alcotest.(check bool) "matches reference" true
            (Core.Tensor.allclose ~rtol:2e-3 ~atol:2e-3 got e))
        outs expect;
      (* duplicate live name refused without touching the live model *)
      (match Registry.load ~config:(compile_config ()) reg ~name:"m" b.Mlp.graph
       with
      | Error (Core.Errors.Invalid_input _) -> ()
      | Ok () -> Alcotest.fail "duplicate load accepted"
      | Error e ->
          Alcotest.failf "expected Invalid_input, got %s"
            (Core.Errors.to_string e));
      Alcotest.(check bool) "retire" true (Registry.retire reg "m");
      Alcotest.(check bool) "retire idempotent" false (Registry.retire reg "m");
      (match Registry.call reg "m" b.Mlp.data with
      | Error (Core.Errors.Invalid_input _) -> ()
      | _ -> Alcotest.fail "retired model still callable");
      (* a retired name can be loaded anew *)
      load_ok reg ~name:"m" b;
      ignore (call_ok reg "m" b))

let test_hot_swap_weights_and_structural () =
  let b1 = mlp ~seed:1 () in
  let b2 = mlp ~seed:2 () in
  (* same dims, different weights: identical fingerprint *)
  let b3 = mlp ~seed:3 ~hidden:[ 9; 5 ] () in
  (* structural change *)
  with_registry ~config:(serve_config ()) (fun reg ->
      load_ok reg ~name:"m" b1;
      let key1 = (info reg "m").Registry.mi_cache_key in
      let sw0 = (Counters.snapshot ()).Counters.hot_swaps in
      (match Registry.hot_swap reg ~name:"m" b2.Mlp.graph with
      | Ok () -> ()
      | Error e -> Alcotest.failf "weights swap: %s" (Core.Errors.to_string e));
      Alcotest.(check (option int)) "version bumped" (Some 2)
        (Registry.version reg "m");
      Alcotest.(check string) "weights swap keeps cache key" key1
        (info reg "m").Registry.mi_cache_key;
      let outs = call_ok reg "m" b2 in
      let expect = Core.reference b2.Mlp.graph b2.Mlp.data in
      List.iter2
        (fun got e ->
          Alcotest.(check bool) "new weights visible after swap" true
            (Core.Tensor.allclose ~rtol:2e-3 ~atol:2e-3 got e))
        outs expect;
      (match Registry.hot_swap reg ~name:"m" b3.Mlp.graph with
      | Ok () -> ()
      | Error e -> Alcotest.failf "structural swap: %s" (Core.Errors.to_string e));
      let i = info reg "m" in
      Alcotest.(check (option int)) "version bumped again" (Some 3)
        (Registry.version reg "m");
      Alcotest.(check bool) "structural swap changes cache key" true
        (i.Registry.mi_cache_key <> key1);
      Alcotest.(check bool) "old entry evicted" false (Cache.mem key1);
      ignore (call_ok reg "m" b3);
      Alcotest.(check int) "two hot swaps counted" (sw0 + 2)
        (Counters.snapshot ()).Counters.hot_swaps)

(* ------------------------------------------------------------------ *)
(* Pinned residency (regression: pinned entries are never evicted) *)

let test_pinned_survives_cache_pressure () =
  let b = mlp ~hidden:[ 12; 8 ] () in
  with_registry ~config:(serve_config ()) (fun reg ->
      load_ok reg ~name:"m" b;
      let key = (info reg "m").Registry.mi_cache_key in
      Alcotest.(check bool) "entry pinned" true (Cache.pins key >= 1);
      let st = Cache.stats () in
      Alcotest.(check bool) "resident bytes accounted" true
        (st.Cache.resident_bytes > 0);
      Alcotest.(check bool) "pinned counted in stats" true (st.Cache.pinned >= 1);
      (* a byte bound far below the entry's size must not evict it *)
      Cache.set_max_bytes (Some 1);
      Alcotest.(check bool) "pinned entry survives byte bound" true
        (Cache.mem key);
      Alcotest.(check bool) "evict_key refuses pinned" false
        (Cache.evict_key key);
      (* still serving *)
      ignore (call_ok reg "m" b);
      Cache.set_max_bytes None;
      (* retire releases the pin; now the entry is evictable *)
      Alcotest.(check bool) "retire" true (Registry.retire reg "m");
      Alcotest.(check int) "pin released" 0 (Cache.pins key);
      if Cache.mem key then
        Alcotest.(check bool) "unpinned entry evictable" true
          (Cache.evict_key key))

(* ------------------------------------------------------------------ *)
(* Budget pressure: park + lazy reload round-trip *)

let test_eviction_and_lazy_reload () =
  let models =
    [
      ("a", mlp ~seed:1 ~hidden:[ 16; 8 ] ());
      ("b", mlp ~seed:2 ~hidden:[ 17; 8 ] ());
      ("c", mlp ~seed:3 ~hidden:[ 18; 8 ] ());
    ]
  in
  with_registry ~config:(serve_config ~workers:1 ()) (fun reg ->
      (* size the cache bound for roughly two of the three artifacts *)
      let est (_, (b : Mlp.built)) =
        Core.estimated_bytes (Core.compile ~config:(compile_config ()) b.Mlp.graph)
      in
      let sizes = List.map est models in
      let cap =
        match List.sort (fun x y -> compare y x) sizes with
        | a :: b :: _ -> a + b
        | _ -> assert false
      in
      Cache.set_max_bytes (Some cap);
      let c0 = Counters.snapshot () in
      List.iter (fun (name, b) -> load_ok reg ~name b) models;
      (* three loads under a two-model bound: someone must be parked *)
      let parked, resident =
        List.partition
          (fun (name, _) -> Registry.status_of reg name = Some Registry.Parked)
          models
      in
      Alcotest.(check bool) "at least one model parked" true
        (List.length parked >= 1);
      Alcotest.(check bool) "at least one model resident" true
        (List.length resident >= 1);
      (* every model still serves: parked ones lazily recompile + rebind *)
      for _ = 1 to 3 do
        List.iter (fun (name, b) -> ignore (call_ok reg name b)) models
      done;
      List.iter
        (fun (name, _) ->
          Alcotest.(check bool)
            (name ^ " live after round-robin")
            true
            (match Registry.status_of reg name with
            | Some Registry.Resident | Some Registry.Parked -> true
            | _ -> false))
        models;
      let c1 = Counters.snapshot () in
      Alcotest.(check bool) "parks counted" true
        (c1.Counters.models_parked > c0.Counters.models_parked);
      Alcotest.(check bool) "lazy reloads counted" true
        (c1.Counters.models_reloaded > c0.Counters.models_reloaded);
      Alcotest.(check bool) "evicted bytes counted" true
        (c1.Counters.cache_bytes_evicted > c0.Counters.cache_bytes_evicted))

(* ------------------------------------------------------------------ *)
(* Weighted-fair quota: a flooding tenant is shed over its share while a
   trickling tenant is not starved *)

let test_quota_shedding () =
  let hot = mlp ~seed:1 ~hidden:[ 24; 16 ] () in
  let cold = mlp ~seed:2 ~hidden:[ 7; 5 ] () in
  with_registry ~config:(serve_config ~workers:1 ~queue_depth:4 ~max_retries:0 ())
    (fun reg ->
      load_ok reg ~name:"hot" hot;
      load_ok reg ~name:"cold" cold;
      ignore (call_ok reg "hot" hot);
      ignore (call_ok reg "cold" cold);
      let stop = Atomic.make false in
      let flood =
        Thread.create
          (fun () ->
            let tickets = Queue.create () in
            while not (Atomic.get stop) do
              (match Registry.submit reg "hot" hot.Mlp.data with
              | Ok t -> Queue.push t tickets
              | Error e ->
                  Alcotest.failf "hot submit: %s" (Core.Errors.to_string e));
              Thread.yield ()
            done;
            Queue.iter (fun t -> ignore (Serve.await t)) tickets)
          ()
      in
      let cold_ok = ref 0 in
      for _ = 1 to 10 do
        (match Registry.call reg "cold" cold.Mlp.data with
        | Ok _ -> incr cold_ok
        | Error _ -> ());
        Thread.delay 0.002
      done;
      Atomic.set stop true;
      Thread.join flood;
      let h = (info reg "hot").Registry.mi_serve in
      let c = (info reg "cold").Registry.mi_serve in
      Alcotest.(check bool) "hot flooded" true (h.Serve.hs_submitted > 20);
      Alcotest.(check bool) "hot shed over quota" true (h.Serve.hs_quota_shed > 0);
      Alcotest.(check bool) "cold not starved" true (!cold_ok >= 5);
      let rate (s : Serve.handle_stats) =
        if s.Serve.hs_submitted = 0 then 0.
        else float_of_int s.Serve.hs_shed /. float_of_int s.Serve.hs_submitted
      in
      Alcotest.(check bool) "cold shed rate below hot's" true
        (rate c < rate h))

(* ------------------------------------------------------------------ *)
(* Churn acceptance: serve one tenant continuously while another is
   loaded / hot-swapped / retired under faults armed at the churning
   model. Zero lost tickets, zero double-resolves, and the steady
   tenant never sees a fault-class outcome. *)

let test_concurrent_churn_isolation () =
  let steady = mlp ~seed:10 ~hidden:[ 10; 6 ] () in
  let churn_a = mlp ~seed:11 ~hidden:[ 8; 6 ] () in
  let churn_b = mlp ~seed:12 ~hidden:[ 9; 6 ] () in
  with_registry
    ~config:(serve_config ~workers:2 ~queue_depth:8 ~max_retries:1 ())
    (fun reg ->
      load_ok reg ~name:"steady" steady;
      ignore (call_ok reg "steady" steady);
      let dr0 = Serve.double_resolve_count () in
      Fault.configure ~seed:5 ~slow_ms:2 "worker_death:6@churn,stuck_worker:9@churn";
      Fun.protect ~finally:Fault.clear (fun () ->
          let rounds = 12 in
          let steady_submitted = Atomic.make 0
          and steady_resolved = Atomic.make 0
          and leaks = Atomic.make 0 in
          let stop = Atomic.make false in
          let steady_client =
            Thread.create
              (fun () ->
                while not (Atomic.get stop) do
                  Atomic.incr steady_submitted;
                  (match Registry.call reg "steady" steady.Mlp.data with
                  | Ok _ | Error (Core.Errors.Overloaded _)
                  | Error (Core.Errors.Timeout _) ->
                      Atomic.incr steady_resolved
                  | Error (Core.Errors.Runtime_fault _) ->
                      (* the faults are scoped to "churn" — a fault class
                         here is cross-model leakage *)
                      Atomic.incr steady_resolved;
                      Atomic.incr leaks
                  | Error _ -> Atomic.incr steady_resolved);
                  Thread.yield ()
                done)
              ()
          in
          for i = 1 to rounds do
            let b = if i mod 2 = 0 then churn_a else churn_b in
            (match Registry.load ~config:(compile_config ()) reg ~name:"churn"
                     b.Mlp.graph
             with
            | Ok () -> ()
            | Error e ->
                Alcotest.failf "churn load %d: %s" i (Core.Errors.to_string e));
            (* drive traffic into the faulted model; typed outcomes only *)
            for _ = 1 to 4 do
              match Registry.call reg "churn" b.Mlp.data with
              | Ok _ | Error _ -> ()
            done;
            let b' = if i mod 2 = 0 then churn_b else churn_a in
            (match Registry.hot_swap reg ~name:"churn" b'.Mlp.graph with
            | Ok () -> ()
            | Error e ->
                Alcotest.failf "churn swap %d: %s" i (Core.Errors.to_string e));
            (match Registry.call reg "churn" b'.Mlp.data with
            | Ok _ | Error _ -> ());
            Alcotest.(check bool) "churn retire" true (Registry.retire reg "churn")
          done;
          Atomic.set stop true;
          Thread.join steady_client;
          Alcotest.(check int) "steady tenant: no lost tickets"
            (Atomic.get steady_submitted)
            (Atomic.get steady_resolved);
          Alcotest.(check bool) "steady tenant made progress" true
            (Atomic.get steady_submitted > 10);
          Alcotest.(check int) "no cross-model fault leakage" 0
            (Atomic.get leaks);
          Alcotest.(check int) "no double resolves" 0
            (Serve.double_resolve_count () - dr0);
          (* the registry is still coherent: steady model serves, churn
             name is retired and reloadable *)
          ignore (call_ok reg "steady" steady);
          Alcotest.(check bool) "churn retired" true
            (Registry.status_of reg "churn" = Some Registry.Retired)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "registry"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "load/call/retire" `Quick test_load_call_retire;
          Alcotest.test_case "hot swap paths" `Quick
            test_hot_swap_weights_and_structural;
        ] );
      ( "residency",
        [
          Alcotest.test_case "pinned survives pressure" `Quick
            test_pinned_survives_cache_pressure;
          Alcotest.test_case "eviction + lazy reload" `Quick
            test_eviction_and_lazy_reload;
        ] );
      ( "quota",
        [ Alcotest.test_case "weighted-fair shedding" `Quick test_quota_shedding ] );
      ( "churn",
        [
          Alcotest.test_case "concurrent churn isolation" `Quick
            test_concurrent_churn_isolation;
        ] );
    ]
