(* Measured-autotuning suite (PR 8): tuning-DB round-trips, atomic
   concurrent persistence, corruption handling (a bad DB must degrade to
   the static model, never fail a compile), the load-time drift guard for
   invalid persisted tiles, the sync tune end-to-end (tune -> persist ->
   reload -> DB hit), the absent-DB static-equality pin, and the serving
   layer's online demotion path. *)

open Gc_tensor
open Gc_workloads
module Machine = Gc_microkernel.Machine
module Heuristic = Gc_lowering.Heuristic
module Params = Gc_lowering.Params
module Tune_db = Gc_tuning.Tune_db
module Autotune = Gc_tuning.Autotune
module Counters = Gc_observe.Counters
module Parallel = Gc_runtime.Parallel
module Serve = Gc_serve

let machine = Machine.test_machine
let seq_pool = Parallel.create 1

let compile_config () =
  { (Core.default_config ~machine ()) with Core.pool = Some seq_pool }

(* Every test drives the process-global policy: force a known-clean state
   on entry and restore the ambient (env-derived, i.e. off) state on
   exit, so test order never matters. *)
let with_policy ?db_path ?(budget_ms = 20) mode f =
  Autotune.drain_background ();
  Autotune.reset ();
  Autotune.set_db_path db_path;
  Autotune.set_budget_ms (Some budget_ms);
  Autotune.set_mode mode;
  Fun.protect f ~finally:(fun () ->
      Autotune.drain_background ();
      Autotune.set_mode Autotune.Off;
      Autotune.set_db_path None;
      Autotune.set_budget_ms None;
      Autotune.reset ())

let tmp_db () =
  let p = Filename.temp_file "gc_tune_test" ".json" in
  Sys.remove p;
  p

let rm p = try Sys.remove p with Sys_error _ -> ()
let rm_db p = rm p; rm (p ^ ".lock")

(* a DB entry whose tile is the static heuristic's own choice for the
   problem — guaranteed [Ukernel_cost.valid] on [machine] *)
let mk_entry ?(key = "scope0#0#matmul#f32#post:#m") ?(e_machine = Machine.descriptor machine)
    ?(m = 32) ?(n = 32) ?(k = 32) ?(measured_at = 0.) ?tile () =
  let p = Heuristic.choose ~machine ~dtype:Dtype.F32 ~m ~n ~k () in
  let mb, nb, kb, bs =
    match tile with Some t -> t | None -> (p.Params.mb, p.Params.nb, p.Params.kb, p.Params.bs)
  in
  {
    Tune_db.e_key = key;
    e_op = "matmul";
    e_m = m;
    e_n = n;
    e_k = k;
    e_batch = 1;
    e_dtype = "f32";
    e_post_ops = "";
    e_machine;
    e_mpn = p.Params.mpn;
    e_npn = p.Params.npn;
    e_kpn = 1;
    e_mb = mb;
    e_nb = nb;
    e_kb = kb;
    e_bs = bs;
    e_loop_order = p.Params.loop_order;
    e_expected_ms = 0.5;
    e_static_ms = 1.0;
    e_measured_at = measured_at;
  }

let sorted_keys db =
  List.sort compare (List.map (fun e -> e.Tune_db.e_key) (Tune_db.entries db))

(* ------------------------------------------------------------------ *)
(* Round-trip *)

let test_db_roundtrip () =
  let path = tmp_db () in
  Fun.protect ~finally:(fun () -> rm_db path) @@ fun () ->
  let d = Tune_db.create () in
  Tune_db.store d (mk_entry ~key:"sA#0#matmul#f32#post:relu#m" ());
  Tune_db.store d (mk_entry ~key:"sA#1#matmul#f32#post:#m" ~m:8 ~n:64 ~k:128 ());
  (* a foreign machine's entry must survive the round-trip verbatim even
     though it is unreachable here *)
  Tune_db.store d
    (mk_entry ~key:"sB#0#matmul#f32#post:#other" ~e_machine:"elsewhere|c99" ());
  Tune_db.save path d;
  let d' = Tune_db.load ~machine path in
  Alcotest.(check (list string)) "same keys" (sorted_keys d) (sorted_keys d');
  let e = Option.get (Tune_db.lookup d' "sA#1#matmul#f32#post:#m") in
  Alcotest.(check int) "m" 8 e.Tune_db.e_m;
  Alcotest.(check int) "k" 128 e.Tune_db.e_k;
  Alcotest.(check (float 1e-9)) "expected_ms" 0.5 e.Tune_db.e_expected_ms;
  Alcotest.(check string) "machine" "elsewhere|c99"
    (Option.get (Tune_db.lookup d' "sB#0#matmul#f32#post:#other")).Tune_db.e_machine

(* ------------------------------------------------------------------ *)
(* Concurrent writers: two REAL processes hammer the same DB file. The
   advisory lockf + merge-on-save contract makes them additive — the
   final file holds the union of both writers' entries (whole and
   parseable; the rename keeps readers torn-free), and a key both
   contend on resolves to the newest measurement. *)

let test_db_concurrent_writers () =
  let path = tmp_db () in
  Fun.protect ~finally:(fun () -> rm_db path) @@ fun () ->
  let rounds = 12 and entries_per = 5 in
  let db_of w =
    let d = Tune_db.create () in
    for i = 0 to entries_per - 1 do
      Tune_db.store d
        (mk_entry ~key:(Printf.sprintf "w%d#%d#matmul#f32#post:#m" w i) ())
    done;
    (* both writers store the same shared key with different timestamps:
       the merge must keep the newer one no matter the save order *)
    Tune_db.store d
      (mk_entry ~key:"shared#0#matmul#f32#post:#m"
         ~measured_at:(float_of_int (100 + w)) ());
    d
  in
  let spawn w =
    (* build the entries pre-fork; the child does pure file work and
       [_exit]s so it cannot double-run at_exit hooks or flush inherited
       buffers *)
    let d = db_of w in
    match Unix.fork () with
    | 0 ->
        (try
           for _ = 1 to rounds do
             Tune_db.save path d
           done
         with _ -> Unix._exit 1);
        Unix._exit 0
    | pid -> pid
  in
  let pids = [ spawn 0; spawn 1 ] in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "writer process failed")
    pids;
  let d' = Tune_db.load ~machine path in
  let keys = sorted_keys d' in
  Alcotest.(check int) "union of both writers" ((2 * entries_per) + 1)
    (List.length keys);
  List.iter
    (fun w ->
      for i = 0 to entries_per - 1 do
        let k = Printf.sprintf "w%d#%d#matmul#f32#post:#m" w i in
        Alcotest.(check bool) (k ^ " survived") true (Tune_db.lookup d' k <> None)
      done)
    [ 0; 1 ];
  let shared = Option.get (Tune_db.lookup d' "shared#0#matmul#f32#post:#m") in
  Alcotest.(check (float 1e-9)) "newest measurement wins the merge" 101.
    shared.Tune_db.e_measured_at;
  (* no temp droppings left behind (the .lock sidecar is expected) *)
  let dir = Filename.dirname path and base = Filename.basename path in
  let leftovers =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f ->
           String.length f > String.length base
           && String.sub f 0 (String.length base) = base
           && f <> base ^ ".lock")
  in
  Alcotest.(check (list string)) "no temp files" [] leftovers

(* Merge must not resurrect a demoted scope: [drop_disk] (what
   [Autotune]'s demotion tombstones pass) vetoes the disk copy, while
   rows measured after the demotion would pass through. *)

let test_db_merge_demote_tombstone () =
  let path = tmp_db () in
  Fun.protect ~finally:(fun () -> rm_db path) @@ fun () ->
  let a = Tune_db.create () in
  Tune_db.store a (mk_entry ~key:"sA#0#matmul#f32#post:#m" ~measured_at:10. ());
  Tune_db.store a (mk_entry ~key:"sB#0#matmul#f32#post:#m" ~measured_at:10. ());
  Tune_db.save path a;
  (* a second writer that never held sA demoted it at t=20: its save must
     drop sA's stale disk row but still merge sB in *)
  let b = Tune_db.create () in
  Tune_db.store b (mk_entry ~key:"sC#0#matmul#f32#post:#m" ~measured_at:15. ());
  let drop_disk e =
    Tune_db.scope_of_key e.Tune_db.e_key = "sA"
    && e.Tune_db.e_measured_at <= 20.
  in
  Tune_db.save ~drop_disk path b;
  let d' = Tune_db.load ~machine path in
  Alcotest.(check (list string))
    "sA dropped, sB merged, sC kept"
    [ "sB#0#matmul#f32#post:#m"; "sC#0#matmul#f32#post:#m" ]
    (sorted_keys d');
  (* a post-demotion re-measurement of sA is newer than the tombstone and
     must survive the next merge *)
  let c = Tune_db.create () in
  Tune_db.store c (mk_entry ~key:"sA#0#matmul#f32#post:#m" ~measured_at:30. ());
  let drop_disk e =
    Tune_db.scope_of_key e.Tune_db.e_key = "sA"
    && e.Tune_db.e_measured_at <= 20.
  in
  Tune_db.save ~drop_disk path c;
  let d'' = Tune_db.load ~machine path in
  Alcotest.(check bool) "re-measured sA readmitted" true
    (Tune_db.lookup d'' "sA#0#matmul#f32#post:#m" <> None)

(* ------------------------------------------------------------------ *)
(* Corruption: load never raises, and a compile pointed at a corrupt DB
   must succeed with exactly the static model's parameters *)

let test_db_corruption_safe () =
  let path = tmp_db () in
  Fun.protect ~finally:(fun () -> rm_db path) @@ fun () ->
  let write s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  let load_len () = List.length (Tune_db.entries (Tune_db.load ~machine path)) in
  Alcotest.(check int) "missing file -> empty" 0 (load_len ());
  write "this is not json {{{";
  Alcotest.(check int) "garbage -> empty" 0 (load_len ());
  write "{\"schema\": \"gc-tune-db/1\", \"entries\": [";
  Alcotest.(check int) "truncated -> empty" 0 (load_len ());
  write "{\"schema\": \"something-else/9\", \"entries\": []}";
  Alcotest.(check int) "wrong schema -> empty" 0 (load_len ());
  (* end to end: consult mode over the corrupt file — the compile must
     succeed, count a miss, and produce a working partition *)
  write "again { not , json";
  with_policy ~db_path:path ~budget_ms:5 Autotune.Consult @@ fun () ->
  let b = Mlp.build_f32 ~seed:3 ~batch:4 ~hidden:[ 6; 5 ] () in
  let s0 = Counters.snapshot () in
  let compiled = Core.compile ~config:(compile_config ()) b.Mlp.graph in
  let s1 = Counters.snapshot () in
  Alcotest.(check bool) "counted a miss" true
    (s1.Counters.tune_db_misses > s0.Counters.tune_db_misses);
  ignore (Core.execute compiled b.Mlp.data)

(* ------------------------------------------------------------------ *)
(* Drift guard at load: a persisted tile for THIS machine that fails
   [Ukernel_cost.valid] is rejected (with a counter bump), not applied *)

let test_db_load_drift_guard () =
  let path = tmp_db () in
  Fun.protect ~finally:(fun () -> rm_db path) @@ fun () ->
  let d = Tune_db.create () in
  Tune_db.store d (mk_entry ~key:"ok#0#matmul#f32#post:#m" ());
  (* a tile that cannot fit any L1: invalid here, but the same tile under
     a foreign machine descriptor must be kept (not ours to judge) *)
  Tune_db.store d
    (mk_entry ~key:"bad#0#matmul#f32#post:#m" ~tile:(4096, 4096, 4096, 1) ());
  Tune_db.store d
    (mk_entry ~key:"foreign#0#matmul#f32#post:#m" ~e_machine:"elsewhere|c99"
       ~tile:(4096, 4096, 4096, 1) ());
  Tune_db.save path d;
  let s0 = Counters.snapshot () in
  let d' = Tune_db.load ~machine path in
  let s1 = Counters.snapshot () in
  Alcotest.(check (list string))
    "invalid local tile dropped"
    [ "foreign#0#matmul#f32#post:#m"; "ok#0#matmul#f32#post:#m" ]
    (sorted_keys d');
  Alcotest.(check bool) "tune_rejects bumped" true
    (s1.Counters.tune_rejects > s0.Counters.tune_rejects)

(* params_for re-validation at lookup time: the stored winner is re-aimed
   at the actual problem and grid-clamped; impossible tiles return None *)

let test_params_for_revalidation () =
  let e = mk_entry ~m:64 ~n:64 ~k:64 () in
  (match
     Tune_db.params_for ~machine e ~m:64 ~n:64 ~k:64 ~batch:1 ~dtype:Dtype.F32
   with
  | None -> Alcotest.fail "valid entry rejected"
  | Some p ->
      Alcotest.(check int) "m" 64 p.Params.m;
      Alcotest.(check bool) "grid clamped" true
        (p.Params.mpn <= Params.mblocks p && p.Params.npn <= Params.nblocks p));
  let s0 = Counters.snapshot () in
  (match
     Tune_db.params_for ~machine
       (mk_entry ~tile:(4096, 4096, 4096, 1) ())
       ~m:64 ~n:64 ~k:64 ~batch:1 ~dtype:Dtype.F32
   with
  | None -> ()
  | Some _ -> Alcotest.fail "impossible tile accepted");
  let s1 = Counters.snapshot () in
  Alcotest.(check bool) "tune_rejects bumped" true
    (s1.Counters.tune_rejects > s0.Counters.tune_rejects)

(* ------------------------------------------------------------------ *)
(* Sync tune end to end: compile tunes, persists; a fresh policy state
   recompiling an isomorphic graph is served from the reloaded DB *)

let test_sync_tune_end_to_end () =
  let path = tmp_db () in
  Fun.protect ~finally:(fun () -> rm_db path) @@ fun () ->
  with_policy ~db_path:path ~budget_ms:20 Autotune.Sync @@ fun () ->
  let build () = Mlp.build_f32 ~seed:5 ~batch:4 ~hidden:[ 6; 5 ] () in
  let b = build () in
  let s0 = Counters.snapshot () in
  let compiled = Core.compile ~config:(compile_config ()) b.Mlp.graph in
  let s1 = Counters.snapshot () in
  Alcotest.(check bool) "tune ran" true
    (s1.Counters.tunes_run > s0.Counters.tunes_run);
  Alcotest.(check bool) "compile carries a tune scope" true
    (Core.tune_scope compiled <> None);
  let es = Autotune.entries () in
  Alcotest.(check bool) "entries recorded" true (es <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) "winner never worse than static" true
        (e.Tune_db.e_expected_ms <= e.Tune_db.e_static_ms +. 1e-9))
    es;
  (* outputs of the tuned schedule must still be correct *)
  let expect = Core.reference b.Mlp.graph b.Mlp.data in
  let got = Core.execute compiled b.Mlp.data in
  List.iter2
    (fun g e ->
      Alcotest.(check bool) "tuned output matches reference" true
        (Core.Tensor.allclose ~atol:1e-5 g e))
    got expect;
  (* fresh policy state: the on-disk DB must serve the recompile *)
  Autotune.reset ();
  Autotune.set_mode Autotune.Consult;
  let b' = build () in
  let s2 = Counters.snapshot () in
  ignore (Core.compile ~config:(compile_config ()) b'.Mlp.graph);
  let s3 = Counters.snapshot () in
  Alcotest.(check bool) "reloaded DB hit" true
    (s3.Counters.tune_db_hits > s2.Counters.tune_db_hits)

(* ------------------------------------------------------------------ *)
(* The absent-DB pin: tuning enabled over an empty database must choose
   EXACTLY what the static model chooses — pre-PR behavior, bit for bit *)

let test_absent_db_static_equality () =
  let path = tmp_db () in
  Fun.protect ~finally:(fun () -> rm_db path) @@ fun () ->
  with_policy ~db_path:path ~budget_ms:5 Autotune.Consult @@ fun () ->
  List.iter
    (fun (m, n, k) ->
      let static = Heuristic.choose ~machine ~dtype:Dtype.F32 ~m ~n ~k () in
      let key = Printf.sprintf "absent#0#matmul#f32#post:#%d_%d_%d" m n k in
      let consulted =
        Heuristic.choose ~machine ~dtype:Dtype.F32 ~tune_key:key ~m ~n ~k ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "params equal for %dx%dx%d" m n k)
        true (consulted = static))
    [ (33, 47, 29); (64, 64, 64); (6, 64, 256) ]

(* ------------------------------------------------------------------ *)
(* Online demotion: a handle whose latency EWMA loses 2x to its own best
   drops its scope's entries and queues background re-tunes *)

let test_serve_demotion () =
  let path = tmp_db () in
  Fun.protect ~finally:(fun () -> rm_db path) @@ fun () ->
  with_policy ~db_path:path ~budget_ms:20 Autotune.Sync @@ fun () ->
  let b = Mlp.build_f32 ~seed:9 ~batch:4 ~hidden:[ 6; 5 ] () in
  let compiled = Core.compile ~config:(compile_config ()) b.Mlp.graph in
  let scope = Option.get (Core.tune_scope compiled) in
  let in_scope () =
    List.filter
      (fun e -> Tune_db.scope_of_key e.Tune_db.e_key = scope)
      (Autotune.entries ())
  in
  Alcotest.(check bool) "tuned entries under the scope" true (in_scope () <> []);
  let cfg =
    {
      (Serve.default_config ()) with
      Serve.queue_depth = 4;
      workers = 1;
      retune_factor = 2.0;
      retune_min_samples = 3;
    }
  in
  let server = Serve.create ~config:cfg () in
  Fun.protect ~finally:(fun () -> Serve.shutdown server) @@ fun () ->
  let h = Serve.register server compiled in
  let s0 = Counters.snapshot () in
  (* demonstrate a 1 ms expectation, then collapse to 10 ms *)
  for _ = 1 to 3 do
    Serve.observe_latency server h 1.0
  done;
  for _ = 1 to 6 do
    Serve.observe_latency server h 10.0
  done;
  let s1 = Counters.snapshot () in
  Alcotest.(check bool) "retune triggered" true
    (s1.Counters.retunes_triggered > s0.Counters.retunes_triggered);
  (* the demoted problems were re-queued: once the background worker
     drains, fresh measurements are back under the scope *)
  Autotune.drain_background ();
  Alcotest.(check bool) "re-tuned after demotion" true (in_scope () <> []);
  Alcotest.(check bool) "re-tune measured" true
    ((Counters.snapshot ()).Counters.tunes_run > s1.Counters.tunes_run)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "tuning"
    [
      ( "db",
        [
          Alcotest.test_case "round-trip" `Quick test_db_roundtrip;
          Alcotest.test_case "concurrent processes merge additively" `Quick
            test_db_concurrent_writers;
          Alcotest.test_case "merge honors demotion tombstones" `Quick
            test_db_merge_demote_tombstone;
          Alcotest.test_case "corruption degrades to static" `Quick
            test_db_corruption_safe;
          Alcotest.test_case "load rejects invalid persisted tiles" `Quick
            test_db_load_drift_guard;
          Alcotest.test_case "params_for revalidates" `Quick
            test_params_for_revalidation;
        ] );
      ( "policy",
        [
          Alcotest.test_case "sync tune end to end" `Quick
            test_sync_tune_end_to_end;
          Alcotest.test_case "absent DB equals static model" `Quick
            test_absent_db_static_equality;
        ] );
      ( "serve",
        [ Alcotest.test_case "online demotion" `Quick test_serve_demotion ] );
    ]
