(* Serving-layer suite: admission control and typed shedding under
   overload, per-request deadlines, memory-budget governor accounting,
   circuit-breaker state machine, graceful drain, and the inter-pass IR
   verifier. The overload soak is the acceptance test: more clients than
   queue slots, mixed deadlines, armed faults — every request must end in
   exactly one typed outcome and the server must stay serviceable. *)

open Gc_workloads
module Serve = Gc_serve
module Memgov = Gc_tensor.Memgov
module Fault = Gc_faultinject
module Verify = Gc_graph_passes.Verify
module Counters = Gc_observe.Counters
module Parallel = Gc_runtime.Parallel

let seq_pool = Parallel.create 1

let compile_config () =
  { (Core.default_config ()) with Core.pool = Some seq_pool }

let with_faults ?seed ?slow_ms spec f =
  Fault.configure ?seed ?slow_ms spec;
  Fun.protect ~finally:Fault.clear f

let serve_config ?(queue_depth = 8) ?(workers = 2) ?(max_retries = 0)
    ?(breaker_threshold = 5) ?(breaker_cooldown_ms = 50.) ?default_deadline_ms
    () =
  {
    (Serve.default_config ()) with
    Serve.queue_depth;
    workers;
    max_retries;
    breaker_threshold;
    breaker_cooldown_ms;
    default_deadline_ms;
    backoff_base_ms = 0.5;
    backoff_cap_ms = 2.;
  }

let mlp ?(seed = 7) ?(batch = 4) ?(hidden = [ 6; 5 ]) () =
  Mlp.build_f32 ~seed ~batch ~hidden ()

let register server (b : Mlp.built) =
  match
    Serve.compile_and_register ~config:(compile_config ()) server b.Mlp.graph
  with
  | Ok h -> h
  | Error e -> Alcotest.failf "compile failed: %s" (Core.Errors.to_string e)

let with_server ?config f =
  let server = Serve.create ?config () in
  Fun.protect ~finally:(fun () -> Serve.shutdown ~drain_deadline_ms:2000 server)
    (fun () -> f server)

let err_class = function
  | Ok _ -> "ok"
  | Error e -> Core.Errors.class_name e

(* ------------------------------------------------------------------ *)
(* Basic serving *)

let test_call_matches_reference () =
  let b = mlp () in
  with_server ~config:(serve_config ()) (fun server ->
      let h = register server b in
      match Serve.call server h b.Mlp.data with
      | Error e -> Alcotest.failf "call failed: %s" (Core.Errors.to_string e)
      | Ok outs ->
          let expect = Core.reference b.Mlp.graph b.Mlp.data in
          List.iter2
            (fun got e ->
              Alcotest.(check bool) "output matches reference" true
                (Core.Tensor.allclose ~rtol:2e-3 ~atol:2e-3 got e))
            outs expect;
          let s = Serve.stats server in
          Alcotest.(check int) "submitted" 1 s.Serve.submitted;
          Alcotest.(check int) "ok" 1 s.Serve.ok)

let test_queue_full_sheds_typed () =
  let b = mlp ~batch:16 ~hidden:[ 32; 32; 32 ] () in
  with_server ~config:(serve_config ~queue_depth:1 ~workers:1 ())
    (fun server ->
      let h = register server b in
      let tickets =
        List.init 8 (fun _ -> Serve.submit server h b.Mlp.data)
      in
      let outcomes = List.map Serve.await tickets in
      let ok = List.length (List.filter Result.is_ok outcomes) in
      let overloaded =
        List.length
          (List.filter
             (function
               | Error (Core.Errors.Overloaded _) -> true | _ -> false)
             outcomes)
      in
      Alcotest.(check bool) "some requests served" true (ok >= 1);
      Alcotest.(check bool) "some requests shed" true (overloaded >= 1);
      Alcotest.(check int) "every outcome typed" 8 (ok + overloaded);
      let s = Serve.stats server in
      Alcotest.(check int) "submitted" 8 s.Serve.submitted;
      Alcotest.(check int) "accounted"
        s.Serve.submitted
        (s.Serve.ok + s.Serve.overloaded + s.Serve.timeouts + s.Serve.faults
       + s.Serve.budget_rejects))

let test_draining_rejects () =
  let b = mlp () in
  with_server ~config:(serve_config ()) (fun server ->
      let h = register server b in
      Serve.drain server;
      (match Serve.call server h b.Mlp.data with
      | Error (Core.Errors.Overloaded { what; _ }) ->
          Alcotest.(check string) "drain reason" "server is draining" what
      | o -> Alcotest.failf "expected Overloaded, got %s" (err_class o));
      Alcotest.(check bool) "stats report draining" true
        (Serve.stats server).Serve.draining)

(* ------------------------------------------------------------------ *)
(* Overload soak (acceptance): 32 clients, queue depth 4, mixed
   deadlines, faults armed. Every request ends in exactly one typed
   outcome; afterwards the server still serves cleanly. *)

let test_overload_soak () =
  let b = mlp ~batch:8 ~hidden:[ 16; 16 ] () in
  let clients = 32 and iters = 3 in
  let deadlines = [| Some 1; Some 30; Some 400; None |] in
  with_server
    ~config:(serve_config ~queue_depth:4 ~workers:2 ~max_retries:1 ())
    (fun server ->
      let h = register server b in
      (* warm once so arenas/init are settled before the burst *)
      (match Serve.call server h b.Mlp.data with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "warmup failed: %s" (Core.Errors.to_string e));
      let outcomes = Array.make (clients * iters) None in
      with_faults ~seed:42 "worker:11,kernel_nan:13" (fun () ->
          let client c =
            for i = 0 to iters - 1 do
              let deadline_ms = deadlines.((c + i) mod Array.length deadlines) in
              let o = Serve.call ?deadline_ms server h b.Mlp.data in
              outcomes.((c * iters) + i) <- Some o
            done
          in
          let threads = List.init clients (fun c -> Thread.create client c) in
          List.iter Thread.join threads);
      (* every request resolved, and resolved typed *)
      let tally = Hashtbl.create 8 in
      Array.iteri
        (fun i o ->
          match o with
          | None -> Alcotest.failf "request %d never resolved (hang)" i
          | Some o ->
              let c = err_class o in
              Hashtbl.replace tally c (1 + Option.value ~default:0 (Hashtbl.find_opt tally c)))
        outcomes;
      Hashtbl.iter
        (fun c _ ->
          if
            not
              (List.mem c
                 [
                   "ok";
                   "overloaded";
                   "timeout";
                   "runtime_fault";
                   "resource_exhausted";
                 ])
          then Alcotest.failf "untyped outcome class %s" c)
        tally;
      let s = Serve.stats server in
      Alcotest.(check int) "all submissions seen" (clients * iters + 1)
        s.Serve.submitted;
      Alcotest.(check int) "conservation of outcomes"
        s.Serve.submitted
        (s.Serve.ok + s.Serve.overloaded + s.Serve.timeouts + s.Serve.faults
       + s.Serve.budget_rejects);
      (* serviceable after the storm *)
      match Serve.call server h b.Mlp.data with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "not serviceable after soak: %s"
            (Core.Errors.to_string e))

(* ------------------------------------------------------------------ *)
(* Per-call deadline on Core.execute_checked (satellite) *)

let test_execute_deadline_param () =
  let b = mlp ~batch:64 ~hidden:[ 32; 32 ] () in
  let pool = Parallel.create 4 in
  let config = { (Core.default_config ()) with Core.pool = Some pool } in
  let compiled = Core.compile ~config b.Mlp.graph in
  ignore (Core.execute compiled b.Mlp.data);
  (* options say 10 s; the per-call deadline of 30 ms must win *)
  let options =
    { (Core.default_exec_options ()) with
      Core.timeout_ms = Some 10_000;
      retries = 0;
      fallback = false;
    }
  in
  with_faults ~slow_ms:300 "slow:1" (fun () ->
      match Core.execute_checked ~options ~deadline_ms:30 compiled b.Mlp.data with
      | Error (Core.Errors.Timeout _) -> ()
      | o -> Alcotest.failf "expected Timeout, got %s" (err_class o));
  (* and without the override the generous options deadline passes *)
  (match Core.execute_checked ~options compiled b.Mlp.data with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "clean run failed: %s" (Core.Errors.to_string e));
  Parallel.shutdown pool

(* ------------------------------------------------------------------ *)
(* Memory budget governor *)

let test_budget_rejects_and_recovers () =
  let b = mlp ~batch:8 ~hidden:[ 32; 32 ] () in
  (* compile unarmed so compile-time constants are not charged *)
  let server = Serve.create ~config:(serve_config ~workers:1 ()) () in
  let h = register server b in
  (* baseline-relative: under GC_MEM_BUDGET_BYTES (the CI chaos job) the
     ledger already holds live charges — earlier tests' buffers and the
     constants of the partition registered above, which stay reachable
     through [h] past the settle loop. Without the env budget the
     baseline is 0 and this proves the absolute drain-to-zero property. *)
  let used0 = Memgov.used () in
  Fun.protect
    ~finally:(fun () ->
      Memgov.set_limit None;
      Serve.shutdown server)
    (fun () ->
      Memgov.set_limit (Some 512);
      (* first execute must allocate arenas/globals well past 512 bytes.
         With a pristine ledger the allocation site rejects with a typed
         Resource_exhausted naming the buffer and the budget. When the
         whole suite runs under GC_MEM_BUDGET_BYTES (CI chaos job) the
         ledger is already past 512, so the fill fraction is >= 1 and
         admission backpressure sheds the request first — equally typed,
         equally correct. *)
      let prefilled =
        Sys.getenv_opt "GC_MEM_BUDGET_BYTES" <> None && used0 > 0
      in
      (match Serve.call server h b.Mlp.data with
      | Error (Core.Errors.Resource_exhausted { resource; ctx; _ }) ->
          Alcotest.(check string) "names the budget" "memory_budget" resource;
          Alcotest.(check bool) "ctx names the buffer" true
            (List.mem_assoc "buffer" ctx);
          Alcotest.(check bool) "ctx names the budget size" true
            (List.assoc_opt "budget" ctx = Some "512")
      | Error (Core.Errors.Overloaded { ctx; _ }) when prefilled ->
          Alcotest.(check bool) "shed cites the budget fill" true
            (List.mem_assoc "budget_fill" ctx)
      | o -> Alcotest.failf "expected Resource_exhausted, got %s" (err_class o));
      let s = Serve.stats server in
      Alcotest.(check bool) "budget reject counted" true
        (if prefilled then s.Serve.overloaded >= 1
         else s.Serve.budget_rejects >= 1);
      (* raising the budget restores service: the process survived *)
      Memgov.set_limit (Some (64 * 1024 * 1024));
      (match Serve.call server h b.Mlp.data with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "not serviceable after budget raise: %s"
            (Core.Errors.to_string e));
      Alcotest.(check bool) "ledger sees live bytes" true
        (Memgov.used () > used0));
  (* after shutdown the worker domains (and their arenas) are gone;
     collection must drain the ledger back to the pre-test baseline *)
  let rec settle n =
    Gc.full_major ();
    if Memgov.used () > used0 && n > 0 then settle (n - 1)
  in
  settle 10;
  (* <= not =: the settle GCs may also collect buffers charged by earlier
     tests (part of the baseline), dropping the ledger below [used0] *)
  Alcotest.(check bool) "accounting drains to baseline" true
    (Memgov.used () <= used0)

let test_backpressure_shrinks_queue () =
  let cfg = serve_config ~queue_depth:8 ~workers:1 () in
  with_server ~config:cfg (fun server ->
      Fun.protect ~finally:(fun () -> Memgov.set_limit None) (fun () ->
          (* an almost-full budget must shrink the effective depth; the
             limit is baseline-relative so pre-existing live charges
             (present when GC_MEM_BUDGET_BYTES is armed suite-wide) do
             not push the fill to 1.0 *)
          Memgov.set_limit (Some (Memgov.used () + 1_000_000));
          let held = Gc_tensor.Buffer.create Gc_tensor.Dtype.F32 200_000 in
          (* fill >= 0.8 -> effective depth <= 8 * 2 * 0.2 = 3 *)
          let s = Serve.stats server in
          Alcotest.(check bool) "depth shrunk" true
            (s.Serve.effective_depth < cfg.Serve.queue_depth
            && s.Serve.effective_depth >= 1);
          ignore (Sys.opaque_identity held)))

let test_budget_drains_to_zero_qcheck =
  QCheck.Test.make ~count:50 ~name:"charge/release returns to baseline"
    QCheck.(list (int_range 1 8192))
    (fun sizes ->
      Memgov.set_limit (Some 100_000);
      Fun.protect ~finally:(fun () -> Memgov.set_limit None) (fun () ->
          let base = Memgov.used () in
          let charged =
            List.filter
              (fun b ->
                match Memgov.charge ~name:"qcheck" b with
                | ok -> ok
                | exception Core.Errors.Error (Core.Errors.Resource_exhausted _)
                  ->
                    false)
              sizes
          in
          List.iter Memgov.release charged;
          Memgov.used () = base))

(* ------------------------------------------------------------------ *)
(* Circuit breaker *)

let test_breaker_opens_and_recovers () =
  (* the worker fault site fires inside parallel-pool tasks, so this test
     needs a real multi-worker pool and a workload big enough to spawn
     tasks (the shared sequential pool would never probe the site) *)
  let b = mlp ~batch:64 ~hidden:[ 32; 32 ] () in
  let pool = Parallel.create 4 in
  let compile_config = { (Core.default_config ()) with Core.pool = Some pool } in
  let threshold = 5 in
  with_server
    ~config:
      (serve_config ~workers:1 ~breaker_threshold:threshold
         ~breaker_cooldown_ms:50. ())
    (fun server ->
      let h =
        match Serve.compile_and_register ~config:compile_config server b.Mlp.graph with
        | Ok h -> h
        | Error e -> Alcotest.failf "compile failed: %s" (Core.Errors.to_string e)
      in
      (match Serve.call server h b.Mlp.data with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "warmup failed: %s" (Core.Errors.to_string e));
      let snap0 = Counters.snapshot () in
      with_faults "worker:1" (fun () ->
          (* every compiled execute faults; each request degrades to the
             interpreter; the breaker must open within [threshold] *)
          for i = 1 to threshold do
            match Serve.call server h b.Mlp.data with
            | Ok _ -> ()
            | Error e ->
                Alcotest.failf "fallback %d failed: %s" i
                  (Core.Errors.to_string e)
          done;
          Alcotest.(check bool) "breaker open after N fallbacks" true
            (Serve.breaker_state h = Serve.Open);
          (* open: requests short-circuit to the interpreter, counted *)
          (match Serve.call server h b.Mlp.data with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "short-circuit failed: %s"
                (Core.Errors.to_string e)));
      let snap1 = Counters.snapshot () in
      Alcotest.(check bool) "breaker_opens counted" true
        (snap1.Counters.breaker_opens > snap0.Counters.breaker_opens);
      Alcotest.(check bool) "short-circuits counted" true
        (snap1.Counters.breaker_shortcircuits
        > snap0.Counters.breaker_shortcircuits);
      (* faults disarmed: after the cooldown a half-open probe must close
         the breaker again *)
      Unix.sleepf 0.06;
      (match Serve.call server h b.Mlp.data with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "probe failed: %s" (Core.Errors.to_string e));
      Alcotest.(check bool) "breaker closed after probe" true
        (Serve.breaker_state h = Serve.Closed);
      let snap2 = Counters.snapshot () in
      Alcotest.(check bool) "probe counted" true
        (snap2.Counters.breaker_probes > snap0.Counters.breaker_probes);
      Alcotest.(check bool) "close counted" true
        (snap2.Counters.breaker_closes > snap0.Counters.breaker_closes));
  Parallel.shutdown pool

(* ------------------------------------------------------------------ *)
(* Whole-model serving: BERT and DLRM, f32 and int8, through the same
   admission-controlled path as the unit workloads *)

let register_graph server graph =
  match Serve.compile_and_register ~config:(compile_config ()) server graph with
  | Ok h -> h
  | Error e -> Alcotest.failf "compile failed: %s" (Core.Errors.to_string e)

let bert_built ~quantized =
  let build = if quantized then Bert.build_int8 else Bert.build_f32 in
  build ~layers:1 ~batch:1 ~seq:8 ~hidden:16 ~heads:2 ()

let dlrm_built ~quantized =
  let build = if quantized then Dlrm.build_int8 else Dlrm.build_f32 in
  build ~batch:4 ~dense_dim:4 ~bottom:[ 8; 8 ] ~tables:2 ~vocab:20 ~emb_dim:8
    ~top:[ 8; 1 ] ()

let test_models_served_match_reference () =
  let bert_case what ~quantized rtol atol =
    let b = bert_built ~quantized in
    (what, b.Bert.graph, b.Bert.data, rtol, atol)
  in
  let dlrm_case what ~quantized rtol atol =
    let d = dlrm_built ~quantized in
    (what, d.Dlrm.graph, d.Dlrm.data, rtol, atol)
  in
  let cases =
    [
      bert_case "bert f32" ~quantized:false 2e-3 2e-3;
      bert_case "bert int8" ~quantized:true 1e-2 1e-2;
      dlrm_case "dlrm f32" ~quantized:false 2e-3 2e-3;
      dlrm_case "dlrm int8" ~quantized:true 1e-2 2e-2;
    ]
  in
  with_server ~config:(serve_config ()) (fun server ->
      List.iter
        (fun (what, graph, data, rtol, atol) ->
          let h = register_graph server graph in
          match Serve.call server h data with
          | Error e ->
              Alcotest.failf "%s call failed: %s" what
                (Core.Errors.to_string e)
          | Ok outs ->
              let expect = Core.reference graph data in
              List.iter2
                (fun got e ->
                  Alcotest.(check bool) (what ^ " matches reference") true
                    (Core.Tensor.allclose ~rtol ~atol got e))
                outs expect)
        cases;
      let s = Serve.stats server in
      Alcotest.(check int) "all served ok" (List.length cases) s.Serve.ok)

(* More clients than queue slots, mixed deadlines, armed faults, both
   models in flight: every request ends in exactly one typed outcome and
   the server stays serviceable afterwards. *)
let test_models_chaos_overload () =
  let bert = bert_built ~quantized:false in
  let dlrm = dlrm_built ~quantized:false in
  with_server ~config:(serve_config ~queue_depth:2 ~workers:1 ())
    (fun server ->
      let hb = register_graph server bert.Bert.graph in
      let hd = register_graph server dlrm.Dlrm.graph in
      let expect_b = Core.reference bert.Bert.graph bert.Bert.data in
      let expect_d = Core.reference dlrm.Dlrm.graph dlrm.Dlrm.data in
      with_faults "worker:4,kernel_nan:6" (fun () ->
          let client c =
            for i = 1 to 4 do
              let deadline_ms = if (c + i) mod 3 = 0 then Some 50 else None in
              let h, data, expect =
                if (c + i) mod 2 = 0 then (hb, bert.Bert.data, expect_b)
                else (hd, dlrm.Dlrm.data, expect_d)
              in
              match Serve.call ?deadline_ms server h data with
              | Ok outs ->
                  List.iter2
                    (fun got e ->
                      Alcotest.(check bool)
                        "chaos serve output reference-close" true
                        (Core.Tensor.allclose ~rtol:2e-3 ~atol:2e-3 got e))
                    outs expect
              | Error
                  ( Core.Errors.Invalid_input _ | Core.Errors.Compile_error _
                  | Core.Errors.Runtime_fault _
                  | Core.Errors.Resource_exhausted _ | Core.Errors.Timeout _
                  | Core.Errors.Overloaded _ ) ->
                  ()
            done
          in
          let threads = List.init 6 (fun c -> Thread.create client c) in
          List.iter Thread.join threads);
      let s = Serve.stats server in
      Alcotest.(check int) "every request accounted" s.Serve.submitted
        (s.Serve.ok + s.Serve.overloaded + s.Serve.timeouts + s.Serve.faults
       + s.Serve.budget_rejects);
      match Serve.call server hb bert.Bert.data with
      | Ok outs ->
          List.iter2
            (fun got e ->
              Alcotest.(check bool) "post-chaos serve matches reference" true
                (Core.Tensor.allclose ~rtol:2e-3 ~atol:2e-3 got e))
            outs expect_b
      | Error e ->
          Alcotest.failf "post-chaos call failed: %s" (Core.Errors.to_string e))

(* ------------------------------------------------------------------ *)
(* IR verifier pass *)

let test_verifier_catches_corrupt_graph () =
  let module G = Core.Graph in
  let module Lt = Core.Logical_tensor in
  let sh = Core.Shape.of_list in
  let a = Lt.create ~name:"a" Core.Dtype.F32 (sh [ 2; 2 ]) in
  let ghost = Lt.create ~name:"ghost" Core.Dtype.F32 (sh [ 2; 2 ]) in
  (* output never produced, not an input: def-before-use violation *)
  let bad = G.create ~inputs:[ a ] ~outputs:[ ghost ] [] in
  Fun.protect ~finally:(fun () -> Verify.set_enabled None) (fun () ->
      Verify.set_enabled (Some false);
      Alcotest.(check bool) "disabled: run is identity" true
        (Verify.run ~pass:"t" bad == bad);
      Verify.set_enabled (Some true);
      match Verify.run ~pass:"cse" bad with
      | _ -> Alcotest.fail "verifier accepted a corrupt graph"
      | exception Core.Errors.Error (Core.Errors.Compile_error { stage; ctx; _ })
        ->
          Alcotest.(check string) "stage" "verify" stage;
          Alcotest.(check (option string)) "names the pass" (Some "cse")
            (List.assoc_opt "pass" ctx))

let test_verifier_passes_pipeline () =
  let b = mlp ~batch:3 ~hidden:[ 5; 4 ] () in
  Fun.protect ~finally:(fun () -> Verify.set_enabled None) (fun () ->
      Verify.set_enabled (Some true);
      match Core.compile_checked ~config:(compile_config ()) b.Mlp.graph with
      | Ok compiled -> (
          match Core.execute_checked compiled b.Mlp.data with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "execute under verifier failed: %s"
                (Core.Errors.to_string e))
      | Error e ->
          Alcotest.failf "compile under verifier failed: %s"
            (Core.Errors.to_string e))

(* ------------------------------------------------------------------ *)
(* Shape-polymorphic handles and request coalescing *)

module Dim = Gc_graph_ir.Dim

let poly_mlp ?(hidden = [ 6; 5 ]) () =
  Mlp.build_f32 ~seed:7 ~batch:4 ~batch_dim:(Dim.Sym "b") ~hidden ()

(* Bindings for an actual batch of [n]: fresh activations, the built
   graph's own (physically shared) weights. *)
let poly_bindings (b : Mlp.built) n =
  List.map
    (fun ((lt : Core.Logical_tensor.t), v) ->
      if Dim.has_sym lt.dims then
        ( lt,
          Core.Tensor.random ~seed:(500 + n) Core.Dtype.F32
            (Core.Shape.of_list [ n; Core.Shape.dim lt.shape 1 ]) )
      else (lt, v))
    b.Mlp.data

let coalesce_config ?(window_ms = 25.) ?(workers = 1) ?default_deadline_ms () =
  {
    (serve_config ~workers ~queue_depth:16 ?default_deadline_ms ()) with
    Serve.coalesce_window_ms = window_ms;
    max_coalesce = 8;
  }

let check_ok_equal ~msg want = function
  | Ok outs ->
      List.iter2
        (fun got w ->
          Alcotest.(check bool) msg true (Core.Tensor.equal got w))
        outs want
  | Error e -> Alcotest.failf "%s failed: %s" msg (Core.Errors.to_string e)

let test_poly_handle_serves () =
  let b = poly_mlp () in
  let p = Core.compile_poly ~config:(compile_config ()) b.Mlp.graph in
  with_server ~config:(serve_config ()) (fun server ->
      let h = Serve.register_poly server p in
      List.iter
        (fun n ->
          let bs = poly_bindings b n in
          let want = Core.execute_poly p bs in
          check_ok_equal ~msg:(Printf.sprintf "batch %d" n) want
            (Serve.call server h bs))
        [ 1; 3; 4; 8; 9 ];
      (* 5 requests, 3 buckets (1, 4, 8, 16): instances shared per bucket *)
      Alcotest.(check bool) "buckets reused" true (Core.poly_instances p <= 4))

let test_coalesced_matches_solo () =
  let b = poly_mlp ~hidden:[ 16; 8 ] () in
  let p = Core.compile_poly ~config:(compile_config ()) b.Mlp.graph in
  let before_c = Counters.snapshot () in
  with_server ~config:(coalesce_config ()) (fun server ->
      let h = Serve.register_poly server p in
      (* warm one request through (also settles the latency EWMA) *)
      (match Serve.call server h (poly_bindings b 2) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "warmup: %s" (Core.Errors.to_string e));
      let batches = [ 1; 2; 3; 5; 4; 1 ] in
      let reqs = List.map (poly_bindings b) batches in
      let wants = List.map (Core.execute_poly p) reqs in
      let tickets = List.map (Serve.submit server h) reqs in
      List.iter2
        (fun want tk ->
          check_ok_equal ~msg:"coalesced == solo" want (Serve.await tk))
        wants tickets;
      let s = Serve.stats server in
      Alcotest.(check bool) "some batch coalesced" true (s.Serve.coalesced_batches >= 1);
      Alcotest.(check bool) "tickets packed" true (s.Serve.coalesced_tickets >= 2));
  let after_c = Counters.snapshot () in
  Alcotest.(check bool) "global counter moved" true
    (after_c.coalesced_batches > before_c.coalesced_batches);
  Alcotest.(check int) "no window deadline violations"
    before_c.window_deadline_violations after_c.window_deadline_violations

let test_tight_deadline_not_coalesced () =
  let b = poly_mlp () in
  let p = Core.compile_poly ~config:(compile_config ()) b.Mlp.graph in
  with_server ~config:(coalesce_config ~window_ms:200. ()) (fun server ->
      let h = Serve.register_poly server p in
      (* cold EWMA: a deadline-bearing request is never held *)
      (match Serve.call ~deadline_ms:500 server h (poly_bindings b 2) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "warmup: %s" (Core.Errors.to_string e));
      let before = Serve.stats server in
      let t0 = Unix.gettimeofday () in
      let o = Serve.call ~deadline_ms:50 server h (poly_bindings b 3) in
      let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      (match o with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "tight call: %s" (Core.Errors.to_string e));
      Alcotest.(check bool)
        (Printf.sprintf "dispatched before window (%.1f ms)" elapsed_ms)
        true (elapsed_ms < 100.);
      let s = Serve.stats server in
      Alcotest.(check int) "not coalesced" before.Serve.coalesced_batches
        s.Serve.coalesced_batches);
  Alcotest.(check int) "no violations" 0
    (Counters.snapshot ()).window_deadline_violations
  [@@warning "-27"]

let test_chaos_during_coalesce () =
  let b = poly_mlp ~hidden:[ 16; 8 ] () in
  let p = Core.compile_poly ~config:(compile_config ()) b.Mlp.graph in
  with_server ~config:(coalesce_config ()) (fun server ->
      let h = Serve.register_poly server p in
      (match Serve.call server h (poly_bindings b 2) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "warmup: %s" (Core.Errors.to_string e));
      with_faults ~seed:5 "worker:2,kernel_nan:3" (fun () ->
          let reqs = List.map (poly_bindings b) [ 1; 2; 3; 4; 2; 1 ] in
          let tickets = List.map (Serve.submit server h) reqs in
          let outcomes = List.map Serve.await tickets in
          (* every ticket resolves exactly once, with a typed outcome *)
          Alcotest.(check int) "all resolved" 6 (List.length outcomes);
          List.iter
            (fun o -> Alcotest.(check bool) "typed" true (err_class o <> ""))
            outcomes);
      (* faults cleared: the server is still serviceable *)
      match Serve.call server h (poly_bindings b 3) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "post-chaos: %s" (Core.Errors.to_string e))

(* Acceptance invariant: gathering never causes a deadline miss — the
   window-violation counter stays at zero across a mixed-deadline soak
   with coalescing armed. *)
let test_zero_window_violations_soak () =
  let b = poly_mlp ~hidden:[ 16; 8 ] () in
  let p = Core.compile_poly ~config:(compile_config ()) b.Mlp.graph in
  let before = (Counters.snapshot ()).window_deadline_violations in
  with_server ~config:(coalesce_config ~window_ms:2. ~workers:2 ())
    (fun server ->
      let h = Serve.register_poly server p in
      (match Serve.call server h (poly_bindings b 2) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "warmup: %s" (Core.Errors.to_string e));
      let deadlines = [| Some 50; Some 200; None |] in
      let clients = 3 and iters = 4 in
      let threads =
        List.init clients (fun c ->
            Thread.create
              (fun () ->
                for i = 0 to iters - 1 do
                  let deadline_ms =
                    deadlines.((c + i) mod Array.length deadlines)
                  in
                  ignore (Serve.call ?deadline_ms server h (poly_bindings b (1 + ((c + i) mod 5))))
                done)
              ())
      in
      List.iter Thread.join threads);
  Alcotest.(check int) "zero gather-window deadline violations" before
    (Counters.snapshot ()).window_deadline_violations

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "serving",
        [
          Alcotest.test_case "call matches reference" `Quick
            test_call_matches_reference;
          Alcotest.test_case "queue full sheds typed" `Quick
            test_queue_full_sheds_typed;
          Alcotest.test_case "draining rejects" `Quick test_draining_rejects;
        ] );
      ( "overload",
        [ Alcotest.test_case "soak" `Slow test_overload_soak ] );
      ( "deadlines",
        [
          Alcotest.test_case "execute_checked deadline param" `Quick
            test_execute_deadline_param;
        ] );
      ( "budget",
        [
          Alcotest.test_case "rejects and recovers" `Quick
            test_budget_rejects_and_recovers;
          Alcotest.test_case "backpressure shrinks queue" `Quick
            test_backpressure_shrinks_queue;
          QCheck_alcotest.to_alcotest test_budget_drains_to_zero_qcheck;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens and recovers" `Quick
            test_breaker_opens_and_recovers;
        ] );
      ( "models",
        [
          Alcotest.test_case "served outputs match reference" `Quick
            test_models_served_match_reference;
          Alcotest.test_case "chaos overload" `Slow test_models_chaos_overload;
        ] );
      ( "verify",
        [
          Alcotest.test_case "catches corrupt graph" `Quick
            test_verifier_catches_corrupt_graph;
          Alcotest.test_case "pipeline clean under verifier" `Quick
            test_verifier_passes_pipeline;
        ] );
      ( "coalesce",
        [
          Alcotest.test_case "poly handle serves" `Quick test_poly_handle_serves;
          Alcotest.test_case "coalesced matches solo" `Quick
            test_coalesced_matches_solo;
          Alcotest.test_case "tight deadline not coalesced" `Quick
            test_tight_deadline_not_coalesced;
          Alcotest.test_case "chaos during coalesce" `Slow
            test_chaos_during_coalesce;
          Alcotest.test_case "zero window violations soak" `Slow
            test_zero_window_violations_soak;
        ] );
    ]
