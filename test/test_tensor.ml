(* Unit and property tests for the tensor substrate: dtypes, shapes,
   layouts, buffers, tensors, reorders and reference ops. *)

open Gc_tensor

let sh = Shape.of_list

(* ------------------------------------------------------------------ *)
(* Dtype *)

let test_dtype_sizes () =
  Alcotest.(check int) "f32" 4 (Dtype.size_bytes F32);
  Alcotest.(check int) "bf16" 2 (Dtype.size_bytes Bf16);
  Alcotest.(check int) "s32" 4 (Dtype.size_bytes S32);
  Alcotest.(check int) "s8" 1 (Dtype.size_bytes S8);
  Alcotest.(check int) "u8" 1 (Dtype.size_bytes U8);
  Alcotest.(check int) "s64" 8 (Dtype.size_bytes S64)

let test_dtype_roundtrip_string () =
  List.iter
    (fun dt ->
      Alcotest.(check bool)
        (Dtype.to_string dt) true
        (match Dtype.of_string (Dtype.to_string dt) with
        | Some dt' -> Dtype.equal dt dt'
        | None -> false))
    Dtype.all

let test_dtype_saturation () =
  Alcotest.(check (float 0.)) "s8 high" 127. (Dtype.round_to S8 300.);
  Alcotest.(check (float 0.)) "s8 low" (-128.) (Dtype.round_to S8 (-300.));
  Alcotest.(check (float 0.)) "u8 high" 255. (Dtype.round_to U8 300.);
  Alcotest.(check (float 0.)) "u8 low" 0. (Dtype.round_to U8 (-5.));
  Alcotest.(check (float 0.)) "s8 round" 3. (Dtype.round_to S8 2.6);
  Alcotest.(check (float 0.)) "f32 identity" 2.6 (Dtype.round_to F32 2.6)

let test_bf16_rounding () =
  (* bf16 keeps ~8 mantissa bits: 1.0 + 2^-9 rounds to 1.0 *)
  let x = 1. +. (1. /. 512.) in
  let r = Dtype.round_to Bf16 x in
  Alcotest.(check bool) "coarse" true (Float.abs (r -. 1.) < 1e-2);
  (* representable values survive *)
  Alcotest.(check (float 0.)) "exact" 1.5 (Dtype.round_to Bf16 1.5);
  Alcotest.(check (float 0.)) "neg" (-2.) (Dtype.round_to Bf16 (-2.))

(* ------------------------------------------------------------------ *)
(* Shape *)

let test_shape_basic () =
  let s = sh [ 2; 3; 4 ] in
  Alcotest.(check int) "rank" 3 (Shape.rank s);
  Alcotest.(check int) "numel" 24 (Shape.numel s);
  Alcotest.(check int) "dim" 3 (Shape.dim s 1);
  Alcotest.(check bool) "scalar" true (Shape.is_scalar Shape.scalar);
  Alcotest.(check int) "scalar numel" 1 (Shape.numel Shape.scalar)

let test_shape_offset_roundtrip () =
  let s = sh [ 3; 4; 5 ] in
  Shape.iter s (fun idx ->
      let off = Shape.offset s idx in
      Alcotest.(check (array int)) "unoffset" idx (Shape.unoffset s off))

let test_shape_offset_rejects () =
  let s = sh [ 2; 2 ] in
  Alcotest.check_raises "oob" (Invalid_argument "Shape.offset: index 2 out of range [0,2) at dim 0")
    (fun () -> ignore (Shape.offset s [| 2; 0 |]))

let test_shape_broadcast () =
  let check name a b expect =
    match (Shape.broadcast (sh a) (sh b), expect) with
    | Some s, Some e -> Alcotest.(check bool) name true (Shape.equal s (sh e))
    | None, None -> ()
    | Some s, None -> Alcotest.failf "%s: expected no broadcast, got %s" name (Shape.to_string s)
    | None, Some _ -> Alcotest.failf "%s: expected broadcast" name
  in
  check "same" [ 2; 3 ] [ 2; 3 ] (Some [ 2; 3 ]);
  check "scalar" [ 2; 3 ] [] (Some [ 2; 3 ]);
  check "ones" [ 2; 1 ] [ 1; 3 ] (Some [ 2; 3 ]);
  check "rank" [ 4; 2; 3 ] [ 2; 3 ] (Some [ 4; 2; 3 ]);
  check "trailing one" [ 2; 3 ] [ 3 ] (Some [ 2; 3 ]);
  check "fail" [ 2; 3 ] [ 2; 4 ] None

let test_shape_iter_order () =
  let s = sh [ 2; 2 ] in
  let acc = ref [] in
  Shape.iter s (fun idx -> acc := Array.to_list idx :: !acc);
  Alcotest.(check (list (list int)))
    "row major"
    [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    (List.rev !acc)

let test_shape_zero_dim () =
  let s = sh [ 2; 0; 3 ] in
  Alcotest.(check int) "numel 0" 0 (Shape.numel s);
  let count = ref 0 in
  Shape.iter s (fun _ -> incr count);
  Alcotest.(check int) "iter none" 0 !count

(* ------------------------------------------------------------------ *)
(* Layout *)

let test_layout_physical_dims () =
  (* A[M,K] blocked [M/MB, K/KB, MB, KB] *)
  let l = Layout.blocked_2d ~outer_block:32 ~inner_block:16 in
  let pd = Layout.physical_dims l (sh [ 64; 48 ]) in
  Alcotest.(check bool) "A blocked" true (Shape.equal pd (sh [ 2; 3; 32; 16 ]));
  (* B[K,N] swapped-inner: [K/KB, N/NB, NB, KB] *)
  let lb = Layout.blocked_2d_swapped ~outer_block:16 ~inner_block:32 in
  let pd = Layout.physical_dims lb (sh [ 48; 64 ]) in
  Alcotest.(check bool) "B blocked" true (Shape.equal pd (sh [ 3; 2; 32; 16 ]))

let test_layout_padding () =
  (* non-multiple dims are padded up *)
  let l = Layout.blocked_2d ~outer_block:32 ~inner_block:16 in
  let pd = Layout.physical_dims l (sh [ 33; 17 ]) in
  Alcotest.(check bool) "padded" true (Shape.equal pd (sh [ 2; 2; 32; 16 ]));
  Alcotest.(check int) "physical numel" (2 * 2 * 32 * 16)
    (Layout.physical_numel l (sh [ 33; 17 ]))

let test_layout_vnni () =
  let l = Layout.vnni ~kb:16 ~nb:32 in
  let pd = Layout.physical_dims l (sh [ 64; 64 ]) in
  Alcotest.(check bool) "vnni dims" true (Shape.equal pd (sh [ 4; 2; 4; 32; 4 ]))

let test_layout_offset_bijective () =
  (* every logical index maps to a distinct physical offset *)
  let ls =
    [
      Layout.Plain;
      Layout.blocked_2d ~outer_block:4 ~inner_block:4;
      Layout.blocked_2d_swapped ~outer_block:4 ~inner_block:4;
      Layout.vnni ~kb:4 ~nb:4;
      Layout.Blocked [ (0, 3) ];
    ]
  in
  List.iter
    (fun l ->
      let shape = sh [ 9; 8 ] in
      let seen = Hashtbl.create 64 in
      Shape.iter shape (fun idx ->
          let off = Layout.offset l shape idx in
          Alcotest.(check bool)
            (Printf.sprintf "%s in range" (Layout.to_string l))
            true
            (off >= 0 && off < Layout.physical_numel l shape);
          Alcotest.(check bool)
            (Printf.sprintf "%s distinct" (Layout.to_string l))
            false (Hashtbl.mem seen off);
          Hashtbl.add seen off ()))
    ls

let test_layout_batched () =
  let l = Layout.batched ~rank:4 (Layout.blocked_2d ~outer_block:8 ~inner_block:8) in
  let pd = Layout.physical_dims l (sh [ 2; 3; 16; 16 ]) in
  Alcotest.(check bool) "batched" true (Shape.equal pd (sh [ 2; 3; 2; 2; 8; 8 ]))

(* ------------------------------------------------------------------ *)
(* Buffer *)

let test_buffer_create_zeroed () =
  List.iter
    (fun dt ->
      let b = Buffer.create dt 7 in
      Alcotest.(check int) "len" 7 (Buffer.length b);
      for i = 0 to 6 do
        Alcotest.(check (float 0.)) "zero" 0. (Buffer.get b i)
      done)
    Dtype.all

let test_buffer_saturating_set () =
  let b = Buffer.create Dtype.S8 2 in
  Buffer.set b 0 999.;
  Buffer.set b 1 (-999.);
  Alcotest.(check (float 0.)) "high" 127. (Buffer.get b 0);
  Alcotest.(check (float 0.)) "low" (-128.) (Buffer.get b 1)

let test_buffer_fill_range () =
  let b = Buffer.create Dtype.F32 10 in
  Buffer.fill_range b 2 5 3.5;
  Alcotest.(check (float 0.)) "before" 0. (Buffer.get b 1);
  Alcotest.(check (float 0.)) "inside" 3.5 (Buffer.get b 6);
  Alcotest.(check (float 0.)) "after" 0. (Buffer.get b 7)

let test_buffer_copy_range_convert () =
  let src = Buffer.create Dtype.F32 4 in
  List.iteri (fun i v -> Buffer.set src i v) [ 1.2; -3.7; 200.; -200. ];
  let dst = Buffer.create Dtype.S8 4 in
  Buffer.copy_range ~src ~soff:0 ~dst ~doff:0 4;
  Alcotest.(check (float 0.)) "round" 1. (Buffer.get dst 0);
  Alcotest.(check (float 0.)) "round neg" (-4.) (Buffer.get dst 1);
  Alcotest.(check (float 0.)) "sat" 127. (Buffer.get dst 2);
  Alcotest.(check (float 0.)) "sat neg" (-128.) (Buffer.get dst 3)

let test_buffer_blit_dtype_mismatch () =
  let a = Buffer.create Dtype.F32 4 and b = Buffer.create Dtype.S32 4 in
  (* typed taxonomy: dtype mismatch is an [Invalid_input] carrying both
     dtypes in its structured context *)
  Alcotest.(check bool) "mismatch classified" true
    (try
       Buffer.blit ~src:a ~dst:b;
       false
     with Gc_errors.Error (Gc_errors.Invalid_input { what; ctx }) ->
       what = "Buffer.blit: dtype mismatch"
       && List.assoc_opt "src_dtype" ctx = Some "f32"
       && List.assoc_opt "dst_dtype" ctx = Some "s32");
  (* named variant carries the buffer identity *)
  Alcotest.(check bool) "named" true
    (try
       Buffer.blit_named ~name:"w0" ~src:a ~dst:b;
       false
     with Gc_errors.Error (Gc_errors.Invalid_input { ctx; _ }) ->
       List.assoc_opt "buffer" ctx = Some "w0")

(* ------------------------------------------------------------------ *)
(* Tensor *)

let test_tensor_get_set_plain () =
  let t = Tensor.create Dtype.F32 (sh [ 2; 3 ]) in
  Tensor.set t [| 1; 2 |] 42.;
  Alcotest.(check (float 0.)) "get" 42. (Tensor.get t [| 1; 2 |]);
  Alcotest.(check (float 0.)) "other" 0. (Tensor.get t [| 0; 0 |])

let test_tensor_layout_transparent () =
  (* same logical contents regardless of layout *)
  let shape = sh [ 8; 8 ] in
  let mk layout =
    Tensor.init ~layout Dtype.F32 shape (fun idx ->
        float_of_int ((10 * idx.(0)) + idx.(1)))
  in
  let plain = mk Layout.Plain in
  let blocked = mk (Layout.blocked_2d ~outer_block:4 ~inner_block:2) in
  Alcotest.(check bool) "equal" true (Tensor.equal plain blocked)

let test_tensor_random_deterministic () =
  let a = Tensor.random ~seed:7 Dtype.F32 (sh [ 32 ]) in
  let b = Tensor.random ~seed:7 Dtype.F32 (sh [ 32 ]) in
  let c = Tensor.random ~seed:8 Dtype.F32 (sh [ 32 ]) in
  Alcotest.(check bool) "same seed" true (Tensor.equal a b);
  Alcotest.(check bool) "diff seed" false (Tensor.equal a c)

let test_tensor_random_int_range () =
  let t = Tensor.random ~seed:3 ~lo:(-10.) ~hi:10. Dtype.S8 (sh [ 256 ]) in
  Tensor.iter t (fun _ v ->
      Alcotest.(check bool) "in range" true (v >= -10. && v <= 10.);
      Alcotest.(check (float 0.)) "integral" (Float.round v) v)

let test_tensor_item_scalar () =
  let t = Tensor.scalar Dtype.F32 3.25 in
  Alcotest.(check (float 0.)) "item" 3.25 (Tensor.item t)

let test_tensor_allclose () =
  let a = Tensor.of_float_list Dtype.F32 (sh [ 2 ]) [ 1.; 2. ] in
  let b = Tensor.of_float_list Dtype.F32 (sh [ 2 ]) [ 1.000001; 2. ] in
  Alcotest.(check bool) "close" true (Tensor.allclose a b);
  let c = Tensor.of_float_list Dtype.F32 (sh [ 2 ]) [ 1.1; 2. ] in
  Alcotest.(check bool) "far" false (Tensor.allclose a c)

(* ------------------------------------------------------------------ *)
(* Reorder *)

let test_reorder_roundtrip () =
  let t = Tensor.random ~seed:1 Dtype.F32 (sh [ 12; 20 ]) in
  let blocked = Reorder.to_layout t (Layout.blocked_2d ~outer_block:4 ~inner_block:5) in
  let back = Reorder.to_layout blocked Layout.Plain in
  Alcotest.(check bool) "roundtrip" true (Tensor.equal t back)

let test_reorder_cast () =
  let t = Tensor.of_float_list Dtype.F32 (sh [ 3 ]) [ 1.4; 2.6; -300. ] in
  let c = Reorder.cast t Dtype.S8 in
  Alcotest.(check (float 0.)) "a" 1. (Tensor.get c [| 0 |]);
  Alcotest.(check (float 0.)) "b" 3. (Tensor.get c [| 1 |]);
  Alcotest.(check (float 0.)) "c" (-128.) (Tensor.get c [| 2 |])

let test_reorder_transpose () =
  let t = Tensor.init Dtype.F32 (sh [ 2; 3 ]) (fun i -> float_of_int ((i.(0) * 3) + i.(1))) in
  let tr = Reorder.transpose t [| 1; 0 |] in
  Alcotest.(check bool) "shape" true (Shape.equal (Tensor.shape tr) (sh [ 3; 2 ]));
  Alcotest.(check (float 0.)) "val" (Tensor.get t [| 1; 2 |]) (Tensor.get tr [| 2; 1 |])

let test_reorder_pad_unpad () =
  let t = Tensor.random ~seed:2 Dtype.F32 (sh [ 3; 5 ]) in
  let p = Reorder.pad t (sh [ 4; 8 ]) in
  Alcotest.(check (float 0.)) "pad zero" 0. (Tensor.get p [| 3; 7 |]);
  Alcotest.(check (float 0.)) "pad keep" (Tensor.get t [| 2; 4 |]) (Tensor.get p [| 2; 4 |]);
  let u = Reorder.unpad p (sh [ 3; 5 ]) in
  Alcotest.(check bool) "unpad" true (Tensor.equal t u)

(* ------------------------------------------------------------------ *)
(* Ref ops *)

let feq = Alcotest.(check (float 1e-5))

let test_ref_eltwise () =
  let t = Tensor.of_float_list Dtype.F32 (sh [ 4 ]) [ -1.; 0.; 0.5; 2. ] in
  let r = Ref_ops.relu t in
  Alcotest.(check (list (float 0.))) "relu" [ 0.; 0.; 0.5; 2. ]
    (Array.to_list (Tensor.to_float_array r));
  let s = Ref_ops.sigmoid t in
  feq "sigmoid(0)" 0.5 (Tensor.get s [| 1 |]);
  let e = Ref_ops.exp t in
  feq "exp(2)" (Stdlib.exp 2.) (Tensor.get e [| 3 |])

let test_ref_gelu_forms_agree () =
  let t = Tensor.random ~seed:5 ~lo:(-3.) ~hi:3. Dtype.F32 (sh [ 64 ]) in
  let a = Ref_ops.gelu_erf t and b = Ref_ops.gelu_tanh t in
  Alcotest.(check bool) "close" true (Tensor.allclose ~rtol:1e-2 ~atol:5e-3 a b)

let test_ref_binary_broadcast () =
  let a = Tensor.of_float_list Dtype.F32 (sh [ 2; 2 ]) [ 1.; 2.; 3.; 4. ] in
  let b = Tensor.of_float_list Dtype.F32 (sh [ 2 ]) [ 10.; 20. ] in
  let c = Ref_ops.add a b in
  Alcotest.(check (list (float 0.))) "bcast add" [ 11.; 22.; 13.; 24. ]
    (Array.to_list (Tensor.to_float_array c))

let test_ref_reduce () =
  let a = Tensor.of_float_list Dtype.F32 (sh [ 2; 3 ]) [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  let s = Ref_ops.reduce Sum ~axis:1 ~keepdims:false a in
  Alcotest.(check (list (float 0.))) "sum ax1" [ 6.; 15. ]
    (Array.to_list (Tensor.to_float_array s));
  let m = Ref_ops.reduce Max ~axis:0 ~keepdims:true a in
  Alcotest.(check bool) "keepdims shape" true (Shape.equal (Tensor.shape m) (sh [ 1; 3 ]));
  Alcotest.(check (list (float 0.))) "max ax0" [ 4.; 5.; 6. ]
    (Array.to_list (Tensor.to_float_array m));
  let mean = Ref_ops.reduce Mean ~axis:1 ~keepdims:false a in
  Alcotest.(check (list (float 0.))) "mean" [ 2.; 5. ]
    (Array.to_list (Tensor.to_float_array mean));
  (* negative axis *)
  let s2 = Ref_ops.reduce Sum ~axis:(-1) ~keepdims:false a in
  Alcotest.(check bool) "neg axis" true (Tensor.equal s s2)

let test_ref_matmul_small () =
  let a = Tensor.of_float_list Dtype.F32 (sh [ 2; 3 ]) [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  let b = Tensor.of_float_list Dtype.F32 (sh [ 3; 2 ]) [ 7.; 8.; 9.; 10.; 11.; 12. ] in
  let c = Ref_ops.matmul a b in
  Alcotest.(check (list (float 0.))) "2x3 @ 3x2" [ 58.; 64.; 139.; 154. ]
    (Array.to_list (Tensor.to_float_array c))

let test_ref_matmul_batched_broadcast () =
  let a = Tensor.random ~seed:11 Dtype.F32 (sh [ 2; 3; 4 ]) in
  let b = Tensor.random ~seed:12 Dtype.F32 (sh [ 4; 5 ]) in
  let c = Ref_ops.matmul a b in
  Alcotest.(check bool) "shape" true (Shape.equal (Tensor.shape c) (sh [ 2; 3; 5 ]));
  (* batch 1 equals the unbatched product of that slice *)
  let a1 = Tensor.init Dtype.F32 (sh [ 3; 4 ]) (fun i -> Tensor.get a [| 1; i.(0); i.(1) |]) in
  let c1 = Ref_ops.matmul a1 b in
  Shape.iter (sh [ 3; 5 ]) (fun i ->
      feq "batch slice" (Tensor.get c1 i) (Tensor.get c [| 1; i.(0); i.(1) |]))

let test_ref_matmul_int8_exact () =
  let a = Tensor.random ~seed:20 ~lo:0. ~hi:255. Dtype.U8 (sh [ 4; 8 ]) in
  let b = Tensor.random ~seed:21 ~lo:(-128.) ~hi:127. Dtype.S8 (sh [ 8; 3 ]) in
  let c = Ref_ops.matmul a b in
  Alcotest.(check bool) "s32 out" true (Dtype.equal (Tensor.dtype c) Dtype.S32);
  (* recompute one element manually *)
  let acc = ref 0 in
  for k = 0 to 7 do
    acc := !acc + (int_of_float (Tensor.get a [| 2; k |]) * int_of_float (Tensor.get b [| k; 1 |]))
  done;
  Alcotest.(check (float 0.)) "exact" (float_of_int !acc) (Tensor.get c [| 2; 1 |])

let test_ref_softmax () =
  let t = Tensor.of_float_list Dtype.F32 (sh [ 2; 3 ]) [ 1.; 2.; 3.; 1.; 1.; 1. ] in
  let s = Ref_ops.softmax ~axis:1 t in
  (* rows sum to one *)
  let sums = Ref_ops.reduce Sum ~axis:1 ~keepdims:false s in
  Tensor.iter sums (fun _ v -> feq "sum=1" 1. v);
  feq "uniform" (1. /. 3.) (Tensor.get s [| 1; 0 |]);
  (* shift invariance *)
  let t2 = Ref_ops.add t (Tensor.scalar Dtype.F32 100.) in
  let s2 = Ref_ops.softmax ~axis:1 t2 in
  Alcotest.(check bool) "shift invariant" true (Tensor.allclose s s2)

let test_ref_quantize_roundtrip () =
  let t = Tensor.random ~seed:9 ~lo:(-4.) ~hi:4. Dtype.F32 (sh [ 32 ]) in
  let q = Ref_ops.quantize ~scale:0.05 ~zp:10 Dtype.U8 t in
  let d = Ref_ops.dequantize ~scale:0.05 ~zp:10 q in
  (* u8 with zp=10 and scale 0.05 represents [-0.5, 12.25]; inside that
     range the roundtrip error is bounded by scale/2 *)
  Tensor.iter t (fun idx v ->
      if v > -0.45 && v < 3.9 then
        Alcotest.(check bool) "within scale" true
          (Float.abs (Tensor.get d idx -. v) <= 0.026));
  (* below the representable range the value saturates to -0.5 *)
  Tensor.iter t (fun idx v ->
      if v < -0.6 then
        Alcotest.(check (float 1e-6)) "saturates" (-0.5) (Tensor.get d idx))

let test_ref_colsum () =
  let b = Tensor.of_float_list Dtype.F32 (sh [ 2; 3 ]) [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  let cs = Ref_ops.colsum b in
  Alcotest.(check (list (float 0.))) "colsum" [ 5.; 7.; 9. ]
    (Array.to_list (Tensor.to_float_array cs))

(* ------------------------------------------------------------------ *)
(* Property tests *)

let small_shape =
  QCheck.Gen.(
    list_size (int_range 1 3) (int_range 1 6) >|= fun dims -> Shape.of_list dims)

let arb_shape = QCheck.make ~print:Shape.to_string small_shape

let prop_offset_bijective =
  QCheck.Test.make ~name:"shape offset is bijective" ~count:100 arb_shape
    (fun s ->
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      Shape.iter s (fun idx ->
          let off = Shape.offset s idx in
          if Hashtbl.mem seen off then ok := false;
          Hashtbl.add seen off ());
      !ok && Hashtbl.length seen = Shape.numel s)

let prop_broadcast_commutative =
  QCheck.Test.make ~name:"broadcast is commutative" ~count:200
    (QCheck.pair arb_shape arb_shape) (fun (a, b) ->
      match (Shape.broadcast a b, Shape.broadcast b a) with
      | Some x, Some y -> Shape.equal x y
      | None, None -> true
      | _ -> false)

let prop_blocked_layout_roundtrip =
  QCheck.Test.make ~name:"reorder to blocked and back is identity" ~count:50
    (QCheck.pair (QCheck.make QCheck.Gen.(pair (int_range 1 12) (int_range 1 12)))
       (QCheck.make QCheck.Gen.(pair (int_range 1 5) (int_range 1 5))))
    (fun ((m, n), (bm, bn)) ->
      let t =
        Tensor.random ~seed:(m + (13 * n)) Dtype.F32 (sh [ m; n ])
      in
      let blocked =
        Reorder.to_layout t (Layout.blocked_2d ~outer_block:bm ~inner_block:bn)
      in
      Tensor.equal t (Reorder.to_layout blocked Layout.Plain))

let prop_softmax_rows_sum_to_one =
  QCheck.Test.make ~name:"softmax rows sum to 1" ~count:50
    (QCheck.make QCheck.Gen.(pair (int_range 1 8) (int_range 1 8)))
    (fun (m, n) ->
      let t = Tensor.random ~seed:(m * n) ~lo:(-5.) ~hi:5. Dtype.F32 (sh [ m; n ]) in
      let s = Ref_ops.softmax ~axis:1 t in
      let sums = Ref_ops.reduce Sum ~axis:1 ~keepdims:false s in
      let ok = ref true in
      Tensor.iter sums (fun _ v -> if Float.abs (v -. 1.) > 1e-5 then ok := false);
      !ok)

let prop_matmul_distributes_over_add =
  QCheck.Test.make ~name:"A(B+C) = AB + AC" ~count:30
    (QCheck.make QCheck.Gen.(triple (int_range 1 6) (int_range 1 6) (int_range 1 6)))
    (fun (m, k, n) ->
      let a = Tensor.random ~seed:1 Dtype.F32 (sh [ m; k ]) in
      let b = Tensor.random ~seed:2 Dtype.F32 (sh [ k; n ]) in
      let c = Tensor.random ~seed:3 Dtype.F32 (sh [ k; n ]) in
      let lhs = Ref_ops.matmul a (Ref_ops.add b c) in
      let rhs = Ref_ops.add (Ref_ops.matmul a b) (Ref_ops.matmul a c) in
      Tensor.allclose ~rtol:1e-4 ~atol:1e-5 lhs rhs)

let () =
  Alcotest.run "gc_tensor"
    [
      ( "dtype",
        [
          Alcotest.test_case "sizes" `Quick test_dtype_sizes;
          Alcotest.test_case "string roundtrip" `Quick test_dtype_roundtrip_string;
          Alcotest.test_case "saturation" `Quick test_dtype_saturation;
          Alcotest.test_case "bf16 rounding" `Quick test_bf16_rounding;
        ] );
      ( "shape",
        [
          Alcotest.test_case "basic" `Quick test_shape_basic;
          Alcotest.test_case "offset roundtrip" `Quick test_shape_offset_roundtrip;
          Alcotest.test_case "offset rejects" `Quick test_shape_offset_rejects;
          Alcotest.test_case "broadcast" `Quick test_shape_broadcast;
          Alcotest.test_case "iter order" `Quick test_shape_iter_order;
          Alcotest.test_case "zero dim" `Quick test_shape_zero_dim;
        ] );
      ( "layout",
        [
          Alcotest.test_case "physical dims" `Quick test_layout_physical_dims;
          Alcotest.test_case "padding" `Quick test_layout_padding;
          Alcotest.test_case "vnni" `Quick test_layout_vnni;
          Alcotest.test_case "offset bijective" `Quick test_layout_offset_bijective;
          Alcotest.test_case "batched" `Quick test_layout_batched;
        ] );
      ( "buffer",
        [
          Alcotest.test_case "create zeroed" `Quick test_buffer_create_zeroed;
          Alcotest.test_case "saturating set" `Quick test_buffer_saturating_set;
          Alcotest.test_case "fill range" `Quick test_buffer_fill_range;
          Alcotest.test_case "copy range convert" `Quick test_buffer_copy_range_convert;
          Alcotest.test_case "blit mismatch" `Quick test_buffer_blit_dtype_mismatch;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "get/set" `Quick test_tensor_get_set_plain;
          Alcotest.test_case "layout transparent" `Quick test_tensor_layout_transparent;
          Alcotest.test_case "random deterministic" `Quick test_tensor_random_deterministic;
          Alcotest.test_case "random int range" `Quick test_tensor_random_int_range;
          Alcotest.test_case "item" `Quick test_tensor_item_scalar;
          Alcotest.test_case "allclose" `Quick test_tensor_allclose;
        ] );
      ( "reorder",
        [
          Alcotest.test_case "roundtrip" `Quick test_reorder_roundtrip;
          Alcotest.test_case "cast" `Quick test_reorder_cast;
          Alcotest.test_case "transpose" `Quick test_reorder_transpose;
          Alcotest.test_case "pad/unpad" `Quick test_reorder_pad_unpad;
        ] );
      ( "ref_ops",
        [
          Alcotest.test_case "eltwise" `Quick test_ref_eltwise;
          Alcotest.test_case "gelu forms agree" `Quick test_ref_gelu_forms_agree;
          Alcotest.test_case "binary broadcast" `Quick test_ref_binary_broadcast;
          Alcotest.test_case "reduce" `Quick test_ref_reduce;
          Alcotest.test_case "matmul small" `Quick test_ref_matmul_small;
          Alcotest.test_case "matmul batched" `Quick test_ref_matmul_batched_broadcast;
          Alcotest.test_case "matmul int8 exact" `Quick test_ref_matmul_int8_exact;
          Alcotest.test_case "softmax" `Quick test_ref_softmax;
          Alcotest.test_case "quantize roundtrip" `Quick test_ref_quantize_roundtrip;
          Alcotest.test_case "colsum" `Quick test_ref_colsum;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_offset_bijective;
            prop_broadcast_commutative;
            prop_blocked_layout_roundtrip;
            prop_softmax_rows_sum_to_one;
            prop_matmul_distributes_over_add;
          ] );
    ]
