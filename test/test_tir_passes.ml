(* Unit tests for the Tensor IR optimization passes: loop merging,
   simplification, store-to-load forwarding, tensor shrinking, dead store
   elimination and the memory buffer planner. Structural checks are paired
   with execution checks (the optimized module computes the same thing on
   the engine). *)

open Gc_tensor
open Gc_tensor_ir
open Gc_tir_passes
open Gc_runtime
open Ir

let pool = Parallel.create 1

let loop ?(parallel = false) ?tag v lo hi body =
  For { v; lo = Int lo; hi = Int hi; step = Int 1; body; parallel; merge_tag = tag }

let run_module m bufs =
  let engine = Engine.create ~pool m in
  Engine.run_entry engine bufs

(* ------------------------------------------------------------------ *)
(* Loop merge *)

let test_loop_merge_merges_tagged () =
  let t = fresh_tensor ~name:"t" ~storage:Param Dtype.F32 [| 8 |] in
  let u = fresh_tensor ~name:"u" ~storage:Param Dtype.F32 [| 8 |] in
  let i = fresh_var ~name:"i" Index and j = fresh_var ~name:"j" Index in
  let f =
    {
      fname = "f";
      params = [ Ptensor t; Ptensor u ];
      body =
        [
          loop ~parallel:true ~tag:1 i 0 8 [ Store (t, [| Ir.v i |], Ir.v i) ];
          loop ~parallel:true ~tag:1 j 0 8
            [ Store (u, [| Ir.v j |], Binop (Mul, Load (t, [| Ir.v j |]), Int 2)) ];
        ];
    }
  in
  let m = { funcs = [ f ]; entry = "f"; init = None; globals = [] } in
  let m' = Loop_merge.run m in
  Alcotest.(check int) "one merge" 1 (Loop_merge.last_merge_count ());
  (* one top-level loop left *)
  let f' = List.hd m'.funcs in
  Alcotest.(check int) "single loop" 1 (List.length f'.body);
  (* and it still computes the right thing *)
  let tb = Buffer.create Dtype.F32 8 and ub = Buffer.create Dtype.F32 8 in
  run_module m' [| tb; ub |];
  Alcotest.(check (float 0.)) "u[3]=6" 6. (Buffer.get ub 3)

let test_loop_merge_skips_different_tags () =
  let t = fresh_tensor ~name:"t" ~storage:Param Dtype.F32 [| 4 |] in
  let i = fresh_var Index and j = fresh_var Index in
  let f =
    {
      fname = "f";
      params = [ Ptensor t ];
      body =
        [
          loop ~parallel:true ~tag:1 i 0 4 [ Store (t, [| Ir.v i |], Int 1) ];
          loop ~parallel:true ~tag:2 j 0 4 [ Store (t, [| Ir.v j |], Int 2) ];
        ];
    }
  in
  let m = { funcs = [ f ]; entry = "f"; init = None; globals = [] } in
  ignore (Loop_merge.run m);
  Alcotest.(check int) "no merge" 0 (Loop_merge.last_merge_count ())

let test_loop_merge_skips_different_bounds () =
  let t = fresh_tensor ~name:"t" ~storage:Param Dtype.F32 [| 8 |] in
  let i = fresh_var Index and j = fresh_var Index in
  let f =
    {
      fname = "f";
      params = [ Ptensor t ];
      body =
        [
          loop ~parallel:true ~tag:1 i 0 8 [ Store (t, [| Ir.v i |], Int 1) ];
          loop ~parallel:true ~tag:1 j 0 4 [ Store (t, [| Ir.v j |], Int 2) ];
        ];
    }
  in
  let m = { funcs = [ f ]; entry = "f"; init = None; globals = [] } in
  ignore (Loop_merge.run m);
  Alcotest.(check int) "no merge" 0 (Loop_merge.last_merge_count ())

let test_loop_merge_hoists_allocs_and_const_assigns () =
  let t = fresh_tensor ~name:"t" ~storage:Param Dtype.F32 [| 4 |] in
  let tmp = fresh_tensor ~name:"tmp" ~storage:Local Dtype.F32 [| 4 |] in
  let i = fresh_var Index and j = fresh_var Index in
  let zero_var = fresh_var ~name:"z" Index in
  let f =
    {
      fname = "f";
      params = [ Ptensor t ];
      body =
        [
          loop ~parallel:true ~tag:3 i 0 4 [ Store (t, [| Ir.v i |], Int 1) ];
          Alloc tmp;
          Assign (zero_var, Int 0);
          loop ~parallel:true ~tag:3 j 0 4
            [ Store (tmp, [| Ir.v j |], Load (t, [| Ir.v zero_var |])) ];
        ];
    }
  in
  let m = { funcs = [ f ]; entry = "f"; init = None; globals = [] } in
  let m' = Loop_merge.run m in
  Alcotest.(check int) "merged across alloc+assign" 1 (Loop_merge.last_merge_count ());
  Alcotest.(check bool) "module still checks" true
    (Result.is_ok (Check.check_module m'))

(* ------------------------------------------------------------------ *)
(* Simplify *)

let test_simplify_constants () =
  let e = Simplify.expr (Binop (Add, Binop (Mul, Int 4, Int 8), Int 0)) in
  Alcotest.(check bool) "folded" true (e = Int 32);
  let e = Simplify.expr (Binop (Mul, Var (fresh_var Index), Int 0)) in
  Alcotest.(check bool) "x*0" true (e = Int 0);
  let v = fresh_var Index in
  let e = Simplify.expr (Binop (Div, Var v, Int 1)) in
  Alcotest.(check bool) "x/1" true (e = Var v);
  let e = Simplify.expr (Binop (Mod, Var v, Int 1)) in
  Alcotest.(check bool) "x%1" true (e = Int 0)

let test_simplify_trip1_loop () =
  let t = fresh_tensor ~name:"t" ~storage:Param Dtype.F32 [| 4 |] in
  let i = fresh_var ~name:"i" Index in
  let f =
    {
      fname = "f";
      params = [ Ptensor t ];
      body = [ loop i 2 3 [ Store (t, [| Ir.v i |], Int 9) ] ];
    }
  in
  let f' = Simplify.run_func f in
  (match f'.body with
  | [ Store (_, [| Int 2 |], Int 9) ] -> ()
  | _ -> Alcotest.fail "trip-1 loop not inlined");
  let m = { funcs = [ f' ]; entry = "f"; init = None; globals = [] } in
  let tb = Buffer.create Dtype.F32 4 in
  run_module m [| tb |];
  Alcotest.(check (float 0.)) "t[2]" 9. (Buffer.get tb 2)

let test_simplify_empty_loop_removed () =
  let t = fresh_tensor ~storage:Param Dtype.F32 [| 4 |] in
  let i = fresh_var Index in
  let f =
    { fname = "f"; params = [ Ptensor t ];
      body = [ loop i 3 3 [ Store (t, [| Ir.v i |], Int 1) ] ] }
  in
  let f' = Simplify.run_func f in
  Alcotest.(check int) "removed" 0 (List.length f'.body)

let test_simplify_decidable_if () =
  let t = fresh_tensor ~storage:Param Dtype.F32 [| 2 |] in
  let f =
    {
      fname = "f";
      params = [ Ptensor t ];
      body =
        [
          If (Binop (Lt, Int 1, Int 2), [ Store (t, [| Int 0 |], Int 1) ],
              [ Store (t, [| Int 0 |], Int 2) ]);
          If (Int 0, [ Store (t, [| Int 1 |], Int 3) ], []);
        ];
    }
  in
  let f' = Simplify.run_func f in
  match f'.body with
  | [ Store (_, [| Int 0 |], Int 1) ] -> ()
  | _ -> Alcotest.fail "branches not decided"

(* ------------------------------------------------------------------ *)
(* Forward store / scalarization *)

let test_forward_store_collapses_chain () =
  (* x -> t1 -> t2 -> y within one loop body; t1/t2 become dead after
     forwarding + DSE *)
  let x = fresh_tensor ~name:"x" ~storage:Param Dtype.F32 [| 8 |] in
  let y = fresh_tensor ~name:"y" ~storage:Param Dtype.F32 [| 8 |] in
  let t1 = fresh_tensor ~name:"t1" ~storage:Local Dtype.F32 [| 8 |] in
  let t2 = fresh_tensor ~name:"t2" ~storage:Local Dtype.F32 [| 8 |] in
  let i = fresh_var ~name:"i" Index in
  let f =
    {
      fname = "f";
      params = [ Ptensor x; Ptensor y ];
      body =
        [
          Alloc t1;
          Alloc t2;
          loop i 0 8
            [
              Store (t1, [| Ir.v i |], Binop (Mul, Load (x, [| Ir.v i |]), Int 2));
              Store (t2, [| Ir.v i |], Binop (Add, Load (t1, [| Ir.v i |]), Int 1));
              Store (y, [| Ir.v i |], Load (t2, [| Ir.v i |]));
            ];
        ];
    }
  in
  let m = { funcs = [ f ]; entry = "f"; init = None; globals = [] } in
  let m' = Dse.run (Forward_store.run m) in
  let f' = List.hd m'.funcs in
  (* no loads of t1/t2 remain *)
  let loads = ref 0 in
  Visit.iter_stmts
    ~expr:(fun e ->
      match e with
      | Load (t, _) when tensor_equal t t1 || tensor_equal t t2 -> incr loads
      | _ -> ())
    f'.body;
  Alcotest.(check int) "temp loads gone" 0 !loads;
  (* execution equivalence *)
  let xb = Buffer.create Dtype.F32 8 and yb = Buffer.create Dtype.F32 8 in
  for k = 0 to 7 do Buffer.set xb k (float_of_int k) done;
  run_module m' [| xb; yb |];
  Alcotest.(check (float 0.)) "y[3] = 3*2+1" 7. (Buffer.get yb 3)

let test_forward_store_respects_aliasing () =
  (* store t[i], then store t[j] (different index), then load t[i]: the
     second store must invalidate the binding *)
  let t = fresh_tensor ~name:"t" ~storage:Local Dtype.F32 [| 8 |] in
  let y = fresh_tensor ~name:"y" ~storage:Param Dtype.F32 [| 1 |] in
  let f =
    {
      fname = "f";
      params = [ Ptensor y ];
      body =
        [
          Alloc t;
          Store (t, [| Int 0 |], Float 5.);
          Store (t, [| Int 0 |], Float 9.);
          Store (y, [| Int 0 |], Load (t, [| Int 0 |]));
        ];
    }
  in
  let m = { funcs = [ f ]; entry = "f"; init = None; globals = [] } in
  let m' = Dse.run (Forward_store.run m) in
  let yb = Buffer.create Dtype.F32 1 in
  run_module m' [| yb |];
  Alcotest.(check (float 0.)) "latest value wins" 9. (Buffer.get yb 0)

(* ------------------------------------------------------------------ *)
(* Tensor shrink *)

let test_shrink_privatizes_into_parallel_loop () =
  (* a staging tensor indexed only by the parallel loop var in dim 0
     shrinks to extent 1 *)
  let y = fresh_tensor ~name:"y" ~storage:Param Dtype.F32 [| 4; 8 |] in
  let stage = fresh_tensor ~name:"stage" ~storage:Local Dtype.F32 [| 4; 8 |] in
  let b = fresh_var ~name:"b" Index and c = fresh_var ~name:"c" Index in
  let f =
    {
      fname = "f";
      params = [ Ptensor y ];
      body =
        [
          Alloc stage;
          loop ~parallel:true b 0 4
            [
              loop c 0 8
                [ Store (stage, [| Ir.v b; Ir.v c |], Binop (Mul, Ir.v b, Ir.v c)) ];
              loop c 0 8
                [ Store (y, [| Ir.v b; Ir.v c |], Load (stage, [| Ir.v b; Ir.v c |])) ];
            ];
        ];
    }
  in
  let m = { funcs = [ f ]; entry = "f"; init = None; globals = [] } in
  let m' = Tensor_shrink.run m in
  let f' = List.hd m'.funcs in
  (* find the shrunk tensor *)
  let shrunk =
    List.find_opt
      (fun (t : tensor) -> t.tname = "stage")
      (Visit.tensors_used f'.body)
  in
  (match shrunk with
  | Some t -> Alcotest.(check int) "dim0 shrunk" 1 t.dims.(0)
  | None -> Alcotest.fail "stage tensor missing");
  (* and it still runs correctly (sequential pool: privatization safe) *)
  let yb = Buffer.create Dtype.F32 32 in
  run_module m' [| yb |];
  Alcotest.(check (float 0.)) "y[3,5]" 15. (Buffer.get yb ((3 * 8) + 5))

let test_shrink_leaves_address_taken () =
  let t = fresh_tensor ~name:"t" ~storage:Local Dtype.F32 [| 4 |] in
  let y = fresh_tensor ~name:"y" ~storage:Param Dtype.F32 [| 4 |] in
  let f =
    {
      fname = "f";
      params = [ Ptensor y ];
      body =
        [
          Alloc t;
          Call ("zero", [ Addr (t, [| Int 0 |]); Int 4 ]);
          Call ("copy", [ Addr (y, [| Int 0 |]); Addr (t, [| Int 0 |]); Int 4 ]);
        ];
    }
  in
  let m = { funcs = [ f ]; entry = "f"; init = None; globals = [] } in
  let m' = Tensor_shrink.run m in
  let t' =
    List.find (fun (x : tensor) -> x.tname = "t")
      (Visit.tensors_used (List.hd m'.funcs).body)
  in
  Alcotest.(check int) "dims kept" 4 t'.dims.(0)

(* ------------------------------------------------------------------ *)
(* DSE *)

let test_dse_removes_unread_local () =
  let dead = fresh_tensor ~name:"dead" ~storage:Local Dtype.F32 [| 8 |] in
  let y = fresh_tensor ~name:"y" ~storage:Param Dtype.F32 [| 8 |] in
  let i = fresh_var Index in
  let f =
    {
      fname = "f";
      params = [ Ptensor y ];
      body =
        [
          Alloc dead;
          loop i 0 8
            [
              Store (dead, [| Ir.v i |], Int 1);
              Store (y, [| Ir.v i |], Int 2);
            ];
        ];
    }
  in
  let m = { funcs = [ f ]; entry = "f"; init = None; globals = [] } in
  let m' = Dse.run m in
  let f' = List.hd m'.funcs in
  Alcotest.(check bool) "dead store gone" false
    (List.exists (fun (t : tensor) -> tensor_equal t dead) (Visit.tensors_used f'.body))

let test_dse_keeps_param_stores () =
  let y = fresh_tensor ~storage:Param Dtype.F32 [| 2 |] in
  let f =
    { fname = "f"; params = [ Ptensor y ]; body = [ Store (y, [| Int 0 |], Int 1) ] }
  in
  let m = { funcs = [ f ]; entry = "f"; init = None; globals = [] } in
  let m' = Dse.run m in
  Alcotest.(check int) "kept" 1 (List.length (List.hd m'.funcs).body)

(* ------------------------------------------------------------------ *)
(* Buffer planner *)

let entry_with_intermediates n_bufs =
  (* chain of copy calls through n intermediates with disjoint lifetimes *)
  let src = fresh_tensor ~name:"src" ~storage:Param Dtype.F32 [| 16 |] in
  let dst = fresh_tensor ~name:"dst" ~storage:Param Dtype.F32 [| 16 |] in
  let temps =
    List.init n_bufs (fun i ->
        fresh_tensor ~name:(Printf.sprintf "tmp%d" i) ~storage:Local Dtype.F32 [| 16 |])
  in
  let z = [| Int 0 |] in
  let rec chain prev = function
    | [] -> [ Call ("copy", [ Addr (dst, z); Addr (prev, z); Int 16 ]) ]
    | t :: rest ->
        Call ("copy", [ Addr (t, z); Addr (prev, z); Int 16 ]) :: chain t rest
  in
  let body = List.map (fun t -> Alloc t) temps @ chain src temps in
  let f = { fname = "entry"; params = [ Ptensor src; Ptensor dst ]; body } in
  { funcs = [ f ]; entry = "entry"; init = None; globals = [] }

let test_planner_reuses_disjoint_lifetimes () =
  let m = entry_with_intermediates 4 in
  let m', stats = Buffer_schedule.run m in
  Alcotest.(check int) "4 before" 4 stats.buffers_before;
  (* t0 dies when t1 is filled; t2 can reuse t0's arena, etc *)
  Alcotest.(check bool) "fewer arenas" true (stats.buffers_after <= 2);
  Alcotest.(check bool) "bytes reduced" true (stats.planned_bytes < stats.naive_bytes);
  (* correctness through the arena rewrite *)
  let src = Buffer.create Dtype.F32 16 and dst = Buffer.create Dtype.F32 16 in
  for i = 0 to 15 do Buffer.set src i (float_of_int (i * i)) done;
  run_module m' [| src; dst |];
  Alcotest.(check (float 0.)) "copied through" 49. (Buffer.get dst 7)

let test_planner_no_reuse_when_overlapping () =
  (* two temps both read at the end: lifetimes overlap, no reuse *)
  let src = fresh_tensor ~name:"src" ~storage:Param Dtype.F32 [| 8 |] in
  let dst = fresh_tensor ~name:"dst" ~storage:Param Dtype.F32 [| 8 |] in
  let a = fresh_tensor ~name:"a" ~storage:Local Dtype.F32 [| 8 |] in
  let b = fresh_tensor ~name:"b" ~storage:Local Dtype.F32 [| 8 |] in
  let z = [| Int 0 |] in
  let f =
    {
      fname = "entry";
      params = [ Ptensor src; Ptensor dst ];
      body =
        [
          Alloc a; Alloc b;
          Call ("copy", [ Addr (a, z); Addr (src, z); Int 8 ]);
          Call ("copy", [ Addr (b, z); Addr (src, z); Int 8 ]);
          Call ("copy", [ Addr (dst, z); Addr (a, z); Int 8 ]);
          Call ("copy", [ Addr (dst, z); Addr (b, z); Int 8 ]);
        ];
    }
  in
  let m = { funcs = [ f ]; entry = "entry"; init = None; globals = [] } in
  let _, stats = Buffer_schedule.run m in
  Alcotest.(check int) "two arenas" 2 stats.buffers_after

let test_planner_dtype_separation () =
  let dst = fresh_tensor ~name:"dst" ~storage:Param Dtype.F32 [| 8 |] in
  let a = fresh_tensor ~name:"a" ~storage:Local Dtype.F32 [| 8 |] in
  let b = fresh_tensor ~name:"b" ~storage:Local Dtype.S32 [| 8 |] in
  let z = [| Int 0 |] in
  let f =
    {
      fname = "entry";
      params = [ Ptensor dst ];
      body =
        [
          Alloc a; Alloc b;
          Call ("zero", [ Addr (a, z); Int 8 ]);
          Call ("copy", [ Addr (dst, z); Addr (a, z); Int 8 ]);
          Call ("zero", [ Addr (b, z); Int 8 ]);
          Call ("copy", [ Addr (dst, z); Addr (b, z); Int 8 ]);
        ];
    }
  in
  let m = { funcs = [ f ]; entry = "entry"; init = None; globals = [] } in
  let _, stats = Buffer_schedule.run m in
  (* b could reuse a's slot lifetimes-wise, but dtypes differ *)
  Alcotest.(check int) "dtype-separated arenas" 2 stats.buffers_after

let test_alloc_plan_exports_sites () =
  (* top-level f32 local + loop-sunk s32 local: the plan lists both, in
     first-appearance order, deduplicated across loop iterations *)
  let dst = fresh_tensor ~name:"dst" ~storage:Param Dtype.F32 [| 8 |] in
  let a = fresh_tensor ~name:"a" ~storage:Local Dtype.F32 [| 8 |] in
  let b = fresh_tensor ~name:"b" ~storage:Local Dtype.S32 [| 4 |] in
  let i = fresh_var ~name:"i" Index in
  let z = [| Int 0 |] in
  let f =
    {
      fname = "entry";
      params = [ Ptensor dst ];
      body =
        [
          Alloc a;
          Call ("zero", [ Addr (a, z); Int 8 ]);
          loop i 0 3
            [ Alloc b; Call ("zero", [ Addr (b, z); Int 4 ]) ];
          Call ("copy", [ Addr (dst, z); Addr (a, z); Int 8 ]);
        ];
    }
  in
  let plan = Buffer_schedule.alloc_plan f in
  Alcotest.(check int) "two sites" 2 (Array.length plan);
  Alcotest.(check bool) "first-appearance order" true
    (plan.(0).Buffer_schedule.slot_tensor.tid = a.tid
    && plan.(1).Buffer_schedule.slot_tensor.tid = b.tid);
  Alcotest.(check int) "f32 numel" 8 plan.(0).Buffer_schedule.slot_numel;
  Alcotest.(check int) "f32 bytes" 32 plan.(0).Buffer_schedule.slot_bytes;
  Alcotest.(check int) "s32 bytes" 16 plan.(1).Buffer_schedule.slot_bytes;
  Alcotest.(check int) "plan bytes" 48 (Buffer_schedule.plan_bytes plan)

(* ------------------------------------------------------------------ *)
(* optimizer fuzzer: random loop programs must compute the same thing
   before and after the whole Tensor IR pipeline *)

let gen_program =
  QCheck.Gen.(
    let* n = int_range 2 10 in
    let* depth = int_range 1 2 in
    let* ops = list_size (int_range 1 6) (int_range 0 5) in
    let* tag_pair = bool in
    return (n, depth, ops, tag_pair))

let build_program (n, depth, ops, tag_pair) =
  let src = fresh_tensor ~name:"src" ~storage:Param Dtype.F32 [| n |] in
  let dst = fresh_tensor ~name:"dst" ~storage:Param Dtype.F32 [| n |] in
  let tmp = fresh_tensor ~name:"tmp" ~storage:Local Dtype.F32 [| n |] in
  let i = fresh_var ~name:"i" Index in
  let stmt_of op target idx : stmt =
    let load t = Load (t, [| idx |]) in
    match op with
    | 0 -> Store (target, [| idx |], Binop (Add, load src, Float 1.))
    | 1 -> Store (target, [| idx |], Binop (Mul, load tmp, Float 2.))
    | 2 -> Store (target, [| idx |], Unop (Tanh, load src))
    | 3 -> Store (target, [| idx |], Binop (Max, load src, load tmp))
    | 4 -> Store (target, [| idx |], Select (Binop (Lt, idx, Int (n / 2)), load src, Float 0.5))
    | _ -> Store (target, [| idx |], Binop (Sub, load tmp, load src))
  in
  let body_of idx =
    List.mapi
      (fun j op -> stmt_of op (if j mod 2 = 0 then tmp else dst) idx)
      ops
  in
  let inner =
    if depth = 1 then
      [ For { v = i; lo = Int 0; hi = Int n; step = Int 1;
              body = body_of (Ir.v i); parallel = false;
              merge_tag = (if tag_pair then Some 99 else None) } ]
    else begin
      let j = fresh_var ~name:"j" Index in
      [ For { v = i; lo = Int 0; hi = Int (max 1 (n / 2)); step = Int 1;
              parallel = false; merge_tag = None;
              body =
                [ For { v = j; lo = Int 0; hi = Int 2; step = Int 1;
                        parallel = false; merge_tag = None;
                        body = body_of (Binop (Add, Binop (Mul, Ir.v i, Int 2), Ir.v j)) } ] } ]
    end
  in
  (* optionally a second same-tag loop to exercise merging *)
  let second =
    if tag_pair && depth = 1 then
      let k = fresh_var ~name:"k" Index in
      [ For { v = k; lo = Int 0; hi = Int n; step = Int 1;
              parallel = false; merge_tag = Some 99;
              body = [ Store (dst, [| Ir.v k |],
                              Binop (Add, Load (dst, [| Ir.v k |]), Load (tmp, [| Ir.v k |]))) ] } ]
    else []
  in
  let f =
    { fname = "entry"; params = [ Ptensor src; Ptensor dst ];
      body = (Alloc tmp :: inner) @ second }
  in
  { funcs = [ f ]; entry = "entry"; init = None; globals = [] }

let run_program m n =
  let src = Buffer.create Dtype.F32 n and dst = Buffer.create Dtype.F32 n in
  for idx = 0 to n - 1 do
    Buffer.set src idx (sin (float_of_int (idx + 1)))
  done;
  let engine = Engine.create ~pool m in
  Engine.run_entry engine [| src; dst |];
  Array.init n (fun idx -> Buffer.get dst idx)

let prop_pipeline_preserves_semantics =
  QCheck.Test.make ~name:"TIR pipeline preserves program semantics" ~count:60
    (QCheck.make gen_program)
    (fun spec ->
      let (n, _, _, _) = spec in
      let m = build_program spec in
      QCheck.assume (Result.is_ok (Check.check_module m));
      let before = run_program m n in
      let m', _ = Tir_pipeline.run m in
      (match Check.check_module m' with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "optimized module ill-formed: %s" e);
      let after = run_program m' n in
      Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-6) before after)

let () =
  Alcotest.run "gc_tir_passes"
    [
      ( "loop_merge",
        [
          Alcotest.test_case "merges tagged" `Quick test_loop_merge_merges_tagged;
          Alcotest.test_case "different tags" `Quick test_loop_merge_skips_different_tags;
          Alcotest.test_case "different bounds" `Quick test_loop_merge_skips_different_bounds;
          Alcotest.test_case "hoists allocs" `Quick test_loop_merge_hoists_allocs_and_const_assigns;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "constants" `Quick test_simplify_constants;
          Alcotest.test_case "trip-1 loop" `Quick test_simplify_trip1_loop;
          Alcotest.test_case "empty loop" `Quick test_simplify_empty_loop_removed;
          Alcotest.test_case "decidable if" `Quick test_simplify_decidable_if;
        ] );
      ( "forward_store",
        [
          Alcotest.test_case "collapses chain" `Quick test_forward_store_collapses_chain;
          Alcotest.test_case "aliasing" `Quick test_forward_store_respects_aliasing;
        ] );
      ( "tensor_shrink",
        [
          Alcotest.test_case "privatizes" `Quick test_shrink_privatizes_into_parallel_loop;
          Alcotest.test_case "address taken kept" `Quick test_shrink_leaves_address_taken;
        ] );
      ( "dse",
        [
          Alcotest.test_case "removes unread" `Quick test_dse_removes_unread_local;
          Alcotest.test_case "keeps params" `Quick test_dse_keeps_param_stores;
        ] );
      ( "buffer_schedule",
        [
          Alcotest.test_case "reuses disjoint" `Quick test_planner_reuses_disjoint_lifetimes;
          Alcotest.test_case "no overlap reuse" `Quick test_planner_no_reuse_when_overlapping;
          Alcotest.test_case "dtype separation" `Quick test_planner_dtype_separation;
          Alcotest.test_case "alloc plan exports sites" `Quick
            test_alloc_plan_exports_sites;
        ] );
      ( "fuzzer",
        [ QCheck_alcotest.to_alcotest prop_pipeline_preserves_semantics ] );
    ]
