(* Self-healing suite (supervision tier): a worker death mid-burst must
   cost typed outcomes only (never a lost or double-resolved ticket) and
   throughput must come back once the slot respawns; a never-draining
   straggler poisons a pool until supervision reincarnates it behind the
   same handle and parallel execution is genuinely restored; a
   crash-correlated artifact is quarantined, rerouted to the reference
   interpreter, and re-admitted only after a canary re-validates it; a
   crash-looping worker hits the restart budget and degrades health
   instead of spawn-storming; and a QCheck property pins that supervision
   never changes engine outputs under armed worker deaths. *)

open Gc_workloads
module Serve = Gc_serve
module Supervise = Gc_supervise
module Fault = Gc_faultinject
module Counters = Gc_observe.Counters
module Parallel = Gc_runtime.Parallel
module Guard = Gc_runtime.Guard
module Errors = Core.Errors

let seq_pool = Parallel.create 1

let compile_config () =
  { (Core.default_config ()) with Core.pool = Some seq_pool }

let with_faults ?seed ?slow_ms spec f =
  Fault.configure ?seed ?slow_ms spec;
  Fun.protect ~finally:Fault.clear f

let policy ?(restart_budget = 100) ?(restart_window_ms = 10_000.)
    ?(quarantine_threshold = 8) ?(canary_ms = 10.) () =
  {
    (Supervise.default_policy ()) with
    Supervise.restart_budget;
    restart_window_ms;
    backoff_base_ms = 0.5;
    backoff_cap_ms = 2.;
    quarantine_threshold;
    quarantine_window_ms = 10_000.;
    canary_ms;
  }

let serve_config ?(queue_depth = 16) ?(workers = 2)
    ?(breaker_threshold = 100) ?(supervision = policy ()) () =
  {
    (Serve.default_config ()) with
    Serve.queue_depth;
    workers;
    max_retries = 0;
    breaker_threshold;
    default_deadline_ms = None;
    backoff_base_ms = 0.5;
    backoff_cap_ms = 2.;
    supervision;
  }

let mlp ?(seed = 7) ?(batch = 4) ?(hidden = [ 6; 5 ]) () =
  Mlp.build_f32 ~seed ~batch ~hidden ()

let register server (b : Mlp.built) =
  match
    Serve.compile_and_register ~config:(compile_config ()) server b.Mlp.graph
  with
  | Ok h -> h
  | Error e -> Alcotest.failf "compile failed: %s" (Errors.to_string e)

let with_server ?config f =
  let server = Serve.create ?config () in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown ~drain_deadline_ms:2000 server)
    (fun () -> f server)

let call_ok server h (b : Mlp.built) msg =
  match Serve.call server h b.Mlp.data with
  | Ok outs -> outs
  | Error e -> Alcotest.failf "%s: %s" msg (Errors.to_string e)

let matches_reference (b : Mlp.built) outs =
  let expect = Core.reference b.Mlp.graph b.Mlp.data in
  List.for_all2
    (fun got e -> Core.Tensor.allclose ~rtol:2e-3 ~atol:2e-3 got e)
    outs expect

(* Edge-triggered: true as soon as [pred] is observed once. Supervision
   conditions flicker (a dead slot reads Degraded only until its respawn
   lands, then Healthy again until the fresh domain probes a fault site),
   so a trailing re-evaluation would race the respawn and miss an
   observation the loop already made. *)
let until ?(timeout_s = 5.) pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Worker death mid-burst: every ticket resolves in exactly one typed
   outcome, nothing is double-resolved, and once the faults are disarmed
   the respawned slots serve at full capacity again *)

let test_worker_death_mid_burst () =
  let b = mlp ~batch:8 ~hidden:[ 16; 16 ] () in
  let cfg = serve_config ~workers:2 () in
  with_server ~config:cfg (fun server ->
      let h = register server b in
      ignore (call_ok server h b "warmup");
      let dr0 = Serve.double_resolve_count () in
      let s0 = Counters.snapshot () in
      with_faults ~seed:3 "worker_death:6" (fun () ->
          let tickets =
            List.init 24 (fun _ -> Serve.submit server h b.Mlp.data)
          in
          let outcomes = List.map Serve.await tickets in
          Alcotest.(check int) "every ticket resolved" 24
            (List.length outcomes);
          List.iter
            (function
              | Ok _
              | Error
                  ( Errors.Overloaded _ | Errors.Timeout _
                  | Errors.Runtime_fault _ | Errors.Resource_exhausted _ ) ->
                  ()
              | Error e ->
                  Alcotest.failf "untyped outcome: %s" (Errors.to_string e))
            outcomes;
          Alcotest.(check bool) "deaths actually fired" true
            (Fault.fire_count Fault.site_worker_death >= 1));
      let s1 = Counters.snapshot () in
      Alcotest.(check bool) "restarts counted" true
        (s1.Counters.workers_restarted > s0.Counters.workers_restarted);
      Alcotest.(check int) "no double resolution" dr0
        (Serve.double_resolve_count ());
      (* throughput recovers: both slots live again and a burst completes
         cleanly *)
      Alcotest.(check bool) "slots respawned" true
        (until (fun () -> (Serve.stats server).Serve.workers_live = 2));
      let tickets = List.init 8 (fun _ -> Serve.submit server h b.Mlp.data) in
      List.iter
        (fun t ->
          match Serve.await t with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "post-recovery call failed: %s"
                (Errors.to_string e))
        tickets;
      Alcotest.(check bool) "healthy again" true
        ((Serve.tier_health server).Supervise.ch_level = Supervise.Healthy))

(* ------------------------------------------------------------------ *)
(* Pool reincarnation: a straggler that never drains keeps the pool
   poisoned (every run degrades to inline — counted); supervision
   reincarnates the worker complement behind the same handle and a
   rendezvous proves execution is genuinely parallel again. The old
   straggler's late release is discarded by the epoch check and its
   domain is joined at shutdown once the gate opens. *)

let test_pool_reincarnation_restores_parallelism () =
  let pool = Parallel.create 4 in
  let gate = Atomic.make false in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set gate true;
      Parallel.shutdown pool)
    (fun () ->
      let submitter = Domain.self () in
      (* non-submitter claimants park on the gate; the submitter dawdles
         through its own claims so the worker domains win some *)
      (match
         Guard.with_deadline ~timeout_ms:40 ~site:"supervise-test" (fun () ->
             Parallel.run pool
               (Array.init 4 (fun _ () ->
                    if Domain.self () = submitter then Thread.delay 0.005
                    else
                      while not (Atomic.get gate) do
                        Thread.yield ()
                      done)))
       with
      | () -> Alcotest.fail "deadline did not trip"
      | exception Errors.Error (Errors.Timeout _) -> ());
      Alcotest.(check bool) "pool poisoned" true (Parallel.is_poisoned pool);
      let s0 = Counters.snapshot () in
      let cell = ref false in
      Parallel.run pool [| (fun () -> cell := true) |];
      Alcotest.(check bool) "inline run still serves" true !cell;
      let s1 = Counters.snapshot () in
      Alcotest.(check bool) "inline degradation counted" true
        (s1.Counters.pool_inline_runs > s0.Counters.pool_inline_runs);
      (* supervision heals once the grace period passes *)
      let pol = { (policy ()) with Supervise.grace_ms = 10. } in
      let reg = Supervise.supervise_pool ~policy:pol ~name:"test-pool" pool in
      let healed = until (fun () -> not (Parallel.is_poisoned pool)) in
      Supervise.unregister reg;
      Alcotest.(check bool) "poison cleared" true healed;
      Alcotest.(check bool) "epoch bumped" true (Parallel.epoch pool >= 1);
      let s2 = Counters.snapshot () in
      Alcotest.(check bool) "reincarnation counted" true
        (s2.Counters.pools_reincarnated > s1.Counters.pools_reincarnated);
      (* genuinely parallel again: two tasks rendezvous, which inline
         (sequential) execution could never complete *)
      let arrived = Atomic.make 0 in
      let both = ref false in
      Parallel.run pool
        (Array.init 2 (fun _ () ->
             Atomic.incr arrived;
             let d = Unix.gettimeofday () +. 5. in
             while Atomic.get arrived < 2 && Unix.gettimeofday () < d do
               Thread.yield ()
             done;
             if Atomic.get arrived >= 2 then both := true));
      Alcotest.(check bool) "parallel rendezvous after reincarnation" true
        !both)

(* ------------------------------------------------------------------ *)
(* Quarantine -> canary -> re-admission: crash-correlated faults trip
   the artifact into quarantine (traffic reroutes to the interpreter,
   still correct); once the faults stop, a background canary re-executes
   the recorded probe input and only a reference-validated artifact is
   re-admitted *)

let test_quarantine_canary_readmission () =
  (* the worker fault site fires inside parallel-pool tasks, so this test
     needs a real multi-worker pool and a workload big enough to spawn
     tasks (the shared sequential pool would never probe the site) *)
  let b = mlp ~batch:64 ~hidden:[ 32; 32 ] () in
  let pool = Parallel.create 4 in
  let pool_config = { (Core.default_config ()) with Core.pool = Some pool } in
  let cfg =
    serve_config ~workers:1
      ~supervision:(policy ~quarantine_threshold:2 ~canary_ms:10. ())
      ()
  in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
  with_server ~config:cfg (fun server ->
      let h =
        match
          Serve.compile_and_register ~config:pool_config server b.Mlp.graph
        with
        | Ok h -> h
        | Error e -> Alcotest.failf "compile failed: %s" (Errors.to_string e)
      in
      ignore (call_ok server h b "warmup");
      let s0 = Counters.snapshot () in
      with_faults "worker:1" (fun () ->
          (* every compiled execute faults; each crash-correlated
             fallback stamps the artifact until it quarantines *)
          for i = 1 to 3 do
            ignore (call_ok server h b (Printf.sprintf "crash %d" i))
          done;
          Alcotest.(check bool) "artifact quarantined" true
            (Serve.is_quarantined h);
          (* quarantined traffic is served by the interpreter, correctly *)
          let outs = call_ok server h b "quarantined call" in
          Alcotest.(check bool) "interpreter output correct" true
            (matches_reference b outs));
      let s1 = Counters.snapshot () in
      Alcotest.(check bool) "quarantine counted" true
        (s1.Counters.quarantines > s0.Counters.quarantines);
      Alcotest.(check int) "stats expose the quarantine" 1
        (Serve.stats server).Serve.quarantined_handles;
      Alcotest.(check bool) "tier degraded" true
        ((Serve.tier_health server).Supervise.ch_level = Supervise.Degraded);
      (* faults disarmed: the canary must validate and re-admit *)
      Alcotest.(check bool) "re-admitted after canary" true
        (until (fun () -> not (Serve.is_quarantined h)));
      let s2 = Counters.snapshot () in
      Alcotest.(check bool) "canary probes counted" true
        (s2.Counters.canary_probes > s1.Counters.canary_probes);
      Alcotest.(check bool) "re-admission counted" true
        (s2.Counters.canary_readmissions > s1.Counters.canary_readmissions);
      Alcotest.(check bool) "healthy again" true
        ((Serve.tier_health server).Supervise.ch_level = Supervise.Healthy);
      (* the compiled path serves again, correctly *)
      let outs = call_ok server h b "post-readmission call" in
      Alcotest.(check bool) "compiled output correct" true
        (matches_reference b outs))

(* ------------------------------------------------------------------ *)
(* Crash loop: a worker that dies on every respawn exhausts the restart
   budget — health reports the degradation explicitly and the respawn
   count stays bounded (no spawn storm); when the crashes stop, the
   budget window slides clear and the tier heals back to full capacity *)

let test_crash_loop_hits_restart_budget () =
  let b = mlp () in
  let cfg =
    serve_config ~workers:2
      ~supervision:(policy ~restart_budget:2 ~restart_window_ms:400. ())
      ()
  in
  with_server ~config:cfg (fun server ->
      let h = register server b in
      ignore (call_ok server h b "warmup");
      let s0 = Counters.snapshot () in
      let pending = ref [] in
      with_faults "worker_death:1" (fun () ->
          (* the death site probes at the worker loop boundary only, so a
             parked (idle) domain is never killed in place — a trickle of
             traffic keeps workers transiting the boundary: every probe
             kills, spawn -> die -> respawn until the per-slot budget is
             spent *)
          let degraded =
            until (fun () ->
                pending := Serve.submit server h b.Mlp.data :: !pending;
                (Serve.tier_health server).Supervise.ch_level
                <> Supervise.Healthy)
          in
          let st = Serve.stats server in
          if not degraded then
            List.iter
              (fun (e : Gc_observe.Events.event) ->
                Printf.printf "EV %.3f %s %s: %s\n%!" e.Gc_observe.Events.ev_ts
                  e.Gc_observe.Events.ev_kind e.Gc_observe.Events.ev_component
                  e.Gc_observe.Events.ev_detail)
              (Gc_observe.Events.recent ~limit:30 ());
          Alcotest.(check bool)
            (Printf.sprintf
               "health degrades (live=%d submitted=%d admitted=%d \
                overloaded=%d qlen=%d inflight=%d restarted=%d superseded=%d \
                deaths=%d probes=%d)"
               st.Serve.workers_live st.Serve.submitted st.Serve.admitted
               st.Serve.overloaded st.Serve.queue_len st.Serve.in_flight
               ((Counters.snapshot ()).Counters.workers_restarted
               - s0.Counters.workers_restarted)
               ((Counters.snapshot ()).Counters.workers_superseded
               - s0.Counters.workers_superseded)
               (Fault.fire_count "worker_death")
               (Fault.probe_count "worker_death"))
            true degraded;
          (* let the budget window slide once more to prove boundedness *)
          Thread.delay 0.5;
          let s1 = Counters.snapshot () in
          let restarts =
            s1.Counters.workers_restarted - s0.Counters.workers_restarted
          in
          Alcotest.(check bool) "respawns attempted" true (restarts >= 1);
          Alcotest.(check bool)
            (Printf.sprintf "no spawn storm (%d restarts)" restarts)
            true (restarts <= 16));
      (* crashes stopped: the window slides clear, the slots respawn and
         stay up *)
      Alcotest.(check bool) "full capacity restored" true
        (until (fun () ->
             (Serve.stats server).Serve.workers_live = 2
             && (Serve.tier_health server).Supervise.ch_level
                = Supervise.Healthy));
      (* every trickle ticket still resolves in exactly one typed outcome
         — queued survivors drain through the respawned slots *)
      List.iter (fun tk -> ignore (Serve.await tk)) !pending)

(* ------------------------------------------------------------------ *)
(* Property: supervision never changes engine outputs. Under armed
   worker deaths every Ok outcome must still match the reference
   interpreter bit-for-tolerance; failures may only be typed errors. *)

let prop_outputs_unchanged_under_deaths =
  QCheck.Test.make ~name:"supervision preserves outputs under worker deaths"
    ~count:6
    (QCheck.make QCheck.Gen.(pair (int_range 1 1000) (int_range 1 4)))
    (fun (seed, batch) ->
      let b = Mlp.build_f32 ~seed ~batch ~hidden:[ 6; 5 ] () in
      with_faults ~seed "worker_death:5" (fun () ->
          with_server ~config:(serve_config ~workers:2 ()) (fun server ->
              let h = register server b in
              let expect = Core.reference b.Mlp.graph b.Mlp.data in
              for _ = 1 to 4 do
                match Serve.call server h b.Mlp.data with
                | Ok outs ->
                    if
                      not
                        (List.for_all2
                           (fun got e ->
                             Core.Tensor.allclose ~rtol:2e-3 ~atol:2e-3 got e)
                           outs expect)
                    then
                      QCheck.Test.fail_report
                        "supervised output diverged from reference"
                | Error
                    ( Errors.Overloaded _ | Errors.Timeout _
                    | Errors.Runtime_fault _ | Errors.Resource_exhausted _ )
                  ->
                    ()
                | Error e ->
                    QCheck.Test.fail_reportf "untyped outcome: %s"
                      (Errors.to_string e)
              done;
              true)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "supervise"
    [
      ( "serve",
        [
          Alcotest.test_case "worker death mid-burst" `Quick
            test_worker_death_mid_burst;
          Alcotest.test_case "quarantine, canary, re-admission" `Quick
            test_quarantine_canary_readmission;
          Alcotest.test_case "crash loop hits the restart budget" `Quick
            test_crash_loop_hits_restart_budget;
        ] );
      ( "pool",
        [
          Alcotest.test_case "reincarnation restores parallelism" `Quick
            test_pool_reincarnation_restores_parallelism;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_outputs_unchanged_under_deaths ] );
    ]
