(* Tests for the performance simulator: the cost model must be
   deterministic and must rank alternatives the way the underlying
   mechanisms dictate (more cores → faster; int8 → faster; fused → less
   memory traffic; baseline → more API overhead). *)

open Core
open Gc_perfsim

let machine = Machine.xeon_8358

let compile_setting graph_cfg ~api graph =
  let cfg = { (default_config ~machine ()) with graph = graph_cfg } in
  let compiled = compile ~config:cfg graph in
  Sim.cost_module ~machine ~api_per_call:api (tir_module compiled)

let full g = compile_setting (Pipeline.default ~machine ()) ~api:false g
let baseline g = compile_setting (Pipeline.onednn_primitives ~machine ()) ~api:true g

let mlp b = (Gc_workloads.Mlp.build_f32 ~batch:b ~hidden:[ 13; 64; 32 ] ()).graph

let test_deterministic () =
  let g = mlp 32 in
  let r1 = full g and r2 = full g in
  Alcotest.(check (float 0.)) "same cycles" r1.cycles r2.cycles

let test_breakdown_sums () =
  let r = full (mlp 32) in
  Alcotest.(check bool) "components positive" true
    (r.compute_cycles > 0. && r.barrier_cycles >= 0. && r.api_cycles > 0.);
  Alcotest.(check bool) "cycles >= compute" true (r.cycles >= r.compute_cycles)

let test_more_work_costs_more () =
  let small = full (mlp 16) and big = full (mlp 256) in
  Alcotest.(check bool) "monotone in batch" true (big.cycles > small.cycles)

let test_int8_cheaper_than_f32 () =
  let f = full (Gc_workloads.Mlp.build_f32 ~batch:128 ~hidden:[ 64; 256; 128 ] ()).graph in
  let i = full (Gc_workloads.Mlp.build_int8 ~batch:128 ~hidden:[ 64; 256; 128 ] ()).graph in
  Alcotest.(check bool) "int8 cheaper" true (i.cycles < f.cycles)

let test_fewer_cores_slower () =
  let g = mlp 256 in
  let small_machine = { machine with Machine.cores = 4 } in
  let cfg cores_machine =
    { (default_config ~machine:cores_machine ()) with
      graph = Pipeline.default ~machine:cores_machine () }
  in
  let r32 =
    Sim.cost_module ~machine ~api_per_call:false
      (tir_module (compile ~config:(cfg machine) g))
  in
  let r4 =
    Sim.cost_module ~machine:small_machine ~api_per_call:false
      (tir_module (compile ~config:(cfg small_machine) g))
  in
  Alcotest.(check bool) "4 cores slower" true (r4.cycles > r32.cycles)

let test_api_overhead_baseline_only () =
  let g = (Gc_workloads.Mlp.build_f32 ~batch:32 ~hidden:[ 13; 32; 16; 8 ] ()).graph in
  let b = baseline g and f = full g in
  (* baseline: one API call per primitive (3 matmuls); compiled: one *)
  Alcotest.(check bool) "baseline pays more api" true (b.api_cycles > f.api_cycles);
  Alcotest.(check (float 1.)) "compiled pays exactly one call"
    machine.api_call_cycles f.api_cycles

let test_baseline_more_sections () =
  let g = (Gc_workloads.Mha.build_f32 ~batch:2 ~seq:16 ~hidden:64 ~heads:4 ()).graph in
  let b = baseline g and f = full g in
  Alcotest.(check bool) "baseline more parallel sections" true
    (b.parallel_sections > f.parallel_sections)

let test_fusion_reduces_memory () =
  let g = (Gc_workloads.Mha.build_f32 ~batch:4 ~seq:32 ~hidden:128 ~heads:4 ()).graph in
  let b = baseline g and f = full g in
  Alcotest.(check bool) "fused graph moves less memory" true
    (f.memory_cycles < b.memory_cycles)

let test_report_add () =
  let r = full (mlp 16) in
  let s = Sim.add r r in
  Alcotest.(check (float 1e-6)) "add doubles" (2. *. r.cycles) s.cycles;
  Alcotest.(check int) "sections add" (2 * r.parallel_sections) s.parallel_sections

let test_time_consistent_with_frequency () =
  let r = full (mlp 16) in
  Alcotest.(check bool) "time = cycles/freq" true
    (Float.abs ((r.cycles /. (machine.freq_ghz *. 1e6)) -. r.time_ms) < 1e-9)

(* golden regression: pinned cycle counts for two fixed workloads under
   the full and baseline settings. The simulator is deterministic, so any
   drift here means a pass, heuristic, or cost-model change altered the
   generated code — if the change is intentional, regenerate the numbers
   and update the table (the failure message prints the observed value). *)

let golden =
  [
    ("mlp-full", `Full, `Mlp, 7087.40, 1);
    ("mlp-baseline", `Baseline, `Mlp, 13561.46, 2);
    ("mha-full", `Full, `Mha, 8985.88, 1);
    ("mha-baseline", `Baseline, `Mha, 23626.92, 3);
  ]

let test_golden_cycles () =
  (* fixed shapes: MLP batch 32, hidden 13-64-32; MHA batch 2, seq 16,
     hidden 64, heads 4 *)
  let mlp_g = mlp 32 in
  let mha_g =
    (Gc_workloads.Mha.build_f32 ~batch:2 ~seq:16 ~hidden:64 ~heads:4 ()).graph
  in
  List.iter
    (fun (name, setting, wl, cycles, sections) ->
      let g = match wl with `Mlp -> mlp_g | `Mha -> mha_g in
      let r = match setting with `Full -> full g | `Baseline -> baseline g in
      if Float.abs (r.cycles -. cycles) > 0.5 then
        Alcotest.failf "%s: pinned %.2f cycles, simulator now reports %.2f"
          name cycles r.cycles;
      if r.parallel_sections <> sections then
        Alcotest.failf "%s: pinned %d parallel sections, got %d" name sections
          r.parallel_sections)
    golden

(* primitive cost model *)

let test_primitive_cost_tail_handling () =
  (* at an aligned shape the primitive pays dispatch over the same kernel;
     at n=1 the compiler pads 16x while the primitive does true work *)
  let aligned =
    Gc_baseline.Baseline.primitive_matmul_cost ~machine ~dtype:Dtype.F32 ~m:128
      ~n:512 ~k:512 ()
  in
  Alcotest.(check bool) "positive" true (aligned > 0.);
  let p = Heuristic.choose ~machine ~dtype:Dtype.F32 ~m:128 ~n:1 ~k:256 () in
  let padded_work = Heuristic.cost ~machine p in
  let prim =
    Gc_baseline.Baseline.primitive_matmul_cost ~machine ~dtype:Dtype.F32 ~m:128
      ~n:1 ~k:256 ()
  in
  Alcotest.(check bool) "tail handling beats padding at n=1" true
    (prim < padded_work +. machine.api_call_cycles)

let () =
  Alcotest.run "gc_perfsim"
    [
      ( "sim",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "breakdown" `Quick test_breakdown_sums;
          Alcotest.test_case "monotone in work" `Quick test_more_work_costs_more;
          Alcotest.test_case "int8 cheaper" `Quick test_int8_cheaper_than_f32;
          Alcotest.test_case "fewer cores slower" `Quick test_fewer_cores_slower;
          Alcotest.test_case "api overhead" `Quick test_api_overhead_baseline_only;
          Alcotest.test_case "baseline sections" `Quick test_baseline_more_sections;
          Alcotest.test_case "fusion reduces memory" `Quick test_fusion_reduces_memory;
          Alcotest.test_case "report add" `Quick test_report_add;
          Alcotest.test_case "time consistent" `Quick test_time_consistent_with_frequency;
        ] );
      ( "golden",
        [ Alcotest.test_case "pinned cycle counts" `Quick test_golden_cycles ] );
      ( "primitive cost",
        [ Alcotest.test_case "tail handling" `Quick test_primitive_cost_tail_handling ] );
    ]
