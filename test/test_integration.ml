(* End-to-end integration tests: build a workload graph, compile it through
   the full pipeline (Graph IR passes -> templates -> Tensor IR passes ->
   engine) and compare against the reference evaluator. Also checks that
   the optimizations the paper describes actually fire (init extraction,
   fusion, coarse-grain merge tags, buffer reuse). *)

open Core

let pool = Gc_runtime.Parallel.create 4

let config ?(machine = Machine.test_machine) ?(graph_tweak = Fun.id) () =
  let c = default_config ~machine () in
  { c with graph = graph_tweak c.graph; pool = Some pool }

let run_both ?cfg ~graph ~data () =
  let cfg = match cfg with Some c -> c | None -> config () in
  let compiled = compile ~config:cfg graph in
  let got = execute compiled data in
  let expect = reference graph data in
  (compiled, got, expect)

let check_close ?(rtol = 2e-3) ?(atol = 2e-3) name got expect =
  List.iter2
    (fun g e ->
      if not (Tensor.allclose ~rtol ~atol g e) then
        Alcotest.failf "%s: output mismatch, max diff %g (shape %s)" name
          (Tensor.max_abs_diff g e)
          (Shape.to_string (Tensor.shape g)))
    got expect

(* ------------------------------------------------------------------ *)

let test_mlp_f32_small () =
  let built = Gc_workloads.Mlp.build_f32 ~batch:8 ~hidden:[ 13; 32; 16; 8 ] () in
  let compiled, got, expect = run_both ~graph:built.graph ~data:built.data () in
  check_close "mlp f32" got expect;
  (* weights were prepacked into the init graph *)
  let fg = fused_graph compiled in
  Alcotest.(check bool) "has init graph" true (fg.init <> None);
  (* relu fused: no standalone fusible group with relu *)
  let tunables = List.filter (fun (f : Fused_op.t) -> f.tunable <> None) fg.fused in
  Alcotest.(check int) "three tunable fused ops" 3 (List.length tunables);
  List.iteri
    (fun i (f : Fused_op.t) ->
      if i < 2 then
        Alcotest.(check bool)
          (Printf.sprintf "layer %d has post ops" i)
          true (f.post_groups <> []))
    tunables

let test_mlp_f32_batches () =
  List.iter
    (fun batch ->
      let built = Gc_workloads.Mlp.build_f32 ~batch ~hidden:[ 13; 64; 32 ] () in
      let _, got, expect = run_both ~graph:built.graph ~data:built.data () in
      check_close (Printf.sprintf "mlp f32 b%d" batch) got expect)
    [ 1; 4; 32; 100 ]

let test_mlp_int8 () =
  let built = Gc_workloads.Mlp.build_int8 ~batch:16 ~hidden:[ 13; 32; 16 ] () in
  let compiled, got, expect = run_both ~graph:built.graph ~data:built.data () in
  (* int8 path is exact integer arithmetic + deterministic float scaling *)
  check_close ~rtol:1e-4 ~atol:1e-3 "mlp int8" got expect;
  (* the low-precision pass must have produced an int8 matmul: check that
     some tunable op consumes u8/s8 inputs *)
  let fg = fused_graph compiled in
  let int8_matmuls =
    List.filter
      (fun (f : Fused_op.t) ->
        match f.tunable with
        | Some op ->
            Dtype.equal (List.hd op.inputs).Logical_tensor.dtype Dtype.U8
        | None -> false)
      fg.fused
  in
  Alcotest.(check bool) "int8 matmuls exist" true (int8_matmuls <> [])

let test_mlp_int8_compensation_in_init () =
  (* asymmetric activations (zp<>0): the compensation term must be computed
     once in the init graph, not per execution *)
  let built = Gc_workloads.Mlp.build_int8 ~batch:8 ~hidden:[ 13; 16 ] () in
  let compiled, got, expect = run_both ~graph:built.graph ~data:built.data () in
  check_close ~rtol:1e-4 ~atol:1e-3 "mlp int8 comp" got expect;
  let fg = fused_graph compiled in
  match fg.init with
  | None -> Alcotest.fail "expected an init graph"
  | Some init ->
      (* the init graph contains the colsum reduction of the weights *)
      let has_reduce =
        List.exists
          (fun (op : Op.t) ->
            match op.kind with Op_kind.Reduce _ -> true | _ -> false)
          init.Graph.ops
      in
      Alcotest.(check bool) "colsum in init" true has_reduce

let test_mlp_table1_shapes () =
  (* the real MLP_1 layer dims at a small batch, through the full pipeline *)
  let built = Gc_workloads.Mlp.build_f32 ~batch:32 ~hidden:[ 13; 512; 256; 128 ] () in
  let _, got, expect = run_both ~graph:built.graph ~data:built.data () in
  check_close "mlp_1 b32" got expect

let test_mha_f32 () =
  let built = Gc_workloads.Mha.build_f32 ~batch:2 ~seq:16 ~hidden:64 ~heads:4 () in
  let compiled, got, expect = run_both ~graph:built.graph ~data:built.data () in
  check_close "mha f32" got expect;
  (* softmax must be decomposed and fused into the first batch matmul *)
  let fg = fused_graph compiled in
  let qk =
    List.find_opt
      (fun (f : Fused_op.t) ->
        f.tunable <> None
        && List.exists
             (fun (g : Fused_op.post_group) ->
               List.exists
                 (fun (op : Op.t) ->
                   match op.kind with Op_kind.Reduce _ -> true | _ -> false)
                 g.g_ops)
             f.post_groups)
      fg.fused
  in
  Alcotest.(check bool) "softmax fused into batch matmul" true (qk <> None)

let test_mha_f32_coarse_merge () =
  let built = Gc_workloads.Mha.build_f32 ~batch:2 ~seq:8 ~hidden:32 ~heads:2 () in
  let cfg = config () in
  let compiled = compile ~config:cfg built.graph in
  let fg = fused_graph compiled in
  let tagged = List.filter (fun (f : Fused_op.t) -> f.merge_tag <> None) fg.fused in
  Alcotest.(check bool) "the two batch matmuls are merge-tagged" true
    (List.length tagged >= 2);
  let got = execute compiled built.data in
  let expect = reference built.graph built.data in
  check_close "mha merged" got expect

let test_mha_int8 () =
  let built = Gc_workloads.Mha.build_int8 ~batch:2 ~seq:16 ~hidden:64 ~heads:4 () in
  let _, got, expect = run_both ~graph:built.graph ~data:built.data () in
  check_close ~rtol:1e-3 ~atol:1e-3 "mha int8" got expect

let test_mha_table1_shape_small_batch () =
  (* MHA_1 dims with one sequence, full heads *)
  let built = Gc_workloads.Mha.build_f32 ~batch:1 ~seq:128 ~hidden:768 ~heads:8 () in
  let _, got, expect = run_both ~graph:built.graph ~data:built.data () in
  check_close "mha_1 b1" got expect

(* ------------------------------------------------------------------ *)
(* ablation configurations stay correct *)

let ablation_cases =
  [
    ("no coarse", fun (c : Pipeline.config) -> { c with coarse_fusion = false });
    ("no fine", fun c -> { c with fine_fusion = false; coarse_fusion = false });
    ("no layout prop", fun c -> { c with layout_propagation = false });
    ("no const weights", fun c -> { c with const_weights = false });
    ("no low precision", fun c -> { c with low_precision = false });
    ("no opt", fun _ -> Pipeline.no_opt ~machine:Machine.test_machine ());
  ]

let test_ablations_mlp_f32 () =
  let built = Gc_workloads.Mlp.build_f32 ~batch:8 ~hidden:[ 13; 32; 16 ] () in
  let expect = reference built.graph built.data in
  List.iter
    (fun (name, tweak) ->
      let cfg = config ~graph_tweak:tweak () in
      let compiled = compile ~config:cfg built.graph in
      let got = execute compiled built.data in
      check_close ("mlp " ^ name) got expect)
    ablation_cases

let test_ablations_mlp_int8 () =
  let built = Gc_workloads.Mlp.build_int8 ~batch:8 ~hidden:[ 13; 32; 16 ] () in
  let expect = reference built.graph built.data in
  List.iter
    (fun (name, tweak) ->
      let cfg = config ~graph_tweak:tweak () in
      let compiled = compile ~config:cfg built.graph in
      let got = execute compiled built.data in
      (* quantize rounding may flip by one step when the fused chain keeps
         more precision than the per-op f32 reference; tolerate one step *)
      check_close ~rtol:0.05 ~atol:0.25 ("mlp int8 " ^ name) got expect)
    ablation_cases

let test_ablations_mha_f32 () =
  let built = Gc_workloads.Mha.build_f32 ~batch:2 ~seq:12 ~hidden:32 ~heads:2 () in
  let expect = reference built.graph built.data in
  List.iter
    (fun (name, tweak) ->
      let cfg = config ~graph_tweak:tweak () in
      let compiled = compile ~config:cfg built.graph in
      let got = execute compiled built.data in
      check_close ("mha " ^ name) got expect)
    ablation_cases

(* ------------------------------------------------------------------ *)
(* compiled-partition behaviour *)

let test_constant_caching () =
  let built = Gc_workloads.Mlp.build_f32 ~batch:4 ~hidden:[ 8; 16; 4 ] () in
  let compiled = compile ~config:(config ()) built.graph in
  let out1 = execute compiled built.data in
  (* second execution skips init and must give the same answer *)
  let out2 = execute compiled built.data in
  List.iter2
    (fun a b -> Alcotest.(check bool) "stable across runs" true (Tensor.equal a b))
    out1 out2;
  (* changing the input (not weights) changes the output *)
  let x_lt, _ = List.hd built.data in
  let new_x = Tensor.random ~seed:999 Dtype.F32 x_lt.Logical_tensor.shape in
  let out3 = execute compiled ((x_lt, new_x) :: List.tl built.data) in
  Alcotest.(check bool) "different input, different output" false
    (Tensor.equal (List.hd out1) (List.hd out3))

let test_missing_input_rejected () =
  let built = Gc_workloads.Mlp.build_f32 ~batch:4 ~hidden:[ 8; 16 ] () in
  let compiled = compile ~config:(config ()) built.graph in
  Alcotest.(check bool) "raises" true
    (try
       ignore (execute compiled [ List.hd built.data ]);
       false
     with Errors.Error (Errors.Invalid_input { ctx; _ }) ->
       List.mem_assoc "input" ctx)

let test_wrong_shape_rejected () =
  let built = Gc_workloads.Mlp.build_f32 ~batch:4 ~hidden:[ 8; 16 ] () in
  let compiled = compile ~config:(config ()) built.graph in
  let x_lt, _ = List.hd built.data in
  let bad = Tensor.random Dtype.F32 (Shape.of_list [ 5; 8 ]) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (execute compiled ((x_lt, bad) :: List.tl built.data));
       false
     with Errors.Error (Errors.Invalid_input { ctx; _ }) ->
       List.assoc_opt "shape" ctx = Some "[5x8]")

let test_tir_stats_buffer_reuse () =
  (* a deep MLP has several inter-layer buffers; the planner must reuse *)
  let built =
    Gc_workloads.Mlp.build_f32 ~batch:16 ~hidden:[ 16; 32; 32; 32; 32; 16 ] ()
  in
  let compiled = compile ~config:(config ()) built.graph in
  let stats = tir_stats compiled in
  Alcotest.(check bool) "planned <= naive" true
    (stats.buffers.planned_bytes <= stats.buffers.naive_bytes)

let test_matmul_layernorm_fusion () =
  (* transformer-style: matmul followed by layernorm; the mean/variance
     reductions fuse into the matmul's post anchors (2-reduction budget),
     the normalization tail runs as a fusible group *)
  let sh = Shape.of_list in
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 64; 16 ]) in
  let w = Builder.input b ~const:true Dtype.F32 (sh [ 16; 24 ]) in
  let gamma = Builder.const b (Tensor.random ~seed:1 ~lo:0.5 ~hi:1.5 Dtype.F32 (sh [ 24 ])) in
  let beta = Builder.const b (Tensor.random ~seed:2 Dtype.F32 (sh [ 24 ])) in
  let y = Builder.layernorm b ~epsilon:1e-5 ~x:(Builder.matmul b x w) ~gamma ~beta in
  let g = Builder.finalize b ~outputs:[ y ] in
  let data =
    [
      (x, Tensor.random ~seed:3 Dtype.F32 (sh [ 64; 16 ]));
      (w, Tensor.random ~seed:4 ~lo:(-0.4) ~hi:0.4 Dtype.F32 (sh [ 16; 24 ]));
    ]
  in
  let compiled, got, expect = run_both ~graph:g ~data () in
  check_close ~rtol:1e-3 ~atol:1e-4 "matmul+layernorm" got expect;
  (* at least one reduction fused into the tunable *)
  let fg = fused_graph compiled in
  let fused_reds =
    List.concat_map
      (fun (f : Fused_op.t) ->
        if f.tunable = None then []
        else
          List.concat_map
            (fun (gp : Fused_op.post_group) ->
              List.filter
                (fun (op : Op.t) ->
                  match op.kind with Op_kind.Reduce _ -> true | _ -> false)
                gp.g_ops)
            f.post_groups)
      fg.fused
  in
  (* fusion of the reductions depends on the heuristic choosing an
     NPN=1 grid; on shapes where it does, they must land in post groups *)
  let p =
    List.find_map (fun (f : Fused_op.t) -> f.params) fg.fused |> Option.get
  in
  if p.npn = 1 && p.kpn = 1 then
    Alcotest.(check bool) "mean/variance fused" true (List.length fused_reds >= 1)

let test_bert_encoder_layer () =
  (* everything at once: batched attention with fused softmax, layernorms,
     gelu FFN, residuals, prepacked weights *)
  let built =
    Gc_workloads.Mha.build_encoder_layer ~batch:2 ~seq:8 ~hidden:32 ~heads:2 ()
  in
  let _, got, expect = run_both ~graph:built.graph ~data:built.data () in
  check_close ~rtol:1e-3 ~atol:1e-3 "bert layer" got expect

let test_bf16_mlp () =
  (* bf16 end to end: storage is widened f32 with bf16 rounding on stores,
     accumulation in f32 - compare against the reference with bf16-scale
     tolerance *)
  let sh = Shape.of_list in
  let b = Builder.create () in
  let x = Builder.input b ~name:"x" Dtype.Bf16 (sh [ 16; 24 ]) in
  let w = Builder.input b ~name:"w" ~const:true Dtype.Bf16 (sh [ 24; 12 ]) in
  let y = Builder.relu b (Builder.matmul b x w) in
  let g = Builder.finalize b ~outputs:[ y ] in
  let xv = Tensor.random ~seed:1 Dtype.Bf16 (sh [ 16; 24 ]) in
  let wv = Tensor.random ~seed:2 ~lo:(-0.5) ~hi:0.5 Dtype.Bf16 (sh [ 24; 12 ]) in
  let compiled = compile ~config:(config ()) g in
  let got = execute compiled [ (x, xv); (w, wv) ] in
  let expect = reference g [ (x, xv); (w, wv) ] in
  check_close ~rtol:2e-2 ~atol:2e-2 "bf16 mlp" got expect

let test_interp_engine_differential () =
  (* the tree-walking interpreter and the closure-compiling engine must
     agree on a real compiled module (weights prepacked through globals) *)
  let built = Gc_workloads.Mlp.build_f32 ~batch:6 ~hidden:[ 9; 20; 11 ] () in
  let g, cmap = Graph.clone built.graph in
  let data =
    List.map
      (fun ((lt : Logical_tensor.t), v) -> (Hashtbl.find cmap lt.id, v))
      built.data
  in
  let fg = Pipeline.run (Pipeline.default ~machine:Machine.test_machine ()) g in
  let lowered = Gc_lowering.Lower_graph.lower fg in
  let m, _ = Tir_pipeline.run lowered.module_ in
  let engine = Gc_runtime.Engine.create ~pool m in
  let interp = Gc_runtime.Interp.create m in
  (* fill both backends' globals from the host-evaluated init *)
  let init_env =
    match fg.init with
    | Some init ->
        Reference.eval_tensors init
          (List.filter
             (fun ((lt : Logical_tensor.t), _) -> Logical_tensor.is_constant lt)
             data)
    | None -> []
  in
  List.iter
    (fun ((lt : Logical_tensor.t), gt) ->
      let v =
        match lt.property with
        | Compile_const v -> v
        | _ -> (
            match List.assoc_opt lt.id init_env with
            | Some v -> v
            | None -> List.assoc lt.id (List.map (fun ((l : Logical_tensor.t), v) -> (l.id, v)) data))
      in
      Gc_tensor.Buffer.blit ~src:(Tensor.buffer v)
        ~dst:(Gc_runtime.Engine.global_buffer engine gt);
      Gc_tensor.Buffer.blit ~src:(Tensor.buffer v)
        ~dst:(Gc_runtime.Interp.global_buffer interp gt))
    lowered.globals;
  let mk_bufs () =
    List.map
      (fun ((lt : Logical_tensor.t), _) ->
        match List.assoc_opt lt.id (List.map (fun ((l : Logical_tensor.t), v) -> (l.id, v)) data) with
        | Some v -> Tensor.buffer (Tensor.copy v)
        | None -> Tensor.buffer (Tensor.create ~layout:lt.layout lt.dtype lt.shape))
      lowered.entry_params
    |> Array.of_list
  in
  let b1 = mk_bufs () and b2 = mk_bufs () in
  Gc_runtime.Engine.run_entry engine b1;
  Gc_runtime.Interp.run_entry interp b2;
  Array.iteri
    (fun i be ->
      let bi = b2.(i) in
      for j = 0 to Gc_tensor.Buffer.length be - 1 do
        let x = Gc_tensor.Buffer.get be j and y = Gc_tensor.Buffer.get bi j in
        if Float.abs (x -. y) > 1e-5 *. (1. +. Float.abs y) then
          Alcotest.failf "engine/interp diverge at buf %d elem %d: %g vs %g" i j x y
      done)
    b1

(* random fused-chain fuzzer: a matmul followed by a random run of fusible
   ops, compiled with the full pipeline and compared to the reference *)
let random_chain_graph seed m n k ops_spec =
  let sh = Shape.of_list in
  let b = Builder.create () in
  let x = Builder.input b ~name:"x" Dtype.F32 (sh [ m; k ]) in
  let w = Builder.input b ~name:"w" ~const:true Dtype.F32 (sh [ k; n ]) in
  let cur = ref (Builder.matmul b x w) in
  List.iter
    (fun op ->
      cur :=
        match op with
        | 0 -> Builder.relu b !cur
        | 1 -> Builder.tanh b !cur
        | 2 -> Builder.neg b !cur
        | 3 -> Builder.abs b !cur
        | 4 -> Builder.clip b ~lo:(-2.) ~hi:2. !cur
        | 5 -> Builder.mul b !cur (Builder.scalar_const b 0.5)
        | 6 -> Builder.add b !cur (Builder.scalar_const b 1.25)
        | 7 ->
            let bias = Builder.const b (Tensor.random ~seed:(seed + 100) Dtype.F32 (sh [ n ])) in
            Builder.add b !cur bias
        | _ -> Builder.sigmoid b !cur)
    ops_spec;
  let g = Builder.finalize b ~outputs:[ !cur ] in
  let data =
    [
      (x, Tensor.random ~seed Dtype.F32 (sh [ m; k ]));
      (w, Tensor.random ~seed:(seed + 1) ~lo:(-0.4) ~hi:0.4 Dtype.F32 (sh [ k; n ]));
    ]
  in
  (g, data)

let prop_random_chains_match_reference =
  QCheck.Test.make ~name:"random fused chains match reference" ~count:25
    (QCheck.make
       QCheck.Gen.(
         quad (int_range 1 20) (int_range 1 24) (int_range 1 24)
           (list_size (int_range 0 6) (int_range 0 8))))
    (fun (m, n, k, ops_spec) ->
      let g, data = random_chain_graph (m + n + k) m n k ops_spec in
      let compiled = compile ~config:(config ()) g in
      let got = execute compiled data in
      let expect = reference g data in
      List.for_all2 (Tensor.allclose ~rtol:1e-3 ~atol:1e-3) got expect)

let prop_random_mlps_match_reference =
  QCheck.Test.make ~name:"random MLPs match reference" ~count:10
    (QCheck.make
       QCheck.Gen.(
         triple (int_range 1 24)
           (list_size (int_range 2 4) (int_range 1 48))
           bool))
    (fun (batch, hidden, int8) ->
      QCheck.assume (List.length hidden >= 2);
      let built =
        if int8 then Gc_workloads.Mlp.build_int8 ~batch ~hidden ()
        else Gc_workloads.Mlp.build_f32 ~batch ~hidden ()
      in
      let compiled = compile ~config:(config ()) built.graph in
      let got = execute compiled built.data in
      let expect = reference built.graph built.data in
      let rtol, atol = if int8 then (0.05, 0.25) else (2e-3, 2e-3) in
      List.for_all2 (fun g e -> Tensor.allclose ~rtol ~atol g e) got expect)

let () =
  Alcotest.run "integration"
    [
      ( "mlp",
        [
          Alcotest.test_case "f32 small" `Quick test_mlp_f32_small;
          Alcotest.test_case "f32 batches" `Quick test_mlp_f32_batches;
          Alcotest.test_case "int8" `Quick test_mlp_int8;
          Alcotest.test_case "int8 compensation in init" `Quick test_mlp_int8_compensation_in_init;
          Alcotest.test_case "table1 dims" `Quick test_mlp_table1_shapes;
        ] );
      ( "mha",
        [
          Alcotest.test_case "f32" `Quick test_mha_f32;
          Alcotest.test_case "coarse merge" `Quick test_mha_f32_coarse_merge;
          Alcotest.test_case "int8" `Quick test_mha_int8;
          Alcotest.test_case "mha_1 b1" `Slow test_mha_table1_shape_small_batch;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "mlp f32" `Quick test_ablations_mlp_f32;
          Alcotest.test_case "mlp int8" `Quick test_ablations_mlp_int8;
          Alcotest.test_case "mha f32" `Quick test_ablations_mha_f32;
        ] );
      ( "partition",
        [
          Alcotest.test_case "constant caching" `Quick test_constant_caching;
          Alcotest.test_case "missing input rejected" `Quick test_missing_input_rejected;
          Alcotest.test_case "wrong shape rejected" `Quick test_wrong_shape_rejected;
          Alcotest.test_case "buffer reuse stats" `Quick test_tir_stats_buffer_reuse;
          QCheck_alcotest.to_alcotest prop_random_mlps_match_reference;
          Alcotest.test_case "bf16 mlp" `Quick test_bf16_mlp;
          Alcotest.test_case "matmul+layernorm" `Quick test_matmul_layernorm_fusion;
          Alcotest.test_case "bert encoder layer" `Quick test_bert_encoder_layer;
          Alcotest.test_case "interp/engine differential" `Quick test_interp_engine_differential;
          QCheck_alcotest.to_alcotest prop_random_chains_match_reference;
        ] );
    ]
