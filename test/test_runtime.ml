(* Tests for the execution substrate: the domain pool, the closure-compiling
   engine, and engine/interpreter differential equivalence. *)

open Gc_tensor
open Gc_tensor_ir
open Gc_runtime

(* ------------------------------------------------------------------ *)
(* Parallel pool *)

let test_pool_runs_all_tasks () =
  let pool = Parallel.create 4 in
  let hits = Array.make 100 0 in
  Parallel.run pool (Array.init 100 (fun i () -> hits.(i) <- hits.(i) + 1));
  Alcotest.(check bool) "all ran once" true (Array.for_all (( = ) 1) hits);
  Parallel.shutdown pool

let test_pool_parallel_for_covers_range () =
  let pool = Parallel.create 3 in
  let seen = Array.make 57 false in
  Parallel.parallel_for pool ~lo:0 ~hi:57 (fun lo hi ->
      for i = lo to hi - 1 do
        seen.(i) <- true
      done);
  Alcotest.(check bool) "covered" true (Array.for_all Fun.id seen);
  Parallel.shutdown pool

let test_pool_sequential () =
  let pool = Parallel.create 1 in
  let sum = ref 0 in
  Parallel.parallel_for pool ~lo:0 ~hi:10 (fun lo hi ->
      for i = lo to hi - 1 do
        sum := !sum + i
      done);
  Alcotest.(check int) "sum" 45 !sum;
  Parallel.shutdown pool

let test_pool_exception_propagates () =
  let pool = Parallel.create 2 in
  Alcotest.(check bool) "raised" true
    (try
       Parallel.run pool [| (fun () -> failwith "boom"); (fun () -> ()) |];
       false
     with
     | Gc_errors.Error (Gc_errors.Runtime_fault { site; what; task; backtrace; _ })
       ->
         site = "parallel" && task = Some 0 && backtrace <> None
         && what = {|Failure("boom")|});
  (* pool still usable after an exception *)
  let ok = ref false in
  Parallel.run pool [| (fun () -> ok := true) |];
  Alcotest.(check bool) "usable" true !ok;
  Parallel.shutdown pool

let test_pool_empty_range () =
  let pool = Parallel.create 2 in
  Parallel.parallel_for pool ~lo:5 ~hi:5 (fun _ _ -> Alcotest.fail "should not run");
  Parallel.shutdown pool

(* ------------------------------------------------------------------ *)
(* Parallel pool properties: randomized pool sizes (1..16 domains) against
   uneven task counts, exception propagation from arbitrary task indices,
   and the re-entrancy guard (nested run must execute inline, not
   deadlock). *)

let with_pool domains f =
  let pool = Parallel.create domains in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> f pool)

let prop_pool_all_tasks_run_once =
  QCheck.Test.make ~name:"every task runs exactly once (1..16 domains)"
    ~count:20
    (QCheck.make QCheck.Gen.(pair (int_range 1 16) (int_range 0 100)))
    (fun (domains, ntasks) ->
      with_pool domains (fun pool ->
          let hits = Array.init ntasks (fun _ -> Atomic.make 0) in
          Parallel.run pool
            (Array.init ntasks (fun i () -> Atomic.incr hits.(i)));
          Array.for_all (fun a -> Atomic.get a = 1) hits))

let prop_pool_exception_propagates =
  QCheck.Test.make ~name:"a failing task propagates and the pool survives"
    ~count:15
    (QCheck.make
       QCheck.Gen.(
         triple (int_range 1 8) (int_range 1 60) (int_range 0 1000000)))
    (fun (domains, ntasks, salt) ->
      let k = salt mod ntasks in
      with_pool domains (fun pool ->
          let raised =
            try
              Parallel.run pool
                (Array.init ntasks (fun i () ->
                     if i = k then failwith "prop-boom"));
              false
            with
            | Gc_errors.Error (Gc_errors.Runtime_fault { task = Some t; _ }) ->
                t = k
          in
          let ran = Atomic.make 0 in
          Parallel.run pool (Array.init ntasks (fun _ () -> Atomic.incr ran));
          raised && Atomic.get ran = ntasks))

let prop_pool_nested_run_inline =
  QCheck.Test.make ~name:"nested run executes inline without deadlock"
    ~count:10
    (QCheck.make
       QCheck.Gen.(triple (int_range 2 8) (int_range 1 12) (int_range 1 12)))
    (fun (domains, outer, inner) ->
      with_pool domains (fun pool ->
          let total = Atomic.make 0 in
          Parallel.run pool
            (Array.init outer (fun _ () ->
                 Parallel.run pool
                   (Array.init inner (fun _ () -> Atomic.incr total))));
          Atomic.get total = outer * inner))

let prop_parallel_for_covers_range =
  QCheck.Test.make ~name:"parallel_for covers [lo,hi) exactly once" ~count:20
    (QCheck.make
       QCheck.Gen.(
         triple (int_range 1 16) (int_range (-50) 50) (int_range 0 120)))
    (fun (domains, lo, len) ->
      let hi = lo + len in
      with_pool domains (fun pool ->
          let hits = Array.init len (fun _ -> Atomic.make 0) in
          Parallel.parallel_for pool ~lo ~hi (fun clo chi ->
              for i = clo to chi - 1 do
                Atomic.incr hits.(i - lo)
              done);
          Array.for_all (fun a -> Atomic.get a = 1) hits))

let prop_parallel_for_grain_covers_range =
  QCheck.Test.make
    ~name:"parallel_for with explicit grain covers [lo,hi) exactly once"
    ~count:30
    (QCheck.make
       QCheck.Gen.(
         quad (int_range 1 8) (int_range (-50) 50) (int_range 0 120)
           (int_range 1 25)))
    (fun (domains, lo, len, grain) ->
      let hi = lo + len in
      with_pool domains (fun pool ->
          let hits = Array.init len (fun _ -> Atomic.make 0) in
          Parallel.parallel_for ~grain pool ~lo ~hi (fun clo chi ->
              for i = clo to chi - 1 do
                Atomic.incr hits.(i - lo)
              done);
          Array.for_all (fun a -> Atomic.get a = 1) hits))

let test_parallel_for_rejects_bad_grain () =
  with_pool 2 (fun pool ->
      Alcotest.(check bool) "grain 0 rejected" true
        (try
           Parallel.parallel_for ~grain:0 pool ~lo:0 ~hi:10 (fun _ _ -> ());
           false
         with Gc_errors.Error (Gc_errors.Invalid_input _) -> true))

(* Fast-fail: once a task has failed, grains not yet claimed are skipped
   rather than executed. The exact number of survivors depends on domain
   scheduling (a grain already in flight still completes), so the run is
   retried a few times and must demonstrate skipping at least once —
   without fast-fail all 63 surviving tasks would run on every attempt. *)
let test_fast_fail_skips_unclaimed () =
  with_pool 2 (fun pool ->
      let skipped_somewhere = ref false in
      for _attempt = 1 to 5 do
        if not !skipped_somewhere then begin
          let ran = Atomic.make 0 in
          let raised =
            try
              Parallel.run pool
                (Array.init 64 (fun i () ->
                     if i = 0 then failwith "ff-boom" else Atomic.incr ran));
              false
            with Gc_errors.Error (Gc_errors.Runtime_fault { task = Some 0; _ })
            -> true
          in
          Alcotest.(check bool) "exception re-raised after barrier" true raised;
          if Atomic.get ran < 63 then skipped_somewhere := true
        end
      done;
      Alcotest.(check bool) "some unclaimed grains were skipped" true
        !skipped_somewhere)

(* ------------------------------------------------------------------ *)
(* GC_NUM_THREADS parsing *)

let test_threads_of_env () =
  let check name exp s =
    Alcotest.(check (option int)) name exp (Parallel.threads_of_env s)
  in
  check "plain" (Some 8) "8";
  check "whitespace" (Some 4) " 4 \n";
  check "clamp low (0)" (Some 1) "0";
  check "clamp low (negative)" (Some 1) "-3";
  check "clamp high" (Some 128) "100000";
  check "garbage" None "lots";
  check "empty" None "";
  check "float" None "2.5"

(* ------------------------------------------------------------------ *)
(* Engine basics *)

let seq_pool = Parallel.create 1

(* out[i] = 2*i for i < n *)
let double_func n =
  let t = Ir.fresh_tensor ~name:"out" ~storage:Param Dtype.F32 [| n |] in
  let i = Ir.fresh_var ~name:"i" Index in
  let body =
    [
      Ir.For
        {
          v = i;
          lo = Ir.int 0;
          hi = Ir.int n;
          step = Ir.int 1;
          body = [ Ir.Store (t, [| Ir.v i |], Ir.(Binop (Mul, Int 2, v i))) ];
          parallel = false;
          merge_tag = None;
        };
    ]
  in
  ({ Ir.fname = "double"; params = [ Ptensor t ]; body }, t)

let test_engine_simple_loop () =
  let f, _ = double_func 10 in
  let m = { Ir.funcs = [ f ]; entry = "double"; init = None; globals = [] } in
  let engine = Engine.create ~pool:seq_pool m in
  let buf = Buffer.create Dtype.F32 10 in
  Engine.run_entry engine [| buf |];
  for i = 0 to 9 do
    Alcotest.(check (float 0.)) (Printf.sprintf "out[%d]" i) (float_of_int (2 * i)) (Buffer.get buf i)
  done

let test_engine_parallel_loop () =
  let n = 1000 in
  let t = Ir.fresh_tensor ~name:"out" ~storage:Param Dtype.F32 [| n |] in
  let i = Ir.fresh_var ~name:"i" Index in
  let f =
    {
      Ir.fname = "par";
      params = [ Ir.Ptensor t ];
      body =
        [
          Ir.For
            {
              v = i;
              lo = Ir.int 0;
              hi = Ir.int n;
              step = Ir.int 1;
              body = [ Ir.Store (t, [| Ir.v i |], Ir.(Binop (Add, v i, Int 1))) ];
              parallel = true;
              merge_tag = None;
            };
        ];
    }
  in
  let m = { Ir.funcs = [ f ]; entry = "par"; init = None; globals = [] } in
  let pool = Parallel.create 4 in
  let engine = Engine.create ~pool m in
  let buf = Buffer.create Dtype.F32 n in
  Engine.run_entry engine [| buf |];
  let ok = ref true in
  for i = 0 to n - 1 do
    if Buffer.get buf i <> float_of_int (i + 1) then ok := false
  done;
  Alcotest.(check bool) "parallel loop result" true !ok;
  Parallel.shutdown pool

let test_engine_nested_loops_and_vars () =
  (* out[i*m + j] = i*10 + j via an Assign'd scalar *)
  let n = 4 and m = 5 in
  let t = Ir.fresh_tensor ~name:"out" ~storage:Param Dtype.F32 [| n; m |] in
  let i = Ir.fresh_var ~name:"i" Index in
  let j = Ir.fresh_var ~name:"j" Index in
  let s = Ir.fresh_var ~name:"s" (Scalar Dtype.F32) in
  let body =
    [
      Ir.For
        {
          v = i;
          lo = Ir.int 0;
          hi = Ir.int n;
          step = Ir.int 1;
          parallel = false;
          merge_tag = None;
          body =
            [
              Ir.For
                {
                  v = j;
                  lo = Ir.int 0;
                  hi = Ir.int m;
                  step = Ir.int 1;
                  parallel = false;
                  merge_tag = None;
                  body =
                    [
                      Ir.Assign (s, Ir.(Binop (Add, Binop (Mul, v i, Int 10), v j)));
                      Ir.Store (t, [| Ir.v i; Ir.v j |], Ir.v s);
                    ];
                };
            ];
        };
    ]
  in
  let f = { Ir.fname = "nest"; params = [ Ir.Ptensor t ]; body } in
  let m_ = { Ir.funcs = [ f ]; entry = "nest"; init = None; globals = [] } in
  let engine = Engine.create ~pool:seq_pool m_ in
  let buf = Buffer.create Dtype.F32 (n * m) in
  Engine.run_entry engine [| buf |];
  Alcotest.(check (float 0.)) "corner" 34. (Buffer.get buf ((3 * m) + 4))

let test_engine_if_select_cast () =
  (* out[i] = i < 3 ? round_s8(i * 100) : -1 *)
  let t = Ir.fresh_tensor ~name:"out" ~storage:Param Dtype.F32 [| 6 |] in
  let i = Ir.fresh_var ~name:"i" Index in
  let body =
    [
      Ir.For
        {
          v = i;
          lo = Ir.int 0;
          hi = Ir.int 6;
          step = Ir.int 1;
          parallel = false;
          merge_tag = None;
          body =
            [
              Ir.If
                ( Ir.(Binop (Lt, v i, Int 3)),
                  [
                    Ir.Store
                      ( t,
                        [| Ir.v i |],
                        Ir.Cast (Dtype.S8, Ir.(Binop (Mul, v i, Int 100))) );
                  ],
                  [ Ir.Store (t, [| Ir.v i |], Ir.flt (-1.)) ] );
            ];
        };
    ]
  in
  let f = { Ir.fname = "isc"; params = [ Ir.Ptensor t ]; body } in
  let m = { Ir.funcs = [ f ]; entry = "isc"; init = None; globals = [] } in
  let engine = Engine.create ~pool:seq_pool m in
  let buf = Buffer.create Dtype.F32 6 in
  Engine.run_entry engine [| buf |];
  Alcotest.(check (float 0.)) "0" 0. (Buffer.get buf 0);
  Alcotest.(check (float 0.)) "100" 100. (Buffer.get buf 1);
  Alcotest.(check (float 0.)) "saturated" 127. (Buffer.get buf 2);
  Alcotest.(check (float 0.)) "else" (-1.) (Buffer.get buf 3)

let test_engine_alloc_and_intrinsics () =
  (* tmp = alloc; zero tmp; tmp[0..n) = src; copy to out via intrinsic *)
  let n = 8 in
  let src = Ir.fresh_tensor ~name:"src" ~storage:Param Dtype.F32 [| n |] in
  let out = Ir.fresh_tensor ~name:"out" ~storage:Param Dtype.F32 [| n |] in
  let tmp = Ir.fresh_tensor ~name:"tmp" ~storage:Local Dtype.F32 [| n |] in
  let zero = Array.make 1 (Ir.int 0) in
  let body =
    [
      Ir.Alloc tmp;
      Ir.Call ("zero", [ Ir.Addr (tmp, zero); Ir.int n ]);
      Ir.Call ("copy", [ Ir.Addr (tmp, zero); Ir.Addr (src, zero); Ir.int n ]);
      Ir.Call ("copy", [ Ir.Addr (out, zero); Ir.Addr (tmp, zero); Ir.int n ]);
    ]
  in
  let f = { Ir.fname = "cp"; params = [ Ir.Ptensor src; Ir.Ptensor out ]; body } in
  let m = { Ir.funcs = [ f ]; entry = "cp"; init = None; globals = [] } in
  let engine = Engine.create ~pool:seq_pool m in
  let sbuf = Buffer.create Dtype.F32 n and obuf = Buffer.create Dtype.F32 n in
  for i = 0 to n - 1 do Buffer.set sbuf i (float_of_int i +. 0.5) done;
  Engine.run_entry engine [| sbuf; obuf |];
  for i = 0 to n - 1 do
    Alcotest.(check (float 0.)) "copied" (float_of_int i +. 0.5) (Buffer.get obuf i)
  done

let test_engine_arena_serves_allocs () =
  (* with the fast path on, the second run of an Alloc-ing function is
     served from the per-domain arena: hits counted, zero bytes allocated,
     and the zero-fill preserves Buffer.create semantics *)
  let n = 8 in
  let src = Ir.fresh_tensor ~name:"src" ~storage:Param Dtype.F32 [| n |] in
  let out = Ir.fresh_tensor ~name:"out" ~storage:Param Dtype.F32 [| n |] in
  let tmp = Ir.fresh_tensor ~name:"tmp" ~storage:Local Dtype.F32 [| n |] in
  let zero = Array.make 1 (Ir.int 0) in
  let body =
    [
      Ir.Alloc tmp;
      (* only half of tmp is written: the rest must read back as 0 even
         when the buffer is an arena reuse of a previous (dirty) run *)
      Ir.Call ("copy", [ Ir.Addr (tmp, zero); Ir.Addr (src, zero); Ir.int (n / 2) ]);
      Ir.Call ("copy", [ Ir.Addr (out, zero); Ir.Addr (tmp, zero); Ir.int n ]);
    ]
  in
  let f = { Ir.fname = "ar"; params = [ Ir.Ptensor src; Ir.Ptensor out ]; body } in
  let m = { Ir.funcs = [ f ]; entry = "ar"; init = None; globals = [] } in
  let engine = Engine.create ~pool:seq_pool m in
  let sbuf = Buffer.create Dtype.F32 n and obuf = Buffer.create Dtype.F32 n in
  for i = 0 to n - 1 do Buffer.set sbuf i 9. done;
  Engine.run_entry engine [| sbuf; obuf |];
  let (), s =
    Gc_observe.Counters.with_counters (fun () ->
        Engine.run_entry engine [| sbuf; obuf |])
  in
  Alcotest.(check bool) "arena hit" true (s.Gc_observe.Counters.arena_hits > 0);
  Alcotest.(check int) "no allocation" 0 s.bytes_allocated;
  Alcotest.(check (float 0.)) "written half" 9. (Buffer.get obuf 0);
  Alcotest.(check (float 0.)) "zeroed half" 0. (Buffer.get obuf (n - 1));
  (* fastpath:false computes the same thing, allocating per call *)
  let slow = Engine.create ~pool:seq_pool ~fastpath:false m in
  let obuf2 = Buffer.create Dtype.F32 n in
  Engine.run_entry slow [| sbuf; obuf2 |];
  let (), s2 =
    Gc_observe.Counters.with_counters (fun () ->
        Engine.run_entry slow [| sbuf; obuf2 |])
  in
  Alcotest.(check bool) "slow path allocates" true (s2.Gc_observe.Counters.bytes_allocated > 0);
  for i = 0 to n - 1 do
    Alcotest.(check (float 0.)) "equivalent" (Buffer.get obuf i) (Buffer.get obuf2 i)
  done

let test_engine_brgemm_intrinsic () =
  (* single brgemm call: C[2,2] += A[2,3] . B[2,3]^T *)
  let a = Ir.fresh_tensor ~name:"A" ~storage:Param Dtype.F32 [| 2; 3 |] in
  let b = Ir.fresh_tensor ~name:"B" ~storage:Param Dtype.F32 [| 2; 3 |] in
  let c = Ir.fresh_tensor ~name:"C" ~storage:Param Dtype.F32 [| 2; 2 |] in
  let z2 = [| Ir.int 0; Ir.int 0 |] in
  let body =
    [
      Ir.Call
        ( "brgemm",
          [
            Ir.int 1; Ir.int 2; Ir.int 2; Ir.int 3;
            Ir.Addr (a, z2); Ir.int 0;
            Ir.Addr (b, z2); Ir.int 0;
            Ir.Addr (c, z2);
          ] );
    ]
  in
  let f = { Ir.fname = "mm"; params = [ Ir.Ptensor a; Ir.Ptensor b; Ir.Ptensor c ]; body } in
  let m = { Ir.funcs = [ f ]; entry = "mm"; init = None; globals = [] } in
  let engine = Engine.create ~pool:seq_pool m in
  let ab = Buffer.create Dtype.F32 6 and bb = Buffer.create Dtype.F32 6 in
  let cb = Buffer.create Dtype.F32 4 in
  List.iteri (fun i v -> Buffer.set ab i v) [ 1.; 2.; 3.; 4.; 5.; 6. ];
  List.iteri (fun i v -> Buffer.set bb i v) [ 1.; 0.; 1.; 0.; 1.; 0. ];
  Engine.run_entry engine [| ab; bb; cb |];
  (* row0 . brow0 = 1+3 = 4; row0 . brow1 = 2 *)
  Alcotest.(check (float 0.)) "c00" 4. (Buffer.get cb 0);
  Alcotest.(check (float 0.)) "c01" 2. (Buffer.get cb 1);
  Alcotest.(check (float 0.)) "c10" 10. (Buffer.get cb 2);
  Alcotest.(check (float 0.)) "c11" 5. (Buffer.get cb 3)

let test_engine_function_call_and_globals () =
  (* init writes global; entry calls helper which adds global to input *)
  let n = 4 in
  let g = Ir.fresh_tensor ~name:"gconst" ~storage:Global Dtype.F32 [| n |] in
  let x = Ir.fresh_tensor ~name:"x" ~storage:Param Dtype.F32 [| n |] in
  let y = Ir.fresh_tensor ~name:"y" ~storage:Param Dtype.F32 [| n |] in
  let i = Ir.fresh_var ~name:"i" Index in
  let init_f =
    {
      Ir.fname = "init";
      params = [];
      body =
        [
          Ir.For
            {
              v = i; lo = Ir.int 0; hi = Ir.int n; step = Ir.int 1;
              parallel = false; merge_tag = None;
              body = [ Ir.Store (g, [| Ir.v i |], Ir.(Binop (Mul, v i, Int 10))) ];
            };
        ];
    }
  in
  let xh = Ir.fresh_tensor ~name:"xh" ~storage:Param Dtype.F32 [| n |] in
  let yh = Ir.fresh_tensor ~name:"yh" ~storage:Param Dtype.F32 [| n |] in
  let j = Ir.fresh_var ~name:"j" Index in
  let helper =
    {
      Ir.fname = "helper";
      params = [ Ir.Ptensor xh; Ir.Ptensor yh ];
      body =
        [
          Ir.For
            {
              v = j; lo = Ir.int 0; hi = Ir.int n; step = Ir.int 1;
              parallel = false; merge_tag = None;
              body =
                [
                  Ir.Store
                    ( yh,
                      [| Ir.v j |],
                      Ir.(Binop (Add, Load (xh, [| v j |]), Load (g, [| v j |]))) );
                ];
            };
        ];
    }
  in
  let z1 = [| Ir.int 0 |] in
  let entry =
    {
      Ir.fname = "entry";
      params = [ Ir.Ptensor x; Ir.Ptensor y ];
      body = [ Ir.Call ("helper", [ Ir.Addr (x, z1); Ir.Addr (y, z1) ]) ];
    }
  in
  let m =
    { Ir.funcs = [ init_f; helper; entry ]; entry = "entry"; init = Some "init"; globals = [ g ] }
  in
  let engine = Engine.create ~pool:seq_pool m in
  Engine.run_init engine [||];
  let xb = Buffer.create Dtype.F32 n and yb = Buffer.create Dtype.F32 n in
  for k = 0 to n - 1 do Buffer.set xb k 1. done;
  Engine.run_entry engine [| xb; yb |];
  for k = 0 to n - 1 do
    Alcotest.(check (float 0.)) "y" (1. +. float_of_int (10 * k)) (Buffer.get yb k)
  done

let test_engine_rejects_malformed () =
  (* use of an unbound variable is rejected at compile *)
  let t = Ir.fresh_tensor ~name:"t" ~storage:Param Dtype.F32 [| 2 |] in
  let bogus = Ir.fresh_var ~name:"ghost" Index in
  let f =
    { Ir.fname = "bad"; params = [ Ir.Ptensor t ];
      body = [ Ir.Store (t, [| Ir.v bogus |], Ir.flt 0.) ] }
  in
  let m = { Ir.funcs = [ f ]; entry = "bad"; init = None; globals = [] } in
  Alcotest.(check bool) "rejected" true
    (try ignore (Engine.create ~pool:seq_pool m); false
     with Gc_errors.Error (Gc_errors.Compile_error { stage = "engine"; _ }) ->
       true)

let test_engine_param_size_checked () =
  let f, _ = double_func 10 in
  let m = { Ir.funcs = [ f ]; entry = "double"; init = None; globals = [] } in
  let engine = Engine.create ~pool:seq_pool m in
  let small = Buffer.create Dtype.F32 3 in
  Alcotest.(check bool) "too small" true
    (try Engine.run_entry engine [| small |]; false
     with
     | Gc_errors.Error (Gc_errors.Invalid_input { ctx; _ }) ->
         List.assoc_opt "actual" ctx = Some "3"
         && List.assoc_opt "requested" ctx = Some "10")

(* ------------------------------------------------------------------ *)
(* Engine vs interpreter differential test *)

let random_eltwise_module n =
  (* out[i] = tanh(x[i]) * 2 + exp(min(x[i], 1)) computed with a mix of
     constructs exercising most expr nodes *)
  let x = Ir.fresh_tensor ~name:"x" ~storage:Param Dtype.F32 [| n |] in
  let out = Ir.fresh_tensor ~name:"out" ~storage:Param Dtype.F32 [| n |] in
  let i = Ir.fresh_var ~name:"i" Index in
  let s = Ir.fresh_var ~name:"s" (Scalar Dtype.F32) in
  let body =
    [
      Ir.For
        {
          v = i; lo = Ir.int 0; hi = Ir.int n; step = Ir.int 1;
          parallel = false; merge_tag = None;
          body =
            [
              Ir.Assign (s, Ir.Unop (Tanh, Ir.Load (x, [| Ir.v i |])));
              Ir.Store
                ( out,
                  [| Ir.v i |],
                  Ir.(
                    Binop
                      ( Add,
                        Binop (Mul, v s, Float 2.),
                        Unop (Exp, Binop (Min, Load (x, [| v i |]), Float 1.)) )) );
            ];
        };
    ]
  in
  let f = { Ir.fname = "mix"; params = [ Ir.Ptensor x; Ir.Ptensor out ]; body } in
  { Ir.funcs = [ f ]; entry = "mix"; init = None; globals = [] }

let test_engine_matches_interp () =
  let n = 64 in
  let m = random_eltwise_module n in
  let engine = Engine.create ~pool:seq_pool m in
  let interp = Interp.create m in
  let x = Buffer.create Dtype.F32 n in
  for i = 0 to n - 1 do
    Buffer.set x i (sin (float_of_int i))
  done;
  let o1 = Buffer.create Dtype.F32 n and o2 = Buffer.create Dtype.F32 n in
  Engine.run_entry engine [| x; o1 |];
  Interp.run_entry interp [| x; o2 |];
  for i = 0 to n - 1 do
    Alcotest.(check (float 1e-6)) "same" (Buffer.get o2 i) (Buffer.get o1 i)
  done

let () =
  Alcotest.run "gc_runtime"
    [
      ( "parallel",
        [
          Alcotest.test_case "runs all tasks" `Quick test_pool_runs_all_tasks;
          Alcotest.test_case "for covers range" `Quick test_pool_parallel_for_covers_range;
          Alcotest.test_case "sequential pool" `Quick test_pool_sequential;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "empty range" `Quick test_pool_empty_range;
          QCheck_alcotest.to_alcotest prop_pool_all_tasks_run_once;
          QCheck_alcotest.to_alcotest prop_pool_exception_propagates;
          QCheck_alcotest.to_alcotest prop_pool_nested_run_inline;
          QCheck_alcotest.to_alcotest prop_parallel_for_covers_range;
          QCheck_alcotest.to_alcotest prop_parallel_for_grain_covers_range;
          Alcotest.test_case "rejects grain < 1" `Quick
            test_parallel_for_rejects_bad_grain;
          Alcotest.test_case "fast-fail skips unclaimed grains" `Quick
            test_fast_fail_skips_unclaimed;
          Alcotest.test_case "GC_NUM_THREADS parsing" `Quick test_threads_of_env;
        ] );
      ( "engine",
        [
          Alcotest.test_case "simple loop" `Quick test_engine_simple_loop;
          Alcotest.test_case "parallel loop" `Quick test_engine_parallel_loop;
          Alcotest.test_case "nested loops/vars" `Quick test_engine_nested_loops_and_vars;
          Alcotest.test_case "if/select/cast" `Quick test_engine_if_select_cast;
          Alcotest.test_case "alloc+intrinsics" `Quick test_engine_alloc_and_intrinsics;
          Alcotest.test_case "arena serves allocs" `Quick test_engine_arena_serves_allocs;
          Alcotest.test_case "brgemm intrinsic" `Quick test_engine_brgemm_intrinsic;
          Alcotest.test_case "function call + globals" `Quick test_engine_function_call_and_globals;
          Alcotest.test_case "rejects malformed" `Quick test_engine_rejects_malformed;
          Alcotest.test_case "param size checked" `Quick test_engine_param_size_checked;
          Alcotest.test_case "matches interpreter" `Quick test_engine_matches_interp;
        ] );
    ]
