(* Tests for the Graph IR layer: logical tensors, ops, graphs (topo sort,
   verification, cloning), the builder, shape inference, the pattern
   matcher and the reference evaluator. *)

open Gc_tensor
open Gc_graph_ir

let sh = Shape.of_list

(* ------------------------------------------------------------------ *)
(* Logical tensors *)

let test_lt_fresh_ids () =
  let a = Logical_tensor.create Dtype.F32 (sh [ 2 ]) in
  let b = Logical_tensor.create Dtype.F32 (sh [ 2 ]) in
  Alcotest.(check bool) "distinct" false (Logical_tensor.equal a b);
  Alcotest.(check bool) "self" true (Logical_tensor.equal a a)

let test_lt_properties () =
  let v = Logical_tensor.create Dtype.F32 (sh [ 2 ]) in
  Alcotest.(check bool) "variable" false (Logical_tensor.is_constant v);
  let r = Logical_tensor.create ~property:Runtime_const Dtype.F32 (sh [ 2 ]) in
  Alcotest.(check bool) "runtime" true (Logical_tensor.is_constant r);
  Alcotest.(check bool) "runtime not compile" false (Logical_tensor.is_compile_const r);
  let c = Logical_tensor.const (Tensor.scalar Dtype.F32 3.) in
  Alcotest.(check bool) "compile" true (Logical_tensor.is_compile_const c);
  Alcotest.(check (float 0.)) "value" 3.
    (Tensor.item (Option.get (Logical_tensor.const_value c)))

(* ------------------------------------------------------------------ *)
(* Ops *)

let test_op_arity_checked () =
  let a = Logical_tensor.create Dtype.F32 (sh [ 2; 2 ]) in
  let out = Logical_tensor.create Dtype.F32 (sh [ 2; 2 ]) in
  Alcotest.(check bool) "matmul needs 2" true
    (try ignore (Op.create Matmul ~inputs:[ a ] ~outputs:[ out ]); false
     with Invalid_argument _ -> true)

let test_op_categories () =
  Alcotest.(check bool) "matmul tunable" true (Op_kind.is_tunable Matmul);
  Alcotest.(check bool) "relu fusible" true (Op_kind.is_fusible Relu);
  Alcotest.(check bool) "softmax complex" true (Op_kind.is_complex Softmax);
  Alcotest.(check bool) "reduce fusible" true (Op_kind.is_fusible (Reduce Sum));
  (* every kind has exactly one category *)
  List.iter
    (fun k ->
      let cats =
        [ Op_kind.is_tunable k; Op_kind.is_fusible k; Op_kind.is_complex k ]
      in
      Alcotest.(check int)
        (Op_kind.to_string k)
        1
        (List.length (List.filter Fun.id cats)))
    Op_kind.all

(* ------------------------------------------------------------------ *)
(* Shape inference *)

let test_infer_matmul () =
  let a = Logical_tensor.create Dtype.F32 (sh [ 4; 8 ]) in
  let b = Logical_tensor.create Dtype.F32 (sh [ 8; 3 ]) in
  (match Infer.infer_shape Matmul Attrs.empty [ a; b ] with
  | Ok s -> Alcotest.(check bool) "shape" true (Shape.equal s (sh [ 4; 3 ]))
  | Error e -> Alcotest.fail e);
  let bad = Logical_tensor.create Dtype.F32 (sh [ 7; 3 ]) in
  Alcotest.(check bool) "mismatch rejected" true
    (Result.is_error (Infer.infer_shape Matmul Attrs.empty [ a; bad ]))

let test_infer_matmul_transpose_b () =
  let a = Logical_tensor.create Dtype.F32 (sh [ 2; 4; 8 ]) in
  let b = Logical_tensor.create Dtype.F32 (sh [ 2; 3; 8 ]) in
  let attrs = Attrs.of_list [ ("transpose_b", Attrs.Bool true) ] in
  match Infer.infer_shape Matmul attrs [ a; b ] with
  | Ok s -> Alcotest.(check bool) "shape" true (Shape.equal s (sh [ 2; 4; 3 ]))
  | Error e -> Alcotest.fail e

let test_infer_int8_matmul_dtype () =
  let a = Logical_tensor.create Dtype.U8 (sh [ 2; 2 ]) in
  let b = Logical_tensor.create Dtype.S8 (sh [ 2; 2 ]) in
  Alcotest.(check bool) "s32 accumulator" true
    (match Infer.infer_dtype Matmul [ a; b ] with
    | Some S32 -> true
    | _ -> false)

let test_infer_reduce () =
  let a = Logical_tensor.create Dtype.F32 (sh [ 2; 5; 3 ]) in
  let attrs k = Attrs.of_list [ ("axis", Attrs.Int 1); ("keepdims", Attrs.Bool k) ] in
  (match Infer.infer_shape (Reduce Sum) (attrs false) [ a ] with
  | Ok s -> Alcotest.(check bool) "drop" true (Shape.equal s (sh [ 2; 3 ]))
  | Error e -> Alcotest.fail e);
  match Infer.infer_shape (Reduce Max) (attrs true) [ a ] with
  | Ok s -> Alcotest.(check bool) "keep" true (Shape.equal s (sh [ 2; 1; 3 ]))
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Graph structure *)

let diamond () =
  (* x -> relu -> (exp, tanh) -> add *)
  let b = Builder.create () in
  let x = Builder.input b ~name:"x" Dtype.F32 (sh [ 4 ]) in
  let r = Builder.relu b x in
  let e = Builder.exp b r in
  let t = Builder.tanh b r in
  let y = Builder.add b e t in
  (Builder.finalize b ~outputs:[ y ], x, r, y)

let test_graph_producer_consumers () =
  let g, x, r, y = diamond () in
  Alcotest.(check bool) "input has no producer" true (Graph.producer g x = None);
  Alcotest.(check int) "relu out has 2 consumers" 2
    (List.length (Graph.consumers g r));
  Alcotest.(check bool) "output produced" true (Graph.producer g y <> None);
  Alcotest.(check bool) "is_output" true (Graph.is_output g y)

let test_graph_topo_and_verify () =
  let g, _, _, _ = diamond () in
  Alcotest.(check bool) "verify ok" true (Result.is_ok (Graph.verify g));
  (* shuffle ops; topo_sort must restore a valid order *)
  let shuffled = Graph.create ~inputs:g.inputs ~outputs:g.outputs (List.rev g.ops) in
  match Graph.topo_sort shuffled with
  | Ok sorted ->
      Alcotest.(check bool) "reverify" true (Result.is_ok (Graph.verify sorted))
  | Error e -> Alcotest.fail e

let test_graph_detects_cycle () =
  (* two ops mutually consuming each other's outputs *)
  let a = Logical_tensor.create Dtype.F32 (sh [ 2 ]) in
  let o1 = Logical_tensor.create Dtype.F32 (sh [ 2 ]) in
  let o2 = Logical_tensor.create Dtype.F32 (sh [ 2 ]) in
  let op1 = Op.create Relu ~inputs:[ o2 ] ~outputs:[ o1 ] in
  let op2 = Op.create Relu ~inputs:[ o1 ] ~outputs:[ o2 ] in
  let g = Graph.create ~inputs:[ a ] ~outputs:[ o2 ] [ op1; op2 ] in
  Alcotest.(check bool) "cycle rejected" true (Result.is_error (Graph.topo_sort g))

let test_graph_rejects_double_producer () =
  let x = Logical_tensor.create Dtype.F32 (sh [ 2 ]) in
  let o = Logical_tensor.create Dtype.F32 (sh [ 2 ]) in
  let op1 = Op.create Relu ~inputs:[ x ] ~outputs:[ o ] in
  let op2 = Op.create Exp ~inputs:[ x ] ~outputs:[ o ] in
  let g = Graph.create ~inputs:[ x ] ~outputs:[ o ] [ op1; op2 ] in
  Alcotest.(check bool) "double producer" true (Result.is_error (Graph.verify g))

let test_graph_clone_isolates () =
  let g, x, _, _ = diamond () in
  let g', map = Graph.clone g in
  Alcotest.(check int) "same op count" (Graph.op_count g) (Graph.op_count g');
  let x' = Hashtbl.find map x.id in
  Alcotest.(check bool) "fresh id" false (Logical_tensor.equal x x');
  (* mutate the clone's layout; original unaffected *)
  x'.layout <- Layout.blocked_2d ~outer_block:2 ~inner_block:2;
  Alcotest.(check bool) "original plain" true (Layout.is_plain x.layout);
  Alcotest.(check bool) "clone verifies" true (Result.is_ok (Graph.verify g'))

let test_builder_rejects_bad_broadcast () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 3 ]) in
  Alcotest.(check bool) "bad broadcast" true
    (try ignore (Builder.broadcast b (sh [ 2; 5 ]) x); false
     with Gc_errors.Error (Gc_errors.Invalid_input _) -> true)

(* ------------------------------------------------------------------ *)
(* Pattern matching *)

let test_pattern_chain () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 4 ]) in
  let y = Builder.exp b (Builder.relu b x) in
  let g = Builder.finalize b ~outputs:[ y ] in
  let pat = Pattern.(kind Op_kind.Relu --> kind ~bind:"out" Op_kind.Exp) in
  match Pattern.find g pat with
  | Some m ->
      Alcotest.(check int) "two ops" 2 (List.length m.ops);
      Alcotest.(check bool) "binding" true
        (match Pattern.binding m "out" with
        | Some lt -> Logical_tensor.equal lt y
        | None -> false)
  | None -> Alcotest.fail "expected a match"

let test_pattern_multiuse_breaks_chain () =
  let g, _, _, _ = diamond () in
  (* relu output has two consumers: relu->exp must NOT match as a
     single-use chain *)
  let pat = Pattern.(kind Op_kind.Relu --> kind Op_kind.Exp) in
  Alcotest.(check bool) "no match" true (Pattern.find g pat = None)

let test_pattern_find_all () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 4 ]) in
  let y = Builder.relu b (Builder.relu b (Builder.relu b x)) in
  let g = Builder.finalize b ~outputs:[ y ] in
  let single = Pattern.kind Op_kind.Relu in
  Alcotest.(check int) "three relus" 3 (List.length (Pattern.find_all g single))

(* ------------------------------------------------------------------ *)
(* Reference evaluator *)

let test_reference_simple () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 2; 2 ]) in
  let y = Builder.relu b (Builder.neg b x) in
  let g = Builder.finalize b ~outputs:[ y ] in
  let xv = Tensor.of_float_list Dtype.F32 (sh [ 2; 2 ]) [ 1.; -2.; 3.; -4. ] in
  match Reference.run g [ (x, xv) ] with
  | [ out ] ->
      Alcotest.(check (list (float 0.))) "relu(-x)" [ 0.; 2.; 0.; 4. ]
        (Array.to_list (Tensor.to_float_array out))
  | _ -> Alcotest.fail "one output expected"

let test_reference_complex_ops_match_decomposition_semantics () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 3; 4 ]) in
  let y = Builder.softmax b ~axis:1 (Builder.gelu b x) in
  let g = Builder.finalize b ~outputs:[ y ] in
  let xv = Tensor.random ~seed:42 Dtype.F32 (sh [ 3; 4 ]) in
  match Reference.run g [ (x, xv) ] with
  | [ out ] ->
      let expect = Ref_ops.softmax ~axis:1 (Ref_ops.gelu_tanh xv) in
      Alcotest.(check bool) "matches" true (Tensor.allclose out expect)
  | _ -> Alcotest.fail "one output expected"

let test_reference_missing_binding_rejected () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 2 ]) in
  let y = Builder.relu b x in
  let g = Builder.finalize b ~outputs:[ y ] in
  Alcotest.(check bool) "raises" true
    (try ignore (Reference.run g []); false with Invalid_argument _ -> true)

let test_reference_batchnorm () =
  let b = Builder.create () in
  let x = Builder.input b Dtype.F32 (sh [ 2; 3 ]) in
  let ones = Builder.const b (Tensor.of_float_list Dtype.F32 (sh [ 3 ]) [ 1.; 1.; 1. ]) in
  let zeros = Builder.const b (Tensor.of_float_list Dtype.F32 (sh [ 3 ]) [ 0.; 0.; 0. ]) in
  let y =
    Builder.batchnorm_inference b ~epsilon:0. ~x ~gamma:ones ~beta:zeros
      ~mean:zeros ~variance:ones
  in
  let g = Builder.finalize b ~outputs:[ y ] in
  let xv = Tensor.random ~seed:3 Dtype.F32 (sh [ 2; 3 ]) in
  match Reference.run g [ (x, xv) ] with
  | [ out ] ->
      (* identity batchnorm *)
      Alcotest.(check bool) "identity" true (Tensor.allclose out xv)
  | _ -> Alcotest.fail "one output"

let prop_reference_deterministic =
  QCheck.Test.make ~name:"reference evaluation is deterministic" ~count:20
    (QCheck.make QCheck.Gen.(pair (int_range 1 6) (int_range 1 6)))
    (fun (m, n) ->
      let b = Builder.create () in
      let x = Builder.input b Dtype.F32 (sh [ m; n ]) in
      let y = Builder.softmax b ~axis:1 (Builder.sigmoid b x) in
      let g = Builder.finalize b ~outputs:[ y ] in
      let xv = Tensor.random ~seed:(m * 7 + n) Dtype.F32 (sh [ m; n ]) in
      let r1 = Reference.run g [ (x, xv) ] in
      let r2 = Reference.run g [ (x, xv) ] in
      List.for_all2 Tensor.equal r1 r2)

let () =
  Alcotest.run "gc_graph_ir"
    [
      ( "logical_tensor",
        [
          Alcotest.test_case "fresh ids" `Quick test_lt_fresh_ids;
          Alcotest.test_case "properties" `Quick test_lt_properties;
        ] );
      ( "op",
        [
          Alcotest.test_case "arity checked" `Quick test_op_arity_checked;
          Alcotest.test_case "categories" `Quick test_op_categories;
        ] );
      ( "infer",
        [
          Alcotest.test_case "matmul" `Quick test_infer_matmul;
          Alcotest.test_case "matmul transpose_b" `Quick test_infer_matmul_transpose_b;
          Alcotest.test_case "int8 dtype" `Quick test_infer_int8_matmul_dtype;
          Alcotest.test_case "reduce" `Quick test_infer_reduce;
        ] );
      ( "graph",
        [
          Alcotest.test_case "producer/consumers" `Quick test_graph_producer_consumers;
          Alcotest.test_case "topo + verify" `Quick test_graph_topo_and_verify;
          Alcotest.test_case "cycle detected" `Quick test_graph_detects_cycle;
          Alcotest.test_case "double producer" `Quick test_graph_rejects_double_producer;
          Alcotest.test_case "clone isolates" `Quick test_graph_clone_isolates;
          Alcotest.test_case "builder bad broadcast" `Quick test_builder_rejects_bad_broadcast;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "chain" `Quick test_pattern_chain;
          Alcotest.test_case "multiuse breaks chain" `Quick test_pattern_multiuse_breaks_chain;
          Alcotest.test_case "find_all" `Quick test_pattern_find_all;
        ] );
      ( "reference",
        [
          Alcotest.test_case "simple" `Quick test_reference_simple;
          Alcotest.test_case "complex ops" `Quick test_reference_complex_ops_match_decomposition_semantics;
          Alcotest.test_case "missing binding" `Quick test_reference_missing_binding_rejected;
          Alcotest.test_case "batchnorm" `Quick test_reference_batchnorm;
          QCheck_alcotest.to_alcotest prop_reference_deterministic;
        ] );
    ]
