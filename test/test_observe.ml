(* Tests for the observability layer: the JSON encoder/parser (round-trip
   property), the global runtime counters, IR statistics, and trace
   collection / export. *)

open Gc_observe

(* ------------------------------------------------------------------ *)
(* JSON *)

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> x = y
  | Json.String x, Json.String y -> String.equal x y
  | Json.List xs, Json.List ys ->
      List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Json.Obj xs, Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
           xs ys
  | _ -> false

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
        map (fun f -> Json.Float f) (float_range (-1e6) 1e6);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        frequency
          [
            (2, scalar);
            (1, map (fun xs -> Json.List xs) (list_size (int_range 0 4) (self (depth - 1))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_range 0 4)
                   (pair key (self (depth - 1)))) );
          ])
    3

let prop_json_roundtrip =
  QCheck.Test.make ~name:"to_string |> of_string round-trips" ~count:200
    (QCheck.make json_gen) (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> json_equal j j'
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let prop_json_roundtrip_indented =
  QCheck.Test.make ~name:"indented output round-trips too" ~count:100
    (QCheck.make json_gen) (fun j ->
      match Json.of_string (Json.to_string ~indent:2 j) with
      | Ok j' -> json_equal j j'
      | Error _ -> false)

let test_json_escapes () =
  let j = Json.String "a\"b\\c\nd\te\r\x01" in
  match Json.of_string (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "escaped string survives" true (json_equal j j')
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_nonfinite () =
  (* non-finite floats are not representable in JSON; they serialize null *)
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float nan));
  Alcotest.(check string) "inf" "null" (Json.to_string (Json.Float infinity))

let test_json_rejects_malformed () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_member () =
  let j = Json.Obj [ ("a", Json.Int 1); ("b", Json.String "x") ] in
  (match Json.member "a" j with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "member a");
  Alcotest.(check bool) "missing member" true (Json.member "z" j = None)

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counters_disabled_are_noops () =
  Counters.disable ();
  Counters.reset ();
  Counters.kernel_invocation ();
  Counters.parallel_section ();
  Counters.barrier ();
  Counters.tasks 7;
  Counters.alloc_bytes 1024;
  let s = Counters.snapshot () in
  Alcotest.(check int) "kernels" 0 s.Counters.kernel_invocations;
  Alcotest.(check int) "sections" 0 s.Counters.parallel_sections;
  Alcotest.(check int) "bytes" 0 s.Counters.bytes_allocated

let test_counters_enabled_count () =
  let (), s =
    Counters.with_counters (fun () ->
        Counters.kernel_invocation ();
        Counters.kernel_invocation ();
        Counters.parallel_section ();
        Counters.barrier ();
        Counters.tasks 5;
        Counters.alloc_bytes 100;
        Counters.alloc_bytes 28)
  in
  Alcotest.(check int) "kernels" 2 s.Counters.kernel_invocations;
  Alcotest.(check int) "sections" 1 s.Counters.parallel_sections;
  Alcotest.(check int) "barriers" 1 s.Counters.barriers;
  Alcotest.(check int) "tasks" 5 s.Counters.task_launches;
  Alcotest.(check int) "bytes" 128 s.Counters.bytes_allocated

let test_with_counters_restores_enablement () =
  Counters.disable ();
  let (), _ = Counters.with_counters (fun () -> ()) in
  Alcotest.(check bool) "disabled again" false (Counters.enabled ());
  (* exception-safe: enablement restored when the thunk raises *)
  (try
     ignore (Counters.with_counters (fun () -> failwith "boom"));
     Alcotest.fail "expected exception"
   with Failure _ -> ());
  Alcotest.(check bool) "disabled after raise" false (Counters.enabled ())

let test_counters_count_real_execution () =
  (* the engine's runtime hooks fire: an MLP has brgemm kernel dispatches,
     parallel sections, and temporary allocations *)
  let built =
    Gc_workloads.Mlp.build_f32 ~batch:4 ~hidden:[ 5; 8; 3 ] ()
  in
  let compiled = Core.compile built.Gc_workloads.Mlp.graph in
  ignore (Core.execute compiled built.Gc_workloads.Mlp.data);
  let (), s =
    Counters.with_counters (fun () ->
        ignore (Core.execute compiled built.Gc_workloads.Mlp.data))
  in
  Alcotest.(check bool) "kernels fired" true (s.Counters.kernel_invocations > 0);
  Alcotest.(check bool) "snapshot serializes" true
    (match Counters.snapshot_to_json s with Json.Obj _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_of_module () =
  let open Gc_tensor_ir.Ir in
  let x = fresh_tensor ~name:"x" ~storage:Param Gc_tensor.Dtype.F32 [| 8 |] in
  let i = fresh_var ~name:"i" Index in
  let j = fresh_var ~name:"j" Index in
  let body =
    [
      For
        {
          v = i; lo = Int 0; hi = Int 8; step = Int 1;
          body =
            [
              For
                {
                  v = j; lo = Int 0; hi = Int 1; step = Int 1;
                  body = [ Store (x, [| Var i |], Float 0.0) ];
                  parallel = false; merge_tag = None;
                };
            ];
          parallel = true; merge_tag = None;
        };
    ]
  in
  let m =
    { funcs = [ { fname = "main"; params = [ Ptensor x ]; body } ];
      entry = "main"; init = None; globals = [] }
  in
  let s = Stats.of_module m in
  Alcotest.(check int) "loops" 2 s.Stats.loops;
  Alcotest.(check int) "parallel loops" 1 s.Stats.parallel_loops;
  Alcotest.(check int) "depth" 2 s.Stats.max_loop_depth;
  Alcotest.(check int) "funcs" 1 s.Stats.funcs;
  Alcotest.(check int) "bytes" 32 s.Stats.est_bytes

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_records_passes () =
  let t = Trace.create () in
  let r = Trace.time (Some t) ~stage:"graph" ~name:"p1" ~stats:(fun _ -> Stats.zero) (fun x -> x + 1) 41 in
  Alcotest.(check int) "pass ran" 42 r;
  let r2 =
    Trace.time_into (Some t) ~stage:"tir" ~name:"p2" ~before:Stats.zero
      ~after:(fun _ -> Stats.zero)
      (fun x -> string_of_int x)
      7
  in
  Alcotest.(check string) "type-changing pass ran" "7" r2;
  (match Trace.passes t with
  | [ e1; e2 ] ->
      Alcotest.(check string) "stage 1" "graph" e1.Trace.stage;
      Alcotest.(check string) "name 1" "p1" e1.Trace.pass_name;
      Alcotest.(check string) "stage 2" "tir" e2.Trace.stage;
      Alcotest.(check bool) "elapsed non-negative" true (e1.Trace.elapsed_ms >= 0.0)
  | l -> Alcotest.failf "expected 2 pass events, got %d" (List.length l));
  (* None = no recording, function still runs *)
  let r3 = Trace.time None ~stage:"graph" ~name:"p3" ~stats:(fun _ -> Stats.zero) (fun x -> x * 2) 21 in
  Alcotest.(check int) "None still runs" 42 r3;
  Alcotest.(check int) "None records nothing" 2 (List.length (Trace.passes t))

let test_trace_json_schema () =
  let t = Trace.create () in
  Trace.set_meta t "workload" (Json.String "unit-test");
  ignore (Trace.time (Some t) ~stage:"graph" ~name:"p" ~stats:(fun _ -> Stats.zero) Fun.id ());
  Trace.add_section t "counters" (Counters.snapshot_to_json (Counters.snapshot ()));
  let j = Trace.to_json t in
  (match Json.member "schema" j with
  | Some (Json.String "gc-trace/1") -> ()
  | _ -> Alcotest.fail "schema tag");
  (match Json.member "passes" j with
  | Some (Json.List [ p ]) ->
      Alcotest.(check bool) "pass has stage" true (Json.member "stage" p <> None);
      Alcotest.(check bool) "pass has before stats" true
        (Json.member "before" p <> None)
  | _ -> Alcotest.fail "passes array");
  (match Json.member "meta" j with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "meta object");
  Alcotest.(check bool) "counters section present" true
    (Json.member "counters" j <> None);
  (* the whole document round-trips through the parser *)
  match Json.of_string (Json.to_string ~indent:2 j) with
  | Ok j' -> Alcotest.(check bool) "round-trip" true (json_equal j j')
  | Error e -> Alcotest.failf "trace does not re-parse: %s" e

let test_trace_write_file () =
  let t = Trace.create () in
  ignore (Trace.time (Some t) ~stage:"graph" ~name:"p" ~stats:(fun _ -> Stats.zero) Fun.id ());
  let file = Filename.temp_file "gc_trace_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace.write_file t file;
      let ic = open_in_bin file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string s with
      | Ok j ->
          Alcotest.(check bool) "file has schema" true
            (Json.member "schema" j = Some (Json.String "gc-trace/1"))
      | Error e -> Alcotest.failf "written file does not parse: %s" e)

let test_compile_with_trace () =
  (* end-to-end: compiling a real workload with a trace records the graph,
     lowering, tir and runtime stages *)
  let built = Gc_workloads.Mlp.build_f32 ~batch:2 ~hidden:[ 3; 4 ] () in
  let t = Trace.create () in
  ignore (Core.compile ~trace:t built.Gc_workloads.Mlp.graph);
  let stages =
    List.sort_uniq compare
      (List.map (fun e -> e.Trace.stage) (Trace.passes t))
  in
  List.iter
    (fun s ->
      if not (List.mem s stages) then Alcotest.failf "stage %s missing" s)
    [ "graph"; "lowering"; "tir"; "runtime" ];
  Alcotest.(check bool) "several passes recorded" true
    (List.length (Trace.passes t) >= 10)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "observe"
    [
      ( "json",
        [
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_roundtrip_indented;
          Alcotest.test_case "string escapes" `Quick test_json_escapes;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects_malformed;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "counters",
        [
          Alcotest.test_case "disabled hooks are no-ops" `Quick
            test_counters_disabled_are_noops;
          Alcotest.test_case "enabled hooks count" `Quick
            test_counters_enabled_count;
          Alcotest.test_case "with_counters restores enablement" `Quick
            test_with_counters_restores_enablement;
          Alcotest.test_case "real execution fires hooks" `Quick
            test_counters_count_real_execution;
        ] );
      ( "stats",
        [ Alcotest.test_case "of_module" `Quick test_stats_of_module ] );
      ( "trace",
        [
          Alcotest.test_case "records passes" `Quick test_trace_records_passes;
          Alcotest.test_case "json schema" `Quick test_trace_json_schema;
          Alcotest.test_case "write_file" `Quick test_trace_write_file;
          Alcotest.test_case "compile with trace" `Quick test_compile_with_trace;
        ] );
    ]
