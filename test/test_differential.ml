(* Differential test harness: randomized Tensor-IR programs and workload
   graphs, each executed by both the tree-walking interpreter (the
   obviously-correct reference) and the closure-compiling engine, asserting
   numerically identical results — f32 within an accumulation-order
   tolerance, integer dtypes bit-exact. Every program derives from a fixed
   PRNG seed, so a failure reproduces deterministically from its test name.

   Three layers of coverage:
     1. hand-rank random Tensor IR: loop nests over random scalar
        expressions (with parallel loops, conditionals, scalar temps,
        reversed index arithmetic), memory intrinsics (alloc/zero/copy
        with offsets), and brgemm intrinsic calls (f32 + int8);
     2. whole workload graphs (MLP / MHA, f32 + int8) pushed through the
        *full* optimization pipeline under randomized pass configurations,
        then the resulting optimized module run by both executors;
     3. end-to-end Core.execute vs the graph reference evaluator. *)

open Gc_tensor
open Gc_tensor_ir
open Gc_runtime

let pool = Parallel.create 2

(* Interp-vs-Engine comparisons actually executed (the harness pins a
   floor of 50 in the final test group). *)
let programs_run = ref 0

(* ------------------------------------------------------------------ *)
(* Buffer filling and comparison *)

let fill_random rs buf =
  let n = Buffer.length buf in
  match Buffer.dtype buf with
  | Dtype.F32 | Dtype.Bf16 ->
      for i = 0 to n - 1 do
        Buffer.set buf i (Random.State.float rs 4.0 -. 2.0)
      done
  | Dtype.S8 ->
      for i = 0 to n - 1 do
        Buffer.set_int buf i (Random.State.int rs 256 - 128)
      done
  | Dtype.U8 ->
      for i = 0 to n - 1 do
        Buffer.set_int buf i (Random.State.int rs 256)
      done
  | Dtype.S32 | Dtype.S64 ->
      for i = 0 to n - 1 do
        Buffer.set_int buf i (Random.State.int rs 2001 - 1000)
      done

(* Integer dtypes must agree bit-exactly; float dtypes within [tol]
   scaled by the data's magnitude (the engine's brgemm microkernel uses a
   different accumulation order than the interpreter's sequential
   reference, so reassociation noise is expected and bounded). *)
let buffer_close ~what ~tol a b =
  let n = Buffer.length a in
  Alcotest.(check int) (what ^ ": length") n (Buffer.length b);
  match Buffer.dtype a with
  | Dtype.S8 | Dtype.U8 | Dtype.S32 | Dtype.S64 ->
      for i = 0 to n - 1 do
        let x = Buffer.get_int a i and y = Buffer.get_int b i in
        if x <> y then
          Alcotest.failf "%s[%d]: interp=%d engine=%d" what i x y
      done
  | Dtype.F32 | Dtype.Bf16 ->
      let scale = ref 1.0 in
      for i = 0 to n - 1 do
        scale :=
          Float.max !scale
            (Float.max (Float.abs (Buffer.get a i)) (Float.abs (Buffer.get b i)))
      done;
      for i = 0 to n - 1 do
        let x = Buffer.get a i and y = Buffer.get b i in
        let ok =
          (Float.is_nan x && Float.is_nan y)
          || x = y
          || Float.abs (x -. y) <= tol *. !scale
        in
        if not ok then
          Alcotest.failf "%s[%d]: interp=%.9g engine=%.9g (scale %.3g)" what i x
            y !scale
      done

(* Run one module through both executors over identical random inputs and
   compare every entry-parameter buffer afterwards (outputs included;
   untouched inputs compare trivially). *)
let run_differential ?(tol = 1e-6) ~what ~rs (m : Ir.module_) =
  (match m.Ir.globals with
  | [] -> ()
  | _ -> Alcotest.failf "%s: expected a module without globals" what);
  let entry =
    match Ir.find_func m m.entry with
    | Some f -> f
    | None -> Alcotest.failf "%s: no entry function" what
  in
  let tparams =
    List.filter_map
      (function Ir.Ptensor t -> Some t | Ir.Pvar _ -> None)
      entry.Ir.params
  in
  if List.length tparams <> List.length entry.Ir.params then
    Alcotest.failf "%s: entry has scalar params" what;
  let bufs_i =
    List.map
      (fun (t : Ir.tensor) ->
        let b = Buffer.create t.Ir.tdtype (Ir.tensor_numel t) in
        fill_random rs b;
        b)
      tparams
  in
  let bufs_e = List.map Buffer.copy bufs_i in
  let interp = Interp.create m in
  let engine = Engine.create ~pool m in
  Interp.run_entry interp (Array.of_list bufs_i);
  Engine.run_entry engine (Array.of_list bufs_e);
  incr programs_run;
  List.iteri
    (fun i ((t : Ir.tensor), (bi, be)) ->
      buffer_close
        ~what:(Printf.sprintf "%s: param %d (%s)" what i t.Ir.tname)
        ~tol bi be)
    (List.combine tparams (List.combine bufs_i bufs_e))

(* ------------------------------------------------------------------ *)
(* 1a. Random element-wise loop nests *)

(* Random float-valued expression over the input tensors. The grammar
   deliberately avoids sources of inf/nan divergence (no unguarded
   Div/Rcp/Sqrt, Exp clamped) so exact agreement is the expectation. *)
let rec gen_fexpr rs ins idx depth =
  let open Ir in
  if depth = 0 || Random.State.int rs 4 = 0 then
    match Random.State.int rs 3 with
    | 0 | 1 ->
        let t = ins.(Random.State.int rs (Array.length ins)) in
        Load (t, idx ())
    | _ -> Float (Random.State.float rs 4.0 -. 2.0)
  else
    let sub () = gen_fexpr rs ins idx (depth - 1) in
    match Random.State.int rs 10 with
    | 0 -> Binop (Add, sub (), sub ())
    | 1 -> Binop (Sub, sub (), sub ())
    | 2 -> Binop (Mul, sub (), sub ())
    | 3 -> Binop (Min, sub (), sub ())
    | 4 -> Binop (Max, sub (), sub ())
    | 5 -> Unop (Neg, sub ())
    | 6 -> Unop (Abs, sub ())
    | 7 -> Unop (Tanh, sub ())
    | 8 -> Unop (Exp, Binop (Min, sub (), Float 4.0))
    | _ -> Select (Binop (Lt, sub (), sub ()), sub (), sub ())

let gen_eltwise_module seed =
  let rs = Random.State.make [| 0xd1ff; seed |] in
  let open Ir in
  let rank = 1 + Random.State.int rs 3 in
  let dims = Array.init rank (fun _ -> 1 + Random.State.int rs 5) in
  let nin = 1 + Random.State.int rs 2 in
  let ins =
    Array.init nin (fun i ->
        fresh_tensor ~name:(Printf.sprintf "x%d" i) ~storage:Param Dtype.F32
          dims)
  in
  let out = fresh_tensor ~name:"o" ~storage:Param Dtype.F32 dims in
  let vars =
    Array.init rank (fun i -> fresh_var ~name:(Printf.sprintf "i%d" i) Index)
  in
  (* each Load site draws its own index vector: mostly the loop variable,
     sometimes mirrored (dim-1-i) to exercise index arithmetic *)
  let idx () =
    Array.init rank (fun i ->
        if Random.State.int rs 5 = 0 then
          Binop (Sub, Int (dims.(i) - 1), Var vars.(i))
        else Var vars.(i))
  in
  let value = gen_fexpr rs ins idx (1 + Random.State.int rs 3) in
  let ovals = Array.init rank (fun i -> Var vars.(i)) in
  let store =
    match Random.State.int rs 3 with
    | 0 ->
        (* route through a scalar temporary *)
        let tmp = fresh_var ~name:"t" (Scalar Dtype.F32) in
        [
          Assign (tmp, value);
          Store (out, ovals, Binop (Add, Var tmp, Float 0.5));
        ]
    | 1 ->
        (* branch on index parity *)
        [
          If
            ( Binop (Eq, Binop (Mod, Var vars.(0), Int 2), Int 0),
              [ Store (out, ovals, value) ],
              [ Store (out, ovals, Unop (Neg, value)) ] );
        ]
    | _ -> [ Store (out, ovals, value) ]
  in
  let parallel_outer = Random.State.bool rs in
  let rec nest i inner =
    if i < 0 then inner
    else
      nest (i - 1)
        [
          For
            {
              v = vars.(i);
              lo = Int 0;
              hi = Int dims.(i);
              step = Int 1;
              body = inner;
              parallel = i = 0 && parallel_outer;
              merge_tag = None;
            };
        ]
  in
  let body = nest (rank - 1) store in
  let params = List.map (fun t -> Ptensor t) (Array.to_list ins @ [ out ]) in
  { funcs = [ { fname = "main"; params; body } ]; entry = "main"; init = None;
    globals = [] }

let run_eltwise seed =
  let rs = Random.State.make [| 0xda7a; seed |] in
  run_differential ~what:(Printf.sprintf "eltwise seed %d" seed) ~rs
    (gen_eltwise_module seed)

(* ------------------------------------------------------------------ *)
(* 1b. Memory intrinsics: Alloc + zero/copy with offsets *)

let gen_memory_module seed =
  let rs = Random.State.make [| 0xa110c; seed |] in
  let open Ir in
  let n = 4 + Random.State.int rs 29 in
  let x = fresh_tensor ~name:"x" ~storage:Param Dtype.F32 [| n |] in
  let o = fresh_tensor ~name:"o" ~storage:Param Dtype.F32 [| n |] in
  let tmp = fresh_tensor ~name:"tmp" ~storage:Local Dtype.F32 [| n |] in
  let i = fresh_var ~name:"i" Index in
  let c = Random.State.float rs 4.0 -. 2.0 in
  let off = Random.State.int rs (n / 2) in
  let len = n - off in
  let z0 = Random.State.int rs n in
  let zlen = Random.State.int rs (n - z0 + 1) in
  let body =
    [
      Alloc tmp;
      Call ("zero", [ Addr (tmp, [| Int 0 |]); Int n ]);
      For
        {
          v = i;
          lo = Int 0;
          hi = Int n;
          step = Int 1;
          body =
            [
              Store
                ( tmp,
                  [| Var i |],
                  Binop (Add, Load (x, [| Var i |]), Float c) );
            ];
          parallel = Random.State.bool rs;
          merge_tag = None;
        };
      (* whole-tensor copy, then an offset sub-range copy over it, then a
         zeroed sub-range — exercises the offset paths of both executors *)
      Call ("copy", [ Addr (o, [| Int 0 |]); Addr (tmp, [| Int 0 |]); Int n ]);
      Call ("copy", [ Addr (o, [| Int off |]); Addr (x, [| Int 0 |]); Int len ]);
      Call ("zero", [ Addr (o, [| Int z0 |]); Int zlen ]);
    ]
  in
  let params = [ Ptensor x; Ptensor o ] in
  { funcs = [ { fname = "main"; params; body } ]; entry = "main"; init = None;
    globals = [] }

let run_memory seed =
  let rs = Random.State.make [| 0x3e3; seed |] in
  run_differential ~what:(Printf.sprintf "memory seed %d" seed) ~rs
    (gen_memory_module seed)

(* ------------------------------------------------------------------ *)
(* 1c. brgemm intrinsic: f32 (tolerance) and int8 (bit-exact) *)

let gen_brgemm_module ~int8 seed =
  let rs = Random.State.make [| 0xb96e; seed |] in
  let open Ir in
  let batch = 1 + Random.State.int rs 2 in
  let mb = 1 + Random.State.int rs 6 in
  let nb = 1 + Random.State.int rs 6 in
  let kb = 1 + Random.State.int rs 6 in
  let adt, bdt, cdt =
    if int8 then
      ((if Random.State.bool rs then Dtype.U8 else Dtype.S8), Dtype.S8, Dtype.S32)
    else (Dtype.F32, Dtype.F32, Dtype.F32)
  in
  let a = fresh_tensor ~name:"a" ~storage:Param adt [| batch; mb; kb |] in
  let b = fresh_tensor ~name:"b" ~storage:Param bdt [| batch; nb; kb |] in
  let c = fresh_tensor ~name:"c" ~storage:Param cdt [| mb; nb |] in
  let z3 = [| Int 0; Int 0; Int 0 |] in
  let z2 = [| Int 0; Int 0 |] in
  let body =
    [
      Call ("zero", [ Addr (c, z2); Int (mb * nb) ]);
      Call
        ( "brgemm",
          [
            Int batch; Int mb; Int nb; Int kb;
            Addr (a, z3); Int (mb * kb);
            Addr (b, z3); Int (nb * kb);
            Addr (c, z2);
          ] );
    ]
  in
  let params = [ Ptensor a; Ptensor b; Ptensor c ] in
  { funcs = [ { fname = "main"; params; body } ]; entry = "main"; init = None;
    globals = [] }

let run_brgemm ~int8 seed =
  let rs = Random.State.make [| 0x6e44; seed |] in
  let what =
    Printf.sprintf "brgemm %s seed %d" (if int8 then "int8" else "f32") seed
  in
  (* f32: microkernel accumulation order differs from the sequential
     reference, so allow reassociation noise; int8 accumulates exactly in
     integers — buffer_close enforces bit-exactness on the S32 output *)
  run_differential ~tol:1e-5 ~what ~rs (gen_brgemm_module ~int8 seed)

(* ------------------------------------------------------------------ *)
(* 2. Full-pipeline modules under randomized pass configurations *)

let machine = Gc_microkernel.Machine.test_machine

(* const_weights stays off so the module has no init/globals and both
   executors can be fed the entry parameters directly; everything else is
   toggled at random per seed. *)
let random_config rs =
  let d = Gc_graph_passes.Pipeline.default ~machine () in
  let cfg =
    {
      d with
      Gc_graph_passes.Pipeline.const_weights = false;
      const_fold = Random.State.bool rs;
      cse = Random.State.bool rs;
      dce = Random.State.bool rs;
      layout_propagation = Random.State.bool rs;
      propagate_activations = Random.State.bool rs;
      fine_fusion = Random.State.bool rs;
      coarse_fusion = Random.State.bool rs;
    }
  in
  { (Core.default_config ~machine ()) with Core.graph = cfg; pool = Some pool }

let pipeline_module config graph = Core.tir_module (Core.compile ~config graph)

let run_pipeline_mlp ~int8 seed =
  let rs = Random.State.make [| 0x919e; seed |] in
  let batch = 1 + Random.State.int rs 6 in
  let nlayers = 1 + Random.State.int rs 2 in
  let hidden = List.init (nlayers + 1) (fun _ -> 1 + Random.State.int rs 20) in
  let built =
    if int8 then Gc_workloads.Mlp.build_int8 ~seed ~batch ~hidden ()
    else Gc_workloads.Mlp.build_f32 ~seed ~batch ~hidden ()
  in
  let m = pipeline_module (random_config rs) built.Gc_workloads.Mlp.graph in
  let what =
    Printf.sprintf "pipeline mlp%s seed %d" (if int8 then " int8" else "") seed
  in
  run_differential ~tol:5e-4 ~what ~rs m

let run_pipeline_mha seed =
  let rs = Random.State.make [| 0x3a3a; seed |] in
  let batch = 1 + Random.State.int rs 2 in
  let heads = 1 + Random.State.int rs 2 in
  let hidden = heads * (4 + Random.State.int rs 9) in
  let seq = 2 + Random.State.int rs 7 in
  let built = Gc_workloads.Mha.build_f32 ~seed ~batch ~seq ~hidden ~heads () in
  let m = pipeline_module (random_config rs) built.Gc_workloads.Mha.graph in
  run_differential ~tol:5e-4
    ~what:(Printf.sprintf "pipeline mha seed %d" seed)
    ~rs m

(* ------------------------------------------------------------------ *)
(* 3. End-to-end: Core.execute vs the graph reference evaluator *)

let check_outputs ~what ~rtol ~atol got expect =
  Alcotest.(check int) (what ^ ": output count") (List.length expect)
    (List.length got);
  List.iteri
    (fun i (g, e) ->
      if not (Tensor.allclose ~rtol ~atol g e) then
        Alcotest.failf "%s: output %d diverges (max abs diff %g)" what i
          (Tensor.max_abs_diff g e))
    (List.combine got expect)

let run_exec_vs_reference ~kind seed =
  let rs = Random.State.make [| 0xe2e; seed |] in
  let graph, data, what, rtol, atol =
    match kind with
    | `Mlp_f32 ->
        let batch = 1 + Random.State.int rs 8 in
        let hidden =
          List.init (2 + Random.State.int rs 2) (fun _ ->
              1 + Random.State.int rs 24)
        in
        let b = Gc_workloads.Mlp.build_f32 ~seed ~batch ~hidden () in
        ( b.Gc_workloads.Mlp.graph, b.Gc_workloads.Mlp.data,
          Printf.sprintf "e2e mlp f32 seed %d" seed, 2e-3, 2e-3 )
    | `Mlp_int8 ->
        let batch = 1 + Random.State.int rs 8 in
        let hidden =
          List.init (2 + Random.State.int rs 2) (fun _ ->
              1 + Random.State.int rs 24)
        in
        let b = Gc_workloads.Mlp.build_int8 ~seed ~batch ~hidden () in
        ( b.Gc_workloads.Mlp.graph, b.Gc_workloads.Mlp.data,
          Printf.sprintf "e2e mlp int8 seed %d" seed, 1e-4, 1e-3 )
    | `Mha_f32 ->
        let heads = 1 + Random.State.int rs 2 in
        let b =
          Gc_workloads.Mha.build_f32 ~seed ~batch:(1 + Random.State.int rs 2)
            ~seq:(2 + Random.State.int rs 7)
            ~hidden:(heads * (4 + Random.State.int rs 9))
            ~heads ()
        in
        ( b.Gc_workloads.Mha.graph, b.Gc_workloads.Mha.data,
          Printf.sprintf "e2e mha f32 seed %d" seed, 2e-3, 2e-3 )
    | `Mha_int8 ->
        let heads = 1 + Random.State.int rs 2 in
        let b =
          Gc_workloads.Mha.build_int8 ~seed ~batch:(1 + Random.State.int rs 2)
            ~seq:(2 + Random.State.int rs 7)
            ~hidden:(heads * (4 + Random.State.int rs 9))
            ~heads ()
        in
        ( b.Gc_workloads.Mha.graph, b.Gc_workloads.Mha.data,
          Printf.sprintf "e2e mha int8 seed %d" seed, 1e-2, 5e-2 )
  in
  let config =
    { (Core.default_config ~machine ()) with Core.pool = Some pool }
  in
  let compiled = Core.compile ~config graph in
  let got = Core.execute compiled data in
  let expect = Core.reference graph data in
  check_outputs ~what ~rtol ~atol got expect

(* ------------------------------------------------------------------ *)

let cases name n f =
  ( name,
    List.init n (fun s ->
        Alcotest.test_case (Printf.sprintf "seed %d" s) `Quick (fun () -> f s))
  )

let () =
  Alcotest.run "differential"
    [
      cases "random-tir-eltwise" 20 run_eltwise;
      cases "random-tir-memory" 8 run_memory;
      cases "random-tir-brgemm-f32" 6 (run_brgemm ~int8:false);
      cases "random-tir-brgemm-int8" 6 (run_brgemm ~int8:true);
      cases "pipeline-mlp-f32" 10 (run_pipeline_mlp ~int8:false);
      cases "pipeline-mlp-int8" 4 (run_pipeline_mlp ~int8:true);
      cases "pipeline-mha-f32" 4 run_pipeline_mha;
      cases "e2e-mlp-f32" 4 (run_exec_vs_reference ~kind:`Mlp_f32);
      cases "e2e-mlp-int8" 4 (run_exec_vs_reference ~kind:`Mlp_int8);
      cases "e2e-mha-f32" 2 (run_exec_vs_reference ~kind:`Mha_f32);
      cases "e2e-mha-int8" 2 (run_exec_vs_reference ~kind:`Mha_int8);
      ( "coverage",
        [
          Alcotest.test_case "at least 50 differential programs" `Quick
            (fun () ->
              if !programs_run < 50 then
                Alcotest.failf "only %d Interp-vs-Engine programs ran"
                  !programs_run);
        ] );
    ]
