(* Differential test harness: randomized Tensor-IR programs and workload
   graphs, each executed by both the tree-walking interpreter (the
   obviously-correct reference) and the closure-compiling engine, asserting
   numerically identical results — f32 within an accumulation-order
   tolerance, integer dtypes bit-exact. Every program derives from a fixed
   PRNG seed, so a failure reproduces deterministically from its test name.

   Three layers of coverage:
     1. hand-rank random Tensor IR: loop nests over random scalar
        expressions (with parallel loops, conditionals, scalar temps,
        reversed index arithmetic), memory intrinsics (alloc/zero/copy
        with offsets), and brgemm intrinsic calls (f32 + int8);
     2. whole workload graphs (MLP / MHA, f32 + int8) pushed through the
        *full* optimization pipeline under randomized pass configurations,
        then the resulting optimized module run by both executors;
     3. end-to-end Core.execute vs the graph reference evaluator. *)

open Gc_tensor
open Gc_tensor_ir
open Gc_runtime

let pool = Parallel.create 2

(* Interp-vs-Engine comparisons actually executed (the harness pins a
   floor of 50 in the final test group). *)
let programs_run = ref 0

(* ------------------------------------------------------------------ *)
(* Buffer filling and comparison *)

(* [s32_range] narrows the integer fill for graphs whose s32 inputs are
   indices (DLRM gather rows must stay inside [0, vocab)). *)
let fill_random ?(s32_range = (-1000, 1000)) rs buf =
  let n = Buffer.length buf in
  match Buffer.dtype buf with
  | Dtype.F32 | Dtype.Bf16 ->
      for i = 0 to n - 1 do
        Buffer.set buf i (Random.State.float rs 4.0 -. 2.0)
      done
  | Dtype.S8 ->
      for i = 0 to n - 1 do
        Buffer.set_int buf i (Random.State.int rs 256 - 128)
      done
  | Dtype.U8 ->
      for i = 0 to n - 1 do
        Buffer.set_int buf i (Random.State.int rs 256)
      done
  | Dtype.S32 | Dtype.S64 ->
      let lo, hi = s32_range in
      for i = 0 to n - 1 do
        Buffer.set_int buf i (lo + Random.State.int rs (hi - lo + 1))
      done

(* Integer dtypes must agree bit-exactly; float dtypes within [tol]
   scaled by the data's magnitude (the engine's brgemm microkernel uses a
   different accumulation order than the interpreter's sequential
   reference, so reassociation noise is expected and bounded). *)
let buffer_close ~what ~tol a b =
  let n = Buffer.length a in
  Alcotest.(check int) (what ^ ": length") n (Buffer.length b);
  match Buffer.dtype a with
  | Dtype.S8 | Dtype.U8 | Dtype.S32 | Dtype.S64 ->
      for i = 0 to n - 1 do
        let x = Buffer.get_int a i and y = Buffer.get_int b i in
        if x <> y then
          Alcotest.failf "%s[%d]: interp=%d engine=%d" what i x y
      done
  | Dtype.F32 | Dtype.Bf16 ->
      let scale = ref 1.0 in
      for i = 0 to n - 1 do
        scale :=
          Float.max !scale
            (Float.max (Float.abs (Buffer.get a i)) (Float.abs (Buffer.get b i)))
      done;
      for i = 0 to n - 1 do
        let x = Buffer.get a i and y = Buffer.get b i in
        let ok =
          (Float.is_nan x && Float.is_nan y)
          || x = y
          || Float.abs (x -. y) <= tol *. !scale
        in
        if not ok then
          Alcotest.failf "%s[%d]: interp=%.9g engine=%.9g (scale %.3g)" what i x
            y !scale
      done

(* Run one module through both executors over identical random inputs and
   compare every entry-parameter buffer afterwards (outputs included;
   untouched inputs compare trivially). *)
let run_differential ?(tol = 1e-6) ?s32_range ~what ~rs (m : Ir.module_) =
  (match m.Ir.globals with
  | [] -> ()
  | _ -> Alcotest.failf "%s: expected a module without globals" what);
  let entry =
    match Ir.find_func m m.entry with
    | Some f -> f
    | None -> Alcotest.failf "%s: no entry function" what
  in
  let tparams =
    List.filter_map
      (function Ir.Ptensor t -> Some t | Ir.Pvar _ -> None)
      entry.Ir.params
  in
  if List.length tparams <> List.length entry.Ir.params then
    Alcotest.failf "%s: entry has scalar params" what;
  let bufs_i =
    List.map
      (fun (t : Ir.tensor) ->
        let b = Buffer.create t.Ir.tdtype (Ir.tensor_numel t) in
        fill_random ?s32_range rs b;
        b)
      tparams
  in
  let bufs_e = List.map Buffer.copy bufs_i in
  let interp = Interp.create m in
  let engine = Engine.create ~pool m in
  Interp.run_entry interp (Array.of_list bufs_i);
  Engine.run_entry engine (Array.of_list bufs_e);
  incr programs_run;
  List.iteri
    (fun i ((t : Ir.tensor), (bi, be)) ->
      buffer_close
        ~what:(Printf.sprintf "%s: param %d (%s)" what i t.Ir.tname)
        ~tol bi be)
    (List.combine tparams (List.combine bufs_i bufs_e))

(* ------------------------------------------------------------------ *)
(* 1a. Random element-wise loop nests *)

(* Random float-valued expression over the input tensors. The grammar
   deliberately avoids sources of inf/nan divergence (no unguarded
   Div/Rcp/Sqrt, Exp clamped) so exact agreement is the expectation. *)
let rec gen_fexpr rs ins idx depth =
  let open Ir in
  if depth = 0 || Random.State.int rs 4 = 0 then
    match Random.State.int rs 3 with
    | 0 | 1 ->
        let t = ins.(Random.State.int rs (Array.length ins)) in
        Load (t, idx ())
    | _ -> Float (Random.State.float rs 4.0 -. 2.0)
  else
    let sub () = gen_fexpr rs ins idx (depth - 1) in
    match Random.State.int rs 10 with
    | 0 -> Binop (Add, sub (), sub ())
    | 1 -> Binop (Sub, sub (), sub ())
    | 2 -> Binop (Mul, sub (), sub ())
    | 3 -> Binop (Min, sub (), sub ())
    | 4 -> Binop (Max, sub (), sub ())
    | 5 -> Unop (Neg, sub ())
    | 6 -> Unop (Abs, sub ())
    | 7 -> Unop (Tanh, sub ())
    | 8 -> Unop (Exp, Binop (Min, sub (), Float 4.0))
    | _ -> Select (Binop (Lt, sub (), sub ()), sub (), sub ())

let gen_eltwise_module seed =
  let rs = Random.State.make [| 0xd1ff; seed |] in
  let open Ir in
  let rank = 1 + Random.State.int rs 3 in
  let dims = Array.init rank (fun _ -> 1 + Random.State.int rs 5) in
  let nin = 1 + Random.State.int rs 2 in
  let ins =
    Array.init nin (fun i ->
        fresh_tensor ~name:(Printf.sprintf "x%d" i) ~storage:Param Dtype.F32
          dims)
  in
  let out = fresh_tensor ~name:"o" ~storage:Param Dtype.F32 dims in
  let vars =
    Array.init rank (fun i -> fresh_var ~name:(Printf.sprintf "i%d" i) Index)
  in
  (* each Load site draws its own index vector: mostly the loop variable,
     sometimes mirrored (dim-1-i) to exercise index arithmetic *)
  let idx () =
    Array.init rank (fun i ->
        if Random.State.int rs 5 = 0 then
          Binop (Sub, Int (dims.(i) - 1), Var vars.(i))
        else Var vars.(i))
  in
  let value = gen_fexpr rs ins idx (1 + Random.State.int rs 3) in
  let ovals = Array.init rank (fun i -> Var vars.(i)) in
  let store =
    match Random.State.int rs 3 with
    | 0 ->
        (* route through a scalar temporary *)
        let tmp = fresh_var ~name:"t" (Scalar Dtype.F32) in
        [
          Assign (tmp, value);
          Store (out, ovals, Binop (Add, Var tmp, Float 0.5));
        ]
    | 1 ->
        (* branch on index parity *)
        [
          If
            ( Binop (Eq, Binop (Mod, Var vars.(0), Int 2), Int 0),
              [ Store (out, ovals, value) ],
              [ Store (out, ovals, Unop (Neg, value)) ] );
        ]
    | _ -> [ Store (out, ovals, value) ]
  in
  let parallel_outer = Random.State.bool rs in
  let rec nest i inner =
    if i < 0 then inner
    else
      nest (i - 1)
        [
          For
            {
              v = vars.(i);
              lo = Int 0;
              hi = Int dims.(i);
              step = Int 1;
              body = inner;
              parallel = i = 0 && parallel_outer;
              merge_tag = None;
            };
        ]
  in
  let body = nest (rank - 1) store in
  let params = List.map (fun t -> Ptensor t) (Array.to_list ins @ [ out ]) in
  { funcs = [ { fname = "main"; params; body } ]; entry = "main"; init = None;
    globals = [] }

let run_eltwise seed =
  let rs = Random.State.make [| 0xda7a; seed |] in
  run_differential ~what:(Printf.sprintf "eltwise seed %d" seed) ~rs
    (gen_eltwise_module seed)

(* ------------------------------------------------------------------ *)
(* 1b. Memory intrinsics: Alloc + zero/copy with offsets *)

let gen_memory_module seed =
  let rs = Random.State.make [| 0xa110c; seed |] in
  let open Ir in
  let n = 4 + Random.State.int rs 29 in
  let x = fresh_tensor ~name:"x" ~storage:Param Dtype.F32 [| n |] in
  let o = fresh_tensor ~name:"o" ~storage:Param Dtype.F32 [| n |] in
  let tmp = fresh_tensor ~name:"tmp" ~storage:Local Dtype.F32 [| n |] in
  let i = fresh_var ~name:"i" Index in
  let c = Random.State.float rs 4.0 -. 2.0 in
  let off = Random.State.int rs (n / 2) in
  let len = n - off in
  let z0 = Random.State.int rs n in
  let zlen = Random.State.int rs (n - z0 + 1) in
  let body =
    [
      Alloc tmp;
      Call ("zero", [ Addr (tmp, [| Int 0 |]); Int n ]);
      For
        {
          v = i;
          lo = Int 0;
          hi = Int n;
          step = Int 1;
          body =
            [
              Store
                ( tmp,
                  [| Var i |],
                  Binop (Add, Load (x, [| Var i |]), Float c) );
            ];
          parallel = Random.State.bool rs;
          merge_tag = None;
        };
      (* whole-tensor copy, then an offset sub-range copy over it, then a
         zeroed sub-range — exercises the offset paths of both executors *)
      Call ("copy", [ Addr (o, [| Int 0 |]); Addr (tmp, [| Int 0 |]); Int n ]);
      Call ("copy", [ Addr (o, [| Int off |]); Addr (x, [| Int 0 |]); Int len ]);
      Call ("zero", [ Addr (o, [| Int z0 |]); Int zlen ]);
    ]
  in
  let params = [ Ptensor x; Ptensor o ] in
  { funcs = [ { fname = "main"; params; body } ]; entry = "main"; init = None;
    globals = [] }

let run_memory seed =
  let rs = Random.State.make [| 0x3e3; seed |] in
  run_differential ~what:(Printf.sprintf "memory seed %d" seed) ~rs
    (gen_memory_module seed)

(* ------------------------------------------------------------------ *)
(* 1c. brgemm intrinsic: f32 (tolerance) and int8 (bit-exact) *)

let gen_brgemm_module ~int8 seed =
  let rs = Random.State.make [| 0xb96e; seed |] in
  let open Ir in
  let batch = 1 + Random.State.int rs 2 in
  let mb = 1 + Random.State.int rs 6 in
  let nb = 1 + Random.State.int rs 6 in
  let kb = 1 + Random.State.int rs 6 in
  let adt, bdt, cdt =
    if int8 then
      ((if Random.State.bool rs then Dtype.U8 else Dtype.S8), Dtype.S8, Dtype.S32)
    else (Dtype.F32, Dtype.F32, Dtype.F32)
  in
  let a = fresh_tensor ~name:"a" ~storage:Param adt [| batch; mb; kb |] in
  let b = fresh_tensor ~name:"b" ~storage:Param bdt [| batch; nb; kb |] in
  let c = fresh_tensor ~name:"c" ~storage:Param cdt [| mb; nb |] in
  let z3 = [| Int 0; Int 0; Int 0 |] in
  let z2 = [| Int 0; Int 0 |] in
  let body =
    [
      Call ("zero", [ Addr (c, z2); Int (mb * nb) ]);
      Call
        ( "brgemm",
          [
            Int batch; Int mb; Int nb; Int kb;
            Addr (a, z3); Int (mb * kb);
            Addr (b, z3); Int (nb * kb);
            Addr (c, z2);
          ] );
    ]
  in
  let params = [ Ptensor a; Ptensor b; Ptensor c ] in
  { funcs = [ { fname = "main"; params; body } ]; entry = "main"; init = None;
    globals = [] }

let run_brgemm ~int8 seed =
  let rs = Random.State.make [| 0x6e44; seed |] in
  let what =
    Printf.sprintf "brgemm %s seed %d" (if int8 then "int8" else "f32") seed
  in
  (* f32: microkernel accumulation order differs from the sequential
     reference, so allow reassociation noise; int8 accumulates exactly in
     integers — buffer_close enforces bit-exactness on the S32 output *)
  run_differential ~tol:1e-5 ~what ~rs (gen_brgemm_module ~int8 seed)

(* ------------------------------------------------------------------ *)
(* 2. Full-pipeline modules under randomized pass configurations *)

let machine = Gc_microkernel.Machine.test_machine

(* const_weights stays off so the module has no init/globals and both
   executors can be fed the entry parameters directly; everything else is
   toggled at random per seed. *)
let random_config rs =
  let d = Gc_graph_passes.Pipeline.default ~machine () in
  let cfg =
    {
      d with
      Gc_graph_passes.Pipeline.const_weights = false;
      const_fold = Random.State.bool rs;
      cse = Random.State.bool rs;
      dce = Random.State.bool rs;
      layout_propagation = Random.State.bool rs;
      propagate_activations = Random.State.bool rs;
      fine_fusion = Random.State.bool rs;
      coarse_fusion = Random.State.bool rs;
    }
  in
  { (Core.default_config ~machine ()) with Core.graph = cfg; pool = Some pool }

let pipeline_module config graph = Core.tir_module (Core.compile ~config graph)

let run_pipeline_mlp ~int8 seed =
  let rs = Random.State.make [| 0x919e; seed |] in
  let batch = 1 + Random.State.int rs 6 in
  let nlayers = 1 + Random.State.int rs 2 in
  let hidden = List.init (nlayers + 1) (fun _ -> 1 + Random.State.int rs 20) in
  let built =
    if int8 then Gc_workloads.Mlp.build_int8 ~seed ~batch ~hidden ()
    else Gc_workloads.Mlp.build_f32 ~seed ~batch ~hidden ()
  in
  let m = pipeline_module (random_config rs) built.Gc_workloads.Mlp.graph in
  let what =
    Printf.sprintf "pipeline mlp%s seed %d" (if int8 then " int8" else "") seed
  in
  run_differential ~tol:5e-4 ~what ~rs m

let run_pipeline_mha seed =
  let rs = Random.State.make [| 0x3a3a; seed |] in
  let batch = 1 + Random.State.int rs 2 in
  let heads = 1 + Random.State.int rs 2 in
  let hidden = heads * (4 + Random.State.int rs 9) in
  let seq = 2 + Random.State.int rs 7 in
  let built = Gc_workloads.Mha.build_f32 ~seed ~batch ~seq ~hidden ~heads () in
  let m = pipeline_module (random_config rs) built.Gc_workloads.Mha.graph in
  run_differential ~tol:5e-4
    ~what:(Printf.sprintf "pipeline mha seed %d" seed)
    ~rs m

(* ------------------------------------------------------------------ *)
(* 2b. Conv2d: seeded shapes (stride > 1, asymmetric padding, dilation,
   1x1 kernels, channel counts off the BRGEMM tile sizes) through the
   im2col template *)

type conv_cfg = {
  cbatch : int;
  ch : int;
  cw : int;
  cc : int;
  ckh : int;
  ckw : int;
  coc : int;
  cstrides : int * int;
  cpads : int * int * int * int;
  cdils : int * int;
}

let conv_print c =
  let sh, sw = c.cstrides
  and pt, pl, pb, pr = c.cpads
  and dh, dw = c.cdils in
  Printf.sprintf
    "conv n%d %dx%dx%d k%dx%d oc%d s(%d,%d) p(%d,%d,%d,%d) d(%d,%d)" c.cbatch
    c.ch c.cw c.cc c.ckh c.ckw c.coc sh sw pt pl pb pr dh dw

(* the spatial extent must cover the dilated kernel so OH/OW >= 1 *)
let conv_valid c =
  let pt, pl, pb, pr = c.cpads and dh, dw = c.cdils in
  c.ch + pt + pb >= ((c.ckh - 1) * dh) + 1
  && c.cw + pl + pr >= ((c.ckw - 1) * dw) + 1

let conv_build ~int8 ~seed c =
  let build =
    if int8 then Gc_workloads.Conv.build_int8 else Gc_workloads.Conv.build_f32
  in
  build ~seed ~relu:(seed land 1 = 0) ~batch:c.cbatch ~height:c.ch ~width:c.cw
    ~channels:c.cc ~kh:c.ckh ~kw:c.ckw ~out_channels:c.coc
    ~strides:c.cstrides ~pads:c.cpads ~dilations:c.cdils ()

let gen_conv_cfg rs =
  let pick lo hi = lo + Random.State.int rs (hi - lo + 1) in
  let dil = if Random.State.int rs 3 = 0 then 2 else 1 in
  {
    cbatch = pick 1 2;
    ch = pick 5 9;
    cw = pick 5 9;
    cc = pick 1 24;
    ckh = pick 1 3;
    ckw = pick 1 3;
    coc = pick 1 24;
    cstrides = (pick 1 2, pick 1 2);
    cpads = (pick 0 1, pick 0 1, pick 0 1, pick 0 1);
    cdils = (dil, dil);
  }

let run_pipeline_conv ~int8 seed =
  let rs = Random.State.make [| 0xc02d; seed |] in
  let c = gen_conv_cfg rs in
  let built = conv_build ~int8 ~seed c in
  let m = pipeline_module (random_config rs) built.Gc_workloads.Conv.graph in
  let what =
    Printf.sprintf "pipeline %s seed %d (%s)"
      (if int8 then "conv int8" else "conv f32")
      seed (conv_print c)
  in
  run_differential ~tol:1e-5 ~what ~rs m

(* ------------------------------------------------------------------ *)
(* 2c. Whole-model graphs (BERT block stack, DLRM) through randomized
   pass configurations, interp vs engine *)

let run_pipeline_bert ~int8 seed =
  let rs = Random.State.make [| 0xbe47; seed |] in
  let heads = 1 + Random.State.int rs 2 in
  let build =
    if int8 then Gc_workloads.Bert.build_int8 else Gc_workloads.Bert.build_f32
  in
  let built =
    build ~seed ~layers:1
      ~batch:(1 + Random.State.int rs 2)
      ~seq:(4 + Random.State.int rs 5)
      ~hidden:(heads * (4 + Random.State.int rs 5))
      ~heads ()
  in
  let m = pipeline_module (random_config rs) built.Gc_workloads.Bert.graph in
  let what =
    Printf.sprintf "pipeline bert%s seed %d" (if int8 then " int8" else "") seed
  in
  run_differential ~tol:5e-4 ~what ~rs m

let run_pipeline_dlrm ~int8 seed =
  let rs = Random.State.make [| 0xd19a; seed |] in
  let vocab = 10 + Random.State.int rs 31 in
  let emb_dim = 4 + Random.State.int rs 9 in
  let build =
    if int8 then Gc_workloads.Dlrm.build_int8 else Gc_workloads.Dlrm.build_f32
  in
  let built =
    build ~seed
      ~batch:(1 + Random.State.int rs 8)
      ~dense_dim:(1 + Random.State.int rs 13)
      ~bottom:[ 8 + Random.State.int rs 17; emb_dim ]
      ~tables:(1 + Random.State.int rs 2)
      ~vocab ~emb_dim
      ~top:[ 8 + Random.State.int rs 17; 1 ]
      ()
  in
  let m = pipeline_module (random_config rs) built.Gc_workloads.Dlrm.graph in
  let what =
    Printf.sprintf "pipeline dlrm%s seed %d" (if int8 then " int8" else "") seed
  in
  (* the only s32 entry params are the gather index inputs: keep their
     random fill inside the embedding tables *)
  run_differential ~tol:5e-4 ~s32_range:(0, vocab - 1) ~what ~rs m

(* ------------------------------------------------------------------ *)
(* 3. End-to-end: Core.execute vs the graph reference evaluator *)

let check_outputs ~what ~rtol ~atol got expect =
  Alcotest.(check int) (what ^ ": output count") (List.length expect)
    (List.length got);
  List.iteri
    (fun i (g, e) ->
      if not (Tensor.allclose ~rtol ~atol g e) then
        Alcotest.failf "%s: output %d diverges (max abs diff %g)" what i
          (Tensor.max_abs_diff g e))
    (List.combine got expect)

let run_exec_vs_reference ~kind seed =
  let rs = Random.State.make [| 0xe2e; seed |] in
  let graph, data, what, rtol, atol =
    match kind with
    | `Mlp_f32 ->
        let batch = 1 + Random.State.int rs 8 in
        let hidden =
          List.init (2 + Random.State.int rs 2) (fun _ ->
              1 + Random.State.int rs 24)
        in
        let b = Gc_workloads.Mlp.build_f32 ~seed ~batch ~hidden () in
        ( b.Gc_workloads.Mlp.graph, b.Gc_workloads.Mlp.data,
          Printf.sprintf "e2e mlp f32 seed %d" seed, 2e-3, 2e-3 )
    | `Mlp_int8 ->
        let batch = 1 + Random.State.int rs 8 in
        let hidden =
          List.init (2 + Random.State.int rs 2) (fun _ ->
              1 + Random.State.int rs 24)
        in
        let b = Gc_workloads.Mlp.build_int8 ~seed ~batch ~hidden () in
        ( b.Gc_workloads.Mlp.graph, b.Gc_workloads.Mlp.data,
          Printf.sprintf "e2e mlp int8 seed %d" seed, 1e-4, 1e-3 )
    | `Mha_f32 ->
        let heads = 1 + Random.State.int rs 2 in
        let b =
          Gc_workloads.Mha.build_f32 ~seed ~batch:(1 + Random.State.int rs 2)
            ~seq:(2 + Random.State.int rs 7)
            ~hidden:(heads * (4 + Random.State.int rs 9))
            ~heads ()
        in
        ( b.Gc_workloads.Mha.graph, b.Gc_workloads.Mha.data,
          Printf.sprintf "e2e mha f32 seed %d" seed, 2e-3, 2e-3 )
    | `Mha_int8 ->
        let heads = 1 + Random.State.int rs 2 in
        let b =
          Gc_workloads.Mha.build_int8 ~seed ~batch:(1 + Random.State.int rs 2)
            ~seq:(2 + Random.State.int rs 7)
            ~hidden:(heads * (4 + Random.State.int rs 9))
            ~heads ()
        in
        ( b.Gc_workloads.Mha.graph, b.Gc_workloads.Mha.data,
          Printf.sprintf "e2e mha int8 seed %d" seed, 1e-2, 5e-2 )
    | `Bert_f32 ->
        let heads = 1 + Random.State.int rs 2 in
        let b =
          Gc_workloads.Bert.build_f32 ~seed
            ~layers:(1 + Random.State.int rs 2)
            ~batch:(1 + Random.State.int rs 2)
            ~seq:(4 + Random.State.int rs 5)
            ~hidden:(heads * (4 + Random.State.int rs 5))
            ~heads ()
        in
        ( b.Gc_workloads.Bert.graph, b.Gc_workloads.Bert.data,
          Printf.sprintf "e2e bert f32 seed %d" seed, 2e-3, 2e-3 )
    | `Bert_int8 ->
        let heads = 1 + Random.State.int rs 2 in
        let b =
          Gc_workloads.Bert.build_int8 ~seed
            ~layers:(1 + Random.State.int rs 2)
            ~batch:(1 + Random.State.int rs 2)
            ~seq:(4 + Random.State.int rs 5)
            ~hidden:(heads * (4 + Random.State.int rs 5))
            ~heads ()
        in
        (* int8 requantization flips a rounding boundary now and then; the
           pinned bound is documented in EXPERIMENTS.md *)
        ( b.Gc_workloads.Bert.graph, b.Gc_workloads.Bert.data,
          Printf.sprintf "e2e bert int8 seed %d" seed, 1e-2, 1e-2 )
    | `Dlrm_f32 ->
        let emb_dim = 4 + Random.State.int rs 9 in
        let b =
          Gc_workloads.Dlrm.build_f32 ~seed
            ~batch:(1 + Random.State.int rs 8)
            ~dense_dim:(1 + Random.State.int rs 13)
            ~bottom:[ 8 + Random.State.int rs 17; emb_dim ]
            ~tables:(1 + Random.State.int rs 2)
            ~vocab:(10 + Random.State.int rs 31)
            ~emb_dim
            ~top:[ 8 + Random.State.int rs 17; 1 ]
            ()
        in
        ( b.Gc_workloads.Dlrm.graph, b.Gc_workloads.Dlrm.data,
          Printf.sprintf "e2e dlrm f32 seed %d" seed, 2e-3, 2e-3 )
    | `Dlrm_int8 ->
        let emb_dim = 4 + Random.State.int rs 9 in
        let b =
          Gc_workloads.Dlrm.build_int8 ~seed
            ~batch:(1 + Random.State.int rs 8)
            ~dense_dim:(1 + Random.State.int rs 13)
            ~bottom:[ 8 + Random.State.int rs 17; emb_dim ]
            ~tables:(1 + Random.State.int rs 2)
            ~vocab:(10 + Random.State.int rs 31)
            ~emb_dim
            ~top:[ 8 + Random.State.int rs 17; 1 ]
            ()
        in
        ( b.Gc_workloads.Dlrm.graph, b.Gc_workloads.Dlrm.data,
          Printf.sprintf "e2e dlrm int8 seed %d" seed, 1e-2, 2e-2 )
  in
  let config =
    { (Core.default_config ~machine ()) with Core.pool = Some pool }
  in
  let compiled = Core.compile ~config graph in
  let got = Core.execute compiled data in
  let expect = Core.reference graph data in
  check_outputs ~what ~rtol ~atol got expect

(* ------------------------------------------------------------------ *)
(* 3b. Conv2d end-to-end, two claims per shape:
   - against the direct scalar reference (f64 accumulate, rounded once):
     a tight accumulation-order tolerance — the engine's brgemm rounds to
     f32 once per k-block, so exact agreement only holds while the whole
     reduction fits one block;
   - against an explicit im2col GEMM graph (the A matrix gathered in the
     test, weights reshaped HWIO → [KH·KW·C, OC]) through the SAME
     engine: BIT-EXACT, proving the fused gather is pure data movement
     and the conv template is the matmul template on the im2col view. *)

let run_conv_e2e ~int8 ~what ~seed c =
  let built = conv_build ~int8 ~seed c in
  let config =
    { (Core.default_config ~machine ()) with Core.pool = Some pool }
  in
  let compiled = Core.compile ~config built.Gc_workloads.Conv.graph in
  let got = Core.execute compiled built.Gc_workloads.Conv.data in
  let expect =
    Core.reference built.Gc_workloads.Conv.graph built.Gc_workloads.Conv.data
  in
  if int8 then check_outputs ~what ~rtol:1e-3 ~atol:1e-3 got expect
  else check_outputs ~what ~rtol:1e-5 ~atol:1e-5 got expect

let run_conv_vs_gemm ~what ~seed c =
  let shp = Shape.of_list in
  let sh_, sw_ = c.cstrides
  and pt, pl, _pb, _pr = c.cpads
  and dh, dw = c.cdils in
  let built =
    Gc_workloads.Conv.build_f32 ~seed ~relu:false ~batch:c.cbatch ~height:c.ch
      ~width:c.cw ~channels:c.cc ~kh:c.ckh ~kw:c.ckw ~out_channels:c.coc
      ~strides:c.cstrides ~pads:c.cpads ~dilations:c.cdils ()
  in
  let x, w =
    match built.Gc_workloads.Conv.data with
    | [ (_, x); (_, w) ] -> (x, w)
    | _ -> assert false
  in
  let oh = ((c.ch + pt + _pb - (((c.ckh - 1) * dh) + 1)) / sh_) + 1
  and ow = ((c.cw + pl + _pr - (((c.ckw - 1) * dw) + 1)) / sw_) + 1 in
  let m = c.cbatch * oh * ow and k = c.ckh * c.ckw * c.cc in
  (* tap decomposition mirrors the template: col = (kh·KW + kw)·C + c *)
  let tap col =
    let ch = col mod c.cc in
    let rest = col / c.cc in
    (rest / c.ckw, rest mod c.ckw, ch)
  in
  let a_mat =
    Tensor.init Dtype.F32 (shp [ m; k ]) (fun idx ->
        let row = idx.(0) in
        let ow_ = row mod ow in
        let rest = row / ow in
        let oh_ = rest mod oh and n = rest / oh in
        let kh_, kw_, ch = tap idx.(1) in
        let ih = (oh_ * sh_) - pt + (kh_ * dh)
        and iw = (ow_ * sw_) - pl + (kw_ * dw) in
        if ih < 0 || ih >= c.ch || iw < 0 || iw >= c.cw then 0.
        else Tensor.get x [| n; ih; iw; ch |])
  in
  let b_mat =
    Tensor.init Dtype.F32
      (shp [ k; c.coc ])
      (fun idx ->
        let kh_, kw_, ch = tap idx.(0) in
        Tensor.get w [| kh_; kw_; ch; idx.(1) |])
  in
  let b = Gc_graph_ir.Builder.create () in
  let av = Gc_graph_ir.Builder.input b ~name:"a" Dtype.F32 (shp [ m; k ]) in
  let wv =
    Gc_graph_ir.Builder.input b ~name:"w" ~const:true Dtype.F32
      (shp [ k; c.coc ])
  in
  let y = Gc_graph_ir.Builder.matmul b av wv in
  let gemm_graph = Gc_graph_ir.Builder.finalize b ~outputs:[ y ] in
  let config =
    { (Core.default_config ~machine ()) with Core.pool = Some pool }
  in
  let conv_out =
    List.hd
      (Core.execute
         (Core.compile ~config built.Gc_workloads.Conv.graph)
         built.Gc_workloads.Conv.data)
  in
  let gemm_out =
    List.hd
      (Core.execute
         (Core.compile ~config gemm_graph)
         [ (av, a_mat); (wv, b_mat) ])
  in
  for row = 0 to m - 1 do
    let ow_ = row mod ow in
    let rest = row / ow in
    let oh_ = rest mod oh and n = rest / oh in
    for oc = 0 to c.coc - 1 do
      let cv = Tensor.get conv_out [| n; oh_; ow_; oc |]
      and gv = Tensor.get gemm_out [| row; oc |] in
      if cv <> gv then
        Alcotest.failf "%s: [%d,%d,%d,%d] conv=%.9g gemm=%.9g (not bit-exact)"
          what n oh_ ow_ oc cv gv
    done
  done

(* pinned corner shapes from the satellite checklist *)
let conv_corners =
  [
    ( "3x3 same-pad",
      { cbatch = 2; ch = 8; cw = 8; cc = 3; ckh = 3; ckw = 3; coc = 8;
        cstrides = (1, 1); cpads = (1, 1, 1, 1); cdils = (1, 1) } );
    ( "1x1 kernel",
      { cbatch = 1; ch = 7; cw = 5; cc = 16; ckh = 1; ckw = 1; coc = 12;
        cstrides = (1, 1); cpads = (0, 0, 0, 0); cdils = (1, 1) } );
    ( "stride-2 asymmetric pad",
      { cbatch = 2; ch = 9; cw = 7; cc = 5; ckh = 3; ckw = 2; coc = 7;
        cstrides = (2, 2); cpads = (1, 0, 2, 1); cdils = (1, 1) } );
    ( "dilated 3x3",
      { cbatch = 1; ch = 9; cw = 9; cc = 4; ckh = 3; ckw = 3; coc = 6;
        cstrides = (1, 1); cpads = (2, 2, 2, 2); cdils = (2, 2) } );
    ( "remainder channels",
      { cbatch = 1; ch = 6; cw = 6; cc = 17; ckh = 3; ckw = 3; coc = 33;
        cstrides = (1, 1); cpads = (1, 1, 1, 1); cdils = (1, 1) } );
  ]

let conv_corner_cases ~int8 =
  List.concat_map
    (fun (name, c) ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "%s seed %d" name seed)
            `Quick
            (fun () ->
              let what = Printf.sprintf "conv corner %s seed %d" name seed in
              run_conv_e2e ~int8 ~what ~seed c;
              if not int8 then run_conv_vs_gemm ~what ~seed c))
        [ 0; 1 ])
    conv_corners

let conv_qcheck_gen =
  QCheck.Gen.map
    (fun (a, b) -> gen_conv_cfg (Random.State.make [| 0x9c0; a; b |]))
    QCheck.Gen.(pair (int_bound 10_000) (int_bound 10_000))

let prop_conv_f32_bit_exact =
  QCheck.Test.make
    ~name:"random conv2d shapes: bit-exact vs im2col GEMM, close to reference"
    ~count:25
    (QCheck.make ~print:conv_print conv_qcheck_gen)
    (fun c ->
      QCheck.assume (conv_valid c);
      run_conv_e2e ~int8:false ~what:(conv_print c) ~seed:3 c;
      run_conv_vs_gemm ~what:(conv_print c) ~seed:3 c;
      true)

let prop_conv_int8_close =
  QCheck.Test.make ~name:"random conv2d shapes: int8 within pinned tolerance"
    ~count:12
    (QCheck.make ~print:conv_print conv_qcheck_gen)
    (fun c ->
      QCheck.assume (conv_valid c);
      run_conv_e2e ~int8:true ~what:(conv_print c) ~seed:4 c;
      true)

(* ------------------------------------------------------------------ *)

let cases name n f =
  ( name,
    List.init n (fun s ->
        Alcotest.test_case (Printf.sprintf "seed %d" s) `Quick (fun () -> f s))
  )

let () =
  Alcotest.run "differential"
    [
      cases "random-tir-eltwise" 20 run_eltwise;
      cases "random-tir-memory" 8 run_memory;
      cases "random-tir-brgemm-f32" 6 (run_brgemm ~int8:false);
      cases "random-tir-brgemm-int8" 6 (run_brgemm ~int8:true);
      cases "pipeline-mlp-f32" 10 (run_pipeline_mlp ~int8:false);
      cases "pipeline-mlp-int8" 4 (run_pipeline_mlp ~int8:true);
      cases "pipeline-mha-f32" 4 run_pipeline_mha;
      cases "pipeline-conv-f32" 4 (run_pipeline_conv ~int8:false);
      cases "pipeline-conv-int8" 2 (run_pipeline_conv ~int8:true);
      cases "pipeline-bert-f32" 2 (run_pipeline_bert ~int8:false);
      cases "pipeline-bert-int8" 1 (run_pipeline_bert ~int8:true);
      cases "pipeline-dlrm-f32" 2 (run_pipeline_dlrm ~int8:false);
      cases "pipeline-dlrm-int8" 1 (run_pipeline_dlrm ~int8:true);
      ( "conv-corpus-f32",
        conv_corner_cases ~int8:false
        @ [ QCheck_alcotest.to_alcotest prop_conv_f32_bit_exact ] );
      ( "conv-corpus-int8",
        conv_corner_cases ~int8:true
        @ [ QCheck_alcotest.to_alcotest prop_conv_int8_close ] );
      cases "e2e-mlp-f32" 4 (run_exec_vs_reference ~kind:`Mlp_f32);
      cases "e2e-mlp-int8" 4 (run_exec_vs_reference ~kind:`Mlp_int8);
      cases "e2e-mha-f32" 2 (run_exec_vs_reference ~kind:`Mha_f32);
      cases "e2e-mha-int8" 2 (run_exec_vs_reference ~kind:`Mha_int8);
      cases "e2e-bert-f32" 2 (run_exec_vs_reference ~kind:`Bert_f32);
      cases "e2e-bert-int8" 2 (run_exec_vs_reference ~kind:`Bert_int8);
      cases "e2e-dlrm-f32" 2 (run_exec_vs_reference ~kind:`Dlrm_f32);
      cases "e2e-dlrm-int8" 2 (run_exec_vs_reference ~kind:`Dlrm_int8);
      ( "coverage",
        [
          Alcotest.test_case "at least 50 differential programs" `Quick
            (fun () ->
              if !programs_run < 50 then
                Alcotest.failf "only %d Interp-vs-Engine programs ran"
                  !programs_run);
        ] );
    ]
