(* Chaos suite: every injected fault class must be contained, classified
   into the typed taxonomy, counted, and leave the process serviceable —
   a subsequent clean execute must still produce reference-identical
   results. Fault injection is deterministic in (seed, site, probe), so
   the same seed reproduces the same fault schedule. *)

open Core
module Buffer = Gc_tensor.Buffer
module Parallel = Gc_runtime.Parallel
module Fault = Gc_faultinject

let sh = Shape.of_list

(* Each test arms its own fault spec; always disarm afterwards so a
   failing assertion cannot leak faults into the next test. *)
let with_faults ?seed ?slow_ms spec f =
  Fault.configure ?seed ?slow_ms spec;
  Fun.protect ~finally:Fault.clear f

let nan_aware_equal a b =
  let fa = Tensor.to_float_array a and fb = Tensor.to_float_array b in
  Array.length fa = Array.length fb
  && Array.for_all2
       (fun x y -> (Float.is_nan x && Float.is_nan y) || x = y)
       fa fb

let check_serviceable ?(msg = "clean execute matches reference") compiled
    (built : Gc_workloads.Mlp.built) =
  let out = execute compiled built.data in
  let ref_out = reference built.graph built.data in
  Alcotest.(check bool) msg true
    (List.for_all2 Tensor.equal out ref_out)

let opts ?timeout_ms ?(retries = 1) ?(fallback = true) ?(sanitize = false) ()
    =
  { timeout_ms; retries; fallback; sanitize_outputs = sanitize }

(* ------------------------------------------------------------------ *)
(* Deterministic fault schedule *)

let test_fault_schedule_deterministic () =
  let pattern () =
    Fault.configure ~seed:42 "worker:5";
    List.init 20 (fun _ -> Fault.should_fire Fault.site_worker)
  in
  let p1 = pattern () and p2 = pattern () in
  Fault.clear ();
  Alcotest.(check (list bool)) "same seed, same schedule" p1 p2;
  Alcotest.(check int) "fires once per period" 4
    (List.length (List.filter Fun.id p1))

let test_inert_when_unarmed () =
  Fault.clear ();
  Alcotest.(check bool) "disarmed" false (Fault.enabled ());
  Alcotest.(check bool) "never fires" false
    (List.exists Fun.id
       (List.init 100 (fun _ -> Fault.should_fire Fault.site_worker)))

(* ------------------------------------------------------------------ *)
(* Validation rejects (before any engine state is touched) *)

let test_validation_rejected_and_counted () =
  Observe.Counters.reset ();
  let built = Gc_workloads.Mlp.build_f32 ~batch:4 ~hidden:[ 8; 8 ] () in
  let compiled = compile built.graph in
  let x_lt, _ = List.hd built.data in
  let bad = Tensor.random Dtype.F32 (sh [ 3; 8 ]) in
  (match
     execute_checked compiled ((x_lt, bad) :: List.tl built.data)
   with
  | Error (Errors.Invalid_input { ctx; _ }) ->
      Alcotest.(check (option string))
        "shape in context" (Some "[3x8]")
        (List.assoc_opt "shape" ctx)
  | Ok _ -> Alcotest.fail "bad shape accepted"
  | Error e -> Alcotest.fail ("wrong class: " ^ Errors.to_string e));
  (match execute_checked compiled [ List.hd built.data ] with
  | Error (Errors.Invalid_input _) -> ()
  | _ -> Alcotest.fail "missing binding not rejected as Invalid_input");
  let snap = Observe.Counters.snapshot () in
  Alcotest.(check bool) "rejects counted" true (snap.validation_rejects >= 2);
  check_serviceable compiled built

(* ------------------------------------------------------------------ *)
(* Injected allocation failure -> Resource_exhausted *)

let test_alloc_fault_contained () =
  Observe.Counters.reset ();
  let built = Gc_workloads.Mlp.build_f32 ~batch:4 ~hidden:[ 8; 8 ] () in
  let compiled = compile built.graph in
  check_serviceable ~msg:"warm-up execute" compiled built;
  with_faults "alloc:1" (fun () ->
      (match Buffer.create Dtype.F32 64 with
      | _ -> Alcotest.fail "injected alloc did not fire"
      | exception
          Errors.Error (Errors.Resource_exhausted { resource; ctx; _ }) ->
          Alcotest.(check string) "resource" "buffer" resource;
          Alcotest.(check (option string))
            "marked injected" (Some "true")
            (List.assoc_opt "injected" ctx));
      match execute_checked compiled built.data with
      | Error (Errors.Resource_exhausted _) -> ()
      | Ok _ -> Alcotest.fail "execute succeeded under alloc:1"
      | Error e -> Alcotest.fail ("wrong class: " ^ Errors.to_string e));
  let snap = Observe.Counters.snapshot () in
  Alcotest.(check bool) "counted" true (snap.resource_exhausted >= 1);
  check_serviceable compiled built

(* ------------------------------------------------------------------ *)
(* Injected worker exception -> contained, wrapped, pool survives *)

let test_worker_fault_contained () =
  Observe.Counters.reset ();
  let pool = Parallel.create 4 in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      with_faults "worker:1" (fun () ->
          match
            Parallel.run pool (Array.init 16 (fun _ () -> ()))
          with
          | () -> Alcotest.fail "injected worker fault did not fire"
          | exception
              Errors.Error
                (Errors.Runtime_fault { site; task; backtrace; _ }) ->
              Alcotest.(check string) "site" "parallel" site;
              Alcotest.(check bool) "task index" true (task <> None);
              Alcotest.(check bool) "backtrace" true (backtrace <> None));
      Alcotest.(check bool) "fault recorded" true
        (Parallel.faults_survived pool >= 1);
      (* pool survives: a clean run still covers every task *)
      let hits = Array.init 16 (fun _ -> Atomic.make 0) in
      Parallel.run pool
        (Array.init 16 (fun i () -> Atomic.incr hits.(i)));
      Alcotest.(check bool) "pool usable" true
        (Array.for_all (fun a -> Atomic.get a = 1) hits));
  let snap = Observe.Counters.snapshot () in
  Alcotest.(check bool) "worker fault counted" true (snap.worker_faults >= 1);
  Alcotest.(check bool) "wrapped fault counted" true
    (snap.runtime_faults >= 1)

(* Through the full stack: engine fault -> retry -> reference fallback *)
let test_worker_fault_falls_back_to_interp () =
  Observe.Counters.reset ();
  let pool = Parallel.create 4 in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      let config = { (default_config ()) with pool = Some pool } in
      let built = Gc_workloads.Mlp.build_f32 ~batch:16 ~hidden:[ 16; 16 ] () in
      let compiled = compile ~config built.graph in
      check_serviceable ~msg:"warm-up execute" compiled built;
      let ref_out = reference built.graph built.data in
      with_faults "worker:1" (fun () ->
          match execute_checked ~options:(opts ()) compiled built.data with
          | Ok out ->
              Alcotest.(check bool) "fallback output matches reference" true
                (List.for_all2 Tensor.equal out ref_out)
          | Error e ->
              Alcotest.fail ("expected fallback, got " ^ Errors.to_string e));
      let snap = Observe.Counters.snapshot () in
      Alcotest.(check bool) "retried" true (snap.exec_retries >= 1);
      Alcotest.(check bool) "fell back" true (snap.fallback_interp >= 1);
      check_serviceable compiled built)

(* ------------------------------------------------------------------ *)
(* Kernel NaN poisoning: silent without the sanitizer, detected and
   recovered with it *)

let test_kernel_nan_sanitized_and_recovered () =
  Observe.Counters.reset ();
  let built =
    Gc_workloads.Mlp.build_single_matmul ~dtype:`F32 ~m:8 ~n:8 ~k:8 ()
  in
  let compiled = compile built.graph in
  check_serviceable ~msg:"warm-up execute" compiled built;
  let ref_out = reference built.graph built.data in
  with_faults "kernel_nan:1" (fun () ->
      (* without the sanitizer the poisoned output is silent *)
      (match
         execute_checked ~options:(opts ~sanitize:false ()) compiled
           built.data
       with
      | Ok [ out ] ->
          Alcotest.(check bool) "NaN present, undetected" true
            (Array.exists Float.is_nan (Tensor.to_float_array out))
      | Ok _ -> Alcotest.fail "expected one output"
      | Error e -> Alcotest.fail ("unexpected " ^ Errors.to_string e));
      (* with the sanitizer: detect, retry, degrade to the interpreter *)
      match
        execute_checked ~options:(opts ~sanitize:true ()) compiled built.data
      with
      | Ok out ->
          Alcotest.(check bool) "recovered output matches reference" true
            (List.for_all2 Tensor.equal out ref_out)
      | Error e -> Alcotest.fail ("expected recovery, got " ^ Errors.to_string e));
  let snap = Observe.Counters.snapshot () in
  Alcotest.(check bool) "sanitizer hits" true (snap.sanitizer_hits >= 1);
  Alcotest.(check bool) "fell back" true (snap.fallback_interp >= 1);
  check_serviceable compiled built

(* ------------------------------------------------------------------ *)
(* Watchdog: injected slow task -> Timeout, never a hang; pool recovers *)

let test_timeout_pool_recovers () =
  Observe.Counters.reset ();
  let pool = Parallel.create 4 in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      with_faults ~slow_ms:250 "slow:1" (fun () ->
          match
            Guard.with_deadline ~timeout_ms:50 ~site:"test" (fun () ->
                Parallel.run pool (Array.init 8 (fun _ () -> ())))
          with
          | () -> Alcotest.fail "deadline did not trip"
          | exception Errors.Error (Errors.Timeout { timeout_ms; _ }) ->
              Alcotest.(check int) "deadline" 50 timeout_ms);
      Alcotest.(check bool) "raised promptly, no hang" true
        (Unix.gettimeofday () -. t0 < 5.0);
      (* serviceable immediately (inline while poisoned), recovered soon *)
      let cell = ref false in
      Parallel.run pool [| (fun () -> cell := true) |];
      Alcotest.(check bool) "serviceable" true !cell;
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Parallel.is_poisoned pool && Unix.gettimeofday () < deadline do
        Thread.yield ()
      done;
      Alcotest.(check bool) "recovered" false (Parallel.is_poisoned pool));
  let snap = Observe.Counters.snapshot () in
  Alcotest.(check bool) "timeout counted" true (snap.timeouts >= 1)

let test_timeout_through_execute_checked () =
  let pool = Parallel.create 4 in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      let config = { (default_config ()) with pool = Some pool } in
      let built = Gc_workloads.Mlp.build_f32 ~batch:64 ~hidden:[ 32; 32 ] () in
      let compiled = compile ~config built.graph in
      check_serviceable ~msg:"warm-up execute" compiled built;
      with_faults ~slow_ms:200 "slow:1" (fun () ->
          match
            execute_checked
              ~options:(opts ~timeout_ms:40 ())
              compiled built.data
          with
          | Error (Errors.Timeout _) -> ()
          | Ok _ -> Alcotest.fail "expected Timeout"
          | Error e -> Alcotest.fail ("wrong class: " ^ Errors.to_string e));
      (* drain, then prove clean steady state *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Parallel.is_poisoned pool && Unix.gettimeofday () < deadline do
        Thread.yield ()
      done;
      check_serviceable compiled built)

(* ------------------------------------------------------------------ *)
(* invalidate_constants racing concurrent executes (regression) *)

let test_invalidate_race_with_concurrent_execute () =
  let built = Gc_workloads.Mlp.build_f32 ~batch:8 ~hidden:[ 16; 16 ] () in
  let compiled = compile built.graph in
  ignore (execute compiled built.data);
  let stop = Atomic.make false in
  let churners =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              ignore (execute compiled built.data)
            done))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      List.iter Domain.join churners)
    (fun () ->
      let _w_lt, w =
        List.find
          (fun ((lt : Logical_tensor.t), _) ->
            match lt.property with Variable -> false | _ -> true)
          built.data
      in
      let wb = Tensor.buffer w in
      for iter = 1 to 25 do
        (* swap the weights in place, invalidate, and require the very
           next execute to see them — under concurrent executes, the old
           boolean init flag could republish stale constants here *)
        Buffer.fill_range wb 0 (Buffer.length wb)
          (0.01 *. float_of_int iter);
        invalidate_constants compiled;
        let out = execute compiled built.data in
        let ref_out = reference built.graph built.data in
        if not (List.for_all2 Tensor.equal out ref_out) then
          Alcotest.fail
            (Printf.sprintf "stale constants after invalidate (iter %d)" iter)
      done)

(* ------------------------------------------------------------------ *)
(* NaN/Inf propagation: engine and interpreter agree (f32 and int8) *)

let prop_nan_inf_engine_matches_reference =
  QCheck.Test.make ~count:20
    ~name:"NaN/Inf propagate identically (engine vs reference)"
    (QCheck.make
       QCheck.Gen.(
         quad (int_range 1 5) (int_range 1 5) (int_range 1 5)
           (pair (list_size (int_range 1 4) (int_range 0 1000)) bool)))
    (fun (m, n, k, (positions, use_inf)) ->
      let built =
        Gc_workloads.Mlp.build_single_matmul ~relu:true ~dtype:`F32 ~m ~n ~k
          ()
      in
      let x =
        snd
          (List.find
             (fun ((lt : Logical_tensor.t), _) ->
               match lt.property with Variable -> true | _ -> false)
             built.data)
      in
      let xb = Tensor.buffer x in
      let poison = if use_inf then Float.infinity else Float.nan in
      List.iter
        (fun p -> Buffer.set xb (p mod Buffer.length xb) poison)
        positions;
      let compiled = compile_cached built.graph in
      let out = execute compiled built.data in
      let ref_out = reference built.graph built.data in
      List.for_all2 nan_aware_equal out ref_out)

let prop_int8_extremes_engine_matches_reference =
  QCheck.Test.make ~count:15
    ~name:"s8/u8 saturation identical (engine vs reference)"
    (QCheck.make
       QCheck.Gen.(
         pair (list_size (int_range 1 6) (int_range 0 1000)) bool))
    (fun (positions, high) ->
      let built = Gc_workloads.Mlp.build_int8 ~batch:4 ~hidden:[ 8; 8 ] () in
      let x =
        snd
          (List.find
             (fun ((lt : Logical_tensor.t), _) ->
               match lt.property with Variable -> true | _ -> false)
             built.data)
      in
      let xb = Tensor.buffer x in
      let extreme = if high then 255 else 0 in
      List.iter
        (fun p -> Buffer.set_int xb (p mod Buffer.length xb) extreme)
        positions;
      let compiled = compile_cached built.graph in
      let out = execute compiled built.data in
      let ref_out = reference built.graph built.data in
      (* the hybrid scheme is integer-exact through the s8/u8 stages; the
         final dequantize multiplies in different orders, so the f32
         output agrees to rounding (same tolerance as the integration
         suite) — and the finiteness classification must agree exactly *)
      List.for_all2
        (fun o r ->
          Tensor.allclose ~rtol:1e-4 ~atol:1e-3 o r
          && Array.for_all2
               (fun a b -> Float.is_finite a = Float.is_finite b)
               (Tensor.to_float_array o) (Tensor.to_float_array r))
        out ref_out)

(* ------------------------------------------------------------------ *)
(* Chaos soak: under a mixed fault schedule (the environment's GC_FAULTS
   when the CI chaos job sets it, a default mix otherwise), every execute
   either succeeds or fails with exactly one typed error — and once the
   faults clear, the partition still matches the reference. *)

let test_chaos_soak () =
  let built = Gc_workloads.Mlp.build_f32 ~batch:8 ~hidden:[ 16; 16 ] () in
  let compiled = compile built.graph in
  check_serviceable ~msg:"pre-chaos execute" compiled built;
  if not (Fault.enabled ()) then
    Fault.configure "worker:3,kernel_nan:5,alloc:7";
  Fun.protect ~finally:Fault.clear (fun () ->
      for _ = 1 to 30 do
        match
          execute_checked
            ~options:(opts ~timeout_ms:2000 ~sanitize:true ())
            compiled built.data
        with
        | Ok _ -> ()
        | Error
            ( Errors.Invalid_input _ | Errors.Compile_error _
            | Errors.Runtime_fault _ | Errors.Resource_exhausted _
            | Errors.Timeout _ | Errors.Overloaded _ ) ->
            ()
      done);
  check_serviceable ~msg:"post-chaos execute" compiled built

(* Whole-model chaos: the Conv2d, BERT and DLRM graphs under an armed
   fault schedule (the environment's GC_FAULTS when the CI chaos job sets
   it, the default mix otherwise). Every execute either succeeds with
   finite, reference-close outputs — including when it was served by the
   interpreter fallback — or fails with exactly one typed error. *)
let model_chaos ~what ~rtol ~atol (graph : Gc_graph_ir.Graph.t) data =
  Observe.Counters.reset ();
  let compiled = compile graph in
  let ref_out = reference graph data in
  let close out =
    List.for_all2
      (fun o r ->
        Tensor.allclose ~rtol ~atol o r
        && Array.for_all Float.is_finite (Tensor.to_float_array o))
      out ref_out
  in
  Alcotest.(check bool) (what ^ ": pre-chaos execute") true
    (close (execute compiled data));
  if not (Fault.enabled ()) then
    Fault.configure "worker:3,kernel_nan:5,alloc:7";
  Fun.protect ~finally:Fault.clear (fun () ->
      for _ = 1 to 10 do
        match
          execute_checked
            ~options:(opts ~timeout_ms:5000 ~sanitize:true ())
            compiled data
        with
        | Ok out ->
            Alcotest.(check bool)
              (what ^ ": chaos output finite and reference-close")
              true (close out)
        | Error
            ( Errors.Invalid_input _ | Errors.Compile_error _
            | Errors.Runtime_fault _ | Errors.Resource_exhausted _
            | Errors.Timeout _ | Errors.Overloaded _ ) ->
            ()
      done);
  Alcotest.(check bool) (what ^ ": post-chaos execute") true
    (close (execute compiled data))

let test_chaos_conv () =
  let built =
    Gc_workloads.Conv.build_f32 ~batch:1 ~height:6 ~width:6 ~channels:4 ~kh:3
      ~kw:3 ~out_channels:6 ~strides:(1, 1) ~pads:(1, 1, 1, 1)
      ~dilations:(1, 1) ()
  in
  model_chaos ~what:"conv" ~rtol:1e-5 ~atol:1e-5 built.graph built.data

let test_chaos_bert () =
  let built =
    Gc_workloads.Bert.build_f32 ~layers:1 ~batch:1 ~seq:8 ~hidden:16 ~heads:2
      ()
  in
  model_chaos ~what:"bert" ~rtol:1e-4 ~atol:1e-4 built.graph built.data

let test_chaos_dlrm () =
  let built =
    Gc_workloads.Dlrm.build_f32 ~batch:4 ~dense_dim:4 ~bottom:[ 8; 8 ]
      ~tables:2 ~vocab:20 ~emb_dim:8 ~top:[ 8; 1 ] ()
  in
  model_chaos ~what:"dlrm" ~rtol:1e-4 ~atol:1e-4 built.graph built.data

let test_seed_honored () =
  (match Sys.getenv_opt "GC_FAULT_SEED" with
  | Some s ->
      Fault.configure "worker:13";
      Alcotest.(check int) "seed from environment"
        (int_of_string (String.trim s))
        (Fault.seed ());
      Fault.clear ()
  | None -> ());
  Alcotest.(check pass) "ok" () ()

let () =
  Alcotest.run "resilience"
    [
      ( "faultinject",
        [
          Alcotest.test_case "deterministic schedule" `Quick
            test_fault_schedule_deterministic;
          Alcotest.test_case "inert when unarmed" `Quick
            test_inert_when_unarmed;
          Alcotest.test_case "seed honored" `Quick test_seed_honored;
        ] );
      ( "taxonomy",
        [
          Alcotest.test_case "validation rejected and counted" `Quick
            test_validation_rejected_and_counted;
          Alcotest.test_case "alloc fault contained" `Quick
            test_alloc_fault_contained;
        ] );
      ( "containment",
        [
          Alcotest.test_case "worker fault contained" `Quick
            test_worker_fault_contained;
          Alcotest.test_case "fallback to interpreter" `Quick
            test_worker_fault_falls_back_to_interp;
          Alcotest.test_case "kernel NaN sanitized" `Quick
            test_kernel_nan_sanitized_and_recovered;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "pool timeout and recovery" `Quick
            test_timeout_pool_recovers;
          Alcotest.test_case "execute_checked timeout" `Quick
            test_timeout_through_execute_checked;
        ] );
      ( "races",
        [
          Alcotest.test_case "invalidate vs concurrent execute" `Quick
            test_invalidate_race_with_concurrent_execute;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_nan_inf_engine_matches_reference;
          QCheck_alcotest.to_alcotest
            prop_int8_extremes_engine_matches_reference;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "soak" `Quick test_chaos_soak;
          Alcotest.test_case "conv model" `Quick test_chaos_conv;
          Alcotest.test_case "bert model" `Quick test_chaos_bert;
          Alcotest.test_case "dlrm model" `Quick test_chaos_dlrm;
        ] );
    ]
