(* Tests for the steady-state serving fast path: precompiled binding
   plans, pooled outputs, idempotent/mutex-guarded constant init,
   per-domain engine arenas (allocation regression) and the keyed
   compilation cache. *)

open Gc_workloads

let seq_pool = Gc_runtime.Parallel.create 1

let serving_config ?(fastpath = true) () =
  { (Core.default_config ()) with Core.pool = Some seq_pool; fastpath }

let compile ?fastpath g = Core.compile ~config:(serving_config ?fastpath ()) g

let check_matches_reference ~what ~graph ~data outputs =
  let expect = Core.reference graph data in
  Alcotest.(check int) (what ^ ": output count") (List.length expect)
    (List.length outputs);
  List.iteri
    (fun i (got, e) ->
      if not (Core.Tensor.allclose ~rtol:2e-3 ~atol:2e-3 got e) then
        Alcotest.failf "%s: output %d diverges (max abs diff %g)" what i
          (Core.Tensor.max_abs_diff got e))
    (List.combine outputs expect)

(* ------------------------------------------------------------------ *)
(* Binding plan + output pooling *)

let test_execute_matches_reference_both_paths () =
  let b = Mlp.build_f32 ~seed:11 ~batch:5 ~hidden:[ 7; 9; 4 ] () in
  List.iter
    (fun fastpath ->
      let t = compile ~fastpath b.Mlp.graph in
      (* twice: the second run exercises arena/env reuse *)
      ignore (Core.execute t b.Mlp.data);
      check_matches_reference
        ~what:(Printf.sprintf "mlp fastpath:%b" fastpath)
        ~graph:b.Mlp.graph ~data:b.Mlp.data
        (Core.execute t b.Mlp.data))
    [ true; false ]

let test_reuse_outputs_pools_tensors () =
  let b = Mlp.build_f32 ~seed:3 ~batch:3 ~hidden:[ 5; 6 ] () in
  let t = compile b.Mlp.graph in
  let r1 = Core.execute ~reuse_outputs:true t b.Mlp.data in
  let r2 = Core.execute ~reuse_outputs:true t b.Mlp.data in
  Alcotest.(check bool) "same pooled tensors" true (List.for_all2 ( == ) r1 r2);
  check_matches_reference ~what:"pooled outputs" ~graph:b.Mlp.graph
    ~data:b.Mlp.data r2;
  (* default path returns fresh tensors *)
  let r3 = Core.execute t b.Mlp.data in
  Alcotest.(check bool) "fresh without opt-in" false
    (List.exists2 ( == ) r2 r3);
  check_matches_reference ~what:"fresh outputs" ~graph:b.Mlp.graph
    ~data:b.Mlp.data r3

let test_invalidate_discards_output_pool () =
  let b = Mlp.build_f32 ~seed:5 ~batch:2 ~hidden:[ 4; 3 ] () in
  let t = compile b.Mlp.graph in
  let r1 = Core.execute ~reuse_outputs:true t b.Mlp.data in
  Core.invalidate_constants t;
  let r2 = Core.execute ~reuse_outputs:true t b.Mlp.data in
  Alcotest.(check bool) "pool discarded" false (List.exists2 ( == ) r1 r2);
  check_matches_reference ~what:"after invalidate" ~graph:b.Mlp.graph
    ~data:b.Mlp.data r2

(* ------------------------------------------------------------------ *)
(* Weights swap: invalidate_constants must reset engine-side constant
   state (repopulated globals), not just the flag *)

let perturb data =
  List.map
    (fun (lt, t) ->
      let t' = Core.Tensor.copy t in
      Core.Tensor.iter t (fun idx v ->
          Core.Tensor.set t' idx ((v *. 1.25) +. 0.125));
      (lt, t'))
    data

let test_weights_swap_regression () =
  let b = Mlp.build_f32 ~seed:7 ~batch:4 ~hidden:[ 6; 8; 5 ] () in
  let t = compile b.Mlp.graph in
  check_matches_reference ~what:"weights v1" ~graph:b.Mlp.graph ~data:b.Mlp.data
    (Core.execute t b.Mlp.data);
  let data2 = perturb b.Mlp.data in
  Core.invalidate_constants t;
  check_matches_reference ~what:"weights v2 after invalidate"
    ~graph:b.Mlp.graph ~data:data2
    (Core.execute t data2)

(* ------------------------------------------------------------------ *)
(* Concurrent executes: N domains hammering one compiled partition.
   The very first executes race on the constant init (satellite: the
   init_done check-then-set), so no warmup run here on purpose. *)

let test_concurrent_execute_stress () =
  let b = Mha.build_f32 ~seed:2 ~batch:1 ~seq:6 ~hidden:16 ~heads:2 () in
  let t = compile b.Mha.graph in
  let expect = Core.reference b.Mha.graph b.Mha.data in
  let client () =
    let worst = ref 0. in
    for _ = 1 to 20 do
      let outs = Core.execute ~reuse_outputs:true t b.Mha.data in
      List.iter2
        (fun got e -> worst := Float.max !worst (Core.Tensor.max_abs_diff got e))
        outs expect
    done;
    !worst
  in
  let domains = List.init 4 (fun _ -> Domain.spawn client) in
  let diffs = List.map Domain.join domains in
  List.iteri
    (fun i d ->
      if d > 5e-4 then
        Alcotest.failf "client %d diverged under concurrency (max diff %g)" i d)
    diffs

(* ------------------------------------------------------------------ *)
(* Allocation regression: steady-state execute must allocate (near-)
   nothing on the minor heap after warmup. The slow path allocates
   thousands of words per call on this workload; the bound leaves only
   headroom for counters/bookkeeping noise. *)

let test_allocation_regression () =
  let b = Mlp.build_f32 ~seed:13 ~batch:8 ~hidden:[ 13; 32; 16 ] () in
  let t = compile b.Mlp.graph in
  for _ = 1 to 10 do
    ignore (Core.execute ~reuse_outputs:true t b.Mlp.data)
  done;
  let iters = 100 in
  let m0 = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (Core.execute ~reuse_outputs:true t b.Mlp.data)
  done;
  let per_iter = (Gc.minor_words () -. m0) /. float_of_int iters in
  if per_iter > 500. then
    Alcotest.failf "steady-state execute allocates %.0f minor words/iter" per_iter

let test_arena_counters_fire () =
  let b = Mlp.build_f32 ~seed:17 ~batch:4 ~hidden:[ 5; 7 ] () in
  let t = compile b.Mlp.graph in
  ignore (Core.execute t b.Mlp.data);
  let (), s =
    Core.Observe.Counters.with_counters (fun () ->
        ignore (Core.execute t b.Mlp.data))
  in
  Alcotest.(check bool) "arena hits" true
    (s.Core.Observe.Counters.arena_hits > 0);
  Alcotest.(check bool) "arena bytes saved" true (s.arena_bytes_saved > 0);
  Alcotest.(check int) "no buffer allocation" 0 s.bytes_allocated

(* ------------------------------------------------------------------ *)
(* Compilation cache *)

let test_fingerprint_structural () =
  let g1 = (Mlp.build_f32 ~seed:1 ~batch:4 ~hidden:[ 6; 8 ] ()).Mlp.graph in
  let g2 = (Mlp.build_f32 ~seed:1 ~batch:4 ~hidden:[ 6; 8 ] ()).Mlp.graph in
  Alcotest.(check string) "independently built graphs fingerprint equal"
    (Core.fingerprint g1) (Core.fingerprint g2);
  let g3 = (Mlp.build_f32 ~seed:1 ~batch:4 ~hidden:[ 6; 9 ] ()).Mlp.graph in
  Alcotest.(check bool) "shape change fingerprints differ" false
    (Core.fingerprint g1 = Core.fingerprint g3);
  let g4 = (Mlp.build_f32 ~seed:1 ~batch:8 ~hidden:[ 6; 8 ] ()).Mlp.graph in
  Alcotest.(check bool) "batch change fingerprints differ" false
    (Core.fingerprint g1 = Core.fingerprint g4);
  Alcotest.(check bool) "config change fingerprints differ" false
    (Core.fingerprint ~config:(serving_config ()) g1
    = Core.fingerprint ~config:(serving_config ~fastpath:false ()) g1)

let test_compile_cache_hit () =
  Core.Compile_cache.clear ();
  let b1 = Mlp.build_f32 ~seed:21 ~batch:3 ~hidden:[ 5; 9; 4 ] () in
  let b2 = Mlp.build_f32 ~seed:21 ~batch:3 ~hidden:[ 5; 9; 4 ] () in
  let config = serving_config () in
  let t1 = Core.compile_cached ~config b1.Mlp.graph in
  let t2 = Core.compile_cached ~config b2.Mlp.graph in
  let s = Core.Compile_cache.stats () in
  Alcotest.(check int) "misses" 1 s.Core.Compile_cache.misses;
  Alcotest.(check int) "hits" 1 s.hits;
  Alcotest.(check int) "entries" 1 s.entries;
  Alcotest.(check bool) "shared compiled module" true
    (Core.tir_module t1 == Core.tir_module t2);
  (* the hit is re-keyed to b2's logical tensors: executing with b2's
     bindings must work and be correct *)
  check_matches_reference ~what:"cache hit rekeyed" ~graph:b2.Mlp.graph
    ~data:b2.Mlp.data
    (Core.execute t2 b2.Mlp.data);
  (* different shape misses *)
  let b3 = Mlp.build_f32 ~seed:21 ~batch:3 ~hidden:[ 5; 9; 6 ] () in
  let t3 = Core.compile_cached ~config b3.Mlp.graph in
  Alcotest.(check bool) "different shape compiles fresh" false
    (Core.tir_module t1 == Core.tir_module t3);
  Alcotest.(check int) "second miss" 2 (Core.Compile_cache.stats ()).misses;
  Core.Compile_cache.clear ();
  Alcotest.(check int) "cleared" 0 (Core.Compile_cache.stats ()).entries

let test_compile_cache_concurrent () =
  Core.Compile_cache.clear ();
  let config = serving_config () in
  let compile_one () =
    let b = Mlp.build_f32 ~seed:33 ~batch:2 ~hidden:[ 4; 6 ] () in
    let t = Core.compile_cached ~config b.Mlp.graph in
    let outs = Core.execute t b.Mlp.data in
    let expect = Core.reference b.Mlp.graph b.Mlp.data in
    let ok =
      List.for_all2 (Core.Tensor.allclose ~rtol:2e-3 ~atol:2e-3) outs expect
    in
    (Core.tir_module t, ok)
  in
  let domains = List.init 4 (fun _ -> Domain.spawn compile_one) in
  let results = List.map Domain.join domains in
  let m0 = fst (List.hd results) in
  List.iteri
    (fun i (m, ok) ->
      Alcotest.(check bool) (Printf.sprintf "client %d correct" i) true ok;
      Alcotest.(check bool)
        (Printf.sprintf "client %d shares the winner" i)
        true (m == m0))
    results;
  Alcotest.(check int) "single entry" 1 (Core.Compile_cache.stats ()).entries

let () =
  Alcotest.run "serving"
    [
      ( "binding-plan",
        [
          Alcotest.test_case "matches reference (both paths)" `Quick
            test_execute_matches_reference_both_paths;
          Alcotest.test_case "reuse_outputs pools tensors" `Quick
            test_reuse_outputs_pools_tensors;
          Alcotest.test_case "invalidate discards pool" `Quick
            test_invalidate_discards_output_pool;
          Alcotest.test_case "weights swap regression" `Quick
            test_weights_swap_regression;
        ] );
      ( "steady-state",
        [
          Alcotest.test_case "concurrent execute stress" `Quick
            test_concurrent_execute_stress;
          Alcotest.test_case "allocation regression" `Quick
            test_allocation_regression;
          Alcotest.test_case "arena counters" `Quick test_arena_counters_fire;
        ] );
      ( "compile-cache",
        [
          Alcotest.test_case "structural fingerprint" `Quick
            test_fingerprint_structural;
          Alcotest.test_case "hit shares + rekeys" `Quick test_compile_cache_hit;
          Alcotest.test_case "concurrent compile_cached" `Quick
            test_compile_cache_concurrent;
        ] );
    ]
