(* Tests for the machine model, brgemm microkernels and the microkernel
   cost model. *)

open Gc_tensor
open Gc_microkernel

let sh = Shape.of_list

(* Reference: C[mb,nb] += sum_b A_b[mb,kb] . B_b[nb,kb]^T, all plain arrays. *)
let brgemm_ref ~batch ~mb ~nb ~kb a b c =
  for bi = 0 to batch - 1 do
    for m = 0 to mb - 1 do
      for n = 0 to nb - 1 do
        let acc = ref 0. in
        for k = 0 to kb - 1 do
          acc := !acc +. (a.((bi * mb * kb) + (m * kb) + k) *. b.((bi * nb * kb) + (n * kb) + k))
        done;
        c.((m * nb) + n) <- c.((m * nb) + n) +. !acc
      done
    done
  done

let test_brgemm_f32_matches_ref () =
  List.iter
    (fun (batch, mb, nb, kb) ->
      let na = batch * mb * kb and nbuf = batch * nb * kb in
      let a = Buffer.create Dtype.F32 na in
      let b = Buffer.create Dtype.F32 nbuf in
      let c = Buffer.create Dtype.F32 (mb * nb) in
      let aref = Array.init na (fun i -> sin (float_of_int i)) in
      let bref = Array.init nbuf (fun i -> cos (float_of_int (2 * i))) in
      let cref = Array.make (mb * nb) 0.5 in
      Array.iteri (fun i v -> Buffer.set a i v) aref;
      Array.iteri (fun i v -> Buffer.set b i v) bref;
      Array.iteri (fun i v -> Buffer.set c i v) cref;
      (* snap reference inputs to f32 precision to compare exactly *)
      let aref = Array.init na (fun i -> Buffer.get a i) in
      let bref = Array.init nbuf (fun i -> Buffer.get b i) in
      let cref = Array.init (mb * nb) (fun i -> Buffer.get c i) in
      let a_offs = Array.init batch (fun i -> i * mb * kb) in
      let b_offs = Array.init batch (fun i -> i * nb * kb) in
      Brgemm.f32 ~batch ~mb ~nb ~kb ~a:(Buffer.as_f32 a) ~a_offs
        ~b:(Buffer.as_f32 b) ~b_offs ~c:(Buffer.as_f32 c) ~c_off:0;
      brgemm_ref ~batch ~mb ~nb ~kb aref bref cref;
      for i = 0 to (mb * nb) - 1 do
        let got = Buffer.get c i in
        if Float.abs (got -. cref.(i)) > 1e-3 *. (1. +. Float.abs cref.(i)) then
          Alcotest.failf "brgemm(%d,%d,%d,%d) c[%d]: %f vs %f" batch mb nb kb i
            got cref.(i)
      done)
    [ (1, 1, 1, 1); (1, 4, 4, 4); (2, 3, 5, 7); (4, 8, 16, 13); (3, 6, 6, 1) ]

let test_brgemm_int8_exact () =
  let batch = 2 and mb = 4 and nb = 5 and kb = 9 in
  let a = Buffer.create Dtype.U8 (batch * mb * kb) in
  let b = Buffer.create Dtype.S8 (batch * nb * kb) in
  let c = Buffer.create Dtype.S32 (mb * nb) in
  for i = 0 to Buffer.length a - 1 do
    Buffer.set_int a i ((i * 37) mod 256)
  done;
  for i = 0 to Buffer.length b - 1 do
    Buffer.set_int b i (((i * 23) mod 255) - 128)
  done;
  let a_offs = Array.init batch (fun i -> i * mb * kb) in
  let b_offs = Array.init batch (fun i -> i * nb * kb) in
  Brgemm.u8s8s32 ~batch ~mb ~nb ~kb ~a:(Buffer.as_u8 a) ~a_offs
    ~b:(Buffer.as_s8 b) ~b_offs ~c:(Buffer.as_s32 c) ~c_off:0;
  (* exact integer reference *)
  for m = 0 to mb - 1 do
    for n = 0 to nb - 1 do
      let acc = ref 0 in
      for bi = 0 to batch - 1 do
        for k = 0 to kb - 1 do
          acc :=
            !acc
            + (Buffer.get_int a (a_offs.(bi) + (m * kb) + k)
              * Buffer.get_int b (b_offs.(bi) + (n * kb) + k))
        done
      done;
      Alcotest.(check int)
        (Printf.sprintf "c[%d,%d]" m n)
        !acc
        (Buffer.get_int c ((m * nb) + n))
    done
  done

let test_brgemm_accumulates () =
  (* calling twice doubles the result *)
  let mb = 3 and nb = 3 and kb = 4 in
  let a = Buffer.create Dtype.F32 (mb * kb) in
  let b = Buffer.create Dtype.F32 (nb * kb) in
  let c = Buffer.create Dtype.F32 (mb * nb) in
  for i = 0 to Buffer.length a - 1 do Buffer.set a i 1. done;
  for i = 0 to Buffer.length b - 1 do Buffer.set b i 2. done;
  let run () =
    Brgemm.f32 ~batch:1 ~mb ~nb ~kb ~a:(Buffer.as_f32 a) ~a_offs:[| 0 |]
      ~b:(Buffer.as_f32 b) ~b_offs:[| 0 |] ~c:(Buffer.as_f32 c) ~c_off:0
  in
  run ();
  Alcotest.(check (float 0.)) "once" 8. (Buffer.get c 0);
  run ();
  Alcotest.(check (float 0.)) "twice" 16. (Buffer.get c 0)

let test_brgemm_c_offset () =
  let mb = 2 and nb = 2 and kb = 2 in
  let a = Buffer.create Dtype.F32 (mb * kb) in
  let b = Buffer.create Dtype.F32 (nb * kb) in
  let c = Buffer.create Dtype.F32 (16 + (mb * nb)) in
  Buffer.fill a 1.;
  Buffer.fill b 1.;
  Brgemm.f32 ~batch:1 ~mb ~nb ~kb ~a:(Buffer.as_f32 a) ~a_offs:[| 0 |]
    ~b:(Buffer.as_f32 b) ~b_offs:[| 0 |] ~c:(Buffer.as_f32 c) ~c_off:16;
  Alcotest.(check (float 0.)) "before untouched" 0. (Buffer.get c 15);
  Alcotest.(check (float 0.)) "written" 2. (Buffer.get c 16)

let test_brgemm_dispatch_rejects () =
  let a = Buffer.create Dtype.S32 4 in
  let b = Buffer.create Dtype.S32 4 in
  let c = Buffer.create Dtype.S32 4 in
  Alcotest.(check bool) "raises" true
    (try
       Brgemm.dispatch ~batch:1 ~mb:2 ~nb:2 ~kb:2 ~a ~a_offs:[| 0 |] ~b
         ~b_offs:[| 0 |] ~c ~c_off:0;
       false
     with
     | Gc_errors.Error (Gc_errors.Compile_error { stage = "microkernel"; ctx; _ })
       ->
         List.assoc_opt "a" ctx = Some "s32")

let test_brgemm_matches_ref_matmul () =
  (* one batch-reduce over blocked slices equals a plain matmul *)
  let m = 8 and n = 8 and k = 16 in
  let bs = 4 in
  let kb = k / bs in
  let at = Tensor.random ~seed:31 Dtype.F32 (sh [ m; k ]) in
  let bt = Tensor.random ~seed:32 Dtype.F32 (sh [ k; n ]) in
  (* lay out A as [bs][m][kb] slabs, B as [bs][n][kb] slabs *)
  let a = Buffer.create Dtype.F32 (bs * m * kb) in
  let b = Buffer.create Dtype.F32 (bs * n * kb) in
  for bi = 0 to bs - 1 do
    for i = 0 to m - 1 do
      for kk = 0 to kb - 1 do
        Buffer.set a ((bi * m * kb) + (i * kb) + kk) (Tensor.get at [| i; (bi * kb) + kk |])
      done
    done;
    for j = 0 to n - 1 do
      for kk = 0 to kb - 1 do
        Buffer.set b ((bi * n * kb) + (j * kb) + kk) (Tensor.get bt [| (bi * kb) + kk; j |])
      done
    done
  done;
  let c = Buffer.create Dtype.F32 (m * n) in
  Brgemm.f32 ~batch:bs ~mb:m ~nb:n ~kb ~a:(Buffer.as_f32 a)
    ~a_offs:(Array.init bs (fun i -> i * m * kb))
    ~b:(Buffer.as_f32 b)
    ~b_offs:(Array.init bs (fun i -> i * n * kb))
    ~c:(Buffer.as_f32 c) ~c_off:0;
  let expect = Ref_ops.matmul at bt in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let e = Tensor.get expect [| i; j |] and g = Buffer.get c ((i * n) + j) in
      if Float.abs (e -. g) > 1e-4 then Alcotest.failf "c[%d,%d] %f vs %f" i j g e
    done
  done

(* ------------------------------------------------------------------ *)
(* Bit-exactness of the register-tiled kernels: for any shape — including
   remainder rows/columns that take the scalar edge paths — every output
   element must be BIT-IDENTICAL to a naive single-accumulator
   batch-outer/k-inner reference. The tiled kernel keeps exactly one
   accumulator per output element and performs one write-back, so the
   floating-point reduction order is the same as the reference's; any
   future tiling change that splits an accumulator will fail this. *)

let shape_gen =
  QCheck.Gen.(
    quad (int_range 1 4) (int_range 1 17) (int_range 1 19) (int_range 1 33))

let prop_tiled_f32_bit_exact =
  QCheck.Test.make ~name:"tiled f32 bit-matches naive reference" ~count:100
    (QCheck.make ~print:QCheck.Print.(quad int int int int) shape_gen)
    (fun (batch, mb, nb, kb) ->
      let na = batch * mb * kb and nbuf = batch * nb * kb in
      let a = Buffer.create Dtype.F32 na in
      let b = Buffer.create Dtype.F32 nbuf in
      let c = Buffer.create Dtype.F32 (mb * nb) in
      for i = 0 to na - 1 do Buffer.set a i (sin (float_of_int (i + (7 * mb)))) done;
      for i = 0 to nbuf - 1 do Buffer.set b i (cos (float_of_int ((3 * i) + kb))) done;
      for i = 0 to (mb * nb) - 1 do Buffer.set c i 0.25 done;
      (* reference inputs read back through the buffer → f32-rounded *)
      let aref = Array.init na (Buffer.get a) in
      let bref = Array.init nbuf (Buffer.get b) in
      let cref = Array.init (mb * nb) (Buffer.get c) in
      let a_offs = Array.init batch (fun i -> i * mb * kb) in
      let b_offs = Array.init batch (fun i -> i * nb * kb) in
      Brgemm.f32 ~batch ~mb ~nb ~kb ~a:(Buffer.as_f32 a) ~a_offs
        ~b:(Buffer.as_f32 b) ~b_offs ~c:(Buffer.as_f32 c) ~c_off:0;
      brgemm_ref ~batch ~mb ~nb ~kb aref bref cref;
      (* the reference accumulates in double and rounds once on store; mimic
         the f32 store by pushing through a one-element f32 buffer *)
      let tmp = Buffer.create Dtype.F32 1 in
      try
        for i = 0 to (mb * nb) - 1 do
          Buffer.set tmp 0 cref.(i);
          if not (Int32.equal
                    (Int32.bits_of_float (Buffer.get c i))
                    (Int32.bits_of_float (Buffer.get tmp 0)))
          then raise Exit
        done;
        true
      with Exit -> false)

let int8_ref ~batch ~mb ~nb ~kb a b =
  (* naive integer reference over raw buffer reads (get_int is sign-aware) *)
  Array.init (mb * nb) (fun idx ->
      let m = idx / nb and n = idx mod nb in
      let acc = ref 0 in
      for bi = 0 to batch - 1 do
        for k = 0 to kb - 1 do
          let av = Buffer.get_int a ((bi * mb * kb) + (m * kb) + k) in
          let bv = Buffer.get_int b ((bi * nb * kb) + (n * kb) + k) in
          acc := !acc + (av * bv)
        done
      done;
      !acc)

let prop_tiled_int8_exact ~signed =
  let name =
    if signed then "tiled s8s8s32 matches integer reference"
    else "tiled u8s8s32 matches integer reference"
  in
  QCheck.Test.make ~name ~count:100
    (QCheck.make ~print:QCheck.Print.(quad int int int int) shape_gen)
    (fun (batch, mb, nb, kb) ->
      let adt = if signed then Dtype.S8 else Dtype.U8 in
      let a = Buffer.create adt (batch * mb * kb) in
      let b = Buffer.create Dtype.S8 (batch * nb * kb) in
      let c = Buffer.create Dtype.S32 (mb * nb) in
      for i = 0 to Buffer.length a - 1 do
        Buffer.set_int a i (if signed then ((i * 41) mod 255) - 128 else (i * 37) mod 256)
      done;
      for i = 0 to Buffer.length b - 1 do
        Buffer.set_int b i (((i * 23) mod 255) - 128)
      done;
      for i = 0 to (mb * nb) - 1 do Buffer.set_int c i (i mod 5) done;
      let init = Array.init (mb * nb) (Buffer.get_int c) in
      let a_offs = Array.init batch (fun i -> i * mb * kb) in
      let b_offs = Array.init batch (fun i -> i * nb * kb) in
      (if signed then
         Brgemm.s8s8s32 ~batch ~mb ~nb ~kb ~a:(Buffer.as_s8 a) ~a_offs
           ~b:(Buffer.as_s8 b) ~b_offs ~c:(Buffer.as_s32 c) ~c_off:0
       else
         Brgemm.u8s8s32 ~batch ~mb ~nb ~kb ~a:(Buffer.as_u8 a) ~a_offs
           ~b:(Buffer.as_s8 b) ~b_offs ~c:(Buffer.as_s32 c) ~c_off:0);
      let expect = int8_ref ~batch ~mb ~nb ~kb a b in
      Array.for_all
        (fun i -> Buffer.get_int c i = init.(i) + expect.(i))
        (Array.init (mb * nb) (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* Machine model *)

let test_machine_rates () =
  let m = Machine.xeon_8358 in
  Alcotest.(check int) "f32 lanes" 16 (Machine.lanes m Dtype.F32);
  Alcotest.(check int) "s8 lanes" 64 (Machine.lanes m Dtype.S8);
  Alcotest.(check (float 0.)) "f32 macs" 32. (Machine.macs_per_cycle m Dtype.F32);
  Alcotest.(check (float 0.)) "int8 is 4x" (4. *. 32.) (Machine.macs_per_cycle m Dtype.S8)

(* ------------------------------------------------------------------ *)
(* Cost model *)

let test_cost_valid_register_file () =
  let machine = Machine.xeon_8358 in
  (* 32x64 f32 accumulator = 32*4 = 128 tiles: too many registers *)
  Alcotest.(check bool) "too big" false
    (Ukernel_cost.valid ~machine ~dtype:Dtype.F32 ~mb:32 ~nb:64 ~kb:16 ~bs:1);
  Alcotest.(check bool) "classic 6x64" true
    (Ukernel_cost.valid ~machine ~dtype:Dtype.F32 ~mb:6 ~nb:64 ~kb:16 ~bs:1)

let test_cost_l1_constraint () =
  let machine = Machine.xeon_8358 in
  (* huge kb*bs spills L1 *)
  Alcotest.(check bool) "l1 spill invalid" false
    (Ukernel_cost.valid ~machine ~dtype:Dtype.F32 ~mb:6 ~nb:64 ~kb:512 ~bs:8)

let test_cost_monotone_in_k () =
  let machine = Machine.xeon_8358 in
  (* longer k extent amortizes overhead: efficiency goes up *)
  let e1 = (Ukernel_cost.cost ~machine ~dtype:Dtype.F32 ~mb:6 ~nb:64 ~kb:4 ~bs:1).efficiency in
  let e2 = (Ukernel_cost.cost ~machine ~dtype:Dtype.F32 ~mb:6 ~nb:64 ~kb:64 ~bs:1).efficiency in
  Alcotest.(check bool) "k amortization" true (e2 > e1)

let test_cost_lane_utilization () =
  let machine = Machine.xeon_8358 in
  (* nb=17 wastes most of the second vector *)
  let full = (Ukernel_cost.cost ~machine ~dtype:Dtype.F32 ~mb:6 ~nb:16 ~kb:32 ~bs:1).efficiency in
  let ragged = (Ukernel_cost.cost ~machine ~dtype:Dtype.F32 ~mb:6 ~nb:17 ~kb:32 ~bs:1).efficiency in
  Alcotest.(check bool) "ragged worse" true (ragged < full)

let test_cost_int8_faster () =
  let machine = Machine.xeon_8358 in
  let f = (Ukernel_cost.cost ~machine ~dtype:Dtype.F32 ~mb:6 ~nb:64 ~kb:32 ~bs:1).cycles in
  let i = (Ukernel_cost.cost ~machine ~dtype:Dtype.S8 ~mb:6 ~nb:64 ~kb:32 ~bs:1).cycles in
  Alcotest.(check bool) "int8 fewer cycles" true (i < f)

(* The cost model restates the kernel's register-tile shape as independent
   constants (so the model stays a pure function of the machine). This
   guard fails if either side changes without the other — the cost model
   silently mis-ranking tile candidates is exactly the drift we cannot
   afford. *)
let test_cost_tile_matches_kernel () =
  Alcotest.(check int) "tile_m" Brgemm.tile_m Ukernel_cost.tile_m;
  Alcotest.(check int) "tile_n" Brgemm.tile_n Ukernel_cost.tile_n

let test_cost_u_tile () =
  (* full tiles → no penalty; all-edge 1x1 → the edge rate *)
  Alcotest.(check (float 1e-9)) "full" 1.
    (Ukernel_cost.u_tile ~mb:(2 * Ukernel_cost.tile_m) ~nb:(4 * Ukernel_cost.tile_n));
  Alcotest.(check bool) "ragged penalized" true
    (Ukernel_cost.u_tile ~mb:((2 * Ukernel_cost.tile_m) + 1) ~nb:(4 * Ukernel_cost.tile_n)
    < 1.);
  Alcotest.(check bool) "edge rate bounded" true (Ukernel_cost.u_tile ~mb:1 ~nb:1 >= 0.5)

let prop_cost_positive =
  QCheck.Test.make ~name:"cost is positive and efficiency in (0,1]" ~count:200
    (QCheck.make
       QCheck.Gen.(
         quad (int_range 1 64) (int_range 1 128) (int_range 1 64) (int_range 1 8)))
    (fun (mb, nb, kb, bs) ->
      let machine = Machine.xeon_8358 in
      let c = Ukernel_cost.cost ~machine ~dtype:Dtype.F32 ~mb ~nb ~kb ~bs in
      c.cycles > 0. && c.efficiency > 0. && c.efficiency <= 1.)

let () =
  Alcotest.run "gc_microkernel"
    [
      ( "brgemm",
        [
          Alcotest.test_case "f32 matches ref" `Quick test_brgemm_f32_matches_ref;
          Alcotest.test_case "int8 exact" `Quick test_brgemm_int8_exact;
          Alcotest.test_case "accumulates" `Quick test_brgemm_accumulates;
          Alcotest.test_case "c offset" `Quick test_brgemm_c_offset;
          Alcotest.test_case "dispatch rejects" `Quick test_brgemm_dispatch_rejects;
          Alcotest.test_case "blocked equals matmul" `Quick test_brgemm_matches_ref_matmul;
          QCheck_alcotest.to_alcotest prop_tiled_f32_bit_exact;
          QCheck_alcotest.to_alcotest (prop_tiled_int8_exact ~signed:false);
          QCheck_alcotest.to_alcotest (prop_tiled_int8_exact ~signed:true);
        ] );
      ( "machine",
        [ Alcotest.test_case "rates" `Quick test_machine_rates ] );
      ( "ukernel_cost",
        [
          Alcotest.test_case "register file" `Quick test_cost_valid_register_file;
          Alcotest.test_case "l1 constraint" `Quick test_cost_l1_constraint;
          Alcotest.test_case "k amortization" `Quick test_cost_monotone_in_k;
          Alcotest.test_case "lane utilization" `Quick test_cost_lane_utilization;
          Alcotest.test_case "int8 faster" `Quick test_cost_int8_faster;
          Alcotest.test_case "tile constants match kernel" `Quick
            test_cost_tile_matches_kernel;
          Alcotest.test_case "u_tile shape" `Quick test_cost_u_tile;
          QCheck_alcotest.to_alcotest prop_cost_positive;
        ] );
    ]
