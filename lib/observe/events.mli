(** An always-on, bounded flight recorder for supervision and degradation
    events: worker restarts, pool reincarnations, quarantines, canary
    verdicts, poisoned-pool inline runs. Complements {!Counters} (how many)
    with ordered, stamped detail (what, when, to which component).

    Process-global and lock-protected; events are rare — every recording
    site sits on an error/supervision path, never the per-kernel hot
    path. The ring keeps the most recent {!capacity} events. *)

type event = {
  ev_ts : float;  (** wall clock ([Unix.gettimeofday]) at record time *)
  ev_kind : string;  (** e.g. ["worker_restart"], ["pool_reincarnate"] *)
  ev_component : string;  (** e.g. ["pool"], ["serve:w3"], handle name *)
  ev_detail : string;  (** free-form human-readable context *)
}

val capacity : int

(** [record ~kind ~component detail] appends an event, evicting the oldest
    when the ring is full. *)
val record : kind:string -> component:string -> string -> unit

(** Total events ever recorded since start / last {!clear} (may exceed
    {!capacity}; the difference is the evicted count). *)
val recorded : unit -> int

(** The buffered tail, oldest first; [limit] caps the count (default all
    buffered). *)
val recent : ?limit:int -> unit -> event list

val clear : unit -> unit
val event_to_json : event -> Json.t
val to_json : ?limit:int -> unit -> Json.t

(** {2 Post-mortem dump}

    [GC_EVENTS_DUMP=path] arms an automatic flight-recorder dump: the
    buffered ring is written to [path] as one JSON document (schema
    ["gc-events/1"], atomic tmp+rename) from an [at_exit] hook — which
    OCaml runs on orderly exit {e and} after an uncaught exception, so
    graceful shutdowns and fatal error paths both leave a post-mortem.
    The serving/registry shutdown paths also dump explicitly, so a
    long-lived process that drains a tier mid-life persists the tier's
    incident history without exiting. *)

(** The armed dump path ([GC_EVENTS_DUMP]; [None] when unset/blank). *)
val dump_path : unit -> string option

(** [dump ?path ()] writes the ring now. [path] defaults to
    {!dump_path}; [None] is returned when no path is armed or the write
    failed (a failing post-mortem never raises), [Some file] on
    success. *)
val dump : ?path:string -> unit -> string option
