let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let c_kernels = Atomic.make 0
let c_sections = Atomic.make 0
let c_barriers = Atomic.make 0
let c_tasks = Atomic.make 0
let c_alloc = Atomic.make 0
let c_steals = Atomic.make 0
let c_env_reuse = Atomic.make 0
let c_arena_hits = Atomic.make 0
let c_arena_saved = Atomic.make 0

(* Resilience counters (PR 4). These sit on error paths only — a fault, a
   rejected input, a fallback — never on the per-kernel hot path, so they
   are always counted regardless of enablement: a serving process wants
   its fault history without paying for hot-path counters. *)
let c_validation_rejects = Atomic.make 0
let c_worker_faults = Atomic.make 0
let c_runtime_faults = Atomic.make 0
let c_timeouts = Atomic.make 0
let c_resource_exhausted = Atomic.make 0
let c_exec_retries = Atomic.make 0
let c_fallback_interp = Atomic.make 0
let c_sanitizer_hits = Atomic.make 0

(* Serving counters (PR 5). Admission/shedding/breaker transitions are
   rare relative to per-kernel work and a serving process always wants its
   overload history, so these too are counted unconditionally. *)
let c_serve_admitted = Atomic.make 0
let c_serve_overloaded = Atomic.make 0
let c_serve_shed_expired = Atomic.make 0
let c_serve_budget_rejects = Atomic.make 0
let c_breaker_opens = Atomic.make 0
let c_breaker_probes = Atomic.make 0
let c_breaker_closes = Atomic.make 0
let c_breaker_shortcircuits = Atomic.make 0

(* Batching counters (PR 7). Bucketed specialization and request
   coalescing events are per-compile / per-batch, not per-kernel, and a
   serving process always wants its batching history — unconditional like
   the serve counters above. *)
let c_bucket_compiles = Atomic.make 0
let c_bucket_cache_hits = Atomic.make 0
let c_pad_waste_rows = Atomic.make 0
let c_coalesced_batches = Atomic.make 0
let c_coalesced_tickets = Atomic.make 0
let c_coalesced_max_tickets = Atomic.make 0
let c_window_deadline_violations = Atomic.make 0

(* Tuning counters (PR 8). DB consultations happen per compile, tunes per
   DB miss, retunes per EWMA demotion — all rare relative to per-kernel
   work, and a serving process always wants its tuning history —
   unconditional like the serve counters above. *)
let c_tune_db_hits = Atomic.make 0
let c_tune_db_misses = Atomic.make 0
let c_tunes_run = Atomic.make 0
let c_retunes_triggered = Atomic.make 0
let c_tune_rejects = Atomic.make 0
let c_tune_time_ms = Atomic.make 0

(* Supervision counters (PR 9). Every supervision action — a restart, a
   reincarnation, a quarantine — is an error-path event by definition, and
   a serving process always wants its self-healing history; unconditional
   like the serve counters above. [pool_inline_runs] is the poisoned-pool
   perf-cliff tell: parallel sections silently degraded to inline. *)
let c_workers_restarted = Atomic.make 0
let c_workers_superseded = Atomic.make 0
let c_pools_reincarnated = Atomic.make 0
let c_pool_inline_runs = Atomic.make 0
let c_quarantines = Atomic.make 0
let c_canary_probes = Atomic.make 0
let c_canary_readmissions = Atomic.make 0
let c_heartbeats_missed = Atomic.make 0

(* Multi-model counters (PR 10). Registry lifecycle transitions, quota
   sheds and cache residency churn are per-request or rarer, and a
   multi-tenant process always wants its tenancy history — unconditional
   like the serve counters above. *)
let c_models_loaded = Atomic.make 0
let c_models_retired = Atomic.make 0
let c_hot_swaps = Atomic.make 0
let c_models_parked = Atomic.make 0
let c_models_reloaded = Atomic.make 0
let c_quota_sheds = Atomic.make 0
let c_cache_bytes_evicted = Atomic.make 0
let c_cache_overcommits = Atomic.make 0

let reset () =
  Atomic.set c_kernels 0;
  Atomic.set c_sections 0;
  Atomic.set c_barriers 0;
  Atomic.set c_tasks 0;
  Atomic.set c_alloc 0;
  Atomic.set c_steals 0;
  Atomic.set c_env_reuse 0;
  Atomic.set c_arena_hits 0;
  Atomic.set c_arena_saved 0;
  Atomic.set c_validation_rejects 0;
  Atomic.set c_worker_faults 0;
  Atomic.set c_runtime_faults 0;
  Atomic.set c_timeouts 0;
  Atomic.set c_resource_exhausted 0;
  Atomic.set c_exec_retries 0;
  Atomic.set c_fallback_interp 0;
  Atomic.set c_sanitizer_hits 0;
  Atomic.set c_serve_admitted 0;
  Atomic.set c_serve_overloaded 0;
  Atomic.set c_serve_shed_expired 0;
  Atomic.set c_serve_budget_rejects 0;
  Atomic.set c_breaker_opens 0;
  Atomic.set c_breaker_probes 0;
  Atomic.set c_breaker_closes 0;
  Atomic.set c_breaker_shortcircuits 0;
  Atomic.set c_bucket_compiles 0;
  Atomic.set c_bucket_cache_hits 0;
  Atomic.set c_pad_waste_rows 0;
  Atomic.set c_coalesced_batches 0;
  Atomic.set c_coalesced_tickets 0;
  Atomic.set c_coalesced_max_tickets 0;
  Atomic.set c_window_deadline_violations 0;
  Atomic.set c_tune_db_hits 0;
  Atomic.set c_tune_db_misses 0;
  Atomic.set c_tunes_run 0;
  Atomic.set c_retunes_triggered 0;
  Atomic.set c_tune_rejects 0;
  Atomic.set c_tune_time_ms 0;
  Atomic.set c_workers_restarted 0;
  Atomic.set c_workers_superseded 0;
  Atomic.set c_pools_reincarnated 0;
  Atomic.set c_pool_inline_runs 0;
  Atomic.set c_quarantines 0;
  Atomic.set c_canary_probes 0;
  Atomic.set c_canary_readmissions 0;
  Atomic.set c_heartbeats_missed 0;
  Atomic.set c_models_loaded 0;
  Atomic.set c_models_retired 0;
  Atomic.set c_hot_swaps 0;
  Atomic.set c_models_parked 0;
  Atomic.set c_models_reloaded 0;
  Atomic.set c_quota_sheds 0;
  Atomic.set c_cache_bytes_evicted 0;
  Atomic.set c_cache_overcommits 0

(* The [if] on a plain atomic load is the entire disabled-path cost. *)
let kernel_invocation () =
  if Atomic.get on then ignore (Atomic.fetch_and_add c_kernels 1)

let parallel_section () =
  if Atomic.get on then ignore (Atomic.fetch_and_add c_sections 1)

let barrier () = if Atomic.get on then ignore (Atomic.fetch_and_add c_barriers 1)
let tasks n = if Atomic.get on then ignore (Atomic.fetch_and_add c_tasks n)
let alloc_bytes n = if Atomic.get on then ignore (Atomic.fetch_and_add c_alloc n)
let task_stolen () = if Atomic.get on then ignore (Atomic.fetch_and_add c_steals 1)
let env_reused () = if Atomic.get on then ignore (Atomic.fetch_and_add c_env_reuse 1)
let arena_hit () = if Atomic.get on then ignore (Atomic.fetch_and_add c_arena_hits 1)

let arena_bytes_saved n =
  if Atomic.get on then ignore (Atomic.fetch_and_add c_arena_saved n)

(* Error-path events: always counted (see above). *)
let validation_reject () = ignore (Atomic.fetch_and_add c_validation_rejects 1)
let worker_fault () = ignore (Atomic.fetch_and_add c_worker_faults 1)
let runtime_fault () = ignore (Atomic.fetch_and_add c_runtime_faults 1)
let timeout () = ignore (Atomic.fetch_and_add c_timeouts 1)
let resource_exhausted () = ignore (Atomic.fetch_and_add c_resource_exhausted 1)
let exec_retry () = ignore (Atomic.fetch_and_add c_exec_retries 1)
let fallback_interp () = ignore (Atomic.fetch_and_add c_fallback_interp 1)
let sanitizer_hit () = ignore (Atomic.fetch_and_add c_sanitizer_hits 1)
let serve_admitted () = ignore (Atomic.fetch_and_add c_serve_admitted 1)
let serve_overloaded () = ignore (Atomic.fetch_and_add c_serve_overloaded 1)
let serve_shed_expired () = ignore (Atomic.fetch_and_add c_serve_shed_expired 1)

let serve_budget_reject () =
  ignore (Atomic.fetch_and_add c_serve_budget_rejects 1)

let breaker_open () = ignore (Atomic.fetch_and_add c_breaker_opens 1)
let breaker_probe () = ignore (Atomic.fetch_and_add c_breaker_probes 1)
let breaker_close () = ignore (Atomic.fetch_and_add c_breaker_closes 1)

let breaker_shortcircuit () =
  ignore (Atomic.fetch_and_add c_breaker_shortcircuits 1)

let bucket_compile () = ignore (Atomic.fetch_and_add c_bucket_compiles 1)
let bucket_cache_hit () = ignore (Atomic.fetch_and_add c_bucket_cache_hits 1)
let pad_waste_rows n = ignore (Atomic.fetch_and_add c_pad_waste_rows n)

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let coalesced_batch ~tickets =
  ignore (Atomic.fetch_and_add c_coalesced_batches 1);
  ignore (Atomic.fetch_and_add c_coalesced_tickets tickets);
  atomic_max c_coalesced_max_tickets tickets

let window_deadline_violation () =
  ignore (Atomic.fetch_and_add c_window_deadline_violations 1)

let tune_db_hit () = ignore (Atomic.fetch_and_add c_tune_db_hits 1)
let tune_db_miss () = ignore (Atomic.fetch_and_add c_tune_db_misses 1)
let tune_run () = ignore (Atomic.fetch_and_add c_tunes_run 1)
let retune_triggered () = ignore (Atomic.fetch_and_add c_retunes_triggered 1)
let tune_reject () = ignore (Atomic.fetch_and_add c_tune_rejects 1)
let tune_time_ms n = if n > 0 then ignore (Atomic.fetch_and_add c_tune_time_ms n)
let worker_restarted () = ignore (Atomic.fetch_and_add c_workers_restarted 1)
let worker_superseded () = ignore (Atomic.fetch_and_add c_workers_superseded 1)
let pool_reincarnated () = ignore (Atomic.fetch_and_add c_pools_reincarnated 1)
let pool_inline_run () = ignore (Atomic.fetch_and_add c_pool_inline_runs 1)
let quarantine () = ignore (Atomic.fetch_and_add c_quarantines 1)
let canary_probe () = ignore (Atomic.fetch_and_add c_canary_probes 1)
let canary_readmission () = ignore (Atomic.fetch_and_add c_canary_readmissions 1)
let heartbeat_missed () = ignore (Atomic.fetch_and_add c_heartbeats_missed 1)
let model_loaded () = ignore (Atomic.fetch_and_add c_models_loaded 1)
let model_retired () = ignore (Atomic.fetch_and_add c_models_retired 1)
let hot_swap () = ignore (Atomic.fetch_and_add c_hot_swaps 1)
let model_parked () = ignore (Atomic.fetch_and_add c_models_parked 1)
let model_reloaded () = ignore (Atomic.fetch_and_add c_models_reloaded 1)
let quota_shed () = ignore (Atomic.fetch_and_add c_quota_sheds 1)

let cache_bytes_evicted n =
  if n > 0 then ignore (Atomic.fetch_and_add c_cache_bytes_evicted n)

let cache_overcommit () = ignore (Atomic.fetch_and_add c_cache_overcommits 1)

type snapshot = {
  kernel_invocations : int;
  parallel_sections : int;
  barriers : int;
  task_launches : int;
  bytes_allocated : int;
  tasks_stolen : int;
  envs_reused : int;
  arena_hits : int;
  arena_bytes_saved : int;
  validation_rejects : int;
  worker_faults : int;
  runtime_faults : int;
  timeouts : int;
  resource_exhausted : int;
  exec_retries : int;
  fallback_interp : int;
  sanitizer_hits : int;
  serve_admitted : int;
  serve_overloaded : int;
  serve_shed_expired : int;
  serve_budget_rejects : int;
  breaker_opens : int;
  breaker_probes : int;
  breaker_closes : int;
  breaker_shortcircuits : int;
  bucket_compiles : int;
  bucket_cache_hits : int;
  pad_waste_rows : int;
  coalesced_batches : int;
  coalesced_tickets : int;
  coalesced_max_tickets : int;
  window_deadline_violations : int;
  tune_db_hits : int;
  tune_db_misses : int;
  tunes_run : int;
  retunes_triggered : int;
  tune_rejects : int;
  tune_time_ms : int;
  workers_restarted : int;
  workers_superseded : int;
  pools_reincarnated : int;
  pool_inline_runs : int;
  quarantines : int;
  canary_probes : int;
  canary_readmissions : int;
  heartbeats_missed : int;
  models_loaded : int;
  models_retired : int;
  hot_swaps : int;
  models_parked : int;
  models_reloaded : int;
  quota_sheds : int;
  cache_bytes_evicted : int;
  cache_overcommits : int;
}

let snapshot () =
  {
    kernel_invocations = Atomic.get c_kernels;
    parallel_sections = Atomic.get c_sections;
    barriers = Atomic.get c_barriers;
    task_launches = Atomic.get c_tasks;
    bytes_allocated = Atomic.get c_alloc;
    tasks_stolen = Atomic.get c_steals;
    envs_reused = Atomic.get c_env_reuse;
    arena_hits = Atomic.get c_arena_hits;
    arena_bytes_saved = Atomic.get c_arena_saved;
    validation_rejects = Atomic.get c_validation_rejects;
    worker_faults = Atomic.get c_worker_faults;
    runtime_faults = Atomic.get c_runtime_faults;
    timeouts = Atomic.get c_timeouts;
    resource_exhausted = Atomic.get c_resource_exhausted;
    exec_retries = Atomic.get c_exec_retries;
    fallback_interp = Atomic.get c_fallback_interp;
    sanitizer_hits = Atomic.get c_sanitizer_hits;
    serve_admitted = Atomic.get c_serve_admitted;
    serve_overloaded = Atomic.get c_serve_overloaded;
    serve_shed_expired = Atomic.get c_serve_shed_expired;
    serve_budget_rejects = Atomic.get c_serve_budget_rejects;
    breaker_opens = Atomic.get c_breaker_opens;
    breaker_probes = Atomic.get c_breaker_probes;
    breaker_closes = Atomic.get c_breaker_closes;
    breaker_shortcircuits = Atomic.get c_breaker_shortcircuits;
    bucket_compiles = Atomic.get c_bucket_compiles;
    bucket_cache_hits = Atomic.get c_bucket_cache_hits;
    pad_waste_rows = Atomic.get c_pad_waste_rows;
    coalesced_batches = Atomic.get c_coalesced_batches;
    coalesced_tickets = Atomic.get c_coalesced_tickets;
    coalesced_max_tickets = Atomic.get c_coalesced_max_tickets;
    window_deadline_violations = Atomic.get c_window_deadline_violations;
    tune_db_hits = Atomic.get c_tune_db_hits;
    tune_db_misses = Atomic.get c_tune_db_misses;
    tunes_run = Atomic.get c_tunes_run;
    retunes_triggered = Atomic.get c_retunes_triggered;
    tune_rejects = Atomic.get c_tune_rejects;
    tune_time_ms = Atomic.get c_tune_time_ms;
    workers_restarted = Atomic.get c_workers_restarted;
    workers_superseded = Atomic.get c_workers_superseded;
    pools_reincarnated = Atomic.get c_pools_reincarnated;
    pool_inline_runs = Atomic.get c_pool_inline_runs;
    quarantines = Atomic.get c_quarantines;
    canary_probes = Atomic.get c_canary_probes;
    canary_readmissions = Atomic.get c_canary_readmissions;
    heartbeats_missed = Atomic.get c_heartbeats_missed;
    models_loaded = Atomic.get c_models_loaded;
    models_retired = Atomic.get c_models_retired;
    hot_swaps = Atomic.get c_hot_swaps;
    models_parked = Atomic.get c_models_parked;
    models_reloaded = Atomic.get c_models_reloaded;
    quota_sheds = Atomic.get c_quota_sheds;
    cache_bytes_evicted = Atomic.get c_cache_bytes_evicted;
    cache_overcommits = Atomic.get c_cache_overcommits;
  }

let snapshot_to_json s =
  Json.Obj
    [
      ("kernel_invocations", Json.Int s.kernel_invocations);
      ("parallel_sections", Json.Int s.parallel_sections);
      ("barriers", Json.Int s.barriers);
      ("task_launches", Json.Int s.task_launches);
      ("bytes_allocated", Json.Int s.bytes_allocated);
      ("tasks_stolen", Json.Int s.tasks_stolen);
      ("envs_reused", Json.Int s.envs_reused);
      ("arena_hits", Json.Int s.arena_hits);
      ("arena_bytes_saved", Json.Int s.arena_bytes_saved);
      ("validation_rejects", Json.Int s.validation_rejects);
      ("worker_faults", Json.Int s.worker_faults);
      ("runtime_faults", Json.Int s.runtime_faults);
      ("timeouts", Json.Int s.timeouts);
      ("resource_exhausted", Json.Int s.resource_exhausted);
      ("exec_retries", Json.Int s.exec_retries);
      ("fallback_interp", Json.Int s.fallback_interp);
      ("sanitizer_hits", Json.Int s.sanitizer_hits);
      ("serve_admitted", Json.Int s.serve_admitted);
      ("serve_overloaded", Json.Int s.serve_overloaded);
      ("serve_shed_expired", Json.Int s.serve_shed_expired);
      ("serve_budget_rejects", Json.Int s.serve_budget_rejects);
      ("breaker_opens", Json.Int s.breaker_opens);
      ("breaker_probes", Json.Int s.breaker_probes);
      ("breaker_closes", Json.Int s.breaker_closes);
      ("breaker_shortcircuits", Json.Int s.breaker_shortcircuits);
      ("bucket_compiles", Json.Int s.bucket_compiles);
      ("bucket_cache_hits", Json.Int s.bucket_cache_hits);
      ("pad_waste_rows", Json.Int s.pad_waste_rows);
      ("coalesced_batches", Json.Int s.coalesced_batches);
      ("coalesced_tickets", Json.Int s.coalesced_tickets);
      ("coalesced_max_tickets", Json.Int s.coalesced_max_tickets);
      ("window_deadline_violations", Json.Int s.window_deadline_violations);
      ("tune_db_hits", Json.Int s.tune_db_hits);
      ("tune_db_misses", Json.Int s.tune_db_misses);
      ("tunes_run", Json.Int s.tunes_run);
      ("retunes_triggered", Json.Int s.retunes_triggered);
      ("tune_rejects", Json.Int s.tune_rejects);
      ("tune_time_ms", Json.Int s.tune_time_ms);
      ("workers_restarted", Json.Int s.workers_restarted);
      ("workers_superseded", Json.Int s.workers_superseded);
      ("pools_reincarnated", Json.Int s.pools_reincarnated);
      ("pool_inline_runs", Json.Int s.pool_inline_runs);
      ("quarantines", Json.Int s.quarantines);
      ("canary_probes", Json.Int s.canary_probes);
      ("canary_readmissions", Json.Int s.canary_readmissions);
      ("heartbeats_missed", Json.Int s.heartbeats_missed);
      ("models_loaded", Json.Int s.models_loaded);
      ("models_retired", Json.Int s.models_retired);
      ("hot_swaps", Json.Int s.hot_swaps);
      ("models_parked", Json.Int s.models_parked);
      ("models_reloaded", Json.Int s.models_reloaded);
      ("quota_sheds", Json.Int s.quota_sheds);
      ("cache_bytes_evicted", Json.Int s.cache_bytes_evicted);
      ("cache_overcommits", Json.Int s.cache_overcommits);
    ]

let pp_snapshot fmt s =
  Format.fprintf fmt
    "kernels=%d sections=%d barriers=%d tasks=%d alloc_bytes=%d stolen=%d \
     env_reuse=%d arena_hits=%d arena_saved=%d rejects=%d worker_faults=%d \
     faults=%d timeouts=%d oom=%d retries=%d fallbacks=%d sanitizer=%d \
     admitted=%d overloaded=%d shed_expired=%d budget_rejects=%d \
     breaker_opens=%d breaker_probes=%d breaker_closes=%d breaker_short=%d \
     bucket_compiles=%d bucket_hits=%d pad_waste=%d coalesced=%d \
     coalesced_tickets=%d coalesced_max=%d window_violations=%d \
     tune_hits=%d tune_misses=%d tunes=%d retunes=%d tune_rejects=%d \
     tune_ms=%d restarts=%d superseded=%d reincarnations=%d inline_runs=%d \
     quarantines=%d canary_probes=%d readmissions=%d hb_missed=%d \
     models_loaded=%d models_retired=%d hot_swaps=%d parked=%d reloaded=%d \
     quota_sheds=%d cache_evicted_bytes=%d cache_overcommits=%d"
    s.kernel_invocations s.parallel_sections s.barriers s.task_launches
    s.bytes_allocated s.tasks_stolen s.envs_reused s.arena_hits
    s.arena_bytes_saved s.validation_rejects s.worker_faults s.runtime_faults
    s.timeouts s.resource_exhausted s.exec_retries s.fallback_interp
    s.sanitizer_hits s.serve_admitted s.serve_overloaded s.serve_shed_expired
    s.serve_budget_rejects s.breaker_opens s.breaker_probes s.breaker_closes
    s.breaker_shortcircuits s.bucket_compiles s.bucket_cache_hits
    s.pad_waste_rows s.coalesced_batches s.coalesced_tickets
    s.coalesced_max_tickets s.window_deadline_violations s.tune_db_hits
    s.tune_db_misses s.tunes_run s.retunes_triggered s.tune_rejects
    s.tune_time_ms s.workers_restarted s.workers_superseded
    s.pools_reincarnated s.pool_inline_runs s.quarantines s.canary_probes
    s.canary_readmissions s.heartbeats_missed s.models_loaded s.models_retired
    s.hot_swaps s.models_parked s.models_reloaded s.quota_sheds
    s.cache_bytes_evicted s.cache_overcommits

let with_counters f =
  let was = enabled () in
  reset ();
  enable ();
  let finish () = if not was then disable () in
  match f () with
  | v ->
      let snap = snapshot () in
      finish ();
      (v, snap)
  | exception e ->
      finish ();
      raise e
