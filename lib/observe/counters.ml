let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let c_kernels = Atomic.make 0
let c_sections = Atomic.make 0
let c_barriers = Atomic.make 0
let c_tasks = Atomic.make 0
let c_alloc = Atomic.make 0
let c_steals = Atomic.make 0
let c_env_reuse = Atomic.make 0
let c_arena_hits = Atomic.make 0
let c_arena_saved = Atomic.make 0

let reset () =
  Atomic.set c_kernels 0;
  Atomic.set c_sections 0;
  Atomic.set c_barriers 0;
  Atomic.set c_tasks 0;
  Atomic.set c_alloc 0;
  Atomic.set c_steals 0;
  Atomic.set c_env_reuse 0;
  Atomic.set c_arena_hits 0;
  Atomic.set c_arena_saved 0

(* The [if] on a plain atomic load is the entire disabled-path cost. *)
let kernel_invocation () =
  if Atomic.get on then ignore (Atomic.fetch_and_add c_kernels 1)

let parallel_section () =
  if Atomic.get on then ignore (Atomic.fetch_and_add c_sections 1)

let barrier () = if Atomic.get on then ignore (Atomic.fetch_and_add c_barriers 1)
let tasks n = if Atomic.get on then ignore (Atomic.fetch_and_add c_tasks n)
let alloc_bytes n = if Atomic.get on then ignore (Atomic.fetch_and_add c_alloc n)
let task_stolen () = if Atomic.get on then ignore (Atomic.fetch_and_add c_steals 1)
let env_reused () = if Atomic.get on then ignore (Atomic.fetch_and_add c_env_reuse 1)
let arena_hit () = if Atomic.get on then ignore (Atomic.fetch_and_add c_arena_hits 1)

let arena_bytes_saved n =
  if Atomic.get on then ignore (Atomic.fetch_and_add c_arena_saved n)

type snapshot = {
  kernel_invocations : int;
  parallel_sections : int;
  barriers : int;
  task_launches : int;
  bytes_allocated : int;
  tasks_stolen : int;
  envs_reused : int;
  arena_hits : int;
  arena_bytes_saved : int;
}

let snapshot () =
  {
    kernel_invocations = Atomic.get c_kernels;
    parallel_sections = Atomic.get c_sections;
    barriers = Atomic.get c_barriers;
    task_launches = Atomic.get c_tasks;
    bytes_allocated = Atomic.get c_alloc;
    tasks_stolen = Atomic.get c_steals;
    envs_reused = Atomic.get c_env_reuse;
    arena_hits = Atomic.get c_arena_hits;
    arena_bytes_saved = Atomic.get c_arena_saved;
  }

let snapshot_to_json s =
  Json.Obj
    [
      ("kernel_invocations", Json.Int s.kernel_invocations);
      ("parallel_sections", Json.Int s.parallel_sections);
      ("barriers", Json.Int s.barriers);
      ("task_launches", Json.Int s.task_launches);
      ("bytes_allocated", Json.Int s.bytes_allocated);
      ("tasks_stolen", Json.Int s.tasks_stolen);
      ("envs_reused", Json.Int s.envs_reused);
      ("arena_hits", Json.Int s.arena_hits);
      ("arena_bytes_saved", Json.Int s.arena_bytes_saved);
    ]

let pp_snapshot fmt s =
  Format.fprintf fmt
    "kernels=%d sections=%d barriers=%d tasks=%d alloc_bytes=%d stolen=%d \
     env_reuse=%d arena_hits=%d arena_saved=%d"
    s.kernel_invocations s.parallel_sections s.barriers s.task_launches
    s.bytes_allocated s.tasks_stolen s.envs_reused s.arena_hits
    s.arena_bytes_saved

let with_counters f =
  let was = enabled () in
  reset ();
  enable ();
  let finish () = if not was then disable () in
  match f () with
  | v ->
      let snap = snapshot () in
      finish ();
      (v, snap)
  | exception e ->
      finish ();
      raise e
