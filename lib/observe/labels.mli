(** Labeled counters: process-global counter families keyed by a dynamic
    label (a model name, a tenant), complementing {!Counters}' fixed
    fields. The multi-model serving layer records per-model admission,
    shedding and residency events here, so one snapshot answers "which
    tenant was shedding at 14:32" without baking model names into the
    counter schema.

    Lock-protected; every recording site sits on a per-request admission
    or residency path (milliseconds-scale), never the per-kernel hot
    path. *)

(** [incr ~label counter] adds [n] (default 1) to [counter] under
    [label]. *)
val incr : ?n:int -> label:string -> string -> unit

(** The counter's value under the label (0 when never incremented). *)
val get : label:string -> string -> int

(** Every label, sorted. *)
val labels : unit -> string list

(** The label's counters, sorted by counter name. *)
val counters : label:string -> (string * int) list

(** Drop everything (tests and bench sections isolate with this). *)
val reset : unit -> unit

(** [{"label": {"counter": n, ...}, ...}], labels and counters sorted. *)
val to_json : unit -> Json.t
