(** Global runtime counters, incremented by the execution substrate
    ({!Gc_runtime.Parallel} and {!Gc_runtime.Engine}) at coarse events:
    kernel invocations, parallel-section launches, barriers, temporary
    allocations. Disabled by default; when disabled every hook is a single
    atomic load and branch, so the hot path cost is negligible (the events
    are per-kernel/per-section, never per-element).

    Counters are process-global because the engine's compiled closures run
    on worker domains — all mutation is via [Atomic]. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Reset all counters to zero (does not change enablement). *)
val reset : unit -> unit

(** Hooks for the runtime (no-ops when disabled). *)

val kernel_invocation : unit -> unit
(** one microkernel/intrinsic dispatch (brgemm, zero, copy) *)

val parallel_section : unit -> unit
(** one pool dispatch (a parallel loop or task batch) *)

val barrier : unit -> unit
(** one synchronization point (end-of-section join, explicit barrier) *)

val tasks : int -> unit
(** [tasks n]: [n] worker tasks launched *)

val alloc_bytes : int -> unit
(** bytes allocated for a runtime temporary *)

val task_stolen : unit -> unit
(** one grain executed by a pool worker other than the section's submitter
    (the self-scheduling queue balanced load across domains) *)

val env_reused : unit -> unit
(** one parallel-region scratch environment served from a worker's cache
    instead of being freshly allocated *)

val arena_hit : unit -> unit
(** one [Alloc] statement served from a domain-local pre-sized arena slot
    instead of a fresh buffer allocation *)

val arena_bytes_saved : int -> unit
(** [arena_bytes_saved n]: [n] bytes of buffer allocation avoided because
    the arena already held a correctly-sized buffer *)

(** Resilience hooks (PR 4). Unlike the hot-path hooks above, these sit on
    error paths only and are {b always} counted, independent of
    {!enabled} — a serving process keeps its fault history without paying
    for per-kernel counters. [reset] zeroes them like everything else. *)

val validation_reject : unit -> unit
(** one binding set rejected at the execute boundary (bad shape/dtype/
    arity/missing input) before any engine work *)

val worker_fault : unit -> unit
(** one exception contained in a parallel-pool worker (wrapped into a
    [Runtime_fault] after the barrier drained) *)

val runtime_fault : unit -> unit
(** one execute classified as [Runtime_fault] at the API boundary *)

val timeout : unit -> unit
(** one guarded execute that exceeded its deadline *)

val resource_exhausted : unit -> unit
(** one execute classified as [Resource_exhausted] *)

val exec_retry : unit -> unit
(** one engine retry after a [Runtime_fault] *)

val fallback_interp : unit -> unit
(** one execute served by the reference interpreter after the engine
    faulted (slow-but-correct degradation) *)

val sanitizer_hit : unit -> unit
(** one non-finite value caught by the output sanitizer *)

(** Serving hooks (PR 5): admission, shedding and circuit-breaker
    transitions in {!Gc_serve}. Always counted, like the resilience
    hooks. *)

val serve_admitted : unit -> unit
(** one request admitted into the bounded serving queue *)

val serve_overloaded : unit -> unit
(** one request shed with [Overloaded] (queue full, unmeetable deadline,
    expired in queue, or draining) *)

val serve_shed_expired : unit -> unit
(** one queued request whose deadline expired before dispatch (subset of
    [serve_overloaded]) *)

val serve_budget_reject : unit -> unit
(** one request failed by the memory-budget governor
    ([Resource_exhausted] from {!Gc_tensor.Memgov}) *)

val breaker_open : unit -> unit
(** one per-partition circuit breaker tripped open (too many consecutive
    fallbacks-to-interpreter) *)

val breaker_probe : unit -> unit
(** one half-open probe of the compiled path after the breaker cooldown *)

val breaker_close : unit -> unit
(** one breaker closed again after a successful half-open probe *)

val breaker_shortcircuit : unit -> unit
(** one request routed straight to the reference interpreter because the
    breaker was open *)

(** Batching hooks (PR 7): bucketed shape-class specialization in
    {!module-Core} and request coalescing in {!Gc_serve}. Always counted,
    like the serving hooks. *)

val bucket_compile : unit -> unit
(** one concrete specialization compiled for a (shape class, bucket) pair *)

val bucket_cache_hit : unit -> unit
(** one polymorphic execute served by an already-compiled bucket *)

val pad_waste_rows : int -> unit
(** [pad_waste_rows n]: [n] padding rows executed because the request was
    rounded up to its bucket (wasted work, the price of specialization) *)

val coalesced_batch : tickets:int -> unit
(** one batched execution packing [tickets] (>= 2) coalesced requests *)

val window_deadline_violation : unit -> unit
(** one ticket whose deadline expired during the coalescing gather window
    — must stay zero; the window is sized to never outwait the tightest
    admitted deadline *)

(** Tuning hooks (PR 8): measured autotuning in [Gc_tuning] and the online
    retuning trigger in {!Gc_serve}. Always counted, like the serving
    hooks. *)

val tune_db_hit : unit -> unit
(** one compile-time parameter choice served by the persisted tuning DB *)

val tune_db_miss : unit -> unit
(** one consultation that found no usable entry (static model used) *)

val tune_run : unit -> unit
(** one empirical tuning run (candidate measurement under the budget) *)

val retune_triggered : unit -> unit
(** one schedule demoted because the serving latency EWMA lost to its
    tuned expectation (the DB entries were dropped and queued for retune) *)

val tune_reject : unit -> unit
(** one persisted entry rejected at load/lookup — failed
    [Ukernel_cost.valid] for the current machine or was inconsistent with
    its recorded problem; the static model is used instead *)

val tune_time_ms : int -> unit
(** [tune_time_ms n]: [n] wall-clock milliseconds spent measuring
    candidates (accumulated across tunes) *)

(** Supervision hooks (PR 9): self-healing actions taken by
    [Gc_supervise] and the degraded-mode tells they react to. Always
    counted, like the serving hooks. *)

val worker_restarted : unit -> unit
(** one dead worker domain (serve or pool) respawned by supervision *)

val worker_superseded : unit -> unit
(** one stuck-but-alive worker replaced (its slot re-spawned; the old
    domain exits on its next epoch check) *)

val pool_reincarnated : unit -> unit
(** one poisoned/dead parallel pool replaced by a fresh incarnation
    behind the same handle *)

val pool_inline_run : unit -> unit
(** one parallel section executed inline because the pool was poisoned —
    the degraded-throughput tell supervision exists to heal *)

val quarantine : unit -> unit
(** one compiled specialization quarantined after crash-correlated faults
    (traffic rerouted to the reference interpreter) *)

val canary_probe : unit -> unit
(** one background canary re-execution of a quarantined artifact against
    the recorded probe input *)

val canary_readmission : unit -> unit
(** one quarantined artifact re-admitted to service after its canary
    validated against the reference interpreter *)

val heartbeat_missed : unit -> unit
(** one monitor tick that found a busy worker's heartbeat older than the
    configured staleness threshold *)

(** Multi-model hooks (PR 10): registry lifecycle, per-model quota sheds
    and budget-aware cache residency churn in [Gc_registry], {!Gc_serve}
    and [Core.Compile_cache]. Always counted, like the serving hooks. *)

val model_loaded : unit -> unit
(** one named model registered (first load or a new version) *)

val model_retired : unit -> unit
(** one named model retired from the registry *)

val hot_swap : unit -> unit
(** one atomic weight/artifact swap behind a registered name *)

val model_parked : unit -> unit
(** one resident model evicted to [Parked] under memory-budget pressure
    (its compiled artifact released; the name stays registered) *)

val model_reloaded : unit -> unit
(** one parked model re-admitted via lazy recompile through the cache *)

val quota_shed : unit -> unit
(** one request shed because its model exceeded its weighted-fair share
    of the admission queue (subset of [serve_overloaded]) *)

val cache_bytes_evicted : int -> unit
(** [cache_bytes_evicted n]: [n] estimated bytes released by evicting
    compile-cache entries (accumulated) *)

val cache_overcommit : unit -> unit
(** one compile-cache insert admitted uncharged because the memory
    governor refused the charge even after LRU eviction — the cache
    layer never originates [Resource_exhausted] *)

type snapshot = {
  kernel_invocations : int;
  parallel_sections : int;
  barriers : int;
  task_launches : int;
  bytes_allocated : int;
  tasks_stolen : int;
  envs_reused : int;
  arena_hits : int;
  arena_bytes_saved : int;
  validation_rejects : int;
  worker_faults : int;
  runtime_faults : int;
  timeouts : int;
  resource_exhausted : int;
  exec_retries : int;
  fallback_interp : int;
  sanitizer_hits : int;
  serve_admitted : int;
  serve_overloaded : int;
  serve_shed_expired : int;
  serve_budget_rejects : int;
  breaker_opens : int;
  breaker_probes : int;
  breaker_closes : int;
  breaker_shortcircuits : int;
  bucket_compiles : int;
  bucket_cache_hits : int;
  pad_waste_rows : int;
  coalesced_batches : int;
  coalesced_tickets : int;  (** total tickets across coalesced batches *)
  coalesced_max_tickets : int;  (** largest single coalesced batch *)
  window_deadline_violations : int;
  tune_db_hits : int;
  tune_db_misses : int;
  tunes_run : int;
  retunes_triggered : int;
  tune_rejects : int;
  tune_time_ms : int;  (** total wall-clock ms spent measuring candidates *)
  workers_restarted : int;
  workers_superseded : int;
  pools_reincarnated : int;
  pool_inline_runs : int;
  quarantines : int;
  canary_probes : int;
  canary_readmissions : int;
  heartbeats_missed : int;
  models_loaded : int;
  models_retired : int;
  hot_swaps : int;
  models_parked : int;
  models_reloaded : int;
  quota_sheds : int;
  cache_bytes_evicted : int;  (** estimated bytes released by cache eviction *)
  cache_overcommits : int;
}

val snapshot : unit -> snapshot
val snapshot_to_json : snapshot -> Json.t
val pp_snapshot : Format.formatter -> snapshot -> unit

(** [with_counters f] enables and resets the counters, runs [f], returns
    its result with the snapshot, and restores the previous enablement. *)
val with_counters : (unit -> 'a) -> 'a * snapshot
