(** Global runtime counters, incremented by the execution substrate
    ({!Gc_runtime.Parallel} and {!Gc_runtime.Engine}) at coarse events:
    kernel invocations, parallel-section launches, barriers, temporary
    allocations. Disabled by default; when disabled every hook is a single
    atomic load and branch, so the hot path cost is negligible (the events
    are per-kernel/per-section, never per-element).

    Counters are process-global because the engine's compiled closures run
    on worker domains — all mutation is via [Atomic]. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Reset all counters to zero (does not change enablement). *)
val reset : unit -> unit

(** Hooks for the runtime (no-ops when disabled). *)

val kernel_invocation : unit -> unit
(** one microkernel/intrinsic dispatch (brgemm, zero, copy) *)

val parallel_section : unit -> unit
(** one pool dispatch (a parallel loop or task batch) *)

val barrier : unit -> unit
(** one synchronization point (end-of-section join, explicit barrier) *)

val tasks : int -> unit
(** [tasks n]: [n] worker tasks launched *)

val alloc_bytes : int -> unit
(** bytes allocated for a runtime temporary *)

val task_stolen : unit -> unit
(** one grain executed by a pool worker other than the section's submitter
    (the self-scheduling queue balanced load across domains) *)

val env_reused : unit -> unit
(** one parallel-region scratch environment served from a worker's cache
    instead of being freshly allocated *)

val arena_hit : unit -> unit
(** one [Alloc] statement served from a domain-local pre-sized arena slot
    instead of a fresh buffer allocation *)

val arena_bytes_saved : int -> unit
(** [arena_bytes_saved n]: [n] bytes of buffer allocation avoided because
    the arena already held a correctly-sized buffer *)

type snapshot = {
  kernel_invocations : int;
  parallel_sections : int;
  barriers : int;
  task_launches : int;
  bytes_allocated : int;
  tasks_stolen : int;
  envs_reused : int;
  arena_hits : int;
  arena_bytes_saved : int;
}

val snapshot : unit -> snapshot
val snapshot_to_json : snapshot -> Json.t
val pp_snapshot : Format.formatter -> snapshot -> unit

(** [with_counters f] enables and resets the counters, runs [f], returns
    its result with the snapshot, and restores the previous enablement. *)
val with_counters : (unit -> 'a) -> 'a * snapshot
