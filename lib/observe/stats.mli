(** Size metrics of an IR snapshot, recorded before and after every pass so
    a trace shows what each pass actually did to the program (the paper's
    ablations attribute speedups to individual passes; this is the
    measurement substrate). One record type covers all three IRs — fields
    that do not apply to a level are zero. *)

type t = {
  ops : int;
      (** Graph IR: ops; Fused-op graph: fused ops; Tensor IR: statements *)
  loops : int;  (** Tensor IR loop statements (0 at graph level) *)
  parallel_loops : int;
  max_loop_depth : int;
  buffers : int;
      (** distinct tensors referenced (logical tensors / TIR tensors) *)
  est_bytes : int;  (** summed dense footprint of those tensors *)
  funcs : int;  (** Tensor IR functions (0 at graph level) *)
}

val zero : t
val of_graph : Gc_graph_ir.Graph.t -> t
val of_fused : Gc_lowering.Fused_op.graph -> t
val of_module : Gc_tensor_ir.Ir.module_ -> t
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
