type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_to_string f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    (* trim to the shortest representation that round-trips *)
    let short = Printf.sprintf "%.12g" f in
    let s = if float_of_string short = f then short else s in
    (* keep a decimal point / exponent so the value re-parses as a float,
       not an integer *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(indent = 2) j =
  let b = Buffer.create 1024 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go depth j =
    match j with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_to_string f)
    | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string b ",\n";
            pad ((depth + 1) * indent);
            go (depth + 1) x)
          xs;
        Buffer.add_char b '\n';
        pad (depth * indent);
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad ((depth + 1) * indent);
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\": ";
            go (depth + 1) v)
          kvs;
        Buffer.add_char b '\n';
        pad (depth * indent);
        Buffer.add_char b '}'
  in
  go 0 j;
  Buffer.contents b

let to_channel oc j =
  output_string oc (to_string j);
  output_char oc '\n'

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* keep it simple: BMP code points as UTF-8 *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if tok = "" then fail "expected a number";
    if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad float"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
