open Gc_tensor
open Gc_graph_ir
open Gc_tensor_ir

type t = {
  ops : int;
  loops : int;
  parallel_loops : int;
  max_loop_depth : int;
  buffers : int;
  est_bytes : int;
  funcs : int;
}

let zero =
  {
    ops = 0;
    loops = 0;
    parallel_loops = 0;
    max_loop_depth = 0;
    buffers = 0;
    est_bytes = 0;
    funcs = 0;
  }

let lt_bytes (lt : Logical_tensor.t) =
  Shape.numel lt.shape * Dtype.size_bytes lt.dtype

let of_graph (g : Graph.t) =
  let tensors = Graph.all_tensors g in
  {
    zero with
    ops = Graph.op_count g;
    buffers = List.length tensors;
    est_bytes = List.fold_left (fun acc lt -> acc + lt_bytes lt) 0 tensors;
  }

let of_fused (fg : Gc_lowering.Fused_op.graph) =
  (* count the internal ops of every fused op, and the distinct logical
     tensors on fused-op boundaries (internal edges are gone by design —
     that is what fusion buys) *)
  let seen = Hashtbl.create 64 in
  let bytes = ref 0 in
  let add (lt : Logical_tensor.t) =
    if not (Hashtbl.mem seen lt.id) then begin
      Hashtbl.add seen lt.id ();
      bytes := !bytes + lt_bytes lt
    end
  in
  let ops =
    List.fold_left
      (fun acc (f : Gc_lowering.Fused_op.t) ->
        List.iter add f.f_inputs;
        List.iter add f.f_outputs;
        acc + List.length (Gc_lowering.Fused_op.ops f))
      0 fg.fused
  in
  {
    zero with
    ops;
    buffers = Hashtbl.length seen;
    est_bytes = !bytes;
    funcs = List.length fg.fused;
  }

let of_module (m : Ir.module_) =
  let stmts = ref 0 and loops = ref 0 and ploops = ref 0 and depth = ref 0 in
  let seen = Hashtbl.create 64 in
  let bytes = ref 0 in
  let add_tensor (t : Ir.tensor) =
    if not (Hashtbl.mem seen t.tid) then begin
      Hashtbl.add seen t.tid ();
      bytes := !bytes + Ir.tensor_bytes t
    end
  in
  (* [d] is the number of enclosing loops; max_loop_depth is the deepest
     loop *nest*, not statement nesting *)
  let rec walk d (s : Ir.stmt) =
    incr stmts;
    match s with
    | For l ->
        incr loops;
        if l.parallel then incr ploops;
        if d + 1 > !depth then depth := d + 1;
        List.iter (walk (d + 1)) l.body
    | If (_, th, el) ->
        List.iter (walk d) th;
        List.iter (walk d) el
    | Assign _ | Store _ | Alloc _ | Call _ | Barrier -> ()
  in
  List.iter
    (fun (f : Ir.func) ->
      List.iter (walk 0) f.body;
      List.iter add_tensor (Visit.tensors_used f.body);
      List.iter
        (function Ir.Ptensor t -> add_tensor t | Ir.Pvar _ -> ())
        f.params)
    m.funcs;
  List.iter add_tensor m.globals;
  {
    ops = !stmts;
    loops = !loops;
    parallel_loops = !ploops;
    max_loop_depth = !depth;
    buffers = Hashtbl.length seen;
    est_bytes = !bytes;
    funcs = List.length m.funcs;
  }

let to_json s =
  Json.Obj
    [
      ("ops", Json.Int s.ops);
      ("loops", Json.Int s.loops);
      ("parallel_loops", Json.Int s.parallel_loops);
      ("max_loop_depth", Json.Int s.max_loop_depth);
      ("buffers", Json.Int s.buffers);
      ("est_bytes", Json.Int s.est_bytes);
      ("funcs", Json.Int s.funcs);
    ]

let pp fmt s =
  Format.fprintf fmt "ops=%d loops=%d(par %d, depth %d) buffers=%d bytes=%d funcs=%d"
    s.ops s.loops s.parallel_loops s.max_loop_depth s.buffers s.est_bytes s.funcs
