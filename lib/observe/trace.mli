(** Trace collection: per-pass timings with before/after IR statistics,
    plus free-form sections (runtime counters, perfsim reports, wallclock
    measurements) — exported as one JSON document (schema ["gc-trace/1"],
    see DESIGN.md).

    Pipelines take a [t option]: [None] (the default everywhere) costs one
    pattern match per pass, so tracing is strictly opt-in. *)

type pass_event = {
  stage : string;  (** "graph" | "tir" | "lowering" | ... *)
  pass_name : string;
  elapsed_ms : float;
  before : Stats.t;
  after : Stats.t;
}

type t

val create : unit -> t

(** Attach a piece of run metadata (workload name, config, dtype, ...). *)
val set_meta : t -> string -> Json.t -> unit

val record_pass :
  t ->
  stage:string ->
  name:string ->
  elapsed_ms:float ->
  before:Stats.t ->
  after:Stats.t ->
  unit

(** [time trace ~stage ~name ~stats f x] runs [f x], recording elapsed wall
    time and [stats] of the value before and after. With [None] it is just
    [f x]. For same-type passes ('a -> 'a). *)
val time :
  t option ->
  stage:string ->
  name:string ->
  stats:('a -> Stats.t) ->
  ('a -> 'a) ->
  'a ->
  'a

(** Type-changing variant: the before-stats are supplied, the after-stats
    are computed from the result. *)
val time_into :
  t option ->
  stage:string ->
  name:string ->
  before:Stats.t ->
  after:('b -> Stats.t) ->
  ('a -> 'b) ->
  'a ->
  'b

(** Attach/replace a named top-level JSON section ("counters", "perfsim",
    "wallclock", ...). *)
val add_section : t -> string -> Json.t -> unit

(** Recorded pass events, in execution order. *)
val passes : t -> pass_event list

val to_json : t -> Json.t
val write_file : t -> string -> unit

(** Human-readable pass-timing report (one line per pass with IR deltas). *)
val pp_report : Format.formatter -> t -> unit
