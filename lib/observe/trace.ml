type pass_event = {
  stage : string;
  pass_name : string;
  elapsed_ms : float;
  before : Stats.t;
  after : Stats.t;
}

type t = {
  mutable meta : (string * Json.t) list;  (* reverse order *)
  mutable events : pass_event list;  (* reverse order *)
  mutable sections : (string * Json.t) list;  (* reverse order *)
}

let create () = { meta = []; events = []; sections = [] }

let set_meta t k v = t.meta <- (k, v) :: List.remove_assoc k t.meta

let record_pass t ~stage ~name ~elapsed_ms ~before ~after =
  t.events <-
    { stage; pass_name = name; elapsed_ms; before; after } :: t.events

let now_ms () = Unix.gettimeofday () *. 1000.

let time trace ~stage ~name ~stats f x =
  match trace with
  | None -> f x
  | Some t ->
      let before = stats x in
      let t0 = now_ms () in
      let y = f x in
      let t1 = now_ms () in
      record_pass t ~stage ~name ~elapsed_ms:(t1 -. t0) ~before
        ~after:(stats y);
      y

let time_into trace ~stage ~name ~before ~after f x =
  match trace with
  | None -> f x
  | Some t ->
      let t0 = now_ms () in
      let y = f x in
      let t1 = now_ms () in
      record_pass t ~stage ~name ~elapsed_ms:(t1 -. t0) ~before
        ~after:(after y);
      y

let add_section t k v = t.sections <- (k, v) :: List.remove_assoc k t.sections
let passes t = List.rev t.events

let event_to_json e =
  Json.Obj
    [
      ("stage", Json.String e.stage);
      ("name", Json.String e.pass_name);
      ("elapsed_ms", Json.Float e.elapsed_ms);
      ("before", Stats.to_json e.before);
      ("after", Stats.to_json e.after);
    ]

let to_json t =
  Json.Obj
    (("schema", Json.String "gc-trace/1")
     :: ("meta", Json.Obj (List.rev t.meta))
     :: ("passes", Json.List (List.map event_to_json (passes t)))
     :: List.rev t.sections)

let write_file t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc (to_json t))

let pp_report fmt t =
  let total =
    List.fold_left (fun acc e -> acc +. e.elapsed_ms) 0. (passes t)
  in
  Format.fprintf fmt "%-8s %-22s %9s %9s %9s %12s@." "stage" "pass" "ms"
    "ops" "buffers" "bytes";
  List.iter
    (fun e ->
      Format.fprintf fmt "%-8s %-22s %9.3f %4d->%-4d %4d->%-4d %5d->%-6d@."
        e.stage e.pass_name e.elapsed_ms e.before.Stats.ops e.after.Stats.ops
        e.before.Stats.buffers e.after.Stats.buffers e.before.Stats.est_bytes
        e.after.Stats.est_bytes)
    (passes t);
  Format.fprintf fmt "total pass time: %.3f ms@." total
