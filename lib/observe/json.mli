(** A minimal JSON tree, serializer and parser — just enough for the trace
    exporter and its round-trip validation, so the observability layer adds
    no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string

(** [to_channel oc j] writes [j] followed by a newline. *)
val to_channel : out_channel -> t -> unit

(** Strict parser for the subset this module emits (all of JSON except
    exotic number forms; accepts nan/inf spellings produced by printers
    that do not quote them). *)
val of_string : string -> (t, string) result

(** Object member lookup ([None] on missing key or non-object). *)
val member : string -> t -> t option
