(* A small process-global ring of supervision/degradation events. Unlike
   Trace (per-compile, explicitly collected), this is an always-on flight
   recorder: every self-healing action and every degraded-mode tell lands
   here with a wall-clock stamp, so "why was throughput low at 14:32" is
   answerable from a snapshot alone. Bounded, lock-protected, cheap —
   events are rare (restarts, reincarnations, quarantines, inline runs),
   never per-kernel. *)

type event = {
  ev_ts : float;  (* Unix.gettimeofday at record time *)
  ev_kind : string;
  ev_component : string;
  ev_detail : string;
}

let capacity = 256
let lock = Mutex.create ()
let ring : event option array = Array.make capacity None
let next = ref 0 (* total events ever recorded *)

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record ~kind ~component detail =
  let ev =
    { ev_ts = Unix.gettimeofday (); ev_kind = kind; ev_component = component;
      ev_detail = detail }
  in
  locked (fun () ->
      ring.(!next mod capacity) <- Some ev;
      incr next)

let recorded () = locked (fun () -> !next)

(* Oldest-first slice of the still-buffered tail. *)
let recent ?(limit = capacity) () =
  locked (fun () ->
      let n = !next in
      let avail = min n capacity in
      let take = min limit avail in
      let out = ref [] in
      for i = 0 to take - 1 do
        (* newest-first index walking back from n-1 *)
        match ring.((n - 1 - i) mod capacity) with
        | Some ev -> out := ev :: !out
        | None -> ()
      done;
      !out)

let clear () =
  locked (fun () ->
      Array.fill ring 0 capacity None;
      next := 0)

let event_to_json ev =
  Json.Obj
    [
      ("ts", Json.Float ev.ev_ts);
      ("kind", Json.String ev.ev_kind);
      ("component", Json.String ev.ev_component);
      ("detail", Json.String ev.ev_detail);
    ]

let to_json ?limit () =
  Json.List (List.map event_to_json (recent ?limit ()))

(* {2 Post-mortem dump}

   The ring is only useful after an incident if it survives the process:
   [dump] writes the buffered tail as one JSON document (atomic
   tmp+rename, so a crash mid-dump never leaves a torn file), [path]
   defaulting to [GC_EVENTS_DUMP]. When that variable is set at program
   start an [at_exit] hook dumps automatically — OCaml runs [at_exit]
   both on orderly exit and after an uncaught exception, so graceful
   shutdowns and fatal error paths both leave a post-mortem behind. *)

let dump_path () =
  match Sys.getenv_opt "GC_EVENTS_DUMP" with
  | Some p when String.trim p <> "" -> Some (String.trim p)
  | _ -> None

let dump ?path () =
  match (match path with Some _ as p -> p | None -> dump_path ()) with
  | None -> None
  | Some file ->
      let doc =
        Json.Obj
          [
            ("schema", Json.String "gc-events/1");
            ("dumped_at", Json.Float (Unix.gettimeofday ()));
            ("recorded", Json.Int (recorded ()));
            ("capacity", Json.Int capacity);
            ("events", to_json ());
          ]
      in
      (match
         let tmp = file ^ ".tmp" in
         let oc = open_out tmp in
         Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
             Json.to_channel oc doc);
         Sys.rename tmp file
       with
      | () -> Some file
      | exception _ -> None (* a failing post-mortem must not mask the exit *))

let () =
  (* armed only by the environment: libraries must not surprise their
     host process with exit-time filesystem writes *)
  match dump_path () with
  | Some _ -> at_exit (fun () -> ignore (dump ()))
  | None -> ()
