(* A small process-global ring of supervision/degradation events. Unlike
   Trace (per-compile, explicitly collected), this is an always-on flight
   recorder: every self-healing action and every degraded-mode tell lands
   here with a wall-clock stamp, so "why was throughput low at 14:32" is
   answerable from a snapshot alone. Bounded, lock-protected, cheap —
   events are rare (restarts, reincarnations, quarantines, inline runs),
   never per-kernel. *)

type event = {
  ev_ts : float;  (* Unix.gettimeofday at record time *)
  ev_kind : string;
  ev_component : string;
  ev_detail : string;
}

let capacity = 256
let lock = Mutex.create ()
let ring : event option array = Array.make capacity None
let next = ref 0 (* total events ever recorded *)

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record ~kind ~component detail =
  let ev =
    { ev_ts = Unix.gettimeofday (); ev_kind = kind; ev_component = component;
      ev_detail = detail }
  in
  locked (fun () ->
      ring.(!next mod capacity) <- Some ev;
      incr next)

let recorded () = locked (fun () -> !next)

(* Oldest-first slice of the still-buffered tail. *)
let recent ?(limit = capacity) () =
  locked (fun () ->
      let n = !next in
      let avail = min n capacity in
      let take = min limit avail in
      let out = ref [] in
      for i = 0 to take - 1 do
        (* newest-first index walking back from n-1 *)
        match ring.((n - 1 - i) mod capacity) with
        | Some ev -> out := ev :: !out
        | None -> ()
      done;
      !out)

let clear () =
  locked (fun () ->
      Array.fill ring 0 capacity None;
      next := 0)

let event_to_json ev =
  Json.Obj
    [
      ("ts", Json.Float ev.ev_ts);
      ("kind", Json.String ev.ev_kind);
      ("component", Json.String ev.ev_component);
      ("detail", Json.String ev.ev_detail);
    ]

let to_json ?limit () =
  Json.List (List.map event_to_json (recent ?limit ()))
