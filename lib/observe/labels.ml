(* Labeled counter families. A two-level table (label -> counter -> int)
   under one lock: recording sites are per-request (admission, shedding,
   residency transitions), so a mutex + two hash lookups is noise next to
   the work each event represents. *)

let lock = Mutex.create ()
let table : (string, (string, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let incr ?(n = 1) ~label counter =
  locked (fun () ->
      let counters =
        match Hashtbl.find_opt table label with
        | Some c -> c
        | None ->
            let c = Hashtbl.create 8 in
            Hashtbl.add table label c;
            c
      in
      let cur = Option.value ~default:0 (Hashtbl.find_opt counters counter) in
      Hashtbl.replace counters counter (cur + n))

let get ~label counter =
  locked (fun () ->
      match Hashtbl.find_opt table label with
      | None -> 0
      | Some c -> Option.value ~default:0 (Hashtbl.find_opt c counter))

let labels () =
  locked (fun () ->
      List.sort compare (Hashtbl.fold (fun l _ acc -> l :: acc) table []))

let counters ~label =
  locked (fun () ->
      match Hashtbl.find_opt table label with
      | None -> []
      | Some c ->
          List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) c []))

let reset () = locked (fun () -> Hashtbl.reset table)

let to_json () =
  let ls = labels () in
  Json.Obj
    (List.map
       (fun l ->
         ( l,
           Json.Obj
             (List.map (fun (k, v) -> (k, Json.Int v)) (counters ~label:l)) ))
       ls)
