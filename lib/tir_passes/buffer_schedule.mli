open Gc_tensor_ir

(** Memory buffer optimization (paper §Tensor IR optimization): flattens
    the function-top local temporaries to one-dimensional memory buffers
    and reuses them across disjoint live ranges.

    Liveness is computed over the top-level statement order (def-use
    chains at the granularity of the fused-op calls in the entry function);
    at each allocation point the planner prefers reusing the
    most-recently-freed compatible buffer — "it chooses the one that was
    used most recently, so likely the data is still in the cache system" —
    and otherwise opens a new arena. Arenas are sized to the largest
    member. *)

type stats = {
  naive_bytes : int;  (** sum of all local temporaries *)
  planned_bytes : int;  (** sum of arena sizes after reuse *)
  buffers_before : int;
  buffers_after : int;
}

val empty_stats : stats

(** {2 Per-function allocation plan}

    The compile-time contract between the buffer planner and the execution
    engine's steady-state fast path: every [Alloc] site of a function,
    described as a slot of known dtype and maximal size. {!Gc_runtime.Engine}
    pre-sizes one arena buffer per slot (per executing domain) so the
    steady-state run performs no buffer allocation at all — [Alloc]
    compiles to an install of the arena slot. *)

type alloc_slot = {
  slot_tensor : Ir.tensor;  (** the local being allocated (slots key on its id) *)
  slot_dtype : Gc_tensor.Dtype.t;
  slot_numel : int;  (** element count — static in Tensor IR *)
  slot_bytes : int;
}

type alloc_plan = alloc_slot array

(** All [Alloc] sites of the function (top-level and loop-sunk),
    first-appearance order, deduplicated by tensor id. *)
val alloc_plan : Ir.func -> alloc_plan

(** Total bytes one arena instance of this plan occupies. *)
val plan_bytes : alloc_plan -> int

val run_func : Ir.func -> Ir.func * stats
val run : Ir.module_ -> Ir.module_ * stats
