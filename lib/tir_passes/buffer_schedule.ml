open Gc_tensor
open Gc_tensor_ir
open Ir

type stats = {
  naive_bytes : int;
  planned_bytes : int;
  buffers_before : int;
  buffers_after : int;
}

let empty_stats = { naive_bytes = 0; planned_bytes = 0; buffers_before = 0; buffers_after = 0 }

type alloc_slot = {
  slot_tensor : tensor;
  slot_dtype : Dtype.t;
  slot_numel : int;
  slot_bytes : int;
}

type alloc_plan = alloc_slot array

(* Every [Alloc] site of the function, outermost first, deduplicated by
   tensor id (the same tensor is never allocated twice, but be defensive).
   Runs after the passes above, so it sees the arena tensors the scheduler
   materialized plus whatever locals (e.g. loop-sunk temporaries from
   tensor_shrink) the other passes left behind. *)
let alloc_plan (f : func) : alloc_plan =
  let seen = Hashtbl.create 8 in
  let slots =
    Visit.fold_stmts
      ~stmt:(fun acc s ->
        match s with
        | Alloc t when not (Hashtbl.mem seen t.tid) ->
            Hashtbl.add seen t.tid ();
            {
              slot_tensor = t;
              slot_dtype = t.tdtype;
              slot_numel = tensor_numel t;
              slot_bytes = tensor_bytes t;
            }
            :: acc
        | _ -> acc)
      [] f.body
  in
  Array.of_list (List.rev slots)

let plan_bytes (p : alloc_plan) =
  Array.fold_left (fun a s -> a + s.slot_bytes) 0 p

let accesses_tensor t stmts =
  Visit.fold_stmts
    ~expr:(fun acc e ->
      match e with
      | Load (t', _) | Addr (t', _) when tensor_equal t t' -> acc + 1
      | _ -> acc)
    ~stmt:(fun acc s ->
      match s with Store (t', _, _) when tensor_equal t t' -> acc + 1 | _ -> acc)
    0 stmts

let run_func (f : func) =
  (* candidates: locals Alloc'd at the top level of the body *)
  let top_allocs =
    List.filter_map (function Alloc t -> Some t | _ -> None) f.body
  in
  if top_allocs = [] then (f, empty_stats)
  else begin
    let body_no_allocs =
      List.filter
        (fun s ->
          match s with
          | Alloc t -> not (List.exists (tensor_equal t) top_allocs)
          | _ -> true)
        f.body
    in
    let indexed = List.mapi (fun i s -> (i, s)) body_no_allocs in
    (* live interval of each tensor over top-level statement indices *)
    let interval t =
      let hits =
        List.filter_map
          (fun (i, s) -> if accesses_tensor t [ s ] > 0 then Some i else None)
          indexed
      in
      match hits with
      | [] -> None
      | _ -> Some (List.fold_left min max_int hits, List.fold_left max 0 hits)
    in
    let live =
      List.filter_map
        (fun t -> Option.map (fun iv -> (t, iv)) (interval t))
        top_allocs
      |> List.sort (fun (_, (a, _)) (_, (b, _)) -> compare a b)
    in
    (* greedy interval assignment with MRU free-list *)
    let arenas : (int * Dtype.t * int ref * (tensor * int * int) list ref) list ref =
      ref []
    in
    (* each arena: id, dtype, max numel, members (tensor, first, last) *)
    let next_arena = ref 0 in
    List.iter
      (fun ((t : tensor), (first, last)) ->
        (* candidates: same dtype, free at [first] (every member's last < first) *)
        let compatible =
          List.filter
            (fun (_, dt, _, members) ->
              Dtype.equal dt t.tdtype
              && List.for_all (fun (_, _, l) -> l < first) !members)
            !arenas
        in
        (* MRU: the arena freed most recently *)
        let chosen =
          List.fold_left
            (fun best arena ->
              let freed (_, _, _, members) =
                List.fold_left (fun m (_, _, l) -> max m l) (-1) !members
              in
              match best with
              | None -> Some arena
              | Some b -> if freed arena > freed b then Some arena else best)
            None compatible
        in
        match chosen with
        | Some (_, _, size, members) ->
            size := max !size (tensor_numel t);
            members := (t, first, last) :: !members
        | None ->
            let id = !next_arena in
            incr next_arena;
            arenas :=
              !arenas
              @ [ (id, t.tdtype, ref (tensor_numel t), ref [ (t, first, last) ]) ])
      live;
    (* materialize arenas and rewrite members to flattened accesses *)
    let rewritten = ref body_no_allocs in
    let arena_tensors =
      List.map
        (fun (id, dt, size, members) ->
          let arena =
            Ir.fresh_tensor ~name:(Printf.sprintf "arena%d" id) ~storage:Local
              dt [| !size |]
          in
          List.iter
            (fun ((t : tensor), _, _) ->
              rewritten :=
                Visit.subst_tensor t ~by:arena
                  ~index:(fun idx -> [| Ir.linear_index t.dims idx |])
                  !rewritten)
            !members;
          arena)
        !arenas
    in
    let naive_bytes = List.fold_left (fun a (t, _) -> a + tensor_bytes t) 0 live in
    let planned_bytes =
      List.fold_left (fun a t -> a + tensor_bytes t) 0 arena_tensors
    in
    let stats =
      {
        naive_bytes;
        planned_bytes;
        buffers_before = List.length live;
        buffers_after = List.length arena_tensors;
      }
    in
    let body = List.map (fun t -> Alloc t) arena_tensors @ !rewritten in
    (* locals that were allocated but never accessed just disappear *)
    ({ f with body }, stats)
  end

let run (m : module_) =
  let acc = ref empty_stats in
  let funcs =
    List.map
      (fun f ->
        let f', s = run_func f in
        acc :=
          {
            naive_bytes = !acc.naive_bytes + s.naive_bytes;
            planned_bytes = !acc.planned_bytes + s.planned_bytes;
            buffers_before = !acc.buffers_before + s.buffers_before;
            buffers_after = !acc.buffers_after + s.buffers_after;
          };
        f')
      m.funcs
  in
  ({ m with funcs }, !acc)
