open Gc_tensor_ir

(** The Tensor IR optimization pipeline: loop merging (coarse-grain fusion
    mechanics) → trip-1/constant simplification → tensor size optimization
    → dead store elimination → memory buffer planning. Every stage can be
    toggled for ablations. *)

type config = {
  merge_loops : bool;
  simplify : bool;
  scalarize : bool;  (** store-to-load forwarding (temporaries → scalars) *)
  shrink : bool;
  dse : bool;
  buffer_reuse : bool;
}

type stats = {
  loops_merged : int;
  buffers : Buffer_schedule.stats;
}

val default : config
val none : config

(** [run ?trace ?config m]: when [trace] is given, every enabled pass is
    timed and its before/after module statistics recorded. *)
val run :
  ?trace:Gc_observe.Trace.t -> ?config:config -> Ir.module_ -> Ir.module_ * stats
