open Gc_tensor_ir

type config = {
  merge_loops : bool;
  simplify : bool;
  scalarize : bool;
  shrink : bool;
  dse : bool;
  buffer_reuse : bool;
}

type stats = { loops_merged : int; buffers : Buffer_schedule.stats }

let default =
  {
    merge_loops = true;
    simplify = true;
    scalarize = true;
    shrink = true;
    dse = true;
    buffer_reuse = true;
  }

let none =
  {
    merge_loops = false;
    simplify = false;
    scalarize = false;
    shrink = false;
    dse = false;
    buffer_reuse = false;
  }

let run ?trace ?(config = default) (m : Ir.module_) =
  (* each enabled pass is timed with before/after module statistics when a
     trace sink is supplied; [trace = None] adds no work *)
  let timed name f m =
    Gc_observe.Trace.time trace ~stage:"tir" ~name
      ~stats:Gc_observe.Stats.of_module f m
  in
  let when_t flag name f m = if flag then timed name f m else m in
  let m, loops_merged =
    if config.merge_loops then begin
      let m = timed "loop_merge" Loop_merge.run m in
      (m, Loop_merge.last_merge_count ())
    end
    else (m, 0)
  in
  let m = when_t config.simplify "simplify" Simplify.run m in
  let m = when_t config.scalarize "forward_store" Forward_store.run m in
  let m = when_t config.shrink "tensor_shrink" Tensor_shrink.run m in
  let m = when_t config.dse "dse" Dse.run m in
  let m, buffers =
    if config.buffer_reuse then
      Gc_observe.Trace.time_into trace ~stage:"tir" ~name:"buffer_schedule"
        ~before:(Gc_observe.Stats.of_module m)
        ~after:(fun (m, _) -> Gc_observe.Stats.of_module m)
        Buffer_schedule.run m
    else (m, Buffer_schedule.empty_stats)
  in
  (m, { loops_merged; buffers })
