open Gc_tensor

(** Batch-reduce GEMM microkernel (the paper's [8][24]): given a batch of
    A and B sub-matrix blocks, compute C += Σ_b A_b · B_bᵀ-block.

    Block memory conventions (matching the blocked layouts the lowering
    chooses, Figure 2/6):
    - an A block is a row-major [MB, KB] slab;
    - a B block is a row-major [NB, KB] slab (the paper's B[K/KB, N/NB, NB,
      KB] layout — each output column's K-run is contiguous);
    - the C block is a row-major [MB, NB] slab, accumulated in place.

    Blocks are addressed by element offsets into flat buffers ([a_offs] /
    [b_offs] play the role of the template's A_addr/B_addr pointer
    arrays). The caller zero-fills C before the first reduction step,
    exactly as the template does ([C' = 0]).

    This is the expert-tuned leaf: monomorphic Bigarray loops with no
    bounds checks, standing in for the paper's JIT-generated AVX-512/AMX
    kernel (see DESIGN.md substitutions). The output block is computed in
    [tile_m × tile_n] register tiles (independent accumulator chains, A/B
    row bases hoisted, one C write-back per output element after the whole
    batch reduction) with scalar-remainder edges, so any (mb, nb) is
    accepted at full rate for the tile-aligned interior.

    Numerics contract: every output element is reduced by a single
    accumulator running batch-outer/k-inner and written back exactly once,
    which makes all three kernels bit-identical to a naive
    single-accumulator reference GEMM — the differential suite pins this
    down. *)

(** Register-tile shape of the implementation. {!Ukernel_cost} mirrors
    these constants; a unit test asserts they cannot drift apart. *)
val tile_m : int

val tile_n : int

(** f32 (also used for bf16, whose storage is widened f32):
    C[MB,NB] += Σ_b A_b[MB,KB] · B_b[NB,KB]ᵀ. *)
val f32 :
  batch:int ->
  mb:int ->
  nb:int ->
  kb:int ->
  a:Buffer.f32_arr ->
  a_offs:int array ->
  b:Buffer.f32_arr ->
  b_offs:int array ->
  c:Buffer.f32_arr ->
  c_off:int ->
  unit

(** int8 with VNNI semantics: A is u8, B is s8, C accumulates exactly in
    s32. *)
val u8s8s32 :
  batch:int ->
  mb:int ->
  nb:int ->
  kb:int ->
  a:Buffer.u8_arr ->
  a_offs:int array ->
  b:Buffer.s8_arr ->
  b_offs:int array ->
  c:Buffer.s32_arr ->
  c_off:int ->
  unit

(** s8×s8 variant (both operands signed). *)
val s8s8s32 :
  batch:int ->
  mb:int ->
  nb:int ->
  kb:int ->
  a:Buffer.s8_arr ->
  a_offs:int array ->
  b:Buffer.s8_arr ->
  b_offs:int array ->
  c:Buffer.s32_arr ->
  c_off:int ->
  unit

(** Dynamic dispatch over generic buffers, used by the Tensor IR engine's
    intrinsic call. Dtype combination is derived from the buffers; raises
    [Invalid_argument] for unsupported combinations. *)
val dispatch :
  batch:int ->
  mb:int ->
  nb:int ->
  kb:int ->
  a:Buffer.t ->
  a_offs:int array ->
  b:Buffer.t ->
  b_offs:int array ->
  c:Buffer.t ->
  c_off:int ->
  unit
