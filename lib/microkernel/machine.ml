open Gc_tensor

type t = {
  name : string;
  cores : int;
  vector_bytes : int;
  fma_ports : int;
  l1_size : int;
  l2_size : int;
  llc_size : int;
  l1_latency : float;
  l2_latency : float;
  llc_latency : float;
  dram_latency : float;
  cache_line : int;
  dram_bw_per_core : float;
  barrier_cycles : float;
  api_call_cycles : float;
  freq_ghz : float;
}

let lanes t dt = t.vector_bytes / Dtype.size_bytes dt

let macs_per_cycle t (dt : Dtype.t) =
  let f32_rate = float_of_int (t.fma_ports * lanes t Dtype.F32) in
  match dt with
  | F32 -> f32_rate
  | Bf16 -> f32_rate
  | S8 | U8 -> 4. *. f32_rate (* VNNI: 4 int8 MACs per 32-bit lane *)
  | S32 | S64 -> f32_rate /. 2.

let xeon_8358 =
  {
    name = "Intel Xeon Platinum 8358 (Ice Lake SP)";
    cores = 32;
    vector_bytes = 64;
    fma_ports = 2;
    l1_size = 48 * 1024;
    l2_size = 1280 * 1024;
    llc_size = 48 * 1024 * 1024;
    l1_latency = 0.25;   (* amortized cycles per line with 2 load ports *)
    l2_latency = 2.0;
    llc_latency = 14.0;
    dram_latency = 40.0;
    cache_line = 64;
    dram_bw_per_core = 3.0;
    barrier_cycles = 4_000.0;
    api_call_cycles = 2_500.0;
    freq_ghz = 2.6;
  }

let test_machine =
  {
    name = "test-machine (4 cores)";
    cores = 4;
    vector_bytes = 64;
    fma_ports = 2;
    l1_size = 8 * 1024;
    l2_size = 64 * 1024;
    llc_size = 1024 * 1024;
    l1_latency = 0.25;
    l2_latency = 2.0;
    llc_latency = 14.0;
    dram_latency = 40.0;
    cache_line = 64;
    dram_bw_per_core = 3.0;
    barrier_cycles = 2_000.0;
    api_call_cycles = 10_000.0;
    freq_ghz = 2.0;
  }

let pp fmt t =
  Format.fprintf fmt "%s: %d cores, L1 %dKB, L2 %dKB, LLC %dMB" t.name t.cores
    (t.l1_size / 1024) (t.l2_size / 1024)
    (t.llc_size / (1024 * 1024))

(* Stable identity string for persisted per-machine artifacts (the tuning
   database key): anything that changes measured kernel behavior — core
   count, vector width, cache geometry, frequency — changes the
   descriptor, so entries tuned on one machine are never applied to
   another. *)
let descriptor t =
  Printf.sprintf "%s|c%d|v%d|l1:%d|l2:%d|llc:%d|f%.2f" t.name t.cores
    t.vector_bytes t.l1_size t.l2_size t.llc_size t.freq_ghz
