open Gc_tensor

type t = { cycles : float; efficiency : float }

let acc_dtype (dt : Dtype.t) : Dtype.t =
  match dt with S8 | U8 -> S32 | F32 | Bf16 -> F32 | other -> other

let l1_footprint ~dtype ~mb ~nb ~kb =
  let es = Dtype.size_bytes dtype in
  let acc = Dtype.size_bytes (acc_dtype dtype) in
  (mb * kb * es) + (nb * kb * es) + (mb * nb * acc)

(* 32 SIMD registers; reserve 4 for A-broadcast / B-load operands. *)
let reg_file = 32
let operand_regs = 4
let fma_latency = 4.

(* Register-tile shape of the implementation kernel. These deliberately
   restate Brgemm.tile_m/tile_n as independent constants — the model must
   price the kernel that actually runs, and the unit tests assert the two
   pairs are equal so they cannot silently drift apart. *)
let tile_m = 2
let tile_n = 4

(* Output elements outside the tile-aligned interior fall to the kernel's
   scalar edge loops, which run at roughly half the tiled rate (no operand
   reuse, one accumulator chain). *)
let edge_rate = 0.5

let u_tile ~mb ~nb =
  let fm = mb - (mb mod tile_m) and fn = nb - (nb mod tile_n) in
  let frac = float_of_int (fm * fn) /. float_of_int (mb * nb) in
  frac +. ((1. -. frac) *. edge_rate)

let acc_tiles machine dtype ~mb ~nb =
  let lanes = Machine.lanes machine (acc_dtype dtype) in
  mb * Shape.ceil_div nb lanes

let valid ~machine ~dtype ~mb ~nb ~kb ~bs =
  mb > 0 && nb > 0 && kb > 0 && bs > 0
  && acc_tiles machine dtype ~mb ~nb <= reg_file - operand_regs
  && l1_footprint ~dtype ~mb ~nb ~kb:(kb * bs) <= machine.Machine.l1_size

let cost ~machine ~dtype ~mb ~nb ~kb ~bs =
  let lanes = Machine.lanes machine (acc_dtype dtype) in
  let peak = Machine.macs_per_cycle machine dtype in
  (* Lane utilization: a partial final vector still costs a full vector. *)
  let u_lane = float_of_int nb /. float_of_int (Shape.ceil_div nb lanes * lanes) in
  (* Latency hiding: the FMA pipeline needs fma_ports × fma_latency
     independent accumulators in flight. *)
  let tiles = float_of_int (acc_tiles machine dtype ~mb ~nb) in
  let needed = float_of_int machine.Machine.fma_ports *. fma_latency in
  let u_latency = Float.min 1. (tiles /. needed) in
  (* Register pressure: spilling accumulators halves throughput. *)
  let u_regs = if acc_tiles machine dtype ~mb ~nb > reg_file - operand_regs then 0.5 else 1. in
  (* Loop and C-update overhead amortized over the k extent. *)
  let k_ext = float_of_int (kb * bs) in
  let u_k = k_ext /. (k_ext +. 16.) in
  (* L1 spill: if the working slabs exceed L1 the kernel streams from L2. *)
  let u_l1 =
    if l1_footprint ~dtype ~mb ~nb ~kb:(kb * bs) <= machine.Machine.l1_size then 1.
    else 0.6
  in
  let efficiency =
    Float.max 0.05 (u_lane *. u_latency *. u_regs *. u_k *. u_l1 *. u_tile ~mb ~nb)
  in
  let macs = float_of_int (mb * nb * kb * bs) in
  { cycles = macs /. (peak *. efficiency); efficiency }
