(** Machine model: the hardware parameters the expert-tuned heuristic and
    the performance simulator consume.

    The default instance models the paper's testbed, an Intel Xeon Platinum
    8358 (Ice Lake SP, 32 cores, AVX-512 + VNNI). All sizes are bytes, all
    rates are per core per cycle unless stated otherwise. *)

open Gc_tensor

type t = {
  name : string;
  cores : int;
  vector_bytes : int;  (** SIMD register width (64 for AVX-512) *)
  fma_ports : int;  (** parallel FMA pipes per core *)
  l1_size : int;
  l2_size : int;
  llc_size : int;  (** shared last-level cache, total *)
  l1_latency : float;  (** cycles per cache line *)
  l2_latency : float;
  llc_latency : float;
  dram_latency : float;
  cache_line : int;
  dram_bw_per_core : float;  (** bytes per cycle per core, saturated *)
  barrier_cycles : float;  (** full-synchronization cost of one parallel section *)
  api_call_cycles : float;  (** framework-to-primitive call overhead (paper: ~10% of short MLP_1 runs) *)
  freq_ghz : float;
}

(** Peak multiply-accumulate operations per cycle per core for a dtype: one
    MAC counts as one op. AVX-512 f32: 2 pipes × 16 lanes = 32 MAC/cycle;
    VNNI int8: 4× the f32 rate; bf16 (AMX-less Ice Lake emulation): same as
    f32. *)
val macs_per_cycle : t -> Dtype.t -> float

(** SIMD lanes for a dtype ([vector_bytes / size_bytes]). *)
val lanes : t -> Dtype.t -> int

(** The paper's evaluation machine. *)
val xeon_8358 : t

(** A small generic machine for tests (4 cores, tiny caches) so cache
    effects are exercised at test-sized problems. *)
val test_machine : t

val pp : Format.formatter -> t -> unit

(** Stable identity string for persisted per-machine artifacts (the
    tuning-database key component): changes whenever anything that affects
    measured kernel behavior changes (cores, vector width, cache geometry,
    frequency). *)
val descriptor : t -> string
