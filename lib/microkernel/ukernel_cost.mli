open Gc_tensor

(** Analytical cycle model for one batch-reduce GEMM microkernel
    invocation. This is the single-core-kernel-efficiency half of the
    paper's expert-tuned heuristic: it scores (MB, NB, KB, BS) candidates
    and is also used by the performance simulator to cost intrinsic
    calls. *)

type t = {
  cycles : float;  (** estimated cycles for the whole invocation *)
  efficiency : float;  (** fraction of peak MAC throughput, in (0,1] *)
}

(** Register-tile shape the model assumes for the implementation kernel.
    Restated from {!Brgemm.tile_m}/{!Brgemm.tile_n} on purpose (the unit
    tests assert equality, so the model cannot silently drift from the
    kernel it prices). *)
val tile_m : int

val tile_n : int

(** Throughput fraction from register tiling: the tile-aligned interior of
    the [mb × nb] block runs at full rate, the scalar-remainder edges at
    [edge_rate]. In (0, 1]; equals 1 when [mb]/[nb] are tile multiples. *)
val u_tile : mb:int -> nb:int -> float

(** Register-blocking validity: the accumulator tile [mb × ⌈nb/lanes⌉] must
    fit the 32-register file (operands need a few), and all three slabs of
    one reduction step must fit in L1 — the paper's "whole input and output
    submatrices fit within the L1 cache". *)
val valid : machine:Machine.t -> dtype:Dtype.t -> mb:int -> nb:int -> kb:int -> bs:int -> bool

(** Cost of one invocation computing C[mb,nb] += Σ_{bs} A[mb,kb]·B[kb,nb].
    [dtype] is the input operand dtype (f32 / bf16 / s8 / u8). *)
val cost : machine:Machine.t -> dtype:Dtype.t -> mb:int -> nb:int -> kb:int -> bs:int -> t

(** L1 footprint in bytes of one reduction step (A, B and C slabs). *)
val l1_footprint : dtype:Dtype.t -> mb:int -> nb:int -> kb:int -> int
