open Gc_tensor
open Bigarray

(* The inner loops are written as expert-tuned OCaml: monomorphic Bigarray
   accesses, unsafe indexing, k-runs contiguous for both operands, and an
   M×N register-tiled accumulator block. This module is the repo's
   stand-in for LIBXSMM-style JIT kernels.

   Tiling scheme: the output block is walked in [tile_m × tile_n] register
   tiles. Each tile holds tile_m*tile_n live accumulators (enough
   independent FMA chains to hide the pipeline latency), the A/B row bases
   are hoisted out of the k loop, every A element is reused tile_n times
   and every B element tile_m times from registers, and C is touched
   exactly once per output element — after the *whole* batch reduction —
   instead of once per (batch, element) as a scalar loop would.

   Accumulation order is the contract the differential tests pin down:
   every output element, full-tile or edge, is reduced by a single
   accumulator running batch-outer/k-inner and written back once. That
   makes the kernel bit-identical to a naive single-accumulator reference
   GEMM for every tile decomposition, including the ragged edges.

   Steady-state serving demands the kernels be allocation-free, and
   without flambda that takes care:
   - accumulators are flat [float array]/[int array] scratch blocks, not
     [ref] cells — a float ref is a polymorphic record holding a *boxed*
     float, so every [acc := !acc +. x] in the hot loop would allocate,
     while float-array loads/stores are unboxed compiler intrinsics;
   - the scratch block is per-domain ([Domain.DLS]), sized once, so a
     kernel invocation allocates nothing — domains never share it and the
     engine never calls the kernel reentrantly;
   - the ragged-edge helpers are top-level functions (fully applied ⇒
     direct calls), not per-invocation closures;
   - the operand types are annotated monomorphic: without the annotations
     the bodies would infer a polymorphic Bigarray kind and every
     [Array1.unsafe_get] would compile to a generic (boxing) call instead
     of an unboxed intrinsic. *)

let tile_m = 2
let tile_n = 4

let f32_scratch : float array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make (tile_m * tile_n) 0.)

(* scalar 1×1 edge: accs.(0) is the single accumulator *)
let edge_f32 (a : Buffer.f32_arr) a_offs (b : Buffer.f32_arr) b_offs
    (c : Buffer.f32_arr) c_off batch kb nb (accs : float array) m n =
  Array.unsafe_set accs 0 0.;
  for bi = 0 to batch - 1 do
    let arow = Array.unsafe_get a_offs bi + (m * kb) in
    let brow = Array.unsafe_get b_offs bi + (n * kb) in
    for k = 0 to kb - 1 do
      Array.unsafe_set accs 0
        (Array.unsafe_get accs 0
        +. (Array1.unsafe_get a (arow + k) *. Array1.unsafe_get b (brow + k)))
    done
  done;
  let ci = c_off + (m * nb) + n in
  Array1.unsafe_set c ci (Array1.unsafe_get c ci +. Array.unsafe_get accs 0)

(* 1×tile_n strip for the ragged last row(s) *)
let strip1xn_f32 (a : Buffer.f32_arr) a_offs (b : Buffer.f32_arr) b_offs
    (c : Buffer.f32_arr) c_off batch kb nb (accs : float array) m n0 =
  Array.fill accs 0 tile_n 0.;
  for bi = 0 to batch - 1 do
    let arow = Array.unsafe_get a_offs bi + (m * kb) in
    let bo = Array.unsafe_get b_offs bi in
    let br0 = bo + (n0 * kb) in
    let br1 = br0 + kb in
    let br2 = br1 + kb in
    let br3 = br2 + kb in
    for k = 0 to kb - 1 do
      let a0 = Array1.unsafe_get a (arow + k) in
      Array.unsafe_set accs 0
        (Array.unsafe_get accs 0 +. (a0 *. Array1.unsafe_get b (br0 + k)));
      Array.unsafe_set accs 1
        (Array.unsafe_get accs 1 +. (a0 *. Array1.unsafe_get b (br1 + k)));
      Array.unsafe_set accs 2
        (Array.unsafe_get accs 2 +. (a0 *. Array1.unsafe_get b (br2 + k)));
      Array.unsafe_set accs 3
        (Array.unsafe_get accs 3 +. (a0 *. Array1.unsafe_get b (br3 + k)))
    done
  done;
  let ci = c_off + (m * nb) + n0 in
  Array1.unsafe_set c ci (Array1.unsafe_get c ci +. Array.unsafe_get accs 0);
  Array1.unsafe_set c (ci + 1) (Array1.unsafe_get c (ci + 1) +. Array.unsafe_get accs 1);
  Array1.unsafe_set c (ci + 2) (Array1.unsafe_get c (ci + 2) +. Array.unsafe_get accs 2);
  Array1.unsafe_set c (ci + 3) (Array1.unsafe_get c (ci + 3) +. Array.unsafe_get accs 3)

let f32 ~batch ~mb ~nb ~kb ~(a : Buffer.f32_arr) ~a_offs ~(b : Buffer.f32_arr)
    ~b_offs ~(c : Buffer.f32_arr) ~c_off =
  let mfull = mb - (mb mod tile_m) in
  let nfull = nb - (nb mod tile_n) in
  (* per-domain accumulator scratch: tile row r, column j at [r*tile_n + j] *)
  let accs = Domain.DLS.get f32_scratch in
  let m = ref 0 in
  while !m < mfull do
    let m0 = !m in
    let n = ref 0 in
    while !n < nfull do
      let n0 = !n in
      Array.fill accs 0 (tile_m * tile_n) 0.;
      for bi = 0 to batch - 1 do
        let ao = Array.unsafe_get a_offs bi and bo = Array.unsafe_get b_offs bi in
        let ar0 = ao + (m0 * kb) in
        let ar1 = ar0 + kb in
        let br0 = bo + (n0 * kb) in
        let br1 = br0 + kb in
        let br2 = br1 + kb in
        let br3 = br2 + kb in
        for k = 0 to kb - 1 do
          let a0 = Array1.unsafe_get a (ar0 + k) in
          let a1 = Array1.unsafe_get a (ar1 + k) in
          let b0 = Array1.unsafe_get b (br0 + k) in
          Array.unsafe_set accs 0 (Array.unsafe_get accs 0 +. (a0 *. b0));
          Array.unsafe_set accs 4 (Array.unsafe_get accs 4 +. (a1 *. b0));
          let b1 = Array1.unsafe_get b (br1 + k) in
          Array.unsafe_set accs 1 (Array.unsafe_get accs 1 +. (a0 *. b1));
          Array.unsafe_set accs 5 (Array.unsafe_get accs 5 +. (a1 *. b1));
          let b2 = Array1.unsafe_get b (br2 + k) in
          Array.unsafe_set accs 2 (Array.unsafe_get accs 2 +. (a0 *. b2));
          Array.unsafe_set accs 6 (Array.unsafe_get accs 6 +. (a1 *. b2));
          let b3 = Array1.unsafe_get b (br3 + k) in
          Array.unsafe_set accs 3 (Array.unsafe_get accs 3 +. (a0 *. b3));
          Array.unsafe_set accs 7 (Array.unsafe_get accs 7 +. (a1 *. b3))
        done
      done;
      let c0 = c_off + (m0 * nb) + n0 in
      let c1 = c0 + nb in
      Array1.unsafe_set c c0 (Array1.unsafe_get c c0 +. Array.unsafe_get accs 0);
      Array1.unsafe_set c (c0 + 1) (Array1.unsafe_get c (c0 + 1) +. Array.unsafe_get accs 1);
      Array1.unsafe_set c (c0 + 2) (Array1.unsafe_get c (c0 + 2) +. Array.unsafe_get accs 2);
      Array1.unsafe_set c (c0 + 3) (Array1.unsafe_get c (c0 + 3) +. Array.unsafe_get accs 3);
      Array1.unsafe_set c c1 (Array1.unsafe_get c c1 +. Array.unsafe_get accs 4);
      Array1.unsafe_set c (c1 + 1) (Array1.unsafe_get c (c1 + 1) +. Array.unsafe_get accs 5);
      Array1.unsafe_set c (c1 + 2) (Array1.unsafe_get c (c1 + 2) +. Array.unsafe_get accs 6);
      Array1.unsafe_set c (c1 + 3) (Array1.unsafe_get c (c1 + 3) +. Array.unsafe_get accs 7);
      n := n0 + tile_n
    done;
    for n1 = nfull to nb - 1 do
      edge_f32 a a_offs b b_offs c c_off batch kb nb accs m0 n1;
      edge_f32 a a_offs b b_offs c c_off batch kb nb accs (m0 + 1) n1
    done;
    m := m0 + tile_m
  done;
  for m1 = mfull to mb - 1 do
    let n = ref 0 in
    while !n < nfull do
      strip1xn_f32 a a_offs b b_offs c c_off batch kb nb accs m1 !n;
      n := !n + tile_n
    done;
    for n1 = nfull to nb - 1 do
      edge_f32 a a_offs b b_offs c c_off batch kb nb accs m1 n1
    done
  done

(* Integer core, shared by u8×s8 and s8×s8 through [get_a] (A-side loads
   are 2 per k step per tile, so the closure call amortizes over the 8
   MACs; B stays a monomorphic s8 Bigarray access). Integer accumulation
   is exact, so ordering is free — but the structure mirrors [f32]. Int
   accumulators are immediate values, yet [ref] cells still allocate the
   cell itself per tile, so they use the same per-domain scratch-array
   discipline as [f32]. *)

let int8_scratch : int array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make (tile_m * tile_n) 0)

let edge_int8 get_a (b : Buffer.s8_arr) a_offs b_offs (c : Buffer.s32_arr)
    c_off batch kb nb (accs : int array) m n =
  Array.unsafe_set accs 0 0;
  for bi = 0 to batch - 1 do
    let arow = Array.unsafe_get a_offs bi + (m * kb) in
    let brow = Array.unsafe_get b_offs bi + (n * kb) in
    for k = 0 to kb - 1 do
      Array.unsafe_set accs 0
        (Array.unsafe_get accs 0 + (get_a (arow + k) * Array1.unsafe_get b (brow + k)))
    done
  done;
  let ci = c_off + (m * nb) + n in
  Array1.unsafe_set c ci
    (Int32.add (Array1.unsafe_get c ci) (Int32.of_int (Array.unsafe_get accs 0)))

let strip1xn_int8 get_a (b : Buffer.s8_arr) a_offs b_offs (c : Buffer.s32_arr)
    c_off batch kb nb (accs : int array) m n0 =
  Array.fill accs 0 tile_n 0;
  for bi = 0 to batch - 1 do
    let arow = Array.unsafe_get a_offs bi + (m * kb) in
    let bo = Array.unsafe_get b_offs bi in
    let br0 = bo + (n0 * kb) in
    let br1 = br0 + kb in
    let br2 = br1 + kb in
    let br3 = br2 + kb in
    for k = 0 to kb - 1 do
      let a0 = get_a (arow + k) in
      Array.unsafe_set accs 0
        (Array.unsafe_get accs 0 + (a0 * Array1.unsafe_get b (br0 + k)));
      Array.unsafe_set accs 1
        (Array.unsafe_get accs 1 + (a0 * Array1.unsafe_get b (br1 + k)));
      Array.unsafe_set accs 2
        (Array.unsafe_get accs 2 + (a0 * Array1.unsafe_get b (br2 + k)));
      Array.unsafe_set accs 3
        (Array.unsafe_get accs 3 + (a0 * Array1.unsafe_get b (br3 + k)))
    done
  done;
  let ci = c_off + (m * nb) + n0 in
  let wb ci acc =
    Array1.unsafe_set c ci (Int32.add (Array1.unsafe_get c ci) (Int32.of_int acc))
  in
  wb ci (Array.unsafe_get accs 0);
  wb (ci + 1) (Array.unsafe_get accs 1);
  wb (ci + 2) (Array.unsafe_get accs 2);
  wb (ci + 3) (Array.unsafe_get accs 3)

let int8_core ~get_a ~batch ~mb ~nb ~kb ~a_offs ~(b : Buffer.s8_arr) ~b_offs
    ~(c : Buffer.s32_arr) ~c_off =
  let mfull = mb - (mb mod tile_m) in
  let nfull = nb - (nb mod tile_n) in
  let accs = Domain.DLS.get int8_scratch in
  let wb ci (acc : int) =
    Array1.unsafe_set c ci (Int32.add (Array1.unsafe_get c ci) (Int32.of_int acc))
  in
  let m = ref 0 in
  while !m < mfull do
    let m0 = !m in
    let n = ref 0 in
    while !n < nfull do
      let n0 = !n in
      Array.fill accs 0 (tile_m * tile_n) 0;
      for bi = 0 to batch - 1 do
        let ao = Array.unsafe_get a_offs bi and bo = Array.unsafe_get b_offs bi in
        let ar0 = ao + (m0 * kb) in
        let ar1 = ar0 + kb in
        let br0 = bo + (n0 * kb) in
        let br1 = br0 + kb in
        let br2 = br1 + kb in
        let br3 = br2 + kb in
        for k = 0 to kb - 1 do
          let a0 = get_a (ar0 + k) in
          let a1 = get_a (ar1 + k) in
          let b0 = Array1.unsafe_get b (br0 + k) in
          Array.unsafe_set accs 0 (Array.unsafe_get accs 0 + (a0 * b0));
          Array.unsafe_set accs 4 (Array.unsafe_get accs 4 + (a1 * b0));
          let b1 = Array1.unsafe_get b (br1 + k) in
          Array.unsafe_set accs 1 (Array.unsafe_get accs 1 + (a0 * b1));
          Array.unsafe_set accs 5 (Array.unsafe_get accs 5 + (a1 * b1));
          let b2 = Array1.unsafe_get b (br2 + k) in
          Array.unsafe_set accs 2 (Array.unsafe_get accs 2 + (a0 * b2));
          Array.unsafe_set accs 6 (Array.unsafe_get accs 6 + (a1 * b2));
          let b3 = Array1.unsafe_get b (br3 + k) in
          Array.unsafe_set accs 3 (Array.unsafe_get accs 3 + (a0 * b3));
          Array.unsafe_set accs 7 (Array.unsafe_get accs 7 + (a1 * b3))
        done
      done;
      let c0 = c_off + (m0 * nb) + n0 in
      let c1 = c0 + nb in
      wb c0 (Array.unsafe_get accs 0);
      wb (c0 + 1) (Array.unsafe_get accs 1);
      wb (c0 + 2) (Array.unsafe_get accs 2);
      wb (c0 + 3) (Array.unsafe_get accs 3);
      wb c1 (Array.unsafe_get accs 4);
      wb (c1 + 1) (Array.unsafe_get accs 5);
      wb (c1 + 2) (Array.unsafe_get accs 6);
      wb (c1 + 3) (Array.unsafe_get accs 7);
      n := n0 + tile_n
    done;
    for n1 = nfull to nb - 1 do
      edge_int8 get_a b a_offs b_offs c c_off batch kb nb accs m0 n1;
      edge_int8 get_a b a_offs b_offs c c_off batch kb nb accs (m0 + 1) n1
    done;
    m := m0 + tile_m
  done;
  for m1 = mfull to mb - 1 do
    let n = ref 0 in
    while !n < nfull do
      strip1xn_int8 get_a b a_offs b_offs c c_off batch kb nb accs m1 !n;
      n := !n + tile_n
    done;
    for n1 = nfull to nb - 1 do
      edge_int8 get_a b a_offs b_offs c c_off batch kb nb accs m1 n1
    done
  done

let u8s8s32 ~batch ~mb ~nb ~kb ~(a : Buffer.u8_arr) ~a_offs ~b ~b_offs ~c ~c_off =
  int8_core ~get_a:(fun i -> Array1.unsafe_get a i) ~batch ~mb ~nb ~kb ~a_offs
    ~b ~b_offs ~c ~c_off

let s8s8s32 ~batch ~mb ~nb ~kb ~(a : Buffer.s8_arr) ~a_offs ~b ~b_offs ~c ~c_off =
  int8_core ~get_a:(fun i -> Array1.unsafe_get a i) ~batch ~mb ~nb ~kb ~a_offs
    ~b ~b_offs ~c ~c_off

let dispatch ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off =
  (match ((a : Buffer.t), (b : Buffer.t), (c : Buffer.t)) with
  | (F32 a | Bf16 a), (F32 b | Bf16 b), (F32 c | Bf16 c) ->
      f32 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off
  | U8 a, S8 b, S32 c -> u8s8s32 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off
  | S8 a, S8 b, S32 c -> s8s8s32 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off
  | _ ->
      Gc_errors.compile_error ~stage:"microkernel"
        ~ctx:
          [
            ("a", Dtype.to_string (Buffer.dtype a));
            ("b", Dtype.to_string (Buffer.dtype b));
            ("c", Dtype.to_string (Buffer.dtype c));
          ]
        "Brgemm.dispatch: unsupported dtype combination");
  (* chaos hook: a fired "kernel_nan" fault poisons one output element
     after the (correct) computation — the cheapest faithful model of a
     miscompiled kernel, which produces wrong numbers rather than raising.
     Inert (one atomic load) unless GC_FAULTS arms the site. *)
  if Gc_faultinject.nan_check () then
    match (c : Buffer.t) with
    | F32 arr | Bf16 arr ->
        Bigarray.Array1.set arr c_off Float.nan
    | _ ->
        (* integer accumulators cannot hold NaN; poison with a saturated
           sentinel instead *)
        Buffer.set_int c c_off max_int
