open Gc_tensor
open Bigarray

(* The inner loops are written as expert-tuned OCaml: monomorphic Bigarray
   accesses, unsafe indexing, k-runs contiguous for both operands, and an
   M×N register-tiled accumulator block. This module is the repo's
   stand-in for LIBXSMM-style JIT kernels.

   Tiling scheme: the output block is walked in [tile_m × tile_n] register
   tiles. Each tile holds tile_m*tile_n live accumulators (enough
   independent FMA chains to hide the pipeline latency), the A/B row bases
   are hoisted out of the k loop, every A element is reused tile_n times
   and every B element tile_m times from registers, and C is touched
   exactly once per output element — after the *whole* batch reduction —
   instead of once per (batch, element) as a scalar loop would.

   Accumulation order is the contract the differential tests pin down:
   every output element, full-tile or edge, is reduced by a single
   accumulator running batch-outer/k-inner and written back once. That
   makes the kernel bit-identical to a naive single-accumulator reference
   GEMM for every tile decomposition, including the ragged edges. *)

let tile_m = 2
let tile_n = 4

let f32 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off =
  let mfull = mb - (mb mod tile_m) in
  let nfull = nb - (nb mod tile_n) in
  (* scalar 1×1 edge *)
  let edge m n =
    let acc = ref 0. in
    for bi = 0 to batch - 1 do
      let arow = Array.unsafe_get a_offs bi + (m * kb) in
      let brow = Array.unsafe_get b_offs bi + (n * kb) in
      for k = 0 to kb - 1 do
        acc := !acc +. (Array1.unsafe_get a (arow + k) *. Array1.unsafe_get b (brow + k))
      done
    done;
    let ci = c_off + (m * nb) + n in
    Array1.unsafe_set c ci (Array1.unsafe_get c ci +. !acc)
  in
  (* 1×tile_n strip for the ragged last row(s) *)
  let strip1xn m n0 =
    let acc0 = ref 0. and acc1 = ref 0. and acc2 = ref 0. and acc3 = ref 0. in
    for bi = 0 to batch - 1 do
      let arow = Array.unsafe_get a_offs bi + (m * kb) in
      let bo = Array.unsafe_get b_offs bi in
      let br0 = bo + (n0 * kb) in
      let br1 = br0 + kb in
      let br2 = br1 + kb in
      let br3 = br2 + kb in
      for k = 0 to kb - 1 do
        let a0 = Array1.unsafe_get a (arow + k) in
        acc0 := !acc0 +. (a0 *. Array1.unsafe_get b (br0 + k));
        acc1 := !acc1 +. (a0 *. Array1.unsafe_get b (br1 + k));
        acc2 := !acc2 +. (a0 *. Array1.unsafe_get b (br2 + k));
        acc3 := !acc3 +. (a0 *. Array1.unsafe_get b (br3 + k))
      done
    done;
    let ci = c_off + (m * nb) + n0 in
    Array1.unsafe_set c ci (Array1.unsafe_get c ci +. !acc0);
    Array1.unsafe_set c (ci + 1) (Array1.unsafe_get c (ci + 1) +. !acc1);
    Array1.unsafe_set c (ci + 2) (Array1.unsafe_get c (ci + 2) +. !acc2);
    Array1.unsafe_set c (ci + 3) (Array1.unsafe_get c (ci + 3) +. !acc3)
  in
  let m = ref 0 in
  while !m < mfull do
    let m0 = !m in
    let n = ref 0 in
    while !n < nfull do
      let n0 = !n in
      let acc00 = ref 0. and acc01 = ref 0. and acc02 = ref 0. and acc03 = ref 0. in
      let acc10 = ref 0. and acc11 = ref 0. and acc12 = ref 0. and acc13 = ref 0. in
      for bi = 0 to batch - 1 do
        let ao = Array.unsafe_get a_offs bi and bo = Array.unsafe_get b_offs bi in
        let ar0 = ao + (m0 * kb) in
        let ar1 = ar0 + kb in
        let br0 = bo + (n0 * kb) in
        let br1 = br0 + kb in
        let br2 = br1 + kb in
        let br3 = br2 + kb in
        for k = 0 to kb - 1 do
          let a0 = Array1.unsafe_get a (ar0 + k) in
          let a1 = Array1.unsafe_get a (ar1 + k) in
          let b0 = Array1.unsafe_get b (br0 + k) in
          acc00 := !acc00 +. (a0 *. b0);
          acc10 := !acc10 +. (a1 *. b0);
          let b1 = Array1.unsafe_get b (br1 + k) in
          acc01 := !acc01 +. (a0 *. b1);
          acc11 := !acc11 +. (a1 *. b1);
          let b2 = Array1.unsafe_get b (br2 + k) in
          acc02 := !acc02 +. (a0 *. b2);
          acc12 := !acc12 +. (a1 *. b2);
          let b3 = Array1.unsafe_get b (br3 + k) in
          acc03 := !acc03 +. (a0 *. b3);
          acc13 := !acc13 +. (a1 *. b3)
        done
      done;
      let c0 = c_off + (m0 * nb) + n0 in
      let c1 = c0 + nb in
      Array1.unsafe_set c c0 (Array1.unsafe_get c c0 +. !acc00);
      Array1.unsafe_set c (c0 + 1) (Array1.unsafe_get c (c0 + 1) +. !acc01);
      Array1.unsafe_set c (c0 + 2) (Array1.unsafe_get c (c0 + 2) +. !acc02);
      Array1.unsafe_set c (c0 + 3) (Array1.unsafe_get c (c0 + 3) +. !acc03);
      Array1.unsafe_set c c1 (Array1.unsafe_get c c1 +. !acc10);
      Array1.unsafe_set c (c1 + 1) (Array1.unsafe_get c (c1 + 1) +. !acc11);
      Array1.unsafe_set c (c1 + 2) (Array1.unsafe_get c (c1 + 2) +. !acc12);
      Array1.unsafe_set c (c1 + 3) (Array1.unsafe_get c (c1 + 3) +. !acc13);
      n := n0 + tile_n
    done;
    for n1 = nfull to nb - 1 do
      edge m0 n1;
      edge (m0 + 1) n1
    done;
    m := m0 + tile_m
  done;
  for m1 = mfull to mb - 1 do
    let n = ref 0 in
    while !n < nfull do
      strip1xn m1 !n;
      n := !n + tile_n
    done;
    for n1 = nfull to nb - 1 do
      edge m1 n1
    done
  done

(* Integer core, shared by u8×s8 and s8×s8 through [get_a] (A-side loads
   are 2 per k step per tile, so the closure call amortizes over the 8
   MACs; B stays a monomorphic s8 Bigarray access). Integer accumulation
   is exact, so ordering is free — but the structure mirrors [f32]. *)
let int8_core ~get_a ~batch ~mb ~nb ~kb ~a_offs ~b ~b_offs ~(c : Buffer.s32_arr)
    ~c_off =
  let mfull = mb - (mb mod tile_m) in
  let nfull = nb - (nb mod tile_n) in
  let wb ci (acc : int) =
    Array1.unsafe_set c ci (Int32.add (Array1.unsafe_get c ci) (Int32.of_int acc))
  in
  let edge m n =
    let acc = ref 0 in
    for bi = 0 to batch - 1 do
      let arow = Array.unsafe_get a_offs bi + (m * kb) in
      let brow = Array.unsafe_get b_offs bi + (n * kb) in
      for k = 0 to kb - 1 do
        acc := !acc + (get_a (arow + k) * Array1.unsafe_get b (brow + k))
      done
    done;
    wb (c_off + (m * nb) + n) !acc
  in
  let strip1xn m n0 =
    let acc0 = ref 0 and acc1 = ref 0 and acc2 = ref 0 and acc3 = ref 0 in
    for bi = 0 to batch - 1 do
      let arow = Array.unsafe_get a_offs bi + (m * kb) in
      let bo = Array.unsafe_get b_offs bi in
      let br0 = bo + (n0 * kb) in
      let br1 = br0 + kb in
      let br2 = br1 + kb in
      let br3 = br2 + kb in
      for k = 0 to kb - 1 do
        let a0 = get_a (arow + k) in
        acc0 := !acc0 + (a0 * Array1.unsafe_get b (br0 + k));
        acc1 := !acc1 + (a0 * Array1.unsafe_get b (br1 + k));
        acc2 := !acc2 + (a0 * Array1.unsafe_get b (br2 + k));
        acc3 := !acc3 + (a0 * Array1.unsafe_get b (br3 + k))
      done
    done;
    let ci = c_off + (m * nb) + n0 in
    wb ci !acc0;
    wb (ci + 1) !acc1;
    wb (ci + 2) !acc2;
    wb (ci + 3) !acc3
  in
  let m = ref 0 in
  while !m < mfull do
    let m0 = !m in
    let n = ref 0 in
    while !n < nfull do
      let n0 = !n in
      let acc00 = ref 0 and acc01 = ref 0 and acc02 = ref 0 and acc03 = ref 0 in
      let acc10 = ref 0 and acc11 = ref 0 and acc12 = ref 0 and acc13 = ref 0 in
      for bi = 0 to batch - 1 do
        let ao = Array.unsafe_get a_offs bi and bo = Array.unsafe_get b_offs bi in
        let ar0 = ao + (m0 * kb) in
        let ar1 = ar0 + kb in
        let br0 = bo + (n0 * kb) in
        let br1 = br0 + kb in
        let br2 = br1 + kb in
        let br3 = br2 + kb in
        for k = 0 to kb - 1 do
          let a0 = get_a (ar0 + k) in
          let a1 = get_a (ar1 + k) in
          let b0 = Array1.unsafe_get b (br0 + k) in
          acc00 := !acc00 + (a0 * b0);
          acc10 := !acc10 + (a1 * b0);
          let b1 = Array1.unsafe_get b (br1 + k) in
          acc01 := !acc01 + (a0 * b1);
          acc11 := !acc11 + (a1 * b1);
          let b2 = Array1.unsafe_get b (br2 + k) in
          acc02 := !acc02 + (a0 * b2);
          acc12 := !acc12 + (a1 * b2);
          let b3 = Array1.unsafe_get b (br3 + k) in
          acc03 := !acc03 + (a0 * b3);
          acc13 := !acc13 + (a1 * b3)
        done
      done;
      let c0 = c_off + (m0 * nb) + n0 in
      let c1 = c0 + nb in
      wb c0 !acc00;
      wb (c0 + 1) !acc01;
      wb (c0 + 2) !acc02;
      wb (c0 + 3) !acc03;
      wb c1 !acc10;
      wb (c1 + 1) !acc11;
      wb (c1 + 2) !acc12;
      wb (c1 + 3) !acc13;
      n := n0 + tile_n
    done;
    for n1 = nfull to nb - 1 do
      edge m0 n1;
      edge (m0 + 1) n1
    done;
    m := m0 + tile_m
  done;
  for m1 = mfull to mb - 1 do
    let n = ref 0 in
    while !n < nfull do
      strip1xn m1 !n;
      n := !n + tile_n
    done;
    for n1 = nfull to nb - 1 do
      edge m1 n1
    done
  done

let u8s8s32 ~batch ~mb ~nb ~kb ~(a : Buffer.u8_arr) ~a_offs ~b ~b_offs ~c ~c_off =
  int8_core ~get_a:(fun i -> Array1.unsafe_get a i) ~batch ~mb ~nb ~kb ~a_offs
    ~b ~b_offs ~c ~c_off

let s8s8s32 ~batch ~mb ~nb ~kb ~(a : Buffer.s8_arr) ~a_offs ~b ~b_offs ~c ~c_off =
  int8_core ~get_a:(fun i -> Array1.unsafe_get a i) ~batch ~mb ~nb ~kb ~a_offs
    ~b ~b_offs ~c ~c_off

let dispatch ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off =
  match ((a : Buffer.t), (b : Buffer.t), (c : Buffer.t)) with
  | (F32 a | Bf16 a), (F32 b | Bf16 b), (F32 c | Bf16 c) ->
      f32 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off
  | U8 a, S8 b, S32 c -> u8s8s32 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off
  | S8 a, S8 b, S32 c -> s8s8s32 ~batch ~mb ~nb ~kb ~a ~a_offs ~b ~b_offs ~c ~c_off
  | _ ->
      invalid_arg
        (Printf.sprintf "Brgemm.dispatch: unsupported dtype combination %s x %s -> %s"
           (Dtype.to_string (Buffer.dtype a))
           (Dtype.to_string (Buffer.dtype b))
           (Dtype.to_string (Buffer.dtype c)))
