open Gc_tensor
open Gc_tensor_ir
open Ir

type value = I of int | F of float

type t = {
  module_ : Ir.module_;
  globals : (int, Buffer.t) Hashtbl.t;
}

type frame = {
  vars : (int, value) Hashtbl.t;
  bufs : (int, Buffer.t) Hashtbl.t;
}

let create (m : Ir.module_) =
  (match Check.check_module m with
  | Ok () -> ()
  | Error e -> invalid_arg ("Interp.create: ill-formed module: " ^ e));
  let globals = Hashtbl.create 8 in
  List.iter
    (fun (g : tensor) ->
      Hashtbl.replace globals g.tid
        (Buffer.create ~name:g.tname g.tdtype (tensor_numel g)))
    m.globals;
  { module_ = m; globals }

let as_int = function I i -> i | F f -> int_of_float f
let as_float = function F f -> f | I i -> float_of_int i

let strides_of dims =
  let n = Array.length dims in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * dims.(i + 1)
  done;
  s

let rec eval t frame (e : expr) : value =
  match e with
  | Int i -> I i
  | Float f -> F f
  | Var v -> (
      match Hashtbl.find_opt frame.vars v.vid with
      | Some value -> value
      | None -> invalid_arg (Printf.sprintf "Interp: unbound var %s" v.vname))
  | Load (tn, idx) ->
      let buf = buffer_of t frame tn in
      F (Buffer.get buf (offset t frame tn idx))
  | Addr (tn, idx) -> I (offset t frame tn idx)
  | Binop (op, a, b) -> eval_binop t frame op a b
  | Unop (op, a) -> eval_unop t frame op a
  | Cast (dt, a) -> F (Dtype.round_to dt (as_float (eval t frame a)))
  | Select (c, a, b) ->
      if as_int (eval t frame c) <> 0 then eval t frame a else eval t frame b

and offset t frame (tn : tensor) idx =
  let strides = strides_of tn.dims in
  let off = ref 0 in
  Array.iteri
    (fun i e ->
      let v = as_int (eval t frame e) in
      if v < 0 || v >= tn.dims.(i) then
        invalid_arg
          (Printf.sprintf "Interp: index %d out of bounds [0,%d) on %s dim %d"
             v tn.dims.(i) tn.tname i);
      off := !off + (v * strides.(i)))
    idx;
  !off

and buffer_of t frame (tn : tensor) =
  match Hashtbl.find_opt frame.bufs tn.tid with
  | Some b -> b
  | None -> (
      match Hashtbl.find_opt t.globals tn.tid with
      | Some b -> b
      | None -> invalid_arg (Printf.sprintf "Interp: unbound tensor %s" tn.tname))

and eval_binop t frame op a b =
  let va = eval t frame a and vb = eval t frame b in
  match (va, vb, op) with
  | I x, I y, Add -> I (x + y)
  | I x, I y, Sub -> I (x - y)
  | I x, I y, Mul -> I (x * y)
  | I x, I y, Div -> I (x / y)
  | I x, I y, Mod -> I (x mod y)
  | I x, I y, Min -> I (min x y)
  | I x, I y, Max -> I (max x y)
  | I x, I y, And -> I (if x <> 0 && y <> 0 then 1 else 0)
  | I x, I y, Or -> I (if x <> 0 || y <> 0 then 1 else 0)
  | I x, I y, Eq -> I (if x = y then 1 else 0)
  | I x, I y, Ne -> I (if x <> y then 1 else 0)
  | I x, I y, Lt -> I (if x < y then 1 else 0)
  | I x, I y, Le -> I (if x <= y then 1 else 0)
  | I x, I y, Gt -> I (if x > y then 1 else 0)
  | I x, I y, Ge -> I (if x >= y then 1 else 0)
  | _, _, op -> (
      let x = as_float va and y = as_float vb in
      match op with
      | Add -> F (x +. y)
      | Sub -> F (x -. y)
      | Mul -> F (x *. y)
      | Div -> F (x /. y)
      | Mod -> F (Float.rem x y)
      | Min -> F (Float.min x y)
      | Max -> F (Float.max x y)
      | And -> I (if x <> 0. && y <> 0. then 1 else 0)
      | Or -> I (if x <> 0. || y <> 0. then 1 else 0)
      | Eq -> I (if x = y then 1 else 0)
      | Ne -> I (if x <> y then 1 else 0)
      | Lt -> I (if x < y then 1 else 0)
      | Le -> I (if x <= y then 1 else 0)
      | Gt -> I (if x > y then 1 else 0)
      | Ge -> I (if x >= y then 1 else 0))

and eval_unop t frame op a =
  let v = eval t frame a in
  match (op, v) with
  | Neg, I x -> I (-x)
  | Neg, F x -> F (-.x)
  | Abs, I x -> I (abs x)
  | Abs, F x -> F (Float.abs x)
  | Not, v -> I (if as_int v = 0 then 1 else 0)
  | Exp, v -> F (Stdlib.exp (as_float v))
  | Tanh, v -> F (Stdlib.tanh (as_float v))
  | Sqrt, v -> F (Stdlib.sqrt (as_float v))
  | Round, F x -> F (Float.round x)
  | Round, I x -> I x
  | Rcp, v -> F (1. /. as_float v)

let rec exec t frame (s : stmt) : unit =
  match s with
  | Assign (v, e) -> Hashtbl.replace frame.vars v.vid (eval t frame e)
  | Store (tn, idx, e) ->
      let buf = buffer_of t frame tn in
      Buffer.set buf (offset t frame tn idx) (as_float (eval t frame e))
  | Alloc tn ->
      Hashtbl.replace frame.bufs tn.tid
        (Buffer.create ~name:tn.tname tn.tdtype (tensor_numel tn))
  | For l ->
      let lo = as_int (eval t frame l.lo)
      and hi = as_int (eval t frame l.hi)
      and step = as_int (eval t frame l.step) in
      let i = ref lo in
      while !i < hi do
        Hashtbl.replace frame.vars l.v.vid (I !i);
        List.iter (exec t frame) l.body;
        i := !i + step
      done
  | If (c, th, el) ->
      if as_int (eval t frame c) <> 0 then List.iter (exec t frame) th
      else List.iter (exec t frame) el
  | Barrier -> ()
  | Call (name, args) -> exec_call t frame name args

and exec_call t frame name args =
  let addr a =
    match a with
    | Addr (tn, idx) -> (buffer_of t frame tn, offset t frame tn idx)
    | _ -> invalid_arg "Interp: intrinsic operand must be an address"
  in
  match (name, args) with
  | "brgemm", [ batch; mb; nb; kb; a; astride; b; bstride; c ] ->
      let batch = as_int (eval t frame batch)
      and mb = as_int (eval t frame mb)
      and nb = as_int (eval t frame nb)
      and kb = as_int (eval t frame kb) in
      let abuf, a0 = addr a and bbuf, b0 = addr b and cbuf, c0 = addr c in
      let sa = as_int (eval t frame astride) and sb = as_int (eval t frame bstride) in
      (* reference brgemm: element loops through generic accessors *)
      for bi = 0 to batch - 1 do
        let ao = a0 + (bi * sa) and bo = b0 + (bi * sb) in
        for m = 0 to mb - 1 do
          for n = 0 to nb - 1 do
            let acc = ref 0. in
            for k = 0 to kb - 1 do
              acc :=
                !acc
                +. (Buffer.get abuf (ao + (m * kb) + k)
                   *. Buffer.get bbuf (bo + (n * kb) + k))
            done;
            let ci = c0 + (m * nb) + n in
            Buffer.set cbuf ci (Buffer.get cbuf ci +. !acc)
          done
        done
      done
  | "zero", [ a; count ] ->
      let buf, off = addr a in
      Buffer.fill_range buf off (as_int (eval t frame count)) 0.
  | "copy", [ d; s; count ] ->
      let dbuf, doff = addr d and sbuf, soff = addr s in
      Buffer.copy_range ~src:sbuf ~soff ~dst:dbuf ~doff
        (as_int (eval t frame count))
  | _, _ -> (
      match Ir.find_func t.module_ name with
      | Some f ->
          let bufs =
            List.filter_map
              (fun a ->
                match a with Addr (tn, _) -> Some (buffer_of t frame tn) | _ -> None)
              args
          in
          call t f (Array.of_list bufs)
      | None -> invalid_arg (Printf.sprintf "Interp: unknown call %S" name))

and call t (f : func) (params : Buffer.t array) =
  let frame = { vars = Hashtbl.create 32; bufs = Hashtbl.create 32 } in
  let tensor_params =
    List.filter_map (function Ptensor tn -> Some tn | Pvar _ -> None) f.params
  in
  if List.length tensor_params <> Array.length params then
    invalid_arg
      (Printf.sprintf "Interp.call %s: expected %d params, got %d" f.fname
         (List.length tensor_params) (Array.length params));
  List.iteri
    (fun i (tn : tensor) ->
      if Buffer.length params.(i) < tensor_numel tn then
        invalid_arg (Printf.sprintf "Interp.call %s: param %d too small" f.fname i);
      Hashtbl.replace frame.bufs tn.tid params.(i))
    tensor_params;
  List.iter (exec t frame) f.body

let run_func t name params =
  match Ir.find_func t.module_ name with
  | Some f -> call t f params
  | None -> invalid_arg (Printf.sprintf "Interp.run_func: unknown function %S" name)

let run_entry t params = run_func t t.module_.entry params

let run_init t params =
  match t.module_.init with Some i -> run_func t i params | None -> ()

let global_buffer t (g : tensor) =
  match Hashtbl.find_opt t.globals g.tid with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Interp.global_buffer: %s" g.tname)
