(** A fixed pool of OCaml 5 domains used to execute the Tensor IR's
    parallel loops — the runtime substrate standing in for the paper's
    OpenMP-style multi-core kernels.

    Work is self-scheduled: tasks (and [parallel_for] grains) are claimed
    off a shared atomic counter, so fast workers pull extra grains instead
    of idling behind a static partition. The submitter spins only briefly
    on the end-of-section barrier before parking on a condition variable,
    so a straggler does not hot-spin a full core. *)

type t

(** [create n] spawns [n-1] worker domains (the caller participates as the
    n-th worker). [n = 1] gives a sequential pool with zero overhead. *)
val create : int -> t

(** Number of workers (including the caller). *)
val size : t -> int

(** [run pool tasks] executes the thunks, distributing them over the pool,
    and returns when all have completed.

    Fault containment: a task exception is recorded (first one wins, with
    its task index and backtrace), grains of the same job not yet claimed
    are skipped (fast-fail), the barrier still drains, and the caller sees
    a single typed [Gc_errors.Error]: already-typed errors pass through,
    anything else is wrapped as a [Runtime_fault]. When the submitting
    domain has a {!Guard} deadline installed, workers adopt it for the
    job; if the deadline passes while a straggler is still running, the
    barrier is abandoned ([Timeout] is raised instead of hanging) and the
    pool is poisoned — subsequent runs execute inline — until the
    straggler drains, at which point the pool recovers.

    Nested [run] on the same pool from inside a task executes inline
    (sequentially) to avoid deadlock; inline execution applies the same
    containment contract. *)
val run : t -> (unit -> unit) array -> unit

(** Is the pool currently poisoned (an abandoned job is still draining)?
    A poisoned pool remains serviceable: runs fall back to inline
    execution until it recovers. *)
val is_poisoned : t -> bool

(** Number of task failures this pool has contained (including abandoned
    barriers) over its lifetime. *)
val faults_survived : t -> int

(** {2 Supervision surface}

    A pool handle survives the failure of its worker domains: supervision
    ({!Gc_supervise}) watches the accessors below and calls
    {!reincarnate} to replace the worker complement {e behind the same
    handle}, so everything holding the pool (the engine's execution
    environments, the serve tier) heals without re-plumbing. *)

(** Current incarnation number (0 at creation, +1 per {!reincarnate}). *)
val epoch : t -> int

(** Worker domains of the current incarnation that exited uncleanly (an
    exception escaped the worker loop — e.g. the [worker_death] fault
    site). Reset to 0 by {!reincarnate}. *)
val dead_workers : t -> int

(** Seconds the pool has been continuously poisoned, or [0.] when
    healthy — the input to the reincarnation grace period. *)
val poisoned_for : t -> float

(** Seconds since each worker slot last stamped its heartbeat (stamped at
    job pickup and job completion). Large ages are only meaningful while
    a job is in flight: parked idle workers do not beat. *)
val heartbeat_ages : t -> float array

(** [reincarnate pool] replaces the worker complement with a fresh set of
    domains behind the same handle: the incarnation epoch is bumped (the
    exit signal for old workers), the abandoned job — if any — is
    discarded, and poisoned/death state is reset. A straggler from the
    old incarnation may still be draining; its late barrier release is
    discarded by an epoch check, so it cannot corrupt the fresh pool.
    Returns [false] without acting when the pool is mid-flight on a
    healthy job (try again later), sequential ([n = 1]), or shut down.
    Old domains are joined at {!shutdown}. *)
val reincarnate : t -> bool

(** [parallel_for pool ~lo ~hi f] splits [lo, hi) into grains and runs
    [f grain_lo grain_hi] for each, self-scheduled across the pool.
    [?grain] fixes the grain size (must be ≥ 1); by default the range is
    cut into roughly 4 grains per worker so uneven grain runtimes are
    rebalanced while per-grain dispatch stays negligible. *)
val parallel_for : ?grain:int -> t -> lo:int -> hi:int -> (int -> int -> unit) -> unit

(** Shut the pool down. Further [run]s raise. *)
val shutdown : t -> unit

(** [threads_of_env s] parses a [GC_NUM_THREADS] value: the integer in [s]
    clamped to [1, 128], or [None] if [s] is not an integer. Exposed for
    tests. *)
val threads_of_env : string -> int option

(** A lazily-created default pool: [GC_NUM_THREADS] (clamped) when set,
    otherwise sized to the machine. Registers an [at_exit] shutdown so the
    worker domains do not leak at program exit. *)
val default : unit -> t
