(* A failed task is recorded with enough context to surface a single
   typed [Runtime_fault]: the originating exception, its backtrace, and
   the task index that raised it. *)
type fail = {
  f_exn : exn;
  f_bt : Printexc.raw_backtrace;
  f_task : int;
}

type job = {
  tasks : (unit -> unit) array;
  next : int Atomic.t;
  pending : int Atomic.t;
  failure : fail option Atomic.t;
  abandoned : bool Atomic.t;
      (* submitter gave up on the barrier (deadline overrun) *)
  released : bool Atomic.t;
      (* the pool's [in_run] slot has been released for this job *)
  j_epoch : int;
      (* pool incarnation this job was submitted against; a release from
         an older incarnation is discarded (see [release_pool]) *)
  deadline : Guard.deadline option;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
}

type t = {
  n : int;
  mutable domains : unit Domain.t list;
  mutable zombies : unit Domain.t list;
      (* superseded incarnations' domains, joined at [shutdown] *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable current : job option;
  mutable generation : int;
  mutable epoch : int;  (* incarnation; bumped by [reincarnate] *)
  mutable stop : bool;
  in_run : bool Atomic.t;  (* re-entrancy guard *)
  poisoned : bool Atomic.t;
      (* an abandoned job is still draining; runs fall back to inline *)
  mutable poisoned_since : float;  (* wall clock at poisoning, else 0. *)
  dead : int Atomic.t;  (* workers of the current epoch that died uncleanly *)
  heartbeats : float Atomic.t array;  (* per-slot wall-clock stamps *)
  faults : int Atomic.t;  (* contained task failures, ever *)
}

let is_poisoned t = Atomic.get t.poisoned
let faults_survived t = Atomic.get t.faults
let epoch t = t.epoch
let dead_workers t = Atomic.get t.dead

let poisoned_for t =
  if Atomic.get t.poisoned && t.poisoned_since > 0. then
    Unix.gettimeofday () -. t.poisoned_since
  else 0.

let heartbeat_ages t =
  let now = Unix.gettimeofday () in
  Array.map (fun hb -> now -. Atomic.get hb) t.heartbeats

(* Exactly-once release of the pool after a job: on the normal path the
   submitter releases; when the submitter abandoned the barrier on a
   deadline overrun, the worker that drains the last grain does, which is
   also the moment the pool transitions poisoned -> recovered. A release
   from a job submitted against an older incarnation is discarded — after
   a reincarnation the fresh pool owns [in_run]/[poisoned], and a late
   straggler's write must not clobber it (the epoch-discard rule). *)
let release_pool t job =
  if Atomic.compare_and_set job.released false true then begin
    Mutex.lock t.mutex;
    let live = job.j_epoch = t.epoch in
    if live && t.current == Some job then t.current <- None;
    Mutex.unlock t.mutex;
    if live then begin
      Atomic.set t.poisoned false;
      t.poisoned_since <- 0.;
      Atomic.set t.in_run false
    end
  end

(* Grains are claimed off a shared atomic counter, so a worker that
   finishes early keeps pulling work instead of idling behind a static
   partition. A task exception is contained: it is recorded (first one
   wins, with task index and backtrace), remaining unclaimed grains are
   skipped (fast-fail), the [pending] slots still drain so the barrier
   releases, and the submitter surfaces it as one typed error. *)
let work_off ~stealing t job =
  Guard.adopt job.deadline @@ fun () ->
  let n = Array.length job.tasks in
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < n then begin
      (if Atomic.get job.failure = None then
         try
           Gc_faultinject.slow_check ();
           Gc_faultinject.worker_check ~task:i;
           Guard.check ();
           job.tasks.(i) ();
           if stealing then Gc_observe.Counters.task_stolen ()
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           if
             Atomic.compare_and_set job.failure None
               (Some { f_exn = e; f_bt = bt; f_task = i })
           then Gc_observe.Counters.worker_fault ());
      (if Atomic.fetch_and_add job.pending (-1) = 1 then begin
         (* last grain: recover an abandoned pool, wake the submitter if
            it is still parked *)
         if Atomic.get job.abandoned then release_pool t job;
         Mutex.lock job.done_mutex;
         Condition.broadcast job.done_cond;
         Mutex.unlock job.done_mutex
       end);
      loop ()
    end
  in
  loop ()

(* Workers are bound to the incarnation they were spawned for: an epoch
   bump (reincarnation) is an exit signal, checked both in the wait
   predicate and at the loop top, so superseded domains drain their
   current grains and leave instead of competing with the fresh pool. *)
let worker t ~slot ~epoch =
  let seen = ref 0 in
  let beat () =
    if slot < Array.length t.heartbeats then
      Atomic.set t.heartbeats.(slot) (Unix.gettimeofday ())
  in
  let rec loop () =
    Mutex.lock t.mutex;
    while
      (not t.stop) && t.epoch = epoch
      && (t.generation = !seen || t.current = None)
    do
      Condition.wait t.cond t.mutex
    done;
    if t.stop || t.epoch <> epoch then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let job = Option.get t.current in
      Mutex.unlock t.mutex;
      beat ();
      (* Supervision fault sites, at the job boundary only: no grain has
         been claimed and no lock is held, so a death here shrinks the
         pool without wedging the barrier (survivors and the submitter
         self-schedule the whole job), and a stuck spin here stalls the
         heartbeat without stalling the job. *)
      Gc_faultinject.stuck_worker_check ();
      Gc_faultinject.worker_death_check ();
      work_off ~stealing:true t job;
      beat ();
      loop ()
    end
  in
  loop ()

(* The spawn wrapper is the death detector: a worker body may only exit
   via clean return (stop / epoch bump); anything escaping — including an
   injected [worker_death] — is recorded as an unclean domain death for
   supervision to react to. *)
let spawn_worker t ~slot ~epoch =
  Domain.spawn (fun () ->
      try worker t ~slot ~epoch
      with e ->
        Atomic.incr t.dead;
        Gc_observe.Events.record ~kind:"pool_worker_death"
          ~component:(Printf.sprintf "pool:w%d" slot)
          (Printexc.to_string e))

let create n =
  if n < 1 then
    Gc_errors.invalid_input
      ~ctx:[ ("requested", string_of_int n) ]
      "Parallel.create: need at least one worker";
  let now = Unix.gettimeofday () in
  let t =
    {
      n;
      domains = [];
      zombies = [];
      mutex = Mutex.create ();
      cond = Condition.create ();
      current = None;
      generation = 0;
      epoch = 0;
      stop = false;
      in_run = Atomic.make false;
      poisoned = Atomic.make false;
      poisoned_since = 0.;
      dead = Atomic.make 0;
      heartbeats = Array.init (n - 1) (fun _ -> Atomic.make now);
      faults = Atomic.make 0;
    }
  in
  t.domains <-
    List.init (n - 1) (fun slot -> spawn_worker t ~slot ~epoch:0);
  t

(* Replace a pool's worker complement behind the same handle: bump the
   epoch (the exit signal for the old incarnation), discard the abandoned
   job, and spawn a fresh set of workers. Returns [false] without acting
   when the pool is mid-flight on a healthy (non-abandoned) job — the
   monitor retries on its next tick — or already stopped. The old domains
   become zombies joined at [shutdown]; any late [release_pool] they
   perform is epoch-discarded. *)
let reincarnate t =
  if t.n = 1 then false
  else begin
    Mutex.lock t.mutex;
    let busy = Atomic.get t.in_run && not (Atomic.get t.poisoned) in
    if t.stop || busy then begin
      Mutex.unlock t.mutex;
      false
    end
    else begin
      t.epoch <- t.epoch + 1;
      let epoch = t.epoch in
      t.zombies <- t.domains @ t.zombies;
      t.current <- None;
      (* count before clearing the poison flag: an observer that reads
         the pool as healed must already see the reincarnation counted *)
      Gc_observe.Counters.pool_reincarnated ();
      Atomic.set t.poisoned false;
      t.poisoned_since <- 0.;
      Atomic.set t.dead 0;
      let now = Unix.gettimeofday () in
      Array.iter (fun hb -> Atomic.set hb now) t.heartbeats;
      Atomic.set t.in_run false;
      t.domains <-
        List.init (t.n - 1) (fun slot -> spawn_worker t ~slot ~epoch);
      (* wake parked old-epoch workers so they observe the bump and exit *)
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      Gc_observe.Events.record ~kind:"pool_reincarnate" ~component:"pool"
        (Printf.sprintf "fresh incarnation, epoch %d" epoch);
      true
    end
  end

let size t = t.n

(* Surface a recorded task failure as a single typed error. Already-typed
   errors (e.g. an injected Resource_exhausted, or a Timeout raised at a
   cooperative check) pass through unchanged; anything else is wrapped as
   a [Runtime_fault] carrying the task index and backtrace. *)
let reraise_failure t { f_exn; f_bt; f_task } =
  Atomic.incr t.faults;
  match f_exn with
  | Gc_errors.Error _ -> Printexc.raise_with_backtrace f_exn f_bt
  | e ->
      Gc_observe.Counters.runtime_fault ();
      Gc_errors.runtime_fault ~site:"parallel" ~task:f_task
        ~backtrace:(Printexc.raw_backtrace_to_string f_bt)
        ~ctx:[ ("tasks", "pool") ]
        (Printexc.to_string e)

(* Inline execution (sequential pool, nested run, poisoned pool) applies
   the same containment contract: the same fault-injection probes fire and
   foreign exceptions surface as one typed Runtime_fault. *)
let run_inline t tasks =
  Array.iteri
    (fun i f ->
      try
        Gc_faultinject.slow_check ();
        Gc_faultinject.worker_check ~task:i;
        Guard.check ();
        f ()
      with
      | Gc_errors.Error _ as e ->
          Atomic.incr t.faults;
          Gc_observe.Counters.worker_fault ();
          raise e
      | e ->
          let bt = Printexc.get_raw_backtrace () in
          Atomic.incr t.faults;
          Gc_observe.Counters.worker_fault ();
          Gc_observe.Counters.runtime_fault ();
          Gc_errors.runtime_fault ~site:"parallel(inline)" ~task:i
            ~backtrace:(Printexc.raw_backtrace_to_string bt)
            (Printexc.to_string e))
    tasks

(* How long the submitter spins on the straggler barrier before parking on
   the job's condition variable. The common case (workers finish within a
   task's length of each other) stays on the fast spin path; a long
   straggler no longer pins the submitting core at 100%. *)
let barrier_spins = 2_000

let run t tasks =
  if Array.length tasks = 0 then ()
  else begin
  Gc_observe.Counters.parallel_section ();
  Gc_observe.Counters.tasks (Array.length tasks);
  if t.n = 1 || not (Atomic.compare_and_set t.in_run false true) then begin
    (* sequential pool, nested run from inside a task, or a poisoned pool
       still draining an abandoned job: execute inline *)
    (if Atomic.get t.poisoned then begin
       (* the poisoned-pool perf cliff must be diagnosable from counters
          and the event ring alone, not just visible as low throughput *)
       Gc_observe.Counters.pool_inline_run ();
       Gc_observe.Events.record ~kind:"pool_inline_run" ~component:"pool"
         (Printf.sprintf "%d tasks ran inline on a poisoned pool"
            (Array.length tasks))
     end);
    run_inline t tasks
  end
  else begin
    let deadline = Guard.current () in
    (* the job is stamped with the pool's epoch under the mutex, so a
       reincarnation serializes either wholly before (job joins the fresh
       incarnation) or wholly after this submission *)
    Mutex.lock t.mutex;
    let job =
      {
        tasks;
        next = Atomic.make 0;
        pending = Atomic.make (Array.length tasks);
        failure = Atomic.make None;
        abandoned = Atomic.make false;
        released = Atomic.make false;
        j_epoch = t.epoch;
        deadline;
        done_mutex = Mutex.create ();
        done_cond = Condition.create ();
      }
    in
    t.current <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    (* submitter participates; its own Timeout is contained like any
       other task failure so the barrier still drains *)
    work_off ~stealing:false t job;
    (* straggler barrier: spin briefly, then back off to a condvar sleep *)
    let spins = ref 0 in
    while Atomic.get job.pending > 0 && !spins < barrier_spins do
      Domain.cpu_relax ();
      incr spins
    done;
    let deadline_expired () =
      match deadline with Some d -> Guard.expired d | None -> false
    in
    if Atomic.get job.pending > 0 then begin
      (match deadline with
      | Some _ -> Guard.register_waiter job.done_mutex job.done_cond
      | None -> ());
      Mutex.lock job.done_mutex;
      while Atomic.get job.pending > 0 && not (deadline_expired ()) do
        Condition.wait job.done_cond job.done_mutex
      done;
      Mutex.unlock job.done_mutex;
      (match deadline with
      | Some _ -> Guard.unregister_waiter job.done_mutex
      | None -> ())
    end;
    if Atomic.get job.pending > 0 then begin
      (* Deadline overrun with a straggler still running: the watchdog
         abandons the barrier rather than hang. The pool is poisoned —
         subsequent runs fall back to inline execution — and recovers when
         the straggler drains the last grain (see [work_off]). *)
      Atomic.set t.poisoned true;
      t.poisoned_since <- Unix.gettimeofday ();
      Atomic.set job.abandoned true;
      if Atomic.get job.pending = 0 then
        (* drained in the same instant; nothing left to recover *)
        release_pool t job;
      Gc_observe.Counters.barrier ();
      Atomic.incr t.faults;
      match deadline with
      | Some d ->
          Gc_errors.timeout ~site:d.Guard.dl_site
            ~timeout_ms:d.Guard.dl_timeout_ms
            ~ctx:[ ("barrier", "abandoned") ]
            ()
      | None -> assert false
    end
    else begin
      release_pool t job;
      Gc_observe.Counters.barrier ();
      match Atomic.get job.failure with
      | Some f -> reraise_failure t f
      | None -> ()
    end
  end
  end

(* Target grains per worker when no explicit grain is given: enough slack
   for the self-scheduler to absorb uneven grain runtimes, few enough that
   per-grain dispatch stays negligible. *)
let grains_per_worker = 4

let parallel_for ?grain t ~lo ~hi f =
  let total = hi - lo in
  if total <= 0 then ()
  else begin
    let grain =
      match grain with
      | Some g ->
          if g < 1 then
            Gc_errors.invalid_input
              ~ctx:[ ("grain", string_of_int g) ]
              "Parallel.parallel_for: grain must be >= 1";
          g
      | None -> max 1 (total / (grains_per_worker * t.n))
    in
    let n_grains = (total + grain - 1) / grain in
    let tasks =
      Array.init n_grains (fun g ->
          let start = lo + (g * grain) in
          let stop = min hi (start + grain) in
          fun () -> f start stop)
    in
    run t tasks
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  let ds = t.domains @ t.zombies in
  t.domains <- [];
  t.zombies <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join ds

let default_pool = ref None

(* GC_NUM_THREADS overrides the machine-derived default; values are clamped
   to [1, 128] so a stray setting cannot oversubscribe the host into
   unusability or underflow to an invalid pool. *)
let threads_of_env s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Some (max 1 (min 128 v))
  | None -> None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let n =
        match Option.bind (Sys.getenv_opt "GC_NUM_THREADS") threads_of_env with
        | Some n -> n
        | None -> max 1 (min 16 (Domain.recommended_domain_count () - 1))
      in
      let p = create n in
      default_pool := Some p;
      (* worker domains must not leak past program exit *)
      at_exit (fun () ->
          match !default_pool with
          | Some p ->
              default_pool := None;
              shutdown p
          | None -> ());
      p
