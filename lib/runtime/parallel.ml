type job = {
  tasks : (unit -> unit) array;
  next : int Atomic.t;
  pending : int Atomic.t;
  failure : exn option Atomic.t;
}

type t = {
  n : int;
  mutable domains : unit Domain.t list;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable current : job option;
  mutable generation : int;
  mutable stop : bool;
  in_run : bool Atomic.t;  (* re-entrancy guard *)
}

let work_off job =
  let n = Array.length job.tasks in
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < n then begin
      (try job.tasks.(i) ()
       with e -> ignore (Atomic.compare_and_set job.failure None (Some e)));
      ignore (Atomic.fetch_and_add job.pending (-1));
      loop ()
    end
  in
  loop ()

let worker t =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && (t.generation = !seen || t.current = None) do
      Condition.wait t.cond t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let job = Option.get t.current in
      Mutex.unlock t.mutex;
      work_off job;
      loop ()
    end
  in
  loop ()

let create n =
  if n < 1 then invalid_arg "Parallel.create: need at least one worker";
  let t =
    {
      n;
      domains = [];
      mutex = Mutex.create ();
      cond = Condition.create ();
      current = None;
      generation = 0;
      stop = false;
      in_run = Atomic.make false;
    }
  in
  t.domains <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.n

let run_inline tasks = Array.iter (fun f -> f ()) tasks

let run t tasks =
  if Array.length tasks = 0 then ()
  else begin
  Gc_observe.Counters.parallel_section ();
  Gc_observe.Counters.tasks (Array.length tasks);
  if t.n = 1 || not (Atomic.compare_and_set t.in_run false true) then
    (* sequential pool, or nested run from inside a task: execute inline *)
    run_inline tasks
  else begin
    let job =
      {
        tasks;
        next = Atomic.make 0;
        pending = Atomic.make (Array.length tasks);
        failure = Atomic.make None;
      }
    in
    Mutex.lock t.mutex;
    t.current <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    (* caller participates *)
    work_off job;
    (* wait for stragglers *)
    while Atomic.get job.pending > 0 do
      Domain.cpu_relax ()
    done;
    Mutex.lock t.mutex;
    t.current <- None;
    Mutex.unlock t.mutex;
    Atomic.set t.in_run false;
    Gc_observe.Counters.barrier ();
    match Atomic.get job.failure with Some e -> raise e | None -> ()
  end
  end

let parallel_for t ~lo ~hi f =
  let total = hi - lo in
  if total <= 0 then ()
  else begin
    let chunks = min t.n total in
    let base = total / chunks and rem = total mod chunks in
    let tasks =
      Array.init chunks (fun c ->
          let extra = min c rem in
          let start = lo + (c * base) + extra in
          let len = base + (if c < rem then 1 else 0) in
          fun () -> f start (start + len))
    in
    run t tasks
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let n = max 1 (min 16 (Domain.recommended_domain_count () - 1)) in
      let p = create n in
      default_pool := Some p;
      p
