type job = {
  tasks : (unit -> unit) array;
  next : int Atomic.t;
  pending : int Atomic.t;
  failure : exn option Atomic.t;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
}

type t = {
  n : int;
  mutable domains : unit Domain.t list;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable current : job option;
  mutable generation : int;
  mutable stop : bool;
  in_run : bool Atomic.t;  (* re-entrancy guard *)
}

(* Grains are claimed off a shared atomic counter, so a worker that
   finishes early keeps pulling work instead of idling behind a static
   partition. Once a task has failed, the remaining unclaimed grains of
   the job are skipped (fast-fail) — their [pending] slots are still
   drained so the barrier releases — and the first exception is re-raised
   by the submitter after the barrier. *)
let work_off ~stealing job =
  let n = Array.length job.tasks in
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < n then begin
      (if Atomic.get job.failure = None then
         try
           job.tasks.(i) ();
           if stealing then Gc_observe.Counters.task_stolen ()
         with e -> ignore (Atomic.compare_and_set job.failure None (Some e)));
      (if Atomic.fetch_and_add job.pending (-1) = 1 then begin
         (* last grain: wake the submitter if it went to sleep *)
         Mutex.lock job.done_mutex;
         Condition.broadcast job.done_cond;
         Mutex.unlock job.done_mutex
       end);
      loop ()
    end
  in
  loop ()

let worker t =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && (t.generation = !seen || t.current = None) do
      Condition.wait t.cond t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let job = Option.get t.current in
      Mutex.unlock t.mutex;
      work_off ~stealing:true job;
      loop ()
    end
  in
  loop ()

let create n =
  if n < 1 then invalid_arg "Parallel.create: need at least one worker";
  let t =
    {
      n;
      domains = [];
      mutex = Mutex.create ();
      cond = Condition.create ();
      current = None;
      generation = 0;
      stop = false;
      in_run = Atomic.make false;
    }
  in
  t.domains <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.n

let run_inline tasks = Array.iter (fun f -> f ()) tasks

(* How long the submitter spins on the straggler barrier before parking on
   the job's condition variable. The common case (workers finish within a
   task's length of each other) stays on the fast spin path; a long
   straggler no longer pins the submitting core at 100%. *)
let barrier_spins = 2_000

let run t tasks =
  if Array.length tasks = 0 then ()
  else begin
  Gc_observe.Counters.parallel_section ();
  Gc_observe.Counters.tasks (Array.length tasks);
  if t.n = 1 || not (Atomic.compare_and_set t.in_run false true) then
    (* sequential pool, or nested run from inside a task: execute inline *)
    run_inline tasks
  else begin
    let job =
      {
        tasks;
        next = Atomic.make 0;
        pending = Atomic.make (Array.length tasks);
        failure = Atomic.make None;
        done_mutex = Mutex.create ();
        done_cond = Condition.create ();
      }
    in
    Mutex.lock t.mutex;
    t.current <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    (* submitter participates *)
    work_off ~stealing:false job;
    (* straggler barrier: spin briefly, then back off to a condvar sleep *)
    let spins = ref 0 in
    while Atomic.get job.pending > 0 && !spins < barrier_spins do
      Domain.cpu_relax ();
      incr spins
    done;
    if Atomic.get job.pending > 0 then begin
      Mutex.lock job.done_mutex;
      while Atomic.get job.pending > 0 do
        Condition.wait job.done_cond job.done_mutex
      done;
      Mutex.unlock job.done_mutex
    end;
    Mutex.lock t.mutex;
    t.current <- None;
    Mutex.unlock t.mutex;
    Atomic.set t.in_run false;
    Gc_observe.Counters.barrier ();
    match Atomic.get job.failure with Some e -> raise e | None -> ()
  end
  end

(* Target grains per worker when no explicit grain is given: enough slack
   for the self-scheduler to absorb uneven grain runtimes, few enough that
   per-grain dispatch stays negligible. *)
let grains_per_worker = 4

let parallel_for ?grain t ~lo ~hi f =
  let total = hi - lo in
  if total <= 0 then ()
  else begin
    let grain =
      match grain with
      | Some g ->
          if g < 1 then invalid_arg "Parallel.parallel_for: grain must be >= 1";
          g
      | None -> max 1 (total / (grains_per_worker * t.n))
    in
    let n_grains = (total + grain - 1) / grain in
    let tasks =
      Array.init n_grains (fun g ->
          let start = lo + (g * grain) in
          let stop = min hi (start + grain) in
          fun () -> f start stop)
    in
    run t tasks
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let default_pool = ref None

(* GC_NUM_THREADS overrides the machine-derived default; values are clamped
   to [1, 128] so a stray setting cannot oversubscribe the host into
   unusability or underflow to an invalid pool. *)
let threads_of_env s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Some (max 1 (min 128 v))
  | None -> None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let n =
        match Option.bind (Sys.getenv_opt "GC_NUM_THREADS") threads_of_env with
        | Some n -> n
        | None -> max 1 (min 16 (Domain.recommended_domain_count () - 1))
      in
      let p = create n in
      default_pool := Some p;
      (* worker domains must not leak past program exit *)
      at_exit (fun () ->
          match !default_pool with
          | Some p ->
              default_pool := None;
              shutdown p
          | None -> ());
      p
