(* Watchdog: per-execute deadline enforcement. See guard.mli. *)

type deadline = { dl_abs : float; dl_timeout_ms : int; dl_site : string }

let env_timeout_ms () =
  match Sys.getenv_opt "GC_EXEC_TIMEOUT_MS" with
  | None | Some "" -> None
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ -> Some 1
    | None -> None)

(* Per-domain active deadline. Workers adopt the submitter's deadline for
   the duration of one job (Parallel), so this is readable from any domain
   participating in a guarded execute. *)
let active : deadline option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get active)

let expired d = Unix.gettimeofday () > d.dl_abs

(* ---- monitor thread --------------------------------------------------- *)
(* Installed deadlines are mirrored into a global registry so one monitor
   thread can tell whether any deadline is expired, and while one is, it
   broadcasts registered barrier condvars so parked submitters wake up and
   re-check their predicate.  The monitor retires itself as soon as there
   is nothing left to watch: a domain cannot terminate while a thread it
   spawned is alive, and deadlines may be installed from short-lived
   worker domains (the serving layer joins its workers on shutdown), so a
   parked-forever monitor would wedge Domain.join. The next install
   spawns a fresh one. *)

let mon_mutex = Mutex.create ()
let installed : deadline list ref = ref []
let waiters : (Mutex.t * Condition.t) list ref = ref []
let monitor_started = ref false

let any_expired now l = List.exists (fun d -> now > d.dl_abs) l

let monitor_loop () =
  let rec loop () =
    Mutex.lock mon_mutex;
    if !installed = [] then begin
      (* retire under the lock: install either sees started=false and
         spawns a replacement, or we observe its deadline and keep going *)
      monitor_started := false;
      Mutex.unlock mon_mutex
    end
    else begin
      let guards = !installed and parked = !waiters in
      Mutex.unlock mon_mutex;
      let now = Unix.gettimeofday () in
      if any_expired now guards then
        List.iter
          (fun (m, c) ->
            Mutex.lock m;
            Condition.broadcast c;
            Mutex.unlock m)
          parked;
      (* 1ms resolution is plenty: deadlines are >= 1ms and the monitor
         only bounds how late a parked submitter notices an overrun. *)
      Thread.delay 0.001;
      loop ()
    end
  in
  loop ()

let ensure_monitor () =
  (* called with mon_mutex held *)
  if not !monitor_started then begin
    monitor_started := true;
    ignore (Thread.create monitor_loop ())
  end

let install d =
  Mutex.lock mon_mutex;
  installed := d :: !installed;
  ensure_monitor ();
  Mutex.unlock mon_mutex

let uninstall d =
  Mutex.lock mon_mutex;
  let removed = ref false in
  installed :=
    List.filter
      (fun d' ->
        if (not !removed) && d' == d then (
          removed := true;
          false)
        else true)
      !installed;
  Mutex.unlock mon_mutex

let register_waiter m c =
  Mutex.lock mon_mutex;
  waiters := (m, c) :: !waiters;
  Mutex.unlock mon_mutex

let unregister_waiter m =
  Mutex.lock mon_mutex;
  let removed = ref false in
  waiters :=
    List.filter
      (fun (m', _) ->
        if (not !removed) && m' == m then (
          removed := true;
          false)
        else true)
      !waiters;
  Mutex.unlock mon_mutex

(* ---- cooperative check + scoped installation -------------------------- *)

let raise_timeout d =
  Gc_errors.timeout ~site:d.dl_site ~timeout_ms:d.dl_timeout_ms
    ~ctx:[ ("deadline_abs", Printf.sprintf "%.6f" d.dl_abs) ]
    ()

let check () =
  match !(Domain.DLS.get active) with
  | None -> ()
  | Some d -> if expired d then raise_timeout d

let adopt d f =
  let slot = Domain.DLS.get active in
  let saved = !slot in
  slot := d;
  Fun.protect ~finally:(fun () -> slot := saved) f

let with_deadline ~timeout_ms ~site f =
  let now = Unix.gettimeofday () in
  let abs = now +. (float_of_int timeout_ms /. 1000.) in
  let slot = Domain.DLS.get active in
  let saved = !slot in
  (* nested deadlines compose: keep the earlier absolute deadline *)
  let d =
    match saved with
    | Some p when p.dl_abs <= abs -> p
    | _ -> { dl_abs = abs; dl_timeout_ms = timeout_ms; dl_site = site }
  in
  slot := Some d;
  install d;
  let finish () =
    slot := saved;
    uninstall d
  in
  match f () with
  | v ->
      let late = expired d in
      finish ();
      if late then begin
        Gc_observe.Counters.timeout ();
        raise_timeout d
      end;
      v
  | exception Gc_errors.Error (Gc_errors.Timeout _) ->
      finish ();
      Gc_observe.Counters.timeout ();
      raise_timeout d
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt
