open Gc_tensor
open Gc_tensor_ir
open Ir

(* Runtime environment. Scalar variables live in slot arrays; tensors bind
   buffers into [bufs] by compile-time slot. Parallel regions clone the
   arrays (cheap) so loop variables and thread-local Allocs don't race;
   buffer *contents* stay shared, which is exactly the shared-memory
   semantics of the template's parallel loops. *)
type env = {
  ints : int array;
  floats : float array;
  bufs : Buffer.t array;
}

let clone_env e =
  { ints = Array.copy e.ints; floats = Array.copy e.floats; bufs = Array.copy e.bufs }

(* Per-worker scratch environments for parallel regions. Each parallel For
   site compiles to a closure holding a Domain.DLS key; every domain that
   executes grains of that loop keeps one cached env and refreshes it from
   the submitting env by blitting (no allocation) at each grain. [busy]
   guards re-entrant inline execution of the same loop site (e.g. through
   a recursive function call), which falls back to a fresh clone. A cached
   env retains the buffers of the last region it ran until the site is
   next executed on that domain — slot counts are per-function, so sizes
   always match. *)
type scratch = { senv : env; mutable busy : bool }

let refresh_scratch ~from s =
  Array.blit from.ints 0 s.senv.ints 0 (Array.length from.ints);
  Array.blit from.floats 0 s.senv.floats 0 (Array.length from.floats);
  Array.blit from.bufs 0 s.senv.bufs 0 (Array.length from.bufs)

let borrow_scratch key env =
  match Domain.DLS.get key with
  | Some s when not s.busy ->
      s.busy <- true;
      refresh_scratch ~from:env s;
      Gc_observe.Counters.env_reused ();
      s
  | cached ->
      let s = { senv = clone_env env; busy = true } in
      (match cached with None -> Domain.DLS.set key (Some s) | Some _ -> ());
      s

(* Compile-time slot assignment for one function. *)
type ctx = {
  var_slots : (int, int) Hashtbl.t;  (* var id -> slot (ints or floats) *)
  tensor_slots : (int, int) Hashtbl.t;  (* tensor id -> bufs slot *)
  mutable n_ints : int;
  mutable n_floats : int;
  mutable n_bufs : int;
  mutable global_binds : (int * Ir.tensor) list;  (* slot, global tensor *)
}

let new_ctx () =
  {
    var_slots = Hashtbl.create 32;
    tensor_slots = Hashtbl.create 32;
    n_ints = 0;
    n_floats = 0;
    n_bufs = 0;
    global_binds = [];
  }

let is_int_ty = function Index | Boolean -> true | Scalar _ -> false

let var_slot ctx (v : var) =
  match Hashtbl.find_opt ctx.var_slots v.vid with
  | Some s -> s
  | None ->
      let s =
        if is_int_ty v.vty then begin
          let s = ctx.n_ints in
          ctx.n_ints <- s + 1;
          s
        end
        else begin
          let s = ctx.n_floats in
          ctx.n_floats <- s + 1;
          s
        end
      in
      Hashtbl.add ctx.var_slots v.vid s;
      s

let tensor_slot ctx (t : tensor) =
  match Hashtbl.find_opt ctx.tensor_slots t.tid with
  | Some s -> s
  | None ->
      let s = ctx.n_bufs in
      ctx.n_bufs <- s + 1;
      Hashtbl.add ctx.tensor_slots t.tid s;
      (match t.storage with
      | Global -> ctx.global_binds <- (s, t) :: ctx.global_binds
      | Param | Local -> ());
      s

(* Expression typing: int (index/bool) vs float (value). *)
let rec is_int_expr = function
  | Int _ -> true
  | Float _ -> false
  | Var v -> is_int_ty v.vty
  | Load _ -> false
  | Addr _ -> true (* addresses are offsets; only valid in intrinsic args *)
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> true
  | Binop ((Mod | Div | Add | Sub | Mul | Min | Max), a, b) ->
      is_int_expr a && is_int_expr b
  | Unop ((Exp | Tanh | Sqrt | Rcp), _) -> false
  | Unop ((Neg | Abs | Round), a) -> is_int_expr a
  | Unop (Not, _) -> true
  | Cast (_, _) -> false
  | Select (_, a, b) -> is_int_expr a && is_int_expr b

(* Row-major strides for a dims vector. *)
let strides_of dims =
  let n = Array.length dims in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * dims.(i + 1)
  done;
  s

let rec cint ctx (e : expr) : env -> int =
  match e with
  | Int i -> fun _ -> i
  | Float f ->
      let i = int_of_float f in
      fun _ -> i
  | Var v ->
      let s = var_slot ctx v in
      if is_int_ty v.vty then fun env -> Array.unsafe_get env.ints s
      else fun env -> int_of_float (Array.unsafe_get env.floats s)
  | Binop (op, a, b) -> (
      if not (is_int_expr e) then
        let f = cflt ctx e in
        fun env -> int_of_float (f env)
      else
        let ca = cint ctx a and cb = cint ctx b in
        match op with
        | Add -> fun env -> ca env + cb env
        | Sub -> fun env -> ca env - cb env
        | Mul -> fun env -> ca env * cb env
        | Div -> fun env -> ca env / cb env
        | Mod -> fun env -> ca env mod cb env
        | Min -> fun env -> Stdlib.min (ca env) (cb env)
        | Max -> fun env -> Stdlib.max (ca env) (cb env)
        | And -> fun env -> if ca env <> 0 && cb env <> 0 then 1 else 0
        | Or -> fun env -> if ca env <> 0 || cb env <> 0 then 1 else 0
        | Eq | Ne | Lt | Le | Gt | Ge ->
            if is_int_expr a && is_int_expr b then
              let cmp : int -> int -> bool =
                match op with
                | Eq -> ( = )
                | Ne -> ( <> )
                | Lt -> ( < )
                | Le -> ( <= )
                | Gt -> ( > )
                | Ge -> ( >= )
                | _ -> assert false
              in
              fun env -> if cmp (ca env) (cb env) then 1 else 0
            else
              let fa = cflt ctx a and fb = cflt ctx b in
              let cmp : float -> float -> bool =
                match op with
                | Eq -> ( = )
                | Ne -> ( <> )
                | Lt -> ( < )
                | Le -> ( <= )
                | Gt -> ( > )
                | Ge -> ( >= )
                | _ -> assert false
              in
              fun env -> if cmp (fa env) (fb env) then 1 else 0)
  | Unop (Neg, a) when is_int_expr a ->
      let ca = cint ctx a in
      fun env -> -ca env
  | Unop (Abs, a) when is_int_expr a ->
      let ca = cint ctx a in
      fun env -> Stdlib.abs (ca env)
  | Unop (Not, a) ->
      let ca = cint ctx a in
      fun env -> if ca env = 0 then 1 else 0
  | Select (c, a, b) when is_int_expr e ->
      let cc = cint ctx c and ca = cint ctx a and cb = cint ctx b in
      fun env -> if cc env <> 0 then ca env else cb env
  | Addr (t, idx) ->
      (* offset of the element within the tensor's buffer *)
      let _slot = tensor_slot ctx t in
      let off = coffset ctx t idx in
      off
  | e ->
      let f = cflt ctx e in
      fun env -> int_of_float (f env)

and coffset ctx (t : tensor) idx : env -> int =
  if Array.length idx <> Array.length t.dims then
    invalid_arg
      (Printf.sprintf "Engine: tensor %s rank mismatch in access" t.tname);
  let strides = strides_of t.dims in
  let parts =
    Array.to_list
      (Array.mapi
         (fun i e ->
           let ci = cint ctx e in
           let s = strides.(i) in
           fun env -> ci env * s)
         idx)
  in
  match parts with
  | [] -> fun _ -> 0
  | [ p ] -> p
  | [ p; q ] -> fun env -> p env + q env
  | [ p; q; r ] -> fun env -> p env + q env + r env
  | [ p; q; r; s ] -> fun env -> p env + q env + r env + s env
  | ps -> fun env -> List.fold_left (fun acc p -> acc + p env) 0 ps

and cflt ctx (e : expr) : env -> float =
  match e with
  | Float f -> fun _ -> f
  | Int i ->
      let f = float_of_int i in
      fun _ -> f
  | Var v ->
      let s = var_slot ctx v in
      if is_int_ty v.vty then fun env -> float_of_int (Array.unsafe_get env.ints s)
      else fun env -> Array.unsafe_get env.floats s
  | Load (t, idx) ->
      let slot = tensor_slot ctx t in
      let off = coffset ctx t idx in
      fun env -> Buffer.unsafe_get (Array.unsafe_get env.bufs slot) (off env)
  | Binop (op, a, b) -> (
      if is_int_expr e then
        let ci = cint ctx e in
        fun env -> float_of_int (ci env)
      else
        let fa = cflt ctx a and fb = cflt ctx b in
        match op with
        | Add -> fun env -> fa env +. fb env
        | Sub -> fun env -> fa env -. fb env
        | Mul -> fun env -> fa env *. fb env
        | Div -> fun env -> fa env /. fb env
        | Mod -> fun env -> Float.rem (fa env) (fb env)
        | Min -> fun env -> Float.min (fa env) (fb env)
        | Max -> fun env -> Float.max (fa env) (fb env)
        | Eq | Ne | Lt | Le | Gt | Ge | And | Or ->
            let ci = cint ctx e in
            fun env -> float_of_int (ci env))
  | Unop (op, a) -> (
      match op with
      | Neg when is_int_expr a ->
          let ci = cint ctx a in
          fun env -> float_of_int (-ci env)
      | Neg ->
          let fa = cflt ctx a in
          fun env -> -.fa env
      | Exp ->
          let fa = cflt ctx a in
          fun env -> Stdlib.exp (fa env)
      | Tanh ->
          let fa = cflt ctx a in
          fun env -> Stdlib.tanh (fa env)
      | Sqrt ->
          let fa = cflt ctx a in
          fun env -> Stdlib.sqrt (fa env)
      | Abs ->
          let fa = cflt ctx a in
          fun env -> Float.abs (fa env)
      | Round ->
          let fa = cflt ctx a in
          fun env -> Float.round (fa env)
      | Rcp ->
          let fa = cflt ctx a in
          fun env -> 1. /. fa env
      | Not ->
          let ci = cint ctx e in
          fun env -> float_of_int (ci env))
  | Cast (dt, a) ->
      let fa = cflt ctx a in
      fun env -> Dtype.round_to dt (fa env)
  | Select (c, a, b) ->
      let cc = cint ctx c and fa = cflt ctx a and fb = cflt ctx b in
      fun env -> if cc env <> 0 then fa env else fb env
  | Addr (t, _) ->
      invalid_arg
        (Printf.sprintf "Engine: Addr of %s used as a value outside a call"
           t.tname)

type compiled_func = {
  cf_params : param list;
  cf_run : Buffer.t array -> float array -> unit;
}

type t = {
  module_ : Ir.module_;
  pool : Parallel.t;
  funcs : (string, compiled_func) Hashtbl.t;
  globals : (int, Buffer.t) Hashtbl.t;  (* tensor id -> buffer *)
}

let addr_arg ctx (e : expr) =
  match e with
  | Addr (t, idx) -> (tensor_slot ctx t, coffset ctx t idx)
  | _ -> invalid_arg "Engine: intrinsic operand must be an address"

(* Compile a leaf statement (everything except For/If/function-calls,
   which [compile_func] handles so it can thread the pool and sibling
   lookup through). *)
let rec cstmt_leaf ctx (s : stmt) : env -> unit =
  match s with
  | Assign (v, e) ->
      let slot = var_slot ctx v in
      if is_int_ty v.vty then
        let ce = cint ctx e in
        fun env -> Array.unsafe_set env.ints slot (ce env)
      else
        let ce = cflt ctx e in
        fun env -> Array.unsafe_set env.floats slot (ce env)
  | Store (t, idx, e) ->
      let slot = tensor_slot ctx t in
      let off = coffset ctx t idx in
      let ce = cflt ctx e in
      fun env ->
        Buffer.unsafe_set (Array.unsafe_get env.bufs slot) (off env) (ce env)
  | Alloc t ->
      let slot = tensor_slot ctx t in
      let dtype = t.tdtype and n = tensor_numel t in
      let bytes = tensor_bytes t in
      fun env ->
        Gc_observe.Counters.alloc_bytes bytes;
        env.bufs.(slot) <- Buffer.create dtype n
  | Barrier -> fun _ -> Gc_observe.Counters.barrier ()
  | Call (name, args) -> ccall ctx name args
  | For _ | If _ -> assert false

and ccall ctx name args : env -> unit =
  match name with
  | "brgemm" -> (
      match args with
      | [ batch; mb; nb; kb; a; astride; b; bstride; c ] ->
          let cbatch = cint ctx batch
          and cmb = cint ctx mb
          and cnb = cint ctx nb
          and ckb = cint ctx kb
          and aslot, aoff = addr_arg ctx a
          and castride = cint ctx astride
          and bslot, boff = addr_arg ctx b
          and cbstride = cint ctx bstride
          and cslot, coff = addr_arg ctx c in
          fun env ->
            Gc_observe.Counters.kernel_invocation ();
            let batch = cbatch env in
            let a0 = aoff env and b0 = boff env in
            let sa = castride env and sb = cbstride env in
            let a_offs = Array.init batch (fun i -> a0 + (i * sa)) in
            let b_offs = Array.init batch (fun i -> b0 + (i * sb)) in
            Gc_microkernel.Brgemm.dispatch ~batch ~mb:(cmb env) ~nb:(cnb env)
              ~kb:(ckb env)
              ~a:(Array.unsafe_get env.bufs aslot)
              ~a_offs
              ~b:(Array.unsafe_get env.bufs bslot)
              ~b_offs
              ~c:(Array.unsafe_get env.bufs cslot)
              ~c_off:(coff env)
      | _ -> invalid_arg "Engine: brgemm expects 9 args")
  | "zero" -> (
      match args with
      | [ addr; count ] ->
          let slot, off = addr_arg ctx addr in
          let ccount = cint ctx count in
          fun env ->
            Gc_observe.Counters.kernel_invocation ();
            Buffer.fill_range
              (Array.unsafe_get env.bufs slot)
              (off env) (ccount env) 0.
      | _ -> invalid_arg "Engine: zero expects 2 args")
  | "copy" -> (
      match args with
      | [ dst; src; count ] ->
          let dslot, doff = addr_arg ctx dst in
          let sslot, soff = addr_arg ctx src in
          let ccount = cint ctx count in
          fun env ->
            Gc_observe.Counters.kernel_invocation ();
            Buffer.copy_range
              ~src:(Array.unsafe_get env.bufs sslot)
              ~soff:(soff env)
              ~dst:(Array.unsafe_get env.bufs dslot)
              ~doff:(doff env) ~len:(ccount env)
      | _ -> invalid_arg "Engine: copy expects 3 args")
  | _ -> invalid_arg (Printf.sprintf "Engine: unresolved call %S at compile" name)

(* Compile a function. Calls to sibling functions are resolved through
   [lookup] lazily (the entry function is compiled after the fused-op
   functions it calls, but order independence is safer). *)
let compile_func pool (lookup : string -> compiled_func) globals (f : func) :
    compiled_func =
  let ctx = new_ctx () in
  (* params get the first buffer slots, in order *)
  let tensor_params =
    List.filter_map (function Ptensor t -> Some t | Pvar _ -> None) f.params
  in
  let scalar_params =
    List.filter_map (function Pvar v -> Some v | Ptensor _ -> None) f.params
  in
  List.iter (fun t -> ignore (tensor_slot ctx t)) tensor_params;
  List.iter (fun v -> ignore (var_slot ctx v)) scalar_params;
  (* function calls need special compilation: gather tensor args *)
  let rec cstmt' (s : stmt) : env -> unit =
    match s with
    | Call (name, args) when Intrinsic.lookup name = None ->
        (* call to a sibling function: args are tensor addresses (offset 0)
           or scalars *)
        let targs =
          List.filter_map
            (fun a ->
              match a with
              | Addr (t, _) -> Some (tensor_slot ctx t)
              | _ -> None)
            args
        in
        let sargs =
          List.filter_map
            (fun a -> match a with Addr _ -> None | e -> Some (cflt ctx e))
            args
        in
        let callee = ref None in
        fun env ->
          let cf =
            match !callee with
            | Some cf -> cf
            | None ->
                let cf = lookup name in
                callee := Some cf;
                cf
          in
          let bufs = Array.of_list (List.map (fun s -> env.bufs.(s)) targs) in
          let scalars = Array.of_list (List.map (fun f -> f env) sargs) in
          cf.cf_run bufs scalars
    | For l ->
        let vslot = var_slot ctx l.v in
        let clo = cint ctx l.lo and chi = cint ctx l.hi and cstep = cint ctx l.step in
        let body = cbody' l.body in
        if l.parallel then begin
          let skey : scratch option Domain.DLS.key =
            Domain.DLS.new_key (fun () -> None)
          in
          fun env ->
            let lo = clo env and hi = chi env and step = cstep env in
            if step <> 1 then begin
              let i = ref lo in
              while !i < hi do
                env.ints.(vslot) <- !i;
                body env;
                i := !i + step
              done
            end
            else
              Parallel.parallel_for pool ~lo ~hi (fun c0 c1 ->
                  let s = borrow_scratch skey env in
                  let local = s.senv in
                  (try
                     for i = c0 to c1 - 1 do
                       Array.unsafe_set local.ints vslot i;
                       body local
                     done
                   with e ->
                     s.busy <- false;
                     raise e);
                  s.busy <- false)
        end
        else
          fun env ->
            let hi = chi env and step = cstep env in
            let i = ref (clo env) in
            while !i < hi do
              Array.unsafe_set env.ints vslot !i;
              body env;
              i := !i + step
            done
    | If (c, th, el) ->
        let cc = cint ctx c in
        let cth = cbody' th and cel = cbody' el in
        fun env -> if cc env <> 0 then cth env else cel env
    | s -> cstmt_leaf ctx s
  and cbody' body : env -> unit =
    let cs = Array.of_list (List.map cstmt' body) in
    match Array.length cs with
    | 0 -> fun _ -> ()
    | 1 -> cs.(0)
    | _ ->
        fun env ->
          for i = 0 to Array.length cs - 1 do
            (Array.unsafe_get cs i) env
          done
  in
  let body = cbody' f.body in
  let n_params = List.length tensor_params in
  let n_scalars = List.length scalar_params in
  let param_sizes = Array.of_list (List.map tensor_numel tensor_params) in
  (* snapshot slot counts *after* compiling the body *)
  let n_ints = ctx.n_ints and n_floats = ctx.n_floats and n_bufs = ctx.n_bufs in
  let global_binds = ctx.global_binds in
  let cf_run bufs scalars =
    if Array.length bufs <> n_params then
      invalid_arg
        (Printf.sprintf "Engine.run %s: expected %d tensor params, got %d"
           f.fname n_params (Array.length bufs));
    if Array.length scalars <> n_scalars then
      invalid_arg
        (Printf.sprintf "Engine.run %s: expected %d scalar params, got %d"
           f.fname n_scalars (Array.length scalars));
    Array.iteri
      (fun i b ->
        if Buffer.length b < param_sizes.(i) then
          invalid_arg
            (Printf.sprintf
               "Engine.run %s: param %d buffer too small (%d < %d)" f.fname i
               (Buffer.length b) param_sizes.(i)))
      bufs;
    let env =
      {
        ints = Array.make (max 1 n_ints) 0;
        floats = Array.make (max 1 n_floats) 0.;
        bufs = Array.make (max 1 n_bufs) (Buffer.create Dtype.F32 0);
      }
    in
    Array.blit bufs 0 env.bufs 0 n_params;
    Array.blit scalars 0 env.floats 0 n_scalars;
    List.iter
      (fun (slot, (g : tensor)) ->
        match Hashtbl.find_opt globals g.tid with
        | Some b -> env.bufs.(slot) <- b
        | None -> invalid_arg (Printf.sprintf "Engine: unbound global %s" g.tname))
      global_binds;
    body env
  in
  { cf_params = f.params; cf_run }

let create ?pool (m : Ir.module_) =
  (match Check.check_module m with
  | Ok () -> ()
  | Error e -> invalid_arg ("Engine.create: ill-formed module: " ^ e));
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  let globals = Hashtbl.create 8 in
  List.iter
    (fun (g : tensor) ->
      Hashtbl.replace globals g.tid (Buffer.create g.tdtype (tensor_numel g)))
    m.globals;
  let funcs = Hashtbl.create 16 in
  let rec lookup name =
    match Hashtbl.find_opt funcs name with
    | Some cf -> cf
    | None -> (
        match Ir.find_func m name with
        | Some f ->
            let cf = compile_func pool lookup globals f in
            Hashtbl.replace funcs name cf;
            cf
        | None -> invalid_arg (Printf.sprintf "Engine: unknown function %S" name))
  in
  List.iter (fun (f : func) -> ignore (lookup f.fname)) m.funcs;
  { module_ = m; pool; funcs; globals }

let module_ t = t.module_
let pool t = t.pool

let run_func t name params =
  match Hashtbl.find_opt t.funcs name with
  | Some cf -> cf.cf_run params [||]
  | None -> invalid_arg (Printf.sprintf "Engine.run_func: unknown function %S" name)

let run_entry t params = run_func t t.module_.entry params

let run_init t params =
  match t.module_.init with
  | Some i -> run_func t i params
  | None -> ()

let global_buffer t (g : tensor) =
  match Hashtbl.find_opt t.globals g.tid with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Engine.global_buffer: %s" g.tname)
