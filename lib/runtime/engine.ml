open Gc_tensor
open Gc_tensor_ir
open Ir

(* Runtime environment. Scalar variables live in slot arrays; tensors bind
   buffers into [bufs] by compile-time slot. Parallel regions clone the
   arrays (cheap) so loop variables and thread-local Allocs don't race;
   buffer *contents* stay shared, which is exactly the shared-memory
   semantics of the template's parallel loops. *)
type env = {
  ints : int array;
  floats : float array;
  bufs : Buffer.t array;
}

let clone_env e =
  { ints = Array.copy e.ints; floats = Array.copy e.floats; bufs = Array.copy e.bufs }

(* Per-worker scratch environments for parallel regions. Each parallel For
   site compiles to a closure holding a Domain.DLS key; every domain that
   executes grains of that loop keeps one cached env and refreshes it from
   the submitting env by blitting (no allocation) at each grain. [busy]
   guards re-entrant inline execution of the same loop site (e.g. through
   a recursive function call), which falls back to a fresh clone. A cached
   env retains the buffers of the last region it ran until the site is
   next executed on that domain — slot counts are per-function, so sizes
   always match. *)
type scratch = { senv : env; mutable busy : bool }

let refresh_scratch ~from s =
  Array.blit from.ints 0 s.senv.ints 0 (Array.length from.ints);
  Array.blit from.floats 0 s.senv.floats 0 (Array.length from.floats);
  Array.blit from.bufs 0 s.senv.bufs 0 (Array.length from.bufs)

let borrow_scratch key env =
  match Domain.DLS.get key with
  | Some s when not s.busy ->
      s.busy <- true;
      refresh_scratch ~from:env s;
      Gc_observe.Counters.env_reused ();
      s
  | cached ->
      let s = { senv = clone_env env; busy = true } in
      (match cached with None -> Domain.DLS.set key (Some s) | Some _ -> ());
      s

(* A length-0 placeholder for unfilled buffer slots. *)
let dummy_buf = Buffer.create Dtype.F32 0

(* ------------------------------------------------------------------ *)
(* Steady-state fast path (serving): per-function, per-domain state that
   makes repeated executes allocation-free.

   - [arena_key]: one arena per (compiled function, domain) — a buffer per
     [Alloc] site, pre-sized from {!Gc_tir_passes.Buffer_schedule.alloc_plan}.
     An [Alloc] compiles to installing the domain's arena buffer into the
     env slot (zero-filled, preserving [Buffer.create] semantics). Domains
     never share arena buffers, so concurrent executes of one compiled
     partition cannot race on locals; within one execute, parallel grains
     see top-level locals through the scratch-env blit exactly as before.
   - Call-site argument arrays and brgemm offset arrays are cached the same
     way (per site, per domain): they are consumed before the call returns,
     and a domain runs one grain at a time, so reuse is race-free. *)
type arena_site = { site : int; a_dtype : Dtype.t; a_numel : int; a_bytes : int }

type fast_ctx = {
  fast : bool;
  arena_key : Buffer.t option array option Domain.DLS.key;
  n_sites : int;
  site_of_tid : (int, arena_site) Hashtbl.t;
}

let no_fast_ctx =
  {
    fast = false;
    arena_key = Domain.DLS.new_key (fun () -> None);
    n_sites = 0;
    site_of_tid = Hashtbl.create 1;
  }

let domain_arena fc =
  match Domain.DLS.get fc.arena_key with
  | Some a -> a
  | None ->
      let a = Array.make (max 1 fc.n_sites) None in
      Domain.DLS.set fc.arena_key (Some a);
      a

(* Compile-time slot assignment for one function. *)
type ctx = {
  var_slots : (int, int) Hashtbl.t;  (* var id -> slot (ints or floats) *)
  tensor_slots : (int, int) Hashtbl.t;  (* tensor id -> bufs slot *)
  mutable n_ints : int;
  mutable n_floats : int;
  mutable n_bufs : int;
  mutable global_binds : (int * Ir.tensor) list;  (* slot, global tensor *)
}

let new_ctx () =
  {
    var_slots = Hashtbl.create 32;
    tensor_slots = Hashtbl.create 32;
    n_ints = 0;
    n_floats = 0;
    n_bufs = 0;
    global_binds = [];
  }

let is_int_ty = function Index | Boolean -> true | Scalar _ -> false

let var_slot ctx (v : var) =
  match Hashtbl.find_opt ctx.var_slots v.vid with
  | Some s -> s
  | None ->
      let s =
        if is_int_ty v.vty then begin
          let s = ctx.n_ints in
          ctx.n_ints <- s + 1;
          s
        end
        else begin
          let s = ctx.n_floats in
          ctx.n_floats <- s + 1;
          s
        end
      in
      Hashtbl.add ctx.var_slots v.vid s;
      s

let tensor_slot ctx (t : tensor) =
  match Hashtbl.find_opt ctx.tensor_slots t.tid with
  | Some s -> s
  | None ->
      let s = ctx.n_bufs in
      ctx.n_bufs <- s + 1;
      Hashtbl.add ctx.tensor_slots t.tid s;
      (match t.storage with
      | Global -> ctx.global_binds <- (s, t) :: ctx.global_binds
      | Param | Local -> ());
      s

(* Expression typing: int (index/bool) vs float (value). *)
let rec is_int_expr = function
  | Int _ -> true
  | Float _ -> false
  | Var v -> is_int_ty v.vty
  | Load _ -> false
  | Addr _ -> true (* addresses are offsets; only valid in intrinsic args *)
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> true
  | Binop ((Mod | Div | Add | Sub | Mul | Min | Max), a, b) ->
      is_int_expr a && is_int_expr b
  | Unop ((Exp | Tanh | Sqrt | Rcp), _) -> false
  | Unop ((Neg | Abs | Round), a) -> is_int_expr a
  | Unop (Not, _) -> true
  | Cast (_, _) -> false
  | Select (_, a, b) -> is_int_expr a && is_int_expr b

(* [Float.min]/[Float.max] with the stdlib's NaN / signed-zero semantics,
   expanded where they are used (even a same-module function call would box
   both float arguments and the result — ocamlopt's inliner does not pick
   these up — which showed up as 4 words per element in interpreted relu
   loops). [Float.sign_bit] is an unboxed noalloc external; NaN tests are
   written [x <> x] so no boxed stdlib call is involved. *)

(* A float expression temporary (lives in [env.floats] above the named
   variables). Allocated per expression node at compile time — bounded by
   program size — so the destination-passing evaluator below never
   allocates at run time. *)
let temp_slot ctx =
  let s = ctx.n_floats in
  ctx.n_floats <- s + 1;
  s

(* Row-major strides for a dims vector. *)
let strides_of dims =
  let n = Array.length dims in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * dims.(i + 1)
  done;
  s

let rec cint ctx (e : expr) : env -> int =
  match e with
  | Int i -> fun _ -> i
  | Float f ->
      let i = int_of_float f in
      fun _ -> i
  | Var v ->
      let s = var_slot ctx v in
      if is_int_ty v.vty then fun env -> Array.unsafe_get env.ints s
      else fun env -> int_of_float (Array.unsafe_get env.floats s)
  | Binop (op, a, b) -> (
      if not (is_int_expr e) then
        let dst = temp_slot ctx in
        let ce = cflt_into ctx e dst in
        fun env ->
          ce env;
          int_of_float (Array.unsafe_get env.floats dst)
      else
        let ca = cint ctx a and cb = cint ctx b in
        match op with
        | Add -> fun env -> ca env + cb env
        | Sub -> fun env -> ca env - cb env
        | Mul -> fun env -> ca env * cb env
        | Div -> fun env -> ca env / cb env
        | Mod -> fun env -> ca env mod cb env
        | Min -> fun env -> Stdlib.min (ca env) (cb env)
        | Max -> fun env -> Stdlib.max (ca env) (cb env)
        | And -> fun env -> if ca env <> 0 && cb env <> 0 then 1 else 0
        | Or -> fun env -> if ca env <> 0 || cb env <> 0 then 1 else 0
        | Eq | Ne | Lt | Le | Gt | Ge ->
            if is_int_expr a && is_int_expr b then
              let cmp : int -> int -> bool =
                match op with
                | Eq -> ( = )
                | Ne -> ( <> )
                | Lt -> ( < )
                | Le -> ( <= )
                | Gt -> ( > )
                | Ge -> ( >= )
                | _ -> assert false
              in
              fun env -> if cmp (ca env) (cb env) then 1 else 0
            else
              (* operands evaluate into float temps; comparing slot reads
                 keeps the floats unboxed (a [float -> float -> bool]
                 closure would box both arguments per element) *)
              let da = temp_slot ctx in
              let ea = cflt_into ctx a da in
              let db = temp_slot ctx in
              let eb = cflt_into ctx b db in
              match op with
              | Eq ->
                  fun env ->
                    ea env;
                    eb env;
                    if
                      Array.unsafe_get env.floats da
                      = Array.unsafe_get env.floats db
                    then 1
                    else 0
              | Ne ->
                  fun env ->
                    ea env;
                    eb env;
                    if
                      Array.unsafe_get env.floats da
                      <> Array.unsafe_get env.floats db
                    then 1
                    else 0
              | Lt ->
                  fun env ->
                    ea env;
                    eb env;
                    if
                      Array.unsafe_get env.floats da
                      < Array.unsafe_get env.floats db
                    then 1
                    else 0
              | Le ->
                  fun env ->
                    ea env;
                    eb env;
                    if
                      Array.unsafe_get env.floats da
                      <= Array.unsafe_get env.floats db
                    then 1
                    else 0
              | Gt ->
                  fun env ->
                    ea env;
                    eb env;
                    if
                      Array.unsafe_get env.floats da
                      > Array.unsafe_get env.floats db
                    then 1
                    else 0
              | Ge ->
                  fun env ->
                    ea env;
                    eb env;
                    if
                      Array.unsafe_get env.floats da
                      >= Array.unsafe_get env.floats db
                    then 1
                    else 0
              | _ -> assert false)
  | Unop (Neg, a) when is_int_expr a ->
      let ca = cint ctx a in
      fun env -> -ca env
  | Unop (Abs, a) when is_int_expr a ->
      let ca = cint ctx a in
      fun env -> Stdlib.abs (ca env)
  | Unop (Not, a) ->
      let ca = cint ctx a in
      fun env -> if ca env = 0 then 1 else 0
  | Select (c, a, b) when is_int_expr e ->
      let cc = cint ctx c and ca = cint ctx a and cb = cint ctx b in
      fun env -> if cc env <> 0 then ca env else cb env
  | Addr (t, idx) ->
      (* offset of the element within the tensor's buffer *)
      let _slot = tensor_slot ctx t in
      let off = coffset ctx t idx in
      off
  | e ->
      let dst = temp_slot ctx in
      let ce = cflt_into ctx e dst in
      fun env ->
        ce env;
        int_of_float (Array.unsafe_get env.floats dst)

and coffset ctx (t : tensor) idx : env -> int =
  if Array.length idx <> Array.length t.dims then
    Gc_errors.compile_error ~stage:"engine"
      ~ctx:
        [
          ("tensor", t.tname);
          ("rank", string_of_int (Array.length t.dims));
          ("indices", string_of_int (Array.length idx));
        ]
      (Printf.sprintf "Engine: tensor %s rank mismatch in access" t.tname);
  let strides = strides_of t.dims in
  let parts =
    Array.to_list
      (Array.mapi
         (fun i e ->
           let ci = cint ctx e in
           let s = strides.(i) in
           fun env -> ci env * s)
         idx)
  in
  match parts with
  | [] -> fun _ -> 0
  | [ p ] -> p
  | [ p; q ] -> fun env -> p env + q env
  | [ p; q; r ] -> fun env -> p env + q env + r env
  | [ p; q; r; s ] -> fun env -> p env + q env + r env + s env
  | ps -> fun env -> List.fold_left (fun acc p -> acc + p env) 0 ps

(* Destination-passing float evaluation: the compiled closure leaves the
   value in [env.floats.(dst)] and returns unit. An [env -> float] closure
   would box its result at every indirect call (no flambda), which made
   the interpreted glue loops allocate per element; writing into the
   preallocated slot array keeps every float unboxed end to end. *)
and cflt_into ctx (e : expr) (dst : int) : env -> unit =
  match e with
  | Float f -> fun env -> Array.unsafe_set env.floats dst f
  | Int i ->
      let f = float_of_int i in
      fun env -> Array.unsafe_set env.floats dst f
  | Var v ->
      let s = var_slot ctx v in
      if is_int_ty v.vty then
        fun env ->
          Array.unsafe_set env.floats dst
            (float_of_int (Array.unsafe_get env.ints s))
      else if s = dst then fun _ -> ()
      else
        fun env ->
          Array.unsafe_set env.floats dst (Array.unsafe_get env.floats s)
  | Load (t, idx) ->
      let slot = tensor_slot ctx t in
      let off = coffset ctx t idx in
      (* f32/bf16 reads go through the Bigarray primitive directly —
         [Buffer.unsafe_get] is a cross-module call whose float result
         would be boxed per element. s8/u8 elements are immediate ints, so
         their loads are boxing-free too (same [float_of_int] widening as
         [Buffer.unsafe_get]). *)
      fun env ->
        let x =
          match Array.unsafe_get env.bufs slot with
          | Buffer.F32 a | Buffer.Bf16 a ->
              Bigarray.Array1.unsafe_get a (off env)
          | Buffer.S8 a -> float_of_int (Bigarray.Array1.unsafe_get a (off env))
          | Buffer.U8 a -> float_of_int (Bigarray.Array1.unsafe_get a (off env))
          | b -> Buffer.unsafe_get b (off env)
        in
        Array.unsafe_set env.floats dst x
  | Binop (op, a, b) -> (
      if is_int_expr e then
        let ci = cint ctx e in
        fun env -> Array.unsafe_set env.floats dst (float_of_int (ci env))
      else
        match op with
        | Eq | Ne | Lt | Le | Gt | Ge | And | Or ->
            let ci = cint ctx e in
            fun env -> Array.unsafe_set env.floats dst (float_of_int (ci env))
        | Add | Sub | Mul | Div | Mod | Min | Max -> (
            let da = temp_slot ctx in
            let ea = cflt_into ctx a da in
            let db = temp_slot ctx in
            let eb = cflt_into ctx b db in
            match op with
            | Add ->
                fun env ->
                  ea env;
                  eb env;
                  Array.unsafe_set env.floats dst
                    (Array.unsafe_get env.floats da
                    +. Array.unsafe_get env.floats db)
            | Sub ->
                fun env ->
                  ea env;
                  eb env;
                  Array.unsafe_set env.floats dst
                    (Array.unsafe_get env.floats da
                    -. Array.unsafe_get env.floats db)
            | Mul ->
                fun env ->
                  ea env;
                  eb env;
                  Array.unsafe_set env.floats dst
                    (Array.unsafe_get env.floats da
                    *. Array.unsafe_get env.floats db)
            | Div ->
                fun env ->
                  ea env;
                  eb env;
                  Array.unsafe_set env.floats dst
                    (Array.unsafe_get env.floats da
                    /. Array.unsafe_get env.floats db)
            | Mod ->
                fun env ->
                  ea env;
                  eb env;
                  Array.unsafe_set env.floats dst
                    (Float.rem
                       (Array.unsafe_get env.floats da)
                       (Array.unsafe_get env.floats db))
            | Min ->
                fun env ->
                  ea env;
                  eb env;
                  let x = Array.unsafe_get env.floats da in
                  let y = Array.unsafe_get env.floats db in
                  Array.unsafe_set env.floats dst
                    (if y > x || ((not (Float.sign_bit y)) && Float.sign_bit x)
                     then if y <> y then y else x
                     else if x <> x then x else y)
            | Max ->
                fun env ->
                  ea env;
                  eb env;
                  let x = Array.unsafe_get env.floats da in
                  let y = Array.unsafe_get env.floats db in
                  Array.unsafe_set env.floats dst
                    (if y > x || ((not (Float.sign_bit y)) && Float.sign_bit x)
                     then if x <> x then x else y
                     else if y <> y then y else x)
            | _ -> assert false))
  | Unop (op, a) -> (
      match op with
      | Neg when is_int_expr a ->
          let ci = cint ctx a in
          fun env -> Array.unsafe_set env.floats dst (float_of_int (-ci env))
      | Not ->
          let ci = cint ctx e in
          fun env -> Array.unsafe_set env.floats dst (float_of_int (ci env))
      | Neg | Exp | Tanh | Sqrt | Abs | Round | Rcp -> (
          (* evaluate the operand into [dst], transform in place *)
          let ea = cflt_into ctx a dst in
          match op with
          | Neg ->
              fun env ->
                ea env;
                Array.unsafe_set env.floats dst
                  (-.Array.unsafe_get env.floats dst)
          | Exp ->
              fun env ->
                ea env;
                Array.unsafe_set env.floats dst
                  (Stdlib.exp (Array.unsafe_get env.floats dst))
          | Tanh ->
              fun env ->
                ea env;
                Array.unsafe_set env.floats dst
                  (Stdlib.tanh (Array.unsafe_get env.floats dst))
          | Sqrt ->
              fun env ->
                ea env;
                Array.unsafe_set env.floats dst
                  (Stdlib.sqrt (Array.unsafe_get env.floats dst))
          | Abs ->
              fun env ->
                ea env;
                Array.unsafe_set env.floats dst
                  (Float.abs (Array.unsafe_get env.floats dst))
          | Round ->
              fun env ->
                ea env;
                Array.unsafe_set env.floats dst
                  (Float.round (Array.unsafe_get env.floats dst))
          | Rcp ->
              fun env ->
                ea env;
                Array.unsafe_set env.floats dst
                  (1. /. Array.unsafe_get env.floats dst)
          | _ -> assert false))
  | Cast (dt, a) ->
      let ea = cflt_into ctx a dst in
      fun env ->
        ea env;
        Array.unsafe_set env.floats dst
          (Dtype.round_to dt (Array.unsafe_get env.floats dst))
  | Select (c, a, b) ->
      let cc = cint ctx c in
      let ea = cflt_into ctx a dst and eb = cflt_into ctx b dst in
      fun env -> if cc env <> 0 then ea env else eb env
  | Addr (t, _) ->
      Gc_errors.compile_error ~stage:"engine"
        ~ctx:[ ("tensor", t.tname) ]
        (Printf.sprintf "Engine: Addr of %s used as a value outside a call"
           t.tname)

(* Float-returning wrapper for the few cold call sites that want a value
   (sibling-call scalar arguments); hot per-element paths use [cflt_into]. *)
and cflt ctx (e : expr) : env -> float =
  match e with
  | Float f -> fun _ -> f
  | Var v when not (is_int_ty v.vty) ->
      let s = var_slot ctx v in
      fun env -> Array.unsafe_get env.floats s
  | e ->
      let dst = temp_slot ctx in
      let ce = cflt_into ctx e dst in
      fun env ->
        ce env;
        Array.unsafe_get env.floats dst

type compiled_func = {
  cf_params : param list;
  cf_run : Buffer.t array -> float array -> unit;
}

type t = {
  module_ : Ir.module_;
  pool : Parallel.t;
  funcs : (string, compiled_func) Hashtbl.t;
  globals : (int, Buffer.t) Hashtbl.t;  (* tensor id -> buffer *)
}

let addr_arg ctx (e : expr) =
  match e with
  | Addr (t, idx) -> (tensor_slot ctx t, coffset ctx t idx)
  | _ ->
      Gc_errors.compile_error ~stage:"engine"
        "Engine: intrinsic operand must be an address"

(* Compile a leaf statement (everything except For/If/function-calls,
   which [compile_func] handles so it can thread the pool and sibling
   lookup through). [fc] carries the fast-path arena state. *)
let rec cstmt_leaf ctx fc (s : stmt) : env -> unit =
  match s with
  | Assign (v, e) ->
      let slot = var_slot ctx v in
      if is_int_ty v.vty then
        let ce = cint ctx e in
        fun env -> Array.unsafe_set env.ints slot (ce env)
      else
        (* the variable's slot is the expression's destination *)
        cflt_into ctx e slot
  | Store (t, idx, e) ->
      let slot = tensor_slot ctx t in
      let off = coffset ctx t idx in
      let dst = temp_slot ctx in
      let ce = cflt_into ctx e dst in
      fun env ->
        ce env;
        let v = Array.unsafe_get env.floats dst in
        (* f32 stores through the Bigarray primitive: [Buffer.unsafe_set]
           is a cross-module call that would box the float argument *)
        (match Array.unsafe_get env.bufs slot with
        | Buffer.F32 a -> Bigarray.Array1.unsafe_set a (off env) v
        | b -> Buffer.unsafe_set b (off env) v)
  | Alloc t ->
      let slot = tensor_slot ctx t in
      let dtype = t.tdtype and n = tensor_numel t in
      let bytes = tensor_bytes t in
      let site = if fc.fast then Hashtbl.find_opt fc.site_of_tid t.tid else None in
      (match site with
      | Some { site; a_dtype; a_numel; a_bytes } ->
          (* serve the local from the domain's pre-sized arena; zero-fill to
             keep exact [Buffer.create] semantics for reused buffers *)
          fun env ->
            let arena = domain_arena fc in
            let b =
              match Array.unsafe_get arena site with
              | Some b ->
                  Gc_observe.Counters.arena_hit ();
                  Gc_observe.Counters.arena_bytes_saved a_bytes;
                  Buffer.fill_range b 0 a_numel 0.;
                  b
              | None ->
                  Gc_observe.Counters.alloc_bytes a_bytes;
                  let b = Buffer.create ~name:t.tname a_dtype a_numel in
                  arena.(site) <- Some b;
                  b
            in
            env.bufs.(slot) <- b
      | None ->
          fun env ->
            Gc_observe.Counters.alloc_bytes bytes;
            env.bufs.(slot) <- Buffer.create ~name:t.tname dtype n)
  | Barrier -> fun _ -> Gc_observe.Counters.barrier ()
  | Call (name, args) -> ccall ctx fc name args
  | For _ | If _ -> assert false

and ccall ctx fc name args : env -> unit =
  match name with
  | "brgemm" -> (
      match args with
      | [ batch; mb; nb; kb; a; astride; b; bstride; c ] ->
          let cbatch = cint ctx batch
          and cmb = cint ctx mb
          and cnb = cint ctx nb
          and ckb = cint ctx kb
          and aslot, aoff = addr_arg ctx a
          and castride = cint ctx astride
          and bslot, boff = addr_arg ctx b
          and cbstride = cint ctx bstride
          and cslot, coff = addr_arg ctx c in
          if fc.fast then begin
            (* per-site, per-domain offset arrays: consumed inside the
               dispatch, so sequential reuse on one domain is race-free *)
            let offs_key : (int array * int array) option Domain.DLS.key =
              Domain.DLS.new_key (fun () -> None)
            in
            fun env ->
              Gc_observe.Counters.kernel_invocation ();
              Guard.check ();
              let batch = cbatch env in
              let a0 = aoff env and b0 = boff env in
              let sa = castride env and sb = cbstride env in
              let a_offs, b_offs =
                match Domain.DLS.get offs_key with
                | Some (a_offs, _ as p) when Array.length a_offs >= batch -> p
                | _ ->
                    let p = (Array.make batch 0, Array.make batch 0) in
                    Domain.DLS.set offs_key (Some p);
                    p
              in
              for i = 0 to batch - 1 do
                Array.unsafe_set a_offs i (a0 + (i * sa));
                Array.unsafe_set b_offs i (b0 + (i * sb))
              done;
              Gc_microkernel.Brgemm.dispatch ~batch ~mb:(cmb env) ~nb:(cnb env)
                ~kb:(ckb env)
                ~a:(Array.unsafe_get env.bufs aslot)
                ~a_offs
                ~b:(Array.unsafe_get env.bufs bslot)
                ~b_offs
                ~c:(Array.unsafe_get env.bufs cslot)
                ~c_off:(coff env)
          end
          else
            fun env ->
              Gc_observe.Counters.kernel_invocation ();
              Guard.check ();
              let batch = cbatch env in
              let a0 = aoff env and b0 = boff env in
              let sa = castride env and sb = cbstride env in
              let a_offs = Array.init batch (fun i -> a0 + (i * sa)) in
              let b_offs = Array.init batch (fun i -> b0 + (i * sb)) in
              Gc_microkernel.Brgemm.dispatch ~batch ~mb:(cmb env) ~nb:(cnb env)
                ~kb:(ckb env)
                ~a:(Array.unsafe_get env.bufs aslot)
                ~a_offs
                ~b:(Array.unsafe_get env.bufs bslot)
                ~b_offs
                ~c:(Array.unsafe_get env.bufs cslot)
                ~c_off:(coff env)
      | _ ->
          Gc_errors.compile_error ~stage:"engine" "Engine: brgemm expects 9 args")
  | "zero" -> (
      match args with
      | [ addr; count ] ->
          let slot, off = addr_arg ctx addr in
          let ccount = cint ctx count in
          fun env ->
            Gc_observe.Counters.kernel_invocation ();
            Guard.check ();
            Buffer.fill_range
              (Array.unsafe_get env.bufs slot)
              (off env) (ccount env) 0.
      | _ ->
          Gc_errors.compile_error ~stage:"engine" "Engine: zero expects 2 args")
  | "copy" -> (
      match args with
      | [ dst; src; count ] ->
          let dslot, doff = addr_arg ctx dst in
          let sslot, soff = addr_arg ctx src in
          let dname = match dst with Addr (t, _) -> t.tname | _ -> "" in
          let ccount = cint ctx count in
          fun env ->
            Gc_observe.Counters.kernel_invocation ();
            Guard.check ();
            Buffer.copy_range ~name:dname
              ~src:(Array.unsafe_get env.bufs sslot)
              ~soff:(soff env)
              ~dst:(Array.unsafe_get env.bufs dslot)
              ~doff:(doff env) (ccount env)
      | _ ->
          Gc_errors.compile_error ~stage:"engine"
            "Engine: copy expects 3 args")
  | _ ->
      Gc_errors.compile_error ~stage:"engine"
        ~ctx:[ ("call", name) ]
        (Printf.sprintf "Engine: unresolved call %S at compile" name)

(* Compile a function. Calls to sibling functions are resolved through
   [lookup] lazily (the entry function is compiled after the fused-op
   functions it calls, but order independence is safer). *)
let compile_func ~fastpath pool (lookup : string -> compiled_func) globals
    (f : func) : compiled_func =
  let ctx = new_ctx () in
  (* fast-path arena plan: one pre-sized slot per Alloc site *)
  let fc =
    if not fastpath then no_fast_ctx
    else begin
      let plan = Gc_tir_passes.Buffer_schedule.alloc_plan f in
      let site_of_tid = Hashtbl.create (Array.length plan) in
      Array.iteri
        (fun i (s : Gc_tir_passes.Buffer_schedule.alloc_slot) ->
          Hashtbl.replace site_of_tid s.slot_tensor.tid
            {
              site = i;
              a_dtype = s.slot_dtype;
              a_numel = s.slot_numel;
              a_bytes = s.slot_bytes;
            })
        plan;
      {
        fast = true;
        arena_key = Domain.DLS.new_key (fun () -> None);
        n_sites = Array.length plan;
        site_of_tid;
      }
    end
  in
  (* params get the first buffer slots, in order *)
  let tensor_params =
    List.filter_map (function Ptensor t -> Some t | Pvar _ -> None) f.params
  in
  let scalar_params =
    List.filter_map (function Pvar v -> Some v | Ptensor _ -> None) f.params
  in
  List.iter (fun t -> ignore (tensor_slot ctx t)) tensor_params;
  List.iter (fun v -> ignore (var_slot ctx v)) scalar_params;
  (* function calls need special compilation: gather tensor args *)
  let rec cstmt' (s : stmt) : env -> unit =
    match s with
    | Call (name, args) when Intrinsic.lookup name = None ->
        (* call to a sibling function: args are tensor addresses (offset 0)
           or scalars *)
        let targs =
          List.filter_map
            (fun a ->
              match a with
              | Addr (t, _) -> Some (tensor_slot ctx t)
              | _ -> None)
            args
        in
        let sargs =
          List.filter_map
            (fun a -> match a with Addr _ -> None | e -> Some (cflt ctx e))
            args
        in
        let callee = ref None in
        let get_callee () =
          match !callee with
          | Some cf -> cf
          | None ->
              let cf = lookup name in
              callee := Some cf;
              cf
        in
        if fastpath then begin
          (* per-site, per-domain argument arrays: the callee blits them
             into its own env before running, so sequential reuse on one
             domain is safe *)
          let nt = List.length targs and ns = List.length sargs in
          let targs = Array.of_list targs and sargs = Array.of_list sargs in
          let args_key : (Buffer.t array * float array) option Domain.DLS.key =
            Domain.DLS.new_key (fun () -> None)
          in
          fun env ->
            let cf = get_callee () in
            let bufs, scalars =
              match Domain.DLS.get args_key with
              | Some p -> p
              | None ->
                  let p = (Array.make nt dummy_buf, Array.make ns 0.) in
                  Domain.DLS.set args_key (Some p);
                  p
            in
            for i = 0 to nt - 1 do
              Array.unsafe_set bufs i (Array.unsafe_get env.bufs (Array.unsafe_get targs i))
            done;
            for i = 0 to ns - 1 do
              Array.unsafe_set scalars i ((Array.unsafe_get sargs i) env)
            done;
            cf.cf_run bufs scalars
        end
        else
          fun env ->
            let cf = get_callee () in
            let bufs = Array.of_list (List.map (fun s -> env.bufs.(s)) targs) in
            let scalars = Array.of_list (List.map (fun f -> f env) sargs) in
            cf.cf_run bufs scalars
    | For l ->
        let vslot = var_slot ctx l.v in
        let clo = cint ctx l.lo and chi = cint ctx l.hi and cstep = cint ctx l.step in
        let body = cbody' l.body in
        if l.parallel then begin
          let skey : scratch option Domain.DLS.key =
            Domain.DLS.new_key (fun () -> None)
          in
          fun env ->
            let lo = clo env and hi = chi env and step = cstep env in
            if step <> 1 then begin
              let i = ref lo in
              while !i < hi do
                env.ints.(vslot) <- !i;
                body env;
                i := !i + step
              done
            end
            else
              Parallel.parallel_for pool ~lo ~hi (fun c0 c1 ->
                  let s = borrow_scratch skey env in
                  let local = s.senv in
                  (try
                     for i = c0 to c1 - 1 do
                       Array.unsafe_set local.ints vslot i;
                       body local
                     done
                   with e ->
                     s.busy <- false;
                     raise e);
                  s.busy <- false)
        end
        else
          fun env ->
            let hi = chi env and step = cstep env in
            let i = ref (clo env) in
            while !i < hi do
              Array.unsafe_set env.ints vslot !i;
              body env;
              i := !i + step
            done
    | If (c, th, el) ->
        let cc = cint ctx c in
        let cth = cbody' th and cel = cbody' el in
        fun env -> if cc env <> 0 then cth env else cel env
    | s -> cstmt_leaf ctx fc s
  and cbody' body : env -> unit =
    let cs = Array.of_list (List.map cstmt' body) in
    match Array.length cs with
    | 0 -> fun _ -> ()
    | 1 -> cs.(0)
    | _ ->
        fun env ->
          for i = 0 to Array.length cs - 1 do
            (Array.unsafe_get cs i) env
          done
  in
  let body = cbody' f.body in
  let n_params = List.length tensor_params in
  let n_scalars = List.length scalar_params in
  let param_sizes = Array.of_list (List.map tensor_numel tensor_params) in
  (* snapshot slot counts *after* compiling the body *)
  let n_ints = ctx.n_ints and n_floats = ctx.n_floats and n_bufs = ctx.n_bufs in
  (* globals are created in [create] before any function compiles, and
     their buffer identity is stable (constant refreshes blit in place), so
     resolve them once at compile time instead of on every call *)
  let global_bufs =
    List.map
      (fun (slot, (g : tensor)) ->
        match Hashtbl.find_opt globals g.tid with
        | Some b -> (slot, b)
        | None ->
            Gc_errors.compile_error ~stage:"engine"
              ~ctx:[ ("global", g.tname) ]
              (Printf.sprintf "Engine: unbound global %s" g.tname))
      ctx.global_binds
  in
  let fresh_env () =
    let env =
      {
        ints = Array.make (max 1 n_ints) 0;
        floats = Array.make (max 1 n_floats) 0.;
        bufs = Array.make (max 1 n_bufs) dummy_buf;
      }
    in
    List.iter (fun (slot, b) -> env.bufs.(slot) <- b) global_bufs;
    env
  in
  (* per-domain reusable top-level env: param slots are refreshed per call,
     global slots are stable, local slots are re-installed by Alloc before
     any access (Check guarantees def-before-use) *)
  let env_key : scratch option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)
  in
  let check_args bufs scalars =
    if Array.length bufs <> n_params then
      Gc_errors.invalid_input
        ~ctx:
          [
            ("func", f.fname);
            ("expected", string_of_int n_params);
            ("got", string_of_int (Array.length bufs));
          ]
        (Printf.sprintf "Engine.run %s: expected %d tensor params, got %d"
           f.fname n_params (Array.length bufs));
    if Array.length scalars <> n_scalars then
      Gc_errors.invalid_input
        ~ctx:
          [
            ("func", f.fname);
            ("expected", string_of_int n_scalars);
            ("got", string_of_int (Array.length scalars));
          ]
        (Printf.sprintf "Engine.run %s: expected %d scalar params, got %d"
           f.fname n_scalars (Array.length scalars));
    Array.iteri
      (fun i b ->
        if Buffer.length b < param_sizes.(i) then
          Gc_errors.invalid_input
            ~ctx:
              [
                ("func", f.fname);
                ("param", string_of_int i);
                ("actual", string_of_int (Buffer.length b));
                ("requested", string_of_int param_sizes.(i));
              ]
            (Printf.sprintf
               "Engine.run %s: param %d buffer too small (%d < %d)" f.fname i
               (Buffer.length b) param_sizes.(i)))
      bufs
  in
  let cf_run =
    if fastpath then fun bufs scalars ->
      check_args bufs scalars;
      let s =
        match Domain.DLS.get env_key with
        | Some s when not s.busy ->
            s.busy <- true;
            Gc_observe.Counters.env_reused ();
            s
        | cached ->
            let s = { senv = fresh_env (); busy = true } in
            (match cached with
            | None -> Domain.DLS.set env_key (Some s)
            | Some _ -> ());
            s
      in
      let env = s.senv in
      (* a cached env can only hold arrays at least as large as the
         call's arguments (slot counts are per-function constants) *)
      Array.blit bufs 0 env.bufs 0 n_params;
      Array.blit scalars 0 env.floats 0 n_scalars;
      (try body env
       with e ->
         s.busy <- false;
         raise e);
      s.busy <- false
    else fun bufs scalars ->
      check_args bufs scalars;
      let env = fresh_env () in
      Array.blit bufs 0 env.bufs 0 n_params;
      Array.blit scalars 0 env.floats 0 n_scalars;
      body env
  in
  { cf_params = f.params; cf_run }

let create ?pool ?(fastpath = true) (m : Ir.module_) =
  (match Check.check_module m with
  | Ok () -> ()
  | Error e ->
      Gc_errors.compile_error ~stage:"engine"
        ("Engine.create: ill-formed module: " ^ e));
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  let globals = Hashtbl.create 8 in
  List.iter
    (fun (g : tensor) ->
      Hashtbl.replace globals g.tid
        (Buffer.create ~name:g.tname g.tdtype (tensor_numel g)))
    m.globals;
  let funcs = Hashtbl.create 16 in
  let rec lookup name =
    match Hashtbl.find_opt funcs name with
    | Some cf -> cf
    | None -> (
        match Ir.find_func m name with
        | Some f ->
            let cf = compile_func ~fastpath pool lookup globals f in
            Hashtbl.replace funcs name cf;
            cf
        | None ->
            Gc_errors.compile_error ~stage:"engine"
              ~ctx:[ ("func", name) ]
              (Printf.sprintf "Engine: unknown function %S" name))
  in
  List.iter (fun (f : func) -> ignore (lookup f.fname)) m.funcs;
  { module_ = m; pool; funcs; globals }

let module_ t = t.module_
let pool t = t.pool

let run_func t name params =
  match Hashtbl.find_opt t.funcs name with
  | Some cf -> cf.cf_run params [||]
  | None ->
      Gc_errors.invalid_input
        ~ctx:[ ("func", name) ]
        (Printf.sprintf "Engine.run_func: unknown function %S" name)

let run_entry t params = run_func t t.module_.entry params

let run_init t params =
  match t.module_.init with
  | Some i -> run_func t i params
  | None -> ()

let global_buffer t (g : tensor) =
  match Hashtbl.find_opt t.globals g.tid with
  | Some b -> b
  | None ->
      Gc_errors.invalid_input
        ~ctx:[ ("global", g.tname) ]
        (Printf.sprintf "Engine.global_buffer: unbound global %s" g.tname)
