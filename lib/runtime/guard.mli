(** Watchdog: per-execute deadline enforcement.

    OCaml domains cannot be killed, so the watchdog is cooperative plus a
    monitor: the execute boundary installs an absolute deadline
    ({!with_deadline}); the runtime checks it at its natural scheduling
    points ({!check} — parallel grain claims, engine intrinsic
    dispatches); and a single lazily-started monitor thread periodically
    wakes any submitter parked on an end-of-section barrier so that a
    straggler task cannot turn a deadline overrun into an indefinite hang
    (the pool is marked poisoned and recovers when the straggler drains —
    see {!Parallel}).

    When no deadline is installed, {!check} is a domain-local read and a
    branch — the clean path stays allocation-free and syscall-free. *)

type deadline = { dl_abs : float; dl_timeout_ms : int; dl_site : string }

(** [GC_EXEC_TIMEOUT_MS]: the default per-execute deadline, in
    milliseconds ([None] when unset or unparsable; values are clamped to
    [>= 1]). *)
val env_timeout_ms : unit -> int option

(** [with_deadline ~timeout_ms ~site f] installs a deadline for the
    calling domain, runs [f], and uninstalls it. Raises
    [Gc_errors.Error (Timeout _)] (and counts it in
    {!Gc_observe.Counters}) if the deadline was exceeded — whether the
    overrun was detected mid-run by a cooperative check or only once [f]
    returned. Nested deadlines compose by taking the earlier absolute
    deadline. *)
val with_deadline : timeout_ms:int -> site:string -> (unit -> 'a) -> 'a

(** The calling domain's active deadline, if any. *)
val current : unit -> deadline option

(** [adopt d f] runs [f] with [d] installed as the calling domain's
    deadline (used by pool workers to inherit the submitting domain's
    deadline for the duration of one job), restoring the previous value
    after. *)
val adopt : deadline option -> (unit -> 'a) -> 'a

(** Has this deadline passed? *)
val expired : deadline -> bool

(** Cooperative check point: raises [Gc_errors.Error (Timeout _)] when the
    calling domain's deadline has passed. A domain-local read plus branch
    when no deadline is installed. *)
val check : unit -> unit

(** Barrier integration: while at least one installed deadline is expired,
    the monitor thread periodically broadcasts every registered condition
    variable (under its mutex), so waiters can re-check their predicate
    and bail out. *)
val register_waiter : Mutex.t -> Condition.t -> unit

val unregister_waiter : Mutex.t -> unit
