open Gc_tensor
open Gc_tensor_ir

(** The execution engine: compiles Tensor IR functions into nested OCaml
    closures (threaded code — no AST dispatch inside hot loops) and runs
    them over flat buffers, with parallel loops executed on a domain pool
    and [brgemm]/[zero]/[copy] intrinsics dispatched to the expert-tuned
    microkernels.

    This is the repository's substitution for the paper's LLVM JIT backend
    (see DESIGN.md): the loop structure, fusion anchors, merged parallel
    sections and buffer reuse produced by the compiler all execute exactly
    as emitted. *)

type t

(** Compile every function of the module. Raises [Invalid_argument] when
    {!Check.check_module} rejects the module. [pool] defaults to
    {!Parallel.default}.

    [fastpath] (default [true]) enables the steady-state serving fast
    path: every function gets a per-domain arena pre-sized from
    {!Gc_tir_passes.Buffer_schedule.alloc_plan} so [Alloc] statements
    install cache-resident arena buffers (zero-filled, preserving
    allocation semantics) instead of allocating; top-level environments,
    sibling-call argument arrays and brgemm offset arrays are likewise
    reused per domain. Concurrent executes from different domains never
    share this state. [fastpath:false] restores the allocate-per-call
    behavior (kept as the measurable baseline for [bench/serving.exe]). *)
val create : ?pool:Parallel.t -> ?fastpath:bool -> Ir.module_ -> t

val module_ : t -> Ir.module_
val pool : t -> Parallel.t

(** [run_func t name params] executes one function. [params] are positional
    buffers for the function's tensor parameters (lengths are checked
    against each tensor's physical size). *)
val run_func : t -> string -> Buffer.t array -> unit

(** Execute the module entry function. *)
val run_entry : t -> Buffer.t array -> unit

(** Execute the init (runtime-constant preprocessing) function, if the
    module has one. Populates the module's global tensors. *)
val run_init : t -> Buffer.t array -> unit

(** Buffer backing a module-global tensor. *)
val global_buffer : t -> Ir.tensor -> Buffer.t
