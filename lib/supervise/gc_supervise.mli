(** Supervision: the self-healing tier above the kernel engine.

    PR-4/PR-5 resilience {e contains} faults — a poisoned pool degrades to
    inline execution, a dead serve worker shrinks capacity, a faulting
    specialization leans on the breaker's interpreter fallback — but
    nothing ever {e heals}. This module adds the supervisory layer that
    production compiler runtimes assume: one process-global monitor thread
    ticks registered components, each of which takes its own healing
    actions (pool reincarnation via {!Gc_runtime.Parallel.reincarnate},
    worker respawn and artifact canary in [Gc_serve]) and reports a typed
    health status, folded into a process {!health} snapshot.

    The monitor reuses the {!Gc_runtime.Guard} retire-when-idle contract:
    it exits when the component registry empties (so joining a domain that
    registered components cannot wedge on a parked monitor thread) and is
    respawned by the next {!register}.

    Everything is tunable via [GC_SUPERVISE_*] environment variables and
    inert when [GC_SUPERVISE=0] ({!register} becomes a no-op). *)

(** {2 Policy} *)

type policy = {
  sup_enabled : bool;  (** [GC_SUPERVISE] (default on) *)
  heartbeat_ms : float;
      (** monitor tick interval, [GC_SUPERVISE_HEARTBEAT_MS] (default 5) *)
  stale_ms : float;
      (** a {e busy} worker whose heartbeat is older than this is stuck,
          [GC_SUPERVISE_STALE_MS] (default 250) *)
  grace_ms : float;
      (** how long a pool may stay poisoned before reincarnation,
          [GC_SUPERVISE_GRACE_MS] (default 50) *)
  restart_budget : int;
      (** max respawns per worker slot per window before the tier reports
          [Degraded] instead of respawning,
          [GC_SUPERVISE_RESTART_BUDGET] (default 5) *)
  restart_window_ms : float;
      (** the sliding window for the restart budget,
          [GC_SUPERVISE_RESTART_WINDOW_MS] (default 10000) *)
  backoff_base_ms : float;
      (** respawn backoff floor, [GC_SUPERVISE_BACKOFF_BASE_MS] (default 1) *)
  backoff_cap_ms : float;
      (** respawn backoff ceiling, [GC_SUPERVISE_BACKOFF_CAP_MS]
          (default 50) *)
  quarantine_threshold : int;
      (** crash-correlated faults within the window that quarantine a
          compiled artifact, [GC_SUPERVISE_QUARANTINE_THRESHOLD]
          (default 8 — above the breaker's default threshold: the breaker
          is the fast, reversible first line, quarantine the heavier
          escalation fed by its failing probes) *)
  quarantine_window_ms : float;
      (** the fault-correlation window,
          [GC_SUPERVISE_QUARANTINE_WINDOW_MS] (default 2000) *)
  canary_ms : float;
      (** interval between canary re-executions of a quarantined artifact,
          [GC_SUPERVISE_CANARY_MS] (default 20) *)
}

(** Policy from the environment (defaults above). Re-read on each call. *)
val default_policy : unit -> policy

(** {2 Health} *)

type level = Healthy | Degraded | Critical

val level_to_string : level -> string

(** The worse of two levels. *)
val worst : level -> level -> level

type component_health = {
  ch_name : string;
  ch_level : level;
  ch_detail : string;  (** human-readable cause, e.g. ["poisoned for 80ms"] *)
}

type health = { h_level : level; h_components : component_health list }

(** Fold every registered component's status; [Healthy] with no components
    when nothing is registered (or supervision is disabled). *)
val health : unit -> health

val health_to_json : health -> Gc_observe.Json.t

(** {2 Component registry} *)

type registration

(** [register ~name ~tick ~status] adds a supervised component: [tick] is
    invoked by the monitor thread every {!policy.heartbeat_ms} and takes
    the component's healing actions; [status] reports its health on
    demand. Spawns the monitor if it is not running. No-op (returning a
    dummy registration) when supervision is disabled. [tick] runs on the
    monitor thread — it must not block for long and must take no lock
    that is held while calling {!register}/{!unregister}. *)
val register :
  name:string ->
  tick:(unit -> unit) ->
  status:(unit -> component_health) ->
  registration

(** Remove a component. The monitor retires once the registry is empty.
    Unregister {b before} joining domains the callbacks touch. *)
val unregister : registration -> unit

(** {2 Prefab supervision} *)

(** [supervise_pool pool] registers the two-trigger healing rule for a
    parallel pool: reincarnate when poisoned past [grace_ms] or when a
    worker domain is confirmed dead. A stale heartbeat alone never forces
    reincarnation (it may be a legitimately long kernel) — it only shows
    up in health detail. Unregister before [Parallel.shutdown]. *)
val supervise_pool :
  ?policy:policy -> ?name:string -> Gc_runtime.Parallel.t -> registration

(** {2 Backoff} *)

(** [next_backoff_ms ~policy ~prev] — decorrelated jitter: uniform in
    [[base, min cap (3 * prev)]]. Consecutive respawns of a flapping
    worker spread out instead of synchronizing into a spawn storm. *)
val next_backoff_ms : policy:policy -> prev:float -> float
