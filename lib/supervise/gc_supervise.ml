(* Supervision: the self-healing tier above the kernel engine. One
   process-global monitor thread (Guard's retire-when-idle pattern) ticks
   registered components — supervised pools, serve tiers — each of which
   performs its own healing actions (reincarnation, respawn, canary) and
   reports a typed health status. See gc_supervise.mli. *)

module Counters = Gc_observe.Counters
module Events = Gc_observe.Events
module Parallel = Gc_runtime.Parallel

(* ---- policy ----------------------------------------------------------- *)

type policy = {
  sup_enabled : bool;
  heartbeat_ms : float;
  stale_ms : float;
  grace_ms : float;
  restart_budget : int;
  restart_window_ms : float;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  quarantine_threshold : int;
  quarantine_window_ms : float;
  canary_ms : float;
}

let env_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some v when v > 0. -> v
  | _ -> default

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v >= 0 -> v
  | _ -> default

let env_bool name default =
  match Sys.getenv_opt name with
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ -> true
  | None -> default

let default_policy () =
  {
    sup_enabled = env_bool "GC_SUPERVISE" true;
    heartbeat_ms = env_float "GC_SUPERVISE_HEARTBEAT_MS" 5.;
    stale_ms = env_float "GC_SUPERVISE_STALE_MS" 250.;
    grace_ms = env_float "GC_SUPERVISE_GRACE_MS" 50.;
    restart_budget = env_int "GC_SUPERVISE_RESTART_BUDGET" 5;
    restart_window_ms = env_float "GC_SUPERVISE_RESTART_WINDOW_MS" 10_000.;
    backoff_base_ms = env_float "GC_SUPERVISE_BACKOFF_BASE_MS" 1.;
    backoff_cap_ms = env_float "GC_SUPERVISE_BACKOFF_CAP_MS" 50.;
    (* deliberately above the serve breaker's default threshold (5): the
       breaker is the fast, reversible first line; quarantine is the
       heavier escalation for an artifact that keeps crashing through
       breaker probes *)
    quarantine_threshold = env_int "GC_SUPERVISE_QUARANTINE_THRESHOLD" 8;
    quarantine_window_ms = env_float "GC_SUPERVISE_QUARANTINE_WINDOW_MS" 2_000.;
    canary_ms = env_float "GC_SUPERVISE_CANARY_MS" 20.;
  }

(* ---- health ----------------------------------------------------------- *)

type level = Healthy | Degraded | Critical

let level_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Critical -> "critical"

let worst a b =
  match (a, b) with
  | Critical, _ | _, Critical -> Critical
  | Degraded, _ | _, Degraded -> Degraded
  | Healthy, Healthy -> Healthy

type component_health = {
  ch_name : string;
  ch_level : level;
  ch_detail : string;
}

type health = { h_level : level; h_components : component_health list }

let health_to_json h =
  Gc_observe.Json.Obj
    [
      ("level", Gc_observe.Json.String (level_to_string h.h_level));
      ( "components",
        Gc_observe.Json.List
          (List.map
             (fun c ->
               Gc_observe.Json.Obj
                 [
                   ("name", Gc_observe.Json.String c.ch_name);
                   ("level", Gc_observe.Json.String (level_to_string c.ch_level));
                   ("detail", Gc_observe.Json.String c.ch_detail);
                 ])
             h.h_components) );
    ]

(* ---- component registry + monitor ------------------------------------- *)

type component = {
  c_id : int;
  c_name : string;
  c_tick : unit -> unit;
  c_status : unit -> component_health;
}

type registration = int

(* The monitor mirrors Guard's retire-when-idle contract: it must not
   outlive the components it watches, because registered components live
   in short-lived structures (a serve tier joins its worker domains at
   shutdown) and a parked-forever monitor thread would wedge the owning
   domain's termination. It retires when the registry empties; the next
   register spawns a fresh one. *)
let mon_mutex = Mutex.create ()
let components : component list ref = ref []
let monitor_started = ref false
let next_id = ref 0
let disabled_registration = -1

let monitor_interval_s () =
  (default_policy ()).heartbeat_ms /. 1000.

let monitor_loop () =
  let rec loop () =
    Mutex.lock mon_mutex;
    if !components = [] then begin
      monitor_started := false;
      Mutex.unlock mon_mutex
    end
    else begin
      (* copy the registry out before ticking: a tick may take arbitrary
         component-internal locks, and those lock owners may be calling
         [unregister] — never hold mon_mutex across a tick *)
      let cs = !components in
      Mutex.unlock mon_mutex;
      List.iter
        (fun c ->
          try c.c_tick ()
          with e ->
            Events.record ~kind:"monitor_tick_error" ~component:c.c_name
              (Printexc.to_string e))
        cs;
      Thread.delay (monitor_interval_s ());
      loop ()
    end
  in
  loop ()

let register ~name ~tick ~status =
  if not (default_policy ()).sup_enabled then disabled_registration
  else begin
    Mutex.lock mon_mutex;
    incr next_id;
    let id = !next_id in
    components :=
      { c_id = id; c_name = name; c_tick = tick; c_status = status }
      :: !components;
    if not !monitor_started then begin
      monitor_started := true;
      ignore (Thread.create monitor_loop ())
    end;
    Mutex.unlock mon_mutex;
    id
  end

let unregister id =
  if id <> disabled_registration then begin
    Mutex.lock mon_mutex;
    components := List.filter (fun c -> c.c_id <> id) !components;
    Mutex.unlock mon_mutex
  end

let health () =
  let cs = Mutex.protect mon_mutex (fun () -> !components) in
  let statuses =
    List.filter_map
      (fun c ->
        try Some (c.c_status ())
        with e ->
          Some
            {
              ch_name = c.c_name;
              ch_level = Degraded;
              ch_detail = "status error: " ^ Printexc.to_string e;
            })
      cs
  in
  {
    h_level = List.fold_left (fun acc s -> worst acc s.ch_level) Healthy statuses;
    h_components = List.rev statuses;
  }

(* ---- pool supervision -------------------------------------------------- *)

(* A pool heals for exactly two reasons (and only those — a stale
   heartbeat alone may be a legitimately long kernel, so it feeds health
   detail, never a forced reincarnation):
   - poisoned past the grace period: the abandoned job's straggler is not
     draining; without intervention every subsequent section runs inline.
   - a confirmed-dead worker domain: capacity is silently down a core for
     the life of the process otherwise. *)
let supervise_pool ?(policy = default_policy ()) ?(name = "pool") pool =
  let tick () =
    let dead = Parallel.dead_workers pool in
    let poisoned_ms = Parallel.poisoned_for pool *. 1000. in
    if dead > 0 || poisoned_ms > policy.grace_ms then begin
      if Parallel.reincarnate pool then begin
        Events.record ~kind:"pool_heal" ~component:name
          (Printf.sprintf "reincarnated: dead=%d poisoned_ms=%.1f" dead
             poisoned_ms);
        if dead > 0 then
          for _ = 1 to dead do Counters.worker_restarted () done
      end
    end
  in
  let status () =
    let dead = Parallel.dead_workers pool in
    let poisoned_ms = Parallel.poisoned_for pool *. 1000. in
    if Parallel.is_poisoned pool then
      {
        ch_name = name;
        ch_level = Degraded;
        ch_detail =
          Printf.sprintf "poisoned for %.1fms (epoch %d)" poisoned_ms
            (Parallel.epoch pool);
      }
    else if dead > 0 then
      {
        ch_name = name;
        ch_level = Degraded;
        ch_detail =
          Printf.sprintf "%d dead worker(s) awaiting reincarnation" dead;
      }
    else
      {
        ch_name = name;
        ch_level = Healthy;
        ch_detail =
          Printf.sprintf "epoch %d, %d workers" (Parallel.epoch pool)
            (Parallel.size pool);
      }
  in
  register ~name ~tick ~status

(* ---- respawn backoff --------------------------------------------------- *)

(* Decorrelated jitter (same family as the serve retry ladder): each delay
   is uniform in [base, 3 * previous], capped — consecutive respawns of a
   flapping worker spread out instead of synchronizing into a storm. *)
let next_backoff_ms ~policy ~prev =
  let lo = policy.backoff_base_ms in
  let hi = Float.max lo (Float.min policy.backoff_cap_ms (3. *. prev)) in
  lo +. Random.float (Float.max 1e-9 (hi -. lo))
