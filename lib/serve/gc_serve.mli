(** Overload-protected serving layer.

    Wraps {!Core.compile_checked} / {!Core.execute_checked} behind a
    bounded admission queue served by a fixed pool of worker domains, so a
    burst of requests degrades into {e typed, observable} rejections
    instead of unbounded queueing, memory growth or hangs. The protection
    has four coupled mechanisms:

    {2 Admission control and deadlines}

    Every request carries a deadline (per-call [?deadline_ms], else the
    server's default). Admission refuses — raising nothing, resolving the
    request's ticket with [Error (Overloaded _)] — when:

    - the bounded queue is full (its {e effective} depth shrinks under
      memory-budget backpressure, see below);
    - the request's deadline is provably unmeetable: the serving layer
      keeps an EWMA of recent per-handle execute latencies and rejects
      when [remaining < ewma * (queue_len + 1) * safety_factor];
    - the server is draining or shut down.

    Requests whose deadline expires {e while queued} are shed before
    dispatch (no execute work is spent on a request nobody is waiting
    for), also as [Overloaded]. The remaining deadline of a dispatched
    request is installed as the {!Core} watchdog deadline, so execution
    itself is bounded too.

    {2 Memory-budget backpressure}

    When a {!Gc_tensor.Memgov} budget is armed, the effective queue depth
    scales down linearly as the budget fills beyond one half —
    [depth * 2 * (1 - fill)], clamped to [0, depth] — so admission slows
    {e before} allocations start failing. Allocations that do exceed the
    budget surface as typed [Resource_exhausted] outcomes naming the
    buffer and the budget.

    {2 Circuit breaker and retries}

    Transient [Runtime_fault]s are retried with exponential backoff and
    decorrelated jitter (deterministic per worker given the config seed),
    never sleeping past the request's deadline; exhausted retries degrade
    to the reference interpreter. [breaker_threshold] {e consecutive}
    fallbacks trip the handle's breaker open: requests then short-circuit
    straight to the interpreter (counted, visible in
    [Observe.Counters]) without burning retries on a compiled path that
    keeps faulting. After [breaker_cooldown_ms] the next request becomes a
    half-open probe of the compiled path; success closes the breaker,
    another fallback re-opens it.

    {2 Request coalescing (continuous batching)}

    A handle registered from a shape-polymorphic compilation
    ({!register_poly}) whose graph is batch-shaped — every output and
    every symbolic input carries one bucketable symbol on axis 0 and
    nowhere else — participates in {e coalescing} when
    [coalesce_window_ms > 0]: a worker that dequeues such a request holds
    it for at most the window, pulls compatible queued requests (same
    handle, same symbol environment apart from the batch symbol,
    physically identical weight bindings), concatenates their inputs
    along the batch axis, executes {e once} through the bucketed
    instance, and splits the outputs back per ticket. The window is
    clamped so it never extends past any gathered ticket's deadline minus
    the handle's EWMA execute estimate times [safety_factor] — gathering
    must not cause a deadline miss ([window_deadline_violations] in
    {!Gc_observe.Counters} counts the residual cases; tests pin it to
    zero). A failed batch re-runs every ticket solo, so one poisoned
    request cannot sink its batchmates.

    {2 Graceful drain}

    {!drain} stops admission and waits (bounded) for queued and in-flight
    work; queued requests still waiting at the drain deadline are shed as
    [Overloaded]. {!shutdown} drains and then joins the worker domains,
    releasing their domain-local arenas and scratch environments — with a
    Memgov budget armed, the ledger returns to zero once the released
    buffers are collected.

    Every request ends in {e exactly one} typed outcome: [Ok] or one of
    [Overloaded] / [Timeout] / [Resource_exhausted] / [Runtime_fault] /
    [Invalid_input] / [Compile_error]. *)

(** {1 Configuration} *)

type config = {
  queue_depth : int;  (** bounded queue slots ([GC_SERVE_QUEUE_DEPTH], 16) *)
  workers : int;  (** worker domains ([GC_SERVE_WORKERS], 2) *)
  default_deadline_ms : int option;
      (** deadline for requests that carry none
          ([GC_SERVE_DEADLINE_MS]; [None] = unbounded) *)
  max_retries : int;
      (** serving-level retries of a [Runtime_fault] execute before
          degrading to the interpreter ([GC_SERVE_MAX_RETRIES], 2) *)
  backoff_base_ms : float;  (** first backoff sleep (1 ms) *)
  backoff_cap_ms : float;  (** backoff ceiling (50 ms) *)
  breaker_threshold : int;
      (** consecutive fallbacks that trip a handle's breaker
          ([GC_SERVE_BREAKER_THRESHOLD], 5) *)
  breaker_cooldown_ms : float;
      (** open-state dwell before a half-open probe
          ([GC_SERVE_BREAKER_COOLDOWN_MS], 100 ms) *)
  ewma_alpha : float;  (** latency EWMA smoothing (0.2) *)
  safety_factor : float;
      (** admission feasibility margin on the EWMA estimate (1.5) *)
  seed : int;  (** backoff-jitter determinism (0) *)
  sanitize_outputs : bool;
      (** scan float outputs for NaN/Inf (see {!Core.exec_options}) *)
  coalesce_window_ms : float;
      (** gather window for request coalescing on poly handles
          ([GC_SERVE_COALESCE_MS]; 0 = coalescing off) *)
  max_coalesce : int;
      (** most tickets packed into one batched execution
          ([GC_SERVE_MAX_COALESCE], 8) *)
  retune_factor : float;
      (** online retuning trigger: a handle whose latency EWMA exceeds
          [retune_factor] times the best EWMA it has sustained is demoted —
          its tuning-DB scope is dropped and background re-tunes queued
          ([GC_SERVE_RETUNE_FACTOR], 2.0; 0 disables; requires autotuning
          to be enabled, see [Gc_tuning.Autotune]) *)
  retune_min_samples : int;
      (** completions a handle must accumulate (since the last demotion)
          before the retune detector may fire, so a cold-start outlier
          cannot demote a schedule ([GC_SERVE_RETUNE_MIN_SAMPLES], 8) *)
  quota_borrow : float;
      (** weighted-fair admission quotas: a model may queue past its
          share of the effective depth (share = depth × weight / total
          weight, at least 1) only while the whole queue is under
          [quota_borrow × depth] — slack capacity is borrowable, but a
          flooding tenant cannot starve others' slots once the queue
          fills ([GC_SERVE_QUOTA_BORROW], 0.5) *)
  supervision : Gc_supervise.policy;
      (** self-healing policy: worker heartbeat staleness, restart budget
          and backoff, artifact quarantine and canary cadence (defaults
          from the [GC_SERVE_SUPERVISE_*]-free {!Gc_supervise.default_policy},
          i.e. the [GC_SUPERVISE_*] environment). With
          [sup_enabled = false] the server runs exactly as before this
          layer existed: no monitor registration, no respawn, no
          quarantine. *)
}

(** Defaults above, overridden by the [GC_SERVE_*] environment knobs. *)
val default_config : unit -> config

(** {1 Server and handles} *)

type t

(** A registered compiled partition plus its serving state (latency EWMA,
    circuit breaker). *)
type handle

(** [create ()] starts the worker domains. Raises [Invalid_input] on a
    non-positive queue depth or worker count. *)
val create : ?config:config -> unit -> t

(** Register an already-compiled partition. [name] appears in error
    context and stats; [weight] (default 1, must be positive) is the
    model's weighted-fair admission share — see [quota_borrow]. Raises
    [Invalid_input] on a non-positive weight. *)
val register : ?name:string -> ?weight:float -> t -> Core.t -> handle

(** Register a shape-polymorphic compilation ({!Core.compile_poly}):
    requests may then bind any concrete sizes for the graph's symbolic
    dims, served by bucketed specializations, and — when the graph is
    batch-shaped and [coalesce_window_ms > 0] — compatible requests are
    coalesced into batched executions. *)
val register_poly : ?name:string -> ?weight:float -> t -> Core.poly -> handle

(** Compile (through {!Core.compile_checked}) and register. *)
val compile_and_register :
  ?config:Core.config ->
  ?name:string ->
  ?weight:float ->
  t ->
  Core.Graph.t ->
  (handle, Core.Errors.error) result

(** {1 Rebinding — the registry's hot-swap / park / re-admit lever}

    A handle's compiled target is swappable while the server runs. The
    swap resets serving state tied to the old artifact (circuit breaker,
    quarantine, crash stamps, canary probe) and keeps the latency EWMA —
    it tracks the model's cost profile, which a like-for-like swap
    preserves. The caller must swap like-for-like (same graph I/O
    signature): queued requests execute against the new target with
    their original bindings. *)

(** Atomically point the handle at a new compiled partition. *)
val rebind : t -> handle -> Core.t -> unit

(** Atomically point the handle at a new polymorphic compilation (the
    coalescing symbol is re-derived). *)
val rebind_poly : t -> handle -> Core.poly -> unit

(** Park the handle: requests reaching execution resolve
    [Invalid_input] ("model is not resident") — callers are expected to
    re-bind (lazy re-admission) before submitting. *)
val unbind : t -> handle -> unit

(** Does the handle currently hold a compiled target? *)
val is_bound : handle -> bool

(** Remove the handle from the canary sweep and the fair-share weight
    total (a retired tenant). The handle stays safe to submit to —
    requests resolve typed — but no longer counts as a tenant.
    Idempotent. *)
val unregister : t -> handle -> unit

(** {1 Submitting work} *)

type outcome = (Core.Tensor.t list, Core.Errors.error) result

(** A pending request. *)
type ticket

(** [submit t h bindings] tries to admit a request; never raises and
    never blocks on execution. A refused request's ticket is already
    resolved with [Error (Overloaded _)]. [deadline_ms] overrides the
    server's default deadline. *)
val submit :
  ?deadline_ms:int ->
  t ->
  handle ->
  (Core.Logical_tensor.t * Core.Tensor.t) list ->
  ticket

(** Block until the request resolves. Idempotent. *)
val await : ticket -> outcome

(** Resolved yet? (Non-blocking.) *)
val peek : ticket -> outcome option

(** [call t h bindings] = submit + await. *)
val call :
  ?deadline_ms:int ->
  t ->
  handle ->
  (Core.Logical_tensor.t * Core.Tensor.t) list ->
  outcome

(** {1 Introspection} *)

type breaker_state = Closed | Open | Half_open

val breaker_state : handle -> breaker_state

(** Is the handle's compiled artifact currently quarantined (crash-
    correlated faults tripped it; traffic is rerouting to the reference
    interpreter until a canary validates the artifact)? *)
val is_quarantined : handle -> bool

(** Double ticket resolutions ever observed, process-wide. Stays zero
    while supervision kills, supersedes and respawns workers — the health
    bench pins it. *)
val double_resolve_count : unit -> int

(** The tier's health as the supervision monitor reports it: [Critical]
    with zero live workers, [Degraded] with dead workers awaiting respawn
    (including crash-loopers that exhausted the restart budget) or
    quarantined handles, else [Healthy]. Also folded into
    {!Gc_supervise.health} while the server is registered. *)
val tier_health : t -> Gc_supervise.component_health

(** The handle's latency EWMA over compiled executes, ms ([None] until the
    first completion). *)
val ewma_ms : handle -> float option

(** Feed one completion latency (ms) into the handle's EWMA and the
    online-retune detector — exactly what worker-side completions do.
    For callers that execute a handle's partition outside the serving
    queue (and for tests of the demotion path). *)
val observe_latency : t -> handle -> float -> unit

type stats = {
  submitted : int;  (** all [submit] calls *)
  admitted : int;  (** entered the queue *)
  completed : int;  (** resolved after dispatch (any outcome) *)
  ok : int;  (** resolved [Ok] *)
  overloaded : int;  (** shed at admission, in queue, or at drain *)
  shed_expired : int;  (** subset of [overloaded]: expired while queued *)
  timeouts : int;  (** resolved [Error Timeout] *)
  faults : int;  (** resolved [Error Runtime_fault] *)
  budget_rejects : int;  (** resolved [Error Resource_exhausted] *)
  fallbacks : int;  (** served by the reference interpreter *)
  coalesced_batches : int;  (** batched executions packing >= 2 tickets *)
  coalesced_tickets : int;  (** tickets served by those batches *)
  quota_shed : int;  (** subset of [overloaded]: over weighted-fair share *)
  queue_len : int;  (** current queue occupancy *)
  in_flight : int;  (** currently executing *)
  effective_depth : int;  (** queue depth after budget backpressure *)
  draining : bool;
  workers_live : int;  (** worker slots not currently dead *)
  quarantined_handles : int;  (** handles rerouting to the interpreter *)
}

val stats : t -> stats

(** Per-model serving state: admission tallies, residency, breaker. *)
type handle_stats = {
  hs_name : string;
  hs_weight : float;
  hs_submitted : int;
  hs_admitted : int;
  hs_ok : int;
  hs_shed : int;  (** all Overloaded outcomes charged to the model *)
  hs_quota_shed : int;  (** subset of [hs_shed]: over weighted share *)
  hs_queued : int;  (** currently queued *)
  hs_bound : bool;  (** holds a compiled target (not parked) *)
  hs_quarantined : bool;
  hs_breaker : breaker_state;
  hs_ewma_ms : float option;
}

val handle_name : handle -> string
val handle_weight : handle -> float
val handle_stats : t -> handle -> handle_stats

(** {1 Lifecycle} *)

(** Stop admitting and wait for queued + in-flight work, at most
    [deadline_ms] (default 1000). Queued requests still unserved at the
    deadline are shed as [Overloaded]; in-flight requests keep their
    tickets and resolve when their (watchdog-bounded) execution ends.
    The ["slow_drain"] fault-injection site fires at the start of the
    wait. Idempotent; admission stays closed afterwards. *)
val drain : ?deadline_ms:int -> t -> unit

(** {!drain}, then stop and join the worker domains (releasing their
    domain-local arenas and scratch state), then dump the
    {!Gc_observe.Events} flight recorder if [GC_EVENTS_DUMP] is armed.
    Idempotent. *)
val shutdown : ?drain_deadline_ms:int -> t -> unit
