(* Overload-protected serving layer. See gc_serve.mli for the contract.

   Concurrency picture: one server mutex guards the queue, the admission
   flags and the stats; each ticket has its own mutex + condvar; each
   handle has its own mutex for the latency EWMA and breaker state.
   Workers are domains (requests execute real kernels in parallel);
   clients may be systhreads or domains — they only ever block on a
   ticket condvar. Lock order is strictly server -> ticket / handle,
   never nested the other way, so no ordering cycles exist. *)

module Errors = Core.Errors
module Counters = Gc_observe.Counters
module Memgov = Gc_tensor.Memgov

type config = {
  queue_depth : int;
  workers : int;
  default_deadline_ms : int option;
  max_retries : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  breaker_threshold : int;
  breaker_cooldown_ms : float;
  ewma_alpha : float;
  safety_factor : float;
  seed : int;
  sanitize_outputs : bool;
}

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v -> v
  | None -> default

let env_int_opt name =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v >= 1 -> Some v
  | _ -> None

let default_config () =
  {
    queue_depth = env_int "GC_SERVE_QUEUE_DEPTH" 16;
    workers = env_int "GC_SERVE_WORKERS" 2;
    default_deadline_ms = env_int_opt "GC_SERVE_DEADLINE_MS";
    max_retries = env_int "GC_SERVE_MAX_RETRIES" 2;
    backoff_base_ms = 1.;
    backoff_cap_ms = 50.;
    breaker_threshold = env_int "GC_SERVE_BREAKER_THRESHOLD" 5;
    breaker_cooldown_ms =
      float_of_int (env_int "GC_SERVE_BREAKER_COOLDOWN_MS" 100);
    ewma_alpha = 0.2;
    safety_factor = 1.5;
    seed = 0;
    sanitize_outputs = false;
  }

type outcome = (Core.Tensor.t list, Core.Errors.error) result

type ticket = {
  tk_mu : Mutex.t;
  tk_cv : Condition.t;
  mutable tk_result : outcome option;
}

type breaker_state = Closed | Open | Half_open

type handle = {
  h_name : string;
  h_core : Core.t;
  h_mu : Mutex.t;
  mutable h_ewma_ms : float option;
  mutable h_consec_fb : int;  (* consecutive fallbacks-to-interpreter *)
  mutable h_state : breaker_state;
  mutable h_opened_at : float;  (* when the breaker last tripped open *)
}

type request = {
  rq_handle : handle;
  rq_bindings : (Core.Logical_tensor.t * Core.Tensor.t) list;
  rq_deadline : float option;  (* absolute, Unix.gettimeofday seconds *)
  rq_deadline_ms : int option;  (* the original relative deadline *)
  rq_ticket : ticket;
}

type t = {
  cfg : config;
  mu : Mutex.t;
  cv_work : Condition.t;  (* workers park here when the queue is empty *)
  queue : request Queue.t;
  mutable accepting : bool;
  mutable stopping : bool;  (* workers exit once true and queue is empty *)
  mutable in_flight : int;
  mutable domains : unit Domain.t list;
  mutable next_handle : int;
  (* stats (all guarded by [mu]) *)
  mutable s_submitted : int;
  mutable s_admitted : int;
  mutable s_completed : int;
  mutable s_ok : int;
  mutable s_overloaded : int;
  mutable s_shed_expired : int;
  mutable s_timeouts : int;
  mutable s_faults : int;
  mutable s_budget_rejects : int;
  mutable s_fallbacks : int;
}

let now () = Unix.gettimeofday ()

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* {2 Tickets} *)

let new_ticket () =
  { tk_mu = Mutex.create (); tk_cv = Condition.create (); tk_result = None }

(* Idempotent: the queue pop is exclusive so each ticket has one resolver,
   but resolve-twice must still be harmless. *)
let resolve tk outcome =
  locked tk.tk_mu (fun () ->
      if tk.tk_result = None then begin
        tk.tk_result <- Some outcome;
        Condition.broadcast tk.tk_cv
      end)

let await tk =
  locked tk.tk_mu (fun () ->
      while tk.tk_result = None do
        Condition.wait tk.tk_cv tk.tk_mu
      done;
      Option.get tk.tk_result)

let peek tk = locked tk.tk_mu (fun () -> tk.tk_result)

(* {2 Outcome accounting (server stats + global counters)} *)

let record_outcome t (outcome : outcome) ~used_fallback =
  locked t.mu (fun () ->
      t.s_completed <- t.s_completed + 1;
      if used_fallback then t.s_fallbacks <- t.s_fallbacks + 1;
      match outcome with
      | Ok _ -> t.s_ok <- t.s_ok + 1
      | Error (Errors.Overloaded _) ->
          t.s_overloaded <- t.s_overloaded + 1
      | Error (Errors.Timeout _) -> t.s_timeouts <- t.s_timeouts + 1
      | Error (Errors.Runtime_fault _) -> t.s_faults <- t.s_faults + 1
      | Error (Errors.Resource_exhausted _) ->
          t.s_budget_rejects <- t.s_budget_rejects + 1;
          Counters.serve_budget_reject ()
      | Error (Errors.Invalid_input _ | Errors.Compile_error _) -> ())

(* {2 Deadlines} *)

let remaining_ms rq =
  match rq.rq_deadline with
  | None -> None
  | Some dl -> Some (int_of_float (ceil ((dl -. now ()) *. 1000.)))

let expired rq =
  match rq.rq_deadline with None -> false | Some dl -> now () > dl

let timeout_error ~site rq =
  let ms = Option.value rq.rq_deadline_ms ~default:0 in
  Errors.Timeout
    { site; timeout_ms = ms; ctx = [ ("handle", rq.rq_handle.h_name) ] }

(* {2 Circuit breaker} *)

(* What the worker should do with this request, given the handle's breaker
   state. Deciding a probe transitions Open -> Half_open, so concurrent
   requests on the same handle cannot all probe at once: the first gets
   the probe, the rest keep short-circuiting until it resolves. *)
type route = Compiled | Probe | Shortcircuit

let route_of cfg h =
  locked h.h_mu (fun () ->
      match h.h_state with
      | Closed -> Compiled
      | Half_open -> Shortcircuit
      | Open ->
          if (now () -. h.h_opened_at) *. 1000. >= cfg.breaker_cooldown_ms
          then begin
            h.h_state <- Half_open;
            Counters.breaker_probe ();
            Probe
          end
          else Shortcircuit)

let note_compiled_success h =
  locked h.h_mu (fun () ->
      h.h_consec_fb <- 0;
      if h.h_state = Half_open then begin
        h.h_state <- Closed;
        Counters.breaker_close ()
      end)

(* The compiled path faulted hard enough that we degraded to the
   interpreter (whether or not the interpreter then succeeded). *)
let note_fallback cfg h =
  locked h.h_mu (fun () ->
      h.h_consec_fb <- h.h_consec_fb + 1;
      match h.h_state with
      | Half_open ->
          (* the probe failed: back to Open for another cooldown *)
          h.h_state <- Open;
          h.h_opened_at <- now ();
          Counters.breaker_open ()
      | Closed when h.h_consec_fb >= cfg.breaker_threshold ->
          h.h_state <- Open;
          h.h_opened_at <- now ();
          Counters.breaker_open ()
      | Closed | Open -> ())

let note_latency cfg h dt_ms =
  locked h.h_mu (fun () ->
      h.h_ewma_ms <-
        (match h.h_ewma_ms with
        | None -> Some dt_ms
        | Some e ->
            Some ((cfg.ewma_alpha *. dt_ms) +. ((1. -. cfg.ewma_alpha) *. e))))

let breaker_state h = locked h.h_mu (fun () -> h.h_state)
let ewma_ms h = locked h.h_mu (fun () -> h.h_ewma_ms)

(* {2 Request processing (worker side)} *)

(* Exponential backoff with decorrelated jitter, deterministic per worker:
   sleep_{n+1} = min(cap, uniform[base, 3 * sleep_n]). Never sleeps past
   the request's remaining deadline. *)
let backoff_sleep cfg rng ~prev_ms ~remaining =
  let span = (3. *. prev_ms) -. cfg.backoff_base_ms in
  let ms =
    cfg.backoff_base_ms +. (if span > 0. then Random.State.float rng span else 0.)
  in
  let ms = Float.min ms cfg.backoff_cap_ms in
  let ms =
    match remaining with
    | None -> ms
    | Some r -> Float.min ms (float_of_int r /. 2.)
  in
  if ms > 0. then Unix.sleepf (ms /. 1000.);
  Float.max ms cfg.backoff_base_ms

let exec_options cfg =
  { (Core.default_exec_options ()) with
    Core.retries = 0;
    fallback = false;
    sanitize_outputs = cfg.sanitize_outputs;
  }

let run_fallback_path t rq ~via =
  let h = rq.rq_handle in
  (match via with
  | `Breaker_open -> Counters.breaker_shortcircuit ()
  | `Degraded -> note_fallback t.cfg h);
  match Core.execute_fallback ?deadline_ms:(remaining_ms rq) h.h_core
          rq.rq_bindings
  with
  | Ok outs -> (Ok outs, true)
  | Error e -> (Error e, true)

let process t rq =
  let h = rq.rq_handle in
  let cfg = t.cfg in
  let rng = Random.State.make [| cfg.seed; Hashtbl.hash h.h_name |] in
  match route_of cfg h with
  | Shortcircuit -> run_fallback_path t rq ~via:`Breaker_open
  | Compiled | Probe ->
      let opts = exec_options cfg in
      let rec attempt tries prev_ms =
        if expired rq then (Error (timeout_error ~site:"serve.retry" rq), false)
        else begin
          let t0 = now () in
          match
            Core.execute_checked_report ~options:opts
              ?deadline_ms:(remaining_ms rq) h.h_core rq.rq_bindings
          with
          | Ok (outs, _) ->
              note_latency cfg h ((now () -. t0) *. 1000.);
              note_compiled_success h;
              (Ok outs, false)
          | Error (Errors.Runtime_fault _) when tries < cfg.max_retries ->
              Counters.exec_retry ();
              let slept =
                backoff_sleep cfg rng ~prev_ms ~remaining:(remaining_ms rq)
              in
              attempt (tries + 1) slept
          | Error (Errors.Runtime_fault _) ->
              run_fallback_path t rq ~via:`Degraded
          | Error e -> (Error e, false)
        end
      in
      attempt 0 cfg.backoff_base_ms

let shed rq reason extra_ctx =
  Counters.serve_overloaded ();
  let ctx =
    [ ("handle", rq.rq_handle.h_name) ]
    @ extra_ctx
    @
    match rq.rq_deadline_ms with
    | Some ms -> [ ("deadline_ms", string_of_int ms) ]
    | None -> []
  in
  resolve rq.rq_ticket (Error (Errors.Overloaded { site = "serve"; what = reason; ctx }))

let worker_loop t =
  let rec next () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.cv_work t.mu
    done;
    if Queue.is_empty t.queue then begin
      Mutex.unlock t.mu;
      () (* stopping and drained: exit *)
    end
    else begin
      let rq = Queue.pop t.queue in
      t.in_flight <- t.in_flight + 1;
      Mutex.unlock t.mu;
      (* Shed-before-dispatch: no execute work for a request whose waiter
         has already timed out. *)
      (if expired rq then begin
         locked t.mu (fun () ->
             t.s_overloaded <- t.s_overloaded + 1;
             t.s_shed_expired <- t.s_shed_expired + 1;
             t.s_completed <- t.s_completed + 1);
         Counters.serve_shed_expired ();
         shed rq "deadline expired in queue" []
       end
       else
         let outcome, used_fallback =
           try process t rq
           with e ->
             (* belt and braces: nothing may escape a worker domain *)
             (Error (Errors.classify ~site:"serve.worker" e), false)
         in
         record_outcome t outcome ~used_fallback;
         resolve rq.rq_ticket outcome);
      locked t.mu (fun () -> t.in_flight <- t.in_flight - 1);
      next ()
    end
  in
  next ()

(* {2 Admission (client side)} *)

(* Effective queue depth under memory-budget backpressure: full depth up
   to 50% budget fill, then linearly down to zero at 100% —
   depth * 2 * (1 - fill), clamped to [0, depth]. *)
let effective_depth cfg =
  let fill = Memgov.fill_fraction () in
  if fill <= 0.5 then cfg.queue_depth
  else if fill >= 1. then 0
  else
    let d =
      int_of_float (Float.round (float_of_int cfg.queue_depth *. 2. *. (1. -. fill)))
    in
    max 0 (min cfg.queue_depth d)

let reject tk ~handle ~reason ~ctx =
  Counters.serve_overloaded ();
  resolve tk
    (Error
       (Errors.Overloaded
          { site = "serve.admission"; what = reason; ctx = ("handle", handle) :: ctx }))

let submit ?deadline_ms t h bindings =
  let tk = new_ticket () in
  let deadline_ms =
    match deadline_ms with Some _ as d -> d | None -> t.cfg.default_deadline_ms
  in
  let rq =
    {
      rq_handle = h;
      rq_bindings = bindings;
      rq_deadline =
        Option.map (fun ms -> now () +. (float_of_int ms /. 1000.)) deadline_ms;
      rq_deadline_ms = deadline_ms;
      rq_ticket = tk;
    }
  in
  let verdict =
    locked t.mu (fun () ->
        t.s_submitted <- t.s_submitted + 1;
        if not t.accepting then
          `Reject ("server is draining", [])
        else if Gc_faultinject.queue_full_check () then begin
          t.s_overloaded <- t.s_overloaded + 1;
          `Reject ("queue full", [ ("injected", "true") ])
        end
        else begin
          let eff = effective_depth t.cfg in
          let qlen = Queue.length t.queue in
          if qlen >= eff then begin
            t.s_overloaded <- t.s_overloaded + 1;
            `Reject
              ( "queue full",
                [
                  ("queue_len", string_of_int qlen);
                  ("depth", string_of_int t.cfg.queue_depth);
                  ("effective_depth", string_of_int eff);
                  ( "budget_fill",
                    Printf.sprintf "%.2f" (Memgov.fill_fraction ()) );
                ] )
          end
          else
            (* Deadline feasibility: with a latency estimate in hand,
               refuse work we can predict we cannot finish in time. *)
            let infeasible =
              match (deadline_ms, ewma_ms h) with
              | Some ms, Some ewma ->
                  let predicted =
                    ewma *. float_of_int (qlen + 1) *. t.cfg.safety_factor
                  in
                  if float_of_int ms < predicted then Some (ewma, predicted)
                  else None
              | _ -> None
            in
            match infeasible with
            | Some (ewma, predicted) ->
                t.s_overloaded <- t.s_overloaded + 1;
                `Reject
                  ( "deadline unmeetable",
                    [
                      ("ewma_ms", Printf.sprintf "%.2f" ewma);
                      ("predicted_ms", Printf.sprintf "%.2f" predicted);
                      ("queue_len", string_of_int qlen);
                    ] )
            | None ->
                t.s_admitted <- t.s_admitted + 1;
                Queue.push rq t.queue;
                Condition.signal t.cv_work;
                `Admitted
          end)
  in
  (match verdict with
  | `Admitted -> Counters.serve_admitted ()
  | `Reject (reason, ctx) ->
      let ctx =
        ctx
        @
        match deadline_ms with
        | Some ms -> [ ("deadline_ms", string_of_int ms) ]
        | None -> []
      in
      (* "draining" rejections are not pre-counted under the lock *)
      if reason = "server is draining" then
        locked t.mu (fun () -> t.s_overloaded <- t.s_overloaded + 1);
      reject tk ~handle:h.h_name ~reason ~ctx);
  tk

let call ?deadline_ms t h bindings = await (submit ?deadline_ms t h bindings)

(* {2 Construction} *)

let create ?config () =
  let cfg = match config with Some c -> c | None -> default_config () in
  if cfg.queue_depth < 1 then
    Errors.invalid_input
      ~ctx:[ ("queue_depth", string_of_int cfg.queue_depth) ]
      "Gc_serve.create: queue_depth must be >= 1";
  if cfg.workers < 1 then
    Errors.invalid_input
      ~ctx:[ ("workers", string_of_int cfg.workers) ]
      "Gc_serve.create: workers must be >= 1";
  let t =
    {
      cfg;
      mu = Mutex.create ();
      cv_work = Condition.create ();
      queue = Queue.create ();
      accepting = true;
      stopping = false;
      in_flight = 0;
      domains = [];
      next_handle = 0;
      s_submitted = 0;
      s_admitted = 0;
      s_completed = 0;
      s_ok = 0;
      s_overloaded = 0;
      s_shed_expired = 0;
      s_timeouts = 0;
      s_faults = 0;
      s_budget_rejects = 0;
      s_fallbacks = 0;
    }
  in
  t.domains <-
    List.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let register ?name t core =
  let name =
    match name with
    | Some n -> n
    | None ->
        locked t.mu (fun () ->
            t.next_handle <- t.next_handle + 1;
            Printf.sprintf "partition-%d" t.next_handle)
  in
  {
    h_name = name;
    h_core = core;
    h_mu = Mutex.create ();
    h_ewma_ms = None;
    h_consec_fb = 0;
    h_state = Closed;
    h_opened_at = 0.;
  }

let compile_and_register ?config ?name t g =
  Result.map (register ?name t) (Core.compile_checked ?config g)

(* {2 Introspection} *)

type stats = {
  submitted : int;
  admitted : int;
  completed : int;
  ok : int;
  overloaded : int;
  shed_expired : int;
  timeouts : int;
  faults : int;
  budget_rejects : int;
  fallbacks : int;
  queue_len : int;
  in_flight : int;
  effective_depth : int;
  draining : bool;
}

let stats t =
  locked t.mu (fun () ->
      {
        submitted = t.s_submitted;
        admitted = t.s_admitted;
        completed = t.s_completed;
        ok = t.s_ok;
        overloaded = t.s_overloaded;
        shed_expired = t.s_shed_expired;
        timeouts = t.s_timeouts;
        faults = t.s_faults;
        budget_rejects = t.s_budget_rejects;
        fallbacks = t.s_fallbacks;
        queue_len = Queue.length t.queue;
        in_flight = t.in_flight;
        effective_depth = effective_depth t.cfg;
        draining = not t.accepting;
      })

(* {2 Lifecycle} *)

let drain ?(deadline_ms = 1000) t =
  locked t.mu (fun () -> t.accepting <- false);
  Gc_faultinject.slow_drain_check ();
  let dl = now () +. (float_of_int deadline_ms /. 1000.) in
  (* No timed condvar wait in the stdlib: poll at 1 ms. Drain is a
     shutdown path, not a hot path. *)
  let rec wait () =
    let idle =
      locked t.mu (fun () -> Queue.is_empty t.queue && t.in_flight = 0)
    in
    if idle then ()
    else if now () > dl then begin
      (* shed whatever is still queued; in-flight requests keep their
         tickets and resolve under their own (watchdog-bounded) execution *)
      let stranded =
        locked t.mu (fun () ->
            let rqs = List.of_seq (Queue.to_seq t.queue) in
            Queue.clear t.queue;
            t.s_overloaded <- t.s_overloaded + List.length rqs;
            t.s_completed <- t.s_completed + List.length rqs;
            rqs)
      in
      List.iter
        (fun rq ->
          shed rq "shed at drain deadline"
            [ ("drain_deadline_ms", string_of_int deadline_ms) ])
        stranded
    end
    else begin
      Unix.sleepf 0.001;
      wait ()
    end
  in
  wait ()

let shutdown ?drain_deadline_ms t =
  drain ?deadline_ms:drain_deadline_ms t;
  let ds =
    locked t.mu (fun () ->
        t.stopping <- true;
        Condition.broadcast t.cv_work;
        let ds = t.domains in
        t.domains <- [];
        ds)
  in
  List.iter Domain.join ds
